// The paper's exact testbed (§VI): 32 heterogeneous nodes — 16 quad-SMP
// 700 MHz Pentium-III with 66 MHz/64-bit PCI interlaced with 16 dual-SMP
// 1 GHz Pentium-III with 33 MHz/32-bit PCI, four of which carry the
// faster PCI64C/LANai-9.2 NIC — behind a Myrinet-2000 crossbar. This
// example reproduces the paper's headline comparison on that machine:
// per-node CPU utilization of a skewed 4-element reduction, default
// versus application-bypass, and shows how the two node classes differ.
//
//	go run ./examples/heterocluster
package main

import (
	"fmt"
	"math/rand"
	"time"

	"abred"
)

const (
	iters   = 150
	maxSkew = 1000 * time.Microsecond
	catchup = 1500 * time.Microsecond
)

func measure(ab bool, seed int64) (avg time.Duration, perClass map[string]time.Duration, classN map[string]int) {
	cl := abred.NewCluster(abred.WithPaperCluster(), abred.WithSeed(seed))
	size := cl.Size()
	perNode := make([]time.Duration, size)
	classes := make([]string, size)

	cl.Run(func(r *abred.Rank) {
		rng := rand.New(rand.NewSource(seed*1000 + int64(r.Rank())))
		in := []float64{1, 2, 3, 4}
		var cpu time.Duration
		for it := 0; it < iters; it++ {
			skew := time.Duration(rng.Int63n(int64(maxSkew)))
			t0 := r.Now()
			r.Compute(skew)
			if ab {
				r.Reduce(in, abred.Sum, 0)
			} else {
				r.ReduceNoBypass(in, abred.Sum, 0)
			}
			r.Compute(catchup)
			cpu += (r.Now() - t0) - skew - catchup
			r.Barrier()
		}
		perNode[r.Rank()] = cpu / iters
	})

	for i := range classes {
		classes[i] = classOf(i)
	}
	perClass = map[string]time.Duration{}
	classN = map[string]int{}
	var total time.Duration
	for i, c := range perNode {
		total += c
		perClass[classes[i]] += c
		classN[classes[i]]++
	}
	for k := range perClass {
		perClass[k] /= time.Duration(classN[k])
	}
	return total / time.Duration(size), perClass, classN
}

// classOf mirrors the interlaced layout of model.PaperCluster32.
func classOf(i int) string {
	if i%2 == 0 {
		return "700 MHz / PCI64B"
	}
	if i == 1 || i == 3 || i == 5 || i == 7 {
		return "1 GHz / PCI64C"
	}
	return "1 GHz / PCI64B"
}

func main() {
	fmt.Printf("paper testbed: 32 heterogeneous nodes, 4-element reduce, max skew %v, %d iterations\n\n", maxSkew, iters)

	nabAvg, nabClass, n := measure(false, 3)
	abAvg, abClass, _ := measure(true, 3)

	fmt.Printf("%-20s %14s %14s %8s\n", "node class", "default", "app-bypass", "factor")
	for _, k := range []string{"700 MHz / PCI64B", "1 GHz / PCI64B", "1 GHz / PCI64C"} {
		fmt.Printf("%-20s %14v %14v %7.1fx   (%d nodes)\n",
			k, nabClass[k].Round(100*time.Nanosecond), abClass[k].Round(100*time.Nanosecond),
			float64(nabClass[k])/float64(abClass[k]), n[k])
	}
	fmt.Printf("%-20s %14v %14v %7.1fx\n", "cluster average",
		nabAvg.Round(100*time.Nanosecond), abAvg.Round(100*time.Nanosecond), float64(nabAvg)/float64(abAvg))
	fmt.Printf("\nthe interlaced machine file puts every 1 GHz node at an odd rank, and odd ranks\n")
	fmt.Printf("are always leaves of the binomial tree rooted at 0 — a leaf's only action is one\n")
	fmt.Printf("send, so bypass neither helps nor hurts it (§II); every internal node is 700 MHz.\n")
	fmt.Printf("paper reports a maximum factor of improvement of 5.1 under these conditions (Fig. 6b/7b)\n")
}
