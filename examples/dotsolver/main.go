// Distributed iterative solver with residual-norm monitoring — the
// class of application the paper's motivation cites: large-scale
// scientific codes whose reductions are almost all on one to three
// elements (Moody et al., ref [9]: "95% of all reductions are performed
// on three or less elements").
//
// Sixteen ranks run Jacobi sweeps on a block-distributed tridiagonal
// system A·x = b, A = tridiag(-1, 4, -1). After every sweep each rank
// contributes its local ‖r‖² to a single-element reduction so rank 0
// can monitor convergence — standard practice in production solvers.
//
// With the default implementation every internal tree rank blocks in
// that reduction each sweep, inheriting its subtree's load imbalance.
// With the split-phase application-bypass reduction (IReduce, §II of
// the paper) the monitoring traffic flows entirely in the background:
// no rank ever waits for it, and rank 0 collects the whole residual
// history at the end.
//
//	go run ./examples/dotsolver
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"abred"
)

const (
	ranks     = 16
	localN    = 32
	sweeps    = 60
	imbalance = 150 * time.Microsecond
)

// haloExchange shares block-boundary values with neighbours (even ranks
// send first, odd ranks receive first).
func haloExchange(r *abred.Rank, x []float64) (left, right float64) {
	rank, size := r.Rank(), r.Size()
	const tagL, tagR = 1, 2
	send := func() {
		if rank > 0 {
			r.Send(rank-1, tagR, x[:1])
		}
		if rank < size-1 {
			r.Send(rank+1, tagL, x[len(x)-1:])
		}
	}
	recv := func() {
		if rank > 0 {
			left = r.Recv(rank-1, tagL, 1)[0]
		}
		if rank < size-1 {
			right = r.Recv(rank+1, tagR, 1)[0]
		}
	}
	if rank%2 == 0 {
		send()
		recv()
	} else {
		recv()
		send()
	}
	return left, right
}

// sweep performs one Jacobi update and returns the local ‖r‖².
func sweep(r *abred.Rank, x, next []float64) float64 {
	left, right := haloExchange(r, x)
	res := 0.0
	for i := range x {
		lo, hi := left, right
		if i > 0 {
			lo = x[i-1]
		} else if r.Rank() == 0 {
			lo = 0
		}
		if i < len(x)-1 {
			hi = x[i+1]
		} else if r.Rank() == r.Size()-1 {
			hi = 0
		}
		next[i] = (1 + lo + hi) / 4
		ri := 1 + lo + hi - 4*x[i]
		res += ri * ri
	}
	copy(x, next)
	return res
}

// solve runs the sweeps; split selects split-phase (application-bypass)
// monitoring. It returns the residual history at rank 0, the wall time
// and rank 8's time spent inside reduction calls.
func solve(split bool, seed int64) (history []float64, wall, inReduce time.Duration) {
	cl := abred.NewCluster(abred.WithNodes(ranks), abred.WithSeed(seed))
	wall = cl.Run(func(r *abred.Rank) {
		rng := rand.New(rand.NewSource(seed + int64(r.Rank())))
		x := make([]float64, localN)
		next := make([]float64, localN)
		futures := make([]*abred.Future, 0, sweeps)
		var calls time.Duration

		for it := 0; it < sweeps; it++ {
			r.Compute(time.Duration(rng.Int63n(int64(imbalance))))
			res := sweep(r, x, next)
			t0 := r.Now()
			if split {
				futures = append(futures, r.IReduce([]float64{res}, abred.Sum, 0))
			} else {
				v := r.ReduceNoBypass([]float64{res}, abred.Sum, 0)
				if r.Rank() == 0 {
					history = append(history, math.Sqrt(v[0]))
				}
			}
			calls += r.Now() - t0
		}

		if split {
			// The solver is done; now collect the monitoring history.
			for _, f := range futures {
				if v := f.Wait(); v != nil {
					history = append(history, math.Sqrt(v[0]))
				}
			}
		}
		r.Compute(time.Millisecond)
		r.Barrier()
		if r.Rank() == 8 {
			inReduce = calls
		}
	})
	return history, wall, inReduce
}

func main() {
	fmt.Printf("Jacobi on a %d-unknown tridiagonal system, %d ranks, %d sweeps,\n", ranks*localN, ranks, sweeps)
	fmt.Printf("one 1-element residual reduction per sweep, imbalance up to %v\n\n", imbalance)

	nabHist, nabWall, nabCall := solve(false, 11)
	abHist, abWall, abCall := solve(true, 11)

	fmt.Printf("%-28s %14s %26s\n", "monitoring style", "job wall time", "rank 8 time in reductions")
	fmt.Printf("%-28s %14v %26v\n", "blocking (default reduce)", nabWall.Round(time.Microsecond), nabCall.Round(time.Microsecond))
	fmt.Printf("%-28s %14v %26v\n", "split-phase (IReduce, AB)", abWall.Round(time.Microsecond), abCall.Round(time.Microsecond))
	fmt.Printf("\nresidual history identical: first %.3e, last %.3e (both styles agree: %v)\n",
		nabHist[0], nabHist[len(nabHist)-1], equal(nabHist, abHist))
	fmt.Printf("time inside reduction calls cut %.0fx — those cycles are free for the solver\n",
		float64(nabCall)/float64(abCall))
	fmt.Printf("(wall times %v vs %v: the sweep's halo chain, not the monitoring, bounds this job)\n",
		nabWall.Round(time.Microsecond), abWall.Round(time.Microsecond))
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12*math.Max(1, math.Abs(a[i])) {
			return false
		}
	}
	return true
}
