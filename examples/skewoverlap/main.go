// Skew tolerance and communication/computation overlap — the paper's
// motivating scenario (§II). Sixteen ranks iterate: compute a randomly
// imbalanced amount of work, reduce a 4-element vector, repeat. With the
// default reduction, internal tree ranks burn CPU polling for late
// children; with application bypass the same cycles go into the next
// iteration's computation, so the job finishes earlier and the CPU time
// attributable to reduction collapses.
//
//	go run ./examples/skewoverlap
package main

import (
	"fmt"
	"math/rand"
	"time"

	"abred"
)

const (
	ranks   = 16
	iters   = 40
	maxWork = 800 * time.Microsecond
)

func run(ab bool, seed int64) (wall, reduceCPU time.Duration) {
	cl := abred.NewCluster(abred.WithNodes(ranks), abred.WithSeed(seed))
	var totalInCall time.Duration
	wall = cl.Run(func(r *abred.Rank) {
		rng := rand.New(rand.NewSource(seed + int64(r.Rank())))
		in := make([]float64, 4)
		var inCall time.Duration
		for it := 0; it < iters; it++ {
			// Imbalanced work: each rank computes a different amount.
			work := time.Duration(rng.Int63n(int64(maxWork)))
			r.Compute(work)
			for i := range in {
				in[i] = float64(r.Rank()*it + i)
			}
			t0 := r.Now()
			if ab {
				r.Reduce(in, abred.Sum, 0)
			} else {
				r.ReduceNoBypass(in, abred.Sum, 0)
			}
			inCall += r.Now() - t0
		}
		// Drain outstanding asynchronous work before finishing.
		r.Compute(2 * time.Millisecond)
		r.Barrier()
		if r.Rank() == ranks/2 {
			totalInCall = inCall
		}
	})
	return wall, totalInCall
}

func main() {
	nabWall, nabCall := run(false, 7)
	abWall, abCall := run(true, 7)

	fmt.Printf("%d ranks, %d iterations, work imbalance up to %v per iteration\n\n", ranks, iters, maxWork)
	fmt.Printf("%-22s %14s %26s\n", "implementation", "job wall time", "rank 8 time inside Reduce")
	fmt.Printf("%-22s %14v %26v\n", "default (blocking)", nabWall.Round(time.Microsecond), nabCall.Round(time.Microsecond))
	fmt.Printf("%-22s %14v %26v\n", "application-bypass", abWall.Round(time.Microsecond), abCall.Round(time.Microsecond))
	fmt.Printf("\nwall-time speedup: %.2fx; in-call reduction time cut by %.1fx\n",
		float64(nabWall)/float64(abWall), float64(nabCall)/float64(abCall))
}
