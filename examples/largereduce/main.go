// Large-message reductions: the §V-B open problem. The paper's
// implementation falls back to the blocking reduction for messages
// beyond the eager limit; this library optionally extends bypass to
// rendezvous-sized payloads, streaming a late child's data with a
// signal-driven RTS/CTS/Data handshake while the parent keeps
// computing. This example reduces a 64 KiB vector on 8 nodes with one
// late rank, under all three policies.
//
//	go run ./examples/largereduce
package main

import (
	"fmt"
	"time"

	"abred"
)

const (
	nodes    = 8
	elements = 8192 // 64 KiB of float64
	lateBy   = 600 * time.Microsecond
)

func run(mode string, seed int64) (rank2InCall time.Duration, result float64) {
	cl := abred.NewCluster(abred.WithNodes(nodes), abred.WithSeed(seed))
	cl.Run(func(r *abred.Rank) {
		if mode == "rendezvous-bypass" {
			r.EnableRendezvousBypass()
		}
		in := make([]float64, elements)
		for i := range in {
			in[i] = float64(r.Rank())
		}
		if r.Rank() == 7 {
			r.Compute(lateBy)
		}
		t0 := r.Now()
		var v []float64
		switch mode {
		case "default":
			v = r.ReduceNoBypass(in, abred.Sum, 0)
		default:
			v = r.Reduce(in, abred.Sum, 0)
		}
		inCall := r.Now() - t0
		r.Compute(10 * time.Millisecond) // async streaming happens here
		r.Barrier()
		if r.Rank() == 2 { // internal node: children 3 and 6's subtree
			rank2InCall = inCall
		}
		if r.Rank() == 0 {
			result = v[0]
		}
	})
	return rank2InCall, result
}

func main() {
	fmt.Printf("%d-element (64 KiB) sum on %d nodes, rank 7 late by %v\n\n", elements, nodes, lateBy)
	fmt.Printf("%-26s %22s %10s\n", "policy", "rank 2 inside Reduce", "result")
	for _, mode := range []struct{ label, m string }{
		{"default", "default"},
		{"bypass (falls back, §V-B)", "bypass"},
		{"rendezvous-bypass", "rendezvous-bypass"},
	} {
		inCall, res := run(mode.m, 7)
		fmt.Printf("%-26s %22v %10.0f\n", mode.label, inCall.Round(time.Microsecond), res)
	}
	fmt.Println("\nwith rendezvous bypass the internal rank returns immediately; the late")
	fmt.Println("child's 64 KiB stream and the combine all run from signal handlers.")
}
