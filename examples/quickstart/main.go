// Quickstart: run an application-bypass reduction on a simulated
// 8-node cluster and compare it with the default blocking reduction.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"abred"
)

func main() {
	cl := abred.NewCluster(abred.WithNodes(8), abred.WithSeed(42))

	fmt.Println("== application-bypass reduce on 8 nodes ==")
	cl.Run(func(r *abred.Rank) {
		// Each rank contributes [rank, rank, rank, rank].
		in := []float64{float64(r.Rank()), float64(r.Rank()), float64(r.Rank()), float64(r.Rank())}

		// Rank 5 is late — in a real application this is load
		// imbalance, an interrupt, a page fault...
		if r.Rank() == 5 {
			r.Compute(300 * time.Microsecond)
		}

		t0 := r.Now()
		sum := r.Reduce(in, abred.Sum, 0)
		inCall := r.Now() - t0

		// Internal tree ranks return from Reduce long before rank 5's
		// value arrives; their part completes during this computation.
		r.Compute(500 * time.Microsecond)
		r.Barrier()

		if r.Rank() == 0 {
			fmt.Printf("root result: %v (expected [28 28 28 28])\n", sum)
		}
		if r.Rank() == 4 { // rank 4 is internal: children 5 and 6
			m := r.Metrics()
			fmt.Printf("rank 4 spent %v inside Reduce; %d of its children were handled asynchronously\n",
				inCall.Round(time.Microsecond), m.AsyncChildren)
		}
	})

	fmt.Println("\n== the same with the default (blocking) reduction ==")
	cl2 := abred.NewCluster(abred.WithNodes(8), abred.WithSeed(42))
	cl2.Run(func(r *abred.Rank) {
		in := []float64{float64(r.Rank()), float64(r.Rank()), float64(r.Rank()), float64(r.Rank())}
		if r.Rank() == 5 {
			r.Compute(300 * time.Microsecond)
		}
		t0 := r.Now()
		sum := r.ReduceNoBypass(in, abred.Sum, 0)
		inCall := r.Now() - t0
		r.Barrier()
		if r.Rank() == 0 {
			fmt.Printf("root result: %v\n", sum)
		}
		if r.Rank() == 4 {
			fmt.Printf("rank 4 spent %v inside Reduce — blocked on its late child\n",
				inCall.Round(time.Microsecond))
		}
	})
}
