package abred

import (
	"time"

	"abred/internal/cluster"
	"abred/internal/coll"
	"abred/internal/core"
	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/mpi"
)

// Op is a reduction operator.
type Op = mpi.Op

// Reduction operators.
const (
	Sum  = mpi.OpSum
	Prod = mpi.OpProd
	Max  = mpi.OpMax
	Min  = mpi.OpMin
	LAnd = mpi.OpLAnd
	LOr  = mpi.OpLOr
	BAnd = mpi.OpBAnd
	BOr  = mpi.OpBOr
	BXor = mpi.OpBXor
)

// Metrics exposes the application-bypass engine's counters.
type Metrics = core.Metrics

// NodeSpec describes one node's hardware.
type NodeSpec = model.NodeSpec

// FaultConfig describes fabric fault injection (see WithFault); the
// zero value is a perfect fabric.
type FaultConfig = fault.Config

// FaultRule is the stochastic fault profile of a link.
type FaultRule = fault.Rule

// FaultScript drops the Nth frame on one directed link.
type FaultScript = fault.Script

// Cluster is a simulated machine room ready to run SPMD programs.
type Cluster struct {
	c *cluster.Cluster
}

// NewCluster builds a cluster; see the With* options. By default it has
// 8 nodes of the paper's interlaced heterogeneous mix.
func NewCluster(opts ...Option) *Cluster {
	cfg := config{
		specs: model.PaperCluster(8),
		seed:  1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &Cluster{c: cluster.New(cluster.Config{
		Specs: cfg.specs,
		Costs: cfg.costs,
		Seed:  cfg.seed,
		Fault: cfg.fault,
	})}
}

// Size returns the number of nodes.
func (cl *Cluster) Size() int { return len(cl.c.Nodes) }

// Close releases the cluster's simulated processes (including per-node
// NIC control programs). Programs that build many clusters should Close
// each when done; the cluster cannot Run again afterwards.
func (cl *Cluster) Close() { cl.c.Close() }

// Run executes fn once per rank (each on its own simulated process) and
// drives the simulation until every rank returns. It reports the virtual
// time consumed. Run may be called repeatedly for phased programs.
func (cl *Cluster) Run(fn func(r *Rank)) time.Duration {
	return cl.c.Run(func(n *cluster.Node, w *mpi.Comm) {
		fn(&Rank{node: n, w: w})
	})
}

// EngineMetrics returns rank r's application-bypass counters after (or
// between) runs.
func (cl *Cluster) EngineMetrics(r int) Metrics {
	return cl.c.Nodes[r].Engine.Metrics
}

// Rank is one process's handle inside Run: its identity, clock and the
// collective operations of the library.
type Rank struct {
	node *cluster.Node
	w    *mpi.Comm
}

// Rank returns the caller's rank.
func (r *Rank) Rank() int { return r.node.ID }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.w.Size() }

// Now returns the current virtual time.
func (r *Rank) Now() time.Duration { return r.node.Proc.Now() }

// CPUTime returns the virtual CPU time this rank has consumed.
func (r *Rank) CPUTime() time.Duration { return r.node.Proc.Busy() }

// Compute busy-spins for d of application work. The spin is
// interruptible: pending application-bypass work (signal handlers)
// executes inside it, exactly like computation on a real node. It
// returns the elapsed time, which exceeds d when handlers ran.
func (r *Rank) Compute(d time.Duration) time.Duration {
	return r.node.Proc.SpinInterruptible(d)
}

// Reduce is the application-bypass reduction (the paper's contribution).
// All ranks must call it; the combined result is returned at root and
// nil elsewhere. Internal tree ranks may return before their children
// have reported; their remaining work happens asynchronously during
// subsequent Compute calls or MPI operations.
func (r *Rank) Reduce(in []float64, op Op, root int) []float64 {
	out := r.buffers(len(in), root)
	r.node.Engine.Reduce(r.w, mpi.Float64sToBytes(in), out, len(in), mpi.Float64, op, root)
	if r.Rank() != root {
		return nil
	}
	return mpi.BytesToFloat64s(out)
}

// ReduceNoBypass is the default MPICH blocking reduction — the baseline
// the paper compares against. Internal ranks block until their whole
// subtree has reported.
func (r *Rank) ReduceNoBypass(in []float64, op Op, root int) []float64 {
	out := r.buffers(len(in), root)
	coll.Reduce(r.w, mpi.Float64sToBytes(in), out, len(in), mpi.Float64, op, root)
	if r.Rank() != root {
		return nil
	}
	return mpi.BytesToFloat64s(out)
}

// ReduceOnNIC runs the reduction on the NIC plane (the paper's §VII
// future-work extension): non-root ranks return as soon as their
// contribution reaches their NIC.
func (r *Rank) ReduceOnNIC(in []float64, op Op, root int) []float64 {
	out := r.buffers(len(in), root)
	r.node.Engine.NICReduce(r.w, mpi.Float64sToBytes(in), out, len(in), mpi.Float64, op, root)
	if r.Rank() != root {
		return nil
	}
	return mpi.BytesToFloat64s(out)
}

// Future is a split-phase operation handle.
type Future struct {
	req *core.Request
	out []byte
	own bool
}

// Wait blocks (burning CPU, like any MPI wait) until the operation
// completes locally and returns the result buffer where applicable.
func (f *Future) Wait() []float64 {
	f.req.Wait()
	if !f.own {
		return nil
	}
	return mpi.BytesToFloat64s(f.out)
}

// Done polls for completion without blocking.
func (f *Future) Done() bool { return f.req.Done() }

// IReduce is the split-phase application-bypass reduction (§II): it
// returns immediately on every rank, including the root, which therefore
// also benefits from bypass. Wait returns the result at root.
func (r *Rank) IReduce(in []float64, op Op, root int) *Future {
	out := make([]byte, len(in)*8)
	req := r.node.Engine.IReduce(r.w, mpi.Float64sToBytes(in), out, len(in), mpi.Float64, op, root)
	return &Future{req: req, out: out, own: r.Rank() == root}
}

// IAllreduce posts a split-phase allreduce (§II's enhancement for
// synchronizing operations): it returns immediately; Wait returns the
// combined result on every rank. No other collective may be issued on
// the communicator until it completes.
func (r *Rank) IAllreduce(in []float64, op Op) *Future {
	out := make([]byte, len(in)*8)
	req := r.node.Engine.IAllreduce(r.w, mpi.Float64sToBytes(in), out, len(in), mpi.Float64, op)
	return &Future{req: req, out: out, own: true}
}

// IBarrier posts a split-phase barrier: Wait (or Done) reports once
// every rank has entered it, while the caller keeps computing in the
// meantime.
func (r *Rank) IBarrier() *Future {
	return &Future{req: r.node.Engine.IBarrier(r.w)}
}

// Allreduce combines every rank's contribution and returns the result on
// all ranks, composed from application-bypass reduction and broadcast.
func (r *Rank) Allreduce(in []float64, op Op) []float64 {
	out := make([]byte, len(in)*8)
	r.node.Engine.Allreduce(r.w, mpi.Float64sToBytes(in), out, len(in), mpi.Float64, op)
	return mpi.BytesToFloat64s(out)
}

// Bcast distributes buf from root using application-bypass forwarding:
// a late intermediate rank no longer stalls its subtree. The received
// values are returned on every rank.
func (r *Rank) Bcast(vals []float64, root int) []float64 {
	buf := make([]byte, len(vals)*8)
	if r.Rank() == root {
		copy(buf, mpi.Float64sToBytes(vals))
	}
	r.node.Engine.Bcast(r.w, buf, len(vals), mpi.Float64, root)
	return mpi.BytesToFloat64s(buf)
}

// BcastNoBypass is the default MPICH binomial broadcast.
func (r *Rank) BcastNoBypass(vals []float64, root int) []float64 {
	buf := make([]byte, len(vals)*8)
	if r.Rank() == root {
		copy(buf, mpi.Float64sToBytes(vals))
	}
	coll.Bcast(r.w, buf, len(vals), mpi.Float64, root)
	return mpi.BytesToFloat64s(buf)
}

// Barrier synchronizes all ranks (MPICH tree barrier).
func (r *Rank) Barrier() { coll.Barrier(r.w) }

// Gather collects each rank's values at root (concatenated by rank);
// non-roots receive nil.
func (r *Rank) Gather(in []float64, root int) []float64 {
	var out []byte
	if r.Rank() == root {
		out = make([]byte, len(in)*8*r.Size())
	}
	coll.Gather(r.w, mpi.Float64sToBytes(in), out, len(in), mpi.Float64, root)
	if r.Rank() != root {
		return nil
	}
	return mpi.BytesToFloat64s(out)
}

// Scan returns the inclusive prefix reduction over ranks 0..Rank().
func (r *Rank) Scan(in []float64, op Op) []float64 {
	out := make([]byte, len(in)*8)
	coll.Scan(r.w, mpi.Float64sToBytes(in), out, len(in), mpi.Float64, op)
	return mpi.BytesToFloat64s(out)
}

// Send delivers vals to rank dst with tag (blocking point-to-point).
func (r *Rank) Send(dst, tag int, vals []float64) {
	r.w.Send(dst, int32(tag), mpi.Float64sToBytes(vals))
}

// Recv receives n float64 values from rank src with tag.
func (r *Rank) Recv(src, tag, n int) []float64 {
	buf := make([]byte, n*8)
	r.w.Recv(src, int32(tag), buf)
	return mpi.BytesToFloat64s(buf)
}

// Metrics returns this rank's application-bypass counters so far.
func (r *Rank) Metrics() Metrics { return r.node.Engine.Metrics }

// EnableRendezvousBypass turns on application bypass for messages
// beyond the eager limit (the paper's unexplored §V-B extension): large
// late children are streamed by a signal-driven RTS/CTS/Data handshake
// instead of forcing the fallback to the blocking implementation.
func (r *Rank) EnableRendezvousBypass() { r.node.Engine.EnableRendezvousAB() }

// SetExitDelay configures the §IV-E exit-delay heuristic: linger up to
// base + perProc×size inside Reduce so nearly on-time children complete
// synchronously. Zero values disable it (the paper's default).
func (r *Rank) SetExitDelay(base, perProc time.Duration) {
	if base == 0 && perProc == 0 {
		r.node.Engine.SetDelayPolicy(core.NoDelay{})
		return
	}
	r.node.Engine.SetDelayPolicy(core.ProcCountDelay{Base: base, PerProc: perProc})
}

// buffers allocates the receive buffer only where MPI requires one.
func (r *Rank) buffers(count, root int) []byte {
	if r.Rank() == root {
		return make([]byte, count*8)
	}
	return make([]byte, count*8) // non-roots pass scratch; keeps API simple
}
