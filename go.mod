module abred

go 1.22
