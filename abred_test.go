package abred

import (
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	cl := NewCluster(WithNodes(8), WithSeed(1))
	if cl.Size() != 8 {
		t.Fatalf("size = %d", cl.Size())
	}
	var sum []float64
	cl.Run(func(r *Rank) {
		in := []float64{float64(r.Rank()), 1}
		got := r.Reduce(in, Sum, 0)
		r.Compute(500 * time.Microsecond)
		r.Barrier()
		if r.Rank() == 0 {
			sum = got
		} else if got != nil {
			t.Errorf("non-root rank %d got a result: %v", r.Rank(), got)
		}
	})
	if sum[0] != 28 || sum[1] != 8 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestAllOpsOnFacade(t *testing.T) {
	cl := NewCluster(WithHomogeneousNodes(6), WithSeed(2))
	cl.Run(func(r *Rank) {
		n := float64(r.Rank())

		if v := r.ReduceNoBypass([]float64{n}, Max, 3); r.Rank() == 3 && v[0] != 5 {
			t.Errorf("max = %v", v)
		}
		if v := r.Allreduce([]float64{1}, Sum); v[0] != 6 {
			t.Errorf("allreduce = %v", v)
		}
		if v := r.Bcast([]float64{7, 8}, 2); v[0] != 7 || v[1] != 8 {
			t.Errorf("bcast = %v", v)
		}
		if v := r.BcastNoBypass([]float64{9}, 1); v[0] != 9 {
			t.Errorf("bcast-nobypass = %v", v)
		}
		if v := r.Scan([]float64{1}, Sum); v[0] != float64(r.Rank()+1) {
			t.Errorf("scan = %v", v)
		}
		g := r.Gather([]float64{n}, 0)
		if r.Rank() == 0 {
			for i := 0; i < 6; i++ {
				if g[i] != float64(i) {
					t.Errorf("gather = %v", g)
					break
				}
			}
		} else if g != nil {
			t.Error("gather leaked to non-root")
		}
		r.Barrier()
	})
}

func TestFacadePointToPoint(t *testing.T) {
	cl := NewCluster(WithNodes(2), WithSeed(3))
	cl.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 5, []float64{1.25, -2})
		} else {
			got := r.Recv(0, 5, 2)
			if got[0] != 1.25 || got[1] != -2 {
				t.Errorf("recv = %v", got)
			}
		}
	})
}

func TestFacadeIReduceOverlap(t *testing.T) {
	cl := NewCluster(WithNodes(8), WithSeed(4))
	cl.Run(func(r *Rank) {
		if r.Rank() != 0 {
			r.Compute(time.Duration(r.Rank()) * 40 * time.Microsecond)
		}
		fut := r.IReduce([]float64{2}, Prod, 0)
		r.Compute(800 * time.Microsecond)
		v := fut.Wait()
		if r.Rank() == 0 {
			if v[0] != 256 {
				t.Errorf("ireduce prod = %v", v)
			}
		} else if v != nil {
			t.Error("non-root got a result")
		}
		if !fut.Done() {
			t.Error("future not done after Wait")
		}
		r.Barrier()
	})
}

func TestFacadeReduceOnNIC(t *testing.T) {
	cl := NewCluster(WithNodes(8), WithSeed(5))
	cl.Run(func(r *Rank) {
		v := r.ReduceOnNIC([]float64{float64(r.Rank())}, Sum, 0)
		r.Compute(time.Millisecond)
		r.Barrier()
		if r.Rank() == 0 && v[0] != 28 {
			t.Errorf("nic reduce = %v", v)
		}
	})
	if cl.EngineMetrics(1).NICReductions != 1 {
		t.Error("NIC metrics missing")
	}
}

func TestFacadeIAllreduceAndIBarrier(t *testing.T) {
	cl := NewCluster(WithNodes(8), WithSeed(12))
	cl.Run(func(r *Rank) {
		if r.Rank()%3 == 0 {
			r.Compute(time.Duration(r.Rank()) * 30 * time.Microsecond)
		}
		fut := r.IAllreduce([]float64{1, float64(r.Rank())}, Sum)
		r.Compute(2 * time.Millisecond)
		v := fut.Wait()
		if v[0] != 8 || v[1] != 28 {
			t.Errorf("rank %d iallreduce = %v", r.Rank(), v)
		}

		b := r.IBarrier()
		r.Compute(2 * time.Millisecond)
		if !b.Done() {
			b.Wait()
		}
		r.Barrier()
	})
}

func TestDeterministicRuns(t *testing.T) {
	run := func() time.Duration {
		cl := NewCluster(WithPaperCluster(), WithSeed(77))
		return cl.Run(func(r *Rank) {
			for i := 0; i < 5; i++ {
				r.Reduce([]float64{1, 2, 3, 4}, Sum, 0)
				r.Compute(300 * time.Microsecond)
				r.Barrier()
			}
		})
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical seeds diverged: %v vs %v", a, b)
	}
}

func TestMultiPhaseRun(t *testing.T) {
	cl := NewCluster(WithNodes(4), WithSeed(6))
	var first []float64
	cl.Run(func(r *Rank) {
		if v := r.Reduce([]float64{1}, Sum, 0); r.Rank() == 0 {
			first = v
		}
		r.Barrier()
	})
	var second []float64
	cl.Run(func(r *Rank) {
		if v := r.Reduce([]float64{2}, Sum, 0); r.Rank() == 0 {
			second = v
		}
		r.Barrier()
	})
	if first[0] != 4 || second[0] != 8 {
		t.Errorf("phases = %v, %v", first, second)
	}
}

func TestComputeInterruptible(t *testing.T) {
	cl := NewCluster(WithNodes(4), WithSeed(7))
	cl.Run(func(r *Rank) {
		if r.Rank() == 3 {
			r.Compute(400 * time.Microsecond)
		}
		r.Reduce([]float64{1}, Sum, 0)
		elapsed := r.Compute(time.Millisecond)
		if r.Rank() == 2 && elapsed <= time.Millisecond {
			t.Error("internal rank's compute was not extended by async handling")
		}
		r.Barrier()
	})
}

func TestExitDelayOption(t *testing.T) {
	cl := NewCluster(WithNodes(8), WithSeed(8))
	cl.Run(func(r *Rank) {
		r.SetExitDelay(5*time.Microsecond, time.Microsecond)
		if r.Rank() == 7 {
			r.Compute(10 * time.Microsecond)
		}
		v := r.Reduce([]float64{1}, Sum, 0)
		r.Compute(500 * time.Microsecond)
		r.Barrier()
		if r.Rank() == 0 && v[0] != 8 {
			t.Errorf("reduce with delay = %v", v)
		}
		r.SetExitDelay(0, 0) // back to the paper default
	})
}

func TestOptionsCombine(t *testing.T) {
	cl := NewCluster(
		WithSpecs([]NodeSpec{{Class: "x", CPUMHz: 500, PCIMBps: 100, LANaiMHz: 100}, {Class: "x", CPUMHz: 500, PCIMBps: 100, LANaiMHz: 100}}),
		WithSeed(9),
		WithSignalCost(20*time.Microsecond),
		WithEagerThreshold(1024),
	)
	if cl.Size() != 2 {
		t.Fatalf("size = %d", cl.Size())
	}
	cl.Run(func(r *Rank) {
		v := r.Reduce([]float64{1}, Sum, 0)
		if r.Rank() == 0 && v[0] != 2 {
			t.Errorf("reduce = %v", v)
		}
	})
}

func TestFacadeRendezvousBypass(t *testing.T) {
	cl := NewCluster(WithNodes(4), WithSeed(13))
	cl.Run(func(r *Rank) {
		r.EnableRendezvousBypass()
		in := make([]float64, 4096) // 32 KiB, beyond the eager limit
		for i := range in {
			in[i] = float64(r.Rank())
		}
		if r.Rank() == 3 {
			r.Compute(500 * time.Microsecond)
		}
		v := r.Reduce(in, Sum, 0)
		r.Compute(8 * time.Millisecond)
		r.Barrier()
		if r.Rank() == 0 && (v[0] != 6 || v[4095] != 6) {
			t.Errorf("large reduce = %v...%v", v[0], v[4095])
		}
	})
	if cl.EngineMetrics(2).RendezvousChildren == 0 {
		t.Error("rendezvous bypass not engaged")
	}
	if cl.EngineMetrics(2).SizeFallbacks != 0 {
		t.Error("fell back despite rendezvous bypass")
	}
}

// TestFacadeLossyReduce: a reduction over a lossy fabric still returns
// the exact result (GM reliability recovers every drop), and identical
// fault seeds reproduce the run bit for bit.
func TestFacadeLossyReduce(t *testing.T) {
	run := func() (time.Duration, []float64) {
		cl := NewCluster(WithNodes(8), WithSeed(11), WithLoss(0.05), WithFaultSeed(7))
		var sum []float64
		end := cl.Run(func(r *Rank) {
			for i := 0; i < 3; i++ {
				if v := r.Reduce([]float64{1, float64(r.Rank())}, Sum, 0); r.Rank() == 0 {
					sum = v
				}
				r.Compute(300 * time.Microsecond)
				r.Barrier()
			}
		})
		return end, sum
	}
	end1, sum1 := run()
	if sum1[0] != 8 || sum1[1] != 28 {
		t.Fatalf("lossy reduce = %v, want exact [8 28]", sum1)
	}
	end2, _ := run()
	if end1 != end2 {
		t.Errorf("identical fault seeds diverged: %v vs %v", end1, end2)
	}
	// A different fault seed drops different frames and lands on a
	// different virtual end time.
	cl := NewCluster(WithNodes(8), WithSeed(11), WithLoss(0.05), WithFaultSeed(8))
	end3 := cl.Run(func(r *Rank) {
		for i := 0; i < 3; i++ {
			r.Reduce([]float64{1, float64(r.Rank())}, Sum, 0)
			r.Compute(300 * time.Microsecond)
			r.Barrier()
		}
	})
	if end3 == end1 {
		t.Log("note: different fault seeds produced the same end time (possible, not a failure)")
	}
}

func TestCPUTimeAccounting(t *testing.T) {
	cl := NewCluster(WithNodes(2), WithSeed(10))
	cl.Run(func(r *Rank) {
		before := r.CPUTime()
		r.Compute(100 * time.Microsecond)
		if got := r.CPUTime() - before; got < 100*time.Microsecond {
			t.Errorf("cpu time = %v, want ≥100µs", got)
		}
		if r.Now() <= 0 {
			t.Error("virtual clock did not advance")
		}
	})
}
