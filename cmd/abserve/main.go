// Command abserve runs the scenario service: the sweep engine behind
// abscale/abbench offered as a long-running HTTP server.
//
// Usage:
//
//	abserve [-addr :8080] [-workers N] [-cachesize N] [-cachedir DIR]
//	        [-relci F] [-minreps N] [-maxreps N] [-maxnodes N]
//	        [-maxiters N] [-budget D]
//
// Clients POST a scenario spec to /run:
//
//	curl -s localhost:8080/run -d '{"nodes":1024,"mode":"ab","topo":"fattree:16"}'
//
// and receive a JSON result whose every metric carries mean, std and a
// 95% confidence half-width over adaptively repeated simulations;
// repetitions continue until the primary metric's relative CI95
// half-width drops below -relci (default 5%) or the repetition budget
// is exhausted. Results are content-addressed on the normalized spec:
// equivalent spellings ("fattree:16:o1" vs "fattree:16", "1000us" vs
// "1ms") collapse to one cache key, repeat requests are served from an
// in-memory LRU (persisted under -cachedir when set), and identical
// concurrent requests share a single simulation. The X-Cache response
// header reports miss, hit or dedup.
//
// GET /healthz is the liveness probe; GET /metrics reports request,
// cache, single-flight, cluster-pool and run-latency counters as JSON.
//
// -budget bounds the wall-clock spent repeating one scenario; leaving
// it 0 (the default) keeps responses byte-deterministic even when they
// stop unconverged.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests
// complete, then the shared cluster pool is drained.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abred/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cachesize", 0, "in-memory result-cache capacity (0 = 4096)")
	cacheDir := flag.String("cachedir", "", "on-disk result store directory (empty = memory only)")
	relCI := flag.Float64("relci", 0, "default relative CI95 convergence target (0 = 0.05)")
	minReps := flag.Int("minreps", 0, "default minimum repetitions (0 = 3)")
	maxReps := flag.Int("maxreps", 0, "repetition ceiling and default (0 = 20)")
	maxNodes := flag.Int("maxnodes", 0, "largest accepted cluster (0 = 1<<20)")
	maxIters := flag.Int("maxiters", 0, "per-repetition iteration ceiling (0 = 1000)")
	budget := flag.Duration("budget", 0, "wall budget per scenario (0 = none, keeps byte-determinism)")
	flag.Parse()

	srv, err := serve.New(serve.Options{
		Workers:   *workers,
		CacheSize: *cacheSize,
		CacheDir:  *cacheDir,
		Limits: serve.Limits{
			MaxNodes:   *maxNodes,
			MaxReps:    *maxReps,
			MinReps:    *minReps,
			RelCI:      *relCI,
			MaxIters:   *maxIters,
			TimeBudget: *budget,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "abserve:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "abserve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "abserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight scenarios finish,
	// then release the warmed cluster pool.
	fmt.Fprintln(os.Stderr, "abserve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "abserve: shutdown:", err)
	}
	srv.Close()
}
