// Command abload load-tests the scenario service: -c concurrent
// clients issue -n POSTs to /run, cycling through a small scenario set
// so the run exercises cold computes, warm cache hits and single-flight
// dedups together. It reports the latency distribution and the X-Cache
// breakdown, and exits non-zero if any request fails.
//
// Usage:
//
//	abload [-url http://host:8080] [-n 150] [-c 8] [-nodes 64]
//
// With -url empty (the default) abload starts an in-process server on a
// loopback listener, so `make loadtest` is a single self-contained
// process — no daemon management, no port conflicts.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"abred/internal/serve"
	"abred/internal/stats"
)

func main() {
	url := flag.String("url", "", "server base URL (empty = start an in-process server)")
	n := flag.Int("n", 150, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	nodes := flag.Int("nodes", 64, "cluster size of the generated scenarios")
	flag.Parse()

	base := *url
	if base == "" {
		srv, err := serve.New(serve.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "abload:", err)
			os.Exit(1)
		}
		hs := httptest.NewServer(srv.Handler())
		defer func() { hs.Close(); srv.Close() }()
		base = hs.URL
		fmt.Fprintf(os.Stderr, "abload: in-process server at %s\n", base)
	}

	// The scenario set: few distinct keys relative to -n, so the steady
	// state is cache-dominated with a burst of dedups at the start.
	specs := []string{
		fmt.Sprintf(`{"nodes":%d,"cluster":"uniform","iters":5,"minreps":2,"maxreps":3}`, *nodes),
		fmt.Sprintf(`{"nodes":%d,"cluster":"uniform","mode":"nab","iters":5,"minreps":2,"maxreps":3}`, *nodes),
		fmt.Sprintf(`{"nodes":%d,"cluster":"uniform","topo":"fattree:8","iters":5,"minreps":2,"maxreps":3}`, *nodes),
		fmt.Sprintf(`{"nodes":%d,"cluster":"uniform","skew":"500us","iters":5,"minreps":2,"maxreps":3}`, *nodes),
	}

	var (
		mu       sync.Mutex
		lats     []float64
		byCache  = map[string]int{}
		failures int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				body := specs[i%len(specs)]
				t0 := time.Now()
				resp, err := http.Post(base+"/run", "application/json", strings.NewReader(body))
				lat := float64(time.Since(t0)) / float64(time.Millisecond)
				mu.Lock()
				if err != nil {
					failures++
					fmt.Fprintf(os.Stderr, "abload: request %d: %v\n", i, err)
				} else {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						failures++
						fmt.Fprintf(os.Stderr, "abload: request %d: status %d: %s\n", i, resp.StatusCode, b)
					} else {
						lats = append(lats, lat)
						byCache[resp.Header.Get("X-Cache")]++
					}
				}
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	sum := stats.SummarizeFloats(lats)
	fmt.Printf("abload: %d requests, %d clients, %v wall (%.1f req/s)\n",
		*n, *c, wall.Round(time.Millisecond), float64(*n)/wall.Seconds())
	fmt.Printf("abload: latency ms: p50 %.2f  p95 %.2f  p99 %.2f  mean %.2f ± %.2f (CI95)\n",
		sum.P50, sum.P95, sum.P99, sum.Mean, sum.CI95)
	fmt.Printf("abload: x-cache: miss %d  hit %d  dedup %d\n",
		byCache["miss"], byCache["hit"], byCache["dedup"])

	// Pull /metrics for the server-side view when the endpoint answers.
	if resp, err := http.Get(base + "/metrics"); err == nil {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("abload: server metrics: %s", b)
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "abload: %d requests failed\n", failures)
		os.Exit(1)
	}
	if byCache["miss"] == 0 || byCache["hit"] == 0 {
		fmt.Fprintln(os.Stderr, "abload: expected both cold misses and warm hits in the mix")
		os.Exit(1)
	}
}
