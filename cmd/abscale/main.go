// Command abscale projects the paper's comparison past its 32-node
// testbed — the future work named in §VII ("we intend to evaluate the
// performance of application-bypass operations on large-scale
// clusters"). It replicates the paper's interlaced heterogeneous node
// mix out to the requested sizes and reports average per-node CPU
// utilization for both implementations, skewed and unskewed. A second,
// large-N grid (default 2048–16384 nodes at reduced iterations) probes
// the scaling envelope the cluster-reuse and slab-allocation fast path
// makes practical on one machine.
//
// Usage:
//
//	abscale [-max N | -sizes 32,128,512,1024] [-count N] [-iters N]
//	        [-bigsizes 2048,4096,8192,16384] [-bigiters N] [-reuse=bool]
//	        [-toposizes 1024,...,16384] [-topoiters N] [-topo SPEC]
//	        [-lps N] [-pdessize N] [-pdeslps 1,2,4] [-pdesiters N]
//	        [-engine packet|flow] [-flowsizes 65536,...,1048576] [-flowiters N]
//	        [-flowpdessizes 65536,...] [-flowpdeslps 1,2,4] [-flowpdesiters N]
//	        [-jobs 4,8,16] [-oversub 1,4] [-place random,greedy]
//	        [-tenancynodes N] [-tenancyiters N] [-tenancycount N]
//	        [-seed N] [-skew D] [-loss P] [-faultseed N] [-parallel N]
//	        [-cpuprofile FILE] [-memprofile FILE] [-csv] [-benchjson FILE]
//
// -sizes names the node counts directly, overriding the -max doubling
// grid; -bigsizes "" skips the large-N grid. -reuse=false rebuilds every
// cluster from scratch instead of drawing from the reuse pool (results
// are byte-identical either way; only wall clock and allocations move).
// -loss P drops each frame with probability P (switching GM to reliable
// delivery); -faultseed seeds the dedicated fault stream.
//
// -toposizes enables the topology sweep at those node counts: the
// paper's ideal crossbar versus the routed fabric named by -topo
// (default fattree:16), where frames pay per-hop cut-through latency
// and queue at shared uplinks, plus bypass with the topology-aware
// reduction tree. -lps N partitions every routed-topology simulation
// into N pod-aligned logical processes run by the conservative parallel
// kernel (results per LP count are deterministic); -pdessize N adds a
// dedicated speedup sweep that reruns one N-node simulation on the
// -topo fabric at each -pdeslps count and reports wall-clock speedup
// over the monolithic kernel; when the LP count exceeds the machine's
// cores the run warns and marks the recorded speedups as invalid
// claims.
//
// -engine flow adds the flow-engine scaling grid: the -flowsizes node
// counts (default 65536–1048576, far past what the packet engine can
// hold) on the -topo fabric, nab versus ab, recorded as flow_sweep in
// -benchjson with per-size wall/heap/events columns. The packet-engine
// sweeps above still run and keep their baselines comparable. The flow
// engine also honours -lps: the max-min substrate is sharded along pod
// boundaries and run under the conservative parallel kernel, with
// cross-spine flows coupled through a stub/grant protocol.
// -flowpdessizes adds the parallel flow sweep: each listed size is
// rerun at every -flowpdeslps count (same nab/ab pair as the flow
// grid, so walls compare against the recorded monolithic flow_sweep
// baselines), best of 3 repetitions with a 95% confidence half-width,
// recorded as flow_pdes_sweep; the same core-count disclaimer as the
// packet PDES sweep applies when LPs exceed the machine's cores.
//
// -jobs enables the multi-tenant sweep: each listed job count is run on
// a -tenancynodes cluster with the -topo fabric at every -oversub
// uplink taper and every -place placement policy, arrivals drawn from a
// seeded Poisson process, each job reducing on its own sub-communicator
// while sharing the fabric with its neighbours. The table reports
// per-job completion-time percentiles with 95% confidence half-widths
// and the AB-vs-binomial reduction-CPU advantage; -benchjson records it
// as tenancy_sweep.
//
// -benchjson records the kernel's execution metrics —
// events/sec, allocs/event and peak heap for each sweep, plus the fixed
// 32-node kernel microbenchmark, the standard grid's pre-reuse baseline
// and the topology-sweep table — to FILE (the committed
// BENCH_kernel.json is produced this way via make bench).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"abred/internal/bench"
	"abred/internal/cluster"
	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/prof"
	"abred/internal/sim"
	"abred/internal/sweep"
	"abred/internal/topo"
	"abred/internal/workload"
)

// perfEntry is one sweep's execution record in -benchjson output.
type perfEntry struct {
	Sweep          string  `json:"sweep"`
	Sizes          []int   `json:"sizes"`
	Iters          int     `json:"iters"`
	Reuse          bool    `json:"reuse"`
	Jobs           int     `json:"jobs"`
	Workers        int     `json:"workers"`
	WallMS         float64 `json:"wall_ms"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	HeapPeak       uint64  `json:"heap_peak_bytes"`
}

func entry(name string, sizes []int, iters int, reuse bool, p sweep.Perf) perfEntry {
	return perfEntry{
		Sweep:          name,
		Sizes:          sizes,
		Iters:          iters,
		Reuse:          reuse,
		Jobs:           p.Jobs,
		Workers:        p.Workers,
		WallMS:         float64(p.Wall) / float64(time.Millisecond),
		Events:         p.Events,
		EventsPerSec:   p.EventsPerSec(),
		Allocs:         p.Allocs,
		AllocsPerEvent: p.AllocsPerEvent(),
		HeapPeak:       p.HeapPeak,
	}
}

// parseSizes parses a comma-separated node-count list ("" = empty).
func parseSizes(flagName, v string) []int {
	var sizes []int
	if v == "" {
		return nil
	}
	for _, f := range strings.Split(v, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "abscale: bad %s entry %q\n", flagName, f)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}
	return sizes
}

func main() {
	max := flag.Int("max", 256, "largest cluster size (power of two)")
	sizesFlag := flag.String("sizes", "", "comma-separated node counts (overrides -max)")
	count := flag.Int("count", 4, "message elements (double words)")
	iters := flag.Int("iters", 100, "iterations per data point")
	bigSizes := flag.String("bigsizes", "2048,4096,8192,16384", "large-N grid node counts (\"\" skips it)")
	bigIters := flag.Int("bigiters", 12, "iterations per large-N data point")
	topoSizes := flag.String("toposizes", "", "topology-sweep node counts (\"\" skips it)")
	topoIters := flag.Int("topoiters", 6, "iterations per topology-sweep data point")
	topoFlag := flag.String("topo", "fattree:16", "routed fabric the topology sweep compares against the crossbar")
	lps := flag.Int("lps", 0, "logical processes per simulation (parallel kernel; needs a routed -topo, 0/1 = monolithic)")
	pdesSize := flag.Int("pdessize", 0, "PDES speedup sweep node count (0 skips it)")
	pdesLPs := flag.String("pdeslps", "1,2,4", "comma-separated LP counts for the PDES speedup sweep")
	pdesIters := flag.Int("pdesiters", 6, "iterations per PDES speedup point")
	engineFlag := flag.String("engine", "packet", "simulation engine: packet (full fidelity) or flow (large-scale)")
	flowSizes := flag.String("flowsizes", "65536,262144,1048576", "flow-engine grid node counts (\"\" skips it; -engine flow only)")
	flowIters := flag.Int("flowiters", 3, "iterations per flow-engine data point")
	flowPdesSizes := flag.String("flowpdessizes", "", "parallel flow sweep node counts (\"\" skips it; -engine flow only)")
	flowPdesLPs := flag.String("flowpdeslps", "1,2,4", "comma-separated LP counts for the parallel flow sweep")
	flowPdesIters := flag.Int("flowpdesiters", 3, "iterations per parallel flow data point")
	jobsFlag := flag.String("jobs", "", "tenancy-sweep concurrent-job counts (\"\" skips the multi-tenant sweep)")
	oversubFlag := flag.String("oversub", "1,4", "tenancy-sweep oversubscription ratios applied to the -topo fabric")
	placeFlag := flag.String("place", "random,greedy", "tenancy-sweep placement policies (comma list of random|greedy|genetic)")
	tenancyNodes := flag.Int("tenancynodes", 64, "tenancy-sweep cluster size")
	tenancyIters := flag.Int("tenancyiters", 8, "iterations per tenant job in the tenancy sweep")
	tenancyCount := flag.Int("tenancycount", 256, "message elements per tenant reduction (large enough to contend on uplinks)")
	tenancyArrival := flag.Duration("tenancyarrival", 50*time.Microsecond, "mean tenant inter-arrival gap (Poisson)")
	reuse := flag.Bool("reuse", true, "reuse built clusters across grid cells (pool + Reset)")
	seed := flag.Int64("seed", 20030701, "simulation seed")
	skew := flag.Duration("skew", time.Millisecond, "maximum skew for the skewed sweep")
	loss := flag.Float64("loss", 0, "frame-drop probability on every link (enables GM reliable delivery)")
	faultSeed := flag.Int64("faultseed", 0, "seed of the dedicated fault-decision stream")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	csv := flag.Bool("csv", false, "emit CSV")
	benchJSON := flag.String("benchjson", "", "write kernel performance metrics here (empty to disable)")
	flag.Parse()

	// Validate the engine/kernel flag combination up front so a bad mix
	// (e.g. -lps on an unroutable topology) is a flag-level error, not a
	// panic deep inside the first sweep. Both engines honour -lps now:
	// the packet fabric and the flow substrate each shard along pods.
	engine, err := cluster.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abscale: %v\n", err)
		os.Exit(2)
	}
	if verr := (cluster.Config{Specs: model.Uniform(2), Engine: engine, LPs: *lps}).Validate(); verr != nil {
		fmt.Fprintf(os.Stderr, "abscale: %v\n", verr)
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abscale: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	sizes := parseSizes("-sizes", *sizesFlag)
	if sizes == nil {
		for n := 8; n <= *max; n *= 2 {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 {
		fmt.Fprintln(os.Stderr, "abscale: -max must be at least 8")
		os.Exit(2)
	}

	var pool *cluster.Pool
	if *reuse {
		pool = cluster.NewPool()
		defer pool.Drain()
	}

	var entries []perfEntry
	runGrid := func(grid string, gridSizes []int, gridIters int) {
		for _, s := range []struct {
			skew time.Duration
			note string
		}{
			{*skew, "skewed"},
			{0, "no artificial skew"},
		} {
			t := bench.ScaleProjection(gridSizes, s.skew, *count,
				bench.Opts{Iters: gridIters, Seed: *seed, Workers: *parallel, Pool: pool,
					Fault: fault.Config{Seed: *faultSeed, Rule: fault.Rule{Drop: *loss}},
					LPs:   *lps})
			t.Title = fmt.Sprintf("%s (%s%s, max skew %v, %d elements, %d iters)",
				t.Title, grid, s.note, s.skew, *count, gridIters)
			if *csv {
				t.WriteCSV(os.Stdout)
				fmt.Println()
			} else {
				t.Write(os.Stdout)
			}
			entries = append(entries, entry(grid+s.note, gridSizes, gridIters, *reuse, t.Perf))
		}
	}
	runGrid("", sizes, *iters)
	if big := parseSizes("-bigsizes", *bigSizes); len(big) > 0 {
		runGrid("large-n ", big, *bigIters)
	}

	var topoDoc *topoSweepDoc
	if ts := parseSizes("-toposizes", *topoSizes); len(ts) > 0 {
		ft, err := topo.ParseSpec(*topoFlag)
		if err != nil || ft.Kind == topo.Crossbar {
			fmt.Fprintf(os.Stderr, "abscale: -topo %q is not a routed fabric\n", *topoFlag)
			os.Exit(2)
		}
		t := bench.TopoSweep(ts, ft, *skew, *count,
			bench.Opts{Iters: *topoIters, Seed: *seed, Workers: *parallel, Pool: pool,
				Fault: fault.Config{Seed: *faultSeed, Rule: fault.Rule{Drop: *loss}},
				LPs:   *lps})
		t.Title = fmt.Sprintf("%s (max skew %v, %d elements, %d iters)", t.Title, *skew, *count, *topoIters)
		if *csv {
			t.WriteCSV(os.Stdout)
			fmt.Println()
		} else {
			t.Write(os.Stdout)
		}
		entries = append(entries, entry("topo", ts, *topoIters, *reuse, t.Perf))
		topoDoc = &topoSweepDoc{Fabric: ft.String(), MaxSkew: skew.String(), Elements: *count,
			Iters: *topoIters, Cols: t.Cols, Nodes: ts, Rows: t.Rows}
	}

	var pdesDoc *pdesSweepDoc
	if *pdesSize > 1 {
		ft, err := topo.ParseSpec(*topoFlag)
		if err != nil || ft.Kind == topo.Crossbar {
			fmt.Fprintf(os.Stderr, "abscale: -pdessize needs a routed -topo, got %q\n", *topoFlag)
			os.Exit(2)
		}
		lpsList := parseLPs("-pdeslps", *pdesLPs)
		maxLPs := 0
		for _, l := range lpsList {
			if l > maxLPs {
				maxLPs = l
			}
		}
		cores := runtime.NumCPU()
		points := bench.PDESSweep(*pdesSize, ft, *skew, *count, *pdesIters, *seed, lpsList)
		pdesDoc = &pdesSweepDoc{Fabric: ft.String(), Nodes: *pdesSize, Iters: *pdesIters,
			MaxSkew: skew.String(), Elements: *count, Cores: runtime.GOMAXPROCS(0),
			NumCPU: cores, Points: points, SpeedupClaimValid: maxLPs <= cores}
		if maxLPs > cores {
			pdesDoc.Oversubscribed = true
			pdesDoc.Note = fmt.Sprintf("max LP count %d exceeds the machine's %d core(s); "+
				"wall-clock speedup_vs_first measures goroutine scheduling, not parallel execution",
				maxLPs, cores)
			fmt.Fprintf(os.Stderr, "abscale: warning: -pdeslps goes up to %d LPs on %d core(s); "+
				"speedup numbers are scheduling artifacts and are annotated as invalid claims\n",
				maxLPs, cores)
		}
		base := points[0].WallMS
		fmt.Printf("PDES speedup sweep — %d nodes on %s, %d iters, %d cores\n",
			*pdesSize, ft, *pdesIters, pdesDoc.Cores)
		fmt.Printf("%8s %12s %14s %12s %10s\n", "lps", "wall_ms", "events", "avg_cpu_us", "speedup")
		for _, p := range points {
			sp := base / p.WallMS
			pdesDoc.Speedup = append(pdesDoc.Speedup, sp)
			fmt.Printf("%8d %12.1f %14d %12.3f %9.2fx\n", p.LPs, p.WallMS, p.Events, p.AvgCPUus, sp)
		}
		fmt.Println()
	}

	var flowDoc *flowSweepDoc
	if engine == cluster.EngineFlow {
		if fs := parseSizes("-flowsizes", *flowSizes); len(fs) > 0 {
			ft, err := topo.ParseSpec(*topoFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "abscale: bad -topo %q: %v\n", *topoFlag, err)
				os.Exit(2)
			}
			points := bench.FlowSweep(fs, ft, *skew, *count, *flowIters, *seed)
			flowDoc = &flowSweepDoc{Fabric: ft.String(), MaxSkew: skew.String(),
				Elements: *count, Iters: *flowIters, Points: points}
			fmt.Printf("Flow-engine scaling sweep — %s, max skew %v, %d elements, %d iters\n",
				ft, *skew, *count, *flowIters)
			fmt.Printf("%10s %10s %10s %8s %12s %14s %14s %12s\n",
				"nodes", "nab_us", "ab_us", "factor", "wall_ms", "events", "heap_bytes", "fct_p99_us")
			for _, p := range points {
				fmt.Printf("%10d %10.3f %10.3f %8.2f %12.1f %14d %14d %12.1f\n",
					p.Nodes, p.NabUS, p.AbUS, p.Factor, p.WallMS, p.Events, p.HeapPeak, p.FCTp99US)
			}
			fmt.Println()
		}
	}

	var flowPdesDoc *flowPdesSweepDoc
	if fps := parseSizes("-flowpdessizes", *flowPdesSizes); len(fps) > 0 {
		if engine != cluster.EngineFlow {
			fmt.Fprintln(os.Stderr, "abscale: -flowpdessizes needs -engine flow")
			os.Exit(2)
		}
		ft, err := topo.ParseSpec(*topoFlag)
		if err != nil || ft.Kind == topo.Crossbar {
			fmt.Fprintf(os.Stderr, "abscale: -flowpdessizes needs a routed -topo, got %q\n", *topoFlag)
			os.Exit(2)
		}
		lpsList := parseLPs("-flowpdeslps", *flowPdesLPs)
		maxLPs := 0
		for _, l := range lpsList {
			if l > maxLPs {
				maxLPs = l
			}
		}
		cores := runtime.NumCPU()
		points := bench.FlowPDESSweep(fps, ft, *skew, *count, *flowPdesIters, *seed, lpsList)
		flowPdesDoc = &flowPdesSweepDoc{Fabric: ft.String(), MaxSkew: skew.String(),
			Elements: *count, Iters: *flowPdesIters, Cores: runtime.GOMAXPROCS(0),
			NumCPU: cores, LPCounts: lpsList, Points: points,
			SpeedupClaimValid: maxLPs <= cores}
		if maxLPs > cores {
			flowPdesDoc.Oversubscribed = true
			flowPdesDoc.Note = fmt.Sprintf("max LP count %d exceeds the machine's %d core(s); "+
				"wall-clock speedup_vs_first_lps measures goroutine scheduling, not parallel execution",
				maxLPs, cores)
			fmt.Fprintf(os.Stderr, "abscale: warning: -flowpdeslps goes up to %d LPs on %d core(s); "+
				"speedup numbers are scheduling artifacts and are annotated as invalid claims\n",
				maxLPs, cores)
		}
		// Per-size speedup against that size's first LP-count cell.
		base := map[int]float64{}
		fmt.Printf("Parallel flow sweep — %s, max skew %v, %d elements, %d iters, min of %d reps\n",
			ft, *skew, *count, *flowPdesIters, bench.FlowPDESReps)
		fmt.Printf("%10s %6s %12s %10s %10s %10s %14s %12s %9s\n",
			"nodes", "lps", "wall_ms", "ci95_ms", "nab_us", "ab_us", "events", "fct_p99_us", "speedup")
		for _, p := range points {
			if _, ok := base[p.Nodes]; !ok {
				base[p.Nodes] = p.WallMS
			}
			sp := base[p.Nodes] / p.WallMS
			flowPdesDoc.Speedup = append(flowPdesDoc.Speedup, sp)
			fmt.Printf("%10d %6d %12.1f %10.1f %10.3f %10.3f %14d %12.1f %8.2fx\n",
				p.Nodes, p.LPs, p.WallMS, p.CI95MS, p.NabUS, p.AbUS, p.Events, p.FCTp99US, sp)
		}
		fmt.Println()
	}

	var tenancyDoc *tenancySweepDoc
	if jobCounts := parseCounts("-jobs", *jobsFlag); len(jobCounts) > 0 {
		ft, err := topo.ParseSpec(*topoFlag)
		if err != nil || ft.Kind == topo.Crossbar {
			fmt.Fprintf(os.Stderr, "abscale: the tenancy sweep needs a routed -topo, got %q\n", *topoFlag)
			os.Exit(2)
		}
		oversubs := parseCounts("-oversub", *oversubFlag)
		if len(oversubs) == 0 {
			fmt.Fprintln(os.Stderr, "abscale: -oversub must name at least one ratio")
			os.Exit(2)
		}
		var places []workload.Placement
		var placeNames []string
		for _, f := range strings.Split(*placeFlag, ",") {
			p, err := workload.ParsePlacement(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "abscale: -place: %v\n", err)
				os.Exit(2)
			}
			places = append(places, p)
			placeNames = append(placeNames, p.Name())
		}
		points := bench.TenancySweep(model.PaperCluster(*tenancyNodes), ft, jobCounts, oversubs,
			places, sim.Time(*tenancyArrival), *tenancyIters, *tenancyCount, *seed, *parallel)
		tenancyDoc = &tenancySweepDoc{Fabric: ft.String(), Nodes: *tenancyNodes,
			Iters: *tenancyIters, Elements: *tenancyCount, Arrival: tenancyArrival.String(),
			JobCounts: jobCounts, Oversubs: oversubs, Places: placeNames, Points: points}
		fmt.Printf("Multi-tenant sweep — %d nodes on %s, %d iters/job, %d elements\n",
			*tenancyNodes, ft, *tenancyIters, *tenancyCount)
		fmt.Printf("%6s %8s %8s %12s %12s %12s %12s %12s %8s\n",
			"jobs", "oversub", "place", "jct_p50_us", "jct_p95_us", "jct_ci95_us",
			"nab_cpu_us", "ab_cpu_us", "factor")
		for _, p := range points {
			fmt.Printf("%6d %8d %8s %12.1f %12.1f %12.1f %12.3f %12.3f %8.2f\n",
				p.Jobs, p.Oversub, p.Place, p.JCTp50US, p.JCTp95US, p.JCTCI95US,
				p.NabCPUUS, p.AbCPUUS, p.Factor)
		}
		fmt.Println()
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, sizes, *iters, entries, topoDoc, pdesDoc, flowDoc, flowPdesDoc, tenancyDoc); err != nil {
			fmt.Fprintf(os.Stderr, "abscale: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseCounts parses a comma-separated positive-integer list ("" =
// empty) — job counts and oversubscription ratios, where 1 is a valid
// entry so parseSizes' ≥ 2 floor doesn't apply.
func parseCounts(flagName, v string) []int {
	var out []int
	if v == "" {
		return nil
	}
	for _, f := range strings.Split(v, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "abscale: bad %s entry %q\n", flagName, f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// parseLPs parses an LP-count list (entries ≥ 1; "1" is the monolithic
// reference point, so parseSizes' ≥ 2 floor doesn't apply).
func parseLPs(flagName, v string) []int {
	var out []int
	for _, f := range strings.Split(v, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "abscale: bad %s entry %q\n", flagName, f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "abscale: %s must name at least one LP count\n", flagName)
		os.Exit(2)
	}
	return out
}

// topoSweepDoc is the topology sweep's record in -benchjson output: the
// full crossbar-vs-fat-tree table, so the committed BENCH_kernel.json
// carries the hop-latency and uplink-contention numbers.
type topoSweepDoc struct {
	Fabric   string      `json:"fabric"`
	MaxSkew  string      `json:"max_skew"`
	Elements int         `json:"elements"`
	Iters    int         `json:"iters"`
	Cols     []string    `json:"cols"`
	Nodes    []int       `json:"nodes"`
	Rows     [][]float64 `json:"rows"`
}

// pdesSweepDoc is the parallel-kernel speedup sweep's record in
// -benchjson output: the same large routed simulation run at each LP
// count, with wall-clock speedup relative to the first (monolithic)
// point. Virtual-time columns (events, avg_cpu_us, signals) pin each
// LP count's deterministic result. When the LP count exceeds the
// machine's cores the speedup column measures goroutine scheduling, not
// parallelism, so the doc carries a machine-readable disclaimer:
// oversubscribed, speedup_claim_valid and note.
type pdesSweepDoc struct {
	Fabric            string            `json:"fabric"`
	Nodes             int               `json:"nodes"`
	MaxSkew           string            `json:"max_skew"`
	Elements          int               `json:"elements"`
	Iters             int               `json:"iters"`
	Cores             int               `json:"cores"`   // GOMAXPROCS — speedup ceiling context
	NumCPU            int               `json:"num_cpu"` // physical cores the OS reports
	Oversubscribed    bool              `json:"oversubscribed"`
	SpeedupClaimValid bool              `json:"speedup_claim_valid"`
	Note              string            `json:"note,omitempty"`
	Points            []bench.PDESPoint `json:"points"`
	Speedup           []float64         `json:"speedup_vs_first"`
}

// flowSweepDoc is the flow-engine scaling grid's record in -benchjson
// output (-engine flow): per-size nab/ab CPU utilization plus the wall,
// events and peak-heap columns that certify each point's simulation
// cost, and flow-completion-time percentiles from the ab runs.
type flowSweepDoc struct {
	Fabric   string            `json:"fabric"`
	MaxSkew  string            `json:"max_skew"`
	Elements int               `json:"elements"`
	Iters    int               `json:"iters"`
	Points   []bench.FlowPoint `json:"points"`
}

// flowPdesSweepDoc is the parallel flow sweep's record in -benchjson
// output (-engine flow -flowpdessizes): the sizes × LP-counts grid,
// each cell the flow grid's nab/ab pair under that LP count, best of
// bench.FlowPDESReps repetitions with a 95% confidence half-width on
// the wall. speedup_vs_first_lps compares each cell against its size's
// first LP-count cell; the monolithic flow_sweep baselines recorded
// before the engine was sharded stay in flow_sweep for comparison.
// Carries the same oversubscription disclaimer as pdes_sweep.
type flowPdesSweepDoc struct {
	Fabric            string                `json:"fabric"`
	MaxSkew           string                `json:"max_skew"`
	Elements          int                   `json:"elements"`
	Iters             int                   `json:"iters"`
	Cores             int                   `json:"cores"`
	NumCPU            int                   `json:"num_cpu"`
	Oversubscribed    bool                  `json:"oversubscribed"`
	SpeedupClaimValid bool                  `json:"speedup_claim_valid"`
	Note              string                `json:"note,omitempty"`
	LPCounts          []int                 `json:"lp_counts"`
	Points            []bench.FlowPDESPoint `json:"points"`
	Speedup           []float64             `json:"speedup_vs_first_lps"`
}

// tenancySweepDoc is the multi-tenant sweep's record in -benchjson
// output (-jobs): per-(job count, oversubscription, placement) JCT
// percentiles with 95% confidence half-widths and the AB-vs-binomial
// reduction-CPU advantage under shared-fabric contention.
type tenancySweepDoc struct {
	Fabric    string               `json:"fabric"`
	Nodes     int                  `json:"nodes"`
	Iters     int                  `json:"iters"`
	Elements  int                  `json:"elements"`
	Arrival   string               `json:"mean_arrival"`
	JobCounts []int                `json:"job_counts"`
	Oversubs  []int                `json:"oversub_ratios"`
	Places    []string             `json:"placements"`
	Points    []bench.TenancyPoint `json:"points"`
}

// sameSizes reports whether two size grids are identical.
func sameSizes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeBenchJSON records the scaling sweeps' execution metrics plus the
// fixed kernel microbenchmark, side by side with the recorded
// pre-overhaul kernel baseline and the pre-reuse sweep baseline.
func writeBenchJSON(path string, sizes []int, iters int, entries []perfEntry, topoDoc *topoSweepDoc, pdesDoc *pdesSweepDoc, flowDoc *flowSweepDoc, flowPdesDoc *flowPdesSweepDoc, tenancyDoc *tenancySweepDoc) error {
	micro := bench.KernelMicrobench(bench.AppBypass, 50, 20030701)
	microNab := bench.KernelMicrobench(bench.NonAppBypass, 50, 20030701)
	doc := struct {
		Workload string `json:"workload"`
		Sizes    []int  `json:"sizes"`
		Iters    int    `json:"iters"`
		Baseline struct {
			EventsPerSec   float64 `json:"events_per_sec"`
			AllocsPerEvent float64 `json:"allocs_per_event"`
		} `json:"kernel_microbench_baseline"`
		Micro       bench.KernelMicrobenchResult `json:"kernel_microbench_ab"`
		MicroNab    bench.KernelMicrobenchResult `json:"kernel_microbench_nab"`
		SpeedupX    float64                      `json:"microbench_speedup_vs_baseline"`
		AllocRatioX float64                      `json:"microbench_alloc_reduction_vs_baseline"`

		// The standard grid's recorded pre-reuse performance (build a
		// cluster per cell) and the current run's improvement over it;
		// ratios are only emitted when this run used the same grid.
		SweepBaseline struct {
			Sizes                []int   `json:"sizes"`
			Iters                int     `json:"iters"`
			SkewedWallMS         float64 `json:"skewed_wall_ms"`
			SkewedAllocsPerEvent float64 `json:"skewed_allocs_per_event"`
			NoSkewWallMS         float64 `json:"noskew_wall_ms"`
			NoSkewAllocsPerEvent float64 `json:"noskew_allocs_per_event"`
		} `json:"scaling_sweep_baseline"`
		SweepWallSpeedup    float64 `json:"sweep_wall_speedup_vs_baseline,omitempty"`
		SweepAllocReduction float64 `json:"sweep_alloc_reduction_vs_baseline,omitempty"`

		ScalingPerf   []perfEntry       `json:"scaling_sweeps"`
		TopoSweep     *topoSweepDoc     `json:"topo_sweep,omitempty"`
		PDESSweep     *pdesSweepDoc     `json:"pdes_sweep,omitempty"`
		FlowSweep     *flowSweepDoc     `json:"flow_sweep,omitempty"`
		FlowPDESSweep *flowPdesSweepDoc `json:"flow_pdes_sweep,omitempty"`
		TenancySweep  *tenancySweepDoc  `json:"tenancy_sweep,omitempty"`
	}{Workload: "32-node Fig. 6 CPU-utilization workload (count=4, skew=1ms, iters=50, seed=20030701)",
		Sizes: sizes, Iters: iters, Micro: micro, MicroNab: microNab,
		ScalingPerf: entries, TopoSweep: topoDoc, PDESSweep: pdesDoc, FlowSweep: flowDoc,
		FlowPDESSweep: flowPdesDoc, TenancySweep: tenancyDoc}
	doc.Baseline.EventsPerSec = bench.BaselineEventsPerSec
	doc.Baseline.AllocsPerEvent = bench.BaselineAllocsPerEvent
	if doc.Baseline.EventsPerSec > 0 {
		doc.SpeedupX = micro.EventsPerSec / doc.Baseline.EventsPerSec
	}
	if micro.AllocsPerEvent > 0 {
		doc.AllocRatioX = doc.Baseline.AllocsPerEvent / micro.AllocsPerEvent
	}
	doc.SweepBaseline.Sizes = bench.BaselineSweepSizes
	doc.SweepBaseline.Iters = bench.BaselineSweepIters
	doc.SweepBaseline.SkewedWallMS = bench.BaselineSweepSkewedWallMS
	doc.SweepBaseline.SkewedAllocsPerEvent = bench.BaselineSweepSkewedAllocsPerEvent
	doc.SweepBaseline.NoSkewWallMS = bench.BaselineSweepNoSkewWallMS
	doc.SweepBaseline.NoSkewAllocsPerEvent = bench.BaselineSweepNoSkewAllocsPerEvent
	for _, e := range entries {
		if e.Sweep == "skewed" && sameSizes(e.Sizes, bench.BaselineSweepSizes) &&
			e.Iters == bench.BaselineSweepIters && e.WallMS > 0 && e.AllocsPerEvent > 0 {
			doc.SweepWallSpeedup = bench.BaselineSweepSkewedWallMS / e.WallMS
			doc.SweepAllocReduction = bench.BaselineSweepSkewedAllocsPerEvent / e.AllocsPerEvent
		}
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
