// Command abscale projects the paper's comparison past its 32-node
// testbed — the future work named in §VII ("we intend to evaluate the
// performance of application-bypass operations on large-scale
// clusters"). It replicates the paper's interlaced heterogeneous node
// mix out to the requested sizes and reports average per-node CPU
// utilization for both implementations, skewed and unskewed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"abred/internal/bench"
)

func main() {
	max := flag.Int("max", 256, "largest cluster size (power of two)")
	count := flag.Int("count", 4, "message elements (double words)")
	iters := flag.Int("iters", 100, "iterations per data point")
	seed := flag.Int64("seed", 20030701, "simulation seed")
	skew := flag.Duration("skew", time.Millisecond, "maximum skew for the skewed sweep")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	var sizes []int
	for n := 8; n <= *max; n *= 2 {
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		fmt.Fprintln(os.Stderr, "abscale: -max must be at least 8")
		os.Exit(2)
	}

	for _, s := range []struct {
		skew time.Duration
		note string
	}{
		{*skew, "skewed"},
		{0, "no artificial skew"},
	} {
		t := bench.ScaleProjection(sizes, s.skew, *count,
			bench.Opts{Iters: *iters, Seed: *seed, Workers: *parallel})
		t.Title = fmt.Sprintf("%s (%s, max skew %v, %d elements)", t.Title, s.note, s.skew, *count)
		if *csv {
			t.WriteCSV(os.Stdout)
			fmt.Println()
		} else {
			t.Write(os.Stdout)
		}
	}
}
