// Command abscale projects the paper's comparison past its 32-node
// testbed — the future work named in §VII ("we intend to evaluate the
// performance of application-bypass operations on large-scale
// clusters"). It replicates the paper's interlaced heterogeneous node
// mix out to the requested sizes and reports average per-node CPU
// utilization for both implementations, skewed and unskewed.
//
// Usage:
//
//	abscale [-max N | -sizes 32,128,512,1024] [-count N] [-iters N]
//	        [-seed N] [-skew D] [-loss P] [-faultseed N] [-parallel N]
//	        [-csv] [-benchjson FILE]
//
// -sizes names the node counts directly, overriding the -max doubling
// grid. -loss P drops each frame with probability P (switching GM to
// reliable delivery); -faultseed seeds the dedicated fault stream. -benchjson records the kernel's execution metrics — events/sec
// and allocs/event for each sweep, plus the fixed 32-node kernel
// microbenchmark against its recorded pre-overhaul baseline — to FILE
// (the committed BENCH_kernel.json is produced this way via make bench).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"abred/internal/bench"
	"abred/internal/fault"
	"abred/internal/sweep"
)

// perfEntry is one sweep's execution record in -benchjson output.
type perfEntry struct {
	Sweep          string  `json:"sweep"`
	Jobs           int     `json:"jobs"`
	Workers        int     `json:"workers"`
	WallMS         float64 `json:"wall_ms"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

func entry(name string, p sweep.Perf) perfEntry {
	return perfEntry{
		Sweep:          name,
		Jobs:           p.Jobs,
		Workers:        p.Workers,
		WallMS:         float64(p.Wall) / float64(time.Millisecond),
		Events:         p.Events,
		EventsPerSec:   p.EventsPerSec(),
		Allocs:         p.Allocs,
		AllocsPerEvent: p.AllocsPerEvent(),
	}
}

func main() {
	max := flag.Int("max", 256, "largest cluster size (power of two)")
	sizesFlag := flag.String("sizes", "", "comma-separated node counts (overrides -max)")
	count := flag.Int("count", 4, "message elements (double words)")
	iters := flag.Int("iters", 100, "iterations per data point")
	seed := flag.Int64("seed", 20030701, "simulation seed")
	skew := flag.Duration("skew", time.Millisecond, "maximum skew for the skewed sweep")
	loss := flag.Float64("loss", 0, "frame-drop probability on every link (enables GM reliable delivery)")
	faultSeed := flag.Int64("faultseed", 0, "seed of the dedicated fault-decision stream")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
	csv := flag.Bool("csv", false, "emit CSV")
	benchJSON := flag.String("benchjson", "", "write kernel performance metrics here (empty to disable)")
	flag.Parse()

	var sizes []int
	if *sizesFlag != "" {
		for _, f := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 2 {
				fmt.Fprintf(os.Stderr, "abscale: bad -sizes entry %q\n", f)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
	} else {
		for n := 8; n <= *max; n *= 2 {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 {
		fmt.Fprintln(os.Stderr, "abscale: -max must be at least 8")
		os.Exit(2)
	}

	var entries []perfEntry
	for _, s := range []struct {
		skew time.Duration
		note string
	}{
		{*skew, "skewed"},
		{0, "no artificial skew"},
	} {
		t := bench.ScaleProjection(sizes, s.skew, *count,
			bench.Opts{Iters: *iters, Seed: *seed, Workers: *parallel,
				Fault: fault.Config{Seed: *faultSeed, Rule: fault.Rule{Drop: *loss}}})
		t.Title = fmt.Sprintf("%s (%s, max skew %v, %d elements)", t.Title, s.note, s.skew, *count)
		if *csv {
			t.WriteCSV(os.Stdout)
			fmt.Println()
		} else {
			t.Write(os.Stdout)
		}
		entries = append(entries, entry(s.note, t.Perf))
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, sizes, *iters, *seed, entries); err != nil {
			fmt.Fprintf(os.Stderr, "abscale: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeBenchJSON records the scaling sweeps' execution metrics plus the
// fixed kernel microbenchmark, side by side with its recorded
// pre-overhaul baseline.
func writeBenchJSON(path string, sizes []int, iters int, seed int64, entries []perfEntry) error {
	micro := bench.KernelMicrobench(bench.AppBypass, 50, 20030701)
	microNab := bench.KernelMicrobench(bench.NonAppBypass, 50, 20030701)
	doc := struct {
		Workload string `json:"workload"`
		Sizes    []int  `json:"sizes"`
		Iters    int    `json:"iters"`
		Seed     int64  `json:"seed"`
		Baseline struct {
			EventsPerSec   float64 `json:"events_per_sec"`
			AllocsPerEvent float64 `json:"allocs_per_event"`
		} `json:"kernel_microbench_baseline"`
		Micro       bench.KernelMicrobenchResult `json:"kernel_microbench_ab"`
		MicroNab    bench.KernelMicrobenchResult `json:"kernel_microbench_nab"`
		SpeedupX    float64                      `json:"microbench_speedup_vs_baseline"`
		AllocRatioX float64                      `json:"microbench_alloc_reduction_vs_baseline"`
		ScalingPerf []perfEntry                  `json:"scaling_sweeps"`
	}{Workload: "32-node Fig. 6 CPU-utilization workload (count=4, skew=1ms, iters=50, seed=20030701)",
		Sizes: sizes, Iters: iters, Seed: seed, Micro: micro, MicroNab: microNab, ScalingPerf: entries}
	doc.Baseline.EventsPerSec = bench.BaselineEventsPerSec
	doc.Baseline.AllocsPerEvent = bench.BaselineAllocsPerEvent
	if doc.Baseline.EventsPerSec > 0 {
		doc.SpeedupX = micro.EventsPerSec / doc.Baseline.EventsPerSec
	}
	if micro.AllocsPerEvent > 0 {
		doc.AllocRatioX = doc.Baseline.AllocsPerEvent / micro.AllocsPerEvent
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
