// Command abapp runs the application-based evaluation the paper lists
// as future work (§VII): a bulk-synchronous synthetic application —
// imbalanced compute, nearest-neighbour halo exchange, and the small
// reductions typical of scientific codes (Moody et al., ref [9]) — once
// per reduction implementation, and compares job time, time spent
// inside reduction calls, and signal counts.
package main

import (
	"flag"
	"fmt"
	"time"

	"abred/internal/cluster"
	"abred/internal/model"
	"abred/internal/skew"
	"abred/internal/stats"
	"abred/internal/topo"
	"abred/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 32, "cluster size (paper's interlaced heterogeneous mix)")
	iters := flag.Int("iters", 100, "bulk-synchronous iterations")
	compute := flag.Duration("compute", 200*time.Microsecond, "baseline compute per iteration")
	imbalance := flag.Duration("imbalance", 400*time.Microsecond, "imbalance scale")
	dist := flag.String("dist", "uniform", "imbalance distribution: uniform, exp, pareto, straggler, none")
	count := flag.Int("count", 2, "reduction elements (scientific codes: 1-3)")
	reds := flag.Int("reds", 2, "reductions per iteration")
	window := flag.Int("window", 3, "split-phase result lag window (iterations)")
	halo := flag.Bool("halo", true, "nearest-neighbour exchange each iteration")
	seed := flag.Int64("seed", 20030701, "simulation seed")
	parallel := flag.Int("parallel", 0, "run the styles on a worker pool (0 = GOMAXPROCS, 1 = serial)")
	engineFlag := flag.String("engine", "packet", "simulation engine: packet (full fidelity) or flow (large-scale; default and app-bypass styles only)")
	topoFlag := flag.String("topo", "", "routed fabric spec (e.g. fattree:16; \"\" = crossbar)")
	flag.Parse()

	engine, err := cluster.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Printf("abapp: %v\n", err)
		return
	}
	var ts topo.Spec
	if *topoFlag != "" {
		ts, err = topo.ParseSpec(*topoFlag)
		if err != nil {
			fmt.Printf("abapp: bad -topo %q: %v\n", *topoFlag, err)
			return
		}
	}

	var d skew.Dist
	switch *dist {
	case "uniform":
		d = skew.Uniform{Max: *imbalance}
	case "exp":
		d = skew.Exponential{Mean: *imbalance / 2}
	case "pareto":
		d = skew.Pareto{Min: *imbalance / 20, Max: 8 * *imbalance, Alpha: 1.3}
	case "straggler":
		d = skew.Straggler{P: *nodes, Delay: *imbalance}
	case "none":
		d = skew.None{}
	default:
		fmt.Printf("abapp: unknown distribution %q\n", *dist)
		return
	}

	cfg := workload.Config{
		Specs:       model.PaperCluster(*nodes),
		Iters:       *iters,
		Compute:     *compute,
		Imbalance:   d,
		Halo:        *halo,
		Count:       *count,
		RedsPerIter: *reds,
		Window:      *window,
		Seed:        *seed,
		Topo:        ts,
		Engine:      engine,
	}

	fmt.Printf("synthetic application: %d nodes, %d iterations, compute %v + %s imbalance,\n",
		*nodes, *iters, *compute, d.Name())
	fmt.Printf("%d x %d-element reductions per iteration, halo=%v, %v engine\n\n", *reds, *count, *halo, engine)

	styles := []workload.Style{workload.StyleDefault, workload.StyleBypass,
		workload.StyleSplitPhase, workload.StyleNIC}
	if engine == cluster.EngineFlow {
		// The flow engine carries no split-phase or NIC machinery.
		styles = styles[:2]
	}
	results := workload.CompareParallel(cfg, *parallel, styles...)

	base := results[0]
	fmt.Printf("%-14s %14s %10s %22s %10s\n", "style", "job time", "speedup", "reduce calls (mean)", "signals")
	for _, r := range results {
		fmt.Printf("%-14s %14v %9.2fx %22v %10d\n",
			r.Style,
			r.JobTime.Round(time.Microsecond),
			float64(base.JobTime)/float64(r.JobTime),
			r.ReduceCalls.Mean.Round(time.Microsecond),
			r.Signals)
	}

	fmt.Printf("\nper-rank time inside reduction calls, default vs app-bypass:\n")
	fmt.Printf("  default:    mean %v  p95 %v  max %v\n",
		stats.Micros(base.ReduceCalls.Mean)+"µs", stats.Micros(base.ReduceCalls.P95)+"µs", stats.Micros(base.ReduceCalls.Max)+"µs")
	ab := results[1]
	fmt.Printf("  app-bypass: mean %v  p95 %v  max %v\n",
		stats.Micros(ab.ReduceCalls.Mean)+"µs", stats.Micros(ab.ReduceCalls.P95)+"µs", stats.Micros(ab.ReduceCalls.Max)+"µs")

	ok := true
	for i := 1; i < len(results); i++ {
		if len(results[i].RootResults) != len(base.RootResults) {
			ok = false
			continue
		}
		for j := range base.RootResults {
			if results[i].RootResults[j] != base.RootResults[j] {
				ok = false
			}
		}
	}
	fmt.Printf("\nall styles computed identical reduction results: %v\n", ok)
}
