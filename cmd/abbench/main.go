// Command abbench regenerates the evaluation figures of "Application-
// Bypass Reduction for Large-Scale Clusters" (CLUSTER 2003) on the
// simulated cluster.
//
// Usage:
//
//	abbench [-fig 6|7|8|9|10|loss|topo|tenancy|flowpdes|all] [-ablations] [-iters N] [-seed N]
//	        [-loss P] [-faultseed N] [-topo SPEC] [-parallel N] [-reuse=bool]
//	        [-cpuprofile FILE] [-memprofile FILE] [-csv] [-sweepjson FILE]
//
// Each figure prints as an aligned table; -csv switches to CSV for
// plotting. Every figure is a grid of independent simulations, so
// -parallel N runs its cells on an N-worker pool (0 means GOMAXPROCS);
// the printed tables are byte-identical for every worker count. The
// sweep's own execution metrics — wall-clock, serial-equivalent time,
// speedup, simulated-event throughput — go to -sweepjson (default
// BENCH_sweep.json, empty to disable). The defaults (200 iterations)
// give stable virtual-time averages in seconds of wall time; the
// paper's 10,000 iterations also work if you have the patience.
//
// -loss P makes the fabric drop each frame with probability P and
// switches GM to reliable delivery; -faultseed seeds the dedicated
// fault stream (same seed, same drops — independent of -seed). -fig
// loss runs the ab-vs-nab loss sweep over the paper's 0.1–5% range
// instead of a uniform rate.
//
// -fig tenancy runs the multi-tenant figure instead: 2–8 concurrent
// jobs with Poisson arrivals on an oversubscribed fat tree, each job
// reducing on its own sub-communicator, random scatter vs greedy
// locality packing (a routed -topo picks the fabric).
//
// -fig flowpdes runs the parallel flow-engine figure: one mid-size fat
// tree simulated by the flow engine at 1, 2 and 4 logical processes,
// reporting wall clock with a 95% confidence half-width alongside the
// virtual-time columns that pin each LP count's determinism.
//
// -topo SPEC (crossbar, fattree:K or leafspine:R) replaces the ideal
// single crossbar with a routed multi-stage fabric for every figure;
// frames pay per-hop latency and queue at shared uplinks. -fig topo
// runs the crossbar-vs-fat-tree comparison sweep instead, including
// bypass with the topology-aware reduction tree.
//
// -reuse (on by default) draws simulated clusters from a reuse pool
// instead of rebuilding one per grid cell; printed tables are
// byte-identical either way (the reuse determinism tests enforce it),
// only wall clock and allocations change. -cpuprofile/-memprofile write
// standard pprof profiles of the whole run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"abred/internal/bench"
	"abred/internal/cluster"
	"abred/internal/fault"
	"abred/internal/prof"
	"abred/internal/sweep"
	"abred/internal/topo"
)

// sweepEntry is one figure's execution record in BENCH_sweep.json.
type sweepEntry struct {
	Figure       string  `json:"figure"`
	Jobs         int     `json:"jobs"`
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	JobWallMS    float64 `json:"job_wall_ms"`
	Speedup      float64 `json:"speedup"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func entry(p sweep.Perf) sweepEntry {
	return sweepEntry{
		Figure:       p.Name,
		Jobs:         p.Jobs,
		Workers:      p.Workers,
		WallMS:       float64(p.Wall) / float64(time.Millisecond),
		JobWallMS:    float64(p.JobWall) / float64(time.Millisecond),
		Speedup:      p.Speedup(),
		Events:       p.Events,
		EventsPerSec: p.EventsPerSec(),
	}
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, 10, loss, topo, tenancy, flowpdes or all")
	ablations := flag.Bool("ablations", false, "also run the delay-heuristic and NIC-reduction studies")
	iters := flag.Int("iters", 200, "benchmark iterations per data point")
	seed := flag.Int64("seed", 20030701, "simulation seed (results are exactly reproducible per seed)")
	loss := flag.Float64("loss", 0, "frame-drop probability on every link (enables GM reliable delivery)")
	faultSeed := flag.Int64("faultseed", 0, "seed of the dedicated fault-decision stream")
	topoFlag := flag.String("topo", "crossbar", "interconnect: crossbar, fattree:K or leafspine:R")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
	reuse := flag.Bool("reuse", true, "reuse built clusters across grid cells (pool + Reset)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	sweepJSON := flag.String("sweepjson", "BENCH_sweep.json", "write per-figure sweep metrics here (empty to disable)")
	flag.Parse()
	if *loss < 0 || *loss >= 1 {
		fmt.Fprintf(os.Stderr, "abbench: -loss %v outside [0, 1)\n", *loss)
		os.Exit(2)
	}
	topoSpec, err := topo.ParseSpec(*topoFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abbench: %v\n", err)
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	var pool *cluster.Pool
	if *reuse {
		pool = cluster.NewPool()
		defer pool.Drain()
	}

	o := bench.Opts{Iters: *iters, Seed: *seed, Workers: *parallel, Pool: pool, Topo: topoSpec,
		Fault: fault.Config{Seed: *faultSeed, Rule: fault.Rule{Drop: *loss}}}

	var entries []sweepEntry
	emit := func(t *bench.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
			fmt.Println()
		} else {
			t.Write(os.Stdout)
		}
		entries = append(entries, entry(t.Perf))
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }
	start := time.Now()
	ran := 0

	if want("6") {
		emit(bench.Fig6(o))
		ran++
	}
	if want("7") {
		emit(bench.Fig7(o))
		ran++
	}
	if want("8") {
		emit(bench.Fig8(o))
		ran++
	}
	if want("9") {
		hetero, homog := bench.Fig9(o)
		emit(hetero)
		emit(homog)
		ran++
	}
	if want("10") {
		emit(bench.Fig10(o))
		ran++
	}
	if *fig == "loss" {
		// The sweep sets its own per-row loss rates; -loss would apply a
		// second uniform rate on top, so it is ignored here.
		emit(bench.LossSweep(bench.PaperLossRates(), *faultSeed,
			bench.Opts{Iters: *iters, Seed: *seed, Workers: *parallel, Pool: pool}))
		ran++
	}
	if *fig == "tenancy" {
		// Multi-tenant figure: concurrent jobs with Poisson arrivals on an
		// oversubscribed fabric, random vs greedy placement. A routed
		// -topo picks the fabric; the default crossbar is replaced by
		// fattree:16 at 8:1 (a crossbar cannot be oversubscribed).
		emit(bench.TenancyFigure(o))
		ran++
	}
	if *fig == "flowpdes" {
		// Parallel flow-engine figure: the flow engine partitions and
		// times itself serially (each LP-count cell may use several
		// cores), so the worker pool and cluster reuse pool don't apply.
		emit(bench.FlowPDESFigure(o))
		ran++
	}
	if *fig == "topo" {
		// The sweep sets its own per-job topologies (crossbar baseline in
		// half its cells), so a routed -topo would be contradictory here;
		// it picks the comparison fabric instead. The default is radix 6
		// (3 hosts per leaf): with a power-of-two radix the binomial tree
		// is already leaf-aligned and the topology-aware tree changes
		// nothing, so an odd group width is the interesting case.
		ft := topoSpec
		if ft.Kind == topo.Crossbar {
			ft = topo.Spec{Kind: topo.FatTree, K: 6}
		}
		emit(bench.TopoSweep([]int{32, 64, 128}, ft, 500*time.Microsecond, 4,
			bench.Opts{Iters: *iters, Seed: *seed, Workers: *parallel, Pool: pool}))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "abbench: unknown figure %q (want 6, 7, 8, 9, 10, loss, topo, tenancy, flowpdes or all)\n", *fig)
		os.Exit(2)
	}

	if *ablations {
		emit(bench.AblationDelay(32, 4, 200*time.Microsecond, o))
		emit(bench.AblationNICReduce(32, 500*time.Microsecond, o))
		emit(bench.AblationSignalCost(32, 4, 500*time.Microsecond, o))
		emit(bench.AblationHeterogeneity(32, 4, o))
		emit(bench.AblationRendezvousAB(16, 800*time.Microsecond, bench.Opts{Iters: *iters/4 + 1, Seed: *seed, Workers: *parallel, Pool: pool}))
	}

	if *sweepJSON != "" {
		if err := writeSweepJSON(*sweepJSON, entries, time.Since(start)); err != nil {
			fmt.Fprintf(os.Stderr, "abbench: %v\n", err)
			os.Exit(1)
		}
	}

	if !*csv {
		fmt.Printf("%d figure runs in %v (iters=%d, seed=%d, workers=%d)\n",
			ran, time.Since(start).Round(time.Millisecond), *iters, *seed, sweep.Workers(*parallel, 1<<30))
	}
}

// writeSweepJSON records each figure's sweep metrics plus totals.
func writeSweepJSON(path string, entries []sweepEntry, elapsed time.Duration) error {
	var total sweepEntry
	total.Figure = "total"
	var jobWall, wall float64
	for _, e := range entries {
		total.Jobs += e.Jobs
		total.Workers = e.Workers
		total.Events += e.Events
		wall += e.WallMS
		jobWall += e.JobWallMS
	}
	total.WallMS = wall
	total.JobWallMS = jobWall
	if wall > 0 {
		total.Speedup = jobWall / wall
		total.EventsPerSec = float64(total.Events) / (wall / 1000)
	}
	doc := struct {
		ElapsedMS float64      `json:"elapsed_ms"`
		Figures   []sweepEntry `json:"figures"`
		Total     sweepEntry   `json:"total"`
	}{float64(elapsed) / float64(time.Millisecond), entries, total}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
