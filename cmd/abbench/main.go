// Command abbench regenerates the evaluation figures of "Application-
// Bypass Reduction for Large-Scale Clusters" (CLUSTER 2003) on the
// simulated cluster.
//
// Usage:
//
//	abbench [-fig 6|7|8|9|10|all] [-ablations] [-iters N] [-seed N] [-csv]
//
// Each figure prints as an aligned table; -csv switches to CSV for
// plotting. The defaults (200 iterations) give stable virtual-time
// averages in seconds of wall time; the paper's 10,000 iterations also
// work if you have the patience.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"abred/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, 10 or all")
	ablations := flag.Bool("ablations", false, "also run the delay-heuristic and NIC-reduction studies")
	iters := flag.Int("iters", 200, "benchmark iterations per data point")
	seed := flag.Int64("seed", 20030701, "simulation seed (results are exactly reproducible per seed)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	emit := func(t *bench.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
			fmt.Println()
		} else {
			t.Write(os.Stdout)
		}
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }
	start := time.Now()
	ran := 0

	if want("6") {
		emit(bench.Fig6(*iters, *seed))
		ran++
	}
	if want("7") {
		emit(bench.Fig7(*iters, *seed))
		ran++
	}
	if want("8") {
		emit(bench.Fig8(*iters, *seed))
		ran++
	}
	if want("9") {
		hetero, homog := bench.Fig9(*iters, *seed)
		emit(hetero)
		emit(homog)
		ran++
	}
	if want("10") {
		emit(bench.Fig10(*iters, *seed))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "abbench: unknown figure %q (want 6, 7, 8, 9, 10 or all)\n", *fig)
		os.Exit(2)
	}

	if *ablations {
		emit(bench.AblationDelay(32, 4, *iters, 200*time.Microsecond, *seed))
		emit(bench.AblationNICReduce(32, *iters, 500*time.Microsecond, *seed))
		emit(bench.AblationSignalCost(32, 4, *iters, 500*time.Microsecond, *seed))
		emit(bench.AblationHeterogeneity(32, 4, *iters, *seed))
		emit(bench.AblationRendezvousAB(16, *iters/4+1, 800*time.Microsecond, *seed))
	}

	if !*csv {
		fmt.Printf("%s in %v (iters=%d, seed=%d)\n",
			strings.TrimSuffix(fmt.Sprintf("%d figure runs", ran), ""), time.Since(start).Round(time.Millisecond), *iters, *seed)
	}
}
