// Command abgate is the performance-regression gate: it reruns the
// kernel microbenchmark and compares the result against the numbers
// committed in BENCH_kernel.json, failing (exit 1) when a metric
// degrades beyond a noise band derived from the fresh run's own 95%
// confidence interval.
//
// Usage:
//
//	abgate [-bench BENCH_kernel.json] [-reps 5] [-iters 50]
//	       [-slack 0.60] [-allocslack 0.25] [-v]
//
// Two metrics are gated, with very different noise characters:
//
//   - allocs_per_event is machine-independent (a property of the code,
//     not the host), so it gets the tight -allocslack band: fresh mean
//     may exceed committed by at most allocslack + 2·relCI95.
//   - events_per_sec is machine-dependent (the committed number was
//     measured on whatever hardware cut that commit), so -slack is
//     generous by default: the gate only fires on a collapse, not on
//     host-to-host variance.
//
// Each mode (ab, nab) runs -reps times; the comparison uses the mean
// and widens the band by twice the fresh run's relative CI95 half-width
// so a noisy host does not fail spuriously.
//
// Keep -iters at the committed file's iteration count (50 for the
// checked-in BENCH_kernel.json): fixed setup allocations amortize over
// iterations, so allocs_per_event is only comparable between runs of
// the same length.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"abred/internal/bench"
	"abred/internal/stats"
)

// committed is the slice of BENCH_kernel.json the gate reads.
type committed struct {
	AB  bench.KernelMicrobenchResult `json:"kernel_microbench_ab"`
	NAB bench.KernelMicrobenchResult `json:"kernel_microbench_nab"`
}

// fresh is one mode's re-measured distribution.
type fresh struct {
	EventsPerSec   stats.FloatSummary
	AllocsPerEvent stats.FloatSummary
}

func measure(mode bench.Mode, reps, iters int, verbose bool) fresh {
	eps := make([]float64, 0, reps)
	ape := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		res := bench.KernelMicrobench(mode, iters, 20030701)
		eps = append(eps, res.EventsPerSec)
		ape = append(ape, res.AllocsPerEvent)
		if verbose {
			fmt.Fprintf(os.Stderr, "abgate: %s rep %d: %.0f events/s, %.4f allocs/event\n",
				mode, r, res.EventsPerSec, res.AllocsPerEvent)
		}
	}
	return fresh{
		EventsPerSec:   stats.SummarizeFloats(eps),
		AllocsPerEvent: stats.SummarizeFloats(ape),
	}
}

// gate checks one metric. For higherBetter metrics (throughput) the
// fresh mean must stay above committed·(1 − band); for lowerBetter
// (allocations) below committed·(1 + band). The band widens by twice
// the fresh distribution's relative CI95 so measurement noise cannot
// fail the gate on its own.
func gate(name string, committed float64, got stats.FloatSummary, slack float64, higherBetter bool) error {
	band := slack + 2*got.RelCI95()
	if higherBetter {
		floor := committed * (1 - band)
		fmt.Printf("%-28s committed %12.2f  fresh %12.2f  floor %12.2f (band %.1f%%)\n",
			name, committed, got.Mean, floor, band*100)
		if got.Mean < floor {
			return fmt.Errorf("%s regressed: %.2f < floor %.2f", name, got.Mean, floor)
		}
		return nil
	}
	ceil := committed * (1 + band)
	fmt.Printf("%-28s committed %12.4f  fresh %12.4f  ceil  %12.4f (band %.1f%%)\n",
		name, committed, got.Mean, ceil, band*100)
	if got.Mean > ceil {
		return fmt.Errorf("%s regressed: %.4f > ceiling %.4f", name, got.Mean, ceil)
	}
	return nil
}

func main() {
	benchFile := flag.String("bench", "BENCH_kernel.json", "committed benchmark numbers to gate against")
	reps := flag.Int("reps", 5, "measurement repetitions per mode")
	iters := flag.Int("iters", 50, "benchmark iterations per repetition")
	slack := flag.Float64("slack", 0.60, "allowed events/sec shortfall vs committed (machine-dependent metric)")
	allocSlack := flag.Float64("allocslack", 0.25, "allowed allocs/event excess vs committed (machine-independent metric)")
	verbose := flag.Bool("v", false, "log per-repetition measurements")
	flag.Parse()

	raw, err := os.ReadFile(*benchFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abgate:", err)
		os.Exit(1)
	}
	var c committed
	if err := json.Unmarshal(raw, &c); err != nil {
		fmt.Fprintln(os.Stderr, "abgate: parse", *benchFile+":", err)
		os.Exit(1)
	}
	if c.AB.EventsPerSec == 0 || c.NAB.EventsPerSec == 0 {
		fmt.Fprintf(os.Stderr, "abgate: %s has no kernel_microbench_{ab,nab} numbers\n", *benchFile)
		os.Exit(1)
	}

	var failures []error
	check := func(err error) {
		if err != nil {
			failures = append(failures, err)
		}
	}
	for _, m := range []struct {
		mode bench.Mode
		ref  bench.KernelMicrobenchResult
	}{{bench.AppBypass, c.AB}, {bench.NonAppBypass, c.NAB}} {
		f := measure(m.mode, *reps, *iters, *verbose)
		check(gate(m.mode.String()+" events_per_sec", m.ref.EventsPerSec, f.EventsPerSec, *slack, true))
		check(gate(m.mode.String()+" allocs_per_event", m.ref.AllocsPerEvent, f.AllocsPerEvent, *allocSlack, false))
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "abgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("abgate: PASS")
}
