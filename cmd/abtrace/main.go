// Command abtrace renders the paper's Fig. 2 from a live simulation:
// the time line of a skewed four-process reduction, first with the
// default blocking implementation, then with application bypass. Node 0
// is the root, nodes 1 and 3 are leaves, node 2 is internal; node 3 is
// late, so node 2 either waits for it inside MPI_Reduce (default) or
// returns and finishes in an asynchronous handler (bypass).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"abred/internal/cluster"
	"abred/internal/coll"
	"abred/internal/fabric"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
	"abred/internal/topo"
	"abred/internal/trace"
)

func main() {
	lateBy := flag.Duration("late", 250*time.Microsecond, "how late node 3 enters the reduction")
	width := flag.Int("width", 96, "timeline width in characters")
	count := flag.Int("count", 4, "message elements (double words)")
	topoFlag := flag.String("topo", "crossbar", "interconnect: crossbar, fattree:K or leafspine:R")
	jsonPath := flag.String("json", "", "also write the bypass run as Chrome trace-event JSON\n(open in chrome://tracing; includes per-hop fabric spans on routed topologies)")
	flag.Parse()

	spec, err := topo.ParseSpec(*topoFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abtrace:", err)
		os.Exit(2)
	}

	for _, ab := range []bool{false, true} {
		name := "(a) Non-Application-Bypass"
		if ab {
			name = "(b) Application-Bypass"
		}
		fmt.Printf("%s — node 3 enters %v late\n", name, *lateBy)
		rec := runOnce(ab, *lateBy, *count, *width, spec)
		fmt.Println()
		if ab && *jsonPath != "" {
			if err := writeChromeFile(*jsonPath, rec); err != nil {
				fmt.Fprintln(os.Stderr, "abtrace:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote Chrome trace to %s (%d spans, %d fabric hops)\n",
				*jsonPath, len(rec.Spans), len(rec.Hops))
		}
	}
}

func writeChromeFile(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runOnce(ab bool, lateBy time.Duration, count, width int, spec topo.Spec) *trace.Recorder {
	rec := &trace.Recorder{}
	cl := cluster.New(cluster.Config{Specs: model.Uniform(4), Seed: 2003, Topo: spec})
	cl.Fabric.OnHop = func(fr fabric.Frame, link int32, start, end sim.Time) {
		rec.AddHop(fr.Src, fr.Dst, link, start, end)
	}
	cl.Run(func(n *cluster.Node, w *mpi.Comm) {
		node := n.ID
		n.Engine.SetTrace(func(kind byte, start, end sim.Time) {
			rec.Add(node, kind, start, end, "")
		})
		in := make([]byte, count*8)
		out := make([]byte, count*8)

		if n.ID == 3 {
			t0 := n.Proc.Now()
			n.Proc.SpinInterruptible(lateBy)
			rec.Add(node, trace.KindCompute, t0, n.Proc.Now(), "skew")
		}
		t0 := n.Proc.Now()
		if ab {
			n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
		} else {
			coll.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
			rec.Add(node, trace.KindSync, t0, n.Proc.Now(), "reduce")
		}
		// Post-reduction computation: where bypass pays off — the
		// asynchronous handler (A) interrupts it briefly instead of the
		// whole wait happening inside Reduce (R).
		t1 := n.Proc.Now()
		n.Proc.SpinInterruptible(lateBy + 100*time.Microsecond)
		rec.Add(n.ID, trace.KindCompute, t1, n.Proc.Now(), "compute")
	})
	rec.Render(os.Stdout, 4, width)
	return rec
}
