package abred

import (
	"time"

	"abred/internal/fault"
	"abred/internal/model"
)

// config collects cluster construction options.
type config struct {
	specs []model.NodeSpec
	costs model.Costs
	seed  int64
	fault fault.Config
}

// Option configures NewCluster.
type Option func(*config)

// WithNodes uses n nodes of the paper's interlaced heterogeneous mix
// (700 MHz and 1 GHz Pentium-III classes alternating, as in §VI).
func WithNodes(n int) Option {
	return func(c *config) { c.specs = model.PaperCluster(n) }
}

// WithHomogeneousNodes uses n identical 1 GHz nodes.
func WithHomogeneousNodes(n int) Option {
	return func(c *config) { c.specs = model.Homogeneous1G(n) }
}

// WithPaperCluster uses the paper's exact 32-node heterogeneous testbed.
func WithPaperCluster() Option {
	return func(c *config) { c.specs = model.PaperCluster32() }
}

// WithSpecs supplies an explicit node list.
func WithSpecs(specs []NodeSpec) Option {
	return func(c *config) { c.specs = append([]model.NodeSpec(nil), specs...) }
}

// WithSeed fixes the simulation seed; identical seeds reproduce runs
// exactly, including all reported timings.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithSignalCost overrides the modeled cost of one NIC-raised signal
// reaching the application (useful for sensitivity studies).
func WithSignalCost(d time.Duration) Option {
	return func(c *config) {
		c.ensureCosts()
		c.costs.SignalOvh = d
	}
}

// WithEagerThreshold overrides the eager/rendezvous protocol switch
// point in bytes.
func WithEagerThreshold(bytes int) Option {
	return func(c *config) {
		c.ensureCosts()
		c.costs.EagerThreshold = bytes
	}
}

// WithLoss makes the fabric drop each frame with probability p,
// switching every NIC to GM-level reliable delivery (sequence numbers,
// cumulative acks, timed retransmission). Drop decisions come from a
// dedicated stream seeded by WithFault/WithFaultSeed — independent of
// the simulation seed, so the same loss pattern can be replayed across
// different skew seeds.
func WithLoss(p float64) Option {
	return func(c *config) { c.fault.Drop = p }
}

// WithFaultSeed seeds the fault-decision stream (default 0). Two runs
// with the same fault seed and cluster shape drop identical frames.
func WithFaultSeed(seed int64) Option {
	return func(c *config) { c.fault.Seed = seed }
}

// WithFault supplies a full fault plan — per-link rules, duplication,
// reorder jitter, scripted drops — for tests and studies that need more
// than a uniform loss rate.
func WithFault(cfg FaultConfig) Option {
	return func(c *config) { c.fault = cfg }
}

func (c *config) ensureCosts() {
	if c.costs == (model.Costs{}) {
		c.costs = model.DefaultCosts()
	}
}
