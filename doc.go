// Package abred is a Go reproduction of "Application-Bypass Reduction
// for Large-Scale Clusters" (Wagner, Buntinas, Brightwell, Panda —
// IEEE CLUSTER 2003): an MPI reduction that tolerates process skew by
// splitting its work into a synchronous part inside the collective call
// and an asynchronous part driven by NIC signals, so that internal tree
// nodes never block waiting for late children.
//
// The package bundles a complete virtual cluster: a deterministic
// discrete-event simulation kernel, a Myrinet-2000-like fabric, a
// GM-like NIC layer with a programmable control program and host
// signals, an MPICH-like point-to-point and collective stack, and the
// paper's application-bypass engine with its extensions (split-phase
// reduction, application-bypass broadcast, NIC-based reduction).
//
// A minimal program:
//
//	cl := abred.NewCluster(abred.WithNodes(8))
//	cl.Run(func(r *abred.Rank) {
//		in := []float64{float64(r.Rank()), 1, 2, 3}
//		sum := r.Reduce(in, abred.Sum, 0) // application-bypass
//		if r.Rank() == 0 {
//			fmt.Println("sum:", sum)
//		}
//		r.Barrier()
//	})
//
// Everything runs in virtual time: Run executes one goroutine per rank
// under a strict one-at-a-time scheduler, so results (including every
// reported duration) are bit-for-bit reproducible for a given seed.
package abred
