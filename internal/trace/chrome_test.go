package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"abred/internal/sim"
)

func TestWriteChrome(t *testing.T) {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Time(time.Microsecond) }
	rec := &Recorder{}
	rec.Add(0, KindSync, us(10), us(30), "reduce")
	rec.Add(1, KindAsync, us(25), us(28), "")
	rec.AddHop(1, 0, 6, us(12), us(14))
	rec.AddHop(1, 0, 9, us(13), us(15))

	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var procs, threads, spans, hops int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procs++
			case "thread_name":
				threads++
			}
		case "X":
			if ev.Pid == 2 {
				hops++
				if ev.Name != "frame 1→0" {
					t.Errorf("hop name %q", ev.Name)
				}
				if ev.Dur != 2 {
					t.Errorf("hop dur %v µs, want 2", ev.Dur)
				}
			} else {
				spans++
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if procs != 2 || threads != 4 { // hosts+fabric; nodes 0,1 + links 6,9
		t.Errorf("metadata: %d processes, %d threads", procs, threads)
	}
	if spans != 2 || hops != 2 {
		t.Errorf("%d host spans, %d hop spans", spans, hops)
	}
	// The sync span's coordinates survive the µs conversion exactly.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "MPI_Reduce (sync)" {
			if ev.Ts != 10 || ev.Dur != 20 {
				t.Errorf("sync span ts=%v dur=%v, want 10/20", ev.Ts, ev.Dur)
			}
			if ev.Args["label"] != "reduce" {
				t.Errorf("label %v", ev.Args["label"])
			}
		}
	}
}

// TestWriteChromeNoHops: a crossbar recording has no fabric process.
func TestWriteChromeNoHops(t *testing.T) {
	rec := &Recorder{}
	rec.Add(0, KindCompute, 0, 1000, "")
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("fabric")) {
		t.Error("fabric process emitted without hop spans")
	}
}
