package trace

import (
	"encoding/json"
	"io"
	"strconv"
	"time"

	"abred/internal/sim"
)

// HopSpan is one link occupancy on the routed fabric: frame src→dst
// held link for [Start, End) while its head crossed that stage of the
// topology. Recorded from fabric.OnHop.
type HopSpan struct {
	Src, Dst   int
	Link       int32
	Start, End sim.Time
}

// AddHop records a fabric hop span.
func (r *Recorder) AddHop(src, dst int, link int32, start, end sim.Time) {
	r.Hops = append(r.Hops, HopSpan{Src: src, Dst: dst, Link: link, Start: start, End: end})
}

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto): "X" complete events carry a ts/dur pair
// in microseconds; "M" metadata events name the processes and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeUS converts simulated time to the format's microsecond floats.
func chromeUS(t sim.Time) float64 { return float64(t) / float64(time.Microsecond) }

// chromeName maps span kinds to event names.
func chromeName(kind byte) string {
	switch kind {
	case KindCompute:
		return "compute"
	case KindBarrier:
		return "barrier"
	case KindSync:
		return "MPI_Reduce (sync)"
	case KindAsync:
		return "async handler"
	}
	return "idle"
}

// WriteChrome emits the recording in Chrome trace-event JSON: one
// "hosts" process with a thread per node for the engine spans, and —
// when hop spans were recorded — a "fabric" process with a thread per
// link showing each frame's cut-through occupancy. Load the output in
// chrome://tracing or https://ui.perfetto.dev.
func (r *Recorder) WriteChrome(w io.Writer) error {
	const hostPID, fabricPID = 1, 2
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: hostPID,
		Args: map[string]any{"name": "hosts"},
	}}
	named := map[int]bool{}
	for _, s := range r.Spans {
		if !named[s.Node] {
			named[s.Node] = true
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: hostPID, Tid: s.Node,
				Args: map[string]any{"name": "node " + strconv.Itoa(s.Node)},
			})
		}
		ev := chromeEvent{
			Name: chromeName(s.Kind), Ph: "X", Pid: hostPID, Tid: s.Node,
			Ts: chromeUS(s.Start), Dur: chromeUS(s.End - s.Start),
		}
		if s.Label != "" {
			ev.Args = map[string]any{"label": s.Label}
		}
		events = append(events, ev)
	}
	if len(r.Hops) > 0 {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: fabricPID,
			Args: map[string]any{"name": "fabric"},
		})
		link := map[int32]bool{}
		for _, h := range r.Hops {
			if !link[h.Link] {
				link[h.Link] = true
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: fabricPID, Tid: int(h.Link),
					Args: map[string]any{"name": "link " + strconv.Itoa(int(h.Link))},
				})
			}
			events = append(events, chromeEvent{
				Name: "frame " + strconv.Itoa(h.Src) + "→" + strconv.Itoa(h.Dst),
				Ph:   "X", Pid: fabricPID, Tid: int(h.Link),
				Ts: chromeUS(h.Start), Dur: chromeUS(h.End - h.Start),
				Args: map[string]any{"src": h.Src, "dst": h.Dst},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
