package trace

import (
	"strings"
	"testing"
	"time"
)

const us = time.Microsecond

func TestRenderBasic(t *testing.T) {
	r := &Recorder{}
	r.Add(0, KindSync, 0, 50*us, "reduce")
	r.Add(1, KindCompute, 0, 100*us, "work")
	r.Add(1, KindAsync, 60*us, 70*us, "handler")
	var b strings.Builder
	r.Render(&b, 2, 20)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 2 nodes + legend
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(lines[1], "R") {
		t.Errorf("node 0 row missing sync marker: %q", lines[1])
	}
	if !strings.Contains(lines[2], "A") || !strings.Contains(lines[2], "c") {
		t.Errorf("node 1 row missing async/compute: %q", lines[2])
	}
}

func TestRenderPriorityOverdraw(t *testing.T) {
	r := &Recorder{}
	r.Add(0, KindCompute, 0, 100*us, "")
	r.Add(0, KindAsync, 0, 100*us, "")
	var b strings.Builder
	r.Render(&b, 1, 10)
	row := strings.Split(b.String(), "\n")[1]
	if strings.Contains(row, "c") {
		t.Errorf("async must overdraw compute: %q", row)
	}
}

func TestRenderEmpty(t *testing.T) {
	r := &Recorder{}
	var b strings.Builder
	r.Render(&b, 3, 10)
	if !strings.Contains(b.String(), "no spans") {
		t.Errorf("empty render: %q", b.String())
	}
}

func TestAddSwapsReversedSpan(t *testing.T) {
	r := &Recorder{}
	r.Add(0, KindSync, 10*us, 5*us, "")
	if r.Spans[0].Start != 5*us || r.Spans[0].End != 10*us {
		t.Errorf("reversed span not normalized: %+v", r.Spans[0])
	}
}

func TestRenderIgnoresOutOfRangeNodes(t *testing.T) {
	r := &Recorder{}
	r.Add(9, KindSync, 0, 10*us, "")
	r.Add(0, KindSync, 0, 10*us, "")
	var b strings.Builder
	r.Render(&b, 1, 10) // must not panic
	if !strings.Contains(b.String(), "node  0") {
		t.Error("node row missing")
	}
}

// TestZeroLengthSpanAtMaxTStillVisible: an instantaneous span starting
// exactly at the recorded interval's end maps one past the last bucket;
// it must render in the final column, not silently vanish.
func TestZeroLengthSpanAtMaxTStillVisible(t *testing.T) {
	r := &Recorder{}
	r.Add(0, KindCompute, 0, 100*us, "")
	r.Add(0, KindAsync, 100*us, 100*us, "") // instantaneous, at maxT
	var b strings.Builder
	r.Render(&b, 1, 20)
	row := strings.Split(b.String(), "\n")[1]
	if !strings.HasSuffix(row, "A|") {
		t.Errorf("span at maxT not drawn in the final column: %q", row)
	}
}

func TestZeroLengthSpanStillVisible(t *testing.T) {
	r := &Recorder{}
	r.Add(0, KindCompute, 0, 100*us, "")
	r.Add(0, KindAsync, 50*us, 50*us, "") // instantaneous
	var b strings.Builder
	r.Render(&b, 1, 20)
	row := strings.Split(b.String(), "\n")[1]
	if !strings.Contains(row, "A") {
		t.Errorf("instantaneous span invisible: %q", row)
	}
}
