// Package trace records per-node activity spans from a simulation run
// and renders them as an ASCII timeline, reproducing the shape of the
// paper's Fig. 2: the split of an internal node's reduction processing
// into a synchronous part inside MPI_Reduce and asynchronous parts
// triggered by late messages.
package trace

import (
	"fmt"
	"io"
	"sort"

	"abred/internal/sim"
)

// Span kinds, in increasing render priority (later overdraw earlier).
const (
	KindIdle    byte = '.'
	KindCompute byte = 'c' // application computation / injected delay
	KindBarrier byte = 'b'
	KindSync    byte = 'R' // inside the Reduce call
	KindAsync   byte = 'A' // asynchronous (signal-driven) processing
)

// Span is one activity interval on one node.
type Span struct {
	Node       int
	Kind       byte
	Start, End sim.Time
	Label      string
}

// Recorder accumulates spans. It is safe for simulated processes (the
// kernel serializes them).
type Recorder struct {
	Spans []Span
	Hops  []HopSpan // fabric link occupancies (routed topologies only)
}

// Add records a span.
func (r *Recorder) Add(node int, kind byte, start, end sim.Time, label string) {
	if end < start {
		start, end = end, start
	}
	r.Spans = append(r.Spans, Span{Node: node, Kind: kind, Start: start, End: end, Label: label})
}

// kindPriority orders overdraw: async beats sync beats compute.
func kindPriority(k byte) int {
	switch k {
	case KindAsync:
		return 4
	case KindSync:
		return 3
	case KindBarrier:
		return 2
	case KindCompute:
		return 1
	}
	return 0
}

// Render draws one character row per node over the recorded interval.
// width is the number of time buckets; each bucket shows the
// highest-priority span covering it.
func (r *Recorder) Render(w io.Writer, nodes, width int) {
	if len(r.Spans) == 0 {
		fmt.Fprintln(w, "(no spans recorded)")
		return
	}
	minT, maxT := r.Spans[0].Start, r.Spans[0].End
	for _, s := range r.Spans {
		if s.Start < minT {
			minT = s.Start
		}
		if s.End > maxT {
			maxT = s.End
		}
	}
	if maxT == minT {
		maxT = minT + 1
	}
	span := float64(maxT - minT)
	rows := make([][]byte, nodes)
	prio := make([][]int, nodes)
	for i := range rows {
		rows[i] = make([]byte, width)
		prio[i] = make([]int, width)
		for j := range rows[i] {
			rows[i][j] = KindIdle
		}
	}
	sorted := append([]Span(nil), r.Spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return kindPriority(sorted[i].Kind) < kindPriority(sorted[j].Kind)
	})
	for _, s := range sorted {
		if s.Node < 0 || s.Node >= nodes {
			continue
		}
		b0 := int(float64(s.Start-minT) / span * float64(width))
		if b0 >= width {
			// A zero-length span starting exactly at maxT lands one past
			// the last bucket; draw it in the final column instead of
			// silently vanishing.
			b0 = width - 1
		}
		b1 := int(float64(s.End-minT) / span * float64(width))
		if b1 <= b0 {
			b1 = b0 + 1
		}
		if b1 > width {
			b1 = width
		}
		p := kindPriority(s.Kind)
		for j := b0; j < b1; j++ {
			if p >= prio[s.Node][j] {
				rows[s.Node][j] = s.Kind
				prio[s.Node][j] = p
			}
		}
	}
	fmt.Fprintf(w, "time %v .. %v  (one column ≈ %v)\n",
		minT, maxT, sim.Time(span/float64(width)))
	for i, row := range rows {
		fmt.Fprintf(w, "node %2d |%s|\n", i, row)
	}
	fmt.Fprintf(w, "legend: R=inside Reduce  A=async handler  c=compute/delay  b=barrier  .=idle\n")
}
