//go:build race

package cluster

// raceEnabled skips allocation-ceiling assertions under the race
// detector, whose instrumentation inflates allocation counts.
const raceEnabled = true
