package cluster

import (
	"fmt"
	"testing"

	"abred/internal/coll"
	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
)

// fingerprint runs the skewed AB-reduce workload on c and renders every
// observable outcome — virtual end time, result bytes, event count, and
// per-node NIC/engine/MPI statistics — into one string. Two runs are
// byte-identical iff their fingerprints match. The workload draws a
// kernel RNG stream per rank, so stream numbering across Reset is
// exercised too.
func fingerprint(c *Cluster) string {
	size := len(c.Nodes)
	count := 16
	results := make([][]byte, size)
	end := c.Run(func(n *Node, w *mpi.Comm) {
		rng := c.K.NewRNG()
		in := mpi.Float64sToBytes(rankInput(n.ID, count))
		out := make([]byte, count*8)
		for iter := 0; iter < 3; iter++ {
			skew := sim.Time(rng.Int63n(1000)) * us
			n.Proc.SpinInterruptible(skew)
			n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
			n.Proc.SpinInterruptible(1500 * us)
			coll.Barrier(w)
		}
		results[n.ID] = out
	})
	s := fmt.Sprintf("end=%d events=%d\n", end, c.K.Events())
	for i, n := range c.Nodes {
		s += fmt.Sprintf("rank%d out=%x nic=%+v eng=%+v mpi=%+v mem=%d\n",
			i, results[i], n.NIC.Stats(), n.Engine.Metrics, n.MPI.Stats,
			n.MPI.Mem.PeakBytes())
	}
	drop, dup := c.Fabric.FaultStats()
	s += fmt.Sprintf("fault drop=%d dup=%d\n", drop, dup)
	return s
}

// TestResetDeterminism proves the tentpole guarantee: a Reset cluster
// replays a config byte-identically to a freshly built one, including
// after runs under other seeds and other fault plans in between.
func TestResetDeterminism(t *testing.T) {
	lossy := fault.Config{Seed: 7, Rule: fault.Rule{Drop: 0.02, Dup: 0.01}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"clean", Config{Specs: model.PaperCluster(8), Seed: 99}},
		{"lossy", Config{Specs: model.PaperCluster(8), Seed: 99, Fault: lossy}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := New(tc.cfg)
			defer fresh.Close()
			want := fingerprint(fresh)

			reused := New(Config{Specs: tc.cfg.Specs, Seed: 1234})
			defer reused.Close()
			fingerprint(reused) // dirty the cluster under another seed
			for cycle := 0; cycle < 2; cycle++ {
				reused.Reset(tc.cfg)
				if got := fingerprint(reused); got != want {
					t.Fatalf("reset cycle %d diverged from fresh build:\nfresh:\n%s\nreused:\n%s",
						cycle, want, got)
				}
			}
		})
	}
}

// TestResetTogglesFaultPlan flips fault injection on and off across
// Reset cycles on one cluster: the lossy replay must stay identical to a
// fresh lossy build (same retransmissions, same acks), and the clean
// replay must match a fresh clean build (reliability fully quiesced).
func TestResetTogglesFaultPlan(t *testing.T) {
	specs := model.PaperCluster(8)
	clean := Config{Specs: specs, Seed: 5}
	lossy := Config{Specs: specs, Seed: 5,
		Fault: fault.Config{Seed: 11, Rule: fault.Rule{Drop: 0.03}}}

	fc := New(clean)
	defer fc.Close()
	wantClean := fingerprint(fc)
	fl := New(lossy)
	defer fl.Close()
	wantLossy := fingerprint(fl)
	if wantClean == wantLossy {
		t.Fatal("fault plan had no observable effect; test is vacuous")
	}

	c := New(clean)
	defer c.Close()
	for cycle, step := range []struct {
		cfg  Config
		want string
	}{
		{clean, wantClean}, {lossy, wantLossy},
		{clean, wantClean}, {lossy, wantLossy},
	} {
		if cycle > 0 {
			c.Reset(step.cfg)
		}
		if got := fingerprint(c); got != step.want {
			t.Fatalf("toggle cycle %d diverged:\nwant:\n%s\ngot:\n%s",
				cycle, step.want, got)
		}
	}
}

// TestResetShapeMismatchPanics: specs and costs are construction-time
// properties; Reset must refuse rather than silently misconfigure.
func TestResetShapeMismatchPanics(t *testing.T) {
	c := New(Config{Specs: model.Uniform(4), Seed: 1})
	defer c.Close()
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Reset did not panic", name)
			}
		}()
		c.Reset(cfg)
	}
	mustPanic("size", Config{Specs: model.Uniform(8), Seed: 1})
	mustPanic("spec", Config{Specs: model.PaperCluster(4), Seed: 1})
	costs := model.DefaultCosts()
	costs.HostSendOvh *= 2
	mustPanic("costs", Config{Specs: model.Uniform(4), Seed: 1, Costs: costs})
}

// TestPoolReuse checks the Pool routing contract: same shape reuses the
// same cluster object, different shapes build fresh, and a pooled
// cluster's results stay byte-identical to a fresh build's.
func TestPoolReuse(t *testing.T) {
	p := NewPool()
	defer p.Drain()
	cfgA := Config{Specs: model.Uniform(8), Seed: 3}
	cfgB := Config{Specs: model.PaperCluster(8), Seed: 3}

	fresh := New(cfgA)
	defer fresh.Close()
	want := fingerprint(fresh)

	a1 := p.Get(cfgA)
	got1 := fingerprint(a1)
	p.Put(a1)
	b := p.Get(cfgB) // different shape: must not hand back a1
	if b == a1 {
		t.Fatal("pool returned a cluster of the wrong shape")
	}
	p.Put(b)
	a2 := p.Get(Config{Specs: model.Uniform(8), Seed: 3, Fault: fault.Config{}})
	if a2 != a1 {
		t.Fatal("pool built a new cluster although a matching one was free")
	}
	got2 := fingerprint(a2)
	p.Put(a2)

	if got1 != want || got2 != want {
		t.Fatalf("pooled runs diverged from fresh build:\nfresh:\n%s\nfirst:\n%s\nreused:\n%s",
			want, got1, got2)
	}
}

// TestConstructionAllocsPerNode pins the slab win: building a cluster
// must stay within a fixed allocation budget per node. Before the slab
// and shared-cost-table work this was far higher (separate Node, NIC,
// queue rings, cond, daemon and cost table objects per node).
func TestConstructionAllocsPerNode(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation ceilings are calibrated without -race instrumentation")
	}
	const size = 256
	specs := model.Uniform(size)
	allocs := testing.AllocsPerRun(3, func() {
		c := New(Config{Specs: specs, Seed: 1})
		c.Close()
	})
	perNode := allocs / size
	t.Logf("construction: %.0f allocs total, %.2f per node", allocs, perNode)
	if perNode > 12 {
		t.Fatalf("construction allocates %.2f objects per node (> 12); slab regression?", perNode)
	}
}

// TestResetAllocsPerNode pins the reuse win: Reset must allocate almost
// nothing per node — only the per-cluster fault-plan rebuild and a few
// fixed-size objects, never O(N) fresh state.
func TestResetAllocsPerNode(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation ceilings are calibrated without -race instrumentation")
	}
	const size = 256
	c := New(Config{Specs: model.Uniform(size), Seed: 1})
	defer c.Close()
	c.Run(func(n *Node, w *mpi.Comm) { coll.Barrier(w) })
	specs := c.specs()
	allocs := testing.AllocsPerRun(5, func() {
		c.Reset(Config{Specs: specs, Seed: 2})
	})
	t.Logf("reset: %.0f allocs for %d nodes", allocs, size)
	if allocs > size/4 {
		t.Fatalf("Reset of a %d-node cluster allocates %.0f objects; reuse regression?", size, allocs)
	}
}

// specs reconstructs the cluster's spec slice for Reset in tests.
func (c *Cluster) specs() []model.NodeSpec {
	s := make([]model.NodeSpec, len(c.Nodes))
	for i, n := range c.Nodes {
		s[i] = n.Spec
	}
	return s
}
