package cluster

import (
	"fmt"

	"abred/internal/flow"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// Engine selects the simulation engine a cluster is built around.
type Engine uint8

// Engines. EnginePacket is the historical full-fidelity path and the
// zero value, so every existing Config keeps its meaning; EngineFlow is
// the flow-level hybrid-fidelity engine (max-min fair transfers,
// arithmetic host clocks) that scales the same API to ~1M nodes.
const (
	EnginePacket Engine = iota
	EngineFlow
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EnginePacket:
		return "packet"
	case EngineFlow:
		return "flow"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "packet":
		return EnginePacket, nil
	case "flow":
		return EngineFlow, nil
	}
	return EnginePacket, fmt.Errorf("unknown engine %q (packet|flow)", s)
}

// newFlow builds a flow-engine cluster: the topology graph, shared
// cost tables and the flow machine — no fabric, NICs or per-node
// structs, so construction and footprint stay flat arrays even at a
// million nodes. When LPs requests a partitioned run, the machine is
// sharded along the topology's pods (same clamp as the packet engine)
// and the shards couple through sim.LPSet windows.
func newFlow(cfg Config) *Cluster {
	k := sim.New(cfg.Seed)
	tp := topo.Build(cfg.Topo, len(cfg.Specs))
	c := &Cluster{
		K: k, Costs: cfg.Costs, Topo: tp,
		Engine: EngineFlow, flowSpecs: cfg.Specs,
		reqLPs: normLPs(cfg.LPs), key: keyOf(cfg),
	}
	c.LPs = 1
	if c.reqLPs > 1 {
		c.pmap, c.LPs = tp.Partition(c.reqLPs)
		if c.LPs == 1 {
			c.pmap = nil
		}
	}
	c.Ks = make([]*sim.Kernel, c.LPs)
	c.Ks[0] = k
	for i := 1; i < c.LPs; i++ {
		c.Ks[i] = sim.New(lpSeed(cfg.Seed, i))
	}
	cms := model.SharedCostModels(cfg.Specs, cfg.Costs)
	m := flow.NewMachines(c.Ks, c.pmap, tp, cms, cfg.Costs)
	if err := m.SetFaults(cfg.Fault); err != nil {
		panic("cluster: " + err.Error())
	}
	c.FlowM = m
	if c.LPs > 1 {
		par := m.Par()
		c.lpset = sim.NewLPSet(c.Ks, par.Lookahead(), par.Exchange)
	}
	return c
}

// resetFlow is Reset for a flow cluster: same shape checks, then kernel
// and machine state back to just-built under the new seed and faults.
func (c *Cluster) resetFlow(cfg Config) {
	if len(cfg.Specs) != len(c.flowSpecs) {
		panic(fmt.Sprintf("cluster: Reset with %d specs on a %d-node cluster", len(cfg.Specs), len(c.flowSpecs)))
	}
	if cfg.Costs != c.Costs {
		panic("cluster: Reset with different costs")
	}
	if cfg.Topo.Norm() != c.Topo.Spec() {
		panic(fmt.Sprintf("cluster: Reset with topology %v on a %v cluster", cfg.Topo, c.Topo.Spec()))
	}
	if normLPs(cfg.LPs) != c.reqLPs {
		panic(fmt.Sprintf("cluster: Reset with %d LPs on a %d-LP cluster",
			normLPs(cfg.LPs), c.reqLPs))
	}
	for i, s := range c.flowSpecs {
		if cfg.Specs[i] != s {
			panic(fmt.Sprintf("cluster: Reset with different spec for node %d", i))
		}
	}
	for i, k := range c.Ks {
		k.Reset(lpSeed(cfg.Seed, i))
	}
	c.FlowM.Reset()
	if err := c.FlowM.SetFaults(cfg.Fault); err != nil {
		panic("cluster: " + err.Error())
	}
}

// Size returns the node count, engine-independent.
func (c *Cluster) Size() int {
	if c.Engine == EngineFlow {
		return len(c.flowSpecs)
	}
	return len(c.Nodes)
}
