package cluster

import (
	"fmt"

	"abred/internal/flow"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// Engine selects the simulation engine a cluster is built around.
type Engine uint8

// Engines. EnginePacket is the historical full-fidelity path and the
// zero value, so every existing Config keeps its meaning; EngineFlow is
// the flow-level hybrid-fidelity engine (max-min fair transfers,
// arithmetic host clocks) that scales the same API to ~1M nodes.
const (
	EnginePacket Engine = iota
	EngineFlow
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EnginePacket:
		return "packet"
	case EngineFlow:
		return "flow"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "packet":
		return EnginePacket, nil
	case "flow":
		return EngineFlow, nil
	}
	return EnginePacket, fmt.Errorf("unknown engine %q (packet|flow)", s)
}

// newFlow builds a flow-engine cluster: one kernel, the topology graph,
// shared cost tables and the flow machine — no fabric, NICs or
// per-node structs, so construction and footprint stay flat arrays even
// at a million nodes.
func newFlow(cfg Config) *Cluster {
	if normLPs(cfg.LPs) > 1 {
		panic("cluster: the flow engine is monolithic (LPs must be 0 or 1)")
	}
	k := sim.New(cfg.Seed)
	tp := topo.Build(cfg.Topo, len(cfg.Specs))
	cms := model.SharedCostModels(cfg.Specs, cfg.Costs)
	m := flow.NewMachine(k, tp, cms, cfg.Costs)
	if err := m.SetFaults(cfg.Fault); err != nil {
		panic("cluster: " + err.Error())
	}
	return &Cluster{
		K: k, Costs: cfg.Costs, Topo: tp,
		Engine: EngineFlow, FlowM: m, flowSpecs: cfg.Specs,
		Ks: []*sim.Kernel{k}, LPs: 1, reqLPs: 1,
		key: keyOf(cfg),
	}
}

// resetFlow is Reset for a flow cluster: same shape checks, then kernel
// and machine state back to just-built under the new seed and faults.
func (c *Cluster) resetFlow(cfg Config) {
	if len(cfg.Specs) != len(c.flowSpecs) {
		panic(fmt.Sprintf("cluster: Reset with %d specs on a %d-node cluster", len(cfg.Specs), len(c.flowSpecs)))
	}
	if cfg.Costs != c.Costs {
		panic("cluster: Reset with different costs")
	}
	if cfg.Topo.Norm() != c.Topo.Spec() {
		panic(fmt.Sprintf("cluster: Reset with topology %v on a %v cluster", cfg.Topo, c.Topo.Spec()))
	}
	if normLPs(cfg.LPs) > 1 {
		panic("cluster: the flow engine is monolithic (LPs must be 0 or 1)")
	}
	for i, s := range c.flowSpecs {
		if cfg.Specs[i] != s {
			panic(fmt.Sprintf("cluster: Reset with different spec for node %d", i))
		}
	}
	c.K.Reset(cfg.Seed)
	c.FlowM.Reset()
	if err := c.FlowM.SetFaults(cfg.Fault); err != nil {
		panic("cluster: " + err.Error())
	}
}

// Size returns the node count, engine-independent.
func (c *Cluster) Size() int {
	if c.Engine == EngineFlow {
		return len(c.flowSpecs)
	}
	return len(c.Nodes)
}
