package cluster

import (
	"reflect"
	"testing"

	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/topo"
)

// Every Config field is either a construction-time shape property that
// MUST change the pool key (a stale key silently reuses a cluster built
// for a different machine), or a run-time property Reset re-applies and
// the key MUST ignore. A new field lands in neither set and fails the
// test until it is classified here AND — if shape — wired into keyOf.
var (
	shapeFields = map[string]Config{
		"Specs":  {Specs: model.Uniform(5)},
		"Costs":  {Costs: func() model.Costs { c := model.DefaultCosts(); c.HostSendOvh += 1; return c }()},
		"Topo":   {Topo: topo.Spec{Kind: topo.FatTree, K: 4}},
		"Engine": {Engine: EngineFlow},
		"LPs":    {LPs: 4},
	}
	runtimeFields = map[string]Config{
		"Seed":  {Seed: 42},
		"Fault": {Fault: fault.Config{Seed: 7, Rule: fault.Rule{Drop: 1e-3}}},
	}
)

// TestPoolKeyCoversEveryConfigField is the staleness guard: reflection
// walks Config so adding a field (tenancy, oversubscription, whatever
// comes next) breaks the build here until the pool key is updated.
func TestPoolKeyCoversEveryConfigField(t *testing.T) {
	base := Config{Specs: model.Uniform(4)}
	baseKey := keyOf(base)

	typ := reflect.TypeOf(Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		mutated, isShape := shapeFields[name]
		if !isShape {
			if _, isRuntime := runtimeFields[name]; !isRuntime {
				t.Fatalf("Config field %q is not classified as shape or runtime; "+
					"decide whether the pool key must include it and add it to the proper set", name)
			}
			mutated = runtimeFields[name]
		}

		// Overlay the mutated field onto base via reflection so each
		// probe differs from base in exactly one field.
		cfg := base
		fv := reflect.ValueOf(&cfg).Elem().FieldByName(name)
		mv := reflect.ValueOf(mutated).FieldByName(name)
		if reflect.DeepEqual(fv.Interface(), mv.Interface()) {
			t.Fatalf("probe for field %q equals the base value; make it distinct", name)
		}
		fv.Set(mv)

		changed := keyOf(cfg) != baseKey
		if isShape && !changed {
			t.Errorf("shape field %q does not participate in the pool key: "+
				"a warm pool would reuse a cluster built for a different %s", name, name)
		}
		if !isShape && changed {
			t.Errorf("runtime field %q perturbs the pool key: "+
				"Reset re-applies it, keying on it defeats warm reuse", name)
		}
	}
}

// TestPoolKeyNormalizesTopo pins the Oversub-spelling equivalence: o=0
// and o=1 describe the same fabric and must share a pool bucket, while
// a real taper is a different machine.
func TestPoolKeyNormalizesTopo(t *testing.T) {
	specs := model.Uniform(16)
	// Costs set explicitly: matches is exercised directly, below the
	// layer (Pool.Get) that defaults them.
	o0 := Config{Specs: specs, Costs: model.DefaultCosts(),
		Topo: topo.Spec{Kind: topo.FatTree, K: 4}}
	o1 := o0
	o1.Topo.Oversub = 1
	o4 := o0
	o4.Topo.Oversub = 4
	if keyOf(o0) != keyOf(o1) {
		t.Error("Oversub 0 and 1 spell the same fabric but key differently")
	}
	if keyOf(o0) == keyOf(o4) {
		t.Error("a 4:1 taper keys like full bisection")
	}

	// End to end: a cluster built with one spelling must match (and be
	// Reset by) the other.
	c := New(o0)
	defer c.Close()
	if !c.matches(o1) {
		t.Error("o=1 config does not match an o=0 cluster")
	}
	if c.matches(o4) {
		t.Error("o=4 config matches a full-bisection cluster")
	}
	c.Reset(o1) // must not panic
}

// TestValidate pins the flag-level error paths New would otherwise
// surface as panics mid-construction.
func TestValidate(t *testing.T) {
	if err := (Config{Specs: model.Uniform(4)}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty specs validated")
	}
	// Since the flow engine rides the LPSet scheduler, flow + LPs is a
	// valid combination (clamped to the topology's pods like packet).
	if err := (Config{Specs: model.Uniform(4), Engine: EngineFlow, LPs: 4}).Validate(); err != nil {
		t.Errorf("flow engine with LPs 4 rejected: %v", err)
	}
	bad := Config{Specs: model.Uniform(4), Topo: topo.Spec{Kind: topo.Crossbar, Oversub: 4}}
	if err := bad.Validate(); err == nil {
		t.Error("oversubscribed crossbar validated")
	}
	defer func() {
		if recover() == nil {
			t.Error("New on an invalid config did not panic")
		}
	}()
	New(bad)
}
