// Package cluster assembles complete virtual clusters: a simulation
// kernel, a fabric, one NIC per node, and an SPMD launcher that runs an
// MPI program as one simulated process per node.
package cluster

import (
	"fmt"

	"abred/internal/core"
	"abred/internal/fabric"
	"abred/internal/fault"
	"abred/internal/gm"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
)

// Node bundles everything belonging to one cluster node. Proc, MPI and
// Engine are populated when a program starts running on the node.
type Node struct {
	ID     int
	Spec   model.NodeSpec
	CM     model.CostModel
	NIC    *gm.NIC
	Proc   *sim.Proc
	MPI    *mpi.Process
	Engine *core.Engine
	world  *mpi.Comm
}

// Cluster is a simulated machine room.
type Cluster struct {
	K      *sim.Kernel
	Costs  model.Costs
	Fabric *fabric.Fabric
	Nodes  []*Node
}

// Config controls cluster construction.
type Config struct {
	Specs []model.NodeSpec // node hardware; one entry per node
	Costs model.Costs      // zero value means model.DefaultCosts
	Seed  int64            // kernel seed; reuse to reproduce a run exactly

	// Fault describes fabric fault injection. The zero value keeps the
	// fabric perfect and the hot path byte-identical to a fault-free
	// build; anything else compiles a per-cluster fault.Plan, installs
	// the gm pool hooks, and switches every NIC to reliable delivery.
	Fault fault.Config
}

// New builds a cluster: kernel, fabric and NICs. MPI processes appear
// when Run starts a program.
func New(cfg Config) *Cluster {
	if len(cfg.Specs) == 0 {
		panic("cluster: no node specs")
	}
	if cfg.Costs == (model.Costs{}) {
		cfg.Costs = model.DefaultCosts()
	}
	k := sim.New(cfg.Seed)
	fab := fabric.New(k, len(cfg.Specs), cfg.Costs)
	if plan := fault.New(cfg.Fault); plan != nil {
		// Each cluster compiles its own Plan (Plans hold mutable RNG
		// state, and the sweep engine runs clusters concurrently) and
		// installs the gm pool hooks so dropped and duplicated frames
		// keep packet accounting balanced.
		fab.Inject = plan
		fab.OnDrop, fab.ClonePayload = gm.FaultHooks()
	}
	c := &Cluster{K: k, Costs: cfg.Costs, Fabric: fab}
	for i, spec := range cfg.Specs {
		cm := model.NewCostModel(spec, cfg.Costs)
		c.Nodes = append(c.Nodes, &Node{
			ID:   i,
			Spec: spec,
			CM:   cm,
			NIC:  gm.NewNIC(k, i, cm, fab),
		})
		if fab.Inject != nil {
			c.Nodes[i].NIC.EnableReliability()
		}
	}
	return c
}

// Program is the per-rank body of an SPMD run. The world communicator
// and the node's application-bypass engine arrive ready to use.
type Program func(n *Node, w *mpi.Comm)

// Run executes program once per node and drives the simulation to
// completion, returning the final virtual time. Run may be called again
// to execute a follow-up program on the same cluster.
func (c *Cluster) Run(program Program) sim.Time {
	size := len(c.Nodes)
	for _, n := range c.Nodes {
		n := n
		c.K.Spawn(fmt.Sprintf("rank%d", n.ID), func(p *sim.Proc) {
			n.Proc = p
			if n.MPI == nil {
				n.MPI = mpi.NewProcess(p, n.ID, size, n.NIC, n.CM)
				n.Engine = core.NewEngine(n.MPI)
				n.world = mpi.World(n.MPI)
			} else {
				// Follow-up program on the same cluster: rebind the
				// rank to its fresh simulated process, keeping queues,
				// sequence counters and engine state.
				n.MPI.Rebind(p)
			}
			program(n, n.world)
		})
	}
	end := c.K.Run()
	for _, n := range c.Nodes {
		if err := n.NIC.RelError(); err != nil {
			// Graceful degradation for a dead link: the reliability
			// engine already stopped the kernel; surface the per-port
			// error instead of the watchdog's opaque deadlock report.
			panic(fmt.Sprintf("cluster: %v", err))
		}
	}
	return end
}

// Close shuts the simulation down, unblocking and exiting every parked
// process — the daemon NIC control programs above all — so back-to-back
// simulations in one OS process don't accumulate goroutines. The cluster
// cannot run further programs afterwards.
func (c *Cluster) Close() { c.K.Shutdown() }
