// Package cluster assembles complete virtual clusters: a simulation
// kernel, a fabric, one NIC per node, and an SPMD launcher that runs an
// MPI program as one simulated process per node. Built clusters can be
// reset and reused across runs (see Reset and Pool): re-running a
// program on a reused cluster is byte-identical to rebuilding from
// scratch, at a fraction of the construction cost.
package cluster

import (
	"fmt"
	"strconv"

	"abred/internal/core"
	"abred/internal/fabric"
	"abred/internal/fault"
	"abred/internal/flow"
	"abred/internal/gm"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
	"abred/internal/topo"
)

// Node bundles everything belonging to one cluster node. Proc, MPI and
// Engine are populated when a program starts running on the node.
type Node struct {
	ID     int
	Spec   model.NodeSpec
	CM     model.CostModel
	NIC    *gm.NIC
	Proc   *sim.Proc
	MPI    *mpi.Process
	Engine *core.Engine
	world  *mpi.Comm

	cl      *Cluster
	pname   string          // proc name, built once ("rank" + ID)
	spawnFn func(*sim.Proc) // bound body method, built once (no per-Run closure)
	fresh   bool            // Reset since the last Run: re-initialize MPI state in place
}

// Cluster is a simulated machine room.
type Cluster struct {
	K      *sim.Kernel // kernel of LP 0 — the only kernel when unpartitioned
	Costs  model.Costs
	Fabric *fabric.Fabric
	Topo   *topo.Topology // built interconnect graph; crossbar by default
	Nodes  []*Node

	// Engine identifies the simulation engine the cluster was built for.
	// A flow-engine cluster has FlowM in place of Fabric/Nodes: per-node
	// state lives in flat arrays inside the flow machine, and programs
	// drive the flow collective API instead of Run.
	Engine Engine
	FlowM  *flow.Machine

	flowSpecs []model.NodeSpec // spec table of a flow cluster (no Nodes)

	// Partitioned (parallel) execution state: Ks holds every logical
	// process's kernel (length 1 when monolithic; Ks[0] == K), LPs the
	// actual partition count after clamping to the topology's pods.
	Ks     []*sim.Kernel
	LPs    int
	reqLPs int     // normalized requested count; pool/Reset matching
	pmap   []int32 // node -> LP, nil when monolithic
	lpset  *sim.LPSet

	program Program // body of the Run in progress
	key     poolKey // shape key, computed once for Pool.Put
}

// Config controls cluster construction.
type Config struct {
	Specs []model.NodeSpec // node hardware; one entry per node
	Costs model.Costs      // zero value means model.DefaultCosts
	Seed  int64            // kernel seed; reuse to reproduce a run exactly

	// Topo selects the interconnect. The zero value is the single
	// crossbar every configuration used before topologies existed; it
	// keeps the fabric on its byte-identical allocation-free path. Like
	// Specs and Costs it is a construction-time shape property: Reset
	// refuses a different topology and Pool keys on it.
	Topo topo.Spec

	// Fault describes fabric fault injection. The zero value keeps the
	// fabric perfect and the hot path byte-identical to a fault-free
	// build; anything else compiles a per-cluster fault.Plan, installs
	// the gm pool hooks, and switches every NIC to reliable delivery.
	Fault fault.Config

	// Engine selects the simulation engine: EnginePacket (the default)
	// is the full-fidelity per-packet path; EngineFlow models transfers
	// as max-min fair flows and scales to ~1M nodes. Construction-time
	// shape property: Reset refuses a mismatch and Pool keys on it.
	Engine Engine

	// LPs requests a partitioned simulation: up to LPs logical processes
	// split along the topology's pod boundaries, each with its own
	// kernel, run in parallel under conservative windows (sim.LPSet).
	// The count is clamped to the topology's pod count, so a crossbar —
	// which has one pod — always runs monolithic. 0 or 1 keeps the
	// historical single-kernel path, byte-identical to every prior
	// build. Like Topo this is a construction-time shape property: Reset
	// refuses a different count and Pool keys on it.
	LPs int
}

// Validate checks a Config for construction-time contradictions,
// returning an error instead of the panic New raises. Callers holding
// flag-level input (abscale, abbench) run it first so a bad combination
// — an oversubscribed crossbar, an empty spec table — surfaces as a
// usage error, not a stack trace.
func (cfg Config) Validate() error {
	if len(cfg.Specs) == 0 {
		return fmt.Errorf("cluster: no node specs")
	}
	if err := cfg.Topo.Validate(); err != nil {
		return err
	}
	return nil
}

// normLPs normalizes a requested LP count: 0 and 1 both mean monolithic.
func normLPs(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// lpSeed derives LP i's kernel seed. LP 0 keeps the configured seed
// exactly, so pre-run NewRNG draws (skew matrices and the like, always
// taken from the first kernel) match a monolithic run bit for bit.
func lpSeed(seed int64, i int) int64 {
	return seed ^ int64(i)*0x1E3779B97F4A7C15
}

// packetPoolCap right-sizes the per-NIC recycled-packet cap for the
// cluster scale: small clusters keep GM's deep per-NIC pool, large ones
// shrink it so 16384 NICs cannot pin a million idle packets between
// iterations. Pool depth never affects virtual time, only allocation
// traffic, so the cap is invisible to simulation results.
func packetPoolCap(n int) int {
	const budget = 256 * 1024 // cluster-wide pooled-packet ceiling
	c := budget / n
	if c > 256 {
		c = 256
	}
	if c < 8 {
		c = 8
	}
	return c
}

// New builds a cluster: kernel, fabric and NICs. MPI processes appear
// when Run starts a program. Node and NIC storage is slab-allocated
// (one backing array each) and nodes with identical hardware share one
// derived cost table, so construction cost and footprint scale with the
// number of distinct node classes, not with raw node count.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.Costs == (model.Costs{}) {
		cfg.Costs = model.DefaultCosts()
	}
	if cfg.Engine == EngineFlow {
		return newFlow(cfg)
	}
	k := sim.New(cfg.Seed)
	fab := fabric.New(k, len(cfg.Specs), cfg.Costs)
	tp := topo.Build(cfg.Topo, len(cfg.Specs))
	fab.SetTopology(tp)
	c := &Cluster{K: k, Costs: cfg.Costs, Fabric: fab, Topo: tp,
		reqLPs: normLPs(cfg.LPs), key: keyOf(cfg)}

	// Partition along pod boundaries when a parallel run was requested;
	// the clamp leaves crossbars (one pod) monolithic.
	c.LPs = 1
	if c.reqLPs > 1 {
		c.pmap, c.LPs = tp.Partition(c.reqLPs)
		if c.LPs == 1 {
			c.pmap = nil
		}
	}
	c.Ks = make([]*sim.Kernel, c.LPs)
	c.Ks[0] = k
	for i := 1; i < c.LPs; i++ {
		c.Ks[i] = sim.New(lpSeed(cfg.Seed, i))
	}
	if c.LPs > 1 {
		fab.SetPartition(c.pmap, c.Ks)
		c.lpset = sim.NewLPSet(c.Ks, fab.Lookahead(), fab.Exchange)
	}

	reliable := c.installFaults(cfg.Fault)
	cms := model.SharedCostModels(cfg.Specs, cfg.Costs)
	var nics []*gm.NIC
	if c.LPs > 1 {
		nics = gm.NewNICsPart(c.Ks, c.pmap, cms, fab)
		fab.Reown = gm.ReownHook(nics)
	} else {
		nics = gm.NewNICs(k, cms, fab)
	}
	poolCap := packetPoolCap(len(cfg.Specs))
	nodes := make([]Node, len(cfg.Specs))
	c.Nodes = make([]*Node, len(cfg.Specs))
	for i, spec := range cfg.Specs {
		n := &nodes[i]
		n.ID = i
		n.Spec = spec
		n.CM = cms[i]
		n.NIC = nics[i]
		n.NIC.SetPacketPoolCap(poolCap)
		n.cl = c
		n.pname = "rank" + strconv.Itoa(i)
		n.spawnFn = n.body
		if reliable {
			n.NIC.EnableReliability()
		}
		c.Nodes[i] = n
	}
	return c
}

// installFaults compiles and installs cfg's fault plan, reporting
// whether NICs need reliable delivery. Each cluster compiles its own
// Plan (Plans hold mutable RNG state, and the sweep engine runs
// clusters concurrently) and installs the gm pool hooks so dropped and
// duplicated frames keep packet accounting balanced. A partitioned
// cluster compiles one Plan per LP from a derived fault seed: Judge
// mutates stream state, and since every frame on a directed link is
// judged by its source's LP, each per-LP plan still sees its links'
// complete frame sequences (scripted Nth-frame drops stay exact).
func (c *Cluster) installFaults(fc fault.Config) bool {
	if c.LPs > 1 {
		if !fc.Enabled() {
			return false
		}
		plans := make([]fabric.Injector, c.LPs)
		for i := range plans {
			pfc := fc
			pfc.Seed = lpSeed(fc.Seed, i)
			plans[i] = fault.New(pfc)
		}
		c.Fabric.SetInjectors(plans)
		c.Fabric.OnDrop, c.Fabric.ClonePayload = gm.FaultHooks()
		return true
	}
	plan := fault.New(fc)
	if plan == nil {
		return false
	}
	c.Fabric.Inject = plan
	c.Fabric.OnDrop, c.Fabric.ClonePayload = gm.FaultHooks()
	return true
}

// Reset returns the cluster to its just-built state under cfg's seed and
// fault plan, so the next Run behaves byte-identically to a run on a
// freshly built cluster with the same Config — the guarantee the reuse
// determinism tests enforce. The hardware must match: specs and costs
// are construction-time properties (they shape cost tables and fabric
// rates), so a mismatch panics; use a Pool to route configs to matching
// clusters automatically. Seed and fault plan are run-time properties
// and may change freely.
func (c *Cluster) Reset(cfg Config) {
	if cfg.Costs == (model.Costs{}) {
		cfg.Costs = model.DefaultCosts()
	}
	if cfg.Engine != c.Engine {
		panic(fmt.Sprintf("cluster: Reset with engine %v on a %v cluster", cfg.Engine, c.Engine))
	}
	if c.Engine == EngineFlow {
		c.resetFlow(cfg)
		return
	}
	if len(cfg.Specs) != len(c.Nodes) {
		panic(fmt.Sprintf("cluster: Reset with %d specs on a %d-node cluster", len(cfg.Specs), len(c.Nodes)))
	}
	if cfg.Costs != c.Costs {
		panic("cluster: Reset with different costs")
	}
	if cfg.Topo.Norm() != c.Topo.Spec() {
		panic(fmt.Sprintf("cluster: Reset with topology %v on a %v cluster",
			cfg.Topo, c.Topo.Spec()))
	}
	if normLPs(cfg.LPs) != c.reqLPs {
		panic(fmt.Sprintf("cluster: Reset with %d LPs on a %d-LP cluster",
			normLPs(cfg.LPs), c.reqLPs))
	}
	for i, n := range c.Nodes {
		if cfg.Specs[i] != n.Spec {
			panic(fmt.Sprintf("cluster: Reset with different spec for node %d", i))
		}
	}
	for i, k := range c.Ks {
		k.Reset(lpSeed(cfg.Seed, i))
	}
	c.Fabric.Reset()
	reliable := c.installFaults(cfg.Fault)
	for _, n := range c.Nodes {
		n.NIC.Reset(reliable)
		n.Proc = nil
		n.fresh = n.MPI != nil
	}
	c.program = nil
}

// Program is the per-rank body of an SPMD run. The world communicator
// and the node's application-bypass engine arrive ready to use.
type Program func(n *Node, w *mpi.Comm)

// body is the spawned entry point of one rank; a method rather than a
// per-Run closure so repeated Runs on a reused cluster allocate nothing
// per node beyond the goroutine itself.
func (n *Node) body(p *sim.Proc) {
	c := n.cl
	n.Proc = p
	switch {
	case n.MPI == nil:
		n.MPI = mpi.NewProcess(p, n.ID, len(c.Nodes), n.NIC, n.CM)
		n.Engine = core.NewEngine(n.MPI)
		n.world = mpi.World(n.MPI)
	case n.fresh:
		// First program after a Reset: re-initialize the rank in place,
		// mirroring the fresh-build path exactly (including the eager
		// bounce-buffer pin charged to p).
		n.MPI.Reset(p)
		n.Engine.Reset()
		n.world = mpi.World(n.MPI)
		n.fresh = false
	default:
		// Follow-up program on the same cluster: rebind the rank to its
		// fresh simulated process, keeping queues, sequence counters and
		// engine state.
		n.MPI.Rebind(p)
	}
	c.program(n, n.world)
}

// Run executes program once per node and drives the simulation to
// completion, returning the final virtual time. Run may be called again
// to execute a follow-up program on the same cluster.
func (c *Cluster) Run(program Program) sim.Time {
	if c.Engine == EngineFlow {
		panic("cluster: a flow-engine cluster has no per-rank processes; drive the flow collective API (bench/workload flow paths)")
	}
	c.program = program
	var end sim.Time
	if c.lpset != nil {
		for _, n := range c.Nodes {
			c.Ks[c.pmap[n.ID]].Spawn(n.pname, n.spawnFn)
		}
		end = c.lpset.Run()
	} else {
		for _, n := range c.Nodes {
			c.K.Spawn(n.pname, n.spawnFn)
		}
		end = c.K.Run()
	}
	for _, n := range c.Nodes {
		if err := n.NIC.RelError(); err != nil {
			// Graceful degradation for a dead link: the reliability
			// engine already stopped the kernel; surface the per-port
			// error instead of the watchdog's opaque deadlock report.
			panic(fmt.Sprintf("cluster: %v", err))
		}
	}
	return end
}

// Drain runs the already-scheduled event population to quiescence and
// returns the final virtual time: the LPSet window loop when the
// cluster is partitioned, the single kernel otherwise. This is how the
// flow-engine drivers (bench, workload) run a cluster — they seed
// events through the flow API rather than spawning processes.
func (c *Cluster) Drain() sim.Time {
	if c.lpset != nil {
		return c.lpset.Run()
	}
	return c.K.Run()
}

// Events returns the number of simulated events executed, summed over
// every logical process's kernel.
func (c *Cluster) Events() uint64 {
	var ev uint64
	for _, k := range c.Ks {
		ev += k.Events()
	}
	return ev
}

// Close shuts the simulation down, unblocking and exiting every parked
// process — the daemon NIC control programs above all — so back-to-back
// simulations in one OS process don't accumulate goroutines. The cluster
// cannot run further programs afterwards.
func (c *Cluster) Close() {
	for _, k := range c.Ks {
		k.Shutdown()
	}
}
