package cluster

import (
	"sync"
	"testing"

	"abred/internal/model"
	"abred/internal/topo"
)

// TestPoolStatsConcurrent hammers one Pool from many goroutines with a
// mix of cluster shapes — crossbar, fat-tree, flow-engine — and checks
// the counters add up: every Get is a hit or a miss, Size equals what
// was Put back and not taken out, and a Drain closes exactly Size
// clusters. Run under -race this is also the concurrency certificate
// for Get/Put/Stats interleavings.
func TestPoolStatsConcurrent(t *testing.T) {
	p := NewPool()
	// Costs are set explicitly (Get would default them before keying, so
	// matches on the raw config would see a zero-vs-default mismatch).
	costs := model.DefaultCosts()
	cfgs := []Config{
		{Specs: model.Uniform(4), Costs: costs, Seed: 1},
		{Specs: model.Uniform(8), Costs: costs, Seed: 2},
		{Specs: model.Uniform(8), Costs: costs, Seed: 3, Topo: topo.Spec{Kind: topo.FatTree, K: 4}},
		{Specs: model.Uniform(4), Costs: costs, Seed: 4, Engine: EngineFlow},
	}
	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cfg := cfgs[(w+i)%len(cfgs)]
				c := p.Get(cfg)
				if !c.matches(cfg) {
					t.Errorf("pool returned a cluster of the wrong shape for %+v", cfg)
				}
				_ = p.Stats() // snapshots must be safe mid-churn
				p.Put(c)
			}
		}(w)
	}
	wg.Wait()

	st := p.Stats()
	const gets = workers * iters
	if st.Hits+st.Misses != gets {
		t.Fatalf("hits %d + misses %d != %d gets", st.Hits, st.Misses, gets)
	}
	if st.Misses < uint64(len(cfgs)) {
		t.Fatalf("misses %d < %d distinct shapes", st.Misses, len(cfgs))
	}
	// Every Get was followed by a Put, so everything ever built is idle
	// in the pool now: one cluster per fresh build.
	if st.Size != int(st.Misses) {
		t.Fatalf("size %d != misses %d with all clusters returned", st.Size, st.Misses)
	}
	if st.Drains != 0 {
		t.Fatalf("drains %d before any Drain", st.Drains)
	}

	wasSize := st.Size
	p.Drain()
	st = p.Stats()
	if st.Size != 0 || st.Drains != uint64(wasSize) {
		t.Fatalf("after Drain: size %d, drains %d (want 0, %d)", st.Size, st.Drains, wasSize)
	}
	// The pool stays usable: the next Get is a fresh-build miss.
	c := p.Get(cfgs[0])
	if got := p.Stats(); got.Misses != st.Misses+1 || got.Hits != st.Hits {
		t.Fatalf("post-Drain Get not a miss: %+v", got)
	}
	c.Close()
}
