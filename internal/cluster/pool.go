package cluster

import (
	"math"
	"sync"

	"abred/internal/model"
	"abred/internal/topo"
)

// Pool recycles built clusters across simulation runs. A sweep that
// visits the same cluster shape many times (every figure grid does)
// pays construction — N goroutine-free NICs, cost tables, fabric
// arrays — once per shape instead of once per point: Get returns a
// pooled cluster Reset under the requested seed and fault plan, which
// is byte-identical to building fresh (enforced by the reuse
// determinism tests).
//
// Clusters are matched on their construction-time shape: node specs and
// cost constants. Seed and fault configuration are run-time properties
// that Reset re-applies. Idle pooled clusters hold no goroutines (NIC
// control programs are callback daemons, and rank procs die with each
// run), so an abandoned Pool costs memory only; call Drain for a tidy
// shutdown.
//
// Pool is safe for concurrent use: the sweep engine's workers Get and
// Put from independent goroutines.
type Pool struct {
	mu   sync.Mutex
	free map[poolKey][]*Cluster

	hits   uint64 // Gets served by a pooled cluster
	misses uint64 // Gets that built fresh
	size   int    // clusters currently pooled
	drains uint64 // clusters closed by Drain
}

// PoolStats is a point-in-time snapshot of a Pool's activity counters —
// the numbers the scenario server's /metrics endpoint reports so "how
// warm is the pool" is observable, not guessed.
type PoolStats struct {
	Hits   uint64 `json:"hits"`   // Gets served by reusing a pooled cluster
	Misses uint64 `json:"misses"` // Gets that had to build fresh
	Size   int    `json:"size"`   // clusters sitting idle in the pool now
	Drains uint64 `json:"drains"` // clusters closed by Drain over the pool's lifetime
}

// Stats returns a consistent snapshot of the pool counters. Hits+Misses
// equals the number of Get calls completed; Size moves with Get/Put and
// returns to zero after a Drain.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Hits: p.hits, Misses: p.misses, Size: p.size, Drains: p.drains}
}

// poolKey summarizes a cluster shape. The spec hash may collide, so Get
// re-verifies actual equality before reusing a cluster.
type poolKey struct {
	n      int
	specs  uint64
	costs  model.Costs
	topo   topo.Spec
	lps    int // normalized requested LP count (1 = monolithic)
	engine Engine
}

// NewPool returns an empty cluster pool.
func NewPool() *Pool {
	return &Pool{free: make(map[poolKey][]*Cluster)}
}

// hashSpecs is FNV-1a over the spec fields, in node order.
func hashSpecs(specs []model.NodeSpec) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	for _, s := range specs {
		for i := 0; i < len(s.Class); i++ {
			mix(uint64(s.Class[i]))
		}
		mix(uint64(s.CPUMHz))
		mix(uint64(s.LANaiMHz))
		mix(math.Float64bits(s.PCIMBps))
	}
	return h
}

func keyOf(cfg Config) poolKey {
	// Topo is keyed normalized so equivalent spellings of one fabric
	// (Oversub 0 vs 1) land in the same bucket.
	return poolKey{n: len(cfg.Specs), specs: hashSpecs(cfg.Specs),
		costs: cfg.Costs, topo: cfg.Topo.Norm(), lps: normLPs(cfg.LPs),
		engine: cfg.Engine}
}

// matches reports whether c was built with exactly this shape.
func (c *Cluster) matches(cfg Config) bool {
	if cfg.Engine != c.Engine {
		return false
	}
	if len(cfg.Specs) != c.Size() || cfg.Costs != c.Costs || cfg.Topo.Norm() != c.Topo.Spec() {
		return false
	}
	if normLPs(cfg.LPs) != c.reqLPs {
		return false
	}
	if c.Engine == EngineFlow {
		for i, s := range c.flowSpecs {
			if cfg.Specs[i] != s {
				return false
			}
		}
		return true
	}
	for i, n := range c.Nodes {
		if cfg.Specs[i] != n.Spec {
			return false
		}
	}
	return true
}

// Get returns a cluster for cfg: a pooled one Reset under cfg's seed
// and fault plan if a matching shape is available, a freshly built one
// otherwise. Return it with Put when the run is done.
func (p *Pool) Get(cfg Config) *Cluster {
	if cfg.Costs == (model.Costs{}) {
		cfg.Costs = model.DefaultCosts()
	}
	k := keyOf(cfg)
	var c *Cluster
	p.mu.Lock()
	list := p.free[k]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].matches(cfg) {
			c = list[i]
			list[i] = list[len(list)-1]
			list[len(list)-1] = nil
			p.free[k] = list[:len(list)-1]
			break
		}
	}
	if c != nil {
		p.hits++
		p.size--
	} else {
		p.misses++
	}
	p.mu.Unlock()
	if c == nil {
		return New(cfg)
	}
	c.Reset(cfg)
	return c
}

// Put returns a cluster to the pool for later reuse. The cluster must
// not be used by the caller afterwards.
func (p *Pool) Put(c *Cluster) {
	p.mu.Lock()
	p.free[c.key] = append(p.free[c.key], c)
	p.size++
	p.mu.Unlock()
}

// Drain closes every pooled cluster and empties the pool. The pool
// remains usable; subsequent Gets build fresh.
func (p *Pool) Drain() {
	p.mu.Lock()
	free := p.free
	p.free = make(map[poolKey][]*Cluster)
	p.size = 0
	p.mu.Unlock()
	var closed uint64
	for _, list := range free {
		for _, c := range list {
			c.Close()
			closed++
		}
	}
	p.mu.Lock()
	p.drains += closed
	p.mu.Unlock()
}
