package cluster

import (
	"testing"

	"abred/internal/coll"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
	"abred/internal/topo"
)

var fatTree4 = topo.Spec{Kind: topo.FatTree, K: 4}

// TestTopoChangesOutcome: sanity for every topology test below — the
// routed fabric must actually change observable timing on the standard
// workload, or the toggle tests are vacuous.
func TestTopoChangesOutcome(t *testing.T) {
	specs := model.Uniform(8)
	xb := New(Config{Specs: specs, Seed: 5})
	defer xb.Close()
	ft := New(Config{Specs: specs, Seed: 5, Topo: fatTree4})
	defer ft.Close()
	if fingerprint(xb) == fingerprint(ft) {
		t.Fatal("fat-tree run is byte-identical to the crossbar run")
	}
}

// TestResetTopoMismatchPanics: the topology is a construction-time
// shape property like specs and costs; Reset must refuse to cross it.
func TestResetTopoMismatchPanics(t *testing.T) {
	c := New(Config{Specs: model.Uniform(4), Seed: 1, Topo: fatTree4})
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Reset across topologies did not panic")
		}
	}()
	c.Reset(Config{Specs: model.Uniform(4), Seed: 1})
}

// TestPoolTopoKeying: a pool hit across different topologies must be
// impossible, and pooled clusters of either topology must replay
// byte-identically to fresh builds when toggling between them.
func TestPoolTopoKeying(t *testing.T) {
	specs := model.Uniform(8)
	xbCfg := Config{Specs: specs, Seed: 3}
	ftCfg := Config{Specs: specs, Seed: 3, Topo: fatTree4}

	fxb := New(xbCfg)
	defer fxb.Close()
	wantXB := fingerprint(fxb)
	fft := New(ftCfg)
	defer fft.Close()
	wantFT := fingerprint(fft)

	p := NewPool()
	defer p.Drain()
	xb := p.Get(xbCfg)
	gotXB := fingerprint(xb)
	p.Put(xb)
	ft := p.Get(ftCfg)
	if ft == xb {
		t.Fatal("pool handed a crossbar cluster to a fat-tree config")
	}
	gotFT := fingerprint(ft)
	p.Put(ft)
	// Toggle back and forth: each Get must route to the matching shape.
	for cycle := 0; cycle < 2; cycle++ {
		c := p.Get(xbCfg)
		if c != xb {
			t.Fatalf("cycle %d: crossbar config did not reuse the crossbar cluster", cycle)
		}
		if got := fingerprint(c); got != wantXB {
			t.Fatalf("cycle %d: pooled crossbar diverged:\nwant:\n%s\ngot:\n%s", cycle, wantXB, got)
		}
		p.Put(c)
		c = p.Get(ftCfg)
		if c != ft {
			t.Fatalf("cycle %d: fat-tree config did not reuse the fat-tree cluster", cycle)
		}
		if got := fingerprint(c); got != wantFT {
			t.Fatalf("cycle %d: pooled fat-tree diverged:\nwant:\n%s\ngot:\n%s", cycle, wantFT, got)
		}
		p.Put(c)
	}
	if gotXB != wantXB || gotFT != wantFT {
		t.Fatalf("first pooled runs diverged from fresh builds")
	}
}

// TestTopoTreeReduceEndToEnd: AB-reduce with a topology-aware tree on a
// routed fat-tree cluster produces the same values as the flat shape,
// at every rank count that exercises ragged leaf groups.
func TestTopoTreeReduceEndToEnd(t *testing.T) {
	for _, size := range []int{6, 8, 12} {
		c := New(Config{Specs: model.Uniform(size), Seed: 42, Topo: fatTree4})
		tree := coll.NewTopoTree(size, 0, c.Topo.Leaf)
		const count = 16
		out := make([]byte, count*8)
		c.Run(func(n *Node, w *mpi.Comm) {
			n.Engine.SetTopoTree(tree)
			in := mpi.Float64sToBytes(rankInput(n.ID, count))
			n.Proc.SpinInterruptible(sim.Time(n.ID%5) * 200 * us)
			n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
			n.Proc.SpinInterruptible(1500 * us)
			coll.Barrier(w)
		})
		c.Close()

		want := make([]float64, count)
		for r := 0; r < size; r++ {
			for i, v := range rankInput(r, count) {
				want[i] += v
			}
		}
		got := mpi.BytesToFloat64s(out)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size=%d: element %d = %v, want %v", size, i, got[i], want[i])
			}
		}
	}
}
