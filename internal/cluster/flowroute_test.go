package cluster

import (
	"testing"

	"abred/internal/fabric"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
	"abred/internal/topo"
)

// TestFlowRoutesMatchPacketFabric pins the flow engine's link model to
// the packet fabric: for pairs inside one leaf, across leaves within a
// pod, and across pod boundaries, the links a flow occupies
// (Net.RouteLinks minus its inject/eject endpoints) are exactly the
// inter-switch links the packet fabric's OnHop hook records for a frame
// between the same ranks — so pod-crossing traffic contends on the same
// uplinks in both engines, and the LP partition map (topo.Partition)
// splits flows and frames identically.
func TestFlowRoutesMatchPacketFabric(t *testing.T) {
	const n = 64
	spec := topo.Spec{Kind: topo.FatTree, K: 8} // m=4: 3 levels, 4 pods of 16
	pairs := []struct {
		name     string
		src, dst int
	}{
		{"same-leaf", 0, 1},
		{"same-pod", 0, 5},
		{"cross-pod", 0, 63},
		{"cross-pod-mid", 17, 48},
	}

	// Flow side: the route each flow would occupy, with the per-node
	// inject/eject pair stripped and the topology-link offset removed.
	fcl := New(Config{Specs: model.Uniform(n), Seed: 1, Topo: spec, Engine: EngineFlow})
	defer fcl.Close()
	tp := fcl.Topo
	flowRoutes := make([][]int32, len(pairs))
	for i, pr := range pairs {
		raw := fcl.FlowM.Net.RouteLinks(nil, pr.src, pr.dst)
		if len(raw) < 2 || raw[0] != int32(2*pr.src) || raw[len(raw)-1] != int32(2*pr.dst+1) {
			t.Fatalf("%s: RouteLinks = %v, want inject %d first and eject %d last",
				pr.name, raw, 2*pr.src, 2*pr.dst+1)
		}
		links := make([]int32, 0, len(raw)-2)
		for _, l := range raw[1 : len(raw)-1] {
			links = append(links, l-int32(2*n))
		}
		flowRoutes[i] = links
	}

	// Packet side: send one eager message per pair and record the
	// inter-switch links its frames traverse.
	pcl := New(Config{Specs: model.Uniform(n), Seed: 1, Topo: spec})
	defer pcl.Close()
	for i, pr := range pairs {
		pr := pr
		var recorded []int32
		pcl.Fabric.OnHop = func(fr fabric.Frame, link int32, start, end sim.Time) {
			if fr.Src == pr.src && fr.Dst == pr.dst {
				recorded = append(recorded, link)
			}
		}
		pcl.Run(func(nd *Node, w *mpi.Comm) {
			switch nd.ID {
			case pr.src:
				w.Send(pr.dst, 7, []byte{1})
			case pr.dst:
				w.Recv(pr.src, 7, make([]byte, 1))
			}
		})
		pcl.Fabric.OnHop = nil

		want := flowRoutes[i]
		if len(want) == 0 {
			if len(recorded) != 0 {
				t.Errorf("%s: packet frames crossed links %v, flow route has none", pr.name, recorded)
			}
			continue
		}
		// Every frame of the message walks the same route, so the
		// recording is 1+ repetitions of it.
		if len(recorded) == 0 || len(recorded)%len(want) != 0 {
			t.Fatalf("%s: recorded %v, not a repetition of flow route %v", pr.name, recorded, want)
		}
		for j, l := range recorded {
			if l != want[j%len(want)] {
				t.Fatalf("%s: hop %d took link %d, flow route %v", pr.name, j, l, want)
			}
		}
	}

	// Pod-boundary structure: pairs in different LP partitions climb to
	// the top tier (2*(levels-1) links); pairs inside one pod never do.
	pmap, parts := tp.Partition(tp.Pods())
	if parts < 2 {
		t.Fatalf("Partition degenerated to %d parts", parts)
	}
	topLinks := 2 * (tp.Levels() - 1)
	for i, pr := range pairs {
		cross := pmap[pr.src] != pmap[pr.dst]
		if cross && len(flowRoutes[i]) != topLinks {
			t.Errorf("%s crosses pods but occupies %d links, want %d", pr.name, len(flowRoutes[i]), topLinks)
		}
		if !cross && len(flowRoutes[i]) >= topLinks {
			t.Errorf("%s stays in a pod but occupies %d links", pr.name, len(flowRoutes[i]))
		}
	}
}
