package cluster

import (
	"testing"
	"time"

	"abred/internal/coll"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
)

const us = time.Microsecond

// expectSum returns the expected sum-reduction result for rank inputs
// value(rank, i) = rank*1000 + i.
func expectSum(size, count int) []float64 {
	out := make([]float64, count)
	for r := 0; r < size; r++ {
		for i := 0; i < count; i++ {
			out[i] += float64(r*1000 + i)
		}
	}
	return out
}

func rankInput(rank, count int) []float64 {
	in := make([]float64, count)
	for i := range in {
		in[i] = float64(rank*1000 + i)
	}
	return in
}

func checkResult(t *testing.T, got []byte, want []float64) {
	t.Helper()
	vals := mpi.BytesToFloat64s(got)
	for i, w := range want {
		if vals[i] != w {
			t.Fatalf("element %d = %v, want %v (full: %v)", i, vals[i], w, vals)
		}
	}
}

func TestDefaultReduceCorrect(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 8, 13, 16, 32} {
		size := size
		c := New(Config{Specs: model.Uniform(size), Seed: 42})
		count := 4
		results := make([][]byte, size)
		c.Run(func(n *Node, w *mpi.Comm) {
			in := mpi.Float64sToBytes(rankInput(n.ID, count))
			out := make([]byte, count*8)
			coll.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
			results[n.ID] = out
		})
		checkResult(t, results[0], expectSum(size, count))
	}
}

func TestDefaultReduceAllRoots(t *testing.T) {
	size := 7
	for root := 0; root < size; root++ {
		root := root
		c := New(Config{Specs: model.Uniform(size), Seed: 1})
		count := 3
		results := make([][]byte, size)
		c.Run(func(n *Node, w *mpi.Comm) {
			in := mpi.Float64sToBytes(rankInput(n.ID, count))
			out := make([]byte, count*8)
			coll.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, root)
			results[n.ID] = out
		})
		checkResult(t, results[root], expectSum(size, count))
	}
}

func TestABReduceCorrectNoSkew(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 8, 13, 16, 32} {
		size := size
		c := New(Config{Specs: model.Uniform(size), Seed: 7})
		count := 4
		results := make([][]byte, size)
		c.Run(func(n *Node, w *mpi.Comm) {
			in := mpi.Float64sToBytes(rankInput(n.ID, count))
			out := make([]byte, count*8)
			n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
			// Internal nodes may exit before their async work is done;
			// a barrier cannot save us (async work continues under it),
			// so wait for quiescence explicitly.
			coll.Barrier(w)
			results[n.ID] = out
		})
		checkResult(t, results[0], expectSum(size, count))
	}
}

// TestABReduceUnderSkew is the paper's core scenario: processes enter
// the reduction at very different times; internal nodes must return from
// the call early and finish their part asynchronously, and the result at
// the root must still be exact.
func TestABReduceUnderSkew(t *testing.T) {
	for _, size := range []int{4, 8, 16, 32} {
		size := size
		c := New(Config{Specs: model.PaperCluster(size), Seed: 99})
		count := 32
		results := make([][]byte, size)
		c.Run(func(n *Node, w *mpi.Comm) {
			rng := c.K.NewRNG()
			in := mpi.Float64sToBytes(rankInput(n.ID, count))
			out := make([]byte, count*8)
			for iter := 0; iter < 5; iter++ {
				// Deterministic but wildly different skews per rank/iter.
				skew := sim.Time((n.ID*7919+iter*104729)%1000) * us
				_ = rng
				n.Proc.SpinInterruptible(skew)
				n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
				// Catch-up so all async work lands inside the iteration.
				n.Proc.SpinInterruptible(1500 * us)
				coll.Barrier(w)
				if n.ID == 0 {
					checkResult(t, out, expectSum(size, count))
				}
			}
			results[n.ID] = out
		})
		if c.Nodes[1].Engine.Metrics.ABReductions == 0 && size > 2 {
			// rank 1 is a leaf in a 0-rooted tree; check an internal one.
			internal := 2
			if c.Nodes[internal].Engine.Metrics.ABReductions == 0 {
				t.Fatalf("size %d: no AB reductions recorded on internal node", size)
			}
		}
	}
}

// TestABReduceBackToBack reproduces §IV-D's hard case: several
// reductions outstanding at once because one child is consistently late.
// Late messages must match the right reduction instance.
func TestABReduceBackToBack(t *testing.T) {
	size := 8
	const rounds = 6
	c := New(Config{Specs: model.Uniform(size), Seed: 3})
	count := 2
	var roots [rounds][]byte
	c.Run(func(n *Node, w *mpi.Comm) {
		out := make([]byte, count*8)
		for iter := 0; iter < rounds; iter++ {
			if n.ID == 6 {
				// Process six is consistently late (the paper's example).
				n.Proc.SpinInterruptible(400 * us)
			}
			in := mpi.Float64sToBytes([]float64{float64(n.ID + iter), float64(n.ID * iter)})
			n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
			if n.ID == 0 {
				roots[iter] = append([]byte(nil), out...)
			}
			// No barrier: let instances overlap.
		}
		n.Proc.SpinInterruptible(5000 * us)
		coll.Barrier(w)
	})
	for iter := 0; iter < rounds; iter++ {
		var want0, want1 float64
		for r := 0; r < size; r++ {
			want0 += float64(r + iter)
			want1 += float64(r * iter)
		}
		checkResult(t, roots[iter], []float64{want0, want1})
	}
}

// TestABInternalNodeReturnsEarly checks the headline behaviour: with a
// late child, the non-AB parent burns the whole wait inside MPI_Reduce,
// while the AB parent returns promptly.
func TestABInternalNodeReturnsEarly(t *testing.T) {
	size := 4 // tree at root 0: children 1,2; node 2 has child 3
	const lateBy = 800 * us

	run := func(ab bool) (inCall sim.Time) {
		c := New(Config{Specs: model.Uniform(size), Seed: 5})
		c.Run(func(n *Node, w *mpi.Comm) {
			count := 4
			in := mpi.Float64sToBytes(rankInput(n.ID, count))
			out := make([]byte, count*8)
			if n.ID == 3 {
				n.Proc.SpinInterruptible(lateBy) // late leaf
			}
			t0 := n.Proc.Now()
			if ab {
				n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
			} else {
				coll.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
			}
			if n.ID == 2 {
				inCall = n.Proc.Now() - t0
			}
			n.Proc.SpinInterruptible(2000 * us)
		})
		return inCall
	}

	nab := run(false)
	ab := run(true)
	if nab < lateBy {
		t.Errorf("non-AB internal node spent %v in MPI_Reduce; expected at least the %v skew", nab, lateBy)
	}
	if ab > lateBy/4 {
		t.Errorf("AB internal node spent %v in MPI_Reduce; expected early return well under %v", ab, lateBy)
	}
}

// TestSignalsDisabledWhenIdle checks the paper's signal discipline: after
// all outstanding reductions complete, signals are off.
func TestSignalsDisabledWhenIdle(t *testing.T) {
	size := 4
	c := New(Config{Specs: model.Uniform(size), Seed: 11})
	c.Run(func(n *Node, w *mpi.Comm) {
		count := 2
		in := mpi.Float64sToBytes(rankInput(n.ID, count))
		out := make([]byte, count*8)
		if n.ID == 3 {
			n.Proc.SpinInterruptible(300 * us)
		}
		n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
		n.Proc.SpinInterruptible(2000 * us)
		coll.Barrier(w)
		if n.NIC.SignalsEnabled() {
			t.Errorf("rank %d: signals still enabled after quiescence", n.ID)
		}
		if n.Engine.OutstandingDescriptors() != 0 {
			t.Errorf("rank %d: %d descriptors left", n.ID, n.Engine.OutstandingDescriptors())
		}
		if n.Engine.UBQLen() != 0 {
			t.Errorf("rank %d: %d AB-unexpected messages left", n.ID, n.Engine.UBQLen())
		}
	})
}

// TestRendezvousReduce exercises the §V-B size fallback and the
// rendezvous protocol underneath it.
func TestRendezvousReduce(t *testing.T) {
	size := 8
	count := 4096 // 32 KiB > 16 KiB eager threshold
	c := New(Config{Specs: model.Uniform(size), Seed: 2})
	results := make([][]byte, size)
	c.Run(func(n *Node, w *mpi.Comm) {
		in := mpi.Float64sToBytes(rankInput(n.ID, count))
		out := make([]byte, count*8)
		n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
		results[n.ID] = out
	})
	checkResult(t, results[0], expectSum(size, count))
	if got := c.Nodes[2].Engine.Metrics.SizeFallbacks; got != 1 {
		t.Errorf("rank 2 size fallbacks = %d, want 1", got)
	}
}

func TestHeterogeneousPaperCluster(t *testing.T) {
	specs := model.PaperCluster32()
	if len(specs) != 32 {
		t.Fatalf("PaperCluster32 has %d nodes", len(specs))
	}
	n700, n1g, n64c := 0, 0, 0
	for _, s := range specs {
		switch s.Class {
		case "piii-700/pci64b":
			n700++
		case "piii-1g/pci64b":
			n1g++
		case "piii-1g/pci64c":
			n64c++
		}
	}
	if n700 != 16 || n64c != 4 || n1g != 12 {
		t.Fatalf("wrong mix: 700=%d 1g/64b=%d 1g/64c=%d", n700, n1g, n64c)
	}
	// Interlacing: even slots are 700 MHz.
	for i := 0; i < 32; i += 2 {
		if specs[i].CPUMHz != 700 {
			t.Fatalf("slot %d not a 700 MHz node", i)
		}
	}
	c := New(Config{Specs: specs, Seed: 13})
	results := make([][]byte, 32)
	c.Run(func(n *Node, w *mpi.Comm) {
		in := mpi.Float64sToBytes(rankInput(n.ID, 4))
		out := make([]byte, 32)
		n.Engine.Reduce(w, in, out, 4, mpi.Float64, mpi.OpSum, 0)
		coll.Barrier(w)
		results[n.ID] = out
	})
	checkResult(t, results[0], expectSum(32, 4))
}
