package cluster

import (
	"fmt"
	"testing"

	"abred/internal/coll"
	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
	"abred/internal/topo"
)

// lpFingerprint is fingerprint for partitioned clusters: the workload's
// per-rank skew is a pure function of (rank, iter) instead of a stream
// drawn from c.K — rank closures execute on per-LP goroutines, so they
// must not share an RNG. Everything observable goes into the string:
// end time, summed event count, result bytes, per-node statistics and
// fabric fault counters.
func lpFingerprint(c *Cluster) string {
	size := len(c.Nodes)
	count := 16
	results := make([][]byte, size)
	end := c.Run(func(n *Node, w *mpi.Comm) {
		in := mpi.Float64sToBytes(rankInput(n.ID, count))
		out := make([]byte, count*8)
		for iter := 0; iter < 3; iter++ {
			skew := sim.Time((n.ID*2654435761+iter*977)%1000) * us
			n.Proc.SpinInterruptible(skew)
			n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
			n.Proc.SpinInterruptible(1500 * us)
			coll.Barrier(w)
		}
		results[n.ID] = out
	})
	s := fmt.Sprintf("end=%d events=%d lps=%d\n", end, c.Events(), c.LPs)
	for i, n := range c.Nodes {
		s += fmt.Sprintf("rank%d out=%x nic=%+v eng=%+v mpi=%+v mem=%d\n",
			i, results[i], n.NIC.Stats(), n.Engine.Metrics, n.MPI.Stats,
			n.MPI.Mem.PeakBytes())
	}
	drop, dup := c.Fabric.FaultStats()
	s += fmt.Sprintf("fault drop=%d dup=%d\n", drop, dup)
	return s
}

// TestLPDeterminism is the parallel-kernel analogue of
// TestResetDeterminism: for a fixed (seed, faultseed, lps) a partitioned
// run must produce identical results on every execution — across fresh
// builds (each with its own goroutine interleaving), Reset cycles on a
// dirtied cluster, and correct reductions throughout.
func TestLPDeterminism(t *testing.T) {
	lossy := fault.Config{Seed: 7, Rule: fault.Rule{Drop: 0.02, Dup: 0.01}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"fattree-clean", Config{Specs: model.PaperCluster(64), Seed: 99,
			Topo: topo.Spec{Kind: topo.FatTree, K: 8}, LPs: 4}},
		{"fattree-lossy", Config{Specs: model.PaperCluster(64), Seed: 99,
			Topo: topo.Spec{Kind: topo.FatTree, K: 8}, LPs: 4, Fault: lossy}},
		{"leafspine-clean", Config{Specs: model.PaperCluster(32), Seed: 99,
			Topo: topo.Spec{Kind: topo.LeafSpine, K: 4}, LPs: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := New(tc.cfg)
			if fresh.LPs < 2 {
				t.Fatalf("cluster built with %d LPs; topology did not partition", fresh.LPs)
			}
			want := lpFingerprint(fresh)
			fresh.Close()

			// Fresh builds: every run is a new set of LP goroutines, so
			// repeated agreement is agreement across interleavings.
			for i := 0; i < 3; i++ {
				c := New(tc.cfg)
				if got := lpFingerprint(c); got != want {
					t.Fatalf("fresh run %d diverged:\nwant:\n%s\ngot:\n%s", i, want, got)
				}
				c.Close()
			}

			// Reset cycles on a cluster dirtied under another seed.
			reused := New(Config{Specs: tc.cfg.Specs, Seed: 1234,
				Topo: tc.cfg.Topo, LPs: tc.cfg.LPs})
			defer reused.Close()
			lpFingerprint(reused)
			for cycle := 0; cycle < 2; cycle++ {
				reused.Reset(tc.cfg)
				if got := lpFingerprint(reused); got != want {
					t.Fatalf("reset cycle %d diverged:\nwant:\n%s\ngot:\n%s", cycle, want, got)
				}
			}
		})
	}
}

// TestLPReduceCorrect: a partitioned cluster still computes the right
// sums — the windowed kernel reorders nothing observable.
func TestLPReduceCorrect(t *testing.T) {
	const size, count = 64, 8
	c := New(Config{Specs: model.PaperCluster(size), Seed: 3,
		Topo: topo.Spec{Kind: topo.FatTree, K: 8}, LPs: 4})
	defer c.Close()
	want := expectSum(size, count)
	results := make([][]byte, size)
	c.Run(func(n *Node, w *mpi.Comm) {
		in := mpi.Float64sToBytes(rankInput(n.ID, count))
		out := make([]byte, count*8)
		n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, 0)
		coll.Barrier(w)
		results[n.ID] = out
	})
	// Only the root holds the result (internal nodes return early).
	checkResult(t, results[0], want)
}

// TestLPSingleIsMonolithic: LPs 0, 1, and any partition of a crossbar
// must all degenerate to the plain kernel — same object graph behavior,
// byte-identical fingerprints.
func TestLPSingleIsMonolithic(t *testing.T) {
	base := Config{Specs: model.PaperCluster(16), Seed: 42}
	mono := New(base)
	defer mono.Close()
	want := lpFingerprint(mono)

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"lps1", Config{Specs: base.Specs, Seed: 42, LPs: 1}},
		{"crossbar-lps4", Config{Specs: base.Specs, Seed: 42, LPs: 4}},
	} {
		c := New(tc.cfg)
		if c.LPs != 1 {
			t.Errorf("%s: built %d LPs, want degenerate 1", tc.name, c.LPs)
		}
		if got := lpFingerprint(c); got != want {
			t.Errorf("%s diverged from the monolithic build:\nwant:\n%s\ngot:\n%s",
				tc.name, want, got)
		}
		c.Close()
	}
}

// TestPoolLPKeying: the requested LP count is part of a cluster's shape;
// the pool must never satisfy a partitioned request with a monolithic
// cluster or vice versa, while same-LPs requests reuse and replay
// byte-identically.
func TestPoolLPKeying(t *testing.T) {
	p := NewPool()
	defer p.Drain()
	ft := topo.Spec{Kind: topo.FatTree, K: 8}
	cfg4 := Config{Specs: model.PaperCluster(64), Seed: 3, Topo: ft, LPs: 4}
	cfg1 := Config{Specs: model.PaperCluster(64), Seed: 3, Topo: ft}

	fresh := New(cfg4)
	want := lpFingerprint(fresh)
	fresh.Close()

	a1 := p.Get(cfg4)
	got1 := lpFingerprint(a1)
	p.Put(a1)
	m := p.Get(cfg1)
	if m == a1 {
		t.Fatal("pool satisfied a monolithic request with a partitioned cluster")
	}
	p.Put(m)
	a2 := p.Get(cfg4)
	if a2 != a1 {
		t.Fatal("pool built a new cluster although a matching partitioned one was free")
	}
	got2 := lpFingerprint(a2)
	p.Put(a2)

	if got1 != want || got2 != want {
		t.Fatalf("pooled partitioned runs diverged:\nfresh:\n%s\nfirst:\n%s\nreused:\n%s",
			want, got1, got2)
	}
}
