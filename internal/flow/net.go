// Package flow implements the flow-level hybrid-fidelity engine: the
// cheap abstraction layer that simulates 65536–1M nodes behind the same
// cluster API as the packet-level kernel.
//
// Instead of per-packet events through the fabric, each logical
// transfer (a message, a collective tree edge) is one Flow with a
// source, destination, size in wire bytes and a route over topo links.
// Active flows share link bandwidth by progressive max-min fairness:
// whenever a flow starts or finishes, the fair shares of every flow in
// the affected connected component are recomputed by water-filling and
// their completion events rescheduled through the existing sim.Kernel
// (4-ary heap, pooled Runner events, generation-checked cancelation).
//
// What stays exact relative to the packet engine: skew draws, GM
// send/receive token accounting, reduction-tree structure, per-node
// host/NIC scalar costs, and the deterministic D-mod-k routes (a flow
// occupies exactly the links topo.Route reports for the packet path).
// What degrades: per-packet FIFO queueing becomes fluid bandwidth
// sharing, and per-packet loss becomes a per-flow expected
// retransmission latency (see Machine). The cross-validation tests in
// internal/bench pin the resulting error band on the 32–16384 envelope.
package flow

import (
	"math"

	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// Handler receives flow-engine callbacks: flow deliveries and timer
// wakeups. Components dispatch on their own tag encodings, so one
// Handler implementation serves many outstanding operations without a
// closure per event.
type Handler interface {
	FlowEvent(tag uint64, at sim.Time)
}

// SrcHandler is implemented by handlers that split a flow delivery
// into a source half and a destination half when the flow crosses
// logical processes: FlowSrcEvent runs in the source shard at the
// bottleneck-crossing time (send-token return, next launch) while the
// ordinary FlowEvent is shipped to the destination shard and runs
// there at the delivery time.
type SrcHandler interface {
	Handler
	FlowSrcEvent(tag uint64, at sim.Time)
}

// slotBits packs (flow id, route slot) into one int32 list reference:
// ref = id<<slotBits | slot. Routes are at most 2 + topo.MaxHops links,
// so 6 bits of slot leave 25 bits of flow id — far beyond any
// concurrent-flow population the pool reaches.
const slotBits = 6

// Flow is one in-flight transfer. Flows are pooled; all fields are
// overwritten on reuse. A Flow is also the Runner for its own
// completion event.
//
// Under LP partitioning a flow whose route crosses the spine exists
// twice: the source shard holds the real flow (inject + up-links,
// remaining-byte accounting, completion event) and the destination
// shard holds a stub occupying the down-links and ejection. The two
// halves exchange rate bounds through the window protocol: xcap is the
// tightest rate the remote half has granted, xsent the last value
// shipped to it, and (xlp, xid, xgen) address the remote half.
type Flow struct {
	nt        *Net
	id        int32
	links     []int32 // route: inject, topo links (up then down), eject
	next      []int32 // per-slot intrusive list refs (packed id<<6|slot)
	prev      []int32 // packed ref, or -2-link when first in the list
	rate      float64 // current fair share, bytes/ns; <0 before first fill
	remaining float64 // wire bytes not yet through the bottleneck
	updated   sim.Time
	start     sim.Time
	lat       sim.Time // constant pipeline latency added at completion
	uncont    sim.Time // uncontended transfer time, fixed at Start
	bytes     int64
	h         Handler
	tag       uint64
	ev        sim.EventRef
	mark      uint32  // closure-membership epoch
	gen       uint32  // bumped on recycle; guards stale cross-LP messages
	frozen    bool    // water-filling scratch
	stub      bool    // remote half of a cross-LP flow (no completion event)
	xlp       int32   // peer LP of a cross-LP flow, -1 when LP-local
	xid       int32   // stub only: flow id in the source shard
	xgen      uint32  // stub only: flow generation in the source shard
	xcap      float64 // rate bound granted by the peer shard (+Inf local)
	xsent     float64 // last rate (source) / offer (stub) shipped to peer
}

// RunEvent fires the flow's completion: the last byte has crossed the
// bottleneck. The flow leaves its links, the affected component is
// re-shared, and the handler is told the delivery time now+lat (the
// pipeline tail draining the downstream hops).
func (f *Flow) RunEvent() { f.nt.finish(f) }

// Net is the bandwidth substrate: every host's injection and ejection
// link plus the topology's inter-switch links, each with the uniform
// wire capacity, shared by max-min fairness among the flows routed over
// them.
//
// Link ids: host i injects on link 2i and ejects on link 2i+1; topo
// link l (as numbered by topo.Route) is Net link 2n+l. A Net belongs to
// one kernel and is single-threaded in scheduler context, like every
// other simulation layer.
type Net struct {
	K *sim.Kernel
	T *topo.Topology // nil or single-switch = crossbar

	n        int
	base     int     // first topo link id (= 2n)
	capBns   float64 // link capacity, bytes/ns
	hopLat   sim.Time
	maxRoute int

	// Link state. Under LP partitioning these four slices are the
	// SAME backing arrays in every shard, partitioned by ownership:
	// element li is only ever read or written by the shard lpOf[li]
	// belongs to, so sharing them is race-free and keeps the 1M-node
	// footprint flat in the LP count.
	head  []int32 // per link: packed ref of the first flow slot, -1 none
	nf    []int32 // per link: active flows routed over it
	lmark []uint32
	lslot []int32 // link -> index into the current closure's clinks

	flows []*Flow // shard-local: list refs on owned links index this pool
	freef []int32
	epoch uint32
	path  topo.Path

	// water-filling scratch, reused across recomputes
	cflows []*Flow
	clinks []int32
	resid  []float64
	acnt   []int32
	capped []*Flow // unfrozen flows with a finite peer rate bound

	// Tightest-link min-heap over (residual/count, closure slot). An
	// entry is valid only while its pushed version matches lver, so
	// updates push fresh entries instead of re-heapifying in place.
	hs   []float64
	hl   []int32
	hv   []int32
	lver []int32

	// LP partitioning (zero-valued / nil in the monolithic engine).
	lp       int32
	lps      int
	pmap     []int32  // host -> owning LP
	lpOf     []int32  // link -> owning LP
	peers    []*Net   // all shards, indexed by LP
	la       sim.Time // conservative lookahead, 2·(WireProp+SwitchHop)
	stubs    map[xkey]int32
	outbox   []xmsg
	oseq     uint64
	nstubs   int
	xfree    []*xbatch
	dlv      []xdlv // deliveries deferred to the end of the current batch
	scanFill bool   // test hook: route uncapped fills to the linear scan

	active    int
	started   uint64
	maxActive int
	// Contention analogues of the packet fabric's TopoStats: flows
	// delivered later than their uncontended completion time, and the
	// total virtual time so lost.
	delayed    uint64
	delayTotal sim.Time

	sampleFCT bool
	fct       []sim.Time
}

// NewNet builds the substrate for n hosts on topology t (nil =
// crossbar) under the given cost constants.
func NewNet(k *sim.Kernel, t *topo.Topology, n int, c model.Costs) *Net {
	nt := &Net{K: k, n: n, base: 2 * n}
	nlinks := 2 * n
	nt.maxRoute = 2
	if t != nil && t.Levels() > 1 {
		nt.T = t
		nlinks += t.Links()
		nt.maxRoute = 2 + 2*(t.Levels()-1)
	}
	nt.capBns = c.WireMBps * 1e6 / 1e9
	nt.hopLat = c.WireProp + c.SwitchHop
	nt.head = make([]int32, nlinks)
	for i := range nt.head {
		nt.head[i] = -1
	}
	nt.nf = make([]int32, nlinks)
	nt.lmark = make([]uint32, nlinks)
	nt.lslot = make([]int32, nlinks)
	return nt
}

// Reset returns the Net to its just-built state for a cluster reuse
// run. All flows must have completed (the simulation ran to
// quiescence); pooled Flow structs and link arrays keep their capacity.
func (nt *Net) Reset() {
	if nt.active != 0 {
		panic("flow: Reset with active flows")
	}
	if nt.nstubs != 0 {
		panic("flow: Reset with live cross-LP stubs")
	}
	nt.outbox = nt.outbox[:0]
	nt.dlv = nt.dlv[:0]
	nt.oseq = 0
	nt.started = 0
	nt.maxActive = 0
	nt.delayed = 0
	nt.delayTotal = 0
	nt.fct = nt.fct[:0]
}

// Nodes returns the host count.
func (nt *Net) Nodes() int { return nt.n }

// SampleFCT enables per-flow completion-time recording (delivery minus
// start) for distribution summaries.
func (nt *Net) SampleFCT(on bool) { nt.sampleFCT = on }

// FCTs returns the recorded flow completion times in completion order.
func (nt *Net) FCTs() []sim.Time { return nt.fct }

// Stats reports flows started, the peak concurrent flow population, and
// the contention totals (flows delayed past their uncontended
// completion, and the virtual time lost).
func (nt *Net) Stats() (started uint64, maxActive int, delayed uint64, delayTotal sim.Time) {
	return nt.started, nt.maxActive, nt.delayed, nt.delayTotal
}

// RouteLinks appends the Net link ids a src->dst flow occupies, in
// traversal order (inject, up-links, down-links, eject) — the exposed
// form of the route construction Start uses, for tests that compare
// against the packet path.
func (nt *Net) RouteLinks(dst []int32, src, dstNode int) []int32 {
	dst = append(dst, int32(2*src))
	if nt.T != nil {
		nt.T.Route(src, dstNode, &nt.path)
		for i := 0; i < nt.path.N; i++ {
			dst = append(dst, int32(nt.base)+nt.path.Links[i])
		}
	}
	return append(dst, int32(2*dstNode+1))
}

// Start launches a flow of wireBytes from src to dst at the current
// virtual time. extraLat is constant latency added to the pipeline
// (the Machine's expected-retransmission loss cost); the topology
// crossing latency is computed here. h.FlowEvent(tag, deliveredAt)
// fires when the flow completes.
func (nt *Net) Start(src, dst, wireBytes int, extraLat sim.Time, h Handler, tag uint64) {
	xlp := int32(-1)
	if nt.pmap != nil {
		if d := nt.pmap[dst]; d != nt.lp {
			xlp = d
		}
	}
	f := nt.getFlow()
	f.links = f.links[:0]
	f.links = append(f.links, int32(2*src))
	switches := 1
	if nt.T != nil {
		nt.T.Route(src, dst, &nt.path)
		n := nt.path.N
		if xlp >= 0 {
			// Cross-spine flow: this shard owns only the climb half of
			// the route (all up-links hang off the source's subtrees);
			// the destination shard will grow a stub over the descent
			// half and the ejection link when the xopen lands.
			n = nt.path.N / 2
		}
		for i := 0; i < n; i++ {
			f.links = append(f.links, int32(nt.base)+nt.path.Links[i])
		}
		switches = nt.path.Switches
	}
	if xlp < 0 {
		f.links = append(f.links, int32(2*dst+1))
	}

	now := nt.K.Now()
	f.rate = -1
	f.remaining = float64(wireBytes)
	f.bytes = int64(wireBytes)
	f.updated = now
	f.start = now
	f.lat = sim.Time(switches)*nt.hopLat + extraLat
	f.uncont = sim.Time(math.Ceil(float64(wireBytes) / nt.capBns))
	f.h = h
	f.tag = tag
	if xlp >= 0 {
		f.xlp = xlp
		// Announce before any rate emission so the stub exists when
		// the first xrate applies (lower seq at the same barrier time).
		nt.emit(xmsg{t: now + nt.la, kind: kXOpen, dst: xlp,
			id: f.id, gen: f.gen, a: int32(src), b: int32(dst)})
	}

	alone := true
	for s, li := range f.links {
		nt.link(f, s, li)
		if nt.nf[li] > 1 {
			alone = false
		}
	}
	nt.started++
	nt.active++
	if nt.active > nt.maxActive {
		nt.maxActive = nt.active
	}

	if alone {
		nt.setRate(f, nt.capBns, now)
		return
	}
	nt.bumpEpoch()
	nt.cflows = nt.cflows[:0]
	f.mark = nt.epoch
	nt.cflows = append(nt.cflows, f)
	nt.reshare(now)
}

// finish completes flow f: unlink, re-share the component it leaves
// behind, deliver, recycle.
func (nt *Net) finish(f *Flow) {
	now := nt.K.Now()
	nt.bumpEpoch()
	nt.cflows = nt.cflows[:0]
	needs := false
	for s, li := range f.links {
		nt.unlink(f, s, li)
		if nt.nf[li] > 0 {
			needs = true
			for ref := nt.head[li]; ref >= 0; {
				g := nt.flows[ref>>slotBits]
				if g.mark != nt.epoch {
					g.mark = nt.epoch
					nt.cflows = append(nt.cflows, g)
				}
				ref = g.next[ref&(1<<slotBits-1)]
			}
		}
	}
	nt.active--
	if needs {
		nt.reshare(now)
	}

	end := now + f.lat
	want := now - f.start
	if want > f.uncont {
		nt.delayed++
		nt.delayTotal += want - f.uncont
	}
	if nt.sampleFCT {
		nt.fct = append(nt.fct, end-f.start)
	}
	h, tag := f.h, f.tag
	if f.xlp >= 0 {
		// Cross-LP flow: the source side (token return, next launch)
		// runs here at the bottleneck-crossing time, exactly when the
		// monolithic engine would have run it; the destination side is
		// shipped to the peer shard and lands at the delivery time —
		// end > now + la, so the message always clears the lookahead.
		if sh, ok := h.(SrcHandler); ok {
			sh.FlowSrcEvent(tag, now)
		}
		nt.emit(xmsg{t: end, kind: kXDone, dst: f.xlp,
			id: f.id, gen: f.gen, h: h, tag: tag})
		nt.putFlow(f)
		return
	}
	nt.putFlow(f)
	h.FlowEvent(tag, end)
}

// bumpEpoch advances the mark epoch for the next closure expansion.
// On uint32 wraparound every surviving mark from 2³² reshares ago
// could falsely match a fresh epoch, so owned link marks and all
// pooled flow marks are cleared before restarting at 1.
func (nt *Net) bumpEpoch() {
	nt.epoch++
	if nt.epoch == 0 {
		for i := range nt.lmark {
			if nt.lpOf == nil || nt.lpOf[i] == nt.lp {
				nt.lmark[i] = 0
			}
		}
		for _, f := range nt.flows {
			f.mark = 0
		}
		nt.epoch = 1
	}
}

// reshare runs exact max-min water-filling over the connected component
// seeded in nt.cflows (marked with the current epoch): expand the
// closure over shared links, then repeatedly freeze the flows of the
// tightest link at its equal share. Components are small in practice —
// a handful of flows meeting at a fan-in link — but collective fan-in
// at the largest envelopes produces components with thousands of
// links, so the tightest-link search runs on a min-heap (near-linear)
// rather than a per-round scan (quadratic).
func (nt *Net) reshare(now sim.Time) {
	nt.clinks = nt.clinks[:0]
	w := 0
	for i := 0; i < len(nt.cflows); i++ {
		f := nt.cflows[i]
		if f.mark != nt.epoch {
			// Seeded earlier in a cross-LP batch, then torn down by a
			// later xdone in the same batch (mark zeroed on teardown).
			continue
		}
		nt.cflows[w] = f
		w++
		f.frozen = false
		for _, li := range f.links {
			if nt.lmark[li] == nt.epoch {
				continue
			}
			nt.lmark[li] = nt.epoch
			nt.lslot[li] = int32(len(nt.clinks))
			nt.clinks = append(nt.clinks, li)
			for ref := nt.head[li]; ref >= 0; {
				g := nt.flows[ref>>slotBits]
				if g.mark != nt.epoch {
					g.mark = nt.epoch
					nt.cflows = append(nt.cflows, g)
				}
				ref = g.next[ref&(1<<slotBits-1)]
			}
		}
	}
	nt.cflows = nt.cflows[:w]

	nl := len(nt.clinks)
	if cap(nt.resid) < nl {
		nt.resid = make([]float64, nl)
		nt.acnt = make([]int32, nl)
	}
	nt.resid = nt.resid[:nl]
	nt.acnt = nt.acnt[:nl]
	for ci, li := range nt.clinks {
		nt.resid[ci] = nt.capBns
		nt.acnt[ci] = nt.nf[li]
	}

	nt.capped = nt.capped[:0]
	if nt.lps > 1 {
		for _, f := range nt.cflows {
			if !math.IsInf(f.xcap, 1) {
				nt.capped = append(nt.capped, f)
			}
		}
	}
	if nt.scanFill && len(nt.capped) == 0 {
		nt.fillScan(now)
	} else {
		nt.fillHeap(now)
	}
	if nt.lps > 1 {
		nt.shipOffers(now)
	}
}

// fillHeap freezes the closure's flows by repeatedly taking the
// tightest constraint: the smallest per-flow share among the links
// still carrying unfrozen flows, or the smallest peer rate bound among
// the still-unfrozen capped flows, whichever is lower. Link shares
// live in a lazy min-heap — every residual/count update pushes a fresh
// (share, slot) entry and bumps the slot's version, so stale entries
// are skimmed at peek time instead of re-heapified. Selection order is
// identical to the linear scan (strictly-smaller wins, lowest closure
// slot on ties), which keeps the single-LP engine byte-identical.
func (nt *Net) fillHeap(now sim.Time) {
	nl := len(nt.clinks)
	if cap(nt.lver) < nl {
		nt.lver = make([]int32, nl)
	}
	nt.lver = nt.lver[:nl]
	nt.hs = nt.hs[:0]
	nt.hl = nt.hl[:0]
	nt.hv = nt.hv[:0]
	for ci := range nt.clinks {
		nt.lver[ci] = 0
		if nt.acnt[ci] > 0 {
			nt.hpush(nt.resid[ci]/float64(nt.acnt[ci]), int32(ci))
		}
	}

	unfrozen := len(nt.cflows)
	for unfrozen > 0 {
		best, bs := nt.hpeek()
		var cf *Flow
		w := 0
		for _, f := range nt.capped {
			if f.frozen {
				continue
			}
			nt.capped[w] = f
			w++
			if cf == nil || f.xcap < cf.xcap {
				cf = f
			}
		}
		nt.capped = nt.capped[:w]
		if cf != nil && (best < 0 || cf.xcap < bs) {
			// The peer shard's grant binds before any local link does:
			// freeze this flow at the granted rate and release the
			// rest of its local shares back into the water level.
			cf.frozen = true
			unfrozen--
			nt.setRate(cf, cf.xcap, now)
			nt.consume(cf, cf.xcap)
			continue
		}
		if best < 0 {
			// Defensive: every remaining flow's links are exhausted
			// (cannot happen — each unfrozen flow keeps its links'
			// counts positive). Freeze at full rate and stop.
			for _, f := range nt.cflows {
				if !f.frozen {
					f.frozen = true
					nt.setRate(f, nt.capBns, now)
				}
			}
			break
		}
		li := nt.clinks[best]
		for ref := nt.head[li]; ref >= 0; {
			f := nt.flows[ref>>slotBits]
			ref = f.next[ref&(1<<slotBits-1)]
			if f.frozen {
				continue
			}
			f.frozen = true
			unfrozen--
			nt.setRate(f, bs, now)
			nt.consume(f, bs)
		}
	}
}

// consume charges rate r to every link on f's route and refreshes
// their heap entries.
func (nt *Net) consume(f *Flow, r float64) {
	for _, lj := range f.links {
		cj := nt.lslot[lj]
		nt.resid[cj] -= r
		nt.acnt[cj]--
		nt.lver[cj]++
		if nt.acnt[cj] > 0 {
			nt.hpush(nt.resid[cj]/float64(nt.acnt[cj]), cj)
		}
	}
}

// fillScan is the pre-heap linear-scan water-fill, kept as the
// reference implementation for the randomized property tests and the
// BenchmarkReshare baseline (enable with nt.scanFill). It does not
// understand peer rate bounds, so capped closures always take the heap
// path.
func (nt *Net) fillScan(now sim.Time) {
	unfrozen := len(nt.cflows)
	for unfrozen > 0 {
		best := -1
		var bs float64
		for ci := range nt.clinks {
			if nt.acnt[ci] <= 0 {
				continue
			}
			s := nt.resid[ci] / float64(nt.acnt[ci])
			if best < 0 || s < bs {
				best, bs = ci, s
			}
		}
		if best < 0 {
			for _, f := range nt.cflows {
				if !f.frozen {
					f.frozen = true
					nt.setRate(f, nt.capBns, now)
				}
			}
			break
		}
		li := nt.clinks[best]
		for ref := nt.head[li]; ref >= 0; {
			f := nt.flows[ref>>slotBits]
			ref = f.next[ref&(1<<slotBits-1)]
			if f.frozen {
				continue
			}
			f.frozen = true
			unfrozen--
			nt.setRate(f, bs, now)
			for _, lj := range f.links {
				cj := nt.lslot[lj]
				nt.resid[cj] -= bs
				nt.acnt[cj]--
			}
		}
	}
}

// shipOffers tells each stub's source shard how fast the destination
// half of its flow could go: the stub's frozen share plus the smallest
// residual capacity left on its links. Offers are emitted only when
// they move, so a settled component goes quiet at the barrier.
func (nt *Net) shipOffers(now sim.Time) {
	for _, f := range nt.cflows {
		if !f.stub {
			continue
		}
		offer := math.Inf(1)
		for _, li := range f.links {
			if r := nt.resid[nt.lslot[li]]; r < offer {
				offer = r
			}
		}
		offer += f.rate
		if offer != f.xsent {
			f.xsent = offer
			nt.emit(xmsg{t: now + nt.la, kind: kXCap, dst: f.xlp,
				id: f.xid, gen: f.xgen, rate: offer})
		}
	}
}

// hless orders heap entries by (share, closure slot): the scan's
// "first strictly smaller" rule picks the lowest slot among equal
// minima, and the heap must agree for byte-identical freeze order.
func (nt *Net) hless(i, j int) bool {
	if nt.hs[i] != nt.hs[j] {
		return nt.hs[i] < nt.hs[j]
	}
	return nt.hl[i] < nt.hl[j]
}

func (nt *Net) hswap(i, j int) {
	nt.hs[i], nt.hs[j] = nt.hs[j], nt.hs[i]
	nt.hl[i], nt.hl[j] = nt.hl[j], nt.hl[i]
	nt.hv[i], nt.hv[j] = nt.hv[j], nt.hv[i]
}

// hpush records the current share of closure slot ci.
func (nt *Net) hpush(s float64, ci int32) {
	nt.hs = append(nt.hs, s)
	nt.hl = append(nt.hl, ci)
	nt.hv = append(nt.hv, nt.lver[ci])
	for i := len(nt.hs) - 1; i > 0; {
		p := (i - 1) / 2
		if !nt.hless(i, p) {
			return
		}
		nt.hswap(i, p)
		i = p
	}
}

// hpeek skims stale entries off the top and returns the tightest live
// (slot, share), or (-1, 0) when no link carries unfrozen flows. The
// live top is left in place: a cap-bound freeze leaves it valid, and a
// link-round freeze invalidates it through consume's version bumps.
func (nt *Net) hpeek() (int, float64) {
	for len(nt.hs) > 0 {
		ci := nt.hl[0]
		if nt.hv[0] == nt.lver[ci] {
			return int(ci), nt.hs[0]
		}
		nt.hpop()
	}
	return -1, 0
}

func (nt *Net) hpop() {
	n := len(nt.hs) - 1
	nt.hswap(0, n)
	nt.hs = nt.hs[:n]
	nt.hl = nt.hl[:n]
	nt.hv = nt.hv[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && nt.hless(c+1, c) {
			c++
		}
		if !nt.hless(c, i) {
			return
		}
		nt.hswap(i, c)
		i = c
	}
}

// setRate advances f's remaining bytes to now at the old rate, applies
// the new rate, and reschedules the completion event if the rate moved.
// Stubs carry no bytes and no completion event — their rate is pure
// occupancy on the destination half's links. A cross-LP source flow
// ships every rate move to its stub so the peer shard's occupancy
// tracks it within one lookahead window.
func (nt *Net) setRate(f *Flow, r float64, now sim.Time) {
	if f.rate == r {
		return
	}
	if f.stub {
		f.rate = r
		f.updated = now
		return
	}
	if f.rate > 0 {
		f.remaining -= float64(now-f.updated) * f.rate
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.updated = now
	nt.K.CancelRunner(f.ev)
	f.rate = r
	f.ev = nt.K.AfterRunnerRef(sim.Time(math.Ceil(f.remaining/r)), f)
	if f.xlp >= 0 && f.rate != f.xsent {
		f.xsent = f.rate
		nt.emit(xmsg{t: now + nt.la, kind: kXRate, dst: f.xlp,
			id: f.id, gen: f.gen, rate: f.rate})
	}
}

// link inserts f's slot s at the head of link li's flow list.
func (nt *Net) link(f *Flow, s int, li int32) {
	old := nt.head[li]
	ref := f.id<<slotBits | int32(s)
	f.next = f.next[:cap(f.next)]
	f.prev = f.prev[:cap(f.prev)]
	f.next[s] = old
	f.prev[s] = -2 - li
	if old >= 0 {
		g := nt.flows[old>>slotBits]
		g.prev[old&(1<<slotBits-1)] = ref
	}
	nt.head[li] = ref
	nt.nf[li]++
}

// unlink removes f's slot s from link li's flow list.
func (nt *Net) unlink(f *Flow, s int, li int32) {
	nx, pv := f.next[s], f.prev[s]
	if pv <= -2 {
		nt.head[-2-pv] = nx
	} else {
		g := nt.flows[pv>>slotBits]
		g.next[pv&(1<<slotBits-1)] = nx
	}
	if nx >= 0 {
		g := nt.flows[nx>>slotBits]
		g.prev[nx&(1<<slotBits-1)] = pv
	}
	nt.nf[li]--
}

// getFlow takes a Flow from the pool, allocating route-sized slices on
// first use.
func (nt *Net) getFlow() *Flow {
	var f *Flow
	if n := len(nt.freef); n > 0 {
		id := nt.freef[n-1]
		nt.freef = nt.freef[:n-1]
		f = nt.flows[id]
	} else {
		f = &Flow{
			nt:    nt,
			id:    int32(len(nt.flows)),
			links: make([]int32, 0, nt.maxRoute),
			next:  make([]int32, nt.maxRoute),
			prev:  make([]int32, nt.maxRoute),
		}
		nt.flows = append(nt.flows, f)
	}
	f.stub = false
	f.xlp = -1
	f.xcap = math.Inf(1)
	f.xsent = -1
	return f
}

// putFlow recycles a completed flow. The generation bump invalidates
// any cross-LP message still in flight addressed to this id.
func (nt *Net) putFlow(f *Flow) {
	f.h = nil
	f.ev = sim.EventRef{}
	f.gen++
	nt.freef = append(nt.freef, f.id)
}
