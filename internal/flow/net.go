// Package flow implements the flow-level hybrid-fidelity engine: the
// cheap abstraction layer that simulates 65536–1M nodes behind the same
// cluster API as the packet-level kernel.
//
// Instead of per-packet events through the fabric, each logical
// transfer (a message, a collective tree edge) is one Flow with a
// source, destination, size in wire bytes and a route over topo links.
// Active flows share link bandwidth by progressive max-min fairness:
// whenever a flow starts or finishes, the fair shares of every flow in
// the affected connected component are recomputed by water-filling and
// their completion events rescheduled through the existing sim.Kernel
// (4-ary heap, pooled Runner events, generation-checked cancelation).
//
// What stays exact relative to the packet engine: skew draws, GM
// send/receive token accounting, reduction-tree structure, per-node
// host/NIC scalar costs, and the deterministic D-mod-k routes (a flow
// occupies exactly the links topo.Route reports for the packet path).
// What degrades: per-packet FIFO queueing becomes fluid bandwidth
// sharing, and per-packet loss becomes a per-flow expected
// retransmission latency (see Machine). The cross-validation tests in
// internal/bench pin the resulting error band on the 32–16384 envelope.
package flow

import (
	"math"

	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// Handler receives flow-engine callbacks: flow deliveries and timer
// wakeups. Components dispatch on their own tag encodings, so one
// Handler implementation serves many outstanding operations without a
// closure per event.
type Handler interface {
	FlowEvent(tag uint64, at sim.Time)
}

// slotBits packs (flow id, route slot) into one int32 list reference:
// ref = id<<slotBits | slot. Routes are at most 2 + topo.MaxHops links,
// so 6 bits of slot leave 25 bits of flow id — far beyond any
// concurrent-flow population the pool reaches.
const slotBits = 6

// Flow is one in-flight transfer. Flows are pooled; all fields are
// overwritten on reuse. A Flow is also the Runner for its own
// completion event.
type Flow struct {
	nt        *Net
	id        int32
	links     []int32 // route: inject, topo links (up then down), eject
	next      []int32 // per-slot intrusive list refs (packed id<<6|slot)
	prev      []int32 // packed ref, or -2-link when first in the list
	rate      float64 // current fair share, bytes/ns; <0 before first fill
	remaining float64 // wire bytes not yet through the bottleneck
	updated   sim.Time
	start     sim.Time
	lat       sim.Time // constant pipeline latency added at completion
	bytes     int64
	h         Handler
	tag       uint64
	ev        sim.EventRef
	mark      uint32 // closure-membership epoch
	frozen    bool   // water-filling scratch
}

// RunEvent fires the flow's completion: the last byte has crossed the
// bottleneck. The flow leaves its links, the affected component is
// re-shared, and the handler is told the delivery time now+lat (the
// pipeline tail draining the downstream hops).
func (f *Flow) RunEvent() { f.nt.finish(f) }

// Net is the bandwidth substrate: every host's injection and ejection
// link plus the topology's inter-switch links, each with the uniform
// wire capacity, shared by max-min fairness among the flows routed over
// them.
//
// Link ids: host i injects on link 2i and ejects on link 2i+1; topo
// link l (as numbered by topo.Route) is Net link 2n+l. A Net belongs to
// one kernel and is single-threaded in scheduler context, like every
// other simulation layer.
type Net struct {
	K *sim.Kernel
	T *topo.Topology // nil or single-switch = crossbar

	n        int
	base     int     // first topo link id (= 2n)
	capBns   float64 // link capacity, bytes/ns
	hopLat   sim.Time
	maxRoute int

	head  []int32 // per link: packed ref of the first flow slot, -1 none
	nf    []int32 // per link: active flows routed over it
	lmark []uint32
	lslot []int32 // link -> index into the current closure's clinks

	flows []*Flow
	freef []int32
	epoch uint32
	path  topo.Path

	// water-filling scratch, reused across recomputes
	cflows []*Flow
	clinks []int32
	resid  []float64
	acnt   []int32

	active    int
	started   uint64
	maxActive int
	// Contention analogues of the packet fabric's TopoStats: flows
	// delivered later than their uncontended completion time, and the
	// total virtual time so lost.
	delayed    uint64
	delayTotal sim.Time

	sampleFCT bool
	fct       []sim.Time
}

// NewNet builds the substrate for n hosts on topology t (nil =
// crossbar) under the given cost constants.
func NewNet(k *sim.Kernel, t *topo.Topology, n int, c model.Costs) *Net {
	nt := &Net{K: k, n: n, base: 2 * n}
	nlinks := 2 * n
	nt.maxRoute = 2
	if t != nil && t.Levels() > 1 {
		nt.T = t
		nlinks += t.Links()
		nt.maxRoute = 2 + 2*(t.Levels()-1)
	}
	nt.capBns = c.WireMBps * 1e6 / 1e9
	nt.hopLat = c.WireProp + c.SwitchHop
	nt.head = make([]int32, nlinks)
	for i := range nt.head {
		nt.head[i] = -1
	}
	nt.nf = make([]int32, nlinks)
	nt.lmark = make([]uint32, nlinks)
	nt.lslot = make([]int32, nlinks)
	return nt
}

// Reset returns the Net to its just-built state for a cluster reuse
// run. All flows must have completed (the simulation ran to
// quiescence); pooled Flow structs and link arrays keep their capacity.
func (nt *Net) Reset() {
	if nt.active != 0 {
		panic("flow: Reset with active flows")
	}
	nt.started = 0
	nt.maxActive = 0
	nt.delayed = 0
	nt.delayTotal = 0
	nt.fct = nt.fct[:0]
}

// Nodes returns the host count.
func (nt *Net) Nodes() int { return nt.n }

// SampleFCT enables per-flow completion-time recording (delivery minus
// start) for distribution summaries.
func (nt *Net) SampleFCT(on bool) { nt.sampleFCT = on }

// FCTs returns the recorded flow completion times in completion order.
func (nt *Net) FCTs() []sim.Time { return nt.fct }

// Stats reports flows started, the peak concurrent flow population, and
// the contention totals (flows delayed past their uncontended
// completion, and the virtual time lost).
func (nt *Net) Stats() (started uint64, maxActive int, delayed uint64, delayTotal sim.Time) {
	return nt.started, nt.maxActive, nt.delayed, nt.delayTotal
}

// RouteLinks appends the Net link ids a src->dst flow occupies, in
// traversal order (inject, up-links, down-links, eject) — the exposed
// form of the route construction Start uses, for tests that compare
// against the packet path.
func (nt *Net) RouteLinks(dst []int32, src, dstNode int) []int32 {
	dst = append(dst, int32(2*src))
	if nt.T != nil {
		nt.T.Route(src, dstNode, &nt.path)
		for i := 0; i < nt.path.N; i++ {
			dst = append(dst, int32(nt.base)+nt.path.Links[i])
		}
	}
	return append(dst, int32(2*dstNode+1))
}

// Start launches a flow of wireBytes from src to dst at the current
// virtual time. extraLat is constant latency added to the pipeline
// (the Machine's expected-retransmission loss cost); the topology
// crossing latency is computed here. h.FlowEvent(tag, deliveredAt)
// fires when the flow completes.
func (nt *Net) Start(src, dst, wireBytes int, extraLat sim.Time, h Handler, tag uint64) {
	f := nt.getFlow()
	f.links = f.links[:0]
	f.links = append(f.links, int32(2*src))
	switches := 1
	if nt.T != nil {
		nt.T.Route(src, dst, &nt.path)
		for i := 0; i < nt.path.N; i++ {
			f.links = append(f.links, int32(nt.base)+nt.path.Links[i])
		}
		switches = nt.path.Switches
	}
	f.links = append(f.links, int32(2*dst+1))

	now := nt.K.Now()
	f.rate = -1
	f.remaining = float64(wireBytes)
	f.bytes = int64(wireBytes)
	f.updated = now
	f.start = now
	f.lat = sim.Time(switches)*nt.hopLat + extraLat
	f.h = h
	f.tag = tag

	alone := true
	for s, li := range f.links {
		nt.link(f, s, li)
		if nt.nf[li] > 1 {
			alone = false
		}
	}
	nt.started++
	nt.active++
	if nt.active > nt.maxActive {
		nt.maxActive = nt.active
	}

	if alone {
		nt.setRate(f, nt.capBns, now)
		return
	}
	nt.epoch++
	nt.cflows = nt.cflows[:0]
	f.mark = nt.epoch
	nt.cflows = append(nt.cflows, f)
	nt.reshare(now)
}

// finish completes flow f: unlink, re-share the component it leaves
// behind, deliver, recycle.
func (nt *Net) finish(f *Flow) {
	now := nt.K.Now()
	nt.epoch++
	nt.cflows = nt.cflows[:0]
	needs := false
	for s, li := range f.links {
		nt.unlink(f, s, li)
		if nt.nf[li] > 0 {
			needs = true
			for ref := nt.head[li]; ref >= 0; {
				g := nt.flows[ref>>slotBits]
				if g.mark != nt.epoch {
					g.mark = nt.epoch
					nt.cflows = append(nt.cflows, g)
				}
				ref = g.next[ref&(1<<slotBits-1)]
			}
		}
	}
	nt.active--
	if needs {
		nt.reshare(now)
	}

	end := now + f.lat
	if want := now - f.start; true {
		uncont := sim.Time(math.Ceil(float64(f.bytes) / nt.capBns))
		if want > uncont {
			nt.delayed++
			nt.delayTotal += want - uncont
		}
	}
	if nt.sampleFCT {
		nt.fct = append(nt.fct, end-f.start)
	}
	h, tag := f.h, f.tag
	nt.putFlow(f)
	h.FlowEvent(tag, end)
}

// reshare runs exact max-min water-filling over the connected component
// seeded in nt.cflows (marked with the current epoch): expand the
// closure over shared links, then repeatedly freeze the flows of the
// tightest link at its equal share. Components are small in practice —
// a handful of flows meeting at a fan-in link — so the scratch slices
// stay tiny; correctness does not depend on that.
func (nt *Net) reshare(now sim.Time) {
	nt.clinks = nt.clinks[:0]
	for i := 0; i < len(nt.cflows); i++ {
		f := nt.cflows[i]
		f.frozen = false
		for _, li := range f.links {
			if nt.lmark[li] == nt.epoch {
				continue
			}
			nt.lmark[li] = nt.epoch
			nt.lslot[li] = int32(len(nt.clinks))
			nt.clinks = append(nt.clinks, li)
			for ref := nt.head[li]; ref >= 0; {
				g := nt.flows[ref>>slotBits]
				if g.mark != nt.epoch {
					g.mark = nt.epoch
					nt.cflows = append(nt.cflows, g)
				}
				ref = g.next[ref&(1<<slotBits-1)]
			}
		}
	}

	nl := len(nt.clinks)
	if cap(nt.resid) < nl {
		nt.resid = make([]float64, nl)
		nt.acnt = make([]int32, nl)
	}
	nt.resid = nt.resid[:nl]
	nt.acnt = nt.acnt[:nl]
	for ci, li := range nt.clinks {
		nt.resid[ci] = nt.capBns
		nt.acnt[ci] = nt.nf[li]
	}

	unfrozen := len(nt.cflows)
	for unfrozen > 0 {
		best := -1
		var bs float64
		for ci := range nt.clinks {
			if nt.acnt[ci] <= 0 {
				continue
			}
			s := nt.resid[ci] / float64(nt.acnt[ci])
			if best < 0 || s < bs {
				best, bs = ci, s
			}
		}
		if best < 0 {
			// Defensive: every remaining flow's links are exhausted
			// (cannot happen — each unfrozen flow keeps its links'
			// counts positive). Freeze at full rate and stop.
			for _, f := range nt.cflows {
				if !f.frozen {
					f.frozen = true
					nt.setRate(f, nt.capBns, now)
				}
			}
			break
		}
		li := nt.clinks[best]
		for ref := nt.head[li]; ref >= 0; {
			f := nt.flows[ref>>slotBits]
			ref = f.next[ref&(1<<slotBits-1)]
			if f.frozen {
				continue
			}
			f.frozen = true
			unfrozen--
			nt.setRate(f, bs, now)
			for _, lj := range f.links {
				cj := nt.lslot[lj]
				nt.resid[cj] -= bs
				nt.acnt[cj]--
			}
		}
	}
}

// setRate advances f's remaining bytes to now at the old rate, applies
// the new rate, and reschedules the completion event if the rate moved.
func (nt *Net) setRate(f *Flow, r float64, now sim.Time) {
	if f.rate == r {
		return
	}
	if f.rate > 0 {
		f.remaining -= float64(now-f.updated) * f.rate
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.updated = now
	nt.K.CancelRunner(f.ev)
	f.rate = r
	f.ev = nt.K.AfterRunnerRef(sim.Time(math.Ceil(f.remaining/r)), f)
}

// link inserts f's slot s at the head of link li's flow list.
func (nt *Net) link(f *Flow, s int, li int32) {
	old := nt.head[li]
	ref := f.id<<slotBits | int32(s)
	f.next = f.next[:cap(f.next)]
	f.prev = f.prev[:cap(f.prev)]
	f.next[s] = old
	f.prev[s] = -2 - li
	if old >= 0 {
		g := nt.flows[old>>slotBits]
		g.prev[old&(1<<slotBits-1)] = ref
	}
	nt.head[li] = ref
	nt.nf[li]++
}

// unlink removes f's slot s from link li's flow list.
func (nt *Net) unlink(f *Flow, s int, li int32) {
	nx, pv := f.next[s], f.prev[s]
	if pv <= -2 {
		nt.head[-2-pv] = nx
	} else {
		g := nt.flows[pv>>slotBits]
		g.next[pv&(1<<slotBits-1)] = nx
	}
	if nx >= 0 {
		g := nt.flows[nx>>slotBits]
		g.prev[nx&(1<<slotBits-1)] = pv
	}
	nt.nf[li]--
}

// getFlow takes a Flow from the pool, allocating route-sized slices on
// first use.
func (nt *Net) getFlow() *Flow {
	if n := len(nt.freef); n > 0 {
		id := nt.freef[n-1]
		nt.freef = nt.freef[:n-1]
		return nt.flows[id]
	}
	f := &Flow{
		nt:    nt,
		id:    int32(len(nt.flows)),
		links: make([]int32, 0, nt.maxRoute),
		next:  make([]int32, nt.maxRoute),
		prev:  make([]int32, nt.maxRoute),
	}
	nt.flows = append(nt.flows, f)
	return f
}

// putFlow recycles a completed flow.
func (nt *Net) putFlow(f *Flow) {
	f.h = nil
	f.ev = sim.EventRef{}
	nt.freef = append(nt.freef, f.id)
}
