package flow

import (
	"math"
	"math/rand"
	"testing"

	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

const mmEps = 1e-9

// nopH discards deliveries; used where the test asserts on Net state
// rather than completions.
type nopH struct{}

func (nopH) FlowEvent(uint64, sim.Time) {}

// TestEpochWrapClearsMarks forces the closure-mark epoch through its
// uint32 wraparound with every link mark poisoned to 1 — the value the
// epoch restarts at. If bumpEpoch failed to clear surviving marks on
// wrap, the first post-wrap expansion would treat every link as
// already in the closure and mis-share the component; the completion
// times must instead match an unpoisoned net exactly.
func TestEpochWrapClearsMarks(t *testing.T) {
	prog := func(nt *Net, k *sim.Kernel) []sim.Time {
		nt.SampleFCT(true)
		var r rec
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 32; i++ {
			src := rng.Intn(8)
			dst := rng.Intn(7)
			if dst >= src {
				dst++
			}
			sz := 200 + rng.Intn(4000)
			at := sim.Time(rng.Intn(6000))
			i := i
			k.After(at, func() { nt.Start(src, dst, sz, 0, &r, uint64(i)) })
		}
		k.Run()
		if len(r.tags) != 32 {
			t.Fatalf("deliveries = %d, want 32", len(r.tags))
		}
		return append([]sim.Time(nil), nt.FCTs()...)
	}

	k1, n1 := newTestNet(t, 8, topo.Spec{})
	want := prog(n1, k1)

	k2, n2 := newTestNet(t, 8, topo.Spec{})
	n2.epoch = ^uint32(0) // the next bump wraps to 0
	for i := range n2.lmark {
		n2.lmark[i] = 1
	}
	got := prog(n2, k2)

	if len(got) != len(want) {
		t.Fatalf("fct count %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fct[%d] = %d after wrap, want %d", i, got[i], want[i])
		}
	}
	if n2.epoch == 0 || n2.epoch > 1<<20 {
		t.Fatalf("epoch %d did not restart after the wrap", n2.epoch)
	}
}

// activeFlows walks the shard's owned link lists and returns the
// distinct flows occupying them (sources and stubs alike).
func activeFlows(nt *Net) []*Flow {
	seen := map[*Flow]bool{}
	var out []*Flow
	for li := range nt.head {
		if nt.lpOf != nil && nt.lpOf[li] != nt.lp {
			continue
		}
		for ref := nt.head[li]; ref >= 0; {
			f := nt.flows[ref>>slotBits]
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
			ref = f.next[ref&(1<<slotBits-1)]
		}
	}
	return out
}

// checkMaxMin asserts the water-fill invariants over a shard's owned
// links at the probe instant: every link's rate sum fits its capacity,
// and every flow is pinned either by a saturated link on which its
// rate is maximal (no one to steal from) or by its peer shard's grant.
// Errorf, not Fatalf: shard probes run on LP goroutines.
func checkMaxMin(t *testing.T, nt *Net, when sim.Time) {
	t.Helper()
	fl := activeFlows(nt)
	sum := map[int32]float64{}
	max := map[int32]float64{}
	for _, f := range fl {
		for _, li := range f.links {
			sum[li] += f.rate
			if f.rate > max[li] {
				max[li] = f.rate
			}
		}
	}
	for li, s := range sum {
		if s > nt.capBns+mmEps {
			t.Errorf("t=%d: link %d oversubscribed: %g > %g", when, li, s, nt.capBns)
		}
	}
	for _, f := range fl {
		if f.rate <= 0 {
			t.Errorf("t=%d: flow %d carries rate %g", when, f.id, f.rate)
			continue
		}
		if !math.IsInf(f.xcap, 1) && f.rate >= f.xcap-mmEps {
			continue // grant-bound by the peer shard
		}
		bound := false
		for _, li := range f.links {
			if sum[li] >= nt.capBns-mmEps && f.rate >= max[li]-mmEps {
				bound = true
				break
			}
		}
		if !bound {
			t.Errorf("t=%d: flow %d rate %g has headroom on every link and no binding grant",
				when, f.id, f.rate)
		}
	}
}

// randProgram schedules flows flows with seeded-random endpoints,
// sizes and arrival times, plus probes max-min probe instants, on the
// given shard set. Handlers are chosen by destination LP so delivery
// recording never crosses a window boundary.
func randProgram(t *testing.T, ks []*sim.Kernel, nets []*Net, pmap []int32,
	n, flows, probes int, seed int64) []*rec {
	recs := make([]*rec, len(ks))
	for i := range recs {
		recs[i] = &rec{}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < flows; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		sz := 64 + rng.Intn(8192)
		at := sim.Time(rng.Intn(30000))
		slp, dlp := int32(0), int32(0)
		if pmap != nil {
			slp, dlp = pmap[src], pmap[dst]
		}
		i, r := i, recs[dlp]
		ks[slp].After(at, func() { nets[slp].Start(src, dst, sz, 0, r, uint64(i)) })
	}
	for p := 0; p < probes; p++ {
		at := sim.Time(rng.Intn(60000))
		lp := rng.Intn(len(ks))
		ks[lp].After(at, func() { checkMaxMin(t, nets[lp], at) })
	}
	return recs
}

// TestMaxMinPropertyRandom drives seeded-random traffic through the
// monolithic solver and asserts the water-fill invariants at random
// instants, on a crossbar (pure fan-in/fan-out) and a fat-tree (shared
// interior links).
func TestMaxMinPropertyRandom(t *testing.T) {
	cases := []struct {
		name string
		spec topo.Spec
	}{
		{"crossbar", topo.Spec{}},
		{"fattree", topo.Spec{Kind: topo.FatTree, K: 4}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			k, nt := newTestNet(t, 16, tc.spec)
			recs := randProgram(t, []*sim.Kernel{k}, []*Net{nt}, nil, 16, 120, 200, 20030701)
			k.Run()
			if len(recs[0].tags) != 120 {
				t.Fatalf("deliveries = %d, want 120", len(recs[0].tags))
			}
		})
	}
}

// TestMaxMinPropertyShards re-runs the randomized property check with
// the substrate split across LPs, so cross-spine flows exercise the
// stub/grant protocol while every shard's owned links keep the same
// invariants.
func TestMaxMinPropertyShards(t *testing.T) {
	const n = 16
	tp := topo.Build(topo.Spec{Kind: topo.FatTree, K: 4}, n)
	pmap, lps := tp.Partition(2)
	if lps != 2 {
		t.Fatalf("partition gave %d LPs, want 2", lps)
	}
	ks := make([]*sim.Kernel, lps)
	for i := range ks {
		ks[i] = sim.New(int64(i + 1))
	}
	nets := NewNets(ks, pmap, tp, n, model.DefaultCosts())
	par := NewPar(nets)
	recs := randProgram(t, ks, nets, pmap, n, 150, 200, 42)
	sim.NewLPSet(ks, par.Lookahead(), par.Exchange).Run()

	delivered := 0
	for _, r := range recs {
		delivered += len(r.tags)
	}
	if delivered != 150 {
		t.Fatalf("deliveries = %d, want 150", delivered)
	}
	for i, nt := range nets {
		if nt.started == 0 {
			t.Errorf("shard %d started no flows; partition did not spread the program", i)
		}
		if nt.nstubs != 0 || len(nt.stubs) != 0 {
			t.Errorf("shard %d drained with %d live stubs", i, nt.nstubs)
		}
	}
}

// TestHeapScanEquivalence pins the heap water-fill to the linear-scan
// reference implementation: the same seeded-random program must yield
// byte-identical completion times through either solver.
func TestHeapScanEquivalence(t *testing.T) {
	run := func(scan bool) []sim.Time {
		k, nt := newTestNet(t, 16, topo.Spec{Kind: topo.FatTree, K: 4})
		nt.scanFill = scan
		nt.SampleFCT(true)
		randProgram(t, []*sim.Kernel{k}, []*Net{nt}, nil, 16, 150, 0, 99)
		k.Run()
		return append([]sim.Time(nil), nt.FCTs()...)
	}
	heap, scan := run(false), run(true)
	if len(heap) != len(scan) || len(heap) != 150 {
		t.Fatalf("fct counts %d vs %d, want 150", len(heap), len(scan))
	}
	for i := range heap {
		if heap[i] != scan[i] {
			t.Fatalf("fct[%d]: heap %d vs scan %d", i, heap[i], scan[i])
		}
	}
}

// reshareProgram is the alloc/benchmark workload: M sources fan into
// host 0 while each also runs a private flow, so the fill freezes the
// fan-in in one round and then needs one round per remaining injection
// link — the shape where the per-round linear scan goes quadratic.
func reshareProgram(k *sim.Kernel, nt *Net, m int) {
	var h nopH
	for i := 1; i <= m; i++ {
		nt.Start(i, 0, 4096, 0, h, 0)
		nt.Start(i, i, 4096, 0, h, 0)
	}
	k.Run()
	k.Reset(1)
	nt.Reset()
}

// TestReshareAllocs pins the steady-state allocation behaviour: after
// one warm-up run has sized every pool and scratch slice, a full
// program of contended flows must run the water-fill without
// allocating per round.
func TestReshareAllocs(t *testing.T) {
	k := sim.New(1)
	nt := NewNet(k, nil, 33, model.DefaultCosts())
	reshareProgram(k, nt, 32) // size pools and scratch
	avg := testing.AllocsPerRun(10, func() { reshareProgram(k, nt, 32) })
	if avg > 8 {
		t.Errorf("steady-state program averaged %.1f allocs, want <= 8", avg)
	}
}

// The fan-in width is past the solvers' crossover (the scan wins below
// ~128 sources on this shape; the heap is ~2.5x faster at 512 and
// pulls further ahead as components grow toward collective fan-in at
// the large envelopes).
func benchReshare(b *testing.B, scan bool) {
	const m = 512
	k := sim.New(1)
	nt := NewNet(k, nil, m+1, model.DefaultCosts())
	nt.scanFill = scan
	reshareProgram(k, nt, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reshareProgram(k, nt, m)
	}
}

func BenchmarkReshareHeap(b *testing.B) { benchReshare(b, false) }
func BenchmarkReshareScan(b *testing.B) { benchReshare(b, true) }
