// LP partitioning for the flow engine: the max-min substrate sharded
// along topo.Pods onto sim.LPSet, mirroring the packet fabric's
// split-at-the-spine design.
//
// Each shard owns its pods' injection/ejection links and every
// inter-switch link whose subtree hangs below those pods (see
// topo.LinkOwners). Intra-LP flows never leave their shard. A flow
// whose D-mod-k route crosses the spine is split at the turn: the
// source shard runs the real flow over the climb half, the destination
// shard grows a stub over the descent half, and the two halves trade
// rate information through the LPSet window protocol:
//
//	xopen  source -> dest   flow announced; grow the stub
//	xrate  source -> dest   source's current rate; stub occupancy bound
//	xcap   dest  -> source  destination's grant: stub share + headroom
//	xdone  source -> dest   flow completed; tear down, deliver payload
//
// xopen/xrate/xcap travel exactly one conservative lookahead
// (2·(WireProp+SwitchHop)) ahead of their emission time, so a remote
// share is stale by at most one window plus the lookahead — the same
// bound the packet fabric's crossing latency provides, and the reason
// a cross flow's rate may transiently disagree between its halves.
// xdone travels at the delivery time, which exceeds the lookahead
// because a spine crossing traverses at least three switches. All
// messages merge deterministically at the barrier by (t, lp, seq), so
// multi-LP runs are reproducible for any LP count; single-LP runs
// never emit and stay byte-identical to the monolithic engine.
//
// Messages addressed to one shard at one instant are applied as a
// single batch: every state update lands first, then the union of the
// touched components is re-shared once, then completed flows deliver.
// Per-message reshares would let two shards trading rate updates
// multiply traffic every window — each apply re-emits a changed
// component's worth of rates, and a component whose halves disagree
// (distributed water-filling may oscillate between fills until a flow
// drains) turns that into an exponential message storm. Batching
// bounds a window's volley at one component sweep per barrier instant.
package flow

import (
	"sort"

	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

const (
	kXOpen = uint8(iota)
	kXRate
	kXCap
	kXDone
)

// xmsg is one cross-shard message, produced into the emitting shard's
// outbox during a window and delivered by Par.Exchange at the barrier.
type xmsg struct {
	t    sim.Time
	lp   int32  // emitting LP
	seq  uint64 // per-LP emission sequence; (t, lp, seq) is the merge key
	kind uint8
	dst  int32 // receiving LP
	id   int32 // flow id in the emitting shard (xcap: in the receiver)
	gen  uint32
	a, b int32 // xopen: source and destination ranks
	rate float64
	h    Handler // xdone: destination-side payload
	tag  uint64
}

// xkey addresses a stub by the source shard's (LP, flow id,
// generation). The generation keeps a recycled source id from
// colliding with a stub the old flow's xdone has not yet torn down.
type xkey struct {
	lp  int32
	id  int32
	gen uint32
}

// xdlv is a delivery deferred to the end of its batch: handlers can
// start new flows (which bump the mark epoch), so they must not run
// while the batch's seeded closure is still waiting for its reshare.
type xdlv struct {
	h   Handler
	tag uint64
}

// xbatch is the pooled Runner that applies every xmsg addressed to one
// shard at one instant.
type xbatch struct {
	nt *Net
	ms []xmsg
}

func (e *xbatch) RunEvent() {
	nt := e.nt
	now := nt.K.Now()
	nt.bumpEpoch()
	nt.cflows = nt.cflows[:0]
	for i := range e.ms {
		m := &e.ms[i]
		switch m.kind {
		case kXOpen:
			nt.applyOpen(m)
		case kXRate:
			nt.applyRate(m)
		case kXCap:
			nt.applyCap(m)
		case kXDone:
			nt.applyDone(m)
		}
		m.h = nil
	}
	if len(nt.cflows) > 0 {
		nt.reshare(now)
	}
	e.ms = e.ms[:0]
	nt.xfree = append(nt.xfree, e)
	for i := range nt.dlv {
		d := &nt.dlv[i]
		h := d.h
		d.h = nil
		h.FlowEvent(d.tag, now)
	}
	nt.dlv = nt.dlv[:0]
}

// seed marks f into the closure the batch's reshare will expand from.
func (nt *Net) seed(f *Flow) {
	if f.mark != nt.epoch {
		f.mark = nt.epoch
		nt.cflows = append(nt.cflows, f)
	}
}

// emit queues a cross-shard message on this shard's outbox.
func (nt *Net) emit(m xmsg) {
	m.lp = nt.lp
	m.seq = nt.oseq
	nt.oseq++
	nt.outbox = append(nt.outbox, m)
}

// applyOpen grows the stub half of a cross-spine flow: the descent
// links plus the ejection link, re-derived locally from the same
// deterministic route the source shard split. The stub starts
// unbounded; the xrate that every Start emits right behind its xopen
// (same barrier time, higher seq) brings the real occupancy.
func (nt *Net) applyOpen(m *xmsg) {
	f := nt.getFlow()
	f.stub = true
	f.xlp = m.lp
	f.xid = m.id
	f.xgen = m.gen
	f.links = f.links[:0]
	nt.T.Route(int(m.a), int(m.b), &nt.path)
	for i := nt.path.N / 2; i < nt.path.N; i++ {
		f.links = append(f.links, int32(nt.base)+nt.path.Links[i])
	}
	f.links = append(f.links, 2*m.b+1)

	now := nt.K.Now()
	f.rate = -1
	f.remaining = 0
	f.bytes = 0
	f.updated = now
	f.start = now
	f.lat = 0
	f.uncont = 0
	f.h = nil
	f.tag = 0
	for s, li := range f.links {
		nt.link(f, s, li)
	}
	nt.nstubs++
	nt.stubs[xkey{m.lp, m.id, m.gen}] = f.id
	nt.seed(f)
}

// applyRate updates a stub's occupancy bound to the source half's
// current rate.
func (nt *Net) applyRate(m *xmsg) {
	id, ok := nt.stubs[xkey{m.lp, m.id, m.gen}]
	if !ok {
		panic("flow: xrate for unknown stub")
	}
	f := nt.flows[id]
	if f.xcap == m.rate {
		return
	}
	f.xcap = m.rate
	nt.seed(f)
}

// applyCap updates a source flow's grant from its destination shard.
// The flow may have completed (and its id been recycled) while the
// grant was in flight; the generation check drops such strays.
func (nt *Net) applyCap(m *xmsg) {
	if int(m.id) >= len(nt.flows) {
		return
	}
	f := nt.flows[m.id]
	if f.gen != m.gen || f.h == nil || f.stub || f.xlp < 0 {
		return
	}
	if f.xcap == m.rate {
		return
	}
	f.xcap = m.rate
	nt.seed(f)
}

// applyDone tears down a stub at the flow's delivery time and defers
// the destination-side handler — which executes here, on the LP that
// owns the destination host, exactly as an intra-LP delivery would —
// to the end of the batch.
func (nt *Net) applyDone(m *xmsg) {
	k := xkey{m.lp, m.id, m.gen}
	id, ok := nt.stubs[k]
	if !ok {
		panic("flow: xdone for unknown stub")
	}
	delete(nt.stubs, k)
	f := nt.flows[id]
	for s, li := range f.links {
		nt.unlink(f, s, li)
		for ref := nt.head[li]; ref >= 0; {
			g := nt.flows[ref>>slotBits]
			nt.seed(g)
			ref = g.next[ref&(1<<slotBits-1)]
		}
	}
	nt.nstubs--
	// An earlier message this batch may have seeded the stub; zeroing
	// its mark drops it from the closure before the flow is recycled
	// (reshare skips seeds whose mark is stale).
	f.mark = 0
	nt.dlv = append(nt.dlv, xdlv{h: m.h, tag: m.tag})
	nt.putFlow(f)
}

// NewNets builds one Net shard per kernel over a shared link
// substrate. pmap assigns each host to a shard (topo.Partition);
// NewNets(ks[:1], nil, ...) degenerates to the monolithic NewNet.
func NewNets(ks []*sim.Kernel, pmap []int32, t *topo.Topology, n int, c model.Costs) []*Net {
	nts := make([]*Net, len(ks))
	nts[0] = NewNet(ks[0], t, n, c)
	if len(ks) == 1 {
		return nts
	}
	b := nts[0]
	lpOf := make([]int32, len(b.head))
	for i := 0; i < n; i++ {
		lpOf[2*i] = pmap[i]
		lpOf[2*i+1] = pmap[i]
	}
	if b.T != nil {
		copy(lpOf[b.base:], b.T.LinkOwners(pmap))
	}
	for i := range nts {
		if i > 0 {
			nts[i] = &Net{
				K: ks[i], T: b.T,
				n: b.n, base: b.base, capBns: b.capBns,
				hopLat: b.hopLat, maxRoute: b.maxRoute,
				head: b.head, nf: b.nf, lmark: b.lmark, lslot: b.lslot,
			}
		}
		nt := nts[i]
		nt.lp = int32(i)
		nt.lps = len(ks)
		nt.pmap = pmap
		nt.lpOf = lpOf
		nt.peers = nts
		nt.la = 2 * b.hopLat
		nt.stubs = make(map[xkey]int32)
	}
	return nts
}

// Par is the flow engine's window-barrier coupling for sim.LPSet:
// Lookahead bounds how far ahead of the global minimum every shard may
// run, and Exchange drains the shard outboxes at each barrier.
type Par struct {
	nets []*Net
	xbuf []xmsg
}

// NewPar couples the given shards.
func NewPar(nets []*Net) *Par { return &Par{nets: nets} }

// Lookahead returns the conservative window bound: every cross-shard
// message is timestamped at least 2·(WireProp+SwitchHop) after its
// emission, because that is the soonest a rate change at one end of a
// spine crossing can matter at the other.
func (p *Par) Lookahead() sim.Time { return p.nets[0].la }

// Exchange merges every shard's outbox in deterministic (t, lp, seq)
// order, groups the messages into one batch per (destination, instant)
// and schedules each batch on its shard's kernel. Runs at the window
// barrier with all kernels quiescent.
func (p *Par) Exchange() {
	p.xbuf = p.xbuf[:0]
	for _, nt := range p.nets {
		for i := range nt.outbox {
			p.xbuf = append(p.xbuf, nt.outbox[i])
			nt.outbox[i].h = nil
		}
		nt.outbox = nt.outbox[:0]
	}
	if len(p.xbuf) == 0 {
		return
	}
	sort.Slice(p.xbuf, func(i, j int) bool {
		a, b := &p.xbuf[i], &p.xbuf[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.lp != b.lp {
			return a.lp < b.lp
		}
		return a.seq < b.seq
	})
	for i := 0; i < len(p.xbuf); {
		j := i + 1
		for j < len(p.xbuf) && p.xbuf[j].t == p.xbuf[i].t {
			j++
		}
		// One batch per destination within the equal-time run, keeping
		// the sorted (lp, seq) order inside each batch.
		for dst := range p.nets {
			nt := p.nets[dst]
			var e *xbatch
			for k := i; k < j; k++ {
				if int(p.xbuf[k].dst) != dst {
					continue
				}
				if e == nil {
					if n := len(nt.xfree); n > 0 {
						e = nt.xfree[n-1]
						nt.xfree = nt.xfree[:n-1]
					} else {
						e = &xbatch{nt: nt}
					}
				}
				e.ms = append(e.ms, p.xbuf[k])
				p.xbuf[k].h = nil
			}
			if e != nil {
				nt.K.ScheduleRunnerAt(p.xbuf[i].t, e)
			}
		}
		i = j
	}
}
