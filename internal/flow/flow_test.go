package flow

import (
	"testing"

	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

func faultDrop(p float64) fault.Config {
	return fault.Config{Rule: fault.Rule{Drop: p}}
}

// rec is a test Handler recording (tag, at) callbacks in order.
type rec struct {
	tags []uint64
	ats  []sim.Time
}

func (r *rec) FlowEvent(tag uint64, at sim.Time) {
	r.tags = append(r.tags, tag)
	r.ats = append(r.ats, at)
}

// Default costs: 0.25 bytes/ns wire, 800 ns per switch crossing.
const (
	bps    = 0.25
	hopLat = 800 * sim.Time(1)
)

func newTestNet(t *testing.T, n int, spec topo.Spec) (*sim.Kernel, *Net) {
	t.Helper()
	k := sim.New(1)
	var tp *topo.Topology
	if spec != (topo.Spec{}) {
		tp = topo.Build(spec, n)
	}
	return k, NewNet(k, tp, n, model.DefaultCosts())
}

func TestSingleFlowUncontended(t *testing.T) {
	k, nt := newTestNet(t, 4, topo.Spec{})
	var r rec
	nt.SampleFCT(true)
	nt.Start(0, 1, 1000, 0, &r, 7)
	k.Run()
	// 1000 bytes at 0.25 B/ns = 4000 ns transfer + one crossbar stage.
	want := sim.Time(4000) + hopLat
	if len(r.ats) != 1 || r.ats[0] != want || r.tags[0] != 7 {
		t.Fatalf("delivery = %v %v, want [%d] tag 7", r.ats, r.tags, want)
	}
	if len(nt.FCTs()) != 1 || nt.FCTs()[0] != want {
		t.Fatalf("FCTs = %v, want [%d]", nt.FCTs(), want)
	}
	if _, _, delayed, _ := nt.Stats(); delayed != 0 {
		t.Fatalf("uncontended flow counted as delayed (%d)", delayed)
	}
}

// Three flows: A: 0->2 (400 B), B: 1->2 (1000 B), C: 0->3 (1000 B), all
// at t=0 on a crossbar. A and B share 2's ejection link, A and C share
// 0's injection link, so max-min gives everyone 1/2 capacity. A drains
// first (t=3200); B and C then share nothing and finish their remaining
// 600 bytes at full rate, t = 3200 + 2400 = 5600.
func TestMaxMinWaterFill(t *testing.T) {
	k, nt := newTestNet(t, 4, topo.Spec{})
	var r rec
	nt.Start(0, 2, 400, 0, &r, 1)
	nt.Start(1, 2, 1000, 0, &r, 2)
	nt.Start(0, 3, 1000, 0, &r, 3)
	k.Run()
	wantA := sim.Time(3200) + hopLat
	wantBC := sim.Time(5600) + hopLat
	if len(r.ats) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(r.ats))
	}
	got := map[uint64]sim.Time{}
	for i, tag := range r.tags {
		got[tag] = r.ats[i]
	}
	if got[1] != wantA || got[2] != wantBC || got[3] != wantBC {
		t.Fatalf("deliveries = %v, want A=%d B=C=%d", got, wantA, wantBC)
	}
	if _, maxAct, delayed, delayTot := nt.Stats(); maxAct != 3 || delayed != 3 || delayTot == 0 {
		t.Fatalf("stats = maxActive %d delayed %d delayTotal %d", maxAct, delayed, delayTot)
	}
}

// A flow joining mid-transfer slows the incumbent from its join instant
// only: D: 0->1 (2000 B) alone until t=4000, then E: 2->1 (1000 B)
// shares 1's ejection link. D has 1000 B left, both run at 1/2 capacity
// (8 ns/B): D ends at 4000+8000=12000, E (started t=4000) reaches its
// last 1000... E finishes at 12000 too, both exactly water-filled.
func TestProgressiveRefill(t *testing.T) {
	k, nt := newTestNet(t, 4, topo.Spec{})
	var r rec
	nt.Start(0, 1, 2000, 0, &r, 1)
	k.After(4000, func() { nt.Start(2, 1, 1000, 0, &r, 2) })
	k.Run()
	want := sim.Time(12000) + hopLat
	if len(r.ats) != 2 || r.ats[0] != want || r.ats[1] != want {
		t.Fatalf("deliveries = %v, want both at %d", r.ats, want)
	}
}

// Flow routes on a fat-tree occupy exactly the links topo.Route
// reports, offset into Net numbering, bracketed by the host links.
func TestRouteLinksMatchTopo(t *testing.T) {
	spec := topo.Spec{Kind: topo.FatTree, K: 4}
	k, nt := newTestNet(t, 16, spec)
	_ = k
	tp := nt.T
	var p topo.Path
	for _, pair := range [][2]int{{0, 1}, {0, 3}, {5, 12}, {15, 2}} {
		src, dst := pair[0], pair[1]
		links := nt.RouteLinks(nil, src, dst)
		tp.Route(src, dst, &p)
		if len(links) != p.N+2 {
			t.Fatalf("%d->%d: %d links, want %d", src, dst, len(links), p.N+2)
		}
		if links[0] != int32(2*src) || links[len(links)-1] != int32(2*dst+1) {
			t.Fatalf("%d->%d: host links wrong: %v", src, dst, links)
		}
		for i := 0; i < p.N; i++ {
			if links[1+i] != int32(2*16)+p.Links[i] {
				t.Fatalf("%d->%d: topo link %d = %d, want %d", src, dst, i, links[1+i], int32(32)+p.Links[i])
			}
		}
	}
}

// Determinism: the same flow program yields byte-identical completion
// sequences on a fresh net and after Reset.
func TestNetResetDeterminism(t *testing.T) {
	run := func(nt *Net, k *sim.Kernel) []sim.Time {
		var r rec
		nt.SampleFCT(true)
		for i := 0; i < 8; i++ {
			src, dst := i%4, (i+1)%4
			sz := 100 + 137*i
			at := sim.Time(i * 500)
			k.After(at, func() { nt.Start(src, dst, sz, 0, &r, uint64(i)) })
		}
		k.Run()
		return append([]sim.Time(nil), nt.FCTs()...)
	}
	k, nt := newTestNet(t, 4, topo.Spec{})
	first := run(nt, k)
	k.Reset(1)
	nt.Reset()
	second := run(nt, k)
	if len(first) != len(second) || len(first) != 8 {
		t.Fatalf("fct lengths %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("fct[%d]: %d vs %d after Reset", i, first[i], second[i])
		}
	}
}

func newTestMachine(n int) (*sim.Kernel, *Machine) {
	k := sim.New(1)
	specs := make([]model.NodeSpec, n)
	for i := range specs {
		specs[i] = model.PIII700PCI64B
	}
	c := model.DefaultCosts()
	return k, NewMachine(k, nil, model.SharedCostModels(specs, c), c)
}

// Machine.Send charges source NIC processing, the wire flow (payload +
// header), and destination NIC processing.
func TestMachineSendTiming(t *testing.T) {
	k, m := newTestMachine(4)
	var r rec
	m.Send(0, 0, 1, 1000, &r, 1)
	k.Run()
	cm := m.CMs[0]
	wire := sim.Time(float64(1000+HeaderBytes) / bps)
	want := cm.NICPkt(1000) + wire + hopLat + cm.NICPkt(1000)
	if len(r.ats) != 1 || r.ats[0] != want {
		t.Fatalf("delivery = %v, want [%d]", r.ats, want)
	}
}

// With one send token, a node's second send launches only when the
// first flow completes; with the default allotment the two flows share
// the injection link instead.
func TestSendTokenGate(t *testing.T) {
	k, m := newTestMachine(4)
	m.SendTokens = 1
	var r rec
	m.Send(0, 0, 1, 4096, &r, 1)
	m.Send(0, 0, 2, 4096, &r, 2)
	k.Run()
	if stalls, _, _ := m.Tokens(); stalls != 1 {
		t.Fatalf("hostStalls = %d, want 1", stalls)
	}
	cm := m.CMs[0]
	wire := sim.Time(float64(4096+HeaderBytes) / bps)
	// First flow: NICPkt, then the full wire rate.
	w1 := cm.NICPkt(4096) + wire + hopLat + cm.NICPkt(4096)
	if r.ats[0] != w1 {
		t.Fatalf("first delivery %d, want %d", r.ats[0], w1)
	}
	// Second launches at the first transfer's end (token release),
	// which must be at or after its own NIC injection instant.
	launch := cm.NICPkt(4096) + wire
	if launch < 2*cm.NICPkt(4096) {
		t.Skip("transfer shorter than NIC serialization; gate can't bind")
	}
	w2 := launch + wire + hopLat + m.CMs[2].NICPkt(4096)
	if r.ats[1] != w2 {
		t.Fatalf("second delivery %d, want %d", r.ats[1], w2)
	}
}

// relHandler releases the receive token a fixed host cost after each
// delivery, so the recv-token gate in Machine can bind.
type relHandler struct {
	m    *Machine
	cost sim.Time
	rec
}

func (h *relHandler) FlowEvent(tag uint64, at sim.Time) {
	h.rec.FlowEvent(tag, at)
	h.m.ReleaseRecv(0, at+h.cost)
}

// With one receive token, the second delivery into a node stalls until
// the host returns the first buffer.
func TestRecvTokenGate(t *testing.T) {
	k, m := newTestMachine(4)
	m.RecvTokens = 1
	h := &relHandler{m: m, cost: 50_000}
	m.Send(0, 1, 0, 64, h, 1)
	m.Send(0, 2, 0, 64, h, 2)
	k.Run()
	if _, stalls, _ := m.Tokens(); stalls == 0 {
		t.Fatalf("no recv stalls with RecvTokens=1 and two deliveries")
	}
	if len(h.ats) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(h.ats))
	}
	if h.ats[1] < h.ats[0]+h.cost {
		t.Fatalf("second delivery %d before first release %d", h.ats[1], h.ats[0]+h.cost)
	}
}

// The loss model adds the deterministic expected-retransmission latency
// and counts expected retransmitted frames.
func TestLossExpectation(t *testing.T) {
	k, m := newTestMachine(4)
	if err := m.SetFaults(faultDrop(0.1)); err != nil {
		t.Fatal(err)
	}
	var r rec
	m.Send(0, 0, 1, 64, &r, 1)
	k.Run()

	k2, m2 := newTestMachine(4)
	var r2 rec
	m2.Send(0, 0, 1, 64, &r2, 1)
	k2.Run()

	extra := r.ats[0] - r2.ats[0]
	// One frame, one crossbar crossing: E = p/(1-p) · 150 µs.
	ev := 1 * 0.1 / (1 - 0.1)
	want := sim.Time(ev * float64(relBaseRTO))
	if extra != want {
		t.Fatalf("loss latency %d, want %d", extra, want)
	}
	if _, _, retr := m.Tokens(); retr < 0.11 || retr > 0.112 {
		t.Fatalf("expected retransmits %v, want ~0.111", retr)
	}
}

// Unsupported fault features are rejected, not silently mis-modeled.
func TestLossModelRejectsNonUniform(t *testing.T) {
	_, m := newTestMachine(2)
	bad := faultDrop(0.1)
	bad.Dup = 0.5
	if err := m.SetFaults(bad); err == nil {
		t.Fatal("duplication accepted by the flow loss model")
	}
}

func TestWakeAtOrder(t *testing.T) {
	k, m := newTestMachine(2)
	var r rec
	m.WakeAt(0, 300, &r, 3)
	m.WakeAt(0, 100, &r, 1)
	m.WakeAt(0, 200, &r, 2)
	k.Run()
	if len(r.tags) != 3 || r.tags[0] != 1 || r.tags[1] != 2 || r.tags[2] != 3 {
		t.Fatalf("wake order = %v", r.tags)
	}
	if r.ats[0] != 100 || r.ats[1] != 200 || r.ats[2] != 300 {
		t.Fatalf("wake times = %v", r.ats)
	}
}

func TestHostClockHelpers(t *testing.T) {
	_, m := newTestMachine(2)
	if got := m.HostRun(0, 100, 50); got != 150 || m.Busy[0] != 150 {
		t.Fatalf("HostRun = %d busy %d", got, m.Busy[0])
	}
	// Earlier "at" does not rewind the clock.
	if got := m.HostRun(0, 0, 10); got != 160 {
		t.Fatalf("HostRun monotonicity: %d", got)
	}
	if got := m.HostIntr(0, 0, 40); got != 200 || m.Intr[0] != 40 {
		t.Fatalf("HostIntr = %d intr %d", got, m.Intr[0])
	}
}
