package flow

import (
	"fmt"

	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// HeaderBytes is the wire overhead per frame, matching gm's packet
// header charge so flow transfer times line up with packet-mode
// serialization byte for byte.
const HeaderBytes = 48

// Machine wraps a Net with the per-node machinery the packet engine
// models with goroutines and daemons: NIC packet-processing
// serialization, GM send/receive token accounting, and the expected-
// retransmission loss cost. It also owns the per-node virtual clocks
// (host busy-until, interrupt accrual, signal coalescing windows) that
// the flow-mode collective and workload layers advance arithmetically
// instead of executing on simulated processes.
//
// Everything runs in scheduler context on one kernel — or, under LP
// partitioning, on one kernel per shard with every per-node array
// partitioned by the owning LP: element r is only touched by events
// running on rank r's LP (Send and token return on the source's LP,
// NIC deposit and receive gating on the destination's), so the shards
// share the arrays race-free. Per-LP mutable scalars and pools live in
// mshard. Timestamps handed to Send/WakeAt may lie in the virtual
// future (host chains extend past the current event) but never in the
// past.
type Machine struct {
	K   *sim.Kernel // shard 0's kernel (the only one when monolithic)
	Net *Net        // shard 0's net
	CMs []model.CostModel

	// Per-node clocks, advanced arithmetically by the layers above:
	// Busy is the host's busy-until time; Intr accumulates handler time
	// charged into the current interruptible spin segment; SigUntil is
	// the end of the current signal coalescing window (a second NIC
	// signal raised while one is pending is ignored).
	Busy     []sim.Time
	Intr     []sim.Time
	SigUntil []sim.Time

	nicFree []sim.Time

	// GM token accounting. SendTokens bounds a node's in-flight sends:
	// the token is taken when the NIC injects the flow and returned when
	// the transfer completes, exactly the send-callback semantics the
	// packet engine's NIC models; sends past the allotment queue FIFO.
	// RecvTokens bounds deliveries awaiting host processing: delivery k
	// at a node stalls until the host has returned the buffer of
	// delivery k-RecvTokens (see ReleaseRecv).
	SendTokens int
	RecvTokens int

	outst    []int32
	waitq    []sendq
	recvPend [][]sim.Time

	lossP    float64 // per-frame drop probability (uniform rule)
	maxFrame int

	ks   []*sim.Kernel
	nets []*Net
	pmap []int32 // host -> owning LP, nil when monolithic
	sh   []mshard
	par  *Par // nil when monolithic
}

// mshard is one LP's mutable scalars and event pools; indexed by the
// LP a rank belongs to, so concurrent windows never share an entry.
type mshard struct {
	hostStall uint64  // sends that waited for a send token
	recvStall uint64  // deliveries that waited for a receive token
	expRetr   float64 // expected retransmitted frames (loss model)
	mfree     []*msg
	tfree     []*timer
}

// sendq is one node's FIFO of token-stalled sends.
type sendq struct {
	q []*msg
	h int
}

// NewMachine builds the per-node layer over a fresh Net. t may be nil
// (crossbar).
func NewMachine(k *sim.Kernel, t *topo.Topology, cms []model.CostModel, c model.Costs) *Machine {
	return NewMachines([]*sim.Kernel{k}, nil, t, cms, c)
}

// NewMachines builds the per-node layer LP-partitioned over one kernel
// per shard, with pmap assigning each rank to a shard (topo.Partition).
// A single kernel with a nil pmap is the monolithic engine.
func NewMachines(ks []*sim.Kernel, pmap []int32, t *topo.Topology, cms []model.CostModel, c model.Costs) *Machine {
	n := len(cms)
	m := &Machine{
		K:          ks[0],
		CMs:        cms,
		Busy:       make([]sim.Time, n),
		Intr:       make([]sim.Time, n),
		SigUntil:   make([]sim.Time, n),
		nicFree:    make([]sim.Time, n),
		SendTokens: 61,  // gm.DefaultSendTokens
		RecvTokens: 256, // gm.DefaultRecvTokens
		outst:      make([]int32, n),
		waitq:      make([]sendq, n),
		recvPend:   make([][]sim.Time, n),
		maxFrame:   c.MaxPayload,
		ks:         ks,
		sh:         make([]mshard, len(ks)),
	}
	m.nets = NewNets(ks, pmap, t, n, c)
	m.Net = m.nets[0]
	if len(ks) > 1 {
		m.pmap = pmap
		m.par = NewPar(m.nets)
	}
	return m
}

// lpr returns the LP owning rank r.
func (m *Machine) lpr(r int32) int32 {
	if m.pmap == nil {
		return 0
	}
	return m.pmap[r]
}

// LP returns the logical process rank r's events run on.
func (m *Machine) LP(r int) int { return int(m.lpr(int32(r))) }

// LPs returns the shard count (1 when monolithic).
func (m *Machine) LPs() int { return len(m.ks) }

// Par returns the window-barrier coupling for sim.LPSet, nil when
// monolithic.
func (m *Machine) Par() *Par { return m.par }

// SetFaults installs the flow engine's degraded loss model from a fault
// plan: a uniform per-frame drop probability p adds each flow's
// expected go-back-N retransmission latency,
//
//	frames · p/(1-p) · RTO(hops),
//
// as deterministic extra pipeline latency (RTO matches gm's hop-scaled
// timeout: 150 µs + 25 µs per switch crossing beyond the first). This
// is an expected-value model — no RNG, no per-frame outcomes — so a
// lossy flow run is smooth where a lossy packet run is bursty; the
// cross-validation band covers the difference. Fault features that name
// individual frames or links (scripts, per-link rules, duplication,
// jitter) have no per-flow expectation worth committing to and are
// rejected.
func (m *Machine) SetFaults(fc fault.Config) error {
	if !fc.Enabled() {
		m.lossP = 0
		return nil
	}
	if len(fc.Links) > 0 || len(fc.Scripts) > 0 || fc.Dup != 0 || fc.JitterP != 0 {
		return fmt.Errorf("flow: only a uniform drop rule is modeled (got %+v)", fc)
	}
	if fc.Drop < 0 || fc.Drop >= 1 {
		return fmt.Errorf("flow: drop probability %v out of [0,1)", fc.Drop)
	}
	m.lossP = fc.Drop
	return nil
}

// Reset returns the machine (and its Nets) to the just-built state.
func (m *Machine) Reset() {
	for i := range m.Busy {
		m.Busy[i] = 0
		m.Intr[i] = 0
		m.SigUntil[i] = 0
		m.nicFree[i] = 0
		m.outst[i] = 0
		q := &m.waitq[i]
		for j := q.h; j < len(q.q); j++ {
			q.q[j] = nil
		}
		q.q, q.h = q.q[:0], 0
		m.recvPend[i] = m.recvPend[i][:0]
	}
	m.lossP = 0
	for i := range m.sh {
		s := &m.sh[i]
		s.hostStall, s.recvStall, s.expRetr = 0, 0, 0
	}
	for _, nt := range m.nets {
		nt.Reset()
	}
}

// Tokens reports the token-accounting totals: sends stalled for a send
// token, deliveries stalled for a receive token, and the loss model's
// expected retransmitted-frame count. Summed over shards.
func (m *Machine) Tokens() (hostStalls, recvStalls uint64, expRetransmits float64) {
	for i := range m.sh {
		s := &m.sh[i]
		hostStalls += s.hostStall
		recvStalls += s.recvStall
		expRetransmits += s.expRetr
	}
	return
}

// SampleFCT enables flow-completion-time recording on every shard.
func (m *Machine) SampleFCT(on bool) {
	for _, nt := range m.nets {
		nt.SampleFCT(on)
	}
}

// FCTs returns the recorded flow completion times, shard-concatenated
// in LP order (callers summarize, which sorts).
func (m *Machine) FCTs() []sim.Time {
	if len(m.nets) == 1 {
		return m.Net.FCTs()
	}
	var all []sim.Time
	for _, nt := range m.nets {
		all = append(all, nt.FCTs()...)
	}
	return all
}

// NetStats sums the per-shard substrate counters. started, delayed and
// delayTotal are exact (each flow counts once, at its source shard);
// maxActive is the sum of per-shard peaks, an upper bound on the true
// concurrent peak since the shards need not peak at the same instant.
func (m *Machine) NetStats() (started uint64, maxActive int, delayed uint64, delayTotal sim.Time) {
	for _, nt := range m.nets {
		s, ma, d, dt := nt.Stats()
		started += s
		maxActive += ma
		delayed += d
		delayTotal += dt
	}
	return
}

// frames returns the wire-frame count of a payload (gm fragments at
// MaxPayload).
func (m *Machine) frames(payload int) int {
	if payload <= m.maxFrame {
		return 1
	}
	return (payload + m.maxFrame - 1) / m.maxFrame
}

// lossLat returns the expected retransmission latency for nf frames
// crossing `switches` crossbar stages, zero on a clean fabric.
func (m *Machine) lossLat(nf, switches int) (sim.Time, float64) {
	if m.lossP == 0 {
		return 0, 0
	}
	rto := relBaseRTO + sim.Time(switches-1)*relHopRTO
	ev := float64(nf) * m.lossP / (1 - m.lossP)
	return sim.Time(ev * float64(rto)), ev
}

// gm's reliability constants (internal/gm/reliability.go), mirrored so
// the loss expectation uses the exact timeout the packet engine arms.
const (
	relBaseRTO = 150 * sim.Time(1000)
	relHopRTO  = 25 * sim.Time(1000)
)

// msg is one in-flight Send: a pooled Runner for its NIC injection
// instant and the Handler for its own flow completion. When the flow
// crosses LPs the completion splits: FlowSrcEvent returns the send
// token on the source LP at the bottleneck-crossing time, then
// FlowEvent runs the destination side on the destination LP at the
// delivery time (the barrier between those windows orders the two).
type msg struct {
	m       *Machine
	src     int32
	dst     int32
	payload int32
	extra   sim.Time
	h       Handler
	tag     uint64
	split   bool // source side already ran via FlowSrcEvent
}

// RunEvent fires at the source NIC's injection instant: take a send
// token (or queue for one) and start the flow.
func (ms *msg) RunEvent() {
	m := ms.m
	if int(m.outst[ms.src]) >= m.SendTokens {
		m.sh[m.lpr(ms.src)].hostStall++
		m.waitq[ms.src].q = append(m.waitq[ms.src].q, ms)
		return
	}
	m.launch(ms)
}

// launch starts ms's flow, holding one of src's send tokens.
func (m *Machine) launch(ms *msg) {
	m.outst[ms.src]++
	if ms.src == ms.dst {
		// Loopback never crosses the fabric: the NIC deposits locally.
		ms.FlowEvent(0, m.kOf(ms.src).Now())
		return
	}
	wire := int(ms.payload) + HeaderBytes*m.frames(int(ms.payload))
	m.nets[m.lpr(ms.src)].Start(int(ms.src), int(ms.dst), wire, ms.extra, ms, 0)
}

// kOf returns the kernel rank r's events run on.
func (m *Machine) kOf(r int32) *sim.Kernel { return m.ks[m.lpr(r)] }

// tokenDone returns src's send token and launches the next queued
// send, if any.
func (m *Machine) tokenDone(src int32) {
	m.outst[src]--
	if q := &m.waitq[src]; q.h < len(q.q) {
		next := q.q[q.h]
		q.q[q.h] = nil
		q.h++
		if q.h == len(q.q) {
			q.q, q.h = q.q[:0], 0
		}
		m.launch(next)
	}
}

// FlowSrcEvent runs the source half of a cross-LP completion: the
// transfer has cleared its bottleneck, so the send token comes back
// and the next queued send launches — at the same virtual time the
// monolithic engine would have returned it.
func (ms *msg) FlowSrcEvent(_ uint64, _ sim.Time) {
	ms.split = true
	ms.m.tokenDone(ms.src)
}

// FlowEvent completes ms's transfer at time end: return the send token
// (unless the source half already ran), serialize through the
// destination NIC under the receive-token gate, and hand the delivery
// time to the user handler.
func (ms *msg) FlowEvent(_ uint64, end sim.Time) {
	m := ms.m
	if !ms.split {
		m.tokenDone(ms.src)
	}

	dst := int(ms.dst)
	start := end
	if m.nicFree[dst] > start {
		start = m.nicFree[dst]
	}
	if rp := m.recvPend[dst]; m.RecvTokens > 0 && len(rp) >= m.RecvTokens {
		if g := rp[len(rp)-m.RecvTokens]; g > start {
			m.sh[m.lpr(ms.dst)].recvStall++
			start = g
		}
	}
	tr := start + m.CMs[dst].NICPkt(int(ms.payload))
	m.nicFree[dst] = tr

	h, tag := ms.h, ms.tag
	ms.h = nil
	// Recycle into the executing LP's pool: a split msg migrates from
	// the source shard's pool to the destination's.
	sh := &m.sh[m.lpr(ms.dst)]
	sh.mfree = append(sh.mfree, ms)
	h.FlowEvent(tag, tr)
}

// Send transfers payload bytes from src to dst, with the NIC picking
// the message up at host time `at` (clamped to the NIC's own timeline).
// h.FlowEvent(tag, deliveredAt) fires when the destination NIC has
// deposited the message; the handler must call ReleaseRecv(dst, t) with
// the host's buffer-return time before it returns, keeping the
// receive-token ledger aligned with deliveries.
func (m *Machine) Send(at sim.Time, src, dst, payload int, h Handler, tag uint64) {
	cm := m.CMs[src]
	tn := at
	if m.nicFree[src] > tn {
		tn = m.nicFree[src]
	}
	tn += cm.NICPkt(payload)
	m.nicFree[src] = tn

	sh := &m.sh[m.lpr(int32(src))]
	var ms *msg
	if n := len(sh.mfree); n > 0 {
		ms = sh.mfree[n-1]
		sh.mfree = sh.mfree[:n-1]
	} else {
		ms = &msg{m: m}
	}
	ms.src, ms.dst = int32(src), int32(dst)
	ms.payload = int32(payload)
	ms.h, ms.tag = h, tag
	ms.extra = 0
	ms.split = false
	if m.lossP != 0 && src != dst {
		sw := 1
		if m.Net.T != nil {
			sw = m.Net.T.Hops(src, dst)
		}
		lat, ev := m.lossLat(m.frames(payload), sw)
		ms.extra = lat
		sh.expRetr += ev
	}

	k := m.kOf(int32(src))
	d := tn - k.Now()
	if d < 0 {
		panic("flow: Send in the virtual past")
	}
	k.AfterRunner(d, ms)
}

// ReleaseRecv records that dst's host returned a delivered message's
// buffer at time t — one call per delivery, in delivery order.
func (m *Machine) ReleaseRecv(dst int, t sim.Time) {
	rp := append(m.recvPend[dst], t)
	// Only the last RecvTokens entries can ever gate; prune in bulk.
	if tok := m.RecvTokens; tok > 0 && len(rp) > 4*tok {
		rp = rp[:copy(rp, rp[len(rp)-tok:])]
	}
	m.recvPend[dst] = rp
}

// timer is a pooled WakeAt event; lp is the shard whose pool owns it,
// which is also the shard it fires on.
type timer struct {
	m   *Machine
	h   Handler
	tag uint64
	at  sim.Time
	lp  int32
}

// RunEvent delivers the wakeup.
func (t *timer) RunEvent() {
	m, h, tag, at := t.m, t.h, t.tag, t.at
	t.h = nil
	m.sh[t.lp].tfree = append(m.sh[t.lp].tfree, t)
	h.FlowEvent(tag, at)
}

// WakeAt schedules h.FlowEvent(tag, t) at virtual time t (>= now) on
// rank r's LP — the wakeup belongs to a rank's timeline, and under
// partitioning it must fire where that rank's events run.
func (m *Machine) WakeAt(r int, t sim.Time, h Handler, tag uint64) {
	lp := m.lpr(int32(r))
	sh := &m.sh[lp]
	var tm *timer
	if n := len(sh.tfree); n > 0 {
		tm = sh.tfree[n-1]
		sh.tfree = sh.tfree[:n-1]
	} else {
		tm = &timer{m: m}
	}
	tm.h, tm.tag, tm.at, tm.lp = h, tag, t, lp
	k := m.ks[lp]
	d := t - k.Now()
	if d < 0 {
		panic("flow: WakeAt in the virtual past")
	}
	k.AfterRunner(d, tm)
}

// HostRun charges cost on rank r's host timeline starting no earlier
// than at, returning the completion time.
func (m *Machine) HostRun(r int, at, cost sim.Time) sim.Time {
	t := m.Busy[r]
	if at > t {
		t = at
	}
	t += cost
	m.Busy[r] = t
	return t
}

// HostIntr is HostRun for asynchronous handler work that interrupts the
// application: the cost also accrues to the rank's interrupt ledger,
// which the spin-segment drivers consume (see bench's flow path).
func (m *Machine) HostIntr(r int, at, cost sim.Time) sim.Time {
	t := m.HostRun(r, at, cost)
	m.Intr[r] += cost
	return t
}
