package flow

import (
	"fmt"

	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// HeaderBytes is the wire overhead per frame, matching gm's packet
// header charge so flow transfer times line up with packet-mode
// serialization byte for byte.
const HeaderBytes = 48

// Machine wraps a Net with the per-node machinery the packet engine
// models with goroutines and daemons: NIC packet-processing
// serialization, GM send/receive token accounting, and the expected-
// retransmission loss cost. It also owns the per-node virtual clocks
// (host busy-until, interrupt accrual, signal coalescing windows) that
// the flow-mode collective and workload layers advance arithmetically
// instead of executing on simulated processes.
//
// Everything runs in scheduler context on one kernel; timestamps handed
// to Send/WakeAt may lie in the virtual future (host chains extend past
// the current event) but never in the past.
type Machine struct {
	K   *sim.Kernel
	Net *Net
	CMs []model.CostModel

	// Per-node clocks, advanced arithmetically by the layers above:
	// Busy is the host's busy-until time; Intr accumulates handler time
	// charged into the current interruptible spin segment; SigUntil is
	// the end of the current signal coalescing window (a second NIC
	// signal raised while one is pending is ignored).
	Busy     []sim.Time
	Intr     []sim.Time
	SigUntil []sim.Time

	nicFree []sim.Time

	// GM token accounting. SendTokens bounds a node's in-flight sends:
	// the token is taken when the NIC injects the flow and returned when
	// the transfer completes, exactly the send-callback semantics the
	// packet engine's NIC models; sends past the allotment queue FIFO.
	// RecvTokens bounds deliveries awaiting host processing: delivery k
	// at a node stalls until the host has returned the buffer of
	// delivery k-RecvTokens (see ReleaseRecv).
	SendTokens int
	RecvTokens int

	outst    []int32
	waitq    []sendq
	recvPend [][]sim.Time

	lossP     float64 // per-frame drop probability (uniform rule)
	maxFrame  int
	hostStall uint64  // sends that waited for a send token
	recvStall uint64  // deliveries that waited for a receive token
	expRetr   float64 // expected retransmitted frames (loss model)

	mfree []*msg
	tfree []*timer
}

// sendq is one node's FIFO of token-stalled sends.
type sendq struct {
	q []*msg
	h int
}

// NewMachine builds the per-node layer over a fresh Net. t may be nil
// (crossbar).
func NewMachine(k *sim.Kernel, t *topo.Topology, cms []model.CostModel, c model.Costs) *Machine {
	n := len(cms)
	m := &Machine{
		K:          k,
		Net:        NewNet(k, t, n, c),
		CMs:        cms,
		Busy:       make([]sim.Time, n),
		Intr:       make([]sim.Time, n),
		SigUntil:   make([]sim.Time, n),
		nicFree:    make([]sim.Time, n),
		SendTokens: 61,  // gm.DefaultSendTokens
		RecvTokens: 256, // gm.DefaultRecvTokens
		outst:      make([]int32, n),
		waitq:      make([]sendq, n),
		recvPend:   make([][]sim.Time, n),
		maxFrame:   c.MaxPayload,
	}
	return m
}

// SetFaults installs the flow engine's degraded loss model from a fault
// plan: a uniform per-frame drop probability p adds each flow's
// expected go-back-N retransmission latency,
//
//	frames · p/(1-p) · RTO(hops),
//
// as deterministic extra pipeline latency (RTO matches gm's hop-scaled
// timeout: 150 µs + 25 µs per switch crossing beyond the first). This
// is an expected-value model — no RNG, no per-frame outcomes — so a
// lossy flow run is smooth where a lossy packet run is bursty; the
// cross-validation band covers the difference. Fault features that name
// individual frames or links (scripts, per-link rules, duplication,
// jitter) have no per-flow expectation worth committing to and are
// rejected.
func (m *Machine) SetFaults(fc fault.Config) error {
	if !fc.Enabled() {
		m.lossP = 0
		return nil
	}
	if len(fc.Links) > 0 || len(fc.Scripts) > 0 || fc.Dup != 0 || fc.JitterP != 0 {
		return fmt.Errorf("flow: only a uniform drop rule is modeled (got %+v)", fc)
	}
	if fc.Drop < 0 || fc.Drop >= 1 {
		return fmt.Errorf("flow: drop probability %v out of [0,1)", fc.Drop)
	}
	m.lossP = fc.Drop
	return nil
}

// Reset returns the machine (and its Net) to the just-built state.
func (m *Machine) Reset() {
	for i := range m.Busy {
		m.Busy[i] = 0
		m.Intr[i] = 0
		m.SigUntil[i] = 0
		m.nicFree[i] = 0
		m.outst[i] = 0
		q := &m.waitq[i]
		for j := q.h; j < len(q.q); j++ {
			q.q[j] = nil
		}
		q.q, q.h = q.q[:0], 0
		m.recvPend[i] = m.recvPend[i][:0]
	}
	m.lossP = 0
	m.hostStall, m.recvStall, m.expRetr = 0, 0, 0
	m.Net.Reset()
}

// Tokens reports the token-accounting totals: sends stalled for a send
// token, deliveries stalled for a receive token, and the loss model's
// expected retransmitted-frame count.
func (m *Machine) Tokens() (hostStalls, recvStalls uint64, expRetransmits float64) {
	return m.hostStall, m.recvStall, m.expRetr
}

// frames returns the wire-frame count of a payload (gm fragments at
// MaxPayload).
func (m *Machine) frames(payload int) int {
	if payload <= m.maxFrame {
		return 1
	}
	return (payload + m.maxFrame - 1) / m.maxFrame
}

// lossLat returns the expected retransmission latency for nf frames
// crossing `switches` crossbar stages, zero on a clean fabric.
func (m *Machine) lossLat(nf, switches int) (sim.Time, float64) {
	if m.lossP == 0 {
		return 0, 0
	}
	rto := relBaseRTO + sim.Time(switches-1)*relHopRTO
	ev := float64(nf) * m.lossP / (1 - m.lossP)
	return sim.Time(ev * float64(rto)), ev
}

// gm's reliability constants (internal/gm/reliability.go), mirrored so
// the loss expectation uses the exact timeout the packet engine arms.
const (
	relBaseRTO = 150 * sim.Time(1000)
	relHopRTO  = 25 * sim.Time(1000)
)

// msg is one in-flight Send: a pooled Runner for its NIC injection
// instant and the Handler for its own flow completion.
type msg struct {
	m       *Machine
	src     int32
	dst     int32
	payload int32
	extra   sim.Time
	h       Handler
	tag     uint64
}

// RunEvent fires at the source NIC's injection instant: take a send
// token (or queue for one) and start the flow.
func (ms *msg) RunEvent() {
	m := ms.m
	if int(m.outst[ms.src]) >= m.SendTokens {
		m.hostStall++
		m.waitq[ms.src].q = append(m.waitq[ms.src].q, ms)
		return
	}
	m.launch(ms)
}

// launch starts ms's flow, holding one of src's send tokens.
func (m *Machine) launch(ms *msg) {
	m.outst[ms.src]++
	if ms.src == ms.dst {
		// Loopback never crosses the fabric: the NIC deposits locally.
		ms.FlowEvent(0, m.K.Now())
		return
	}
	wire := int(ms.payload) + HeaderBytes*m.frames(int(ms.payload))
	m.Net.Start(int(ms.src), int(ms.dst), wire, ms.extra, ms, 0)
}

// FlowEvent completes ms's transfer at time end: return the send token
// (launching the next queued send, if any), serialize through the
// destination NIC under the receive-token gate, and hand the delivery
// time to the user handler.
func (ms *msg) FlowEvent(_ uint64, end sim.Time) {
	m := ms.m
	m.outst[ms.src]--
	if q := &m.waitq[ms.src]; q.h < len(q.q) {
		next := q.q[q.h]
		q.q[q.h] = nil
		q.h++
		if q.h == len(q.q) {
			q.q, q.h = q.q[:0], 0
		}
		m.launch(next)
	}

	dst := int(ms.dst)
	start := end
	if m.nicFree[dst] > start {
		start = m.nicFree[dst]
	}
	if rp := m.recvPend[dst]; m.RecvTokens > 0 && len(rp) >= m.RecvTokens {
		if g := rp[len(rp)-m.RecvTokens]; g > start {
			m.recvStall++
			start = g
		}
	}
	tr := start + m.CMs[dst].NICPkt(int(ms.payload))
	m.nicFree[dst] = tr

	h, tag := ms.h, ms.tag
	ms.h = nil
	m.mfree = append(m.mfree, ms)
	h.FlowEvent(tag, tr)
}

// Send transfers payload bytes from src to dst, with the NIC picking
// the message up at host time `at` (clamped to the NIC's own timeline).
// h.FlowEvent(tag, deliveredAt) fires when the destination NIC has
// deposited the message; the handler must call ReleaseRecv(dst, t) with
// the host's buffer-return time before it returns, keeping the
// receive-token ledger aligned with deliveries.
func (m *Machine) Send(at sim.Time, src, dst, payload int, h Handler, tag uint64) {
	cm := m.CMs[src]
	tn := at
	if m.nicFree[src] > tn {
		tn = m.nicFree[src]
	}
	tn += cm.NICPkt(payload)
	m.nicFree[src] = tn

	var ms *msg
	if n := len(m.mfree); n > 0 {
		ms = m.mfree[n-1]
		m.mfree = m.mfree[:n-1]
	} else {
		ms = &msg{m: m}
	}
	ms.src, ms.dst = int32(src), int32(dst)
	ms.payload = int32(payload)
	ms.h, ms.tag = h, tag
	ms.extra = 0
	if m.lossP != 0 && src != dst {
		sw := 1
		if m.Net.T != nil {
			sw = m.Net.T.Hops(src, dst)
		}
		lat, ev := m.lossLat(m.frames(payload), sw)
		ms.extra = lat
		m.expRetr += ev
	}

	d := tn - m.K.Now()
	if d < 0 {
		panic("flow: Send in the virtual past")
	}
	m.K.AfterRunner(d, ms)
}

// ReleaseRecv records that dst's host returned a delivered message's
// buffer at time t — one call per delivery, in delivery order.
func (m *Machine) ReleaseRecv(dst int, t sim.Time) {
	rp := append(m.recvPend[dst], t)
	// Only the last RecvTokens entries can ever gate; prune in bulk.
	if tok := m.RecvTokens; tok > 0 && len(rp) > 4*tok {
		rp = rp[:copy(rp, rp[len(rp)-tok:])]
	}
	m.recvPend[dst] = rp
}

// timer is a pooled WakeAt event.
type timer struct {
	m   *Machine
	h   Handler
	tag uint64
	at  sim.Time
}

// RunEvent delivers the wakeup.
func (t *timer) RunEvent() {
	m, h, tag, at := t.m, t.h, t.tag, t.at
	t.h = nil
	m.tfree = append(m.tfree, t)
	h.FlowEvent(tag, at)
}

// WakeAt schedules h.FlowEvent(tag, t) at virtual time t (>= now).
func (m *Machine) WakeAt(t sim.Time, h Handler, tag uint64) {
	var tm *timer
	if n := len(m.tfree); n > 0 {
		tm = m.tfree[n-1]
		m.tfree = m.tfree[:n-1]
	} else {
		tm = &timer{m: m}
	}
	tm.h, tm.tag, tm.at = h, tag, t
	d := t - m.K.Now()
	if d < 0 {
		panic("flow: WakeAt in the virtual past")
	}
	m.K.AfterRunner(d, tm)
}

// HostRun charges cost on rank r's host timeline starting no earlier
// than at, returning the completion time.
func (m *Machine) HostRun(r int, at, cost sim.Time) sim.Time {
	t := m.Busy[r]
	if at > t {
		t = at
	}
	t += cost
	m.Busy[r] = t
	return t
}

// HostIntr is HostRun for asynchronous handler work that interrupts the
// application: the cost also accrues to the rank's interrupt ledger,
// which the spin-segment drivers consume (see bench's flow path).
func (m *Machine) HostIntr(r int, at, cost sim.Time) sim.Time {
	t := m.HostRun(r, at, cost)
	m.Intr[r] += cost
	return t
}
