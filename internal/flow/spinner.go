package flow

import "abred/internal/sim"

// Spinner models interruptible busy-spins on flow-machine host clocks —
// the flow image of the packet engine's Proc.SpinInterruptible. A spin
// of budget b started at t ends at t+b plus whatever interrupt-handler
// time accrued on the rank's Intr ledger while it ran: the handler work
// displaces the spin's useful cycles exactly as a real signal handler
// displaces a busy loop. Drivers (bench, workload) start spins and get
// a callback when each settles, along with the interrupt time absorbed.
type Spinner struct {
	m  *Machine
	st []spinState

	// Done receives the settled spin: rank, settle time, and the
	// interrupt-handler time that landed inside the spin.
	Done func(r int, t, intr sim.Time)
}

type spinState struct {
	start    sim.Time
	budget   sim.Time
	intrMark sim.Time
}

// NewSpinner returns a spinner over n ranks of machine m.
func NewSpinner(m *Machine, n int, done func(r int, t, intr sim.Time)) *Spinner {
	return &Spinner{m: m, st: make([]spinState, n), Done: done}
}

// Start begins a spin on rank r at host time t for the given budget.
func (s *Spinner) Start(r int, t, budget sim.Time) {
	s.st[r] = spinState{start: t, budget: budget, intrMark: s.m.Intr[r]}
	s.m.HostRun(r, t, 0)
	s.m.WakeAt(r, t+budget, s, uint64(r))
}

// FlowEvent is the spin-end check: if handler time accrued since the
// spin began, the end moves correspondingly later — re-arm at the
// extended end until it settles.
func (s *Spinner) FlowEvent(tag uint64, at sim.Time) {
	r := int(tag)
	st := &s.st[r]
	want := st.start + st.budget + (s.m.Intr[r] - st.intrMark)
	if want > at {
		s.m.WakeAt(r, want, s, tag)
		return
	}
	s.m.HostRun(r, at, 0)
	s.Done(r, at, s.m.Intr[r]-st.intrMark)
}
