package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	xs := []time.Duration{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]time.Duration{42})
	if s.Mean != 42 || s.Min != 42 || s.Max != 42 || s.Std != 0 || s.P99 != 42 {
		t.Errorf("single summary = %+v", s)
	}
}

// TestSummaryInvariants checks Min ≤ P50 ≤ P95 ≤ P99 ≤ Max and
// Min ≤ Mean ≤ Max for arbitrary samples.
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]time.Duration, len(raw))
		for i, v := range raw {
			xs[i] = time.Duration(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max+1 // +1 absorbs float truncation at Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty must be 0")
	}
	if Mean([]time.Duration{10, 20, 30}) != 20 {
		t.Error("mean wrong")
	}
	if MeanFloat([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("float mean wrong")
	}
	if MeanFloat(nil) != 0 {
		t.Error("float mean of empty must be 0")
	}
}

func TestStdDev(t *testing.T) {
	s := Summarize([]time.Duration{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Std != 2 {
		t.Errorf("std = %v, want 2", s.Std)
	}
}

// TestStdLargeMean pins the Welford variance against catastrophic
// cancellation: a sample whose mean (~1e13 ns, a typical virtual
// timestamp) dwarfs its spread (~10 ns) loses every significant digit
// of the variance to the E[x²]−E[x]² subtraction in float64.
func TestStdLargeMean(t *testing.T) {
	base := time.Duration(1e13)
	s := Summarize([]time.Duration{base - 10, base, base + 10})
	want := math.Sqrt(200.0 / 3.0) // population std of {-10, 0, +10}
	if got := float64(s.Std); math.Abs(got-want) > 0.5 {
		t.Errorf("Std = %v ns, want ≈%.2f ns", got, want)
	}
	if s.Mean != base {
		t.Errorf("Mean = %v, want %v", s.Mean, base)
	}
}

// TestWelfordConsistency cross-checks the one-pass Welford recurrence
// against a two-pass reference (mean first, then centered squared
// deviations) on arbitrary samples, and pins the percentile fields to
// their nearest-rank definition: each Pq is a member of the sample, and
// at least ⌈q·N⌉ sample points lie at or below it.
func TestWelfordConsistency(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]time.Duration, len(raw))
		member := make(map[time.Duration]bool, len(raw))
		var sum float64
		for i, v := range raw {
			xs[i] = time.Duration(v)
			member[xs[i]] = true
			sum += float64(v)
		}
		s := Summarize(xs)
		mean := sum / float64(len(xs))
		var m2 float64
		for _, x := range xs {
			d := float64(x) - mean
			m2 += d * d
		}
		std := math.Sqrt(m2 / float64(len(xs)))
		if math.Abs(float64(s.Mean)-mean) > 1 {
			t.Logf("mean: one-pass %v, two-pass %.2f", s.Mean, mean)
			return false
		}
		if math.Abs(float64(s.Std)-std) > 1+1e-9*std {
			t.Logf("std: one-pass %v, two-pass %.2f", s.Std, std)
			return false
		}
		for _, pq := range []struct {
			q float64
			v time.Duration
		}{{0.50, s.P50}, {0.95, s.P95}, {0.99, s.P99}} {
			if !member[pq.v] {
				t.Logf("P%.0f = %v is not a sample member", pq.q*100, pq.v)
				return false
			}
			atOrBelow := 0
			for _, x := range xs {
				if x <= pq.v {
					atOrBelow++
				}
			}
			if atOrBelow < int(math.Ceil(pq.q*float64(len(xs)))) {
				t.Logf("P%.0f = %v covers %d/%d", pq.q*100, pq.v, atOrBelow, len(xs))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPercentilesTable pins the nearest-rank definition on explicit
// samples, N=1 and other tiny sizes included: Pq is sample member
// number ⌈q·N⌉ (1-based) of the ascending order.
func TestPercentilesTable(t *testing.T) {
	cases := []struct {
		name          string
		xs            []time.Duration
		p50, p95, p99 time.Duration
	}{
		{"n1", []time.Duration{7}, 7, 7, 7},
		{"n2", []time.Duration{20, 10}, 10, 20, 20},
		{"n3", []time.Duration{3, 1, 2}, 2, 3, 3},
		{"n4-ties", []time.Duration{5, 5, 1, 5}, 5, 5, 5},
		{"n10", []time.Duration{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 5, 10, 10},
		{"n20", seq(20), 10, 19, 20},
		{"n100", seq(100), 50, 95, 99},
		{"n101", seq(101), 51, 96, 100},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := Summarize(c.xs)
			if s.P50 != c.p50 || s.P95 != c.p95 || s.P99 != c.p99 {
				t.Errorf("percentiles = %v/%v/%v, want %v/%v/%v",
					s.P50, s.P95, s.P99, c.p50, c.p95, c.p99)
			}
		})
	}
}

// seq returns {1..n} in descending order (Summarize must sort).
func seq(n int) []time.Duration {
	xs := make([]time.Duration, n)
	for i := range xs {
		xs[i] = time.Duration(n - i)
	}
	return xs
}

// TestCI95TinyN pins the confidence-interval edge cases: a single
// point has no interval (CI95 = 0 — one timing is not a statistic), a
// constant sample has a zero-width interval, and the first real case
// (N=2) matches the closed form 1.96·s/√2 with the n−1 sample std.
func TestCI95TinyN(t *testing.T) {
	cases := []struct {
		name string
		xs   []time.Duration
		want float64
	}{
		{"n1", []time.Duration{1000}, 0},
		{"n2-constant", []time.Duration{500, 500}, 0},
		{"n2", []time.Duration{100, 200}, 1.96 * math.Sqrt(5000) / math.Sqrt(2)},
		{"n3", []time.Duration{10, 20, 30}, 1.96 * 10 / math.Sqrt(3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := Summarize(c.xs)
			if got := float64(s.CI95); math.Abs(got-c.want) > 1 {
				t.Errorf("CI95 = %v, want %.1f", got, c.want)
			}
		})
	}
	// The float path must agree on the same tiny samples.
	if s := SummarizeFloats([]float64{1000}); s.CI95 != 0 {
		t.Errorf("float n1 CI95 = %v, want 0", s.CI95)
	}
	if s := SummarizeFloats([]float64{10, 20, 30}); math.Abs(s.CI95-1.96*10/math.Sqrt(3)) > 1e-9 {
		t.Errorf("float n3 CI95 = %v", s.CI95)
	}
}

func TestMicros(t *testing.T) {
	if got := Micros(1500 * time.Nanosecond); got != "1.5" {
		t.Errorf("Micros = %q", got)
	}
	if got := Micros(2 * time.Millisecond); got != "2000.0" {
		t.Errorf("Micros = %q", got)
	}
}
