package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestConvergeInjectedNoise drives the convergence loop with injected
// noisy timings: a seeded normal sample around 100µs with 2µs of noise.
// The relative half-width shrinks as 1/√n, so the loop must stop on its
// own, converged, with at least MinReps draws — and the summary must
// describe exactly the draws taken.
func TestConvergeInjectedNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	calls := 0
	c := Converge(ConvergeOpts{RelCI: 0.05, MinReps: 3, MaxReps: 64}, func(rep int) float64 {
		if rep != calls {
			t.Fatalf("rep %d delivered out of order (want %d)", rep, calls)
		}
		calls++
		return 100 + 2*rng.NormFloat64()
	})
	if !c.Converged || c.Stopped != StopConverged {
		t.Fatalf("noisy sample did not converge: %+v", c)
	}
	if len(c.Xs) != calls || c.Summary.N != calls {
		t.Fatalf("summary over %d, drew %d", c.Summary.N, calls)
	}
	if calls < 3 {
		t.Fatalf("declared convergence after %d reps, MinReps 3", calls)
	}
	if rel := c.Summary.RelCI95(); rel > 0.05 {
		t.Fatalf("converged with relative CI %v > target", rel)
	}
}

// TestConvergeHighVariance: an alternating high-variance sequence whose
// relative half-width never reaches the target must stop at MaxReps
// with Converged false.
func TestConvergeHighVariance(t *testing.T) {
	c := Converge(ConvergeOpts{RelCI: 0.01, MinReps: 3, MaxReps: 8}, func(rep int) float64 {
		if rep%2 == 0 {
			return 10
		}
		return 1000
	})
	if c.Converged || c.Stopped != StopMaxReps {
		t.Fatalf("high-variance sample claimed convergence: %+v", c)
	}
	if len(c.Xs) != 8 {
		t.Fatalf("drew %d reps, budget 8", len(c.Xs))
	}
}

// TestConvergeConstant: a constant sample has a zero half-width and
// must converge at exactly MinReps — including the all-zero sample,
// whose relative CI is 0/0 and defined as converged.
func TestConvergeConstant(t *testing.T) {
	for _, v := range []float64{42, 0} {
		c := Converge(ConvergeOpts{MinReps: 4, MaxReps: 32}, func(rep int) float64 { return v })
		if !c.Converged || len(c.Xs) != 4 {
			t.Fatalf("constant %v: %+v", v, c)
		}
	}
}

// TestConvergeBudget: a wall budget stops a non-converging sample
// between repetitions.
func TestConvergeBudget(t *testing.T) {
	c := Converge(ConvergeOpts{RelCI: 0.001, MinReps: 2, MaxReps: 1000, Budget: 30 * time.Millisecond},
		func(rep int) float64 {
			time.Sleep(5 * time.Millisecond)
			return float64(1 + rep%2*1000)
		})
	if c.Converged || c.Stopped != StopBudget {
		t.Fatalf("budgeted run: %+v", c)
	}
	if len(c.Xs) >= 1000 {
		t.Fatalf("budget did not bound the repetitions: %d", len(c.Xs))
	}
}

// TestConvergeDefaults pins the documented zero-value defaults.
func TestConvergeDefaults(t *testing.T) {
	d := ConvergeOpts{}.Defaults()
	if d.RelCI != 0.05 || d.MinReps != 3 || d.MaxReps != 32 || d.Budget != 0 {
		t.Fatalf("defaults = %+v", d)
	}
	if d = (ConvergeOpts{MinReps: 10, MaxReps: 5}).Defaults(); d.MaxReps != 10 {
		t.Fatalf("MaxReps not clamped to MinReps: %+v", d)
	}
}

// TestSummarizeFloatsMatchesDurations cross-checks the float summary
// against the duration summary on the same sample.
func TestSummarizeFloatsMatchesDurations(t *testing.T) {
	xs := []time.Duration{2, 4, 4, 4, 5, 5, 7, 9}
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	ds, ss := Summarize(xs), SummarizeFloats(fs)
	if ss.N != ds.N || ss.Mean != float64(ds.Mean) || math.Abs(ss.Std-2) > 1e-9 ||
		ss.P50 != float64(ds.P50) || ss.P95 != float64(ds.P95) || ss.P99 != float64(ds.P99) ||
		math.Abs(ss.CI95-float64(ds.CI95)) > 1 {
		t.Fatalf("float summary %+v disagrees with duration summary %+v", ss, ds)
	}
}

func TestRelCI95(t *testing.T) {
	if r := (FloatSummary{}).RelCI95(); r != 0 {
		t.Errorf("zero summary RelCI95 = %v", r)
	}
	if r := (FloatSummary{CI95: 1}).RelCI95(); !math.IsInf(r, 1) {
		t.Errorf("zero-mean nonzero-CI RelCI95 = %v, want +Inf", r)
	}
	if r := (FloatSummary{Mean: -200, CI95: 10}).RelCI95(); r != 0.05 {
		t.Errorf("RelCI95 = %v, want 0.05 (negative means use |mean|)", r)
	}
}
