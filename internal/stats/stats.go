// Package stats provides the small set of summary statistics the
// benchmark harness reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample of durations.
type Summary struct {
	N                   int
	Mean, Min, Max, Std time.Duration
	P50, P95, P99       time.Duration

	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval on the mean (1.96·σ/√n), the interval the benchmarking
	// methodology of Hunold & Carpen-Amarie asks for in place of single
	// walls. Zero for samples of fewer than two points.
	CI95 time.Duration
}

// Summarize computes a Summary; it returns the zero value for an empty
// sample.
func Summarize(xs []time.Duration) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	// Welford's one-pass recurrence: the textbook E[x²]−E[x]² form
	// cancels catastrophically when the mean dwarfs the spread (sample
	// timestamps near 1e13 ns with ~10 ns of jitter lose every
	// significant digit of the variance to the subtraction).
	var mean, m2 float64
	for i, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		f := float64(x)
		d := f - mean
		mean += d / float64(i+1)
		m2 += d * (f - mean)
	}
	s.Mean = time.Duration(mean)
	variance := m2 / float64(len(xs))
	if variance > 0 {
		s.Std = time.Duration(math.Sqrt(variance))
	}
	if len(xs) > 1 && variance > 0 {
		// Sample variance (n-1) for the interval: the population Std
		// above stays byte-compatible with what earlier figures record.
		sampleStd := math.Sqrt(m2 / float64(len(xs)-1))
		s.CI95 = time.Duration(1.96 * sampleStd / math.Sqrt(float64(len(xs))))
	}
	sorted := append([]time.Duration(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile reads the p-quantile from an ascending sample using
// nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean averages a duration sample.
func Mean(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return time.Duration(sum / float64(len(xs)))
}

// MeanFloat averages a float sample.
func MeanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Micros renders a duration as microseconds with one decimal.
func Micros(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}
