package stats

import (
	"math"
	"sort"
	"time"
)

// FloatSummary describes a float64 sample the same way Summary
// describes a duration sample: one-pass Welford moments, nearest-rank
// percentiles, and the normal-approximation 95% confidence half-width
// on the mean. It is the unit-agnostic form the scenario server reports
// per metric (microseconds, counts, ratios).
type FloatSummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// SummarizeFloats computes a FloatSummary; it returns the zero value
// for an empty sample. Like Summarize, Std is the population standard
// deviation while CI95 uses the n−1 sample variance, and the
// percentiles are nearest-rank (always members of the sample). CI95 is
// zero for samples of fewer than two points.
func SummarizeFloats(xs []float64) FloatSummary {
	if len(xs) == 0 {
		return FloatSummary{}
	}
	s := FloatSummary{N: len(xs), Min: xs[0], Max: xs[0]}
	var mean, m2 float64
	for i, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
	}
	s.Mean = mean
	variance := m2 / float64(len(xs))
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	if len(xs) > 1 && variance > 0 {
		sampleStd := math.Sqrt(m2 / float64(len(xs)-1))
		s.CI95 = 1.96 * sampleStd / math.Sqrt(float64(len(xs)))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentileFloat(sorted, 0.50)
	s.P95 = percentileFloat(sorted, 0.95)
	s.P99 = percentileFloat(sorted, 0.99)
	return s
}

// percentileFloat reads the p-quantile from an ascending sample using
// nearest-rank.
func percentileFloat(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RelCI95 is the relative confidence half-width CI95/|Mean| — the
// quantity the Hunold & Carpen-Amarie repetition methodology drives to
// a target before a number may be reported. A degenerate sample with
// zero mean reports 0 when its half-width is also zero (a constant
// all-zero sample is perfectly converged) and +Inf otherwise.
func (s FloatSummary) RelCI95() float64 {
	if s.Mean == 0 {
		if s.CI95 == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return s.CI95 / math.Abs(s.Mean)
}

// ConvergeOpts bounds a Converge run. The zero value means: 5% target
// relative half-width, at least 3 and at most 32 repetitions, no wall
// budget.
type ConvergeOpts struct {
	RelCI   float64       // target CI95/|mean|; <= 0 means 0.05
	MinReps int           // repetitions before convergence may be declared; <= 0 means 3
	MaxReps int           // hard repetition budget; <= 0 means 32
	Budget  time.Duration // wall-clock budget; 0 means unlimited
}

// Defaults returns o with unset fields replaced by the documented
// defaults and MaxReps clamped to at least MinReps.
func (o ConvergeOpts) Defaults() ConvergeOpts {
	if o.RelCI <= 0 {
		o.RelCI = 0.05
	}
	if o.MinReps <= 0 {
		o.MinReps = 3
	}
	if o.MaxReps <= 0 {
		o.MaxReps = 32
	}
	if o.MaxReps < o.MinReps {
		o.MaxReps = o.MinReps
	}
	return o
}

// Stop reasons a Convergence reports.
const (
	StopConverged = "converged" // relative CI95 half-width under target
	StopMaxReps   = "maxreps"   // repetition budget exhausted first
	StopBudget    = "budget"    // wall-clock budget exhausted first
)

// Convergence is the outcome of an adaptive-repetition run.
type Convergence struct {
	Xs        []float64    // every sample drawn, in repetition order
	Summary   FloatSummary // summary of Xs
	Converged bool         // the target relative half-width was reached
	Stopped   string       // StopConverged, StopMaxReps or StopBudget
}

// Converge repeats sample until the relative CI95 half-width of the
// collected measurements drops below the target, per the "MPI
// Benchmarking Revisited" methodology: a single-shot timing is not a
// result, and a mean without a converged confidence interval is not
// defensible. sample(rep) must produce repetition rep's measurement
// (typically a fresh run under a rep-derived seed); it is called
// MinReps..MaxReps times, one at a time, with the interval re-tested
// after each draw once MinReps have accumulated. A wall budget, when
// set, is checked between repetitions, so one repetition beyond the
// budget may still run to completion.
//
// With a deterministic sample function the entire trajectory — the
// repetition count, every sample, the final summary — is a pure
// function of (opts, sample), which is what lets the scenario server
// cache converged responses byte-for-byte.
func Converge(opts ConvergeOpts, sample func(rep int) float64) Convergence {
	opts = opts.Defaults()
	start := time.Now()
	var c Convergence
	for rep := 0; rep < opts.MaxReps; rep++ {
		c.Xs = append(c.Xs, sample(rep))
		if len(c.Xs) >= opts.MinReps {
			c.Summary = SummarizeFloats(c.Xs)
			if c.Summary.RelCI95() <= opts.RelCI {
				c.Converged = true
				c.Stopped = StopConverged
				return c
			}
		}
		if opts.Budget > 0 && time.Since(start) >= opts.Budget {
			c.Summary = SummarizeFloats(c.Xs)
			c.Stopped = StopBudget
			return c
		}
	}
	c.Summary = SummarizeFloats(c.Xs)
	c.Stopped = StopMaxReps
	return c
}
