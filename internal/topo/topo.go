// Package topo describes the switching fabric's physical topology and
// computes deterministic shortest-path routes through it.
//
// The paper's testbed interconnect was Myrinet-2000, whose "switch" is
// a Clos network built from 16-port crossbars; a frame between distant
// hosts crosses several crossbar stages and contends with other flows
// at shared inter-switch links. Three topologies are modeled:
//
//   - Crossbar: one infinite-radix cut-through crossbar — the original
//     fabric model and the default. No inter-switch links exist; the
//     fabric keeps its historical (byte-identical) code path.
//   - FatTree: a folded Clos built from k-port crossbars, each with
//     m = k/2 down-ports and m up-ports. Hosts hang off leaf switches
//     in groups of m; levels are added until m^levels >= n, so 16-port
//     switches reach 16384 hosts in five stages, like a real
//     Myrinet-2000 Clos spine. The network has full bisection: a
//     subtree of m^l hosts at level l is served by m^l parallel
//     switches.
//   - LeafSpine: the idealized two-level datacenter fabric — leaves of
//     r hosts, r spine switches, every leaf wired to every spine. The
//     spine tier is never more than one crossing away regardless of
//     scale (spine radix is left unconstrained — this is the textbook
//     abstraction, not a buildable switch).
//
// Routing is up/down (the only shortest paths in a Clos) with
// destination-digit up-path selection — "D-mod-k", the deterministic
// ECMP collapse used by InfiniBand fat-tree routing engines: at climb
// level l the packet takes the uplink indexed by digit l of the
// destination's base-m address. The choice makes every route a pure
// function of (src, dst), computable from per-destination tables built
// once at construction time, and concentrates fan-in traffic exactly
// where a deterministically routed Clos concentrates it: all flows to
// one destination share that destination's down-path links, and
// leaf-mates sending to the same destination share their leaf's
// uplink. That is the contention the topology sweep measures.
package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind selects the fabric topology family.
type Kind uint8

// Topology kinds. The zero value is the single crossbar — the model
// every existing configuration implicitly used.
const (
	Crossbar Kind = iota
	FatTree
	LeafSpine
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crossbar:
		return "crossbar"
	case FatTree:
		return "fattree"
	case LeafSpine:
		return "leafspine"
	}
	return "?"
}

// Spec declares a topology. It is a comparable value type so it can key
// cluster pools and Reset mismatch checks. The zero Spec is the single
// crossbar.
type Spec struct {
	Kind Kind
	// K is the switch radix parameter: for FatTree the total ports per
	// switch (even, >= 4; m = K/2 per direction), for LeafSpine the
	// hosts per leaf switch (>= 2; also the number of spines).
	K int
	// Oversub is the oversubscription ratio of the inter-switch tiers:
	// each switch keeps 1/Oversub of its full-bisection up-links (never
	// fewer than one), so a ratio of 4 means 4:1 — four hosts' worth of
	// traffic funnel onto one up-link's worth of capacity, the tapered
	// Clos every production datacenter runs. 0 and 1 both mean full
	// bisection (the historical byte-identical fabric); Norm collapses
	// them to one canonical value so pool keys and Reset checks treat
	// them as the same shape. Meaningless on the crossbar (no
	// inter-switch links), and rejected there when > 1.
	Oversub int
}

// Norm returns the canonical form of the spec: Oversub 0 and 1 both
// describe full bisection, so both normalize to 0 (keeping the zero
// Spec the zero value). Every comparison that treats Spec as a shape
// key (cluster pools, Reset checks) goes through Norm.
func (s Spec) Norm() Spec {
	if s.Oversub <= 1 {
		s.Oversub = 0
	}
	return s
}

// String renders the flag form: "crossbar", "fattree:16",
// "leafspine:8", with an ":oN" suffix on oversubscribed fabrics
// ("fattree:16:o4" is a 4:1 tapered fat-tree).
func (s Spec) String() string {
	var b string
	switch s.Kind {
	case Crossbar:
		return "crossbar"
	case FatTree:
		b = "fattree:" + strconv.Itoa(s.K)
	case LeafSpine:
		b = "leafspine:" + strconv.Itoa(s.K)
	default:
		return "?"
	}
	if s.Oversub > 1 {
		b += ":o" + strconv.Itoa(s.Oversub)
	}
	return b
}

// ParseSpec parses the -topo flag syntax: "crossbar" (or ""),
// "fattree:k" and "leafspine:r", each optionally suffixed with an
// oversubscription ratio as ":oN" ("fattree:16:o4").
func ParseSpec(s string) (Spec, error) {
	if s == "" || s == "crossbar" {
		return Spec{}, nil
	}
	name, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Spec{}, fmt.Errorf("topo: %q: want crossbar, fattree:k or leafspine:r", s)
	}
	arg, osuf, hasO := strings.Cut(rest, ":")
	k, err := strconv.Atoi(arg)
	if err != nil {
		return Spec{}, fmt.Errorf("topo: %q: bad parameter %q", s, arg)
	}
	oversub := 0
	if hasO {
		if !strings.HasPrefix(osuf, "o") {
			return Spec{}, fmt.Errorf("topo: %q: bad oversubscription suffix %q (want oN)", s, osuf)
		}
		oversub, err = strconv.Atoi(osuf[1:])
		if err != nil {
			return Spec{}, fmt.Errorf("topo: %q: bad oversubscription ratio %q", s, osuf)
		}
	}
	var spec Spec
	switch name {
	case "fattree":
		spec = Spec{Kind: FatTree, K: k, Oversub: oversub}
	case "leafspine":
		spec = Spec{Kind: LeafSpine, K: k, Oversub: oversub}
	default:
		return Spec{}, fmt.Errorf("topo: unknown topology %q", name)
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec.Norm(), nil
}

// Validate reports whether the spec describes a buildable topology.
// Exported so configuration layers (cluster.Config.Validate, flag
// parsing) can reject a bad spec with an error instead of hitting
// Build's panic.
func (s Spec) Validate() error {
	if s.Oversub < 0 {
		return fmt.Errorf("topo: negative oversubscription ratio %d", s.Oversub)
	}
	switch s.Kind {
	case Crossbar:
		if s.Oversub > 1 {
			return fmt.Errorf("topo: the crossbar has no inter-switch links to oversubscribe (ratio %d)", s.Oversub)
		}
		return nil
	case FatTree:
		if s.K < 4 || s.K%2 != 0 {
			return fmt.Errorf("topo: fattree needs an even switch radix >= 4, got %d", s.K)
		}
	case LeafSpine:
		if s.K < 2 {
			return fmt.Errorf("topo: leafspine needs >= 2 hosts per leaf, got %d", s.K)
		}
	default:
		return fmt.Errorf("topo: unknown kind %d", s.Kind)
	}
	return nil
}

// MaxHops bounds the inter-switch links on any route: 2*(levels-1) for
// the deepest tree Build accepts.
const MaxHops = 32

// Path is one routed frame's traversal: the directed inter-switch links
// in order (up-links first, then down-links) plus the number of switch
// crossings. It is a fixed-size value so routing stays allocation-free.
type Path struct {
	Links    [MaxHops]int32
	N        int // inter-switch links used (0 on a single-switch route)
	Switches int // crossbar stages crossed (1 on a single-switch route)
}

// Topology is a built fabric graph with its routing tables.
type Topology struct {
	spec   Spec
	n      int
	m      int   // down-ports (and up-ports) per switch; 0 for crossbar
	levels int   // switch tiers; 1 = every host on one switch
	pow    []int // pow[l] = m^l, l in 0..levels
	upBase []int // first up-link id of climb level l
	dnBase []int // first down-link id of descent level l
	// lcap[l] is the number of distinct up-links (and down-links) each
	// subtree of pow[l+1] hosts keeps at climb level l: the full
	// bisection pow[l+1] divided by the oversubscription ratio (floored,
	// never below one). At ratio 1 this is exactly pow[l+1] and the link
	// numbering is byte-identical to the pre-oversubscription scheme; at
	// higher ratios the D-mod-k link choice is collapsed modulo lcap, so
	// the same wire-speed links carry more flows and the per-port FIFO
	// queues — not a slower wire — model the taper.
	lcap   []int
	nLinks int

	// Per-destination routing tables, levels-1 entries per host:
	// dnLink[dst*(levels-1)+l] is the directed link from the level-(l+1)
	// switch down into the level-l switch toward dst; upOff holds the
	// dst-determined part of the up-link id at climb level l (the src
	// contributes only its subtree prefix).
	dnLink []int32
	upOff  []int32
}

// Build constructs the topology for n hosts. Building is deterministic:
// the same (spec, n) always yields identical link numbering and routes,
// which the route-determinism tests pin down.
func Build(spec Spec, n int) *Topology {
	if n < 1 {
		panic(fmt.Sprintf("topo: %d hosts", n))
	}
	if err := spec.Validate(); err != nil {
		panic(err.Error())
	}
	spec = spec.Norm()
	t := &Topology{spec: spec, n: n, levels: 1}
	switch spec.Kind {
	case Crossbar:
		return t
	case FatTree:
		t.m = spec.K / 2
		for cap := t.m; cap < n; cap *= t.m {
			t.levels++
		}
	case LeafSpine:
		t.m = spec.K
		if n > t.m {
			t.levels = 2
		}
	}
	if 2*(t.levels-1) > MaxHops {
		panic(fmt.Sprintf("topo: %s with %d hosts needs %d stages (> %d hops)",
			spec, n, t.levels, MaxHops))
	}
	t.pow = make([]int, t.levels+1)
	t.pow[0] = 1
	for l := 1; l <= t.levels; l++ {
		t.pow[l] = t.pow[l-1] * t.m
	}
	oversub := spec.Oversub
	if oversub < 1 {
		oversub = 1
	}
	t.upBase = make([]int, t.levels-1)
	t.dnBase = make([]int, t.levels-1)
	t.lcap = make([]int, t.levels-1)
	for l := 0; l < t.levels-1; l++ {
		// Level-l switches: one group of pow[l] parallel switches per
		// subtree of pow[l+1] hosts, pow[l+1] = pow[l]*m uplinks between
		// them at full bisection (and symmetrically as many downlinks
		// from the tier above), tapered by the oversubscription ratio.
		lc := t.pow[l+1] / oversub
		if lc < 1 {
			lc = 1
		}
		t.lcap[l] = lc
		cnt := ((n + t.pow[l+1] - 1) / t.pow[l+1]) * lc
		t.upBase[l] = t.nLinks
		t.nLinks += cnt
		t.dnBase[l] = t.nLinks
		t.nLinks += cnt
	}
	t.dnLink = make([]int32, n*(t.levels-1))
	t.upOff = make([]int32, n*(t.levels-1))
	for dst := 0; dst < n; dst++ {
		for l := 0; l < t.levels-1; l++ {
			p := dst % t.pow[l]         // parallel switch index on dst's path
			r := (dst / t.pow[l]) % t.m // D-mod-k: digit l picks the parallel tier
			// Full-bisection port choice p*m+r, collapsed onto the
			// tapered link set; at ratio 1 the modulus is pow[l+1] and
			// the id is exactly the historical p*m+r.
			t.upOff[dst*(t.levels-1)+l] = int32((p*t.m + r) % t.lcap[l])
			t.dnLink[dst*(t.levels-1)+l] = int32(t.dnBase[l] + (dst/t.pow[l+1])*t.lcap[l] + (p*t.m+r)%t.lcap[l])
		}
	}
	return t
}

// Oversub returns the oversubscription ratio the topology was built
// with (1 = full bisection).
func (t *Topology) Oversub() int {
	if t.spec.Oversub > 1 {
		return t.spec.Oversub
	}
	return 1
}

// Nodes returns the host count.
func (t *Topology) Nodes() int { return t.n }

// Spec returns the declarative description the topology was built from.
func (t *Topology) Spec() Spec { return t.spec }

// Kind returns the topology family.
func (t *Topology) Kind() Kind { return t.spec.Kind }

// Levels returns the number of switch tiers (1 = single switch).
func (t *Topology) Levels() int { return t.levels }

// Links returns the number of directed inter-switch links; link ids in
// routed Paths are in [0, Links()). Zero for single-switch topologies.
func (t *Topology) Links() int { return t.nLinks }

// Leaf returns the leaf-switch index of a host; hosts sharing a leaf
// reach each other in one switch crossing. Single-switch topologies
// have one leaf.
func (t *Topology) Leaf(node int) int {
	if t.m == 0 || t.levels == 1 {
		return 0
	}
	return node / t.m
}

// Leaves returns the number of leaf switches.
func (t *Topology) Leaves() int {
	if t.m == 0 || t.levels == 1 {
		return 1
	}
	return (t.n + t.m - 1) / t.m
}

// Pods returns the number of top-level pods: the subtrees of
// pow[levels-1] hosts hanging off the root switch tier. Hosts in
// different pods route through the full climb, so every inter-pod path's
// up-links lie in the source pod and its down-links in the destination
// pod — pods are the natural partition boundary for parallel (PDES)
// execution. Single-switch topologies have one pod.
func (t *Topology) Pods() int {
	if t.levels == 1 {
		return 1
	}
	return (t.n + t.pow[t.levels-1] - 1) / t.pow[t.levels-1]
}

// PodOf returns the pod index of a host.
func (t *Topology) PodOf(node int) int {
	if t.levels == 1 {
		return 0
	}
	return node / t.pow[t.levels-1]
}

// Partition maps each host to one of at most parts logical processes,
// splitting along pod boundaries: pods are assigned to LPs contiguously
// and as evenly as possible, and a host never shares an LP boundary with
// its pod. The actual LP count (parts clamped to [1, Pods()]) is
// returned alongside the map. Deterministic in (topology, parts).
func (t *Topology) Partition(parts int) ([]int32, int) {
	np := t.Pods()
	if parts > np {
		parts = np
	}
	if parts < 1 {
		parts = 1
	}
	pmap := make([]int32, t.n)
	if parts > 1 {
		for i := 0; i < t.n; i++ {
			pmap[i] = int32(t.PodOf(i) * parts / np)
		}
	}
	return pmap, parts
}

// LinkOwners labels every directed inter-switch link with the logical
// process that owns it under pmap: the LP of the hosts in the subtree
// the link hangs off. Well-defined because Partition assigns whole pods
// — and therefore whole subtrees of pow[l+1] hosts, which never
// straddle a pod — to one LP. Combined with the up/down route shape
// (up-links in the source's subtrees, down-links in the destination's),
// this is the ownership map a pod-partitioned flow substrate shards
// its link state by.
func (t *Topology) LinkOwners(pmap []int32) []int32 {
	if len(pmap) != t.n {
		panic(fmt.Sprintf("topo: partition map for %d hosts on a %d-host topology", len(pmap), t.n))
	}
	own := make([]int32, t.nLinks)
	for l := 0; l < t.levels-1; l++ {
		cnt := (t.n + t.pow[l+1] - 1) / t.pow[l+1]
		for s := 0; s < cnt; s++ {
			lp := pmap[s*t.pow[l+1]]
			for j := 0; j < t.lcap[l]; j++ {
				own[t.upBase[l]+s*t.lcap[l]+j] = lp
				own[t.dnBase[l]+s*t.lcap[l]+j] = lp
			}
		}
	}
	return own
}

// climb returns the number of up-links on the route src -> dst: the
// lowest tier at which both share a subtree, clamped at the top tier
// (the clamp is what lets LeafSpine's spines see every leaf).
func (t *Topology) climb(src, dst int) int {
	a := 0
	for a < t.levels-1 && src/t.pow[a+1] != dst/t.pow[a+1] {
		a++
	}
	return a
}

// Hops returns the number of switch crossings from src to dst: 1 within
// a leaf (or on any single-switch topology), 2a+1 across a tiers. Hops
// is symmetric — the up/down route reversed is the reverse route.
func (t *Topology) Hops(src, dst int) int {
	if t.levels == 1 {
		return 1
	}
	return 2*t.climb(src, dst) + 1
}

// Route fills p with the directed inter-switch links of the src -> dst
// shortest path, up-links first. It allocates nothing; p's backing
// array is caller storage. Loopback and single-switch routes have no
// links and one switch crossing.
func (t *Topology) Route(src, dst int, p *Path) {
	if src < 0 || src >= t.n || dst < 0 || dst >= t.n {
		panic(fmt.Sprintf("topo: bad route %d -> %d (%d hosts)", src, dst, t.n))
	}
	if t.levels == 1 || src == dst {
		p.N = 0
		p.Switches = 1
		return
	}
	a := t.climb(src, dst)
	base := dst * (t.levels - 1)
	idx := 0
	for l := 0; l < a; l++ {
		p.Links[idx] = int32(t.upBase[l]+(src/t.pow[l+1])*t.lcap[l]) + t.upOff[base+l]
		idx++
	}
	for l := a - 1; l >= 0; l-- {
		p.Links[idx] = t.dnLink[base+l]
		idx++
	}
	p.N = idx
	p.Switches = 2*a + 1
}
