package topo

import "testing"

// TestPodsAndPodOf pins the pod structure each topology family exposes
// to the parallel kernel: top-level subtrees for routed fabrics, one
// trivial pod for the crossbar.
func TestPodsAndPodOf(t *testing.T) {
	cases := []struct {
		spec Spec
		n    int
		pods int
	}{
		{Spec{}, 32, 1},                    // crossbar: one pod
		{Spec{Kind: FatTree, K: 4}, 4, 2},  // two leaves under one spine
		{Spec{Kind: FatTree, K: 4}, 8, 2},  // three tiers, two top subtrees
		{Spec{Kind: FatTree, K: 8}, 64, 4}, //
		{Spec{Kind: FatTree, K: 16}, 16384, 4},
		{Spec{Kind: LeafSpine, K: 4}, 32, 8}, // every leaf is a pod
		{Spec{Kind: LeafSpine, K: 8}, 64, 8},
	}
	for _, tc := range cases {
		tp := Build(tc.spec, tc.n)
		if got := tp.Pods(); got != tc.pods {
			t.Errorf("%v n=%d: Pods() = %d, want %d", tc.spec, tc.n, got, tc.pods)
			continue
		}
		// PodOf must be a contiguous, nondecreasing cover of [0, Pods()).
		last := 0
		for i := 0; i < tc.n; i++ {
			p := tp.PodOf(i)
			if p < last || p > last+1 || p >= tc.pods {
				t.Fatalf("%v n=%d: PodOf(%d) = %d after pod %d", tc.spec, tc.n, i, p, last)
			}
			last = p
		}
		if last != tc.pods-1 {
			t.Errorf("%v n=%d: highest pod %d, want %d", tc.spec, tc.n, last, tc.pods-1)
		}
	}
}

// TestPartition pins the partition map the cluster builds LPs from:
// pod-aligned, contiguous, clamped to the pod count, and all-zero when
// it degenerates to one part.
func TestPartition(t *testing.T) {
	tp := Build(Spec{Kind: FatTree, K: 8}, 64) // 4 pods of 16
	pm, parts := tp.Partition(4)
	if parts != 4 || len(pm) != 64 {
		t.Fatalf("Partition(4) = parts %d, len %d", parts, len(pm))
	}
	for i, p := range pm {
		if int(p) != i/16 {
			t.Fatalf("pmap[%d] = %d, want %d", i, p, i/16)
		}
	}

	// Fewer parts than pods: whole pods are grouped, never split.
	pm2, parts2 := tp.Partition(2)
	if parts2 != 2 {
		t.Fatalf("Partition(2) = %d parts", parts2)
	}
	for i, p := range pm2 {
		if int(p) != i/32 {
			t.Fatalf("2-part pmap[%d] = %d, want %d", i, p, i/32)
		}
	}
	for i := 1; i < 64; i++ {
		if tp.PodOf(i) == tp.PodOf(i-1) && pm2[i] != pm2[i-1] {
			t.Fatalf("pod of node %d split across parts", i)
		}
	}

	// Requests beyond the pod count clamp; 1 and below degenerate to a
	// single all-zero part, as does any partition of a crossbar.
	if _, parts := tp.Partition(64); parts != 4 {
		t.Errorf("Partition(64) = %d parts, want clamp to 4", parts)
	}
	for _, req := range []int{1, 0, -3} {
		pm, parts := tp.Partition(req)
		if parts != 1 {
			t.Fatalf("Partition(%d) = %d parts, want 1", req, parts)
		}
		for i, p := range pm {
			if p != 0 {
				t.Fatalf("Partition(%d): pmap[%d] = %d", req, i, p)
			}
		}
	}
	if _, parts := Build(Spec{}, 32).Partition(4); parts != 1 {
		t.Error("crossbar Partition(4) did not degenerate to 1")
	}
}
