package topo

import (
	"testing"
)

// TestOversubIdentity pins the byte-identity guarantee: Oversub 0 and 1
// both mean full bisection, and a fabric built with either is
// link-for-link identical to one built before the ratio existed
// (represented by the zero-Oversub spec).
func TestOversubIdentity(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		n    int
	}{
		{Spec{Kind: FatTree, K: 4}, 16},
		{Spec{Kind: FatTree, K: 16}, 64},
		{Spec{Kind: LeafSpine, K: 8}, 64},
	} {
		base := Build(tc.spec, tc.n)
		one := tc.spec
		one.Oversub = 1
		built := Build(one, tc.n)
		if built.Links() != base.Links() {
			t.Fatalf("%v n=%d: o=1 has %d links, o=0 has %d", tc.spec, tc.n, built.Links(), base.Links())
		}
		if built.Spec() != base.Spec() {
			t.Fatalf("%v: o=1 spec %v does not normalize to %v", tc.spec, built.Spec(), base.Spec())
		}
		for src := 0; src < tc.n; src += 3 {
			for dst := 0; dst < tc.n; dst += 5 {
				a, b := route(base, src, dst), route(built, src, dst)
				if len(a) != len(b) {
					t.Fatalf("route %d->%d: o=0 %v vs o=1 %v", src, dst, a, b)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("route %d->%d link %d: o=0 %v vs o=1 %v", src, dst, i, a, b)
					}
				}
			}
		}
	}
}

// TestOversubTaper pins the tapered fabric's structure: a ratio of o
// keeps 1/o of each tier's links, routes stay valid (in range, same
// hop count), and flows that used distinct up-links at full bisection
// now share one — the contention the tenancy sweep measures.
func TestOversubTaper(t *testing.T) {
	spec := Spec{Kind: FatTree, K: 16} // m=8
	o4 := Spec{Kind: FatTree, K: 16, Oversub: 4}
	n := 64 // two levels: leaves of 8 hosts, one spine tier
	full := Build(spec, n)
	thin := Build(o4, n)

	if want := full.Links() / 4; thin.Links() != want {
		t.Fatalf("o=4 links = %d, want %d (full %d / 4)", thin.Links(), want, full.Links())
	}
	if thin.Oversub() != 4 || full.Oversub() != 1 {
		t.Fatalf("Oversub() = %d / %d, want 4 / 1", thin.Oversub(), full.Oversub())
	}

	// Every route stays in range and keeps the full-bisection hop count:
	// the taper removes links, not switch crossings.
	var p Path
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			thin.Route(src, dst, &p)
			for i := 0; i < p.N; i++ {
				if l := int(p.Links[i]); l < 0 || l >= thin.Links() {
					t.Fatalf("route %d->%d: link %d out of range [0,%d)", src, dst, l, thin.Links())
				}
			}
			if full.Hops(src, dst) != thin.Hops(src, dst) {
				t.Fatalf("hops %d->%d: full %d vs thin %d", src, dst,
					full.Hops(src, dst), thin.Hops(src, dst))
			}
		}
	}

	// Hosts 0..7 share leaf 0 with exactly 2 up-links at o=4 (8/4);
	// their 8 distinct full-bisection uplink choices toward distinct
	// far-away destinations must collapse onto those 2.
	seen := map[int32]bool{}
	for dst := 8; dst < 16; dst++ {
		thin.Route(0, dst, &p)
		if p.N != 2 {
			t.Fatalf("route 0->%d: %d links, want 2", dst, p.N)
		}
		seen[p.Links[0]] = true
	}
	if len(seen) != 2 {
		t.Fatalf("leaf 0 used %d distinct up-links at o=4, want 2", len(seen))
	}
	fullSeen := map[int32]bool{}
	for dst := 8; dst < 16; dst++ {
		full.Route(0, dst, &p)
		fullSeen[p.Links[0]] = true
	}
	if len(fullSeen) != 8 {
		t.Fatalf("leaf 0 used %d distinct up-links at full bisection, want 8", len(fullSeen))
	}
}

// TestOversubSpecForms pins flag parsing, rendering and validation of
// the oversubscription suffix.
func TestOversubSpecForms(t *testing.T) {
	got, err := ParseSpec("fattree:16:o4")
	if err != nil || got != (Spec{Kind: FatTree, K: 16, Oversub: 4}) {
		t.Fatalf("ParseSpec(fattree:16:o4) = %v, %v", got, err)
	}
	if s := got.String(); s != "fattree:16:o4" {
		t.Fatalf("String() = %q, want fattree:16:o4", s)
	}
	// o1 normalizes away: same shape as the bare spec.
	got, err = ParseSpec("leafspine:8:o1")
	if err != nil || got != (Spec{Kind: LeafSpine, K: 8}) {
		t.Fatalf("ParseSpec(leafspine:8:o1) = %v, %v", got, err)
	}
	for _, bad := range []string{"fattree:16:o0x", "fattree:16:4", "fattree:16:oo",
		"crossbar:o4"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) did not fail", bad)
		}
	}
	if err := (Spec{Kind: Crossbar, Oversub: 4}).Validate(); err == nil {
		t.Error("crossbar with Oversub 4 validated")
	}
	if err := (Spec{Kind: FatTree, K: 16, Oversub: -1}).Validate(); err == nil {
		t.Error("negative Oversub validated")
	}
}
