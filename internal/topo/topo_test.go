package topo

import (
	"testing"
)

func route(t *Topology, src, dst int) []int32 {
	var p Path
	t.Route(src, dst, &p)
	return append([]int32(nil), p.Links[:p.N]...)
}

func TestParseSpec(t *testing.T) {
	good := []struct {
		in   string
		want Spec
	}{
		{"", Spec{}},
		{"crossbar", Spec{}},
		{"fattree:4", Spec{Kind: FatTree, K: 4}},
		{"fattree:16", Spec{Kind: FatTree, K: 16}},
		{"leafspine:8", Spec{Kind: LeafSpine, K: 8}},
	}
	for _, tc := range good {
		got, err := ParseSpec(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSpec(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"fattree", "fattree:3", "fattree:x", "fattree:2",
		"leafspine:1", "torus:4", "fattree:15"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) did not fail", bad)
		}
	}
	// String round-trips through ParseSpec for every valid spec form.
	for _, s := range []Spec{{}, {Kind: FatTree, K: 8}, {Kind: LeafSpine, K: 4}} {
		back, err := ParseSpec(s.String())
		if err != nil || back != s {
			t.Errorf("round trip %v -> %q -> %v, %v", s, s.String(), back, err)
		}
	}
}

// TestShapes pins the structural parameters of each topology family.
func TestShapes(t *testing.T) {
	cases := []struct {
		name   string
		spec   Spec
		n      int
		levels int
		links  int
		leaves int
	}{
		{"crossbar", Spec{}, 64, 1, 0, 1},
		{"fattree fits one switch", Spec{Kind: FatTree, K: 8}, 4, 1, 0, 1},
		{"fattree 2 levels", Spec{Kind: FatTree, K: 4}, 4, 2, 8, 2},
		// 4 leaves x 2 uplinks + 2 subtrees x 2 spines x 2 uplinks,
		// both directions.
		{"fattree 3 levels", Spec{Kind: FatTree, K: 4}, 8, 3, 2 * (8 + 8), 4},
		// m=8: 8^3 = 512 < 1024, so 16-port switches need four stages;
		// full bisection keeps every tier at 1024 links per direction.
		{"fattree k16 1024", Spec{Kind: FatTree, K: 16}, 1024, 4, 6 * 1024, 128},
		{"fattree ragged", Spec{Kind: FatTree, K: 4}, 6, 3, 2 * (6 + 8), 3},
		{"leafspine fits one switch", Spec{Kind: LeafSpine, K: 8}, 8, 1, 0, 1},
		{"leafspine", Spec{Kind: LeafSpine, K: 4}, 12, 2, 24, 3},
		{"leafspine big", Spec{Kind: LeafSpine, K: 32}, 1024, 2, 2 * 32 * 32, 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := Build(tc.spec, tc.n)
			if tp.Levels() != tc.levels || tp.Links() != tc.links || tp.Leaves() != tc.leaves {
				t.Fatalf("levels=%d links=%d leaves=%d; want %d/%d/%d",
					tp.Levels(), tp.Links(), tp.Leaves(), tc.levels, tc.links, tc.leaves)
			}
		})
	}
}

// TestHops is the hop-count table: within a leaf one crossing, then two
// more per tier climbed, with leaf/spine clamped at three.
func TestHops(t *testing.T) {
	cases := []struct {
		name     string
		spec     Spec
		n        int
		src, dst int
		hops     int
		links    int
	}{
		{"crossbar far", Spec{}, 1024, 0, 1023, 1, 0},
		{"loopback", Spec{Kind: FatTree, K: 4}, 8, 3, 3, 1, 0},
		{"same leaf", Spec{Kind: FatTree, K: 4}, 8, 2, 3, 1, 0},
		{"one tier", Spec{Kind: FatTree, K: 4}, 8, 0, 2, 3, 2},
		{"two tiers", Spec{Kind: FatTree, K: 4}, 8, 0, 7, 5, 4},
		{"k16 same leaf", Spec{Kind: FatTree, K: 16}, 1024, 0, 7, 1, 0},
		{"k16 one tier", Spec{Kind: FatTree, K: 16}, 1024, 0, 63, 3, 2},
		{"k16 two tiers", Spec{Kind: FatTree, K: 16}, 1024, 0, 511, 5, 4},
		{"k16 three tiers", Spec{Kind: FatTree, K: 16}, 1024, 0, 1023, 7, 6},
		{"leafspine same leaf", Spec{Kind: LeafSpine, K: 3}, 12, 0, 2, 1, 0},
		{"leafspine clamped", Spec{Kind: LeafSpine, K: 3}, 12, 0, 11, 3, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := Build(tc.spec, tc.n)
			var p Path
			tp.Route(tc.src, tc.dst, &p)
			if got := tp.Hops(tc.src, tc.dst); got != tc.hops || p.N != tc.links || p.Switches != tc.hops {
				t.Fatalf("hops=%d links=%d switches=%d; want %d/%d/%d",
					got, p.N, p.Switches, tc.hops, tc.links, tc.hops)
			}
		})
	}
}

// TestRouteProperties sweeps all pairs of several topologies and checks
// the route invariants: link ids in range, no link repeated, hop count
// symmetric, up-path disjoint from every other source's up-path only
// when destinations differ in the right digit, and the down-path a pure
// function of the destination (D-mod-k: all flows to one destination
// share its whole down-path).
func TestRouteProperties(t *testing.T) {
	specs := []struct {
		spec Spec
		n    int
	}{
		{Spec{Kind: FatTree, K: 4}, 16},
		{Spec{Kind: FatTree, K: 8}, 64},
		{Spec{Kind: FatTree, K: 4}, 11}, // ragged: n not a power of m
		{Spec{Kind: LeafSpine, K: 4}, 14},
	}
	for _, tc := range specs {
		tp := Build(tc.spec, tc.n)
		downs := make([][][]int32, tc.n) // downs[dst] = every observed down half
		for src := 0; src < tc.n; src++ {
			for dst := 0; dst < tc.n; dst++ {
				var p Path
				tp.Route(src, dst, &p)
				if p.Switches != p.N+1 || p.N%2 != 0 {
					t.Fatalf("%v n=%d %d->%d: %d links but %d switches",
						tc.spec, tc.n, src, dst, p.N, p.Switches)
				}
				seen := map[int32]bool{}
				for _, li := range p.Links[:p.N] {
					if li < 0 || int(li) >= tp.Links() {
						t.Fatalf("%v n=%d %d->%d: link %d out of range [0,%d)",
							tc.spec, tc.n, src, dst, li, tp.Links())
					}
					if seen[li] {
						t.Fatalf("%v n=%d %d->%d: link %d repeated", tc.spec, tc.n, src, dst, li)
					}
					seen[li] = true
				}
				if h, hr := tp.Hops(src, dst), tp.Hops(dst, src); h != hr {
					t.Fatalf("%v n=%d: hops(%d,%d)=%d but hops(%d,%d)=%d",
						tc.spec, tc.n, src, dst, h, dst, src, hr)
				}
				downs[dst] = append(downs[dst],
					append([]int32(nil), p.Links[p.N/2:p.N]...))
			}
		}
		// D-mod-k: the descent is a pure function of the destination — a
		// nearer source's shorter down-path is the tail (lower tiers) of
		// the farthest source's.
		for dst, ds := range downs {
			var longest []int32
			for _, d := range ds {
				if len(d) > len(longest) {
					longest = d
				}
			}
			for _, d := range ds {
				tail := longest[len(longest)-len(d):]
				for i := range d {
					if d[i] != tail[i] {
						t.Fatalf("%v n=%d: down-path to %d depends on source: %v not a tail of %v",
							tc.spec, tc.n, dst, d, longest)
					}
				}
			}
		}
	}
}

// TestUplinkSelection pins the D-mod-k policy on the 8-host, radix-4
// tree: leaf-mates sending to one destination share their leaf's uplink
// (that is the modeled contention), while one source spreads different
// far destinations across its two uplinks.
func TestUplinkSelection(t *testing.T) {
	tp := Build(Spec{Kind: FatTree, K: 4}, 8)
	// Shared: 0 and 1 sit on leaf 0; both routes to 4 must start with
	// the same uplink and share the entire down-path.
	r0, r1 := route(tp, 0, 4), route(tp, 1, 4)
	if len(r0) != 4 || len(r1) != 4 {
		t.Fatalf("expected 4-link routes, got %v and %v", r0, r1)
	}
	for i := range r0 {
		if r0[i] != r1[i] {
			t.Fatalf("leaf-mates to one dst diverged: %v vs %v", r0, r1)
		}
	}
	// Spread: destinations differing in their low digit leave source 0's
	// leaf on different uplinks.
	if a, b := route(tp, 0, 4)[0], route(tp, 0, 5)[0]; a == b {
		t.Fatalf("dsts 4 and 5 share source uplink %d; D-mod-k should spread them", a)
	}
}

// TestBuildDeterminism: two Builds of the same spec yield identical
// tables and routes — the property cluster Reset and the pool rely on.
func TestBuildDeterminism(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		n    int
	}{
		{Spec{Kind: FatTree, K: 4}, 32},
		{Spec{Kind: LeafSpine, K: 8}, 50},
	} {
		a, b := Build(tc.spec, tc.n), Build(tc.spec, tc.n)
		for src := 0; src < tc.n; src += 3 {
			for dst := 0; dst < tc.n; dst++ {
				ra, rb := route(a, src, dst), route(b, src, dst)
				if len(ra) != len(rb) {
					t.Fatalf("%v: route %d->%d lengths differ", tc.spec, src, dst)
				}
				for i := range ra {
					if ra[i] != rb[i] {
						t.Fatalf("%v: route %d->%d differs across rebuilds: %v vs %v",
							tc.spec, src, dst, ra, rb)
					}
				}
			}
		}
	}
}

// TestRouteAllocs: routing is on the fabric hot path and must not
// allocate.
func TestRouteAllocs(t *testing.T) {
	tp := Build(Spec{Kind: FatTree, K: 16}, 4096)
	var p Path
	allocs := testing.AllocsPerRun(100, func() {
		tp.Route(17, 4000, &p)
		tp.Route(4000, 17, &p)
	})
	if allocs != 0 {
		t.Fatalf("Route allocates %.1f objects per call pair", allocs)
	}
}

func TestBuildPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("n=0", func() { Build(Spec{}, 0) })
	mustPanic("odd radix", func() { Build(Spec{Kind: FatTree, K: 5}, 8) })
	mustPanic("bad dst", func() {
		var p Path
		Build(Spec{Kind: FatTree, K: 4}, 8).Route(0, 8, &p)
	})
}
