package topo

import (
	"testing"
)

// TestLinkOwnersCoverRoutes is the property the flow engine's LP
// sharding rests on: for every host pair, the climb half of the route
// lies on links owned by the source's LP and the descent half on links
// owned by the destination's LP. Subtrees never straddle pods, so the
// ownership map is well-defined for any pod-aligned partition.
func TestLinkOwnersCoverRoutes(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		n     int
		parts int
	}{
		{"fattree", Spec{Kind: FatTree, K: 4}, 16, 2},
		{"fattree-wide", Spec{Kind: FatTree, K: 16}, 512, 4},
		{"leafspine", Spec{Kind: LeafSpine, K: 8}, 32, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tp := Build(tc.spec, tc.n)
			pmap, lps := tp.Partition(tc.parts)
			if lps < 2 {
				t.Fatalf("partition clamped to %d LPs", lps)
			}
			own := tp.LinkOwners(pmap)
			var p Path
			for src := 0; src < tc.n; src++ {
				for dst := 0; dst < tc.n; dst++ {
					if src == dst {
						continue
					}
					tp.Route(src, dst, &p)
					if p.N%2 != 0 {
						t.Fatalf("%d->%d: odd route length %d", src, dst, p.N)
					}
					for i := 0; i < p.N/2; i++ {
						if got := own[p.Links[i]]; got != pmap[src] {
							t.Fatalf("%d->%d: up-link %d owned by LP %d, want source LP %d",
								src, dst, p.Links[i], got, pmap[src])
						}
					}
					for i := p.N / 2; i < p.N; i++ {
						if got := own[p.Links[i]]; got != pmap[dst] {
							t.Fatalf("%d->%d: down-link %d owned by LP %d, want destination LP %d",
								src, dst, p.Links[i], got, pmap[dst])
						}
					}
				}
			}
		})
	}
}

// TestLinkOwnersRejectsWrongSize pins the guard against a partition
// map built for a different host count.
func TestLinkOwnersRejectsWrongSize(t *testing.T) {
	tp := Build(Spec{Kind: FatTree, K: 4}, 16)
	defer func() {
		if recover() == nil {
			t.Error("short partition map accepted")
		}
	}()
	tp.LinkOwners(make([]int32, 8))
}
