package workload

import (
	"testing"
	"time"

	"abred/internal/model"
	"abred/internal/skew"
)

const us = time.Microsecond

func baseCfg() Config {
	return Config{
		Specs:     model.PaperCluster(16),
		Iters:     20,
		Compute:   150 * us,
		Imbalance: skew.Uniform{Max: 300 * us},
		Halo:      true,
		Count:     2,
		Seed:      7,
	}
}

// TestAllStylesComputeTheSameReductions: every implementation of the
// application must produce the identical reduction results at rank 0.
func TestAllStylesComputeTheSameReductions(t *testing.T) {
	cfg := baseCfg()
	results := Compare(cfg, StyleDefault, StyleBypass, StyleSplitPhase, StyleNIC)
	want := results[0].RootResults
	if len(want) != cfg.Iters {
		t.Fatalf("default produced %d results, want %d", len(want), cfg.Iters)
	}
	for it := range want {
		if want[it] != ExpectedRootSum(16, it, 0) {
			t.Fatalf("iteration %d: default result %v, want %v", it, want[it], ExpectedRootSum(16, it, 0))
		}
	}
	for _, r := range results[1:] {
		if len(r.RootResults) != len(want) {
			t.Fatalf("%v produced %d results, want %d", r.Style, len(r.RootResults), len(want))
		}
		for it := range want {
			if r.RootResults[it] != want[it] {
				t.Errorf("%v iteration %d: %v, want %v", r.Style, it, r.RootResults[it], want[it])
			}
		}
	}
}

// TestBypassCutsInCallTime: under imbalance, the AB styles must spend
// far less time inside reduction calls than the default.
func TestBypassCutsInCallTime(t *testing.T) {
	cfg := baseCfg()
	def := Run(cfg, StyleDefault)
	ab := Run(cfg, StyleBypass)
	split := Run(cfg, StyleSplitPhase)
	// The halo exchange partially re-synchronizes neighbours before
	// each reduction, so the gap is narrower than in the pure
	// microbenchmark; still, AB must win clearly.
	if float64(ab.ReduceCalls.Mean)*1.5 > float64(def.ReduceCalls.Mean) {
		t.Errorf("AB in-call time %v not clearly below default %v", ab.ReduceCalls.Mean, def.ReduceCalls.Mean)
	}
	if split.ReduceCalls.Mean > ab.ReduceCalls.Mean {
		t.Errorf("split-phase in-call time %v above blocking AB %v", split.ReduceCalls.Mean, ab.ReduceCalls.Mean)
	}
	if ab.Signals == 0 {
		t.Error("AB run handled no signals under imbalance")
	}
}

// TestNICStyleFreesHost: NIC-based reduction's in-call time is minimal
// (non-root ranks only deposit).
func TestNICStyleFreesHost(t *testing.T) {
	cfg := baseCfg()
	def := Run(cfg, StyleDefault)
	nic := Run(cfg, StyleNIC)
	if nic.ReduceCalls.Mean*2 > def.ReduceCalls.Mean {
		t.Errorf("NIC in-call time %v not clearly below default %v", nic.ReduceCalls.Mean, def.ReduceCalls.Mean)
	}
}

func TestDeterministicWorkload(t *testing.T) {
	cfg := baseCfg()
	a := Run(cfg, StyleBypass)
	b := Run(cfg, StyleBypass)
	if a.JobTime != b.JobTime || a.Signals != b.Signals {
		t.Errorf("workload not deterministic: %v/%d vs %v/%d", a.JobTime, a.Signals, b.JobTime, b.Signals)
	}
}

func TestWindowedSplitPhaseOrdering(t *testing.T) {
	cfg := baseCfg()
	cfg.RedsPerIter = 3
	cfg.Window = 4
	r := Run(cfg, StyleSplitPhase)
	if len(r.RootResults) != cfg.Iters*cfg.RedsPerIter {
		t.Fatalf("got %d results, want %d", len(r.RootResults), cfg.Iters*cfg.RedsPerIter)
	}
	i := 0
	for it := 0; it < cfg.Iters; it++ {
		for rd := 0; rd < cfg.RedsPerIter; rd++ {
			if r.RootResults[i] != ExpectedRootSum(16, it, rd) {
				t.Fatalf("result %d = %v, want %v", i, r.RootResults[i], ExpectedRootSum(16, it, rd))
			}
			i++
		}
	}
}

func TestStyleStrings(t *testing.T) {
	names := map[Style]string{
		StyleDefault: "default", StyleBypass: "app-bypass",
		StyleSplitPhase: "split-phase", StyleNIC: "nic-based",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestHeavyTailImbalance(t *testing.T) {
	cfg := baseCfg()
	cfg.Imbalance = skew.Pareto{Min: 20 * us, Max: 2000 * us, Alpha: 1.3}
	def := Run(cfg, StyleDefault)
	ab := Run(cfg, StyleBypass)
	if ab.ReduceCalls.Mean >= def.ReduceCalls.Mean {
		t.Errorf("AB should win under heavy-tailed imbalance: %v vs %v", ab.ReduceCalls.Mean, def.ReduceCalls.Mean)
	}
	for it, v := range def.RootResults {
		if v != ExpectedRootSum(16, it, 0) {
			t.Fatalf("heavy-tail run corrupted results at %d", it)
		}
	}
}

func TestStragglerImbalance(t *testing.T) {
	cfg := baseCfg()
	cfg.Imbalance = skew.Straggler{P: 16, Delay: 800 * us}
	ab := Run(cfg, StyleBypass)
	if len(ab.RootResults) != cfg.Iters {
		t.Fatalf("straggler run lost results")
	}
}
