package workload

import (
	"testing"
	"time"

	"abred/internal/cluster"
	"abred/internal/model"
	"abred/internal/skew"
	"abred/internal/topo"
)

// relClose reports whether a and b agree within frac.
func relClose(a, b int64, frac float64) bool {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	m := float64(a)
	if float64(b) > m {
		m = float64(b)
	}
	return m == 0 || d/m <= frac
}

// TestFlowWorkloadCrossValidation pins the flow engine against the
// packet engine on the application workload: job time within 1%, call
// time within 5% (call times are microseconds, so the absolute slack is
// tiny), identical root results.
func TestFlowWorkloadCrossValidation(t *testing.T) {
	for _, halo := range []bool{false, true} {
		for _, style := range []Style{StyleDefault, StyleBypass} {
			cfg := Config{
				Specs:       model.Uniform(128),
				Iters:       10,
				Compute:     200 * time.Microsecond,
				Imbalance:   skew.Uniform{Max: 100 * time.Microsecond},
				Halo:        halo,
				Count:       2,
				RedsPerIter: 2,
				Seed:        11,
				Topo:        topo.Spec{Kind: topo.FatTree, K: 16},
			}
			p := Run(cfg, style)
			cfg.Engine = cluster.EngineFlow
			f := Run(cfg, style)
			if !relClose(int64(p.JobTime), int64(f.JobTime), 0.01) {
				t.Errorf("style=%v halo=%v: job time diverged: packet %v, flow %v", style, halo, p.JobTime, f.JobTime)
			}
			if !relClose(int64(p.ReduceCalls.Mean), int64(f.ReduceCalls.Mean), 0.05) {
				t.Errorf("style=%v halo=%v: call time diverged: packet %v, flow %v",
					style, halo, p.ReduceCalls.Mean, f.ReduceCalls.Mean)
			}
			if len(p.RootResults) != len(f.RootResults) {
				t.Fatalf("style=%v halo=%v: %d packet results, %d flow", style, halo, len(p.RootResults), len(f.RootResults))
			}
			for i := range p.RootResults {
				if p.RootResults[i] != f.RootResults[i] {
					t.Fatalf("style=%v halo=%v: result %d: packet %v, flow %v",
						style, halo, i, p.RootResults[i], f.RootResults[i])
				}
			}
			t.Logf("style=%v halo=%v: packet job=%v calls=%v sig=%d ev=%d | flow job=%v calls=%v sig=%d ev=%d",
				style, halo, p.JobTime, p.ReduceCalls.Mean, p.Signals, p.Events,
				f.JobTime, f.ReduceCalls.Mean, f.Signals, f.Events)
		}
	}
}
