package workload

import (
	"testing"
	"time"

	"abred/internal/cluster"
	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/sweep"
	"abred/internal/topo"
)

func tenancyBase(place Placement, lossy bool) TenancyConfig {
	cfg := TenancyConfig{
		Specs: model.Uniform(32),
		Topo:  topo.Spec{Kind: topo.FatTree, K: 8, Oversub: 4},
		Jobs:  6, Seed: 11, Style: StyleBypass, Place: place,
	}
	if lossy {
		cfg.Fault = fault.Config{Seed: 5, Rule: fault.Rule{Drop: 2e-3}}
	}
	return cfg
}

// TestTenancyDeterminism is the multi-job reproducibility matrix: for
// clean and lossy fabrics × random and greedy placement, a fresh
// build, a second fresh build, and two warm-pool reuses (the first Get
// builds, the second Resets) must produce identical fingerprints.
func TestTenancyDeterminism(t *testing.T) {
	for _, lossy := range []bool{false, true} {
		for _, place := range []Placement{RandomPlacement{}, GreedyPlacement{}} {
			cfg := tenancyBase(place, lossy)
			fresh1 := Tenancy(cfg)
			fresh2 := Tenancy(cfg)
			if fresh1.Fingerprint != fresh2.Fingerprint {
				t.Errorf("lossy=%v place=%s: fresh runs differ: %x vs %x",
					lossy, place.Name(), fresh1.Fingerprint, fresh2.Fingerprint)
			}
			pool := cluster.NewPool()
			cfg.Pool = pool
			warm1 := Tenancy(cfg) // builds into the pool
			warm2 := Tenancy(cfg) // Reset reuse of the pooled cluster
			pool.Drain()
			if warm1.Fingerprint != fresh1.Fingerprint {
				t.Errorf("lossy=%v place=%s: pooled build differs from fresh: %x vs %x",
					lossy, place.Name(), warm1.Fingerprint, fresh1.Fingerprint)
			}
			if warm2.Fingerprint != fresh1.Fingerprint {
				t.Errorf("lossy=%v place=%s: warm reuse differs from fresh: %x vs %x",
					lossy, place.Name(), warm2.Fingerprint, fresh1.Fingerprint)
			}
		}
	}
}

// TestTenancySeedsAndPoliciesDiffer guards against a degenerate
// fingerprint: different seeds and different placement policies must
// actually change the run.
func TestTenancySeedsAndPoliciesDiffer(t *testing.T) {
	a := Tenancy(tenancyBase(RandomPlacement{}, false))
	b := tenancyBase(RandomPlacement{}, false)
	b.Seed = 99
	if Tenancy(b).Fingerprint == a.Fingerprint {
		t.Error("different seeds produced identical runs")
	}
	g := Tenancy(tenancyBase(GreedyPlacement{}, false))
	if g.Fingerprint == a.Fingerprint {
		t.Error("greedy and random placement produced identical runs")
	}
}

// TestTenancyJobAccounting checks scheduler invariants: every job ran,
// on the requested node count, with Start ≥ Arrival, End > Start, and
// no two concurrent jobs sharing a node.
func TestTenancyJobAccounting(t *testing.T) {
	cfg := tenancyBase(RandomPlacement{}, false)
	cfg.Jobs = 8
	cfg.MinNodes, cfg.MaxNodes = 2, 16 // pin what defaults() would pick
	r := Tenancy(cfg)
	if len(r.Jobs) != cfg.Jobs {
		t.Fatalf("ran %d jobs, want %d", len(r.Jobs), cfg.Jobs)
	}
	for _, j := range r.Jobs {
		if j.Start < j.Arrival {
			t.Errorf("job %d started at %v before its arrival %v", j.ID, j.Start, j.Arrival)
		}
		if j.End <= j.Start {
			t.Errorf("job %d ended at %v, started at %v", j.ID, j.End, j.Start)
		}
		if j.JCT != j.End-j.Arrival {
			t.Errorf("job %d JCT %v != End-Arrival %v", j.ID, j.JCT, j.End-j.Arrival)
		}
		if len(j.Nodes) < cfg.MinNodes || len(j.Nodes) > cfg.MaxNodes {
			t.Errorf("job %d on %d nodes outside [%d,%d]", j.ID, len(j.Nodes), cfg.MinNodes, cfg.MaxNodes)
		}
	}
	// Overlapping jobs must occupy disjoint nodes.
	for i, a := range r.Jobs {
		for _, b := range r.Jobs[i+1:] {
			if a.Start >= b.End || b.Start >= a.End {
				continue
			}
			used := map[int]bool{}
			for _, n := range a.Nodes {
				used[n] = true
			}
			for _, n := range b.Nodes {
				if used[n] {
					t.Fatalf("jobs %d and %d overlap in time and share node %d", a.ID, b.ID, n)
				}
			}
		}
	}
}

// TestTenancyGreedyBeatsRandomLocality pins the placement policies'
// defining property on an oversubscribed fabric with a locality-
// sensitive workload: greedy packing keeps jobs under fewer leaves
// than random scatter, so its reduction trees cross fewer tapered
// uplinks and its jobs complete no slower on aggregate.
func TestTenancyGreedyBeatsRandomLocality(t *testing.T) {
	mk := func(place Placement) TenancyConfig {
		return TenancyConfig{
			Specs: model.Uniform(64),
			Topo:  topo.Spec{Kind: topo.FatTree, K: 16, Oversub: 8},
			Jobs:  8, Seed: 3, Style: StyleBypass, Place: place,
			MinNodes: 8, MaxNodes: 8, Iters: 6,
			MeanArrival: sim.Time(50 * time.Microsecond),
			Count:       256, // large payloads make uplink contention visible
		}
	}
	// Static locality check: greedy placements span no more leaves than
	// random ones, job for job (leaves hold 8 nodes = the job size, so
	// greedy should often hit a single leaf).
	tp := topo.Build(mk(nil).Topo, 64)
	spread := func(nodes []int) int {
		leaves := map[int]bool{}
		for _, n := range nodes {
			leaves[tp.Leaf(n)] = true
		}
		return len(leaves)
	}
	rr := Tenancy(mk(RandomPlacement{}))
	gr := Tenancy(mk(GreedyPlacement{}))
	var rSpread, gSpread int
	for i := range rr.Jobs {
		rSpread += spread(rr.Jobs[i].Nodes)
		gSpread += spread(gr.Jobs[i].Nodes)
	}
	if gSpread >= rSpread {
		t.Errorf("greedy leaf spread %d not tighter than random %d", gSpread, rSpread)
	}
	if gr.JCT.P50 > rr.JCT.P50 {
		t.Errorf("greedy JCT p50 %v worse than random %v on a locality-sensitive workload",
			gr.JCT.P50, rr.JCT.P50)
	}
}

// TestTenancyGenetic sanity-checks the GA policy: valid disjoint
// placements, deterministic, and locality no worse than random.
func TestTenancyGenetic(t *testing.T) {
	cfg := tenancyBase(GeneticPlacement{}, false)
	a := Tenancy(cfg)
	if Tenancy(cfg).Fingerprint != a.Fingerprint {
		t.Error("genetic placement is not deterministic")
	}
}

// TestTenancyParallelDeterminism pins the (seed, jobID) stream
// derivation end to end: a tenancy comparison executed on a sweep
// worker pool must be byte-identical at any parallelism, exactly like
// CompareParallel (satellite audit: no draw may flow through shared
// worker state).
func TestTenancyParallelDeterminism(t *testing.T) {
	styles := []Style{StyleDefault, StyleBypass}
	run := func(workers int) []TenancyResult {
		jobs := make([]sweep.Job[TenancyResult], len(styles))
		for i, s := range styles {
			s := s
			jobs[i] = sweep.Job[TenancyResult]{Name: "tenancy/" + s.String(), Seed: 11,
				Run: func() (TenancyResult, uint64) {
					cfg := tenancyBase(GreedyPlacement{}, false)
					cfg.Style = s
					r := Tenancy(cfg)
					return r, r.Events
				}}
		}
		return sweep.Run("tenancy", jobs, workers).Values()
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i].Fingerprint != parallel[i].Fingerprint {
			t.Errorf("style %v: workers=1 fp %x != workers=4 fp %x",
				styles[i], serial[i].Fingerprint, parallel[i].Fingerprint)
		}
	}
}

// TestCompareParallelByteIdentical is the CompareParallel RNG audit
// pin: per-run streams derive from the run's own cluster kernel, so
// results are byte-identical at any -parallel N.
func TestCompareParallelByteIdentical(t *testing.T) {
	cfg := Config{Specs: model.Uniform(16), Iters: 6, Seed: 13,
		Topo: topo.Spec{Kind: topo.FatTree, K: 8}}
	styles := []Style{StyleDefault, StyleBypass, StyleSplitPhase}
	serial := CompareParallel(cfg, 1, styles...)
	parallel := CompareParallel(cfg, 4, styles...)
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.JobTime != b.JobTime || a.Signals != b.Signals || a.Events != b.Events ||
			a.ReduceCalls != b.ReduceCalls {
			t.Errorf("style %v: serial %+v != parallel %+v", styles[i], a, b)
		}
		if len(a.RootResults) != len(b.RootResults) {
			t.Fatalf("style %v: root result counts differ", styles[i])
		}
		for k := range a.RootResults {
			if a.RootResults[k] != b.RootResults[k] {
				t.Fatalf("style %v: root result %d differs", styles[i], k)
			}
		}
	}
}
