package workload

import (
	"testing"

	"abred/internal/model"
	"abred/internal/skew"
	"abred/internal/topo"
)

// TestPartitionedWorkloadCorrect: the application on a 4-LP partitioned
// fat tree must compute exactly the same reductions as anywhere else —
// every instance equal to the closed-form sum — and repeat runs must be
// deterministic, including signal and event counts.
func TestPartitionedWorkloadCorrect(t *testing.T) {
	const size = 64
	cfg := Config{
		Specs:       model.PaperCluster(size),
		Iters:       12,
		Compute:     150 * us,
		Imbalance:   skew.Uniform{Max: 300 * us},
		Halo:        true,
		Count:       2,
		RedsPerIter: 2,
		Seed:        7,
		Topo:        topo.Spec{Kind: topo.FatTree, K: 8},
		LPs:         4,
	}
	r := Run(cfg, StyleBypass)
	if len(r.RootResults) != cfg.Iters*cfg.RedsPerIter {
		t.Fatalf("produced %d results, want %d", len(r.RootResults), cfg.Iters*cfg.RedsPerIter)
	}
	for i, got := range r.RootResults {
		it, rd := i/cfg.RedsPerIter, i%cfg.RedsPerIter
		if want := ExpectedRootSum(size, it, rd); got != want {
			t.Errorf("iteration %d reduction %d: %v, want %v", it, rd, got, want)
		}
	}

	again := Run(cfg, StyleBypass)
	if again.JobTime != r.JobTime || again.Signals != r.Signals ||
		again.Events != r.Events || again.ReduceCalls != r.ReduceCalls {
		t.Errorf("partitioned reruns diverged:\nfirst: %+v\nagain: %+v", r, again)
	}

	// The monolithic run of the same config computes the same values
	// (virtual timings may differ; the arithmetic must not).
	mono := cfg
	mono.LPs = 1
	m := Run(mono, StyleBypass)
	if len(m.RootResults) != len(r.RootResults) {
		t.Fatalf("monolithic produced %d results, partitioned %d", len(m.RootResults), len(r.RootResults))
	}
	for i := range m.RootResults {
		if m.RootResults[i] != r.RootResults[i] {
			t.Errorf("result %d: monolithic %v, partitioned %v", i, m.RootResults[i], r.RootResults[i])
		}
	}
}
