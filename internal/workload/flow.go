package workload

import (
	"fmt"

	"abred/internal/cluster"
	"abred/internal/coll"
	"abred/internal/flow"
	"abred/internal/sim"
	"abred/internal/skew"
	"abred/internal/stats"
)

// flowRun executes the bulk-synchronous application on the flow engine:
// the same per-iteration shape (imbalanced compute spin, optional halo
// exchange, reductions), the same skew matrix from the same RNG stream,
// and the same call-time accounting — but every rank is a small state
// machine over flow-machine clocks instead of a simulated process.
// Split-phase and NIC styles need engine machinery the flow model does
// not carry, and refuse loudly rather than degrade silently.
func flowRun(cfg Config, style Style) Result {
	size := len(cfg.Specs)
	if style != StyleDefault && style != StyleBypass {
		panic(fmt.Sprintf("workload: the flow engine does not model the %v style", style))
	}
	cl := cluster.New(cluster.Config{Specs: cfg.Specs, Seed: cfg.Seed,
		Topo: cfg.Topo, LPs: cfg.LPs, Engine: cluster.EngineFlow})
	defer cl.Close()
	m := cl.FlowM

	delays := skew.Matrix(cfg.Imbalance, cl.K.NewRNG(), cfg.Iters, size)

	fc := coll.NewFlowColl(m, size, 0, cfg.Count)
	fc.P2PBytes = 1 // the halo swaps single-byte markers

	d := &flowApp{
		cfg: cfg, fc: fc, m: m, size: size,
		bypass: style == StyleBypass,
		delays: delays,
		rk:     make([]appRankState, size),
		calls:  make([]sim.Time, size),
		fin:    make([]bool, size),
	}
	d.sp = flow.NewSpinner(m, size, d.spinDone)
	fc.Done = d.opDone
	for r := 0; r < size; r++ {
		// Rank startup mirrors mpi.NewProcess: the eager bounce-buffer
		// pin is the one virtual-time charge before the loop.
		cm := m.CMs[r]
		t0 := m.HostRun(r, 0, sim.Time(cm.Pin(64*cm.C.EagerThreshold)))
		d.startIter(r, t0)
	}
	wall := cl.Drain()
	done := 0
	for _, f := range d.fin {
		if f {
			done++
		}
	}
	if done != size {
		panic(fmt.Sprintf("workload: flow run drained with %d/%d ranks finished", done, size))
	}

	// Rank 0's observed results: the flow engine does not carry data,
	// but the reduction structure is exact, so the root sees exactly
	// the analytic sums, in instance order.
	var rootResults []float64
	for it := 0; it < cfg.Iters; it++ {
		for rd := 0; rd < cfg.RedsPerIter; rd++ {
			rootResults = append(rootResults, ExpectedRootSum(size, it, rd))
		}
	}
	var signals uint64
	for _, s := range fc.Signals {
		signals += s
	}
	return Result{
		Style:       style,
		JobTime:     wall,
		ReduceCalls: stats.Summarize(d.calls),
		Signals:     signals,
		RootResults: rootResults,
		Events:      cl.Events(),
	}
}

// appRankState is one rank's position in the application loop.
type appRankState struct {
	phase     uint8 // 0 compute spin, 1 halo, 2 in reduce, 3 final spin, 4 barrier
	iter      int32
	rd        int32
	hstep     uint8 // halo receives completed so far
	callStart sim.Time
}

// flowApp drives every rank through the bulk-synchronous iterations.
type flowApp struct {
	cfg    Config
	fc     *coll.FlowColl
	m      *flow.Machine
	sp     *flow.Spinner
	size   int
	bypass bool
	delays [][]sim.Time
	rk     []appRankState
	calls  []sim.Time
	// fin is per-rank (not a shared counter) so concurrent LP windows
	// never write the same word; the driver counts it after the drain.
	fin []bool
}

func (d *flowApp) startIter(r int, t sim.Time) {
	st := &d.rk[r]
	st.phase = 0
	d.sp.Start(r, t, d.cfg.Compute+d.delays[st.iter][r])
}

func (d *flowApp) spinDone(r int, at, intr sim.Time) {
	st := &d.rk[r]
	switch st.phase {
	case 0:
		if d.cfg.Halo {
			st.phase = 1
			st.hstep = 0
			d.haloStart(r, at)
			return
		}
		d.startReduce(r, at)
	case 3:
		st.phase = 4
		d.fc.Barrier(r, at, 0)
	default:
		panic(fmt.Sprintf("workload: flow rank %d woke in phase %d", r, st.phase))
	}
}

// haloStart mirrors haloExchange: even ranks send to both neighbours
// then receive from both, odd ranks receive first. Eager sends return
// to the application immediately, so the orders compose without
// deadlock exactly as in the packet engine.
func (d *flowApp) haloStart(r int, t sim.Time) {
	st := &d.rk[r]
	if r%2 == 0 {
		t = d.haloSend(r, t)
	}
	st.hstep = 0
	src, _ := d.haloRecvSrc(r, 0) // size >= 2: every rank has a neighbour
	d.fc.RecvP2P(r, t, src, uint64(st.iter))
}

// haloSend posts this rank's neighbour sends, returning the time the
// host hands back.
func (d *flowApp) haloSend(r int, t sim.Time) sim.Time {
	st := &d.rk[r]
	if r > 0 {
		t = d.fc.SendP2P(r, t, r-1, uint64(st.iter))
	}
	if r < d.size-1 {
		t = d.fc.SendP2P(r, t, r+1, uint64(st.iter))
	}
	return t
}

// haloRecvSrc returns the idx'th receive source for rank r: left
// neighbour then right, skipping missing edges.
func (d *flowApp) haloRecvSrc(r int, idx uint8) (int, bool) {
	switch {
	case r > 0 && idx == 0:
		return r - 1, true
	case idx == 0 && d.size > 1: // rank 0: right neighbour only
		return r + 1, true
	case r > 0 && r < d.size-1 && idx == 1:
		return r + 1, true
	}
	return 0, false
}

// haloAdvance runs after each completed receive: post the next one, or
// finish the exchange (odd ranks send after their receives) and move to
// the reductions.
func (d *flowApp) haloAdvance(r int, t sim.Time) {
	st := &d.rk[r]
	st.hstep++
	if src, ok := d.haloRecvSrc(r, st.hstep); ok {
		d.fc.RecvP2P(r, t, src, uint64(st.iter))
		return
	}
	if r%2 == 1 {
		t = d.haloSend(r, t)
	}
	d.startReduce(r, t)
}

func (d *flowApp) startReduce(r int, t sim.Time) {
	st := &d.rk[r]
	st.phase = 2
	st.callStart = t
	seq := uint64(st.iter)*uint64(d.cfg.RedsPerIter) + uint64(st.rd)
	d.fc.Reduce(r, t, d.bypass, seq)
}

// opDone receives blocking-call completions from the collective engine.
func (d *flowApp) opDone(r int, t sim.Time) {
	st := &d.rk[r]
	switch st.phase {
	case 1:
		d.haloAdvance(r, t)
	case 2:
		d.calls[r] += t - st.callStart
		st.rd++
		if int(st.rd) < d.cfg.RedsPerIter {
			d.startReduce(r, t)
			return
		}
		st.rd = 0
		st.iter++
		if int(st.iter) < d.cfg.Iters {
			d.startIter(r, t)
			return
		}
		st.phase = 3
		d.sp.Start(r, t, 2*d.cfg.Compute)
	case 4:
		d.fin[r] = true
	default:
		panic(fmt.Sprintf("workload: flow rank %d completed an op in phase %d", r, st.phase))
	}
}
