// Package workload models the application-based evaluation the paper
// names as future work (§VII: "we also intend to perform
// application-based evaluations to better understand how
// application-bypass solutions perform under real loads").
//
// The model is a bulk-synchronous scientific application: every rank
// iterates (imbalanced compute → optional halo exchange → one or more
// small reductions), the workload profile Moody et al. (ref [9])
// measured — 95% of reductions on at most three elements. The runner
// executes the same program with each reduction implementation and
// reports job completion time, per-rank time spent inside reduction
// calls, and signal counts.
package workload

import (
	"abred/internal/cluster"
	"abred/internal/coll"
	"abred/internal/core"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
	"abred/internal/skew"
	"abred/internal/stats"
	"abred/internal/sweep"
	"abred/internal/topo"
)

// Style selects the reduction implementation the application uses.
type Style int

// Reduction styles.
const (
	StyleDefault    Style = iota // blocking MPICH reduction
	StyleBypass                  // application-bypass reduction
	StyleSplitPhase              // IReduce posted now, waited a window later
	StyleNIC                     // NIC-based reduction
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case StyleDefault:
		return "default"
	case StyleBypass:
		return "app-bypass"
	case StyleSplitPhase:
		return "split-phase"
	case StyleNIC:
		return "nic-based"
	}
	return "?"
}

// Config describes the synthetic application.
type Config struct {
	Specs       []model.NodeSpec
	Iters       int       // bulk-synchronous iterations
	Compute     sim.Time  // baseline compute per iteration
	Imbalance   skew.Dist // extra compute drawn per rank per iteration
	Halo        bool      // nearest-neighbour exchange each iteration
	Count       int       // reduction elements (Moody et al.: ≤ 3 typical)
	RedsPerIter int       // reductions per iteration
	Window      int       // split-phase: iterations a result may lag
	Seed        int64
	Topo        topo.Spec // interconnect; zero value = single crossbar
	LPs         int       // parallel logical processes (see cluster.Config.LPs)

	// Engine selects the simulation engine (cluster.Config.Engine). The
	// flow engine models the default and app-bypass styles only.
	Engine cluster.Engine
}

func (c *Config) defaults() {
	if c.Iters == 0 {
		c.Iters = 50
	}
	if c.Count == 0 {
		c.Count = 2
	}
	if c.RedsPerIter == 0 {
		c.RedsPerIter = 1
	}
	if c.Window == 0 {
		c.Window = 2
	}
	if c.Imbalance == nil {
		c.Imbalance = skew.None{}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result summarizes one application run.
type Result struct {
	Style       Style
	JobTime     sim.Time      // wall time until every rank finished
	ReduceCalls stats.Summary // per-rank time inside reduction calls
	Signals     uint64        // signals handled across the cluster
	RootResults []float64     // first element of each reduction, rank 0
	Events      uint64        // simulated events executed
}

// Run executes the application with the given style.
func Run(cfg Config, style Style) Result {
	cfg.defaults()
	size := len(cfg.Specs)
	if size < 2 {
		panic("workload: need at least two ranks")
	}
	if cfg.Engine == cluster.EngineFlow {
		return flowRun(cfg, style)
	}
	cl := cluster.New(cluster.Config{Specs: cfg.Specs, Seed: cfg.Seed,
		Topo: cfg.Topo, LPs: cfg.LPs})
	defer cl.Close()

	delays := skew.Matrix(cfg.Imbalance, cl.K.NewRNG(), cfg.Iters, size)
	inCall := make([]sim.Time, size)
	// Per-rank signal counts, summed after the run: rank closures may
	// execute on different LP goroutines under a partitioned kernel.
	sigs := make([]uint64, size)
	var rootResults []float64

	wall := cl.Run(func(n *cluster.Node, w *mpi.Comm) {
		rank := n.ID
		in := make([]byte, cfg.Count*8)
		out := make([]byte, cfg.Count*8)
		var futures []*futureSlot
		var calls sim.Time

		for it := 0; it < cfg.Iters; it++ {
			n.Proc.SpinInterruptible(cfg.Compute + delays[it][rank])
			if cfg.Halo {
				haloExchange(w, it)
			}
			for rd := 0; rd < cfg.RedsPerIter; rd++ {
				val := float64(rank + it + rd)
				copy(in, mpi.Float64sToBytes([]float64{val}))
				t0 := n.Proc.Now()
				switch style {
				case StyleDefault:
					coll.Reduce(w, in, out, cfg.Count, mpi.Float64, mpi.OpSum, 0)
					if rank == 0 {
						rootResults = append(rootResults, mpi.BytesToFloat64s(out)[0])
					}
				case StyleBypass:
					n.Engine.Reduce(w, in, out, cfg.Count, mpi.Float64, mpi.OpSum, 0)
					if rank == 0 {
						rootResults = append(rootResults, mpi.BytesToFloat64s(out)[0])
					}
				case StyleNIC:
					n.Engine.NICReduce(w, in, out, cfg.Count, mpi.Float64, mpi.OpSum, 0)
					if rank == 0 {
						rootResults = append(rootResults, mpi.BytesToFloat64s(out)[0])
					}
				case StyleSplitPhase:
					slot := &futureSlot{out: make([]byte, cfg.Count*8)}
					slot.req = n.Engine.IReduce(w, in, slot.out, cfg.Count, mpi.Float64, mpi.OpSum, 0)
					futures = append(futures, slot)
					// Harvest anything older than the window.
					for len(futures) > cfg.Window*cfg.RedsPerIter {
						s := futures[0]
						futures = futures[1:]
						s.req.Wait()
						if rank == 0 {
							rootResults = append(rootResults, mpi.BytesToFloat64s(s.out)[0])
						}
					}
				}
				calls += n.Proc.Now() - t0
			}
		}
		for _, s := range futures {
			s.req.Wait()
			if rank == 0 {
				rootResults = append(rootResults, mpi.BytesToFloat64s(s.out)[0])
			}
		}
		n.Proc.SpinInterruptible(2 * cfg.Compute)
		coll.Barrier(w)
		inCall[rank] = calls
		sigs[rank] = n.Engine.Metrics.SignalsHandled
	})

	var signals uint64
	for _, s := range sigs {
		signals += s
	}
	return Result{
		Style:       style,
		JobTime:     wall,
		ReduceCalls: stats.Summarize(inCall),
		Signals:     signals,
		RootResults: rootResults,
		Events:      cl.Events(),
	}
}

// futureSlot pairs a split-phase request with its result buffer.
type futureSlot struct {
	req *core.Request
	out []byte
}

// haloExchange swaps one value with both neighbours, even ranks sending
// first.
func haloExchange(w *mpi.Comm, iter int) {
	rank, size := w.Rank(), w.Size()
	tag := int32(1<<16 | iter)
	buf := []byte{byte(iter)}
	rbuf := make([]byte, 1)
	send := func() {
		if rank > 0 {
			w.Send(rank-1, tag, buf)
		}
		if rank < size-1 {
			w.Send(rank+1, tag, buf)
		}
	}
	recv := func() {
		if rank > 0 {
			w.Recv(rank-1, tag, rbuf)
		}
		if rank < size-1 {
			w.Recv(rank+1, tag, rbuf)
		}
	}
	if rank%2 == 0 {
		send()
		recv()
	} else {
		recv()
		send()
	}
}

// ExpectedRootSum returns the exact reduction result for instance k of
// the workload (iteration it, reduction rd within it): sum over ranks
// of rank+it+rd.
func ExpectedRootSum(size, it, rd int) float64 {
	var sum float64
	for r := 0; r < size; r++ {
		sum += float64(r + it + rd)
	}
	return sum
}

// Compare runs the same application under several styles and returns
// results in order.
func Compare(cfg Config, styles ...Style) []Result {
	return CompareParallel(cfg, 1, styles...)
}

// CompareParallel is Compare across a worker pool: each style's run is
// an independent simulation (own kernel, own cluster, same seed), so the
// runs execute concurrently and the results — assembled in style order —
// are identical to Compare's.
func CompareParallel(cfg Config, workers int, styles ...Style) []Result {
	jobs := make([]sweep.Job[Result], len(styles))
	for i, s := range styles {
		s := s
		jobs[i] = sweep.Job[Result]{Name: "workload/" + s.String(), Seed: cfg.Seed,
			Run: func() (Result, uint64) {
				r := Run(cfg, s)
				return r, r.Events
			}}
	}
	return sweep.Run("workload", jobs, workers).Values()
}
