// Placement policies for the multi-tenant scheduler: given the set of
// currently free nodes, pick which ones a newly arrived job runs on.
// Placement decides how much of a job's reduction tree crosses shared
// uplinks, so on an oversubscribed fabric it is the knob that separates
// a locality-aware scheduler from a naive one (nethint's PlaceMapper /
// ReducerPlacementPolicy pairing, scored the same way: by per-job JCT).
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"abred/internal/topo"
)

// Placement selects k nodes for a job from the free set. free is
// ascending and must not be mutated; the result is a fresh ascending
// slice of k node ids drawn from free. rng is the job's dedicated
// placement stream — a policy draws only from it, so placements are a
// pure function of (seed, jobID, free set).
type Placement interface {
	Name() string
	Place(t *topo.Topology, free []int, k int, rng *rand.Rand) []int
}

// ParsePlacement maps a -place flag value to a policy.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "", "random":
		return RandomPlacement{}, nil
	case "greedy":
		return GreedyPlacement{}, nil
	case "genetic":
		return GeneticPlacement{}, nil
	}
	return nil, fmt.Errorf("unknown placement %q (random|greedy|genetic)", s)
}

// RandomPlacement scatters the job uniformly over the free nodes — the
// baseline every locality policy is scored against.
type RandomPlacement struct{}

// Name implements Placement.
func (RandomPlacement) Name() string { return "random" }

// Place implements Placement: a seeded partial Fisher-Yates draw.
func (RandomPlacement) Place(t *topo.Topology, free []int, k int, rng *rand.Rand) []int {
	pool := append([]int(nil), free...)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	out := pool[:k]
	sort.Ints(out)
	return out
}

// GreedyPlacement packs the job under as few leaf switches as possible:
// leaves are filled from the one with the most free nodes downward, so
// intra-leaf tree edges never touch the oversubscribed uplinks.
type GreedyPlacement struct{}

// Name implements Placement.
func (GreedyPlacement) Name() string { return "greedy" }

// Place implements Placement. Deterministic without consuming rng:
// ties break on leaf index, so every rank computes the same answer.
func (GreedyPlacement) Place(t *topo.Topology, free []int, k int, rng *rand.Rand) []int {
	byLeaf := groupByLeaf(t, free)
	order := make([]int, 0, len(byLeaf))
	for leaf := range byLeaf {
		order = append(order, leaf)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if len(byLeaf[a]) != len(byLeaf[b]) {
			return len(byLeaf[a]) > len(byLeaf[b])
		}
		return a < b
	})
	out := make([]int, 0, k)
	for _, leaf := range order {
		for _, n := range byLeaf[leaf] {
			if len(out) == k {
				break
			}
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// GeneticPlacement searches placements with a small seeded genetic
// algorithm scoring locality (fewer distinct pods, then fewer distinct
// leaves — the static proxy for JCT on an oversubscribed fabric). It
// explores mixes greedy packing cannot reach when the free set is
// fragmented, at a construction cost only the scheduler pays.
type GeneticPlacement struct {
	// Generations and Population default to 12 and 16 when zero.
	Generations, Population int
}

// Name implements Placement.
func (g GeneticPlacement) Name() string { return "genetic" }

// Place implements Placement.
func (g GeneticPlacement) Place(t *topo.Topology, free []int, k int, rng *rand.Rand) []int {
	gens, pop := g.Generations, g.Population
	if gens == 0 {
		gens = 12
	}
	if pop == 0 {
		pop = 16
	}
	if k == len(free) {
		return append([]int(nil), free...)
	}

	// A genome is a k-subset of free, kept sorted. Seed the population
	// with random draws plus one greedy individual so the search starts
	// at least as good as the greedy baseline.
	genomes := make([][]int, pop)
	genomes[0] = GreedyPlacement{}.Place(t, free, k, rng)
	for i := 1; i < pop; i++ {
		genomes[i] = RandomPlacement{}.Place(t, free, k, rng)
	}
	cost := func(genome []int) int {
		pods := map[int]bool{}
		leaves := map[int]bool{}
		for _, n := range genome {
			pods[t.PodOf(n)] = true
			leaves[t.Leaf(n)] = true
		}
		return len(pods)*1000 + len(leaves)
	}
	best := append([]int(nil), genomes[0]...)
	bestCost := cost(best)
	for gen := 0; gen < gens; gen++ {
		sort.Slice(genomes, func(i, j int) bool { return cost(genomes[i]) < cost(genomes[j]) })
		if c := cost(genomes[0]); c < bestCost {
			bestCost = c
			best = append(best[:0], genomes[0]...)
		}
		// Elitism: keep the top half, refill the rest with mutated
		// copies — swap a member for a random free node.
		for i := pop / 2; i < pop; i++ {
			parent := genomes[i-pop/2]
			child := append(genomes[i][:0], parent...)
			in := map[int]bool{}
			for _, n := range child {
				in[n] = true
			}
			repl := free[rng.Intn(len(free))]
			if !in[repl] {
				child[rng.Intn(k)] = repl
				sort.Ints(child)
			}
			genomes[i] = child
		}
	}
	return best
}

// groupByLeaf buckets free nodes by their leaf switch, preserving the
// ascending order within each bucket.
func groupByLeaf(t *topo.Topology, free []int) map[int][]int {
	byLeaf := make(map[int][]int)
	for _, n := range free {
		l := t.Leaf(n)
		byLeaf[l] = append(byLeaf[l], n)
	}
	return byLeaf
}
