// Multi-tenant workload: a seeded Poisson job-arrival process drives
// concurrent jobs onto one shared cluster. Each job runs the
// bulk-synchronous reduction application on a subset of nodes via a
// sub-communicator, so jobs contend on the real switch ports of the
// shared (possibly oversubscribed) fabric — the cluster the ROADMAP
// north-star describes, as opposed to the paper's dedicated machine.
//
// Determinism layering: every random draw comes from a dedicated,
// purpose-keyed stream derived from (Seed, stream id) — never from the
// kernel RNG — so adding tenancy cannot perturb intra-job packet
// timing, and per-job draws keyed by (Seed, jobID) make each job's
// shape independent of scheduling order. Runs are bit-reproducible per
// (seed, fault seed, placement policy); the fingerprint tests enforce
// this across fresh builds, Reset and warm pool reuse.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"abred/internal/cluster"
	"abred/internal/coll"
	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
	"abred/internal/stats"
	"abred/internal/topo"
)

// Stream ids for streamSeed. Per-job streams add the job id, so keep
// the bases far apart (job counts are bounded by the communicator
// context space, ~7k).
const (
	streamShape = 1 << 20 // arrival process and job shapes (one stream)
	streamSkew  = 2 << 20 // + jobID: per-job compute-imbalance draws
	streamPlace = 3 << 20 // + jobID: per-job placement draws
)

// streamSeed derives an independent RNG seed from (seed, id) with a
// splitmix64-style mix, so streams never overlap even for adjacent ids.
func streamSeed(seed int64, id uint64) int64 {
	z := uint64(seed) + id*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// streamRNG returns the RNG of one derived stream.
func streamRNG(seed int64, id uint64) *rand.Rand {
	return rand.New(rand.NewSource(streamSeed(seed, id)))
}

// TenancyConfig describes a multi-tenant run.
type TenancyConfig struct {
	Specs []model.NodeSpec
	Topo  topo.Spec // the shared fabric; oversubscribe it to create contention
	Seed  int64
	Fault fault.Config

	Jobs        int      // number of jobs the arrival process emits
	MeanArrival sim.Time // mean Poisson inter-arrival gap
	MinNodes    int      // per-job node count drawn uniformly from
	MaxNodes    int      //   [MinNodes, MaxNodes]
	Iters       int      // per-job iterations drawn from [max(1,Iters/2), Iters]
	Count       int      // reduction elements per call
	Compute     sim.Time // baseline compute per iteration
	MaxSkew     sim.Time // per-rank imbalance bound per iteration
	Style       Style    // StyleDefault (blocking) or StyleBypass (AB)
	Place       Placement
	Pool        *cluster.Pool // optional warm cluster reuse
}

func (c *TenancyConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Jobs == 0 {
		c.Jobs = 4
	}
	if c.MeanArrival == 0 {
		c.MeanArrival = sim.Time(300 * time.Microsecond)
	}
	if c.MinNodes == 0 {
		c.MinNodes = 2
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = len(c.Specs) / 2
		if c.MaxNodes < c.MinNodes {
			c.MaxNodes = c.MinNodes
		}
	}
	if c.Iters == 0 {
		c.Iters = 8
	}
	if c.Count == 0 {
		c.Count = 2
	}
	if c.Compute == 0 {
		c.Compute = sim.Time(20 * time.Microsecond)
	}
	if c.MaxSkew == 0 {
		c.MaxSkew = sim.Time(50 * time.Microsecond)
	}
	if c.Place == nil {
		c.Place = RandomPlacement{}
	}
}

func (c *TenancyConfig) validate() {
	n := len(c.Specs)
	if n < 2 {
		panic("workload: tenancy needs at least two nodes")
	}
	if c.MinNodes < 2 || c.MaxNodes < c.MinNodes || c.MaxNodes > n {
		panic(fmt.Sprintf("workload: job size range [%d,%d] invalid for %d nodes",
			c.MinNodes, c.MaxNodes, n))
	}
	if c.Jobs > 7000 {
		// Each job's sub-communicator consumes one context-id block of
		// the uint16 context space.
		panic(fmt.Sprintf("workload: %d jobs exceed the communicator context space", c.Jobs))
	}
	switch c.Style {
	case StyleDefault, StyleBypass:
	default:
		panic(fmt.Sprintf("workload: tenancy supports default and app-bypass styles, not %v", c.Style))
	}
}

// jobShape is one job as emitted by the arrival process — fully
// determined before the simulation starts, so scheduling can never
// influence what a job is, only when and where it runs.
type jobShape struct {
	arrival sim.Time
	size    int
	iters   int
	skews   [][]sim.Time // [iter][local rank]
}

// genShapes materializes the arrival process: one shared stream for
// arrival gaps and job dimensions, one (Seed, jobID)-keyed stream per
// job for its skew matrix.
func genShapes(cfg *TenancyConfig) []jobShape {
	rng := streamRNG(cfg.Seed, streamShape)
	shapes := make([]jobShape, cfg.Jobs)
	var clock sim.Time
	for j := range shapes {
		clock += sim.Time(rng.ExpFloat64() * float64(cfg.MeanArrival))
		size := cfg.MinNodes + rng.Intn(cfg.MaxNodes-cfg.MinNodes+1)
		lo := cfg.Iters / 2
		if lo < 1 {
			lo = 1
		}
		iters := lo + rng.Intn(cfg.Iters-lo+1)

		skewRNG := streamRNG(cfg.Seed, streamSkew+uint64(j))
		skews := make([][]sim.Time, iters)
		flat := make([]sim.Time, iters*size)
		for it := range skews {
			skews[it] = flat[it*size : (it+1)*size]
			if cfg.MaxSkew > 0 {
				for r := range skews[it] {
					skews[it][r] = sim.Time(skewRNG.Int63n(int64(cfg.MaxSkew) + 1))
				}
			}
		}
		shapes[j] = jobShape{arrival: clock, size: size, iters: iters, skews: skews}
	}
	return shapes
}

// JobStat is one job's outcome.
type JobStat struct {
	ID      int
	Nodes   []int    // world node ids, ascending (local rank i = Nodes[i])
	Arrival sim.Time // when the arrival process emitted the job
	Start   sim.Time // when placement succeeded and ranks were released
	End     sim.Time // when the last rank finished
	JCT     sim.Time // End - Arrival: queue wait + run time
	AvgCPU  sim.Time // mean per-iteration reduction CPU across ranks
	Iters   int
}

// TenancyResult summarizes a multi-tenant run.
type TenancyResult struct {
	Style    Style
	Jobs     []JobStat
	JCT      stats.Summary // over per-job JCTs
	CPU      stats.Summary // over per-job AvgCPUs
	Makespan sim.Time      // end of the last job
	Events   uint64
	// Fingerprint folds every job record into one hash; the determinism
	// tests compare it across fresh builds, Reset and warm pool reuse.
	Fingerprint uint64
}

// jobRun is one placed job's live scheduler state.
type jobRun struct {
	id       int
	shape    *jobShape
	members  []int
	start    sim.Time
	end      sim.Time
	finished int
	cpu      []sim.Time // per local rank, per-iteration mean
}

// schedState is the shared scheduler state. The cluster runs on one
// monolithic kernel, so procs access it under cooperative scheduling —
// no locks, but every waiter re-checks its predicate after Wait.
type schedState struct {
	cond     sim.Cond
	free     []int // ascending free node ids
	assign   []*jobRun
	runs     []*jobRun
	done     int
	shutdown bool
}

// Tenancy runs the multi-tenant workload and reports per-job and
// aggregate statistics. The simulation is monolithic (the scheduler's
// condition variable spans all nodes); partitioned execution would need
// cross-LP scheduling, which the tenancy model does not attempt.
func Tenancy(cfg TenancyConfig) TenancyResult {
	cfg.defaults()
	cfg.validate()
	n := len(cfg.Specs)
	ccfg := cluster.Config{Specs: cfg.Specs, Seed: cfg.Seed, Topo: cfg.Topo, Fault: cfg.Fault}
	if err := ccfg.Validate(); err != nil {
		panic(err.Error())
	}
	var cl *cluster.Cluster
	if cfg.Pool != nil {
		cl = cfg.Pool.Get(ccfg)
		defer cfg.Pool.Put(cl)
	} else {
		cl = cluster.New(ccfg)
		defer cl.Close()
	}

	shapes := genShapes(&cfg)
	st := &schedState{assign: make([]*jobRun, n), free: make([]int, n)}
	st.cond.Init("tenancy")
	for i := range st.free {
		st.free[i] = i
	}

	// The driver is the arrival process plus FCFS queue: emit each job
	// at its arrival time, wait (head-of-line) until enough nodes are
	// free, place it, hand the assignment to the member nodes.
	cl.K.Spawn("tenancy-driver", func(p *sim.Proc) {
		for j := range shapes {
			js := &shapes[j]
			if js.arrival > p.Now() {
				p.Sleep(js.arrival - p.Now())
			}
			for len(st.free) < js.size {
				st.cond.Wait(p)
			}
			placeRNG := streamRNG(cfg.Seed, streamPlace+uint64(j))
			members := cfg.Place.Place(cl.Topo, st.free, js.size, placeRNG)
			st.free = removeAll(st.free, members)
			jr := &jobRun{id: j, shape: js, members: members,
				start: p.Now(), cpu: make([]sim.Time, js.size)}
			st.runs = append(st.runs, jr)
			for _, m := range members {
				st.assign[m] = jr
			}
			st.cond.Broadcast()
		}
		for st.done < len(shapes) {
			st.cond.Wait(p)
		}
		st.shutdown = true
		st.cond.Broadcast()
	})

	cl.Run(func(nd *cluster.Node, w *mpi.Comm) {
		for {
			for st.assign[nd.ID] == nil && !st.shutdown {
				st.cond.Wait(nd.Proc)
			}
			jr := st.assign[nd.ID]
			if jr == nil {
				return
			}
			st.assign[nd.ID] = nil
			runTenantJob(&cfg, nd, jr)
			jr.finished++
			if jr.finished == len(jr.members) {
				// Last rank out: the trailing barrier of the final
				// iteration guarantees no packet addressed to these
				// nodes is still in flight, so they can be reassigned.
				jr.end = nd.Proc.Now()
				st.free = insertAll(st.free, jr.members)
				st.done++
				st.cond.Broadcast()
			}
		}
	})

	res := TenancyResult{Style: cfg.Style, Events: cl.Events()}
	jcts := make([]sim.Time, len(st.runs))
	cpus := make([]sim.Time, len(st.runs))
	const prime = 1099511628211
	fp := uint64(14695981039346656037)
	mix := func(x uint64) {
		fp ^= x
		fp *= prime
	}
	for i, jr := range st.runs {
		var cpu sim.Time
		for _, c := range jr.cpu {
			cpu += c
		}
		cpu /= sim.Time(len(jr.cpu))
		stat := JobStat{
			ID: jr.id, Nodes: jr.members,
			Arrival: jr.shape.arrival, Start: jr.start, End: jr.end,
			JCT: jr.end - jr.shape.arrival, AvgCPU: cpu, Iters: jr.shape.iters,
		}
		res.Jobs = append(res.Jobs, stat)
		jcts[i] = stat.JCT
		cpus[i] = cpu
		if jr.end > res.Makespan {
			res.Makespan = jr.end
		}
		mix(uint64(jr.id))
		mix(uint64(stat.Arrival))
		mix(uint64(stat.Start))
		mix(uint64(stat.End))
		mix(uint64(stat.AvgCPU))
		for _, m := range jr.members {
			mix(uint64(m))
		}
	}
	res.JCT = stats.Summarize(jcts)
	res.CPU = stats.Summarize(cpus)
	res.Fingerprint = fp
	return res
}

// runTenantJob is one rank's share of one job: the CPU-utilization
// measurement loop of bench.CPUUtil on the job's sub-communicator —
// interruptible skew spin, reduction, conservative catch-up spin, with
// skew and catch-up subtracted so what remains is reduction CPU.
func runTenantJob(cfg *TenancyConfig, nd *cluster.Node, jr *jobRun) {
	c := mpi.Sub(nd.MPI, jr.members, jr.id)
	local := c.Rank()
	count := cfg.Count
	catchup := cfg.MaxSkew + tenantLatency(len(jr.members), count)

	in := make([]byte, count*8)
	out := make([]byte, count*8)
	var cpu sim.Time
	for it := 0; it < jr.shape.iters; it++ {
		skew := jr.shape.skews[it][local]
		copy(in, mpi.Float64sToBytes([]float64{float64(local + it)}))
		t0 := nd.Proc.Now()
		nd.Proc.SpinInterruptible(cfg.Compute + skew)
		switch cfg.Style {
		case StyleDefault:
			coll.Reduce(c, in, out, count, mpi.Float64, mpi.OpSum, 0)
		case StyleBypass:
			nd.Engine.Reduce(c, in, out, count, mpi.Float64, mpi.OpSum, 0)
		}
		nd.Proc.SpinInterruptible(catchup)
		cpu += nd.Proc.Now() - t0 - skew - catchup - cfg.Compute
		coll.Barrier(c)
	}
	jr.cpu[local] = cpu / sim.Time(jr.shape.iters)
}

// tenantLatency is the conservative per-job reduction-latency bound
// sizing the catch-up delay (the paper's "conservative estimate of the
// maximum reduction latency"), with extra slack for port contention
// from co-running jobs.
func tenantLatency(size, count int) sim.Time {
	depth := coll.Depth(size)
	if depth == 0 {
		depth = 1
	}
	perHop := 25*time.Microsecond + time.Duration(count)*100*time.Nanosecond
	return sim.Time(depth)*perHop + 300*time.Microsecond
}

// removeAll returns free minus members; both ascending.
func removeAll(free, members []int) []int {
	out := free[:0]
	i := 0
	for _, f := range free {
		if i < len(members) && members[i] == f {
			i++
			continue
		}
		out = append(out, f)
	}
	return out
}

// insertAll merges members back into free, keeping ascending order.
func insertAll(free, members []int) []int {
	free = append(free, members...)
	sort.Ints(free)
	return free
}
