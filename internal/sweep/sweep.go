// Package sweep executes grids of independent simulations across a
// bounded worker pool.
//
// One figure of the paper's evaluation is hundreds of self-contained
// simulation runs: each builds its own kernel, cluster and RNG streams
// from an explicit seed and shares nothing with its neighbours. A Job
// models exactly that — a pure function of its declared parameters and
// seed producing a Point — which makes the grid embarrassingly parallel.
//
// Determinism guarantee: Run reassembles results positionally, so
// Points[i] always belongs to Jobs[i] no matter which worker computed it
// or in what order jobs finished. With pure jobs, output is bit-for-bit
// identical for any worker count, including 1 (serial). Only the Perf
// block — wall-clock, throughput — varies between runs.
package sweep

import (
	"runtime"
	"sync"
	"time"
)

// Job is one independent simulation run. Run must be pure: it builds its
// entire world (kernel, cluster, RNG streams) from its captured spec and
// Seed, touches no shared state, and returns its result plus the number
// of simulated events it executed.
type Job[T any] struct {
	Name string // for diagnostics; "fig6/skew=300us/ab/n=4"
	Seed int64
	Run  func() (T, uint64)
}

// Point is one completed job: its value plus the engine's measurements.
type Point[T any] struct {
	Value  T
	Events uint64        // simulated events the job executed
	Wall   time.Duration // real time the job took
}

// Perf summarizes how a sweep executed; it is reporting-only and never
// part of rendered tables (which must stay byte-identical across worker
// counts).
type Perf struct {
	Name    string
	Jobs    int
	Workers int
	Wall    time.Duration // elapsed wall-clock for the whole sweep
	JobWall time.Duration // sum of per-job wall-clock (serial equivalent)
	Events  uint64        // simulated events across all jobs
	Allocs  uint64        // heap allocations during the sweep (all workers)

	// HeapPeak is the largest live-heap sample observed while the sweep
	// ran (HeapAlloc, sampled every 25 ms plus once at each end). It
	// bounds the sweep's real memory footprint — the number that decides
	// whether a 16384-node point fits on the machine at all.
	HeapPeak uint64
}

// Speedup is the sweep's parallel speedup: serial-equivalent time over
// elapsed time.
func (p Perf) Speedup() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.JobWall) / float64(p.Wall)
}

// EventsPerSec is simulated-event throughput over the sweep's wall time.
func (p Perf) EventsPerSec() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.Events) / p.Wall.Seconds()
}

// AllocsPerEvent is the sweep's heap-allocation cost per simulated event
// — the kernel hot path's headline efficiency number. It includes the
// per-job setup allocations (cluster construction), so long-running jobs
// approach the kernel's steady-state cost from above.
func (p Perf) AllocsPerEvent() float64 {
	if p.Events == 0 {
		return 0
	}
	return float64(p.Allocs) / float64(p.Events)
}

// Result pairs a sweep's points (in job order) with its execution
// summary.
type Result[T any] struct {
	Points []Point[T]
	Perf   Perf
}

// Values returns the job results alone, in job order.
func (r *Result[T]) Values() []T {
	vs := make([]T, len(r.Points))
	for i, p := range r.Points {
		vs[i] = p.Value
	}
	return vs
}

// Workers resolves a requested worker count: n <= 0 means GOMAXPROCS,
// and a pool never exceeds the number of jobs.
func Workers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Sweep is an ordered set of independent jobs — one declared grid.
type Sweep[T any] struct {
	Name string
	Jobs []Job[T]
}

// Run executes the sweep on a pool of workers (<= 0 selects GOMAXPROCS)
// and returns the points in job order.
func (s Sweep[T]) Run(workers int) *Result[T] {
	workers = Workers(workers, len(s.Jobs))
	points := make([]Point[T], len(s.Jobs))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs
	heapPeak := ms.HeapAlloc
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		// Low-rate sampler; 25 ms catches every grid cell that lives
		// long enough to matter while costing the workers nothing.
		defer close(watchDone)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		var wms runtime.MemStats
		for {
			select {
			case <-stopWatch:
				return
			case <-tick.C:
				runtime.ReadMemStats(&wms)
				if wms.HeapAlloc > heapPeak {
					heapPeak = wms.HeapAlloc
				}
			}
		}
	}()
	start := time.Now()
	if workers <= 1 {
		for i := range s.Jobs {
			points[i] = runJob(s.Jobs[i])
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					points[i] = runJob(s.Jobs[i])
				}
			}()
		}
		for i := range s.Jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	perf := Perf{Name: s.Name, Jobs: len(s.Jobs), Workers: workers, Wall: time.Since(start)}
	close(stopWatch)
	<-watchDone
	runtime.ReadMemStats(&ms)
	perf.Allocs = ms.Mallocs - mallocs0
	if ms.HeapAlloc > heapPeak {
		heapPeak = ms.HeapAlloc
	}
	perf.HeapPeak = heapPeak
	for i := range points {
		perf.JobWall += points[i].Wall
		perf.Events += points[i].Events
	}
	return &Result[T]{Points: points, Perf: perf}
}

// Run is the convenience form: execute jobs as a named sweep.
func Run[T any](name string, jobs []Job[T], workers int) *Result[T] {
	return Sweep[T]{Name: name, Jobs: jobs}.Run(workers)
}

// runJob executes one job, timing it.
func runJob[T any](j Job[T]) Point[T] {
	t0 := time.Now()
	v, events := j.Run()
	return Point[T]{Value: v, Events: events, Wall: time.Since(t0)}
}
