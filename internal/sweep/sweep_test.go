package sweep

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// squareJobs builds n jobs whose results encode their index, with
// deliberately uneven run times so parallel completion order scrambles.
func squareJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("sq/%d", i),
			Seed: int64(i),
			Run: func() (int, uint64) {
				time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
				return i * i, uint64(i)
			},
		}
	}
	return jobs
}

// TestOrderedReassembly: points come back in job order for every worker
// count, regardless of completion order.
func TestOrderedReassembly(t *testing.T) {
	const n = 40
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 8, 64} {
		res := Run("squares", squareJobs(n), workers)
		if got := res.Values(); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results out of order: %v", workers, got)
		}
		if res.Perf.Jobs != n {
			t.Errorf("workers=%d: Perf.Jobs = %d", workers, res.Perf.Jobs)
		}
		if res.Perf.Workers > n {
			t.Errorf("pool larger than job count: %d", res.Perf.Workers)
		}
	}
}

// TestPerfAccounting: events aggregate exactly; job wall-clock sums; the
// serial pool reports workers=1.
func TestPerfAccounting(t *testing.T) {
	res := Run("acct", squareJobs(10), 1)
	if res.Perf.Workers != 1 {
		t.Errorf("workers = %d, want 1", res.Perf.Workers)
	}
	if res.Perf.Events != 45 { // 0+1+...+9
		t.Errorf("events = %d, want 45", res.Perf.Events)
	}
	if res.Perf.JobWall <= 0 || res.Perf.Wall <= 0 {
		t.Errorf("timings not recorded: %+v", res.Perf)
	}
	if res.Perf.Speedup() <= 0 || res.Perf.EventsPerSec() <= 0 {
		t.Errorf("derived metrics not positive: %+v", res.Perf)
	}
	if (Perf{}).Speedup() != 0 || (Perf{}).EventsPerSec() != 0 {
		t.Error("zero Perf must not divide by zero")
	}
}

// TestBoundedConcurrency: no more than the requested number of jobs run
// simultaneously.
func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	jobs := make([]Job[struct{}], 24)
	for i := range jobs {
		jobs[i] = Job[struct{}]{Run: func() (struct{}, uint64) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			return struct{}{}, 0
		}}
	}
	Run("bounded", jobs, workers)
	if p := peak.Load(); p > workers {
		t.Fatalf("%d jobs in flight, pool bound is %d", p, workers)
	}
}

// TestWorkersResolution covers the sizing rules.
func TestWorkersResolution(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Errorf("default workers = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Errorf("pool should shrink to job count: %d", w)
	}
	if w := Workers(-1, 0); w != 1 {
		t.Errorf("empty sweep still needs a floor of 1: %d", w)
	}
}

// TestEmptySweep: zero jobs is a valid, empty result.
func TestEmptySweep(t *testing.T) {
	res := Run[int]("empty", nil, 4)
	if len(res.Points) != 0 || res.Perf.Jobs != 0 {
		t.Fatalf("unexpected result for empty sweep: %+v", res.Perf)
	}
}
