// Package prof wires the standard runtime/pprof file profiles into the
// benchmark commands (-cpuprofile / -memprofile), so hot-path work on
// the simulator can be driven by profiles instead of guesses.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile to cpuPath and arranges a heap profile to
// memPath; either may be empty to disable that profile. The returned
// stop function must be called exactly once before process exit: it
// stops the CPU profile and writes the heap profile (after a GC, so the
// snapshot shows live memory rather than garbage).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
			}
		}
	}, nil
}
