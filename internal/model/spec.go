// Package model captures the hardware of the paper's testbed as a virtual
// time cost model.
//
// The paper's cluster (§VI) mixes two node classes connected by a
// Myrinet-2000 network:
//
//   - 16× quad-SMP 700 MHz Pentium-III, 66 MHz/64-bit PCI, PCI64B NIC
//     with a 133 MHz LANai 9.1 processor, and
//   - 16× dual-SMP 1 GHz Pentium-III, 33 MHz/32-bit PCI; four of these
//     carry PCI64C NICs with 200 MHz LANai 9.2, the rest PCI64B/9.1.
//
// Only one processor per node is used, so SMP width is irrelevant; what
// matters — and what the model captures — is the relative speed of host
// CPU, PCI bus, and NIC processor, because those set message latencies,
// copy costs and signal overheads.
package model

import "time"

// NodeSpec describes one node's hardware.
type NodeSpec struct {
	Class    string  // human-readable class name
	CPUMHz   int     // host processor clock
	PCIMBps  float64 // PCI bus bandwidth available for NIC DMA, MB/s
	LANaiMHz int     // NIC processor clock
}

// The paper's node classes. PCI theoretical bandwidths: 66 MHz × 64 bit =
// 528 MB/s, 33 MHz × 32 bit = 132 MB/s.
var (
	// PIII700PCI64B is the 700 MHz class: slower host, faster PCI.
	PIII700PCI64B = NodeSpec{Class: "piii-700/pci64b", CPUMHz: 700, PCIMBps: 528, LANaiMHz: 133}
	// PIII1GPCI64B is the 1 GHz class with the common PCI64B NIC:
	// faster host, slower PCI.
	PIII1GPCI64B = NodeSpec{Class: "piii-1g/pci64b", CPUMHz: 1000, PCIMBps: 132, LANaiMHz: 133}
	// PIII1GPCI64C is the 1 GHz class with the PCI64C NIC (200 MHz
	// LANai 9.2); the paper had four of these.
	PIII1GPCI64C = NodeSpec{Class: "piii-1g/pci64c", CPUMHz: 1000, PCIMBps: 132, LANaiMHz: 200}
)

// PaperCluster32 returns the paper's 32-node heterogeneous testbed with
// the two 16-node groups interlaced, exactly as the machine list in §VI
// ("the nodes from each of the two groups of 16 are interlaced"). The
// four PCI64C cards sit in the first four 1 GHz slots.
func PaperCluster32() []NodeSpec {
	specs := make([]NodeSpec, 32)
	fast := 0
	for i := range specs {
		if i%2 == 0 {
			specs[i] = PIII700PCI64B
		} else {
			if fast < 4 {
				specs[i] = PIII1GPCI64C
				fast++
			} else {
				specs[i] = PIII1GPCI64B
			}
		}
	}
	return specs
}

// PaperCluster returns the first n nodes of the interlaced 32-node list,
// matching how the paper scales system size (2, 4, 8, 16, 32).
func PaperCluster(n int) []NodeSpec {
	all := PaperCluster32()
	if n > len(all) {
		extra := make([]NodeSpec, n)
		for i := range extra {
			extra[i] = all[i%len(all)]
		}
		return extra
	}
	return all[:n]
}

// Homogeneous700 returns the homogeneous 16-node 700 MHz sub-cluster used
// for Fig. 9(b).
func Homogeneous700(n int) []NodeSpec {
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = PIII700PCI64B
	}
	return specs
}

// Homogeneous1G returns n identical 1 GHz/PCI64B nodes.
func Homogeneous1G(n int) []NodeSpec {
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = PIII1GPCI64B
	}
	return specs
}

// Uniform returns n idealized identical nodes (fast host, fast PCI); use
// for correctness tests where hardware variation is noise.
func Uniform(n int) []NodeSpec {
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{Class: "uniform", CPUMHz: 1000, PCIMBps: 528, LANaiMHz: 200}
	}
	return specs
}

// cpuScale returns the factor by which 1 GHz-calibrated host costs grow
// on this node.
func (s NodeSpec) cpuScale() float64 { return 1000 / float64(s.CPUMHz) }

// lanaiScale returns the factor by which 133 MHz-calibrated NIC costs
// grow on this node.
func (s NodeSpec) lanaiScale() float64 { return 133 / float64(s.LANaiMHz) }

// dur scales a base duration by f.
func dur(base time.Duration, f float64) time.Duration {
	return time.Duration(float64(base) * f)
}
