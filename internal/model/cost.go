package model

import "time"

// Costs holds the tunable base constants of the cost model, calibrated to
// a 1 GHz Pentium-III host, 133 MHz LANai 9.1 NIC and Myrinet-2000 wire
// unless noted. Per-node values are derived by scaling with the node's
// clock ratios (see CostModel). The defaults reproduce small-message GM
// one-way latencies of roughly 6–8 µs, in line with GM-over-Myrinet-2000
// measurements of the period.
type Costs struct {
	// Host side.
	HostCopyMBps    float64       // memcpy bandwidth at 1 GHz
	HostSendOvh     time.Duration // per-send library overhead at 1 GHz
	HostRecvOvh     time.Duration // per-receive library/matching overhead at 1 GHz
	ReducePerElem   time.Duration // arithmetic per double-word element at 1 GHz
	SignalOvh       time.Duration // kernel signal delivery + dispatch at 1 GHz
	SignalIgnored   time.Duration // trap cost of a signal found redundant (progress already ran)
	SignalDelay     time.Duration // latency from NIC raise to handler start (batches arrivals)
	PollIter        time.Duration // one pass of the progress-engine poll loop at 1 GHz
	PinBase         time.Duration // mlock-style syscall base cost (rendezvous)
	PinPerKB        time.Duration // incremental pinning cost per KB
	DescriptorOvh   time.Duration // build/enqueue one reduce descriptor at 1 GHz
	QueueSearchElem time.Duration // scan one queue entry during matching at 1 GHz

	// NIC side.
	NICPktOvh        time.Duration // LANai per-packet processing at 133 MHz
	NICComputeFactor float64       // LANai arithmetic slowdown vs a 1 GHz host (no FPU)

	// Interconnect.
	WireMBps   float64       // Myrinet-2000 link bandwidth (2 Gb/s)
	WireProp   time.Duration // cable propagation
	SwitchHop  time.Duration // crossbar cut-through latency
	MaxPayload int           // bytes per wire packet (GM MTU-ish)

	// Protocol.
	EagerThreshold int // bytes; larger messages use rendezvous
}

// DefaultCosts returns the calibrated base constants.
func DefaultCosts() Costs {
	return Costs{
		HostCopyMBps:     570,
		HostSendOvh:      900 * time.Nanosecond,
		HostRecvOvh:      900 * time.Nanosecond,
		ReducePerElem:    6 * time.Nanosecond,
		SignalOvh:        10 * time.Microsecond,
		SignalIgnored:    5 * time.Microsecond,
		SignalDelay:      6 * time.Microsecond,
		PollIter:         150 * time.Nanosecond,
		PinBase:          25 * time.Microsecond,
		PinPerKB:         700 * time.Nanosecond,
		DescriptorOvh:    500 * time.Nanosecond,
		QueueSearchElem:  40 * time.Nanosecond,
		NICPktOvh:        2000 * time.Nanosecond,
		NICComputeFactor: 16,
		WireMBps:         250, // 2 Gb/s
		WireProp:         300 * time.Nanosecond,
		SwitchHop:        500 * time.Nanosecond,
		MaxPayload:       4096,
		EagerThreshold:   16 * 1024,
	}
}

// costTab holds everything derivable once from a (NodeSpec, Costs) pair:
// clock scale factors, per-byte rates, and the fixed overheads already
// scaled to this node's clocks. Nodes with identical hardware share one
// table (see SharedCostModels) — a homogeneous 16384-node cluster builds
// one, not 16384 — and the hot-path cost queries do no division.
//
// Every derived value is computed by exactly the expression the
// corresponding CostModel method used to evaluate per call, in the same
// operation order, so precomputation cannot move a result by even one
// float-rounding step: simulations stay byte-identical.
type costTab struct {
	cpuScale   float64 // host-cost multiplier vs the 1 GHz calibration
	lanaiScale float64 // NIC-cost multiplier vs the 133 MHz calibration

	hostCopyPerByte float64 // ns per copied byte before host scaling
	pciPerByte      float64 // ns per byte of NIC DMA across this node's PCI bus
	wirePerByte     float64 // ns per byte of link serialization
	pinPerKBf       float64 // PinPerKB as float ns

	hostSendOvh   time.Duration
	hostRecvOvh   time.Duration
	signalOvh     time.Duration
	signalIgnored time.Duration
	pollIter      time.Duration
	descriptorOvh time.Duration
	nicPktOvh     time.Duration
}

func newCostTab(spec NodeSpec, c Costs) *costTab {
	cpu, lanai := spec.cpuScale(), spec.lanaiScale()
	return &costTab{
		cpuScale:        cpu,
		lanaiScale:      lanai,
		hostCopyPerByte: float64(time.Second) / (c.HostCopyMBps * 1e6),
		pciPerByte:      float64(time.Second) / (spec.PCIMBps * 1e6),
		wirePerByte:     float64(time.Second) / (c.WireMBps * 1e6),
		pinPerKBf:       float64(c.PinPerKB),
		hostSendOvh:     dur(c.HostSendOvh, cpu),
		hostRecvOvh:     dur(c.HostRecvOvh, cpu),
		signalOvh:       dur(c.SignalOvh, cpu),
		signalIgnored:   dur(c.SignalIgnored, cpu),
		pollIter:        dur(c.PollIter, cpu),
		descriptorOvh:   dur(c.DescriptorOvh, cpu),
		nicPktOvh:       dur(c.NICPktOvh, lanai),
	}
}

// CostModel binds the global cost constants to one node's hardware and
// answers "how long does operation X take on this node" in virtual time.
// It is a value type; copies share the derived table.
type CostModel struct {
	Spec NodeSpec
	C    Costs
	tab  *costTab
}

// NewCostModel builds a per-node cost model.
func NewCostModel(spec NodeSpec, c Costs) CostModel {
	return CostModel{Spec: spec, C: c, tab: newCostTab(spec, c)}
}

// SharedCostModels builds one cost model per node, deduplicating the
// derived tables across nodes with identical specs: each distinct
// NodeSpec in specs costs one table, however many nodes carry it.
func SharedCostModels(specs []NodeSpec, c Costs) []CostModel {
	cache := make(map[NodeSpec]CostModel, 4)
	out := make([]CostModel, len(specs))
	for i, s := range specs {
		cm, ok := cache[s]
		if !ok {
			cm = NewCostModel(s, c)
			cache[s] = cm
		}
		out[i] = cm
	}
	return out
}

// HostCopy returns the time for the host CPU to copy n bytes.
func (m CostModel) HostCopy(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return dur(time.Duration(m.tab.hostCopyPerByte*float64(n)), m.tab.cpuScale)
}

// HostSendOvh returns the per-send host library overhead.
func (m CostModel) HostSendOvh() time.Duration { return m.tab.hostSendOvh }

// HostRecvOvh returns the per-receive host matching overhead.
func (m CostModel) HostRecvOvh() time.Duration { return m.tab.hostRecvOvh }

// ReduceOp returns the time to combine n elements of size elemSize bytes
// with an arithmetic reduction operator.
func (m CostModel) ReduceOp(n, elemSize int) time.Duration {
	per := float64(m.C.ReducePerElem) * float64(elemSize) / 8.0
	return dur(time.Duration(per*float64(n)), m.tab.cpuScale)
}

// SignalOvh returns the cost of one NIC-raised signal reaching the
// application: kernel trap, handler dispatch, cache disturbance.
func (m CostModel) SignalOvh() time.Duration { return m.tab.signalOvh }

// SignalIgnoredOvh returns the trap cost of a signal whose handler finds
// nothing to do because progress was already underway (§V-C: "if a signal
// happens to occur while progress is already underway, it is simply
// ignored" — the kernel still delivered it).
func (m CostModel) SignalIgnoredOvh() time.Duration { return m.tab.signalIgnored }

// PollIter returns the cost of one idle pass of the progress engine's
// poll loop; blocking receives burn this continuously.
func (m CostModel) PollIter() time.Duration { return m.tab.pollIter }

// Pin returns the cost of registering n bytes for DMA (rendezvous mode).
func (m CostModel) Pin(n int) time.Duration {
	return m.C.PinBase + time.Duration(m.tab.pinPerKBf*float64(n)/1024)
}

// DescriptorOvh returns the cost of building and enqueuing one
// application-bypass reduce descriptor.
func (m CostModel) DescriptorOvh() time.Duration { return m.tab.descriptorOvh }

// QueueSearch returns the cost of scanning n queue entries while
// matching a message.
func (m CostModel) QueueSearch(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return dur(time.Duration(int64(m.C.QueueSearchElem)*int64(n)), m.tab.cpuScale)
}

// NICPkt returns the LANai control-program time to process one packet of
// n payload bytes, including the PCI DMA between host and NIC memory.
func (m CostModel) NICPkt(n int) time.Duration {
	dma := time.Duration(0)
	if n > 0 {
		dma = time.Duration(m.tab.pciPerByte * float64(n))
	}
	return m.tab.nicPktOvh + dma
}

// NICReduceOp returns the LANai control program's time to combine n
// elements of size elemSize. The LANai has no floating-point unit, so
// arithmetic runs NICComputeFactor times slower than on a 1 GHz host,
// further scaled by the NIC clock.
func (m CostModel) NICReduceOp(n, elemSize int) time.Duration {
	per := float64(m.C.ReducePerElem) * float64(elemSize) / 8.0 * m.C.NICComputeFactor
	return dur(time.Duration(per*float64(n)), m.tab.lanaiScale)
}

// WireTime returns link serialization plus propagation for n bytes on
// one hop (switch latency is charged separately by the fabric).
func (m CostModel) WireTime(n int) time.Duration {
	return m.C.WireProp + time.Duration(m.tab.wirePerByte*float64(n))
}
