package model

import (
	"testing"
	"time"
)

func TestPaperCluster32Layout(t *testing.T) {
	specs := PaperCluster32()
	if len(specs) != 32 {
		t.Fatalf("len = %d", len(specs))
	}
	n700, n64c, n64b1g := 0, 0, 0
	for i, s := range specs {
		if i%2 == 0 {
			if s != PIII700PCI64B {
				t.Errorf("slot %d: %+v, want 700 MHz class (interlaced)", i, s)
			}
			n700++
			continue
		}
		switch s {
		case PIII1GPCI64C:
			n64c++
		case PIII1GPCI64B:
			n64b1g++
		default:
			t.Errorf("slot %d unexpected class %+v", i, s)
		}
	}
	if n700 != 16 || n64c != 4 || n64b1g != 12 {
		t.Fatalf("mix = %d/%d/%d, want 16 quad-700, 4 PCI64C, 12 PCI64B 1 GHz", n700, n64c, n64b1g)
	}
}

func TestPaperClusterPrefixAndExtension(t *testing.T) {
	if got := len(PaperCluster(8)); got != 8 {
		t.Errorf("PaperCluster(8) has %d nodes", got)
	}
	big := PaperCluster(100)
	if len(big) != 100 {
		t.Fatalf("extension length %d", len(big))
	}
	for i := 0; i < 100; i++ {
		if big[i] != PaperCluster32()[i%32] {
			t.Fatalf("extension does not replicate the interlaced mix at %d", i)
		}
	}
}

func TestHomogeneous(t *testing.T) {
	for _, s := range Homogeneous700(16) {
		if s.CPUMHz != 700 {
			t.Fatal("Homogeneous700 not homogeneous")
		}
	}
	for _, s := range Homogeneous1G(4) {
		if s.CPUMHz != 1000 {
			t.Fatal("Homogeneous1G not homogeneous")
		}
	}
}

func TestCPUScaling(t *testing.T) {
	c := DefaultCosts()
	slow := NewCostModel(PIII700PCI64B, c)
	fast := NewCostModel(PIII1GPCI64B, c)
	ratio := float64(slow.HostSendOvh()) / float64(fast.HostSendOvh())
	if ratio < 1.41 || ratio > 1.45 {
		t.Errorf("700 MHz host cost ratio = %.3f, want ≈ 1000/700", ratio)
	}
	if slow.ReduceOp(100, 8) <= fast.ReduceOp(100, 8) {
		t.Error("reduce op must be slower on the slower host")
	}
	if slow.SignalOvh() <= fast.SignalOvh() {
		t.Error("signal cost must scale with host speed")
	}
}

func TestPCIScaling(t *testing.T) {
	c := DefaultCosts()
	fastPCI := NewCostModel(PIII700PCI64B, c) // 528 MB/s
	slowPCI := NewCostModel(PIII1GPCI64B, c)  // 132 MB/s
	if slowPCI.NICPkt(4096) <= fastPCI.NICPkt(4096) {
		t.Error("DMA over the slow PCI bus must cost more")
	}
	// Zero-byte packets cost only LANai processing, equal at 133 MHz.
	if slowPCI.NICPkt(0) != fastPCI.NICPkt(0) {
		t.Error("no-payload packet cost should not depend on PCI")
	}
}

func TestLANaiScaling(t *testing.T) {
	c := DefaultCosts()
	l133 := NewCostModel(PIII1GPCI64B, c)
	l200 := NewCostModel(PIII1GPCI64C, c)
	if l200.NICPkt(0) >= l133.NICPkt(0) {
		t.Error("200 MHz LANai must process packets faster")
	}
	if l200.NICReduceOp(64, 8) >= l133.NICReduceOp(64, 8) {
		t.Error("200 MHz LANai must compute faster")
	}
}

func TestCostMonotonicity(t *testing.T) {
	m := NewCostModel(PIII1GPCI64B, DefaultCosts())
	if m.HostCopy(1000) <= m.HostCopy(100) {
		t.Error("copy cost must grow with size")
	}
	if m.Pin(1<<20) <= m.Pin(1<<10) {
		t.Error("pin cost must grow with size")
	}
	if m.QueueSearch(10) <= m.QueueSearch(1) {
		t.Error("queue search must grow with depth")
	}
	if m.HostCopy(0) != 0 || m.QueueSearch(0) != 0 {
		t.Error("zero-size operations must be free")
	}
	if m.WireTime(4096) <= m.WireTime(0) {
		t.Error("wire time must grow with size")
	}
}

func TestNICComputeSlowerThanHost(t *testing.T) {
	m := NewCostModel(PIII1GPCI64B, DefaultCosts())
	if m.NICReduceOp(128, 8) <= m.ReduceOp(128, 8) {
		t.Error("the FPU-less LANai must be slower than the host at arithmetic")
	}
}

func TestGMLatencyBallpark(t *testing.T) {
	// The calibrated model should land small-message one-way latency in
	// GM-over-Myrinet-2000 territory (§III: a few microseconds).
	m := NewCostModel(PIII1GPCI64B, DefaultCosts())
	oneWay := m.HostSendOvh() + m.HostCopy(64) + m.NICPkt(64) +
		m.WireTime(64+48) + DefaultCosts().SwitchHop + m.NICPkt(64) + m.HostRecvOvh()
	if oneWay < 4*time.Microsecond || oneWay > 12*time.Microsecond {
		t.Errorf("one-way small-message latency %v outside the 4–12 µs GM ballpark", oneWay)
	}
}
