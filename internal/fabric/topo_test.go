package fabric

import (
	"testing"
	"time"

	"abred/internal/sim"
	"abred/internal/topo"
)

// buildTopo is build() plus a routed topology.
func buildTopo(n int, spec topo.Spec) (*sim.Kernel, *Fabric, [][]Frame) {
	k, f, got := build(n)
	f.SetTopology(topo.Build(spec, n))
	return k, f, got
}

// TestRoutedHopLatency pins the cut-through arithmetic on the smallest
// two-level tree. 0 -> 2 crosses leaf, spine, leaf: injection
// serialization (400 ns for 100 B) + three hops of prop + switch
// (3 x 800 ns) + one serialization onto each of the two inter-switch
// links (2 x 400 ns) = 2800 ns, versus 1200 ns on the crossbar.
func TestRoutedHopLatency(t *testing.T) {
	k, f, got := buildTopo(4, topo.Spec{Kind: topo.FatTree, K: 4})
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 2, Size: 100, Payload: "x"})
	})
	end := k.Run()
	if len(got[2]) != 1 {
		t.Fatalf("delivered %d frames", len(got[2]))
	}
	if want := 2800 * time.Nanosecond; end != want {
		t.Errorf("routed delivery at %v, want %v", end, want)
	}
	if h := f.Hops(0, 2); h != 3 {
		t.Errorf("Hops(0,2) = %d, want 3", h)
	}
}

// TestRoutedSameLeafMatchesCrossbar: hosts under one leaf switch see
// exactly the single-crossbar timing — the route has no inter-switch
// links, so the arithmetic reduces to the historical charge.
func TestRoutedSameLeafMatchesCrossbar(t *testing.T) {
	k, f, _ := buildTopo(4, topo.Spec{Kind: topo.FatTree, K: 4})
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 1, Size: 100, Payload: "x"})
	})
	if end, want := k.Run(), 1200*time.Nanosecond; end != want {
		t.Errorf("same-leaf delivery at %v, want %v", end, want)
	}
	if h := f.Hops(0, 1); h != 1 {
		t.Errorf("Hops(0,1) = %d, want 1", h)
	}
}

// TestSetTopologyCrossbarIsNoop: a crossbar spec — or a tree small
// enough to fit one switch — must leave the fabric on the original
// nil-topology path, not merely an equivalent one.
func TestSetTopologyCrossbarIsNoop(t *testing.T) {
	_, f, _ := build(8)
	f.SetTopology(topo.Build(topo.Spec{}, 8))
	if f.Topology() != nil {
		t.Error("crossbar spec installed a topology")
	}
	f.SetTopology(topo.Build(topo.Spec{Kind: topo.FatTree, K: 16}, 8))
	if f.Topology() != nil {
		t.Error("8 hosts fit one 16-port switch; topology should stay nil")
	}
	if w, wt := f.TopoStats(); w != 0 || wt != 0 {
		t.Errorf("crossbar reports contention %d/%v", w, wt)
	}
}

// TestUplinkContention: two leaf-mates firing at one far destination
// share their leaf's uplink (D-mod-k picks it by destination), so the
// second frame queues behind the first for exactly one serialization.
func TestUplinkContention(t *testing.T) {
	k, f, got := buildTopo(4, topo.Spec{Kind: topo.FatTree, K: 4})
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 2, Size: 100, Payload: "a"})
		f.Send(Frame{Src: 1, Dst: 2, Size: 100, Payload: "b"})
	})
	end := k.Run()
	if len(got[2]) != 2 {
		t.Fatalf("delivered %d frames", len(got[2]))
	}
	waits, waitTime := f.TopoStats()
	if waits == 0 || waitTime == 0 {
		t.Fatalf("no uplink contention recorded (waits=%d waitTime=%v)", waits, waitTime)
	}
	// Frame b waits 400 ns at the shared uplink; the rest of its path
	// pipelines exactly behind a (each stage frees just as b's head
	// arrives), so it lands one wait later: 2800 + 400 = 3200.
	if want := 3200 * time.Nanosecond; end != want {
		t.Errorf("contended delivery at %v, want %v", end, want)
	}
	if got[2][0].Payload != "a" || got[2][1].Payload != "b" {
		t.Errorf("shared-uplink frames reordered: %v, %v", got[2][0].Payload, got[2][1].Payload)
	}
}

// TestRoutedFIFOPerPair: per-(src,dst) FIFO — the GM ordering contract —
// survives multi-hop routing, including flows that cross at shared
// links with wildly varying frame sizes.
func TestRoutedFIFOPerPair(t *testing.T) {
	k, f, got := buildTopo(8, topo.Spec{Kind: topo.FatTree, K: 4})
	k.After(0, func() {
		for i := 0; i < 20; i++ {
			f.Send(Frame{Src: 0, Dst: 6, Size: 4000 - i*150, Payload: i})
			f.Send(Frame{Src: 1, Dst: 6, Size: 50 + i, Payload: 100 + i})
			f.Send(Frame{Src: 5, Dst: 6, Size: 900, Payload: 200 + i})
		}
	})
	k.Run()
	if len(got[6]) != 60 {
		t.Fatalf("delivered %d frames", len(got[6]))
	}
	last := map[int]int{0: -1, 1: 99, 5: 199}
	for _, fr := range got[6] {
		v := fr.Payload.(int)
		if v <= last[fr.Src] {
			t.Fatalf("src %d delivered %d after %d", fr.Src, v, last[fr.Src])
		}
		last[fr.Src] = v
	}
}

// TestOnHopSpans: the per-hop trace hook sees one occupancy per routed
// link, back to back along the path.
func TestOnHopSpans(t *testing.T) {
	k, f, _ := buildTopo(4, topo.Spec{Kind: topo.FatTree, K: 4})
	type hop struct {
		link       int32
		start, end sim.Time
	}
	var hops []hop
	f.OnHop = func(fr Frame, link int32, start, end sim.Time) {
		hops = append(hops, hop{link, start, end})
	}
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 2, Size: 100, Payload: "x"})
	})
	k.Run()
	if len(hops) != 2 {
		t.Fatalf("recorded %d hop spans, want 2", len(hops))
	}
	// Cut-through: the head crosses the uplink at 800 (after injection
	// serialization + host hop), reaches the next link 800 ns later, and
	// each link is held for one serialization while the tail streams.
	want := []hop{
		{hops[0].link, 800 * time.Nanosecond, 1200 * time.Nanosecond},
		{hops[1].link, 1600 * time.Nanosecond, 2000 * time.Nanosecond},
	}
	for i, h := range hops {
		if h != want[i] {
			t.Errorf("hop %d = %+v, want %+v", i, h, want[i])
		}
	}
	if hops[0].link == hops[1].link {
		t.Error("up and down traversed the same directed link")
	}
}

// TestRoutedSendZeroAllocSteadyState: routing must not reintroduce
// per-frame allocations — the Path is caller stack storage and the
// link queues are flat arrays.
func TestRoutedSendZeroAllocSteadyState(t *testing.T) {
	k, f, _ := buildTopo(16, topo.Spec{Kind: topo.FatTree, K: 4})
	payload := &Frame{}
	for i := 0; i < 32; i++ {
		f.Send(Frame{Src: 0, Dst: 15, Size: 64, Payload: payload})
	}
	k.Run()
	if avg := testing.AllocsPerRun(200, func() {
		f.Send(Frame{Src: 0, Dst: 15, Size: 64, Payload: payload})
		k.Run()
	}); avg != 0 {
		t.Errorf("routed fabric.Send allocates %.2f per frame in steady state, want 0", avg)
	}
}

// TestTopoReset: Reset clears link occupancy and contention counters
// but keeps the topology installed — it is a construction-time property
// like the cost table, checked by cluster.Reset.
func TestTopoReset(t *testing.T) {
	k, f, _ := buildTopo(4, topo.Spec{Kind: topo.FatTree, K: 4})
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 2, Size: 100, Payload: "x"})
		f.Send(Frame{Src: 1, Dst: 2, Size: 100, Payload: "y"})
	})
	k.Run()
	if w, _ := f.TopoStats(); w == 0 {
		t.Fatal("setup produced no contention")
	}
	f.Reset()
	if f.Topology() == nil {
		t.Fatal("Reset dropped the topology")
	}
	if w, wt := f.TopoStats(); w != 0 || wt != 0 {
		t.Fatalf("Reset left contention counters %d/%v", w, wt)
	}
	for i, free := range f.linkFree {
		if free != 0 {
			t.Fatalf("Reset left link %d busy until %v", i, free)
		}
	}
}
