// Package fabric models the Myrinet-2000 interconnect: full-duplex links
// from every node into a central cut-through crossbar switch.
//
// The model charges, per frame,
//
//	serialization on the source link (2 Gb/s) +
//	cable propagation + one switch hop
//
// and serializes frames on both the source's injection link and the
// destination's ejection link, which yields the FIFO delivery order GM
// guarantees per (source, destination) pair — the property the paper's
// late-message matching relies on (§IV-D). On the default single
// crossbar, switch-internal contention is not modeled; with the paper's
// ≤1 KB reduction messages one crossbar is never the bottleneck.
//
// SetTopology replaces the single crossbar with a multi-stage Clos
// (internal/topo): frames then follow deterministic routed paths, pay
// cable propagation plus a switch stage per crossing, and contend FIFO
// at every shared inter-switch egress port. The crossbar configuration
// never takes that branch and stays byte-identical to the historical
// model.
package fabric

import (
	"fmt"

	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// Frame is one message on the wire. Payload is opaque to the fabric.
type Frame struct {
	Src, Dst int
	Size     int // bytes on the wire, including headers
	Payload  any
	SentAt   sim.Time
}

// Verdict is one frame's fate on a faulty fabric. The zero Verdict is a
// clean traversal.
type Verdict struct {
	Drop  bool     // frame is lost in the switch, never delivered
	Dup   bool     // a duplicate copy is also delivered
	Delay sim.Time // extra delivery latency (reorder jitter); does not
	// hold the ejection link, so later frames can overtake
}

// Injector decides per-frame faults. Judge runs once per Send, in
// scheduler context, and must be deterministic given the fabric's call
// sequence (draw randomness from a dedicated seeded stream).
type Injector interface {
	Judge(src, dst int) Verdict
}

// Fabric connects n nodes through one switch.
type Fabric struct {
	k         *sim.Kernel
	costs     model.Costs
	nsPerByte float64 // serialization cost per byte, hoisted from the per-frame path
	sinks     []func(Frame)

	injectFree []sim.Time // source link busy-until
	ejectFree  []sim.Time // destination link busy-until

	// Multi-stage routing, nil for the single crossbar: frames then
	// traverse topo's routed links, each with its own FIFO egress queue
	// in linkFree. The crossbar keeps its historical nil-check-free
	// arithmetic and stays byte-identical.
	topo     *topo.Topology
	linkFree []sim.Time // inter-switch link busy-until, indexed by link id

	dfree []*delivery // recycled in-flight frame records

	frames       uint64
	bytes        uint64
	dropped      uint64
	duplicated   uint64
	linkWaits    uint64      // routed frames that blocked on a busy inter-switch link
	linkWaitTime sim.Time    // total time spent so blocked
	OnDeliver    func(Frame) // optional trace hook, called at delivery time
	// OnHop observes each inter-switch link occupancy of a routed frame:
	// the frame holds link for [start, end). Never called on a crossbar.
	OnHop func(fr Frame, link int32, start, end sim.Time)

	// Inject, when non-nil, is consulted once per Send; the nil path is
	// allocation-free and byte-identical to a fault-free fabric.
	Inject Injector
	// OnDrop observes frames the injector discards, so the owner can
	// recycle pooled payloads that will never reach a sink.
	OnDrop func(Frame)
	// ClonePayload deep-copies a payload for duplicated frames. Without
	// it the duplicate shares the original's Payload pointer — unsafe
	// when sinks recycle payloads into pools after consuming them.
	ClonePayload func(any) any
}

// New builds a fabric for n nodes.
func New(k *sim.Kernel, n int, costs model.Costs) *Fabric {
	return &Fabric{
		k:          k,
		costs:      costs,
		nsPerByte:  float64(sim.Time(1e9)) / (costs.WireMBps * 1e6),
		sinks:      make([]func(Frame), n),
		injectFree: make([]sim.Time, n),
		ejectFree:  make([]sim.Time, n),
	}
}

// Reset returns the fabric to its just-built state for a cluster reuse
// cycle: link occupancy, counters and hooks clear, while the node sinks
// registered by Connect and the delivery-record pool survive. Any frame
// still in flight was already discarded by the kernel reset that
// precedes this call; its delivery record is simply lost from the pool.
func (f *Fabric) Reset() {
	for i := range f.injectFree {
		f.injectFree[i] = 0
		f.ejectFree[i] = 0
	}
	for i := range f.linkFree {
		f.linkFree[i] = 0
	}
	f.frames, f.bytes, f.dropped, f.duplicated = 0, 0, 0, 0
	f.linkWaits, f.linkWaitTime = 0, 0
	f.OnDeliver = nil
	f.OnHop = nil
	f.Inject = nil
	f.OnDrop = nil
	f.ClonePayload = nil
}

// SetTopology installs a multi-stage topology. A nil topology, or one
// with no inter-switch links (crossbar; a fat-tree or leaf/spine small
// enough to fit one switch), leaves the fabric on the original
// single-crossbar path. The topology is a construction-time property
// and survives Reset, like the cost table.
func (f *Fabric) SetTopology(t *topo.Topology) {
	if t == nil || t.Links() == 0 {
		f.topo = nil
		f.linkFree = nil
		return
	}
	if t.Nodes() != len(f.sinks) {
		panic(fmt.Sprintf("fabric: topology for %d nodes on a %d-node fabric",
			t.Nodes(), len(f.sinks)))
	}
	f.topo = t
	f.linkFree = make([]sim.Time, t.Links())
}

// Topology returns the installed multi-stage topology, nil on the
// single-crossbar path.
func (f *Fabric) Topology() *topo.Topology { return f.topo }

// Hops returns the number of switch crossings a frame src -> dst takes:
// always 1 on the crossbar (and on loopback), 2a+1 through a routed
// topology. The GM reliability layer scales its per-link RTO by this.
func (f *Fabric) Hops(src, dst int) int {
	if f.topo == nil || src == dst {
		return 1
	}
	return f.topo.Hops(src, dst)
}

// TopoStats reports inter-switch link contention on a routed topology:
// how many link occupancies had to wait for a busy link and the total
// time so spent. Both zero on the crossbar.
func (f *Fabric) TopoStats() (waits uint64, waitTime sim.Time) {
	return f.linkWaits, f.linkWaitTime
}

// delivery is one frame in flight: a pooled sim.Runner, so scheduling a
// delivery allocates nothing in steady state (the old closure-per-frame
// was two heap allocations: the closure and the escaped frame).
type delivery struct {
	f  *Fabric
	fr Frame
}

// RunEvent delivers the frame at its arrival time (scheduler context).
func (d *delivery) RunEvent() {
	f, fr := d.f, d.fr
	// Recycle before invoking the sink: the sink may send a new frame,
	// which can then reuse this record.
	d.fr = Frame{}
	f.dfree = append(f.dfree, d)
	if f.OnDeliver != nil {
		f.OnDeliver(fr)
	}
	f.sinks[fr.Dst](fr)
}

// Nodes returns the number of attached nodes.
func (f *Fabric) Nodes() int { return len(f.sinks) }

// Connect registers the delivery callback for node id. The callback runs
// in scheduler context at the frame's arrival time; it must not park.
func (f *Fabric) Connect(id int, sink func(Frame)) {
	if f.sinks[id] != nil {
		panic(fmt.Sprintf("fabric: node %d connected twice", id))
	}
	f.sinks[id] = sink
}

// serialize returns the link occupancy of n bytes at 2 Gb/s.
func (f *Fabric) serialize(n int) sim.Time {
	return sim.Time(f.nsPerByte * float64(n))
}

// Send injects a frame. Delivery is scheduled for
// max(now, injection-link free) + serialization + propagation + switch
// hop, further delayed if the destination's ejection link is busy: the
// frame's head waits for the link, then the frame serializes onto it,
// so N senders to one node contend for the ejection link's bandwidth.
func (f *Fabric) Send(frame Frame) {
	if frame.Src < 0 || frame.Src >= len(f.sinks) || frame.Dst < 0 || frame.Dst >= len(f.sinks) {
		panic(fmt.Sprintf("fabric: bad route %d -> %d", frame.Src, frame.Dst))
	}
	if f.sinks[frame.Dst] == nil {
		panic(fmt.Sprintf("fabric: node %d not connected", frame.Dst))
	}
	now := f.k.Now()
	frame.SentAt = now

	depart := now
	if f.injectFree[frame.Src] > depart {
		depart = f.injectFree[frame.Src]
	}
	ser := f.serialize(frame.Size)
	depart += ser
	f.injectFree[frame.Src] = depart

	f.frames++
	f.bytes += uint64(frame.Size)

	if f.Inject != nil {
		v := f.Inject.Judge(frame.Src, frame.Dst)
		if v.Drop {
			// The frame occupied the injection link but dies in the
			// switch: no ejection occupancy, no delivery.
			f.dropped++
			if f.OnDrop != nil {
				f.OnDrop(frame)
			}
			return
		}
		f.eject(frame, now, depart, ser, v.Delay)
		if v.Dup {
			dup := frame
			if f.ClonePayload != nil {
				dup.Payload = f.ClonePayload(frame.Payload)
			}
			f.duplicated++
			f.eject(dup, now, depart, ser, v.Delay)
		}
		return
	}
	f.eject(frame, now, depart, ser, 0)
}

// eject charges the destination's ejection link and schedules delivery.
// The frame's head reaches the link ser before its injection finished,
// plus propagation and one switch hop (zero on loopback); it then waits
// for the link to free and serializes onto it. For an uncontended flow
// this reduces to the classic depart + prop + hop arrival. extra delays
// delivery without holding the link, so later frames can overtake.
func (f *Fabric) eject(frame Frame, now, depart, ser, extra sim.Time) {
	head := depart - ser
	if frame.Src != frame.Dst {
		if f.topo != nil {
			head = f.traverse(frame, head, ser)
		} else {
			head += f.costs.WireProp + f.costs.SwitchHop
		}
	}
	if f.ejectFree[frame.Dst] > head {
		head = f.ejectFree[frame.Dst]
	}
	arrive := head + ser
	f.ejectFree[frame.Dst] = arrive

	var dl *delivery
	if n := len(f.dfree); n > 0 {
		dl = f.dfree[n-1]
		f.dfree[n-1] = nil
		f.dfree = f.dfree[:n-1]
	} else {
		dl = &delivery{f: f}
	}
	dl.fr = frame
	f.k.AfterRunner(arrive+extra-now, dl)
}

// traverse walks the frame's head through the routed inter-switch
// links. Each link is an egress port with a FIFO queue: the head waits
// until the link frees, holds it for one serialization (cut-through —
// the tail streams behind the head, so a switch forwards after one
// header, not one full frame), and pays cable propagation plus a
// crossbar stage per crossing. The first hop (host cable into the leaf
// switch) has no shared queue — the injection link already serialized
// it — so it only pays latency. With zero routed links this reduces
// exactly to the crossbar's prop + hop charge.
func (f *Fabric) traverse(frame Frame, head, ser sim.Time) sim.Time {
	head += f.costs.WireProp + f.costs.SwitchHop
	var p topo.Path
	f.topo.Route(frame.Src, frame.Dst, &p)
	for i := 0; i < p.N; i++ {
		li := p.Links[i]
		if free := f.linkFree[li]; free > head {
			f.linkWaits++
			f.linkWaitTime += free - head
			head = free
		}
		end := head + ser
		f.linkFree[li] = end
		if f.OnHop != nil {
			f.OnHop(frame, li, head, end)
		}
		head += f.costs.WireProp + f.costs.SwitchHop
	}
	return head
}

// Stats reports total frames and bytes injected so far.
func (f *Fabric) Stats() (frames, bytes uint64) { return f.frames, f.bytes }

// FaultStats reports frames the injector dropped or duplicated.
func (f *Fabric) FaultStats() (dropped, duplicated uint64) { return f.dropped, f.duplicated }
