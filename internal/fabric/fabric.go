// Package fabric models the Myrinet-2000 interconnect: full-duplex links
// from every node into a central cut-through crossbar switch.
//
// The model charges, per frame,
//
//	serialization on the source link (2 Gb/s) +
//	cable propagation + one switch hop
//
// and serializes frames on both the source's injection link and the
// destination's ejection link, which yields the FIFO delivery order GM
// guarantees per (source, destination) pair — the property the paper's
// late-message matching relies on (§IV-D). On the default single
// crossbar, switch-internal contention is not modeled; with the paper's
// ≤1 KB reduction messages one crossbar is never the bottleneck.
//
// SetTopology replaces the single crossbar with a multi-stage Clos
// (internal/topo): frames then follow deterministic routed paths, pay
// cable propagation plus a switch stage per crossing, and contend FIFO
// at every shared inter-switch egress port. The crossbar configuration
// never takes that branch and stays byte-identical to the historical
// model.
package fabric

import (
	"fmt"
	"sort"

	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// Frame is one message on the wire. Payload is opaque to the fabric.
type Frame struct {
	Src, Dst int
	Size     int // bytes on the wire, including headers
	Payload  any
	SentAt   sim.Time
}

// Verdict is one frame's fate on a faulty fabric. The zero Verdict is a
// clean traversal.
type Verdict struct {
	Drop  bool     // frame is lost in the switch, never delivered
	Dup   bool     // a duplicate copy is also delivered
	Delay sim.Time // extra delivery latency (reorder jitter); does not
	// hold the ejection link, so later frames can overtake
}

// Injector decides per-frame faults. Judge runs once per Send, in
// scheduler context, and must be deterministic given the fabric's call
// sequence (draw randomness from a dedicated seeded stream).
type Injector interface {
	Judge(src, dst int) Verdict
}

// Fabric connects n nodes through one switch.
type Fabric struct {
	k         *sim.Kernel
	costs     model.Costs
	nsPerByte float64 // serialization cost per byte, hoisted from the per-frame path
	sinks     []func(Frame)

	injectFree []sim.Time // source link busy-until
	ejectFree  []sim.Time // destination link busy-until

	// Multi-stage routing, nil for the single crossbar: frames then
	// traverse topo's routed links, each with its own FIFO egress queue
	// in linkFree. The crossbar keeps its historical nil-check-free
	// arithmetic and stays byte-identical.
	topo     *topo.Topology
	linkFree []sim.Time // inter-switch link busy-until, indexed by link id

	// Logical-process partition (SetPartition), nil for the monolithic
	// fabric. pmap maps node -> LP; shards hold each LP's kernel and its
	// private counters, pools and cross-LP outbox, so concurrent windows
	// never write shared fabric state. Link and port occupancy arrays
	// stay shared but are partitioned by ownership: injectFree[src],
	// up-links and a cross-route's outbox belong to the source LP;
	// down-links, ejectFree[dst] and delivery belong to the destination
	// LP, reached only through the barrier exchange.
	pmap   []int32
	shards []lpShard
	xbuf   []xmsg // exchange scratch: all shards' outboxes, merge-sorted

	// Reown, when non-nil, transfers ownership of a cross-LP frame's
	// payload to its destination at exchange time (pooled payloads must
	// never recycle across LPs). Installed at cluster construction; a
	// construction-time property like the topology, surviving Reset.
	Reown func(payload any, dst int)

	dfree []*delivery // recycled in-flight frame records

	frames       uint64
	bytes        uint64
	dropped      uint64
	duplicated   uint64
	linkWaits    uint64      // routed frames that blocked on a busy inter-switch link
	linkWaitTime sim.Time    // total time spent so blocked
	OnDeliver    func(Frame) // optional trace hook, called at delivery time
	// OnHop observes each inter-switch link occupancy of a routed frame:
	// the frame holds link for [start, end). Never called on a crossbar.
	OnHop func(fr Frame, link int32, start, end sim.Time)

	// Inject, when non-nil, is consulted once per Send; the nil path is
	// allocation-free and byte-identical to a fault-free fabric.
	Inject Injector
	// OnDrop observes frames the injector discards, so the owner can
	// recycle pooled payloads that will never reach a sink.
	OnDrop func(Frame)
	// ClonePayload deep-copies a payload for duplicated frames. Without
	// it the duplicate shares the original's Payload pointer — unsafe
	// when sinks recycle payloads into pools after consuming them.
	ClonePayload func(any) any
}

// New builds a fabric for n nodes.
func New(k *sim.Kernel, n int, costs model.Costs) *Fabric {
	return &Fabric{
		k:          k,
		costs:      costs,
		nsPerByte:  float64(sim.Time(1e9)) / (costs.WireMBps * 1e6),
		sinks:      make([]func(Frame), n),
		injectFree: make([]sim.Time, n),
		ejectFree:  make([]sim.Time, n),
	}
}

// Reset returns the fabric to its just-built state for a cluster reuse
// cycle: link occupancy, counters and hooks clear, while the node sinks
// registered by Connect and the delivery-record pool survive. Any frame
// still in flight was already discarded by the kernel reset that
// precedes this call; its delivery record is simply lost from the pool.
func (f *Fabric) Reset() {
	for i := range f.injectFree {
		f.injectFree[i] = 0
		f.ejectFree[i] = 0
	}
	for i := range f.linkFree {
		f.linkFree[i] = 0
	}
	f.frames, f.bytes, f.dropped, f.duplicated = 0, 0, 0, 0
	f.linkWaits, f.linkWaitTime = 0, 0
	f.OnDeliver = nil
	f.OnHop = nil
	f.Inject = nil
	f.OnDrop = nil
	f.ClonePayload = nil
	for i := range f.shards {
		sh := &f.shards[i]
		sh.inject = nil
		sh.frames, sh.bytes, sh.dropped, sh.duplicated = 0, 0, 0, 0
		sh.linkWaits, sh.linkWaitTime = 0, 0
		for j := range sh.outbox {
			sh.outbox[j] = xmsg{}
		}
		sh.outbox = sh.outbox[:0]
		sh.seq = 0
	}
}

// SetTopology installs a multi-stage topology. A nil topology, or one
// with no inter-switch links (crossbar; a fat-tree or leaf/spine small
// enough to fit one switch), leaves the fabric on the original
// single-crossbar path. The topology is a construction-time property
// and survives Reset, like the cost table.
func (f *Fabric) SetTopology(t *topo.Topology) {
	if t == nil || t.Links() == 0 {
		f.topo = nil
		f.linkFree = nil
		return
	}
	if t.Nodes() != len(f.sinks) {
		panic(fmt.Sprintf("fabric: topology for %d nodes on a %d-node fabric",
			t.Nodes(), len(f.sinks)))
	}
	f.topo = t
	f.linkFree = make([]sim.Time, t.Links())
}

// Topology returns the installed multi-stage topology, nil on the
// single-crossbar path.
func (f *Fabric) Topology() *topo.Topology { return f.topo }

// Hops returns the number of switch crossings a frame src -> dst takes:
// always 1 on the crossbar (and on loopback), 2a+1 through a routed
// topology. The GM reliability layer scales its per-link RTO by this.
func (f *Fabric) Hops(src, dst int) int {
	if f.topo == nil || src == dst {
		return 1
	}
	return f.topo.Hops(src, dst)
}

// TopoStats reports inter-switch link contention on a routed topology:
// how many link occupancies had to wait for a busy link and the total
// time so spent. Both zero on the crossbar.
func (f *Fabric) TopoStats() (waits uint64, waitTime sim.Time) {
	waits, waitTime = f.linkWaits, f.linkWaitTime
	for i := range f.shards {
		waits += f.shards[i].linkWaits
		waitTime += f.shards[i].linkWaitTime
	}
	return waits, waitTime
}

// delivery is one frame in flight: a pooled sim.Runner, so scheduling a
// delivery allocates nothing in steady state (the old closure-per-frame
// was two heap allocations: the closure and the escaped frame). sh is
// the owning LP shard on a partitioned fabric, nil monolithic.
type delivery struct {
	f  *Fabric
	sh *lpShard
	fr Frame
}

// RunEvent delivers the frame at its arrival time (scheduler context).
func (d *delivery) RunEvent() {
	f, fr := d.f, d.fr
	// Recycle before invoking the sink: the sink may send a new frame,
	// which can then reuse this record.
	d.fr = Frame{}
	if d.sh != nil {
		d.sh.dfree = append(d.sh.dfree, d)
	} else {
		f.dfree = append(f.dfree, d)
	}
	if f.OnDeliver != nil {
		f.OnDeliver(fr)
	}
	f.sinks[fr.Dst](fr)
}

// lpShard is one LP's slice of the fabric: its kernel, fault injector,
// counters, pooled in-flight records and the outbox collecting this
// window's cross-LP sends. All fields are touched only by the owning
// LP's goroutine during a window, and only by the coordinator (via
// Exchange / Stats) between windows.
type lpShard struct {
	k      *sim.Kernel
	inject Injector

	frames       uint64
	bytes        uint64
	dropped      uint64
	duplicated   uint64
	linkWaits    uint64
	linkWaitTime sim.Time

	dfree  []*delivery
	cfree  []*crossing
	outbox []xmsg
	seq    uint64 // per-shard cross-LP send counter, part of the merge key
}

// xmsg is one cross-LP frame at its handoff point: the head has cleared
// the source pod's up-links and is about to enter the destination pod's
// first down-link at time t. (lp, seq) complete the deterministic merge
// key — two handoffs at the same instant order by source LP, then by
// that LP's send sequence.
type xmsg struct {
	t     sim.Time
	fr    Frame
	ser   sim.Time
	extra sim.Time
	lp    int32
	seq   uint64
}

// crossing resumes a cross-LP frame on its destination LP: a pooled
// Runner scheduled at the handoff time, which walks the down-links and
// charges the ejection port exactly as the monolithic traverse would
// have at that same instant.
type crossing struct {
	f     *Fabric
	sh    *lpShard // destination shard
	fr    Frame
	ser   sim.Time
	extra sim.Time
}

// RunEvent continues the traversal at the handoff time (dst scheduler
// context).
func (c *crossing) RunEvent() {
	f, sh := c.f, c.sh
	fr, ser, extra := c.fr, c.ser, c.extra
	c.fr = Frame{}
	sh.cfree = append(sh.cfree, c)

	head := sh.k.Now()
	var p topo.Path
	f.topo.Route(fr.Src, fr.Dst, &p)
	for i := p.N / 2; i < p.N; i++ {
		li := p.Links[i]
		if free := f.linkFree[li]; free > head {
			sh.linkWaits++
			sh.linkWaitTime += free - head
			head = free
		}
		end := head + ser
		f.linkFree[li] = end
		if f.OnHop != nil {
			f.OnHop(fr, li, head, end)
		}
		head += f.costs.WireProp + f.costs.SwitchHop
	}
	f.finishEject(sh, fr, head, ser, extra)
}

// Nodes returns the number of attached nodes.
func (f *Fabric) Nodes() int { return len(f.sinks) }

// Connect registers the delivery callback for node id. The callback runs
// in scheduler context at the frame's arrival time; it must not park.
func (f *Fabric) Connect(id int, sink func(Frame)) {
	if f.sinks[id] != nil {
		panic(fmt.Sprintf("fabric: node %d connected twice", id))
	}
	f.sinks[id] = sink
}

// serialize returns the link occupancy of n bytes at 2 Gb/s.
func (f *Fabric) serialize(n int) sim.Time {
	return sim.Time(f.nsPerByte * float64(n))
}

// Send injects a frame. Delivery is scheduled for
// max(now, injection-link free) + serialization + propagation + switch
// hop, further delayed if the destination's ejection link is busy: the
// frame's head waits for the link, then the frame serializes onto it,
// so N senders to one node contend for the ejection link's bandwidth.
func (f *Fabric) Send(frame Frame) {
	if frame.Src < 0 || frame.Src >= len(f.sinks) || frame.Dst < 0 || frame.Dst >= len(f.sinks) {
		panic(fmt.Sprintf("fabric: bad route %d -> %d", frame.Src, frame.Dst))
	}
	if f.sinks[frame.Dst] == nil {
		panic(fmt.Sprintf("fabric: node %d not connected", frame.Dst))
	}
	if f.pmap != nil {
		f.sendLP(frame)
		return
	}
	now := f.k.Now()
	frame.SentAt = now

	depart := now
	if f.injectFree[frame.Src] > depart {
		depart = f.injectFree[frame.Src]
	}
	ser := f.serialize(frame.Size)
	depart += ser
	f.injectFree[frame.Src] = depart

	f.frames++
	f.bytes += uint64(frame.Size)

	if f.Inject != nil {
		v := f.Inject.Judge(frame.Src, frame.Dst)
		if v.Drop {
			// The frame occupied the injection link but dies in the
			// switch: no ejection occupancy, no delivery.
			f.dropped++
			if f.OnDrop != nil {
				f.OnDrop(frame)
			}
			return
		}
		f.eject(frame, now, depart, ser, v.Delay)
		if v.Dup {
			dup := frame
			if f.ClonePayload != nil {
				dup.Payload = f.ClonePayload(frame.Payload)
			}
			f.duplicated++
			f.eject(dup, now, depart, ser, v.Delay)
		}
		return
	}
	f.eject(frame, now, depart, ser, 0)
}

// eject charges the destination's ejection link and schedules delivery.
// The frame's head reaches the link ser before its injection finished,
// plus propagation and one switch hop (zero on loopback); it then waits
// for the link to free and serializes onto it. For an uncontended flow
// this reduces to the classic depart + prop + hop arrival. extra delays
// delivery without holding the link, so later frames can overtake.
func (f *Fabric) eject(frame Frame, now, depart, ser, extra sim.Time) {
	head := depart - ser
	if frame.Src != frame.Dst {
		if f.topo != nil {
			head = f.traverse(frame, head, ser)
		} else {
			head += f.costs.WireProp + f.costs.SwitchHop
		}
	}
	if f.ejectFree[frame.Dst] > head {
		head = f.ejectFree[frame.Dst]
	}
	arrive := head + ser
	f.ejectFree[frame.Dst] = arrive

	var dl *delivery
	if n := len(f.dfree); n > 0 {
		dl = f.dfree[n-1]
		f.dfree[n-1] = nil
		f.dfree = f.dfree[:n-1]
	} else {
		dl = &delivery{f: f}
	}
	dl.fr = frame
	f.k.AfterRunner(arrive+extra-now, dl)
}

// traverse walks the frame's head through the routed inter-switch
// links. Each link is an egress port with a FIFO queue: the head waits
// until the link frees, holds it for one serialization (cut-through —
// the tail streams behind the head, so a switch forwards after one
// header, not one full frame), and pays cable propagation plus a
// crossbar stage per crossing. The first hop (host cable into the leaf
// switch) has no shared queue — the injection link already serialized
// it — so it only pays latency. With zero routed links this reduces
// exactly to the crossbar's prop + hop charge.
func (f *Fabric) traverse(frame Frame, head, ser sim.Time) sim.Time {
	head += f.costs.WireProp + f.costs.SwitchHop
	var p topo.Path
	f.topo.Route(frame.Src, frame.Dst, &p)
	for i := 0; i < p.N; i++ {
		li := p.Links[i]
		if free := f.linkFree[li]; free > head {
			f.linkWaits++
			f.linkWaitTime += free - head
			head = free
		}
		end := head + ser
		f.linkFree[li] = end
		if f.OnHop != nil {
			f.OnHop(frame, li, head, end)
		}
		head += f.costs.WireProp + f.costs.SwitchHop
	}
	return head
}

// SetPartition installs a logical-process partition: pmap maps each
// node to an LP in [0, len(ks)), and ks[i] is LP i's kernel. A
// single-kernel (or nil) partition restores the monolithic path.
// Partitioning requires a routed topology whose pod boundaries pmap
// follows (see topo.Partition): the conservative handoff relies on
// every inter-LP route crossing the full climb, so its up-links belong
// to the source pod and its down-links to the destination pod. The
// partition is a construction-time property and survives Reset. Trace
// hooks (OnDeliver, OnHop) fire on LP goroutines when partitioned; they
// are meant for single-LP diagnostics.
func (f *Fabric) SetPartition(pmap []int32, ks []*sim.Kernel) {
	if len(ks) <= 1 {
		f.pmap = nil
		f.shards = nil
		return
	}
	if f.topo == nil {
		panic("fabric: partition requires a routed topology")
	}
	if len(pmap) != len(f.sinks) {
		panic(fmt.Sprintf("fabric: partition map for %d nodes on a %d-node fabric",
			len(pmap), len(f.sinks)))
	}
	f.pmap = pmap
	f.shards = make([]lpShard, len(ks))
	for i := range f.shards {
		f.shards[i].k = ks[i]
	}
}

// SetInjectors installs one fault injector per LP shard. A partitioned
// fabric must not share one injector: Judge mutates stream state, and
// every send on a link (src, dst) originates on LP(src), so a per-LP
// plan still sees each link's complete frame sequence in order.
func (f *Fabric) SetInjectors(injs []Injector) {
	if len(injs) != len(f.shards) {
		panic(fmt.Sprintf("fabric: %d injectors for %d LP shards", len(injs), len(f.shards)))
	}
	for i := range f.shards {
		f.shards[i].inject = injs[i]
	}
}

// Lookahead returns the minimum virtual-time distance between a
// cross-LP send and its first effect on the destination pod: a
// cross-pod frame's head pays at least the host cable into its leaf
// plus one up-link crossing — two (propagation + switch-stage) charges
// — before touching any destination-owned link, so conservative windows
// of this width are safe.
func (f *Fabric) Lookahead() sim.Time {
	return 2 * (f.costs.WireProp + f.costs.SwitchHop)
}

// MaxHops returns the largest switch-crossing count Hops can report on
// this fabric — the bound reliability uses to size hop-indexed tables.
func (f *Fabric) MaxHops() int {
	if f.topo == nil {
		return 1
	}
	return 2*(f.topo.Levels()-1) + 1
}

// sendLP is Send on a partitioned fabric: identical arithmetic, but all
// mutable state is either owned by the source LP (injection link,
// up-links, shard counters) or reached through the handoff (everything
// at the destination).
func (f *Fabric) sendLP(frame Frame) {
	sh := &f.shards[f.pmap[frame.Src]]
	now := sh.k.Now()
	frame.SentAt = now

	depart := now
	if f.injectFree[frame.Src] > depart {
		depart = f.injectFree[frame.Src]
	}
	ser := f.serialize(frame.Size)
	depart += ser
	f.injectFree[frame.Src] = depart

	sh.frames++
	sh.bytes += uint64(frame.Size)

	if sh.inject != nil {
		v := sh.inject.Judge(frame.Src, frame.Dst)
		if v.Drop {
			sh.dropped++
			if f.OnDrop != nil {
				f.OnDrop(frame)
			}
			return
		}
		f.ejectLP(sh, frame, depart, ser, v.Delay)
		if v.Dup {
			dup := frame
			if f.ClonePayload != nil {
				dup.Payload = f.ClonePayload(frame.Payload)
			}
			sh.duplicated++
			f.ejectLP(sh, dup, depart, ser, v.Delay)
		}
		return
	}
	f.ejectLP(sh, frame, depart, ser, 0)
}

// ejectLP walks the frame's head as far as the source LP owns it. An
// intra-LP frame completes exactly like the monolithic path; a cross-LP
// frame traverses its up-links (source-pod property) and parks in the
// shard outbox at the instant its head would enter the first down-link,
// to be resumed on the destination LP at that time via Exchange.
func (f *Fabric) ejectLP(sh *lpShard, frame Frame, depart, ser, extra sim.Time) {
	head := depart - ser
	if frame.Src != frame.Dst {
		dstLP := f.pmap[frame.Dst]
		if f.pmap[frame.Src] != dstLP {
			head += f.costs.WireProp + f.costs.SwitchHop
			var p topo.Path
			f.topo.Route(frame.Src, frame.Dst, &p)
			for i := 0; i < p.N/2; i++ {
				li := p.Links[i]
				if free := f.linkFree[li]; free > head {
					sh.linkWaits++
					sh.linkWaitTime += free - head
					head = free
				}
				end := head + ser
				f.linkFree[li] = end
				if f.OnHop != nil {
					f.OnHop(frame, li, head, end)
				}
				head += f.costs.WireProp + f.costs.SwitchHop
			}
			sh.outbox = append(sh.outbox, xmsg{t: head, fr: frame, ser: ser,
				extra: extra, lp: f.pmap[frame.Src], seq: sh.seq})
			sh.seq++
			return
		}
		if f.topo != nil {
			head = f.traverseLP(sh, frame, head, ser)
		} else {
			head += f.costs.WireProp + f.costs.SwitchHop
		}
	}
	f.finishEject(sh, frame, head, ser, extra)
}

// traverseLP is traverse with contention accounting on the shard; every
// link an intra-LP route touches belongs to this LP's pods.
func (f *Fabric) traverseLP(sh *lpShard, frame Frame, head, ser sim.Time) sim.Time {
	head += f.costs.WireProp + f.costs.SwitchHop
	var p topo.Path
	f.topo.Route(frame.Src, frame.Dst, &p)
	for i := 0; i < p.N; i++ {
		li := p.Links[i]
		if free := f.linkFree[li]; free > head {
			sh.linkWaits++
			sh.linkWaitTime += free - head
			head = free
		}
		end := head + ser
		f.linkFree[li] = end
		if f.OnHop != nil {
			f.OnHop(frame, li, head, end)
		}
		head += f.costs.WireProp + f.costs.SwitchHop
	}
	return head
}

// finishEject charges the destination's ejection link and schedules
// delivery on the destination LP's kernel, from that shard's pools.
func (f *Fabric) finishEject(sh *lpShard, frame Frame, head, ser, extra sim.Time) {
	if f.ejectFree[frame.Dst] > head {
		head = f.ejectFree[frame.Dst]
	}
	arrive := head + ser
	f.ejectFree[frame.Dst] = arrive

	var dl *delivery
	if n := len(sh.dfree); n > 0 {
		dl = sh.dfree[n-1]
		sh.dfree[n-1] = nil
		sh.dfree = sh.dfree[:n-1]
	} else {
		dl = &delivery{f: f, sh: sh}
	}
	dl.fr = frame
	sh.k.AfterRunner(arrive+extra-sh.k.Now(), dl)
}

// Exchange delivers the cross-LP frames the last window produced. It
// runs at the window barrier with every LP quiescent: all outboxes are
// merged and sorted by (handoff time, source LP, send sequence) — a key
// that depends only on virtual execution, never on goroutine
// interleaving — then each frame's payload is re-owned to its
// destination and a crossing is scheduled on the destination kernel at
// the handoff time. Scheduling in sorted order makes the destination's
// event-sequence assignment deterministic, which pins the relative
// order of same-instant arrivals from different LPs.
func (f *Fabric) Exchange() {
	f.xbuf = f.xbuf[:0]
	for i := range f.shards {
		sh := &f.shards[i]
		f.xbuf = append(f.xbuf, sh.outbox...)
		for j := range sh.outbox {
			sh.outbox[j] = xmsg{}
		}
		sh.outbox = sh.outbox[:0]
	}
	sort.Slice(f.xbuf, func(a, b int) bool {
		x, y := &f.xbuf[a], &f.xbuf[b]
		if x.t != y.t {
			return x.t < y.t
		}
		if x.lp != y.lp {
			return x.lp < y.lp
		}
		return x.seq < y.seq
	})
	for i := range f.xbuf {
		m := &f.xbuf[i]
		if f.Reown != nil {
			f.Reown(m.fr.Payload, m.fr.Dst)
		}
		sh := &f.shards[f.pmap[m.fr.Dst]]
		var c *crossing
		if n := len(sh.cfree); n > 0 {
			c = sh.cfree[n-1]
			sh.cfree[n-1] = nil
			sh.cfree = sh.cfree[:n-1]
		} else {
			c = &crossing{f: f, sh: sh}
		}
		c.fr, c.ser, c.extra = m.fr, m.ser, m.extra
		sh.k.ScheduleRunnerAt(m.t, c)
		m.fr = Frame{}
	}
}

// Stats reports total frames and bytes injected so far, summed across
// LP shards on a partitioned fabric.
func (f *Fabric) Stats() (frames, bytes uint64) {
	frames, bytes = f.frames, f.bytes
	for i := range f.shards {
		frames += f.shards[i].frames
		bytes += f.shards[i].bytes
	}
	return frames, bytes
}

// FaultStats reports frames the injector dropped or duplicated, summed
// across LP shards on a partitioned fabric.
func (f *Fabric) FaultStats() (dropped, duplicated uint64) {
	dropped, duplicated = f.dropped, f.duplicated
	for i := range f.shards {
		dropped += f.shards[i].dropped
		duplicated += f.shards[i].duplicated
	}
	return dropped, duplicated
}
