// Package fabric models the Myrinet-2000 interconnect: full-duplex links
// from every node into a central cut-through crossbar switch.
//
// The model charges, per frame,
//
//	serialization on the source link (2 Gb/s) +
//	cable propagation + one switch hop
//
// and serializes frames on both the source's injection link and the
// destination's ejection link, which yields the FIFO delivery order GM
// guarantees per (source, destination) pair — the property the paper's
// late-message matching relies on (§IV-D). Switch-internal contention is
// not modeled; with the paper's ≤1 KB reduction messages the crossbar is
// never the bottleneck.
package fabric

import (
	"fmt"

	"abred/internal/model"
	"abred/internal/sim"
)

// Frame is one message on the wire. Payload is opaque to the fabric.
type Frame struct {
	Src, Dst int
	Size     int // bytes on the wire, including headers
	Payload  any
	SentAt   sim.Time
}

// Fabric connects n nodes through one switch.
type Fabric struct {
	k         *sim.Kernel
	costs     model.Costs
	nsPerByte float64 // serialization cost per byte, hoisted from the per-frame path
	sinks     []func(Frame)

	injectFree []sim.Time // source link busy-until
	ejectFree  []sim.Time // destination link busy-until

	dfree []*delivery // recycled in-flight frame records

	frames    uint64
	bytes     uint64
	OnDeliver func(Frame) // optional trace hook, called at delivery time
}

// New builds a fabric for n nodes.
func New(k *sim.Kernel, n int, costs model.Costs) *Fabric {
	return &Fabric{
		k:          k,
		costs:      costs,
		nsPerByte:  float64(sim.Time(1e9)) / (costs.WireMBps * 1e6),
		sinks:      make([]func(Frame), n),
		injectFree: make([]sim.Time, n),
		ejectFree:  make([]sim.Time, n),
	}
}

// delivery is one frame in flight: a pooled sim.Runner, so scheduling a
// delivery allocates nothing in steady state (the old closure-per-frame
// was two heap allocations: the closure and the escaped frame).
type delivery struct {
	f  *Fabric
	fr Frame
}

// RunEvent delivers the frame at its arrival time (scheduler context).
func (d *delivery) RunEvent() {
	f, fr := d.f, d.fr
	// Recycle before invoking the sink: the sink may send a new frame,
	// which can then reuse this record.
	d.fr = Frame{}
	f.dfree = append(f.dfree, d)
	if f.OnDeliver != nil {
		f.OnDeliver(fr)
	}
	f.sinks[fr.Dst](fr)
}

// Nodes returns the number of attached nodes.
func (f *Fabric) Nodes() int { return len(f.sinks) }

// Connect registers the delivery callback for node id. The callback runs
// in scheduler context at the frame's arrival time; it must not park.
func (f *Fabric) Connect(id int, sink func(Frame)) {
	if f.sinks[id] != nil {
		panic(fmt.Sprintf("fabric: node %d connected twice", id))
	}
	f.sinks[id] = sink
}

// serialize returns the link occupancy of n bytes at 2 Gb/s.
func (f *Fabric) serialize(n int) sim.Time {
	return sim.Time(f.nsPerByte * float64(n))
}

// Send injects a frame. Delivery is scheduled for
// max(now, injection-link free) + serialization + propagation + switch
// hop, further delayed if the destination's ejection link is busy.
func (f *Fabric) Send(frame Frame) {
	if frame.Src < 0 || frame.Src >= len(f.sinks) || frame.Dst < 0 || frame.Dst >= len(f.sinks) {
		panic(fmt.Sprintf("fabric: bad route %d -> %d", frame.Src, frame.Dst))
	}
	if f.sinks[frame.Dst] == nil {
		panic(fmt.Sprintf("fabric: node %d not connected", frame.Dst))
	}
	now := f.k.Now()
	frame.SentAt = now

	depart := now
	if f.injectFree[frame.Src] > depart {
		depart = f.injectFree[frame.Src]
	}
	depart += f.serialize(frame.Size)
	f.injectFree[frame.Src] = depart

	arrive := depart + f.costs.WireProp + f.costs.SwitchHop
	if frame.Src == frame.Dst {
		// Loopback through the NIC, no switch traversal.
		arrive = depart
	}
	if f.ejectFree[frame.Dst] > arrive {
		arrive = f.ejectFree[frame.Dst]
	}
	f.ejectFree[frame.Dst] = arrive

	f.frames++
	f.bytes += uint64(frame.Size)

	var dl *delivery
	if n := len(f.dfree); n > 0 {
		dl = f.dfree[n-1]
		f.dfree[n-1] = nil
		f.dfree = f.dfree[:n-1]
	} else {
		dl = &delivery{f: f}
	}
	dl.fr = frame
	f.k.AfterRunner(arrive-now, dl)
}

// Stats reports total frames and bytes injected so far.
func (f *Fabric) Stats() (frames, bytes uint64) { return f.frames, f.bytes }
