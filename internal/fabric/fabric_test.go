package fabric

import (
	"testing"
	"time"

	"abred/internal/model"
	"abred/internal/sim"
)

const us = time.Microsecond

func build(n int) (*sim.Kernel, *Fabric, [][]Frame) {
	k := sim.New(1)
	f := New(k, n, model.DefaultCosts())
	got := make([][]Frame, n)
	for i := 0; i < n; i++ {
		i := i
		f.Connect(i, func(fr Frame) { got[i] = append(got[i], fr) })
	}
	return k, f, got
}

func TestDelivery(t *testing.T) {
	k, f, got := build(3)
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 2, Size: 100, Payload: "x"})
	})
	end := k.Run()
	if len(got[2]) != 1 || got[2][0].Payload != "x" {
		t.Fatalf("delivery failed: %+v", got[2])
	}
	if end <= 0 {
		t.Error("delivery must take time")
	}
	// 100 B at 250 MB/s = 400 ns + 300 ns prop + 500 ns switch.
	want := 1200 * time.Nanosecond
	if end != want {
		t.Errorf("delivery at %v, want %v", end, want)
	}
}

func TestFIFOPerDestination(t *testing.T) {
	k, f, got := build(4)
	k.After(0, func() {
		// Interleave two flows into node 3 with wildly varying sizes:
		// arrival order must match injection order per source, and the
		// ejection link keeps the destination order monotonic overall.
		for i := 0; i < 20; i++ {
			f.Send(Frame{Src: 0, Dst: 3, Size: 4000 - i*150, Payload: i})
			f.Send(Frame{Src: 1, Dst: 3, Size: 50 + i, Payload: 100 + i})
		}
	})
	k.Run()
	if len(got[3]) != 40 {
		t.Fatalf("delivered %d frames", len(got[3]))
	}
	last := map[int]int{0: -1, 1: 99}
	for _, fr := range got[3] {
		v := fr.Payload.(int)
		if v < last[fr.Src]+1 {
			t.Fatalf("per-source FIFO violated: src %d saw %d after %d", fr.Src, v, last[fr.Src])
		}
		last[fr.Src] = v
	}
}

func TestLinkSerialization(t *testing.T) {
	k, f, got := build(2)
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 1, Size: 2500, Payload: 1}) // 10 µs at 250 MB/s
		f.Send(Frame{Src: 0, Dst: 1, Size: 2500, Payload: 2})
	})
	end := k.Run()
	_ = got
	// Two 10 µs serializations back to back plus fixed latency.
	if end < 20*us {
		t.Errorf("injection link did not serialize: finished at %v", end)
	}
}

func TestLoopback(t *testing.T) {
	k, f, got := build(2)
	k.After(0, func() {
		f.Send(Frame{Src: 1, Dst: 1, Size: 64, Payload: "self"})
	})
	k.Run()
	if len(got[1]) != 1 {
		t.Fatal("loopback frame lost")
	}
}

func TestStats(t *testing.T) {
	k, f, _ := build(2)
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 1, Size: 10})
		f.Send(Frame{Src: 0, Dst: 1, Size: 20})
	})
	k.Run()
	frames, bytes := f.Stats()
	if frames != 2 || bytes != 30 {
		t.Errorf("stats = %d frames %d bytes", frames, bytes)
	}
}

func TestBadRoutePanics(t *testing.T) {
	k, f, _ := build(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 7, Size: 1})
	})
	k.Run()
}

func TestDoubleConnectPanics(t *testing.T) {
	k := sim.New(1)
	f := New(k, 1, model.DefaultCosts())
	f.Connect(0, func(Frame) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Connect(0, func(Frame) {})
}

func TestUnconnectedDestinationPanics(t *testing.T) {
	k := sim.New(1)
	f := New(k, 2, model.DefaultCosts())
	f.Connect(0, func(Frame) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.After(0, func() { f.Send(Frame{Src: 0, Dst: 1, Size: 1}) })
	k.Run()
}

func TestOnDeliverHook(t *testing.T) {
	k, f, _ := build(2)
	hooked := 0
	f.OnDeliver = func(Frame) { hooked++ }
	k.After(0, func() { f.Send(Frame{Src: 0, Dst: 1, Size: 1}) })
	k.Run()
	if hooked != 1 {
		t.Errorf("OnDeliver ran %d times", hooked)
	}
}

// TestEjectionContentionTwoSenders: two nodes each pushing a 10 µs
// frame at the same receiver must serialize on the receiver's ejection
// link — the second frame's head waits for the first to finish
// ejecting. Before the ejection fix both frames "arrived" after a
// single serialization, silently doubling the modeled ejection
// bandwidth under fan-in.
func TestEjectionContentionTwoSenders(t *testing.T) {
	k, f, got := build(3)
	arrivals := map[int]sim.Time{}
	f.OnDeliver = func(fr Frame) { arrivals[fr.Payload.(int)] = k.Now() }
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 2, Size: 2500, Payload: 1}) // 10 µs at 250 MB/s
		f.Send(Frame{Src: 1, Dst: 2, Size: 2500, Payload: 2})
	})
	end := k.Run()
	if len(got[2]) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(got[2]))
	}
	// Head reaches the switch at 800 ns (prop + hop); first frame ejects
	// over [800 ns, 10.8 µs], the second must queue behind it.
	if arrivals[1] != 10800*time.Nanosecond {
		t.Errorf("first frame arrived at %v, want 10.8µs", arrivals[1])
	}
	if arrivals[2] != 20800*time.Nanosecond {
		t.Errorf("second frame arrived at %v, want 20.8µs (ejection-link contention)", arrivals[2])
	}
	if end != 20800*time.Nanosecond {
		t.Errorf("end = %v", end)
	}
}

// scriptInj replays a fixed verdict sequence, one per Send.
type scriptInj struct {
	verdicts []Verdict
	i        int
}

func (s *scriptInj) Judge(src, dst int) Verdict {
	if s.i >= len(s.verdicts) {
		return Verdict{}
	}
	v := s.verdicts[s.i]
	s.i++
	return v
}

func TestInjectorDrop(t *testing.T) {
	k, f, got := build(2)
	f.Inject = &scriptInj{verdicts: []Verdict{{Drop: true}, {}}}
	var droppedPayload any
	f.OnDrop = func(fr Frame) { droppedPayload = fr.Payload }
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 1, Size: 100, Payload: 1})
		f.Send(Frame{Src: 0, Dst: 1, Size: 100, Payload: 2})
	})
	k.Run()
	if len(got[1]) != 1 || got[1][0].Payload != 2 {
		t.Fatalf("delivered %+v, want only payload 2", got[1])
	}
	if d, _ := f.FaultStats(); d != 1 {
		t.Errorf("dropped = %d, want 1", d)
	}
	if droppedPayload != 1 {
		t.Errorf("OnDrop saw %v, want payload 1", droppedPayload)
	}
}

func TestInjectorDupClonesPayload(t *testing.T) {
	k, f, got := build(2)
	f.Inject = &scriptInj{verdicts: []Verdict{{Dup: true}}}
	f.ClonePayload = func(p any) any { return p.(int) + 100 }
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 1, Size: 100, Payload: 1})
	})
	k.Run()
	if len(got[1]) != 2 {
		t.Fatalf("delivered %d frames, want original + duplicate", len(got[1]))
	}
	if got[1][0].Payload != 1 || got[1][1].Payload != 101 {
		t.Errorf("payloads %v, %v: duplicate must carry the cloned payload", got[1][0].Payload, got[1][1].Payload)
	}
	if _, dup := f.FaultStats(); dup != 1 {
		t.Errorf("duplicated = %d, want 1", dup)
	}
}

// TestInjectorDelayAllowsOvertake: jitter delays delivery without
// holding the ejection link, so a later clean frame overtakes.
func TestInjectorDelayAllowsOvertake(t *testing.T) {
	k, f, got := build(2)
	f.Inject = &scriptInj{verdicts: []Verdict{{Delay: 50 * us}, {}}}
	k.After(0, func() {
		f.Send(Frame{Src: 0, Dst: 1, Size: 100, Payload: 1})
		f.Send(Frame{Src: 0, Dst: 1, Size: 100, Payload: 2})
	})
	k.Run()
	if len(got[1]) != 2 {
		t.Fatalf("delivered %d frames", len(got[1]))
	}
	if got[1][0].Payload != 2 || got[1][1].Payload != 1 {
		t.Errorf("order %v, %v: jittered frame must be overtaken", got[1][0].Payload, got[1][1].Payload)
	}
}

// TestSendZeroAllocSteadyState: injecting and delivering a frame is
// allocation-free once the delivery-record pool and the event pool are
// warm — the per-frame closure and its escaped Frame were two heap
// allocations before the pooled-Runner rewrite.
func TestSendZeroAllocSteadyState(t *testing.T) {
	k, f, _ := build(2)
	payload := &Frame{}       // any pointer payload; boxing a pointer is alloc-free
	for i := 0; i < 32; i++ { // warm the pools
		f.Send(Frame{Src: 0, Dst: 1, Size: 64, Payload: payload})
	}
	k.Run()
	if avg := testing.AllocsPerRun(200, func() {
		f.Send(Frame{Src: 0, Dst: 1, Size: 64, Payload: payload})
		k.Run()
	}); avg != 0 {
		t.Errorf("fabric.Send allocates %.2f per frame in steady state, want 0", avg)
	}
}
