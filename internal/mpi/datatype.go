package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype identifies the element type of a message buffer. Buffers move
// through the stack as []byte in little-endian layout; the conversion
// helpers below are the only places that interpret them.
//
// The paper's workloads are "double-word" (Float64) messages; the other
// types exist because a reduction library is useless without them.
type Datatype int

// Supported datatypes.
const (
	Byte Datatype = iota
	Int32
	Int64
	Uint64
	Float32
	Float64
)

// Size returns the element size in bytes.
func (d Datatype) Size() int {
	switch d {
	case Byte:
		return 1
	case Int32, Float32:
		return 4
	case Int64, Uint64, Float64:
		return 8
	}
	panic(fmt.Sprintf("mpi: unknown datatype %d", int(d)))
}

// String implements fmt.Stringer.
func (d Datatype) String() string {
	switch d {
	case Byte:
		return "byte"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Uint64:
		return "uint64"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	}
	return "unknown"
}

// Float64sToBytes encodes vals little-endian.
func Float64sToBytes(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// BytesToFloat64s decodes a little-endian float64 buffer.
func BytesToFloat64s(b []byte) []float64 {
	vals := make([]float64, len(b)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vals
}

// Int64sToBytes encodes vals little-endian.
func Int64sToBytes(vals []int64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

// BytesToInt64s decodes a little-endian int64 buffer.
func BytesToInt64s(b []byte) []int64 {
	vals := make([]int64, len(b)/8)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vals
}

// Int32sToBytes encodes vals little-endian.
func Int32sToBytes(vals []int32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

// BytesToInt32s decodes a little-endian int32 buffer.
func BytesToInt32s(b []byte) []int32 {
	vals := make([]int32, len(b)/4)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return vals
}

// Uint64sToBytes encodes vals little-endian.
func Uint64sToBytes(vals []uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
	return b
}

// BytesToUint64s decodes a little-endian uint64 buffer.
func BytesToUint64s(b []byte) []uint64 {
	vals := make([]uint64, len(b)/8)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return vals
}

// Float32sToBytes encodes vals little-endian.
func Float32sToBytes(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

// BytesToFloat32s decodes a little-endian float32 buffer.
func BytesToFloat32s(b []byte) []float32 {
	vals := make([]float32, len(b)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return vals
}
