package mpi

import (
	"fmt"

	"abred/internal/gm"
)

// SendArgs parameterizes a point-to-point (or collective-typed) send.
type SendArgs struct {
	Dst  int
	Ctx  uint16
	Tag  int32
	Data []byte

	// Type selects the wire packet type; zero value means the protocol
	// picks Eager or rendezvous by size. The application-bypass layer
	// sets gm.Collective (§V-A), which requires eager-sized payloads.
	Collective bool
	Root       int32  // collective header: root of the instance
	Seq        uint64 // collective header: instance sequence
}

// Isend starts a send. Eager messages (≤ threshold) complete
// immediately after being copied into the pre-pinned bounce pool and
// handed to the NIC; larger messages run the rendezvous protocol and
// complete when the data has been handed to the NIC.
func (pr *Process) Isend(a SendArgs) *Request {
	if a.Dst < 0 || a.Dst >= pr.size {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d (size %d)", a.Dst, pr.size))
	}
	pr.P.Spin(pr.CM.HostSendOvh())
	n := len(a.Data)
	if n <= pr.CM.C.EagerThreshold {
		pr.eagerSend(a, n)
		// The send is already complete (payload copied into the bounce
		// pool), so the shared pre-completed handle serves every caller:
		// Wait is a no-op and SetOnComplete fires immediately on a done
		// request, neither retains the handle.
		pr.eagerDone = Request{pr: pr, kind: reqSendEager, done: true, dst: a.Dst}
		return &pr.eagerDone
	}

	// Rendezvous mode: pin in place, announce, wait for clear-to-send.
	// Collective sends use the collective RTS/Data types so the
	// receiving NIC raises signals at every protocol step (§V-B
	// rendezvous-mode extension).
	req := &Request{pr: pr, kind: reqSendRendezvous, dst: a.Dst, data: a.Data,
		handle: pr.handle(), collective: a.Collective}
	req.pinned = pr.Mem.Pin(pr.P, n)
	pr.sendRv[req.handle] = req
	typ := gm.RendezvousRTS
	if a.Collective {
		typ = gm.CollectiveRTS
	}
	rts := &gm.Packet{
		Type:     typ,
		DstNode:  a.Dst,
		Ctx:      a.Ctx,
		Tag:      a.Tag,
		SrcRank:  int32(pr.rank),
		Root:     a.Root,
		Seq:      a.Seq,
		Handle:   req.handle,
		TotalLen: n,
	}
	pr.nic.Send(pr.P, rts)
	pr.Stats.RendezvousSends++
	return req
}

// eagerSend runs the eager-mode send path shared by Isend and Send: one
// host copy into the bounce pool (§III), packet handed to the NIC. The
// packet and its payload buffer come from the NIC packet pool, so a
// steady-state eager send allocates nothing.
func (pr *Process) eagerSend(a SendArgs, n int) {
	pr.chargeCopy(n)
	typ := gm.Eager
	if a.Collective {
		typ = gm.Collective
	}
	pkt := pr.nic.GetPacket(n)
	pkt.Type = typ
	pkt.DstNode = a.Dst
	pkt.Ctx = a.Ctx
	pkt.Tag = a.Tag
	pkt.SrcRank = int32(pr.rank)
	pkt.Root = a.Root
	pkt.Seq = a.Seq
	copy(pkt.Data, a.Data)
	pr.nic.Send(pr.P, pkt)
	pr.Stats.EagerSends++
}

// Send is the blocking form of Isend. Eager sends complete by the time
// Isend returns, so the blocking form skips the Request entirely — the
// collective hot paths send this way, and the handle would be their only
// steady-state allocation.
func (pr *Process) Send(a SendArgs) {
	n := len(a.Data)
	if n <= pr.CM.C.EagerThreshold {
		if a.Dst < 0 || a.Dst >= pr.size {
			panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", a.Dst, pr.size))
		}
		pr.P.Spin(pr.CM.HostSendOvh())
		pr.eagerSend(a, n)
		return
	}
	pr.Isend(a).Wait()
}

// Irecv posts a receive into buf. If a matching message already sits in
// the unexpected queue it completes immediately (paying the second host
// copy, as in MPICH); otherwise the request joins the posted queue.
func (pr *Process) Irecv(ctx uint16, src int, tag int32, buf []byte) *Request {
	req := &Request{pr: pr, kind: reqRecv, ctx: ctx, src: src, tag: tag, buf: buf}
	pr.irecvPosted(req)
	return req
}

// irecvPosted runs the Irecv matching logic on an initialized receive
// request; Recv drives it with a pooled request, Irecv with a fresh one.
func (pr *Process) irecvPosted(req *Request) {
	pr.P.Spin(pr.CM.HostRecvOvh())
	ctx, src, tag, buf := req.ctx, req.src, req.tag, req.buf

	pr.P.Spin(pr.CM.QueueSearch(len(pr.unexpected)))
	for i, m := range pr.unexpected {
		if !m.matches(ctx, src, tag) {
			continue
		}
		pr.unexpected = append(pr.unexpected[:i], pr.unexpected[i+1:]...)
		if m.rts != nil {
			// A queued rendezvous announcement: pin and clear-to-send.
			rts := m.rts
			pr.putUMsg(m)
			pr.acceptRendezvous(req, rts)
			return
		}
		// Buffered eager payload: second copy, temp buffer → user buffer.
		if len(m.data) > len(buf) {
			panic(fmt.Sprintf("mpi: truncation: %d-byte message into %d-byte receive (src %d tag %d)",
				len(m.data), len(buf), m.srcRank, m.tag))
		}
		pr.chargeCopy(len(m.data))
		copy(req.buf, m.data)
		req.complete(int(m.srcRank), m.tag, len(m.data))
		pr.putUMsg(m)
		return
	}

	pr.posted = append(pr.posted, req)
}

// Recv is the blocking form of Irecv; it returns the completion status.
// The request handle never escapes, so it comes from the process's
// request pool and is recycled on return — a steady-state blocking
// receive allocates nothing.
func (pr *Process) Recv(ctx uint16, src int, tag int32, buf []byte) Status {
	req := pr.getReq()
	req.pr = pr
	req.kind = reqRecv
	req.ctx, req.src, req.tag, req.buf = ctx, src, tag, buf
	pr.irecvPosted(req)
	st := req.Wait()
	pr.putReq(req)
	return st
}

// complete finalizes a receive.
func (r *Request) complete(src int, tag int32, count int) {
	r.done = true
	r.status = Status{Source: src, Tag: tag, Count: count}
	if r.onComplete != nil {
		fn := r.onComplete
		r.onComplete = nil
		fn()
	}
}

// RegisterRendezvous accepts an already-received rendezvous
// announcement outside the posted-receive queue: it pins buf, replies
// clear-to-send, and calls onDone once the payload has landed in buf.
// The application-bypass layer uses it to stream large late children
// straight into reduction state (§V-B rendezvous-mode extension).
func (pr *Process) RegisterRendezvous(rts *gm.Packet, buf []byte, onDone func()) {
	if rts.Type != gm.RendezvousRTS && rts.Type != gm.CollectiveRTS {
		panic(fmt.Sprintf("mpi: RegisterRendezvous on %v packet", rts.Type))
	}
	req := &Request{pr: pr, kind: reqRecv, ctx: rts.Ctx, src: int(rts.SrcRank), tag: rts.Tag,
		buf: buf, onComplete: onDone}
	pr.acceptRendezvous(req, rts)
}

// acceptRendezvous pins the receive buffer and sends clear-to-send.
func (pr *Process) acceptRendezvous(req *Request, rts *gm.Packet) {
	if rts.TotalLen > len(req.buf) {
		panic(fmt.Sprintf("mpi: rendezvous message of %d bytes overflows %d-byte receive buffer",
			rts.TotalLen, len(req.buf)))
	}
	req.status = Status{Source: int(rts.SrcRank), Tag: rts.Tag, Count: rts.TotalLen}
	req.pinned = pr.Mem.Pin(pr.P, rts.TotalLen)
	req.handle = rts.Handle
	pr.recvRv[rts.Handle] = req
	typ := gm.RendezvousCTS
	if rts.Type == gm.CollectiveRTS {
		// Keep the whole handshake on the signal-raising types: the
		// sender may be computing when the clear-to-send arrives.
		typ = gm.CollectiveCTS
	}
	cts := &gm.Packet{
		Type:    typ,
		DstNode: int(rts.SrcRank),
		Ctx:     rts.Ctx,
		SrcRank: int32(pr.rank),
		Root:    rts.Root,
		Seq:     rts.Seq,
		Handle:  rts.Handle,
	}
	pr.nic.Send(pr.P, cts)
}
