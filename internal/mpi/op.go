package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Op is a reduction operator. All provided operators are associative and
// commutative, which lets the tree algorithms combine children in
// arrival order (the property the application-bypass implementation
// depends on: asynchronous processing combines children in whatever
// order their messages arrive).
type Op int

// Supported reduction operators.
const (
	OpSum Op = iota
	OpProd
	OpMax
	OpMin
	OpLAnd // logical and (nonzero = true)
	OpLOr  // logical or
	OpBAnd // bitwise and (integer types)
	OpBOr  // bitwise or
	OpBXor // bitwise xor
)

// String implements fmt.Stringer.
func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpLAnd:
		return "land"
	case OpLOr:
		return "lor"
	case OpBAnd:
		return "band"
	case OpBOr:
		return "bor"
	case OpBXor:
		return "bxor"
	}
	return "unknown"
}

// ValidFor reports whether the operator is defined for datatype d
// (bitwise operators require integer types).
func (op Op) ValidFor(d Datatype) bool {
	switch op {
	case OpBAnd, OpBOr, OpBXor:
		return d == Byte || d == Int32 || d == Int64 || d == Uint64
	default:
		return true
	}
}

// number covers the arithmetic element types the generic kernels handle.
type number interface {
	~int32 | ~int64 | ~uint64 | ~uint8 | ~float32 | ~float64
}

// combine applies op elementwise: dst[i] = dst[i] op src[i].
func combine[T number](op Op, dst, src []T) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpProd:
		for i := range dst {
			dst[i] *= src[i]
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case OpMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case OpLAnd:
		for i := range dst {
			dst[i] = boolToT[T](dst[i] != 0 && src[i] != 0)
		}
	case OpLOr:
		for i := range dst {
			dst[i] = boolToT[T](dst[i] != 0 || src[i] != 0)
		}
	default:
		panic(fmt.Sprintf("mpi: operator %v not handled by arithmetic kernel", op))
	}
}

func boolToT[T number](b bool) T {
	if b {
		return 1
	}
	return 0
}

// combineScalar is combine for one element; the in-place Apply kernels
// use it to fold without materializing decoded slices. The arithmetic is
// identical to combine's, so results are bit-for-bit the same.
func combineScalar[T number](op Op, a, b T) T {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpLAnd:
		return boolToT[T](a != 0 && b != 0)
	case OpLOr:
		return boolToT[T](a != 0 || b != 0)
	}
	panic(fmt.Sprintf("mpi: operator %v not handled by arithmetic kernel", op))
}

// combineBits applies a bitwise operator on unsigned words.
func combineBits(op Op, dst, src []uint64) {
	switch op {
	case OpBAnd:
		for i := range dst {
			dst[i] &= src[i]
		}
	case OpBOr:
		for i := range dst {
			dst[i] |= src[i]
		}
	case OpBXor:
		for i := range dst {
			dst[i] ^= src[i]
		}
	default:
		panic(fmt.Sprintf("mpi: operator %v is not bitwise", op))
	}
}

// Apply combines count elements of type d: dst = dst op src, in place in
// dst. Both buffers must hold at least count elements.
func Apply(op Op, d Datatype, dst, src []byte, count int) {
	n := count * d.Size()
	if len(dst) < n || len(src) < n {
		panic(fmt.Sprintf("mpi: Apply buffer too small: need %d, have dst=%d src=%d", n, len(dst), len(src)))
	}
	if !op.ValidFor(d) {
		panic(fmt.Sprintf("mpi: operator %v undefined for %v", op, d))
	}
	switch op {
	case OpBAnd, OpBOr, OpBXor:
		applyBitwise(op, d, dst[:n], src[:n])
		return
	}
	// Each case folds in place, element by element: the decoded-slice
	// round trip the old code paid (three heap allocations per Apply)
	// is pure overhead on the reduction hot path.
	switch d {
	case Float64:
		for i := 0; i+8 <= n; i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(combineScalar(op, a, b)))
		}
	case Float32:
		for i := 0; i+4 <= n; i += 4 {
			a := math.Float32frombits(binary.LittleEndian.Uint32(dst[i:]))
			b := math.Float32frombits(binary.LittleEndian.Uint32(src[i:]))
			binary.LittleEndian.PutUint32(dst[i:], math.Float32bits(combineScalar(op, a, b)))
		}
	case Int32:
		for i := 0; i+4 <= n; i += 4 {
			a := int32(binary.LittleEndian.Uint32(dst[i:]))
			b := int32(binary.LittleEndian.Uint32(src[i:]))
			binary.LittleEndian.PutUint32(dst[i:], uint32(combineScalar(op, a, b)))
		}
	case Int64:
		for i := 0; i+8 <= n; i += 8 {
			a := int64(binary.LittleEndian.Uint64(dst[i:]))
			b := int64(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], uint64(combineScalar(op, a, b)))
		}
	case Uint64:
		for i := 0; i+8 <= n; i += 8 {
			a := binary.LittleEndian.Uint64(dst[i:])
			b := binary.LittleEndian.Uint64(src[i:])
			binary.LittleEndian.PutUint64(dst[i:], combineScalar(op, a, b))
		}
	case Byte:
		combine(op, dst[:n], src[:n])
	default:
		panic(fmt.Sprintf("mpi: unknown datatype %v", d))
	}
}

// applyBitwise handles the bitwise operators for all integer widths by
// widening to uint64 words elementwise.
func applyBitwise(op Op, d Datatype, dst, src []byte) {
	switch d {
	case Byte:
		for i := range dst {
			switch op {
			case OpBAnd:
				dst[i] &= src[i]
			case OpBOr:
				dst[i] |= src[i]
			case OpBXor:
				dst[i] ^= src[i]
			}
		}
	case Int32:
		for i := 0; i+4 <= len(dst); i += 4 {
			a := binary.LittleEndian.Uint32(dst[i:])
			b := binary.LittleEndian.Uint32(src[i:])
			switch op {
			case OpBAnd:
				a &= b
			case OpBOr:
				a |= b
			case OpBXor:
				a ^= b
			}
			binary.LittleEndian.PutUint32(dst[i:], a)
		}
	case Int64, Uint64:
		a := BytesToUint64s(dst)
		b := BytesToUint64s(src)
		combineBits(op, a, b)
		copy(dst, Uint64sToBytes(a))
	default:
		panic(fmt.Sprintf("mpi: bitwise op on non-integer type %v", d))
	}
}

// Identity returns the operator's identity element encoded for d, useful
// for initializing accumulators.
func Identity(op Op, d Datatype) []byte {
	buf := make([]byte, d.Size())
	var v float64
	switch op {
	case OpSum, OpBOr, OpBXor, OpLOr:
		v = 0
	case OpProd, OpLAnd:
		v = 1
	case OpMax:
		v = math.Inf(-1)
	case OpMin:
		v = math.Inf(1)
	case OpBAnd:
		v = -1 // all ones for integer types
	}
	switch d {
	case Float64:
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
	case Float32:
		binary.LittleEndian.PutUint32(buf, math.Float32bits(float32(v)))
	case Int32:
		iv := int32(0)
		switch op {
		case OpProd, OpLAnd:
			iv = 1
		case OpMax:
			iv = math.MinInt32
		case OpMin:
			iv = math.MaxInt32
		case OpBAnd:
			iv = -1
		}
		binary.LittleEndian.PutUint32(buf, uint32(iv))
	case Int64:
		iv := int64(0)
		switch op {
		case OpProd, OpLAnd:
			iv = 1
		case OpMax:
			iv = math.MinInt64
		case OpMin:
			iv = math.MaxInt64
		case OpBAnd:
			iv = -1
		}
		binary.LittleEndian.PutUint64(buf, uint64(iv))
	case Uint64:
		uv := uint64(0)
		switch op {
		case OpProd, OpLAnd:
			uv = 1
		case OpMax:
			uv = 0
		case OpMin, OpBAnd:
			uv = math.MaxUint64
		}
		binary.LittleEndian.PutUint64(buf, uv)
	case Byte:
		bv := byte(0)
		switch op {
		case OpProd, OpLAnd:
			bv = 1
		case OpMin, OpBAnd:
			bv = 0xFF
		}
		buf[0] = bv
	}
	return buf
}
