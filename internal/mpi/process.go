// Package mpi rebuilds the slice of MPICH the paper modifies: ranks and
// communicators, point-to-point messaging with eager and rendezvous
// protocols over GM, posted-receive and unexpected queues, and an
// application-driven communication progress engine with the
// application-bypass pre-processing hook of Fig. 4.
package mpi

import (
	"fmt"

	"abred/internal/gm"
	"abred/internal/model"
	"abred/internal/sim"
)

// AnySource and AnyTag are receive wildcards.
const (
	AnySource = -1
	AnyTag    = -1
)

// ProcStats counts per-process messaging activity. The copy counters
// back the paper's claim of 50% / 100% copy reductions (§V-B, §V-C).
type ProcStats struct {
	EagerSends      uint64
	RendezvousSends uint64
	ExpectedMsgs    uint64 // arrived after a matching receive was posted
	UnexpectedMsgs  uint64 // buffered in the MPICH unexpected queue
	HostCopies      uint64 // payload copies performed by the host CPU
	HostCopiedBytes uint64
	SignalsRun      uint64 // signal handlers that found work
	SignalsIgnored  uint64 // signal handlers that found progress already done
	RetriedMsgs     uint64 // packets that needed GM-level retransmission
	PollBusy        sim.Time
}

// Process is one MPI rank: its simulated host process, NIC, queues and
// protocol state. All methods must be called from the process's own
// sim.Proc context (or from its interrupt handlers, which run there too).
type Process struct {
	P   *sim.Proc
	CM  model.CostModel
	Mem *gm.MemRegistry

	nic  *gm.NIC
	rank int
	size int

	posted     []*Request
	unexpected []*uMsg

	sendRv     map[uint64]*Request // pending rendezvous sends by handle
	recvRv     map[uint64]*Request // pinned receives awaiting data by handle
	nextHandle uint64

	// abHook is the application-bypass pre-processing step of Fig. 4:
	// the progress engine offers every collective packet to it before
	// the default matching logic. Returning true consumes the packet.
	abHook func(*gm.Packet) bool

	// eagerPool models the pre-pinned bounce buffers MPICH-over-GM
	// keeps for eager sends.
	eagerPool *gm.Region

	// reqFree recycles request handles for the blocking receive path,
	// where the handle never escapes the call.
	reqFree []*Request

	// umsgFree recycles unexpected-queue entries and their payload
	// buffers; an entry dies as soon as a matching receive consumes it.
	umsgFree []*uMsg

	// bufFree recycles the collective layers' scratch buffers
	// (accumulators, receive temporaries, barrier tokens) whose lifetime
	// never escapes one call. Only buffers whose bytes are out of the
	// simulation may be returned: eager sends copy synchronously, but a
	// rendezvous data packet aliases the send buffer until delivery.
	bufFree [][]byte

	// eagerDone is the completion handle shared by every eager Isend:
	// the operation is already complete when Isend returns and callers
	// only observe done==true, so one per-process handle serves all of
	// them without a steady-state allocation.
	eagerDone Request

	Stats ProcStats
}

// maxRequestPool caps the recycled-request list; blocking receives are
// sequential per process, so the pool stays tiny in practice.
const maxRequestPool = 16

// getReq returns a zeroed request from the pool (or a fresh one).
func (pr *Process) getReq() *Request {
	if l := len(pr.reqFree); l > 0 {
		r := pr.reqFree[l-1]
		pr.reqFree[l-1] = nil
		pr.reqFree = pr.reqFree[:l-1]
		return r
	}
	return &Request{}
}

// putReq recycles a request that no queue or map references anymore.
func (pr *Process) putReq(r *Request) {
	*r = Request{}
	if len(pr.reqFree) < maxRequestPool {
		pr.reqFree = append(pr.reqFree, r)
	}
}

// maxUMsgPool caps the recycled unexpected-queue entries per process.
const maxUMsgPool = 64

// getUMsg returns a zeroed unexpected-queue entry, keeping any recycled
// payload buffer for reuse.
func (pr *Process) getUMsg() *uMsg {
	if l := len(pr.umsgFree); l > 0 {
		m := pr.umsgFree[l-1]
		pr.umsgFree[l-1] = nil
		pr.umsgFree = pr.umsgFree[:l-1]
		return m
	}
	return &uMsg{}
}

// putUMsg recycles an entry whose payload has been consumed.
func (pr *Process) putUMsg(m *uMsg) {
	data := m.data[:0]
	*m = uMsg{data: data}
	if len(pr.umsgFree) < maxUMsgPool {
		pr.umsgFree = append(pr.umsgFree, m)
	}
}

// maxBufPool caps the recycled scratch buffers per process; the
// collective layers hold at most two at a time.
const maxBufPool = 8

// GetBuf returns an n-byte scratch buffer with unspecified contents;
// callers must fully overwrite it before the bytes can matter.
func (pr *Process) GetBuf(n int) []byte {
	for i := len(pr.bufFree) - 1; i >= 0; i-- {
		if b := pr.bufFree[i]; cap(b) >= n {
			last := len(pr.bufFree) - 1
			pr.bufFree[i] = pr.bufFree[last]
			pr.bufFree[last] = nil
			pr.bufFree = pr.bufFree[:last]
			return b[:n]
		}
	}
	return make([]byte, n)
}

// PutBuf returns a scratch buffer to the pool. Never pass a buffer a
// rendezvous send may still alias (see bufFree).
func (pr *Process) PutBuf(b []byte) {
	if cap(b) > 0 && len(pr.bufFree) < maxBufPool {
		pr.bufFree = append(pr.bufFree, b)
	}
}

// NewProcess builds rank `rank` of `size` on the given NIC. It pins the
// eager bounce-buffer pool, charging the one-time registration cost.
func NewProcess(p *sim.Proc, rank, size int, nic *gm.NIC, cm model.CostModel) *Process {
	pr := &Process{
		P:      p,
		CM:     cm,
		Mem:    gm.NewMemRegistry(cm),
		nic:    nic,
		rank:   rank,
		size:   size,
		sendRv: make(map[uint64]*Request),
		recvRv: make(map[uint64]*Request),
	}
	pr.eagerPool = pr.Mem.Pin(p, 64*cm.C.EagerThreshold)
	return pr
}

// Rebind attaches the process to a new simulated proc; used when a
// cluster runs several programs back to back, each with fresh procs.
func (pr *Process) Rebind(p *sim.Proc) { pr.P = p }

// Reset returns the process to its just-built state for a cluster reuse
// run, attached to proc p. It must mirror NewProcess exactly — the same
// zeroed queues and maps, and the same eager bounce-buffer Pin charging
// the same syscall cost to p — so a reused cluster's first virtual-time
// charges are byte-identical to a fresh one's. Request/uMsg/scratch
// pools keep their capacity: pool hits never touch virtual time.
func (pr *Process) Reset(p *sim.Proc) {
	pr.P = p
	for i := range pr.posted {
		pr.posted[i] = nil
	}
	pr.posted = pr.posted[:0]
	for i := range pr.unexpected {
		pr.unexpected[i] = nil
	}
	pr.unexpected = pr.unexpected[:0]
	clear(pr.sendRv)
	clear(pr.recvRv)
	pr.nextHandle = 0
	pr.abHook = nil
	pr.eagerDone = Request{}
	pr.Stats = ProcStats{}
	pr.Mem.Reset()
	pr.eagerPool = pr.Mem.Pin(p, 64*pr.CM.C.EagerThreshold)
}

// Rank returns this process's rank in the world.
func (pr *Process) Rank() int { return pr.rank }

// Size returns the world size.
func (pr *Process) Size() int { return pr.size }

// NIC exposes the process's network interface to the collective layers.
func (pr *Process) NIC() *gm.NIC { return pr.nic }

// SetABHook installs the application-bypass pre-processing hook
// (Fig. 4). Pass nil to remove it.
func (pr *Process) SetABHook(fn func(*gm.Packet) bool) { pr.abHook = fn }

// PendingCollectiveSends counts rendezvous sends of collective type
// still awaiting clear-to-send; while any exist the engine keeps NIC
// signals enabled so the handshake advances without application help.
func (pr *Process) PendingCollectiveSends() int {
	n := 0
	for _, req := range pr.sendRv {
		if req.collective {
			n++
		}
	}
	return n
}

// chargeCopy spins for a host memcpy of n bytes and counts it.
func (pr *Process) chargeCopy(n int) {
	pr.P.Spin(pr.CM.HostCopy(n))
	pr.Stats.HostCopies++
	pr.Stats.HostCopiedBytes += uint64(n)
}

// handle allocates a rendezvous handle unique within this process.
func (pr *Process) handle() uint64 {
	pr.nextHandle++
	return pr.nextHandle<<8 | uint64(pr.rank&0xFF)
}

// uMsg is an entry in the MPICH unexpected queue: either a buffered
// eager/collective payload or a queued rendezvous RTS.
type uMsg struct {
	ctx     uint16
	tag     int32
	srcRank int32
	data    []byte     // owned copy of an eager payload
	rts     *gm.Packet // an unmatched rendezvous announcement
	at      sim.Time
}

func (m *uMsg) matches(ctx uint16, src int, tag int32) bool {
	return m.ctx == ctx &&
		(src == AnySource || int32(src) == m.srcRank) &&
		(tag == AnyTag || tag == m.tag)
}

// String aids debugging.
func (pr *Process) String() string {
	return fmt.Sprintf("rank %d/%d", pr.rank, pr.size)
}
