package mpi

import (
	"fmt"

	"abred/internal/gm"
	"abred/internal/sim"
)

// This file is the MPICH communication progress engine of Fig. 4. The
// white boxes (default logic) are matchOrQueue and the rendezvous
// handlers; the gray boxes (the paper's addition) are the abHook
// dispatch in handlePacket.

// ProgressPoll drains every packet currently delivered by the NIC
// without blocking. This is "application triggers progress": it runs
// whenever the application is inside an MPI call.
func (pr *Process) ProgressPoll() {
	for {
		pkt, ok := pr.nic.Poll()
		if !ok {
			return
		}
		pr.handlePacket(pkt)
	}
}

// ProgressUntil drives progress until done() holds. While no packets are
// available the process parks, but the parked time is charged as CPU:
// MPICH-over-GM *polls* the network, so a blocked MPI call burns cycles —
// the exact effect the paper's application bypass removes from internal
// nodes (§I).
func (pr *Process) ProgressUntil(done func() bool) {
	for !done() {
		pr.ProgressPoll()
		if done() {
			return
		}
		t0 := pr.P.Now()
		pkt := pr.nic.Recv(pr.P)
		waited := pr.P.Now() - t0
		pr.P.AddBusy(waited)
		pr.Stats.PollBusy += waited
		pr.handlePacket(pkt)
	}
}

// ProgressFor polls for at most d, charging the time as CPU; it is used
// by the §IV-E exit-delay optimization. Returns true if a packet was
// handled.
func (pr *Process) ProgressFor(d sim.Time) bool {
	t0 := pr.P.Now()
	pkt, ok := pr.nic.RecvTimeout(pr.P, d)
	waited := pr.P.Now() - t0
	pr.P.AddBusy(waited)
	pr.Stats.PollBusy += waited
	if !ok {
		return false
	}
	pr.handlePacket(pkt)
	return true
}

// handlePacket routes one packet through the progress logic of Fig. 4:
// application-bypass pre-processing first (gray), then default MPICH
// matching and queuing (white).
func (pr *Process) handlePacket(pkt *gm.Packet) {
	pr.nic.ReturnRecvToken()    // the packet's host buffer recycles here
	pr.P.Spin(pr.CM.PollIter()) // dequeue + dispatch cost
	if pkt.Retries > 0 {
		// The fabric lost (at least) the first copy; GM's reliability
		// layer resent it. The progress engine counts these so the
		// loss experiments can report how often a collective stalled
		// on a retransmission rather than on computation skew.
		pr.Stats.RetriedMsgs++
	}
	if pkt.IsCollective() && pr.nic.ConsumePendingSignal() {
		// The NIC raised a signal for this packet but progress got here
		// first. The kernel trap still interrupted the host (§V-C: the
		// signal is "simply ignored", but not free).
		pr.P.Spin(pr.CM.SignalIgnoredOvh())
		pr.Stats.SignalsIgnored++
	}
	if pr.abHook != nil && (pkt.Type == gm.Collective || pkt.Type == gm.CollectiveRTS) && pr.abHook(pkt) {
		if pkt.Type == gm.Collective {
			// The hook combined or copied the payload out; RTS packets
			// are the only kind it retains (in a queued announcement).
			pr.nic.PutPacket(pkt)
		}
		return
	}
	switch pkt.Type {
	case gm.Eager, gm.Collective, gm.NICCollective:
		// A NICCollective packet reaching the host is a final result
		// the firmware delivered; it matches like any eager message.
		pr.matchOrQueue(pkt)
		// matchOrQueue copies the payload out on both branches, so the
		// packet is dead here and can recycle into the eager pool.
		pr.nic.PutPacket(pkt)
	case gm.RendezvousRTS, gm.CollectiveRTS:
		pr.handleRTS(pkt) // may retain pkt in the unexpected queue
	case gm.RendezvousCTS, gm.CollectiveCTS:
		pr.handleCTS(pkt)
		pr.nic.PutPacket(pkt)
	case gm.RendezvousData, gm.CollectiveData:
		pr.handleData(pkt)
		pr.nic.PutPacket(pkt)
	default:
		panic(fmt.Sprintf("mpi: unknown packet type %v", pkt.Type))
	}
}

// matchOrQueue implements the default eager receive path: match a posted
// receive (one host copy, packet buffer → user buffer) or buffer the
// payload in the unexpected queue (first of two copies).
func (pr *Process) matchOrQueue(pkt *gm.Packet) {
	pr.P.Spin(pr.CM.QueueSearch(len(pr.posted)))
	for i, req := range pr.posted {
		if !reqMatches(req, pkt) {
			continue
		}
		pr.posted = append(pr.posted[:i], pr.posted[i+1:]...)
		if len(pkt.Data) > len(req.buf) {
			panic(fmt.Sprintf("mpi: truncation: %d-byte message into %d-byte receive (src %d tag %d)",
				len(pkt.Data), len(req.buf), pkt.SrcRank, pkt.Tag))
		}
		pr.chargeCopy(len(pkt.Data))
		copy(req.buf, pkt.Data)
		req.complete(int(pkt.SrcRank), pkt.Tag, len(pkt.Data))
		pr.Stats.ExpectedMsgs++
		return
	}
	pr.chargeCopy(len(pkt.Data))
	m := pr.getUMsg()
	m.ctx = pkt.Ctx
	m.tag = pkt.Tag
	m.srcRank = pkt.SrcRank
	m.data = append(m.data[:0], pkt.Data...)
	m.at = pr.P.Now()
	pr.unexpected = append(pr.unexpected, m)
	pr.Stats.UnexpectedMsgs++
}

// handleRTS matches a rendezvous announcement against posted receives or
// queues it.
func (pr *Process) handleRTS(pkt *gm.Packet) {
	pr.P.Spin(pr.CM.QueueSearch(len(pr.posted)))
	for i, req := range pr.posted {
		if !reqMatches(req, pkt) {
			continue
		}
		pr.posted = append(pr.posted[:i], pr.posted[i+1:]...)
		pr.acceptRendezvous(req, pkt)
		pr.Stats.ExpectedMsgs++
		return
	}
	m := pr.getUMsg()
	m.ctx = pkt.Ctx
	m.tag = pkt.Tag
	m.srcRank = pkt.SrcRank
	m.rts = pkt
	m.at = pr.P.Now()
	pr.unexpected = append(pr.unexpected, m)
	pr.Stats.UnexpectedMsgs++
}

// handleCTS releases the pinned data of a pending rendezvous send.
func (pr *Process) handleCTS(pkt *gm.Packet) {
	req, ok := pr.sendRv[pkt.Handle]
	if !ok {
		panic(fmt.Sprintf("mpi: CTS for unknown handle %d", pkt.Handle))
	}
	delete(pr.sendRv, pkt.Handle)
	typ := gm.RendezvousData
	if req.collective {
		typ = gm.CollectiveData
	}
	data := &gm.Packet{
		Type:    typ,
		DstNode: req.dst,
		SrcRank: int32(pr.rank),
		Root:    pkt.Root,
		Seq:     pkt.Seq,
		Handle:  req.handle,
		Data:    req.data, // sent from pinned memory: no host copy
	}
	pr.nic.Send(pr.P, data)
	pr.Mem.Unpin(pr.P, req.pinned)
	req.pinned = nil
	req.done = true
	if req.onComplete != nil {
		fn := req.onComplete
		req.onComplete = nil
		fn()
	}
}

// handleData lands rendezvous payload directly in the user buffer (DMA,
// no host copy) and completes the receive.
func (pr *Process) handleData(pkt *gm.Packet) {
	req, ok := pr.recvRv[pkt.Handle]
	if !ok {
		panic(fmt.Sprintf("mpi: data for unknown handle %d", pkt.Handle))
	}
	delete(pr.recvRv, pkt.Handle)
	copy(req.buf, pkt.Data) // models the DMA landing; charged at the NIC
	pr.Mem.Unpin(pr.P, req.pinned)
	req.pinned = nil
	req.complete(req.status.Source, req.status.Tag, len(pkt.Data))
}

// reqMatches applies MPI matching semantics between a posted receive and
// an incoming envelope.
func reqMatches(req *Request, pkt *gm.Packet) bool {
	return req.ctx == pkt.Ctx &&
		(req.src == AnySource || int32(req.src) == pkt.SrcRank) &&
		(req.tag == AnyTag || req.tag == pkt.Tag)
}

// UnexpectedLen reports the depth of the MPICH unexpected queue.
func (pr *Process) UnexpectedLen() int { return len(pr.unexpected) }

// PostedLen reports the depth of the posted-receive queue.
func (pr *Process) PostedLen() int { return len(pr.posted) }
