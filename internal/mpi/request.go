package mpi

import (
	"fmt"

	"abred/internal/gm"
)

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int32
	Count  int // payload bytes delivered
}

// reqKind distinguishes request state machines.
type reqKind int

const (
	reqSendEager reqKind = iota
	reqSendRendezvous
	reqRecv
)

// Request is a non-blocking operation handle (MPI_Request).
type Request struct {
	pr   *Process
	kind reqKind
	done bool

	// Receive matching criteria and destination buffer.
	ctx    uint16
	src    int // AnySource allowed
	tag    int32
	buf    []byte
	status Status

	// Rendezvous-send state.
	data       []byte
	dst        int
	handle     uint64
	pinned     *gm.Region
	collective bool // send data with the collective packet type

	// onComplete, if set, fires once when the request completes; the
	// application-bypass layer chains rendezvous receives to reduction
	// descriptors with it.
	onComplete func()
}

// Done reports whether the operation has completed.
func (r *Request) Done() bool { return r.done }

// SetOnComplete installs a completion callback, firing it immediately
// if the request is already done.
func (r *Request) SetOnComplete(fn func()) {
	if r.done {
		fn()
		return
	}
	r.onComplete = fn
}

// Status returns the completion status; valid only after Done.
func (r *Request) Status() Status {
	if !r.done {
		panic("mpi: Status on incomplete request")
	}
	return r.status
}

// Wait drives the progress engine until the request completes and
// returns its status. Blocked time burns CPU (polling), exactly like
// MPICH-over-GM's polling progress.
func (r *Request) Wait() Status {
	r.pr.ProgressUntil(func() bool { return r.done })
	return r.status
}

// Test drives one non-blocking progress pass and reports completion.
func (r *Request) Test() bool {
	r.pr.ProgressPoll()
	return r.done
}

// WaitAll completes every request.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

func (r *Request) String() string {
	k := map[reqKind]string{reqSendEager: "esend", reqSendRendezvous: "rsend", reqRecv: "recv"}[r.kind]
	return fmt.Sprintf("%s(ctx=%d src=%d tag=%d done=%v)", k, r.ctx, r.src, r.tag, r.done)
}
