package mpi

import (
	"testing"
	"time"
)

func TestIprobeAndProbe(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.P.Sleep(100 * time.Microsecond)
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 3, Data: []byte{1, 2, 3, 4}})
		case 1:
			if _, ok := pr.Iprobe(0, 0, 3); ok {
				t.Error("Iprobe true before any send")
			}
			st := pr.Probe(0, 0, 3)
			if st.Source != 0 || st.Tag != 3 || st.Count != 4 {
				t.Errorf("probe status %+v", st)
			}
			// Probe must not consume: the receive still works.
			if _, ok := pr.Iprobe(0, 0, 3); !ok {
				t.Error("probe consumed the message")
			}
			buf := make([]byte, 4)
			pr.Recv(0, 0, 3, buf)
			if buf[3] != 4 {
				t.Errorf("payload after probe: %v", buf)
			}
			if _, ok := pr.Iprobe(0, 0, 3); ok {
				t.Error("message still probeable after receive")
			}
		}
	})
}

func TestProbeRendezvousReportsFullLength(t *testing.T) {
	big := make([]byte, 20000)
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 1, Data: big})
		case 1:
			pr.P.Sleep(300 * time.Microsecond)
			st := pr.Probe(0, 0, 1)
			if st.Count != len(big) {
				t.Errorf("probe of rendezvous RTS reports %d bytes, want %d", st.Count, len(big))
			}
			pr.Recv(0, 0, 1, make([]byte, len(big)))
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		peer := 1 - pr.Rank()
		out := []byte{byte(10 + pr.Rank())}
		in := make([]byte, 1)
		st := pr.Sendrecv(
			SendArgs{Dst: peer, Ctx: 0, Tag: 7, Data: out},
			0, peer, 7, in,
		)
		if st.Source != peer || in[0] != byte(10+peer) {
			t.Errorf("rank %d sendrecv got %v from %d", pr.Rank(), in, st.Source)
		}
	})
}

func TestSendrecvRing(t *testing.T) {
	const n = 5
	runRanks(t, n, func(pr *Process) {
		right := (pr.Rank() + 1) % n
		left := (pr.Rank() - 1 + n) % n
		in := make([]byte, 1)
		pr.Sendrecv(SendArgs{Dst: right, Ctx: 0, Tag: 1, Data: []byte{byte(pr.Rank())}},
			0, left, 1, in)
		if in[0] != byte(left) {
			t.Errorf("rank %d ring got %d, want %d", pr.Rank(), in[0], left)
		}
	})
}

func TestTruncationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected truncation panic")
		}
	}()
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 1, Data: make([]byte, 16)})
		case 1:
			pr.Recv(0, 0, 1, make([]byte, 4)) // too small
		}
	})
}

func TestCommDupIsolation(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		w := World(pr)
		d := w.Dup(0)
		if d.Ctx(CtxP2P) == w.Ctx(CtxP2P) {
			t.Fatal("dup shares context ids with world")
		}
		switch pr.Rank() {
		case 0:
			d.Send(1, 1, []byte{5})
			w.Send(1, 1, []byte{6})
		case 1:
			buf := make([]byte, 1)
			w.Recv(0, 1, buf)
			if buf[0] != 6 {
				t.Errorf("world recv got %d, want 6", buf[0])
			}
			d.Recv(0, 1, buf)
			if buf[0] != 5 {
				t.Errorf("dup recv got %d, want 5", buf[0])
			}
		}
	})
}
