package mpi

import (
	"bytes"
	"testing"
)

// FuzzApply drives the reduction kernels with arbitrary buffers and
// checks memory-safety invariants: Apply never touches bytes beyond
// count*size and never reads from dst into src.
func FuzzApply(f *testing.F) {
	f.Add(uint8(0), uint8(5), []byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4, 3, 2, 1})
	f.Add(uint8(2), uint8(3), make([]byte, 32), make([]byte, 32))
	f.Add(uint8(8), uint8(1), []byte{0xFF, 0x00, 0xAA, 0x55}, []byte{0x0F, 0xF0, 0x33, 0xCC})
	f.Fuzz(func(t *testing.T, opRaw, dtRaw uint8, dst, src []byte) {
		op := Op(opRaw % 9)
		dt := Datatype(dtRaw % 6)
		if !op.ValidFor(dt) {
			return
		}
		// The fuzzing engine may hand over slices sharing a backing
		// array; copy so the aliasing checks below test Apply, not the
		// harness.
		dst = append([]byte(nil), dst...)
		src = append([]byte(nil), src...)
		n := len(dst)
		if len(src) < n {
			n = len(src)
		}
		count := n / dt.Size()
		if count == 0 {
			return
		}
		limit := count * dt.Size()

		dstCopy := append([]byte(nil), dst...)
		srcCopy := append([]byte(nil), src...)
		Apply(op, dt, dst, src, count)

		if !bytes.Equal(src, srcCopy) {
			t.Fatalf("Apply mutated src")
		}
		if !bytes.Equal(dst[limit:], dstCopy[limit:]) {
			t.Fatalf("Apply wrote past element %d", count)
		}
		// Idempotence spot-checks for the absorbing operators.
		switch op {
		case OpMax, OpMin, OpBOr, OpBAnd, OpLOr, OpLAnd:
			again := append([]byte(nil), dst...)
			Apply(op, dt, again, src, count)
			Apply(op, dt, dst, src, count)
			if !bytes.Equal(again, dst) {
				t.Fatalf("%v/%v not deterministic on reapplication", op, dt)
			}
		}
	})
}

// FuzzEnvelopeMatching checks the matcher against its definition for
// arbitrary envelopes and wildcards.
func FuzzEnvelopeMatching(f *testing.F) {
	f.Add(uint16(1), int32(5), int32(0), true, true)
	f.Fuzz(func(t *testing.T, ctx uint16, tag int32, srcRank int32, wildSrc, wildTag bool) {
		if srcRank < 0 {
			srcRank = -srcRank
		}
		if tag < 0 {
			tag = -tag
		}
		m := &uMsg{ctx: ctx, tag: tag, srcRank: srcRank}
		src := int(srcRank)
		if wildSrc {
			src = AnySource
		}
		wantTag := tag
		if wildTag {
			wantTag = AnyTag
		}
		if !m.matches(ctx, src, wantTag) {
			t.Fatalf("self-match failed: %+v", m)
		}
		if m.matches(ctx+1, src, wantTag) {
			t.Fatal("matched wrong context")
		}
		if !wildSrc && m.matches(ctx, src+1, wantTag) {
			t.Fatal("matched wrong source")
		}
		if !wildTag && m.matches(ctx, src, wantTag+1) {
			t.Fatal("matched wrong tag")
		}
	})
}
