package mpi

import "testing"

// Comm's methods are exercised heavily from the collective packages;
// these tests pin their contracts within the package itself.

func TestCommBasics(t *testing.T) {
	runRanks(t, 3, func(pr *Process) {
		w := World(pr)
		if w.Rank() != pr.Rank() || w.Size() != 3 || w.Proc() != pr {
			t.Errorf("comm identity wrong: %v", w)
		}
		if w.String() == "" || pr.String() == "" {
			t.Error("empty String()")
		}
		if s0 := w.NextSeq(CtxReduce); s0 != 0 {
			t.Errorf("first seq = %d", s0)
		}
		if w.CurSeq(CtxReduce) != 1 {
			t.Error("CurSeq did not observe NextSeq")
		}
		if w.NextSeq(CtxBcast) != 0 {
			t.Error("seq streams not independent per kind")
		}
	})
}

func TestCommIsendIrecv(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		w := World(pr)
		switch w.Rank() {
		case 0:
			w.Isend(1, 9, []byte{42}).Wait()
		case 1:
			buf := make([]byte, 1)
			st := w.Irecv(0, 9, buf).Wait()
			if st.Source != 0 || buf[0] != 42 {
				t.Errorf("irecv got %v from %d", buf, st.Source)
			}
		}
	})
}

func TestRebind(t *testing.T) {
	runRanks(t, 1, func(pr *Process) {
		old := pr.P
		pr.Rebind(old) // same proc: must be a no-op rebind
		if pr.P != old {
			t.Error("rebind lost the proc")
		}
	})
}

func TestDatatypeAndOpStrings(t *testing.T) {
	for _, d := range []Datatype{Byte, Int32, Int64, Uint64, Float32, Float64} {
		if d.String() == "" || d.String() == "unknown" {
			t.Errorf("datatype %d has bad name %q", d, d.String())
		}
	}
	for _, op := range []Op{OpSum, OpProd, OpMax, OpMin, OpLAnd, OpLOr, OpBAnd, OpBOr, OpBXor} {
		if op.String() == "" || op.String() == "unknown" {
			t.Errorf("op %d has bad name %q", op, op.String())
		}
	}
	if Op(99).String() != "unknown" || Datatype(99).String() != "unknown" {
		t.Error("out-of-range names should be unknown")
	}
}

func TestRequestStringForms(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		if pr.Rank() != 0 {
			pr.Recv(0, 0, 1, make([]byte, 1))
			return
		}
		req := pr.Isend(SendArgs{Dst: 1, Ctx: 0, Tag: 1, Data: []byte{1}})
		if req.String() == "" {
			t.Error("empty request string")
		}
	})
}

func TestStatusOnIncompletePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	runRanks(t, 1, func(pr *Process) {
		req := pr.Irecv(0, 0, 99, make([]byte, 1))
		req.Status() // incomplete: must panic
	})
}
