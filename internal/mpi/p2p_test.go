package mpi

import (
	"testing"
	"time"

	"abred/internal/fabric"
	"abred/internal/gm"
	"abred/internal/model"
	"abred/internal/sim"
)

const us = time.Microsecond

// harness wires n MPI processes over a fabric and runs fn per rank.
type harness struct {
	k     *sim.Kernel
	procs []*Process
}

func runRanks(t *testing.T, n int, fn func(pr *Process)) *harness {
	t.Helper()
	h := &harness{k: sim.New(1), procs: make([]*Process, n)}
	costs := model.DefaultCosts()
	fab := fabric.New(h.k, n, costs)
	nics := make([]*gm.NIC, n)
	for i := 0; i < n; i++ {
		nics[i] = gm.NewNIC(h.k, i, model.NewCostModel(model.Uniform(1)[0], costs), fab)
	}
	for i := 0; i < n; i++ {
		i := i
		h.k.Spawn("rank", func(p *sim.Proc) {
			h.procs[i] = NewProcess(p, i, n, nics[i], model.NewCostModel(model.Uniform(1)[0], costs))
			fn(h.procs[i])
		})
	}
	h.k.Run()
	return h
}

func TestEagerSendRecv(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 7, Data: payload})
		case 1:
			buf := make([]byte, 5)
			st := pr.Recv(0, 0, 7, buf)
			if st.Source != 0 || st.Tag != 7 || st.Count != 5 {
				t.Errorf("status = %+v", st)
			}
			for i := range payload {
				if buf[i] != payload[i] {
					t.Errorf("payload corrupted: %v", buf)
					break
				}
			}
		}
	})
}

func TestExpectedMessageCostsOneCopy(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.P.Sleep(100 * us) // let the receiver post first
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 1, Data: make([]byte, 64)})
		case 1:
			req := pr.Irecv(0, 0, 1, make([]byte, 64))
			base := pr.Stats.HostCopies
			req.Wait()
			if pr.Stats.ExpectedMsgs != 1 {
				t.Errorf("expected msgs = %d, want 1", pr.Stats.ExpectedMsgs)
			}
			if got := pr.Stats.HostCopies - base; got != 1 {
				t.Errorf("expected path copies = %d, want 1 (packet -> user buffer)", got)
			}
		}
	})
}

func TestUnexpectedMessageCostsTwoCopies(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 1, Data: make([]byte, 64)})
		case 1:
			pr.P.Sleep(200 * us) // message arrives before the receive
			pr.ProgressPoll()    // pull it into the unexpected queue
			if pr.UnexpectedLen() != 1 {
				t.Fatalf("unexpected queue = %d, want 1", pr.UnexpectedLen())
			}
			base := pr.Stats.HostCopies
			pr.Recv(0, 0, 1, make([]byte, 64))
			if pr.Stats.UnexpectedMsgs != 1 {
				t.Errorf("unexpected msgs = %d, want 1", pr.Stats.UnexpectedMsgs)
			}
			// One copy happened at arrival (before base), one at Recv.
			if got := pr.Stats.HostCopies - base; got != 1 {
				t.Errorf("copies at Recv = %d, want 1 (temp -> user)", got)
			}
		}
	})
}

func TestWildcards(t *testing.T) {
	runRanks(t, 3, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.Send(SendArgs{Dst: 2, Ctx: 0, Tag: 5, Data: []byte{0}})
		case 1:
			pr.P.Sleep(50 * us)
			pr.Send(SendArgs{Dst: 2, Ctx: 0, Tag: 9, Data: []byte{1}})
		case 2:
			buf := make([]byte, 1)
			st1 := pr.Recv(0, AnySource, AnyTag, buf)
			st2 := pr.Recv(0, AnySource, AnyTag, buf)
			got := map[int]int32{st1.Source: st1.Tag, st2.Source: st2.Tag}
			if got[0] != 5 || got[1] != 9 {
				t.Errorf("wildcard matching wrong: %+v %+v", st1, st2)
			}
		}
	})
}

func TestTagAndContextIsolation(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.Send(SendArgs{Dst: 1, Ctx: 3, Tag: 1, Data: []byte{33}})
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 1, Data: []byte{11}})
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 2, Data: []byte{22}})
		case 1:
			buf := make([]byte, 1)
			pr.Recv(0, 0, 2, buf)
			if buf[0] != 22 {
				t.Errorf("tag 2 got %d", buf[0])
			}
			pr.Recv(3, 0, 1, buf)
			if buf[0] != 33 {
				t.Errorf("ctx 3 got %d", buf[0])
			}
			pr.Recv(0, 0, 1, buf)
			if buf[0] != 11 {
				t.Errorf("ctx 0 tag 1 got %d", buf[0])
			}
		}
	})
}

func TestFIFOPerPair(t *testing.T) {
	const msgs = 20
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			for i := 0; i < msgs; i++ {
				pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 1, Data: []byte{byte(i)}})
			}
		case 1:
			buf := make([]byte, 1)
			for i := 0; i < msgs; i++ {
				pr.Recv(0, 0, 1, buf)
				if buf[0] != byte(i) {
					t.Fatalf("message %d arrived out of order (got %d)", i, buf[0])
				}
			}
		}
	})
}

func TestIsendIrecvWaitTest(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.P.Sleep(100 * us)
			r := pr.Isend(SendArgs{Dst: 1, Ctx: 0, Tag: 4, Data: []byte{9}})
			if !r.Done() {
				t.Error("eager Isend should complete immediately")
			}
		case 1:
			buf := make([]byte, 1)
			req := pr.Irecv(0, 0, 4, buf)
			if req.Test() {
				t.Error("Test true before message sent")
			}
			st := req.Wait()
			if st.Source != 0 || buf[0] != 9 {
				t.Errorf("wrong message: %+v %v", st, buf)
			}
			if !req.Test() {
				t.Error("Test false after completion")
			}
		}
	})
}

func TestRendezvousLargeMessage(t *testing.T) {
	costs := model.DefaultCosts()
	big := make([]byte, costs.EagerThreshold*2)
	for i := range big {
		big[i] = byte(i * 31)
	}
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pins := pr.Mem.Pins()
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 1, Data: big})
			if pr.Stats.RendezvousSends != 1 {
				t.Errorf("rendezvous sends = %d, want 1", pr.Stats.RendezvousSends)
			}
			if pr.Mem.Pins() != pins+1 {
				t.Errorf("sender should pin exactly once")
			}
			if pool := 64 * pr.CM.C.EagerThreshold; pr.Mem.PinnedBytes() != pool {
				t.Errorf("sender left %d bytes pinned beyond the eager pool", pr.Mem.PinnedBytes()-pool)
			}
		case 1:
			buf := make([]byte, len(big))
			pr.P.Sleep(50 * us)
			base := pr.Stats.HostCopies
			pr.Recv(0, 0, 1, buf)
			for i := 0; i < len(big); i += 4097 {
				if buf[i] != big[i] {
					t.Fatalf("payload corrupted at %d", i)
				}
			}
			if got := pr.Stats.HostCopies - base; got != 0 {
				t.Errorf("rendezvous receive made %d host copies, want 0 (DMA)", got)
			}
		}
	})
}

func TestRendezvousUnexpectedRTS(t *testing.T) {
	costs := model.DefaultCosts()
	big := make([]byte, costs.EagerThreshold+1)
	big[costs.EagerThreshold] = 42
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 1, Data: big})
		case 1:
			pr.P.Sleep(300 * us) // RTS arrives before the receive posts
			pr.ProgressPoll()
			if pr.UnexpectedLen() != 1 {
				t.Fatalf("RTS not queued as unexpected")
			}
			buf := make([]byte, len(big))
			pr.Recv(0, 0, 1, buf)
			if buf[costs.EagerThreshold] != 42 {
				t.Error("payload corrupted")
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	runRanks(t, 1, func(pr *Process) {
		req := pr.Irecv(0, 0, 3, make([]byte, 1))
		pr.Send(SendArgs{Dst: 0, Ctx: 0, Tag: 3, Data: []byte{77}})
		st := req.Wait()
		if st.Source != 0 || st.Count != 1 {
			t.Errorf("self-send status %+v", st)
		}
	})
}

func TestWaitAllCompletesEverything(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			for i := int32(0); i < 5; i++ {
				pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: i, Data: []byte{byte(i)}})
			}
		case 1:
			var reqs []*Request
			bufs := make([][]byte, 5)
			for i := int32(0); i < 5; i++ {
				bufs[i] = make([]byte, 1)
				reqs = append(reqs, pr.Irecv(0, 0, i, bufs[i]))
			}
			WaitAll(reqs...)
			for i := range bufs {
				if bufs[i][0] != byte(i) {
					t.Errorf("req %d delivered %v", i, bufs[i])
				}
			}
		}
	})
}

func TestBlockedRecvChargesCPU(t *testing.T) {
	runRanks(t, 2, func(pr *Process) {
		switch pr.Rank() {
		case 0:
			pr.P.Sleep(500 * us)
			pr.Send(SendArgs{Dst: 1, Ctx: 0, Tag: 1, Data: []byte{1}})
		case 1:
			pr.Recv(0, 0, 1, make([]byte, 1))
			// MPICH-over-GM polls: the ~500µs wait must burn CPU.
			if pr.Stats.PollBusy < 400*us {
				t.Errorf("poll busy = %v, want ≈500µs (polling is CPU)", pr.Stats.PollBusy)
			}
		}
	})
}

func TestSendToInvalidRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	runRanks(t, 2, func(pr *Process) {
		if pr.Rank() == 0 {
			pr.Send(SendArgs{Dst: 5, Ctx: 0, Tag: 0, Data: []byte{1}})
		}
	})
}

func TestKindOfCtx(t *testing.T) {
	if KindOfCtx(uint16(CtxReduce)) != CtxReduce {
		t.Error("base comm kind wrong")
	}
	if KindOfCtx(uint16(nCtxKinds)+uint16(CtxBcast)) != CtxBcast {
		t.Error("dup comm kind wrong")
	}
}
