package mpi

import "testing"

func TestSubCommTranslation(t *testing.T) {
	runRanks(t, 6, func(pr *Process) {
		members := []int{1, 3, 5}
		if pr.Rank()%2 == 0 {
			return
		}
		c := Sub(pr, members, 3)
		if c.IsWorld() {
			t.Error("sub-communicator claims to be world")
		}
		if c.Size() != 3 {
			t.Errorf("Size() = %d, want 3", c.Size())
		}
		if want := pr.Rank() / 2; c.Rank() != want {
			t.Errorf("Rank() = %d, want %d", c.Rank(), want)
		}
		for i, w := range members {
			if c.World(i) != w {
				t.Errorf("World(%d) = %d, want %d", i, c.World(i), w)
			}
		}
		// Context bases must differ from the world's and between ids.
		w := World(pr)
		if c.Ctx(CtxReduce) == w.Ctx(CtxReduce) {
			t.Error("sub-communicator shares the world reduce context")
		}
		if d := c.Dup(7); d.Ctx(CtxReduce) == c.Ctx(CtxReduce) || d.Rank() != c.Rank() {
			t.Error("Dup did not keep membership with a fresh context")
		}
	})
}

func TestSubCommP2P(t *testing.T) {
	runRanks(t, 4, func(pr *Process) {
		if pr.Rank() == 0 {
			return // not a member: no traffic touches it
		}
		c := Sub(pr, []int{1, 2, 3}, 1)
		// Local rank 0 (world 1) sends to local rank 2 (world 3).
		switch c.Rank() {
		case 0:
			c.Send(2, 5, []byte{7})
		case 2:
			buf := make([]byte, 1)
			st := c.Recv(0, 5, buf)
			if buf[0] != 7 || st.Source != 1 {
				t.Errorf("recv got %v from world %d", buf, st.Source)
			}
		}
	})
}

func TestSubCommValidation(t *testing.T) {
	expectPanic := func(name string, fn func(pr *Process)) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		runRanks(t, 4, func(pr *Process) {
			if pr.Rank() == 0 {
				fn(pr)
			}
		})
	}
	expectPanic("empty members", func(pr *Process) { Sub(pr, nil, 1) })
	expectPanic("not ascending", func(pr *Process) { Sub(pr, []int{0, 2, 1}, 1) })
	expectPanic("duplicate member", func(pr *Process) { Sub(pr, []int{0, 0}, 1) })
	expectPanic("out of range", func(pr *Process) { Sub(pr, []int{0, 9}, 1) })
	expectPanic("caller not a member", func(pr *Process) { Sub(pr, []int{1, 2}, 1) })
	expectPanic("negative id", func(pr *Process) { Sub(pr, []int{0, 1}, -1) })
	expectPanic("id past context space", func(pr *Process) { Sub(pr, []int{0, 1}, 1<<16) })
}
