package mpi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDatatypeSizes(t *testing.T) {
	want := map[Datatype]int{Byte: 1, Int32: 4, Float32: 4, Int64: 8, Uint64: 8, Float64: 8}
	for d, n := range want {
		if d.Size() != n {
			t.Errorf("%v.Size() = %d, want %d", d, d.Size(), n)
		}
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		got := BytesToFloat64s(Float64sToBytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] && !(math.IsNaN(got[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		got := BytesToInt64s(Int64sToBytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt32RoundTrip(t *testing.T) {
	f := func(vals []int32) bool {
		got := BytesToInt32s(Int32sToBytes(vals))
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return len(got) == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		got := BytesToUint64s(Uint64sToBytes(vals))
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return len(got) == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestApplyFloat64AgainstReference checks every arithmetic operator
// against a plain Go fold.
func TestApplyFloat64AgainstReference(t *testing.T) {
	ref := map[Op]func(a, b float64) float64{
		OpSum:  func(a, b float64) float64 { return a + b },
		OpProd: func(a, b float64) float64 { return a * b },
		OpMax:  math.Max,
		OpMin:  math.Min,
		OpLAnd: func(a, b float64) float64 {
			if a != 0 && b != 0 {
				return 1
			}
			return 0
		},
		OpLOr: func(a, b float64) float64 {
			if a != 0 || b != 0 {
				return 1
			}
			return 0
		},
	}
	for op, fold := range ref {
		op, fold := op, fold
		f := func(a, b []float64) bool {
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			if n == 0 {
				return true
			}
			a, b = a[:n], b[:n]
			for i := range a { // keep NaN out: NaN semantics differ per op
				if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
					a[i] = 1
				}
				if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
					b[i] = 2
				}
			}
			dst := Float64sToBytes(a)
			Apply(op, Float64, dst, Float64sToBytes(b), n)
			got := BytesToFloat64s(dst)
			for i := range got {
				if got[i] != fold(a[i], b[i]) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("op %v: %v", op, err)
		}
	}
}

// TestApplyIntBitwise checks bitwise kernels across integer widths.
func TestApplyIntBitwise(t *testing.T) {
	f := func(a, b []uint64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		for _, op := range []Op{OpBAnd, OpBOr, OpBXor} {
			dst := Uint64sToBytes(a[:n])
			Apply(op, Uint64, dst, Uint64sToBytes(b[:n]), n)
			got := BytesToUint64s(dst)
			for i := range got {
				var want uint64
				switch op {
				case OpBAnd:
					want = a[i] & b[i]
				case OpBOr:
					want = a[i] | b[i]
				case OpBXor:
					want = a[i] ^ b[i]
				}
				if got[i] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyByteBitwise(t *testing.T) {
	dst := []byte{0xF0, 0x0F, 0xAA}
	src := []byte{0x0F, 0x0F, 0x55}
	Apply(OpBOr, Byte, dst, src, 3)
	for i, want := range []byte{0xFF, 0x0F, 0xFF} {
		if dst[i] != want {
			t.Errorf("byte %d = %#x, want %#x", i, dst[i], want)
		}
	}
}

func TestApplyInt32MinMax(t *testing.T) {
	dst := Int32sToBytes([]int32{-5, 7, 0})
	Apply(OpMax, Int32, dst, Int32sToBytes([]int32{3, -9, 0}), 3)
	got := BytesToInt32s(dst)
	for i, want := range []int32{3, 7, 0} {
		if got[i] != want {
			t.Errorf("elem %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestApplyBitwiseOnFloatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bitwise op on float64")
		}
	}()
	Apply(OpBAnd, Float64, make([]byte, 8), make([]byte, 8), 1)
}

func TestApplyShortBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short buffer")
		}
	}()
	Apply(OpSum, Float64, make([]byte, 8), make([]byte, 8), 2)
}

// TestIdentityIsNeutral checks op(identity, x) == x for every valid
// (op, datatype) pair on a probe value.
func TestIdentityIsNeutral(t *testing.T) {
	for _, d := range []Datatype{Byte, Int32, Int64, Uint64, Float32, Float64} {
		for _, op := range []Op{OpSum, OpProd, OpMax, OpMin, OpBAnd, OpBOr, OpBXor} {
			if !op.ValidFor(d) {
				continue
			}
			probe := make([]byte, d.Size())
			probe[0] = 3 // small positive value in every encoding
			dst := Identity(op, d)
			Apply(op, d, dst, probe, 1)
			for i := range dst {
				if dst[i] != probe[i] {
					t.Errorf("op %v on %v: identity not neutral: got % x want % x", op, d, dst, probe)
					break
				}
			}
		}
	}
}

// TestApplyCommutative verifies the commutativity the asynchronous
// processing relies on: children may be combined in any arrival order.
func TestApplyCommutative(t *testing.T) {
	f := func(a, b, c []float64) bool {
		n := len(a)
		for _, x := range [][]float64{b, c} {
			if len(x) < n {
				n = len(x)
			}
		}
		if n == 0 {
			return true
		}
		// Map to small integers so float sums are exact: the test is
		// about combination order, not rounding.
		for i := 0; i < n; i++ {
			for _, s := range [][]float64{a, b, c} {
				v := s[i]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 1
				}
				s[i] = float64(int64(v) % 1000)
			}
		}
		for _, op := range []Op{OpSum, OpMax, OpMin} {
			x := Float64sToBytes(a[:n])
			Apply(op, Float64, x, Float64sToBytes(b[:n]), n)
			Apply(op, Float64, x, Float64sToBytes(c[:n]), n)
			y := Float64sToBytes(a[:n])
			Apply(op, Float64, y, Float64sToBytes(c[:n]), n)
			Apply(op, Float64, y, Float64sToBytes(b[:n]), n)
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpStringAndValidity(t *testing.T) {
	if OpSum.String() != "sum" || OpBXor.String() != "bxor" {
		t.Error("op names wrong")
	}
	if OpBAnd.ValidFor(Float64) {
		t.Error("band must be invalid for float64")
	}
	if !OpBAnd.ValidFor(Int64) || !OpSum.ValidFor(Float32) {
		t.Error("validity too strict")
	}
}
