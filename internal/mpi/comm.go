package mpi

import "fmt"

// CtxKind separates traffic classes within one communicator. MPICH keeps
// distinct context ids for point-to-point and collective communication so
// a collective message can never match an application receive; we go one
// step further and give each collective kind its own context, which keeps
// back-to-back different collectives from interfering.
type CtxKind uint16

// Context kinds within a communicator.
const (
	CtxP2P CtxKind = iota
	CtxReduce
	CtxBcast
	CtxBarrier
	CtxGather
	CtxScatter
	CtxAllgather
	CtxScan
	CtxAlltoall
	// CtxIReduce carries split-phase (IReduce) traffic. It is separate
	// from CtxReduce so the progress engine can tell how a packet
	// addressed to the root must be handled: blocking reductions keep
	// the paper's Fig. 4 semantics (root packets take the default
	// MPICH path), while split-phase root packets belong to the
	// descriptor machinery.
	CtxIReduce
	nCtxKinds
)

// KindOfCtx recovers the traffic class from a concrete context id
// (communicator bases are multiples of nCtxKinds).
func KindOfCtx(ctx uint16) CtxKind { return CtxKind(ctx % uint16(nCtxKinds)) }

// Comm is a communicator: a rank space plus isolated context ids. A
// sub-communicator (see Sub) spans a subset of the world's processes;
// its rank space is local (0..len(members)-1) while the wire stays in
// world coordinates — packets carry world ranks, because a packet's
// SrcRank doubles as a routable node id (rendezvous replies are
// addressed straight to it). Collective layers therefore compute tree
// relations in comm-local rank space and translate every peer through
// World at the send/receive boundary.
type Comm struct {
	pr   *Process
	base uint16
	seqs [nCtxKinds]uint64

	// members maps local rank -> world rank, ascending; nil for the
	// world communicator (the common case keeps its zero-cost identity
	// translation).
	members []int
	myRank  int // local rank of pr when members != nil
}

// World returns the world communicator for a process.
func World(pr *Process) *Comm { return &Comm{pr: pr, base: 0} }

// Sub returns a communicator over a subset of world ranks. members
// lists the participating world ranks in ascending order and must
// include the calling process; local rank i is members[i]. id
// isolates the communicator's traffic: each id gets its own context
// base, so concurrent communicators with distinct ids can never match
// each other's messages (ids share the Dup numbering space — callers
// coordinate the two, exactly as MPI's context-id allocation does).
func Sub(pr *Process, members []int, id int) *Comm {
	if len(members) == 0 {
		panic("mpi: sub-communicator with no members")
	}
	base := (1 + id) * int(nCtxKinds)
	if id < 0 || base+int(nCtxKinds) > 1<<16 {
		panic(fmt.Sprintf("mpi: communicator id %d outside the context space", id))
	}
	me := -1
	for i, w := range members {
		if i > 0 && members[i-1] >= w {
			panic(fmt.Sprintf("mpi: sub-communicator members not ascending at %d", i))
		}
		if w < 0 || w >= pr.size {
			panic(fmt.Sprintf("mpi: member %d out of world range (size %d)", w, pr.size))
		}
		if w == pr.rank {
			me = i
		}
	}
	if me < 0 {
		panic(fmt.Sprintf("mpi: process rank %d is not a member of the sub-communicator", pr.rank))
	}
	return &Comm{pr: pr, base: uint16(base), members: members, myRank: me}
}

// Dup returns a communicator with fresh context ids over the same ranks
// (MPI_Comm_dup). n counts previously created communicators.
func (c *Comm) Dup(n int) *Comm {
	return &Comm{pr: c.pr, base: uint16((n + 1) * int(nCtxKinds)),
		members: c.members, myRank: c.myRank}
}

// IsWorld reports whether the communicator spans every process. The
// NIC-resident collective paths (NIC firmware, asynchronous broadcast
// forwarding) key their tree math off world state and accept world
// communicators only.
func (c *Comm) IsWorld() bool { return c.members == nil }

// World translates a comm-local rank to its world rank — the identity
// on the world communicator. Every value that reaches the wire (send
// destinations, receive-match sources, packet Root fields) must be
// world-translated.
func (c *Comm) World(r int) int {
	if c.members == nil {
		return r
	}
	return c.members[r]
}

// Rank returns the calling process's rank in this communicator.
func (c *Comm) Rank() int {
	if c.members == nil {
		return c.pr.rank
	}
	return c.myRank
}

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int {
	if c.members == nil {
		return c.pr.size
	}
	return len(c.members)
}

// Proc exposes the underlying process to the collective layers.
func (c *Comm) Proc() *Process { return c.pr }

// Ctx returns the concrete context id for a traffic class.
func (c *Comm) Ctx(kind CtxKind) uint16 { return c.base + uint16(kind) }

// NextSeq returns a fresh collective instance number for a traffic
// class. Every rank calls collectives in the same order (an MPI
// requirement), so per-rank counters agree globally.
func (c *Comm) NextSeq(kind CtxKind) uint64 {
	s := c.seqs[kind]
	c.seqs[kind]++
	return s
}

// CurSeq reports the next sequence number without consuming it.
func (c *Comm) CurSeq(kind CtxKind) uint64 { return c.seqs[kind] }

// Send is blocking point-to-point on the communicator's p2p context.
// dst is a comm-local rank.
func (c *Comm) Send(dst int, tag int32, data []byte) {
	c.pr.Send(SendArgs{Dst: c.World(dst), Ctx: c.Ctx(CtxP2P), Tag: tag, Data: data})
}

// Isend is the non-blocking form of Send.
func (c *Comm) Isend(dst int, tag int32, data []byte) *Request {
	return c.pr.Isend(SendArgs{Dst: c.World(dst), Ctx: c.Ctx(CtxP2P), Tag: tag, Data: data})
}

// Recv is blocking point-to-point receive on the p2p context. src is a
// comm-local rank; a returned Status carries the world source rank.
func (c *Comm) Recv(src int, tag int32, buf []byte) Status {
	return c.pr.Recv(c.Ctx(CtxP2P), c.World(src), tag, buf)
}

// Irecv is the non-blocking form of Recv.
func (c *Comm) Irecv(src int, tag int32, buf []byte) *Request {
	return c.pr.Irecv(c.Ctx(CtxP2P), c.World(src), tag, buf)
}

func (c *Comm) String() string {
	return fmt.Sprintf("comm(base=%d, %s)", c.base, c.pr)
}
