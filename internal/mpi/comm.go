package mpi

import "fmt"

// CtxKind separates traffic classes within one communicator. MPICH keeps
// distinct context ids for point-to-point and collective communication so
// a collective message can never match an application receive; we go one
// step further and give each collective kind its own context, which keeps
// back-to-back different collectives from interfering.
type CtxKind uint16

// Context kinds within a communicator.
const (
	CtxP2P CtxKind = iota
	CtxReduce
	CtxBcast
	CtxBarrier
	CtxGather
	CtxScatter
	CtxAllgather
	CtxScan
	CtxAlltoall
	// CtxIReduce carries split-phase (IReduce) traffic. It is separate
	// from CtxReduce so the progress engine can tell how a packet
	// addressed to the root must be handled: blocking reductions keep
	// the paper's Fig. 4 semantics (root packets take the default
	// MPICH path), while split-phase root packets belong to the
	// descriptor machinery.
	CtxIReduce
	nCtxKinds
)

// KindOfCtx recovers the traffic class from a concrete context id
// (communicator bases are multiples of nCtxKinds).
func KindOfCtx(ctx uint16) CtxKind { return CtxKind(ctx % uint16(nCtxKinds)) }

// Comm is a communicator: a rank space plus isolated context ids.
type Comm struct {
	pr   *Process
	base uint16
	seqs [nCtxKinds]uint64
}

// World returns the world communicator for a process.
func World(pr *Process) *Comm { return &Comm{pr: pr, base: 0} }

// Dup returns a communicator with fresh context ids over the same ranks
// (MPI_Comm_dup). n counts previously created communicators.
func (c *Comm) Dup(n int) *Comm {
	return &Comm{pr: c.pr, base: uint16((n + 1) * int(nCtxKinds))}
}

// Rank returns the calling process's rank.
func (c *Comm) Rank() int { return c.pr.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.pr.size }

// Proc exposes the underlying process to the collective layers.
func (c *Comm) Proc() *Process { return c.pr }

// Ctx returns the concrete context id for a traffic class.
func (c *Comm) Ctx(kind CtxKind) uint16 { return c.base + uint16(kind) }

// NextSeq returns a fresh collective instance number for a traffic
// class. Every rank calls collectives in the same order (an MPI
// requirement), so per-rank counters agree globally.
func (c *Comm) NextSeq(kind CtxKind) uint64 {
	s := c.seqs[kind]
	c.seqs[kind]++
	return s
}

// CurSeq reports the next sequence number without consuming it.
func (c *Comm) CurSeq(kind CtxKind) uint64 { return c.seqs[kind] }

// Send is blocking point-to-point on the communicator's p2p context.
func (c *Comm) Send(dst int, tag int32, data []byte) {
	c.pr.Send(SendArgs{Dst: dst, Ctx: c.Ctx(CtxP2P), Tag: tag, Data: data})
}

// Isend is the non-blocking form of Send.
func (c *Comm) Isend(dst int, tag int32, data []byte) *Request {
	return c.pr.Isend(SendArgs{Dst: dst, Ctx: c.Ctx(CtxP2P), Tag: tag, Data: data})
}

// Recv is blocking point-to-point receive on the p2p context.
func (c *Comm) Recv(src int, tag int32, buf []byte) Status {
	return c.pr.Recv(c.Ctx(CtxP2P), src, tag, buf)
}

// Irecv is the non-blocking form of Recv.
func (c *Comm) Irecv(src int, tag int32, buf []byte) *Request {
	return c.pr.Irecv(c.Ctx(CtxP2P), src, tag, buf)
}

func (c *Comm) String() string {
	return fmt.Sprintf("comm(base=%d, %s)", c.base, c.pr)
}
