package mpi

// Iprobe checks, without blocking or consuming, whether a message
// matching (ctx, src, tag) could be received. It drives one progress
// pass first, so a packet already delivered by the NIC is visible.
func (pr *Process) Iprobe(ctx uint16, src int, tag int32) (Status, bool) {
	pr.ProgressPoll()
	pr.P.Spin(pr.CM.QueueSearch(len(pr.unexpected)))
	for _, m := range pr.unexpected {
		if !m.matches(ctx, src, tag) {
			continue
		}
		count := len(m.data)
		if m.rts != nil {
			count = m.rts.TotalLen
		}
		return Status{Source: int(m.srcRank), Tag: m.tag, Count: count}, true
	}
	return Status{}, false
}

// Probe blocks (burning CPU, like all MPICH waits) until a matching
// message is available, returning its envelope without consuming it.
func (pr *Process) Probe(ctx uint16, src int, tag int32) Status {
	for {
		if st, ok := pr.Iprobe(ctx, src, tag); ok {
			return st
		}
		t0 := pr.P.Now()
		pkt := pr.nic.Recv(pr.P)
		waited := pr.P.Now() - t0
		pr.P.AddBusy(waited)
		pr.Stats.PollBusy += waited
		pr.handlePacket(pkt)
	}
}

// Sendrecv executes a send and a receive concurrently — the deadlock-
// free exchange primitive MPI programs use for halo swaps.
func (pr *Process) Sendrecv(sendArgs SendArgs, recvCtx uint16, recvSrc int, recvTag int32, recvBuf []byte) Status {
	rreq := pr.Irecv(recvCtx, recvSrc, recvTag, recvBuf)
	sreq := pr.Isend(sendArgs)
	st := rreq.Wait()
	sreq.Wait()
	return st
}
