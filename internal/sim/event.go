package sim

import "container/heap"

// event is a scheduled closure. Events with equal times fire in schedule
// order (seq breaks ties), which keeps the simulation deterministic.
//
// Events are pooled: once popped (or compacted away) an event goes onto
// the kernel's free list and its generation advances, so stale evrefs
// held by earlier wake sources can never touch a recycled slot.
type event struct {
	t        Time
	seq      uint64
	fn       func()
	canceled bool
	index    int    // heap index, -1 when popped
	gen      uint64 // bumped on recycle; validates evrefs
}

// evref is a cancelation handle for a scheduled event. It stays valid
// only while the event's generation matches: after the event fires (and
// its storage is recycled for a later schedule), cancel through an old
// ref is a no-op instead of a use-after-reuse bug.
type evref struct {
	ev  *event
	gen uint64
}

// valid reports whether the ref still names a live scheduled event.
func (r evref) valid() bool { return r.ev != nil && r.ev.gen == r.gen }

// eventHeap is a min-heap ordered by (t, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// schedule enqueues fn to run at time t, reusing a pooled event when one
// is free. It may be called from scheduler context or from a running
// process.
func (k *Kernel) schedule(t Time, fn func()) evref {
	if t < k.now {
		t = k.now
	}
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.t, ev.seq, ev.fn, ev.canceled = t, k.seq, fn, false
	k.seq++
	heap.Push(&k.events, ev)
	return evref{ev: ev, gen: ev.gen}
}

// cancel marks the referenced event so it will be skipped, provided the
// ref is still current. Canceled entries stay in the heap until popped
// or until enough accumulate to trigger compaction.
func (k *Kernel) cancel(r evref) {
	if !r.valid() || r.ev.canceled || r.ev.index < 0 {
		return
	}
	r.ev.canceled = true
	k.ncanceled++
	k.maybeCompact()
}

// recycle returns a popped or compacted event to the free list,
// invalidating all outstanding refs to it.
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	k.free = append(k.free, ev)
}

// compactMin is the heap size below which compaction is never worth it.
const compactMin = 64

// maybeCompact rebuilds the heap without canceled entries once they
// outnumber the live ones. Long timeout-heavy simulations (GetTimeout,
// WaitTimeout) otherwise accumulate dead timers until their one-time pop.
// Compaction preserves the total (t, seq) order, so pop order — and with
// it the simulation — is unchanged.
func (k *Kernel) maybeCompact() {
	if len(k.events) < compactMin || k.ncanceled*2 <= len(k.events) {
		return
	}
	live := k.events[:0]
	for _, ev := range k.events {
		if ev.canceled {
			k.recycle(ev)
		} else {
			ev.index = len(live)
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(k.events); i++ {
		k.events[i] = nil
	}
	k.events = live
	heap.Init(&k.events)
	k.ncanceled = 0
}
