package sim

import "container/heap"

// event is a scheduled closure. Events with equal times fire in schedule
// order (seq breaks ties), which keeps the simulation deterministic.
type event struct {
	t        Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// eventHeap is a min-heap ordered by (t, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// schedule enqueues fn to run at time t. It may be called from scheduler
// context or from a running process.
func (k *Kernel) schedule(t Time, fn func()) *event {
	if t < k.now {
		t = k.now
	}
	ev := &event{t: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, ev)
	return ev
}

// cancel marks ev so it will be skipped when popped.
func (k *Kernel) cancel(ev *event) {
	if ev != nil {
		ev.canceled = true
	}
}
