package sim

// event is a scheduled occurrence. Events with equal times fire in
// schedule order (seq breaks ties), which keeps the simulation
// deterministic.
//
// An event carries exactly one of three targets, checked in this order:
//
//   - proc: a parked process to resume ("wake" events — the dominant
//     kind). No closure is allocated for these; the kernel resumes the
//     process directly.
//   - run: a Runner whose RunEvent method executes in scheduler context.
//     Layers that deliver many pooled objects (the fabric's in-flight
//     frames, callback daemons) use this to stay allocation-free.
//   - fn: an arbitrary closure (Kernel.After and one-off timers).
//
// Events are pooled: once popped (or compacted away) an event goes onto
// the kernel's free list and its generation advances, so stale evrefs
// held by earlier wake sources can never touch a recycled slot.
type event struct {
	t        Time
	seq      uint64
	fn       func()
	run      Runner
	proc     *Proc
	canceled bool
	index    int    // heap index, -1 when popped
	gen      uint64 // bumped on recycle; validates evrefs
}

// Runner is an event target executed in scheduler context, the
// closure-free alternative to Kernel.After for hot paths: the scheduling
// layer keeps a pool of Runner implementations and re-arms them instead
// of allocating a fresh closure per event. RunEvent must not park (it
// has no process).
type Runner interface {
	RunEvent()
}

// evref is a cancelation handle for a scheduled event. It stays valid
// only while the event's generation matches: after the event fires (and
// its storage is recycled for a later schedule), cancel through an old
// ref is a no-op instead of a use-after-reuse bug.
type evref struct {
	ev  *event
	gen uint64
}

// valid reports whether the ref still names a live scheduled event.
func (r evref) valid() bool { return r.ev != nil && r.ev.gen == r.gen }

// eventHeap is a 4-ary min-heap ordered by (t, seq). Four children per
// node halve the tree depth of the binary container/heap it replaced,
// and the concrete *event element type avoids the interface boxing of
// heap.Push/heap.Pop — the two costs that made the old heap the top
// line of kernel profiles. Keys are unique (seq is never reused within
// a run), so pop order is the same total (t, seq) order regardless of
// heap arity.
type eventHeap []*event

// eventLess orders events by (t, seq).
func eventLess(a, b *event) bool {
	return a.t < b.t || (a.t == b.t && a.seq < b.seq)
}

// push inserts ev, sifting it up from the new leaf.
func (hp *eventHeap) push(ev *event) {
	h := append(*hp, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = ev
	ev.index = i
	*hp = h
}

// pop removes and returns the minimum event.
func (hp *eventHeap) pop() *event {
	h := *hp
	top := h[0]
	top.index = -1
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	*hp = h[:n]
	if n > 0 {
		hp.siftDown(last, 0)
	}
	return top
}

// siftDown places ev at index i, moving smaller children up (hole
// technique: ev is written once at its final slot).
func (hp *eventHeap) siftDown(ev *event, i int) {
	h := *hp
	n := len(h)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], ev) {
			break
		}
		h[i] = h[m]
		h[i].index = i
		i = m
	}
	h[i] = ev
	ev.index = i
}

// init establishes the heap property bottom-up (used after compaction).
func (hp *eventHeap) init() {
	h := *hp
	if len(h) < 2 {
		if len(h) == 1 {
			h[0].index = 0
		}
		return
	}
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		hp.siftDown(h[i], i)
	}
}

// maxEventPool caps the recycled-event free list so a burst-heavy
// simulation (a barrier fan-in at 1024 nodes, say) doesn't pin its peak
// event population in memory for the rest of the run; beyond the cap,
// recycled events are dropped for the GC. EventPoolPeak reports the
// high-water mark actually reached.
const maxEventPool = 8192

// newEvent takes an event from the pool (or allocates) and enqueues it.
func (k *Kernel) newEvent(t Time) *event {
	if t < k.now {
		t = k.now
	}
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.t, ev.seq, ev.canceled = t, k.seq, false
	k.seq++
	k.events.push(ev)
	return ev
}

// schedule enqueues fn to run at time t. It may be called from scheduler
// context or from a running process.
func (k *Kernel) schedule(t Time, fn func()) evref {
	ev := k.newEvent(t)
	ev.fn = fn
	return evref{ev: ev, gen: ev.gen}
}

// scheduleWake enqueues a closure-free resume of p at time t.
func (k *Kernel) scheduleWake(t Time, p *Proc) evref {
	ev := k.newEvent(t)
	ev.proc = p
	return evref{ev: ev, gen: ev.gen}
}

// scheduleRunner enqueues r.RunEvent at time t.
func (k *Kernel) scheduleRunner(t Time, r Runner) evref {
	ev := k.newEvent(t)
	ev.run = r
	return evref{ev: ev, gen: ev.gen}
}

// cancel marks the referenced event so it will be skipped, provided the
// ref is still current. Canceled entries stay in the heap until popped
// or until enough accumulate to trigger compaction.
func (k *Kernel) cancel(r evref) {
	if !r.valid() || r.ev.canceled || r.ev.index < 0 {
		return
	}
	r.ev.canceled = true
	k.ncanceled++
	k.maybeCompact()
}

// recycle returns a popped or compacted event to the free list,
// invalidating all outstanding refs to it.
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.run = nil
	ev.proc = nil
	if len(k.free) >= maxEventPool {
		return
	}
	k.free = append(k.free, ev)
	if len(k.free) > k.freePeak {
		k.freePeak = len(k.free)
	}
}

// compactMin is the heap size below which compaction is never worth it.
const compactMin = 64

// maybeCompact rebuilds the heap without canceled entries once they
// outnumber the live ones. Long timeout-heavy simulations (GetTimeout,
// WaitTimeout) otherwise accumulate dead timers until their one-time pop.
// Compaction preserves the total (t, seq) order, so pop order — and with
// it the simulation — is unchanged.
func (k *Kernel) maybeCompact() {
	if len(k.events) < compactMin || k.ncanceled*2 <= len(k.events) {
		return
	}
	live := k.events[:0]
	for _, ev := range k.events {
		if ev.canceled {
			k.recycle(ev)
		} else {
			ev.index = len(live)
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(k.events); i++ {
		k.events[i] = nil
	}
	k.events = live
	k.events.init()
	k.ncanceled = 0
}
