package sim

// EventRef is an exported cancelation handle for a scheduled Runner
// event. The flow-level engine reschedules a completion event every
// time max-min fair shares move a flow's rate; it cancels through the
// ref it holds and schedules a fresh one. Like the internal evref it
// wraps, an EventRef is generation-checked: canceling after the event
// has fired (and its storage was recycled) is a harmless no-op.
//
// The zero EventRef is valid and cancels nothing.
type EventRef struct {
	ref evref
}

// AfterRunnerRef is AfterRunner returning a cancelation handle.
func (k *Kernel) AfterRunnerRef(d Time, r Runner) EventRef {
	return EventRef{ref: k.scheduleRunner(k.now+d, r)}
}

// CancelRunner cancels the event named by ref if it has not fired.
func (k *Kernel) CancelRunner(ref EventRef) { k.cancel(ref.ref) }
