package sim

// Cond is a broadcast condition in virtual time. Processes park on Wait
// and resume when another process (or a scheduled closure) calls
// Broadcast. There is no spurious-wakeup guarantee in either direction:
// callers should re-check their predicate in a loop.
type Cond struct {
	name    string
	where   string // park label, built once ("cond " + name)
	waiters []*Proc
}

// NewCond returns a condition; name appears in deadlock reports.
func NewCond(name string) *Cond {
	c := &Cond{}
	c.Init(name)
	return c
}

// Init initializes c in place, the slab-friendly form of NewCond for
// conditions embedded by value in larger per-node structures.
func (c *Cond) Init(name string) {
	c.name = name
	c.where = "cond " + name
}

// Reset drops all waiters, keeping the buffer capacity. The caller must
// ensure no parked process still expects a Broadcast (cluster reset
// kills leftover processes first).
func (c *Cond) Reset() {
	for i := range c.waiters {
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
}

// Wait parks p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park(c.where)
}

// WaitTimeout parks p until the next Broadcast or until d elapses,
// whichever comes first. It reports whether the wake came from Broadcast.
func (c *Cond) WaitTimeout(p *Proc, d Time) bool {
	deadline := p.k.now + d
	timedOut := false
	ev := p.k.schedule(deadline, func() {
		timedOut = true
		c.remove(p)
		p.wakeAt(p.k.now)
	})
	c.waiters = append(c.waiters, p)
	p.park(c.where)
	p.k.cancel(ev)
	c.remove(p)
	return !timedOut
}

// Broadcast wakes every waiting process at the current virtual time.
// The waiter slice keeps its capacity: wakeAt only schedules events (no
// process runs until the caller parks), so no new waiter can appear
// mid-loop and the buffer can be reused allocation-free.
func (c *Cond) Broadcast() {
	for i, p := range c.waiters {
		c.waiters[i] = nil
		p.wakeAt(p.k.now)
	}
	c.waiters = c.waiters[:0]
}

func (c *Cond) remove(p *Proc) {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Waiters returns the number of parked processes.
func (c *Cond) Waiters() int { return len(c.waiters) }
