package sim

import (
	"fmt"
	"strings"
)

// LPSet coordinates a set of kernels as the logical processes (LPs) of
// one partitioned simulation, using conservative synchronous windows.
//
// The protocol: between windows the coordinator computes T, the minimum
// next-event time across all LPs, and sets the horizon to T + lookahead.
// Every LP then runs its events strictly before the horizon in parallel
// — safe because any message an LP can send another during the window
// originates at t >= T and cannot demand execution on the destination
// before t + lookahead >= horizon. At the barrier the exchange hook
// delivers the window's cross-LP messages (sorted by a deterministic
// key, so arrival order never depends on goroutine interleaving), and
// the next window begins. With one LP the set degenerates to a plain
// Kernel.Run, byte-identical to the monolithic kernel.
//
// Kernel state is only touched by its worker goroutine while a window
// runs; the coordinator reads and mutates kernels strictly between the
// done-receive and the next start-send, so the channel pair provides all
// ordering the memory model needs.
type LPSet struct {
	ks        []*Kernel
	lookahead Time
	exchange  func()
}

// NewLPSet builds a coordinator over ks. lookahead is the minimum
// virtual-time distance between a cross-LP send and its first effect on
// the destination LP (the inter-partition link latency); it must be
// positive when there is more than one LP or conservative windows cannot
// make progress. exchange is called at every window barrier to deliver
// the cross-LP messages the window produced (it may schedule events on
// any kernel). Each kernel is marked with its LP number for deadlock
// reports; a single-kernel set is left unmarked and stays byte-identical
// to the monolithic path.
func NewLPSet(ks []*Kernel, lookahead Time, exchange func()) *LPSet {
	if len(ks) == 0 {
		panic("sim: NewLPSet with no kernels")
	}
	if len(ks) > 1 {
		if lookahead <= 0 {
			panic("sim: NewLPSet needs positive lookahead")
		}
		for i, k := range ks {
			k.SetLP(i)
		}
	}
	return &LPSet{ks: ks, lookahead: lookahead, exchange: exchange}
}

// Run drains all LPs to the global end of the simulation and returns
// the virtual time of the latest LP clock. Semantics mirror Kernel.Run:
// a panic captured on any LP is re-raised (lowest LP number first), and
// live processes parked with no pending events anywhere raise a
// deadlock panic aggregating every LP's stuck report.
func (s *LPSet) Run() Time {
	if len(s.ks) == 1 {
		return s.ks[0].Run()
	}
	n := len(s.ks)
	start := make([]chan Time, n)
	done := make(chan struct{}, n)
	for i := range s.ks {
		start[i] = make(chan Time)
		go func(i int) {
			for h := range start[i] {
				s.ks[i].RunWindow(h)
				done <- struct{}{}
			}
		}(i)
	}
	defer func() {
		for i := range start {
			close(start[i])
		}
	}()

	for {
		var T Time
		any := false
		for _, k := range s.ks {
			if t, ok := k.NextEventTime(); ok && (!any || t < T) {
				T, any = t, true
			}
		}
		if !any {
			s.checkPanicked()
			if s.liveND() > 0 && !s.anyStopped() {
				panic("sim: deadlock at t=" + s.maxNow().String() + ":\n" + s.stuckReport())
			}
			break
		}
		horizon := T + s.lookahead
		for i := range start {
			start[i] <- horizon
		}
		for i := 0; i < n; i++ {
			<-done
		}
		s.checkPanicked()
		s.exchange()
		if s.anyStopped() {
			break
		}
		if s.ndEver() && s.liveND() == 0 {
			// Only daemons remain anywhere: the simulation proper is over,
			// matching the monolithic kernel's early exit (at window
			// granularity rather than per event).
			break
		}
	}
	return s.maxNow()
}

// checkPanicked re-raises the first captured panic in LP order.
func (s *LPSet) checkPanicked() {
	for _, k := range s.ks {
		if k.panicked != nil {
			panic(k.panicked)
		}
	}
}

func (s *LPSet) anyStopped() bool {
	for _, k := range s.ks {
		if k.stopped {
			return true
		}
	}
	return false
}

func (s *LPSet) liveND() int {
	live := 0
	for _, k := range s.ks {
		live += k.ndCount
	}
	return live
}

func (s *LPSet) ndEver() bool {
	for _, k := range s.ks {
		if k.ndEver {
			return true
		}
	}
	return false
}

func (s *LPSet) maxNow() Time {
	var t Time
	for _, k := range s.ks {
		if k.now > t {
			t = k.now
		}
	}
	return t
}

// stuckReport aggregates each LP's stuck report; every line already
// names its LP via the kernel's lptag.
func (s *LPSet) stuckReport() string {
	var b strings.Builder
	for i, k := range s.ks {
		if len(k.procs) == 0 && len(k.daemons) == 0 {
			continue
		}
		if r := k.stuckReport(); r != "" {
			fmt.Fprintf(&b, " lp%d at t=%v:\n%s", i, k.now, r)
		}
	}
	return b.String()
}
