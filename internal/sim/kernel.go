// Package sim implements a deterministic discrete-event simulation kernel
// with coroutine-style processes.
//
// A Kernel owns a virtual clock and an event queue. Simulated processes
// (Proc) run in their own goroutines, but the kernel resumes exactly one
// process at a time: a process runs until it parks on a virtual-time event
// (Sleep, Queue.Get, Cond.Wait, ...), then control returns to the scheduler.
// Combined with seeded random number streams this makes entire cluster
// simulations bit-for-bit reproducible, independent of GOMAXPROCS or OS
// scheduling.
//
// All sim API calls must be made either from a running Proc's goroutine or
// from a closure scheduled with Kernel.After; the kernel is not safe for
// use from free-running goroutines. Distinct kernels share nothing, so
// whole simulations may run concurrently (one kernel per goroutine); the
// sweep engine in internal/sweep relies on exactly that.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Time is virtual time measured from the start of the simulation.
// It uses time.Duration's representation (nanoseconds) so the µs/ms
// helpers in package time read naturally in simulation code.
type Time = time.Duration

// Kernel is a discrete-event scheduler with a virtual clock.
type Kernel struct {
	now       Time
	events    eventHeap
	free      []*event // recycled event structs (see event.go)
	seq       uint64
	ncanceled int    // canceled entries still sitting in the heap
	nexec     uint64 // events executed since New

	procs   map[int]*Proc
	nextID  int
	running *Proc // proc currently executing, nil while in scheduler
	ndCount int   // live non-daemon processes
	ndEver  bool  // a non-daemon process has existed

	seed    int64
	rng     *rand.Rand
	nstream int64

	panicked any
	stopped  bool
	shutdown bool
}

// New returns a kernel whose random streams derive from seed.
func New(seed int64) *Kernel {
	return &Kernel{
		procs: make(map[int]*Proc),
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Events returns the number of events executed so far — the kernel's
// measure of simulation work, used by the sweep engine's throughput
// accounting.
func (k *Kernel) Events() uint64 { return k.nexec }

// RNG returns the kernel's root random stream. Use NewRNG for independent
// per-component streams.
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// NewRNG returns an independent deterministic random stream. Streams are
// numbered in creation order, so identical construction order yields
// identical streams across runs.
func (k *Kernel) NewRNG() *rand.Rand {
	k.nstream++
	return rand.New(rand.NewSource(k.seed*1000003 + k.nstream))
}

// After schedules fn to run at now+d in scheduler context. fn must not
// park (it has no process); it may schedule further events, put items on
// queues and fire conditions.
func (k *Kernel) After(d Time, fn func()) { k.schedule(k.now+d, fn) }

// Spawn starts a new simulated process executing fn. The process begins
// running at the current virtual time, after already-scheduled events.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	if k.shutdown {
		panic("sim: Spawn after Shutdown")
	}
	k.nextID++
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	k.procs[p.id] = p
	k.ndCount++
	k.ndEver = true
	go p.run(fn)
	k.schedule(k.now, func() { k.resumeProc(p) })
	return p
}

// resumeProc hands control to p and blocks until p parks or finishes.
func (k *Kernel) resumeProc(p *Proc) {
	if p.done {
		return
	}
	k.running = p
	p.resume <- struct{}{}
	<-p.parked
	k.running = nil
	if p.done {
		delete(k.procs, p.id)
		if !p.daemon {
			k.ndCount--
		}
	}
	if p.panicked != nil && k.panicked == nil {
		k.panicked = p.panicked
	}
}

// Run drains the event queue. It returns the virtual time at which the
// simulation went quiet. If any live processes remain parked with no
// pending events, Run panics with a deadlock report naming each stuck
// process and its park reason.
func (k *Kernel) Run() Time {
	for len(k.events) > 0 && !k.stopped {
		ev := heap.Pop(&k.events).(*event)
		if ev.canceled {
			k.ncanceled--
			k.recycle(ev)
			continue
		}
		if ev.t < k.now {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", k.now, ev.t))
		}
		k.now = ev.t
		fn := ev.fn
		k.recycle(ev)
		k.nexec++
		fn()
		if k.panicked != nil {
			panic(k.panicked)
		}
		if k.ndEver && k.ndCount == 0 {
			// Only daemons (NIC control programs, tickers) remain; the
			// simulation proper is over even if they keep scheduling.
			break
		}
	}
	if !k.stopped && k.ndCount > 0 {
		panic("sim: deadlock at t=" + k.now.String() + ":\n" + k.stuckReport())
	}
	return k.now
}

// Stop makes Run return after the current event completes. Parked
// processes stay parked; call Shutdown to release their goroutines.
func (k *Kernel) Stop() { k.stopped = true }

// Shutdown terminates every live process — daemons included, and any
// process abandoned mid-park by Stop or end-of-Run — releasing their
// goroutines. Without it, each finished simulation leaks one parked
// goroutine per surviving process (NIC control programs above all),
// which adds up across the thousands of independent simulations a single
// bench process now runs.
//
// Shutdown must be called from outside the simulation, after Run has
// returned (or panicked). The kernel is dead afterwards: Run must not be
// called again and Spawn panics.
func (k *Kernel) Shutdown() {
	if k.running != nil {
		panic("sim: Shutdown from inside a running process")
	}
	for id, p := range k.procs {
		if !p.done {
			p.killed = true
			p.resume <- struct{}{}
			<-p.parked
		}
		delete(k.procs, id)
	}
	k.ndCount = 0
	k.events = nil
	k.free = nil
	k.ncanceled = 0
	k.stopped = true
	k.shutdown = true
}

// stuckReport lists live non-daemon processes and why they are parked,
// followed by a summary of parked daemons (NIC control programs and the
// like) so hangs involving them are diagnosable too.
func (k *Kernel) stuckReport() string {
	ids := make([]int, 0, len(k.procs))
	for id := range k.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s := ""
	daemons := 0
	var dsample []string
	for _, id := range ids {
		p := k.procs[id]
		if p.daemon {
			daemons++
			if len(dsample) < 4 {
				dsample = append(dsample, fmt.Sprintf("%q on %q", p.name, p.reason))
			}
			continue
		}
		s += fmt.Sprintf("  proc %d %q parked on %q\n", p.id, p.name, p.reason)
	}
	if daemons > 0 {
		suffix := ""
		if daemons > len(dsample) {
			suffix = ", ..."
		}
		s += fmt.Sprintf("  (+%d daemon procs parked: %s%s)\n", daemons, strings.Join(dsample, ", "), suffix)
	}
	return s
}

// LiveProcs returns the number of processes that have not finished.
func (k *Kernel) LiveProcs() int { return len(k.procs) }
