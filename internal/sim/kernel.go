// Package sim implements a deterministic discrete-event simulation kernel
// with coroutine-style processes.
//
// A Kernel owns a virtual clock and an event queue. Simulated processes
// (Proc) run in their own goroutines, but the kernel resumes exactly one
// process at a time: a process runs until it parks on a virtual-time event
// (Sleep, Queue.Get, Cond.Wait, ...), then control returns to the scheduler.
// Background services that never need to park mid-computation are better
// served by callback Daemons, which run entirely in scheduler context with
// no goroutine at all. Combined with seeded random number streams this
// makes entire cluster simulations bit-for-bit reproducible, independent
// of GOMAXPROCS or OS scheduling.
//
// All sim API calls must be made either from a running Proc's goroutine or
// from a closure scheduled with Kernel.After; the kernel is not safe for
// use from free-running goroutines. Distinct kernels share nothing, so
// whole simulations may run concurrently (one kernel per goroutine); the
// sweep engine in internal/sweep relies on exactly that.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Time is virtual time measured from the start of the simulation.
// It uses time.Duration's representation (nanoseconds) so the µs/ms
// helpers in package time read naturally in simulation code.
type Time = time.Duration

// Kernel is a discrete-event scheduler with a virtual clock.
type Kernel struct {
	now       Time
	events    eventHeap
	free      []*event // recycled event structs (see event.go)
	freePeak  int      // high-water mark of the free list
	seq       uint64
	ncanceled int    // canceled entries still sitting in the heap
	nexec     uint64 // events executed since New

	procs   map[int]*Proc
	pfree   []*Proc // recycled Proc structs and their channel pairs
	daemons []*Daemon
	nextID  int
	running *Proc // proc currently executing, nil while in scheduler
	ndCount int   // live non-daemon processes
	ndEver  bool  // a non-daemon process has existed

	// runDone carries control back to the Run goroutine when the event
	// loop goes quiet on a process's goroutine (see dispatch/handoff).
	runDone chan struct{}

	seed    int64
	rng     *rand.Rand
	nstream int64

	// Logical-process identity, set when the kernel is one LP of a
	// partitioned simulation (see lp.go). lpmode disables the
	// only-daemons-remain early exit — an LP whose own ranks finished
	// must keep answering cross-LP traffic until the LPSet declares the
	// global end — and lphorizon bounds one conservative window: the
	// dispatch loop stops before executing any event at or past it.
	// Both are zero on a monolithic kernel, whose behavior is untouched.
	lp        int
	lptag     string // " [lpN]" suffix for deadlock reports, "" monolithic
	lpmode    bool
	lphorizon Time

	panicked any
	stopped  bool
	shutdown bool
}

// New returns a kernel whose random streams derive from seed.
func New(seed int64) *Kernel {
	return &Kernel{
		procs:   make(map[int]*Proc),
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
		runDone: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Events returns the number of events executed so far — the kernel's
// measure of simulation work, used by the sweep engine's throughput
// accounting.
func (k *Kernel) Events() uint64 { return k.nexec }

// EventPoolPeak returns the high-water mark of the recycled-event free
// list: the largest number of idle event structs the kernel has held at
// once. The pool is capped (see maxEventPool), so this also bounds how
// much event memory a burst-heavy simulation pins for its lifetime.
func (k *Kernel) EventPoolPeak() int { return k.freePeak }

// RNG returns the kernel's root random stream. Use NewRNG for independent
// per-component streams.
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// NewRNG returns an independent deterministic random stream. Streams are
// numbered in creation order, so identical construction order yields
// identical streams across runs.
func (k *Kernel) NewRNG() *rand.Rand {
	k.nstream++
	return rand.New(rand.NewSource(k.seed*1000003 + k.nstream))
}

// After schedules fn to run at now+d in scheduler context. fn must not
// park (it has no process); it may schedule further events, put items on
// queues and fire conditions.
func (k *Kernel) After(d Time, fn func()) { k.schedule(k.now+d, fn) }

// AfterRunner schedules r.RunEvent at now+d in scheduler context: the
// closure-free counterpart of After for hot paths that re-arm pooled
// Runner objects instead of allocating a closure per event.
func (k *Kernel) AfterRunner(d Time, r Runner) { k.scheduleRunner(k.now+d, r) }

// Spawn starts a new simulated process executing fn. The process begins
// running at the current virtual time, after already-scheduled events.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	if k.shutdown {
		panic("sim: Spawn after Shutdown")
	}
	k.nextID++
	var p *Proc
	if n := len(k.pfree); n > 0 {
		// Reuse a finished process's struct and channel pair (the old
		// goroutine is gone; a fresh one blocks on the same channels).
		p = k.pfree[n-1]
		k.pfree[n-1] = nil
		k.pfree = k.pfree[:n-1]
		*p = Proc{k: k, id: k.nextID, name: name,
			resume: p.resume, parked: p.parked, intr: p.intr[:0]}
	} else {
		p = &Proc{
			k:      k,
			id:     k.nextID,
			name:   name,
			resume: make(chan struct{}),
			parked: make(chan struct{}),
		}
	}
	k.procs[p.id] = p
	k.ndCount++
	k.ndEver = true
	go p.run(fn)
	k.scheduleWake(k.now, p)
	return p
}

// releaseProc returns a finished process's struct (and channel pair) to
// the spawn pool. Pooling is skipped while a wake event is still
// pending: a stale wake finding the struct reincarnated as a different
// process would resume it spuriously, so such structs are simply left
// for the GC. (In practice a process that ran to completion has no
// pending wake — wakeAt is the sole scheduler of proc events and the
// wake clears when it fires.)
func (k *Kernel) releaseProc(p *Proc) {
	if p.wake.valid() {
		return
	}
	k.pfree = append(k.pfree, p)
}

// dispatch outcomes: the loop went quiet (queue drained, Stop, panic
// captured, or only daemons remain), the calling process's own wake
// fired (control stays on this goroutine, no switch at all), or another
// process was resumed over its channel.
const (
	dispatchQuiet = iota
	dispatchSelf
	dispatchOther
)

// dispatch runs the event loop until control must leave it. It runs on
// whichever goroutine currently holds the scheduler token: the Run
// goroutine at bootstrap, and thereafter the goroutine of each process
// that parks or finishes. self is the parking process driving the loop
// (nil from Run or a finished process): when its own wake event fires the
// loop simply returns, so a Sleep/Spin with no intervening process switch
// costs no goroutine switch, and handing control to a different process
// costs one switch where a dedicated scheduler goroutine would cost two.
//
// A panic in a scheduler-context callback is captured into k.panicked
// rather than propagated, so it surfaces from Run no matter which
// goroutine the loop happened to be running on (dispatchQuiet is the
// zero value the recovery path returns).
func (k *Kernel) dispatch(self *Proc) (res int) {
	defer func() {
		if r := recover(); r != nil && k.panicked == nil {
			k.panicked = r
		}
	}()
	for len(k.events) > 0 && !k.stopped {
		if k.lphorizon != 0 && k.events[0].t >= k.lphorizon {
			// Conservative window boundary: events at or past the horizon
			// may still be preceded by cross-LP arrivals, so they wait for
			// the next window. (Canceled entries past the horizon just sit.)
			return dispatchQuiet
		}
		ev := k.events.pop()
		if ev.canceled {
			k.ncanceled--
			k.recycle(ev)
			continue
		}
		if ev.t < k.now {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", k.now, ev.t))
		}
		k.now = ev.t
		k.nexec++
		// Dispatch on the event's kind; recycle before executing so
		// stale refs to this event are already invalid (see evref).
		switch {
		case ev.proc != nil:
			p := ev.proc
			k.recycle(ev)
			p.wake = evref{}
			if p.done {
				continue
			}
			k.running = p
			if p == self {
				return dispatchSelf
			}
			p.resume <- struct{}{}
			return dispatchOther
		case ev.run != nil:
			r := ev.run
			k.recycle(ev)
			r.RunEvent()
		default:
			fn := ev.fn
			k.recycle(ev)
			fn()
		}
		if k.panicked != nil {
			return dispatchQuiet
		}
		if k.ndExit() {
			// Only daemons (NIC control programs, tickers) remain; the
			// simulation proper is over even if they keep scheduling.
			return dispatchQuiet
		}
	}
	return dispatchQuiet
}

// handoff continues the event loop from a process goroutine that is
// giving up control (park or completion). It reports whether control
// came straight back to the caller (its own wake was next). If no
// process can run — queue drained, Stop called, a panic captured, or
// only daemons remain — it wakes the Run goroutine, which owns the
// final verdict.
func (k *Kernel) handoff(self *Proc) bool {
	if k.panicked == nil && !k.ndExit() {
		switch k.dispatch(self) {
		case dispatchSelf:
			return true
		case dispatchOther:
			return false
		}
	}
	k.runDone <- struct{}{}
	return false
}

// Run drains the event queue. It returns the virtual time at which the
// simulation went quiet. If any live processes remain parked with no
// pending events, Run panics with a deadlock report naming each stuck
// process and its park reason.
func (k *Kernel) Run() Time {
	if k.dispatch(nil) == dispatchOther {
		// Control lives with the processes now; each parking process
		// drives the loop onward and the last one hands control back.
		<-k.runDone
	}
	if k.panicked != nil {
		panic(k.panicked)
	}
	if !k.stopped && k.ndCount > 0 {
		panic("sim: deadlock at t=" + k.now.String() + ":\n" + k.stuckReport())
	}
	return k.now
}

// ndExit reports whether the kernel may exit its loop because only
// daemons remain. An LP kernel never exits on this condition alone:
// ranks on other LPs may still send it traffic its daemons must answer,
// so the global only-daemons-remain verdict belongs to the LPSet.
func (k *Kernel) ndExit() bool { return !k.lpmode && k.ndEver && k.ndCount == 0 }

// SetLP marks the kernel as logical process lp of a partitioned
// simulation: the only-daemons-remain early exit is disabled (the LPSet
// decides the global end) and deadlock reports carry the LP number.
func (k *Kernel) SetLP(lp int) {
	k.lp = lp
	k.lptag = fmt.Sprintf(" [lp%d]", lp)
	k.lpmode = true
}

// NextEventTime returns the timestamp of the kernel's earliest pending
// event, skimming canceled entries off the heap top. ok is false when no
// live events remain. Called by the LPSet between windows to compute the
// next conservative horizon.
func (k *Kernel) NextEventTime() (t Time, ok bool) {
	for len(k.events) > 0 {
		ev := k.events[0]
		if !ev.canceled {
			return ev.t, true
		}
		k.events.pop()
		k.ncanceled--
		k.recycle(ev)
	}
	return 0, false
}

// ScheduleRunnerAt schedules r.RunEvent at absolute virtual time t —
// the entry point for cross-LP arrivals delivered at a window barrier.
// t earlier than the kernel clock clamps to now (newEvent's rule), but a
// conservative exchange never needs the clamp: arrivals land at or past
// the horizon, and the receiving kernel's clock cannot have passed it.
func (k *Kernel) ScheduleRunnerAt(t Time, r Runner) { k.scheduleRunner(t, r) }

// RunWindow drains events strictly before horizon, leaving later events
// (and any deadlock/global-end verdict) to the caller. Unlike Run it
// does not panic on captured panics or deadlock — the LPSet coordinator
// owns those, aggregated across all LPs.
func (k *Kernel) RunWindow(horizon Time) {
	k.lphorizon = horizon
	if k.dispatch(nil) == dispatchOther {
		<-k.runDone
	}
	k.lphorizon = 0
}

// Stop makes Run return after the current event completes. Parked
// processes stay parked; call Shutdown to release their goroutines.
func (k *Kernel) Stop() { k.stopped = true }

// Shutdown terminates every live process — daemons included, and any
// process abandoned mid-park by Stop or end-of-Run — releasing their
// goroutines. Without it, each finished simulation leaks one parked
// goroutine per surviving process, which adds up across the thousands of
// independent simulations a single bench process runs. (Callback Daemons
// have no goroutine and need no release.)
//
// Shutdown must be called from outside the simulation, after Run has
// returned (or panicked). The kernel is dead afterwards: Run must not be
// called again and Spawn panics.
func (k *Kernel) Shutdown() {
	if k.running != nil {
		panic("sim: Shutdown from inside a running process")
	}
	for id, p := range k.procs {
		if !p.done {
			p.killed = true
			p.resume <- struct{}{}
			<-p.parked
		}
		delete(k.procs, id)
	}
	k.ndCount = 0
	k.events = nil
	k.free = nil
	k.pfree = nil
	k.daemons = nil
	k.ncanceled = 0
	k.stopped = true
	k.shutdown = true
}

// Reset returns the kernel to its just-built state under a new seed,
// keeping allocated capacity: the event and proc free lists and the
// registered callback daemons all survive, so a pooled cluster re-runs
// a program without rebuilding its machinery. Any process still alive
// (parked by Stop, or abandoned when Run went quiet) is killed exactly
// as Shutdown kills it. Unlike Shutdown the kernel is fully usable
// afterwards, and the reset state is indistinguishable from New(seed):
// the clock, event sequence, executed-event counter and RNG stream
// numbering all restart from zero, which is what makes a reused cluster
// byte-identical to a freshly built one.
func (k *Kernel) Reset(seed int64) {
	if k.running != nil {
		panic("sim: Reset from inside a running process")
	}
	for id, p := range k.procs {
		if !p.done {
			p.killed = true
			p.resume <- struct{}{}
			<-p.parked
		}
		delete(k.procs, id)
	}
	for i, ev := range k.events {
		ev.index = -1
		k.recycle(ev)
		k.events[i] = nil
	}
	k.events = k.events[:0]
	for _, d := range k.daemons {
		d.scheduled = false
		d.at = 0
		d.ref = evref{}
		d.status = ""
	}
	k.now = 0
	k.seq = 0
	k.ncanceled = 0
	k.nexec = 0
	k.nextID = 0
	k.ndCount = 0
	k.ndEver = false
	k.stopped = false
	k.panicked = nil
	k.seed = seed
	k.rng = rand.New(rand.NewSource(seed))
	k.nstream = 0
}

// maxStuckLines caps the per-process detail in a deadlock report. At
// 16384 nodes an uncapped report would build tens of thousands of lines
// before panicking; the first few plus a count diagnose just as well.
const maxStuckLines = 32

// stuckReport lists live non-daemon processes, why they are parked and
// for how long, followed by a summary of parked daemon processes and
// idle callback daemons so hangs involving background services are
// diagnosable too.
func (k *Kernel) stuckReport() string {
	ids := make([]int, 0, len(k.procs))
	for id := range k.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	daemons := 0
	var dsample []string
	shown, omitted := 0, 0
	for _, id := range ids {
		p := k.procs[id]
		if p.daemon {
			daemons++
			if len(dsample) < 4 {
				dsample = append(dsample, fmt.Sprintf("%q%s on %q", p.name, k.lptag, p.reason))
			}
			continue
		}
		if shown >= maxStuckLines {
			omitted++
			continue
		}
		shown++
		fmt.Fprintf(&b, "  proc %d%s %q parked on %q for %v\n", p.id, k.lptag, p.name, p.reason, k.now-p.parkedAt)
	}
	if omitted > 0 {
		fmt.Fprintf(&b, "  (+%d more procs parked)\n", omitted)
	}
	if daemons > 0 {
		suffix := ""
		if daemons > len(dsample) {
			suffix = ", ..."
		}
		fmt.Fprintf(&b, "  (+%d daemon procs parked: %s%s)\n", daemons, strings.Join(dsample, ", "), suffix)
	}
	idle := 0
	var csample []string
	for _, d := range k.daemons {
		if d.scheduled {
			continue // has a pending step; not stuck
		}
		idle++
		if len(csample) < 4 && d.status != "" {
			csample = append(csample, fmt.Sprintf("%q%s on %q", d.name, k.lptag, d.status))
		}
	}
	if idle > 0 {
		suffix := ""
		if idle > len(csample) {
			suffix = ", ..."
		}
		fmt.Fprintf(&b, "  (+%d callback daemons idle: %s%s)\n", idle, strings.Join(csample, ", "), suffix)
	}
	return b.String()
}

// LiveProcs returns the number of processes that have not finished.
func (k *Kernel) LiveProcs() int { return len(k.procs) }
