package sim

import (
	"fmt"
	"runtime"
)

// Proc is a simulated process. Its function runs on a dedicated goroutine,
// but the kernel guarantees only one Proc executes at a time; every
// blocking call (Sleep, Spin, Queue.Get, Cond.Wait) parks the goroutine
// and returns control to the scheduler until a wake event fires.
type Proc struct {
	k    *Kernel
	id   int
	name string

	resume chan struct{}
	parked chan struct{}

	done     bool
	daemon   bool
	killed   bool // Kernel.Shutdown: exit instead of resuming
	panicked any
	reason   string // what the proc is parked on, for deadlock reports
	parkedAt Time   // when the proc parked, for deadlock reports

	wake evref  // pending wake event, if parked on one
	wpos uint64 // position in a Queue's waiter ring (see queue.go)

	// Signal-handler support (see Interrupt / SpinInterruptible).
	intr          []func()
	interruptible bool

	// busy accumulates virtual CPU time consumed via Spin,
	// SpinInterruptible and interrupt handlers. Layers above use it for
	// direct CPU-utilization attribution.
	busy Time
}

// ID returns the kernel-assigned process id.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// SetDaemon marks the process as a background service (NIC control
// programs, tracers). Daemon processes do not keep the simulation alive:
// Kernel.Run ends, without a deadlock report, once only daemons remain.
func (p *Proc) SetDaemon(on bool) {
	if p.daemon == on {
		return
	}
	p.daemon = on
	if p.done {
		return
	}
	if on {
		p.k.ndCount--
	} else {
		p.k.ndCount++
	}
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Busy returns the virtual CPU time this process has consumed through
// Spin, SpinInterruptible and interrupt handlers.
func (p *Proc) Busy() Time { return p.busy }

// AddBusy charges d of CPU time to the process without advancing the
// clock. Layers that busy-poll inside otherwise-parked waits use it to
// attribute the wait as CPU time.
func (p *Proc) AddBusy(d Time) { p.busy += d }

// run executes the process body, catching panics so they surface from
// Kernel.Run instead of killing a bare goroutine. The deferred handler
// also runs when Kernel.Shutdown kills the process mid-park (park exits
// via runtime.Goexit): killed processes hand-shake with Shutdown on
// p.parked, while normal completion keeps the scheduler token and drives
// the event loop onward from this goroutine (see Kernel.dispatch).
func (p *Proc) run(fn func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			p.panicked = fmt.Sprintf("sim: proc %q panicked: %v", p.name, r)
		}
		p.done = true
		if p.killed {
			p.parked <- struct{}{}
			return
		}
		k := p.k
		delete(k.procs, p.id)
		if !p.daemon {
			k.ndCount--
		}
		if p.panicked != nil && k.panicked == nil {
			k.panicked = p.panicked
		}
		k.running = nil
		// The struct is dead from here on: pool it for the next Spawn
		// before this goroutine drives the event loop onward (which may
		// itself Spawn and reincarnate it on a fresh goroutine).
		k.releaseProc(p)
		k.handoff(nil)
	}()
	<-p.resume
	if p.killed {
		return
	}
	fn(p)
}

// park returns control to the scheduler until a wake event resumes this
// process: the event loop continues on this goroutine until another
// process must run, at which point control transfers directly to it.
// reason appears in deadlock reports. If the kernel is shutting down,
// park never returns: the goroutine exits through its deferred
// completion handler.
func (p *Proc) park(reason string) {
	if p.k.running != p {
		panic(fmt.Sprintf("sim: park of %q from outside its own context", p.name))
	}
	p.reason = reason
	p.parkedAt = p.k.now
	p.k.running = nil
	if !p.k.handoff(p) {
		// Control went elsewhere; block until a wake event resumes us.
		<-p.resume
		if p.killed {
			runtime.Goexit()
		}
	}
	p.reason = ""
}

// wakeAt schedules this process to resume at time t. It is idempotent
// while a wake is already pending, so racing wake sources (Put plus
// timeout, Broadcast plus Interrupt) cannot double-resume a process.
// Wake events are closure-free: the kernel resumes the process directly
// when the event fires (see event.go).
func (p *Proc) wakeAt(t Time) {
	if p.wake.valid() {
		return
	}
	p.wake = p.k.scheduleWake(t, p)
}

// Sleep advances this process's local time by d without consuming CPU
// (other processes run meanwhile).
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		p.Yield()
		return
	}
	p.wakeAt(p.k.now + d)
	p.park("sleep")
}

// Spin busy-waits for d: the same as Sleep in virtual time, but the time
// is charged as CPU (Busy). Use it for compute loops, polling costs and
// injected overheads.
func (p *Proc) Spin(d Time) {
	p.busy += d
	p.Sleep(d)
}

// Yield reschedules the process after all events already pending at the
// current time.
func (p *Proc) Yield() {
	p.wakeAt(p.k.now)
	p.park("yield")
}

// Interrupt queues fn to run on p's stack, in virtual time, at p's next
// interruptible point. If p is currently inside SpinInterruptible, the
// spin is preempted immediately (the remaining spin time still executes
// afterwards, so handler time extends p's elapsed time exactly like a
// Unix signal stealing cycles from an application busy loop).
//
// Interrupt may be called from any proc or scheduler context except p's
// own running context.
func (p *Proc) Interrupt(fn func()) {
	p.intr = append(p.intr, fn)
	if p.interruptible && p.wake.valid() {
		// Preempt the interruptible sleep: fire the wake now.
		p.k.cancel(p.wake)
		p.wake = evref{}
		p.wakeAt(p.k.now)
	}
}

// PendingInterrupts reports how many queued interrupt handlers have not
// run yet.
func (p *Proc) PendingInterrupts() int { return len(p.intr) }

// runInterrupts executes queued handlers on this proc's stack. Handler
// virtual time is charged to Busy.
func (p *Proc) runInterrupts() {
	for len(p.intr) > 0 {
		fn := p.intr[0]
		// Shift down instead of re-slicing so the backing array stays
		// anchored and future appends reuse it (the queue is almost
		// always length 1, so the copy is trivial).
		copy(p.intr, p.intr[1:])
		p.intr[len(p.intr)-1] = nil
		p.intr = p.intr[:len(p.intr)-1]
		t0 := p.k.now
		b0 := p.busy
		fn()
		// Charge wall time spent in the handler as CPU unless the
		// handler already charged it via Spin.
		elapsed := p.k.now - t0
		charged := p.busy - b0
		if charged < elapsed {
			p.busy += elapsed - charged
		}
	}
}

// SpinInterruptible busy-spins for d of application work, servicing
// queued interrupts as they arrive. The call returns only after the full
// d of application work has executed; handler executions extend the
// elapsed virtual time beyond d. Returns the total elapsed time.
func (p *Proc) SpinInterruptible(d Time) Time {
	start := p.k.now
	remaining := d
	for {
		p.runInterrupts()
		if remaining <= 0 {
			break
		}
		t0 := p.k.now
		p.interruptible = true
		p.wakeAt(t0 + remaining)
		p.park("spin-interruptible")
		p.interruptible = false
		slept := p.k.now - t0
		if slept > remaining {
			slept = remaining
		}
		p.busy += slept
		remaining -= slept
	}
	return p.k.now - start
}
