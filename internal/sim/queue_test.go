package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestQueueFIFOProperty: under an arbitrary interleaving of puts across
// producers, a single consumer sees every item exactly once and items
// from one producer stay in order.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(plan []uint8) bool {
		if len(plan) == 0 {
			return true
		}
		if len(plan) > 40 {
			plan = plan[:40]
		}
		k := New(1)
		q := NewQueue[[2]int]("q")
		var got [][2]int
		total := len(plan)
		k.Spawn("consumer", func(p *Proc) {
			for i := 0; i < total; i++ {
				got = append(got, q.Get(p))
			}
		})
		for prod := 0; prod < 3; prod++ {
			prod := prod
			k.Spawn("producer", func(p *Proc) {
				n := 0
				for i, b := range plan {
					if int(b)%3 != prod {
						continue
					}
					p.Sleep(Time(b) * time.Microsecond)
					q.Put([2]int{prod, n})
					n++
					_ = i
				}
			})
		}
		// Every plan entry is produced by exactly one producer, so the
		// consumer drains len(plan) items and the run quiesces.
		k.Run()
		if len(got) != total {
			return false
		}
		// Per-producer ordering.
		last := map[int]int{0: -1, 1: -1, 2: -1}
		for _, item := range got {
			if item[1] != last[item[0]]+1 {
				return false
			}
			last[item[0]] = item[1]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQueuePutFront(t *testing.T) {
	k := New(1)
	q := NewQueue[int]("q")
	k.Spawn("p", func(p *Proc) {
		q.Put(1)
		q.Put(2)
		v, _ := q.TryGet()
		if v != 1 {
			t.Fatalf("got %d", v)
		}
		q.PutFront(v)
		if v, _ := q.TryGet(); v != 1 {
			t.Fatalf("PutFront lost head order: %d", v)
		}
		if v, _ := q.TryGet(); v != 2 {
			t.Fatal("queue corrupted")
		}
	})
	k.Run()
}

func TestQueuePeek(t *testing.T) {
	k := New(1)
	q := NewQueue[string]("q")
	k.Spawn("p", func(p *Proc) {
		if _, ok := q.Peek(); ok {
			t.Error("peek on empty")
		}
		q.Put("a")
		if v, ok := q.Peek(); !ok || v != "a" {
			t.Error("peek wrong")
		}
		if q.Len() != 1 {
			t.Error("peek consumed")
		}
	})
	k.Run()
}

// TestQueueTimeoutVsPutRace: a put landing exactly at the timeout
// deadline must not double-wake or lose the item.
func TestQueueTimeoutVsPutRace(t *testing.T) {
	k := New(1)
	q := NewQueue[int]("q")
	k.Spawn("consumer", func(p *Proc) {
		v, ok := q.GetTimeout(p, 10*time.Microsecond)
		if ok && v != 9 {
			t.Errorf("wrong item %d", v)
		}
		if !ok {
			// Timed out: item must still be retrievable.
			if v := q.Get(p); v != 9 {
				t.Errorf("item lost after timeout race: %d", v)
			}
		}
		// Either way the process continues to work normally.
		p.Sleep(time.Microsecond)
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(10 * time.Microsecond) // exactly at the deadline
		q.Put(9)
	})
	k.Run()
}

// TestQueueTimeoutSameTickSingleDelivery: a timeout and a Put landing
// on the same virtual tick, with a second waiter parked behind the
// timed-out one, must deliver the item exactly once — either to the
// timed waiter (its wake won the tick) or to the patient one (the
// timeout won, and its tombstoned waiter slot must not eat the wake).
func TestQueueTimeoutSameTickSingleDelivery(t *testing.T) {
	k := New(1)
	q := NewQueue[int]("q")
	timedGot, patientGot := -1, -1
	k.Spawn("timed", func(p *Proc) {
		if v, ok := q.GetTimeout(p, 5*time.Microsecond); ok {
			timedGot = v
		}
	})
	k.Spawn("patient", func(p *Proc) {
		p.Sleep(time.Microsecond) // park behind "timed" in the waiter ring
		if v, ok := q.GetTimeout(p, time.Millisecond); ok {
			patientGot = v
		}
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(5 * time.Microsecond) // exactly at timed's deadline
		q.Put(7)
	})
	k.Run()
	if (timedGot == 7) == (patientGot == 7) {
		t.Errorf("item delivered %d/%d times (timed=%d patient=%d), want exactly once",
			timedGot, patientGot, timedGot, patientGot)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := New(1)
	c := NewCond("c")
	k.Spawn("w", func(p *Proc) {
		if c.WaitTimeout(p, 5*time.Microsecond) {
			t.Error("expected timeout")
		}
		if p.Now() != 5*time.Microsecond {
			t.Errorf("timeout at %v", p.Now())
		}
		if !c.WaitTimeout(p, time.Millisecond) {
			t.Error("expected broadcast wake")
		}
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(20 * time.Microsecond)
		c.Broadcast()
	})
	k.Run()
}

func TestDaemonDoesNotBlockRun(t *testing.T) {
	k := New(1)
	d := k.Spawn("daemon", func(p *Proc) {
		q := NewQueue[int]("never")
		q.Get(p) // parks forever
	})
	d.SetDaemon(true)
	k.Spawn("app", func(p *Proc) { p.Sleep(10 * time.Microsecond) })
	end := k.Run() // must not deadlock-panic
	if end != 10*time.Microsecond {
		t.Errorf("end = %v", end)
	}
}

func TestRunStopsWhenOnlyDaemonEventsRemain(t *testing.T) {
	k := New(1)
	d := k.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond) // schedules forever
		}
	})
	d.SetDaemon(true)
	k.Spawn("app", func(p *Proc) { p.Sleep(3 * time.Millisecond) })
	done := make(chan Time, 1)
	go func() { done <- k.Run() }()
	select {
	case end := <-done:
		if end < 3*time.Millisecond {
			t.Errorf("ended at %v before the app finished", end)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not terminate with a perpetually-ticking daemon")
	}
}

func TestStopEndsRun(t *testing.T) {
	k := New(1)
	n := 0
	k.Spawn("app", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
			n++
			if n == 5 {
				k.Stop()
			}
		}
	})
	k.Run()
	if n != 5 {
		t.Errorf("ran %d iterations after Stop", n)
	}
}

func TestInterruptOrderingFIFO(t *testing.T) {
	k := New(1)
	var order []int
	var target *Proc
	target = k.Spawn("app", func(p *Proc) {
		p.SpinInterruptible(100 * time.Microsecond)
	})
	k.Spawn("src", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		for i := 0; i < 3; i++ {
			i := i
			target.Interrupt(func() { order = append(order, i) })
		}
	})
	k.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("interrupt order %v", order)
	}
}

func TestBusyAccountingAcrossInterrupts(t *testing.T) {
	k := New(1)
	var target *Proc
	target = k.Spawn("app", func(p *Proc) {
		p.SpinInterruptible(50 * time.Microsecond)
		// 50µs app + 30µs handler = 80µs busy.
		if p.Busy() != 80*time.Microsecond {
			t.Errorf("busy = %v", p.Busy())
		}
	})
	k.Spawn("src", func(p *Proc) {
		p.Sleep(20 * time.Microsecond)
		target.Interrupt(func() {
			// Handler sleeps (e.g. waiting on a queue) — elapsed time
			// is charged as busy even without explicit Spin.
			target.Sleep(30 * time.Microsecond)
		})
	})
	k.Run()
}
