package sim

import "testing"

// nop is a package-level event body so measuring loops don't allocate a
// fresh closure per scheduled event.
func nop() {}

// TestScheduleCancelZeroAlloc: in steady state, arming a timer and
// canceling it costs no heap allocations — the event comes from the pool
// and the canceled entry recycles when popped.
func TestScheduleCancelZeroAlloc(t *testing.T) {
	k := New(1)
	for i := 0; i < 32; i++ { // warm the event pool
		k.cancel(k.schedule(k.now+Time(i+1), nop))
	}
	k.Run()
	if avg := testing.AllocsPerRun(200, func() {
		ev := k.schedule(k.now+100, nop)
		k.cancel(ev)
		k.Run()
	}); avg != 0 {
		t.Errorf("schedule+cancel allocates %.2f per cycle in steady state, want 0", avg)
	}
}

// TestScheduleExecuteZeroAlloc: scheduling and firing a plain event is
// allocation-free once the pool is warm.
func TestScheduleExecuteZeroAlloc(t *testing.T) {
	k := New(1)
	for i := 0; i < 32; i++ {
		k.schedule(k.now+Time(i+1), nop)
	}
	k.Run()
	if avg := testing.AllocsPerRun(200, func() {
		k.schedule(k.now+100, nop)
		k.Run()
	}); avg != 0 {
		t.Errorf("schedule+execute allocates %.2f per cycle in steady state, want 0", avg)
	}
}

// TestSleepZeroAllocSteadyState: the dominant kernel operation — a
// process scheduling its own wake and parking — allocates nothing. With
// direct-handoff scheduling a solo process's Sleep never even switches
// goroutines: its own wake is the next event, so dispatch returns
// control inline.
func TestSleepZeroAllocSteadyState(t *testing.T) {
	k := New(1)
	avg := -1.0
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 32; i++ { // warm pool and scheduler
			p.Sleep(1)
		}
		avg = testing.AllocsPerRun(200, func() { p.Sleep(1) })
	})
	k.Run()
	k.Shutdown()
	if avg != 0 {
		t.Errorf("Sleep allocates %.2f per call in steady state, want 0", avg)
	}
}
