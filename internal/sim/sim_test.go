package sim

import (
	"testing"
	"time"
)

const us = time.Microsecond

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := New(1)
	var end Time
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10 * us)
		p.Sleep(5 * us)
		end = p.Now()
	})
	k.Run()
	if end != 15*us {
		t.Fatalf("end = %v, want 15µs", end)
	}
}

func TestSpawnOrderingDeterministic(t *testing.T) {
	run := func() []int {
		k := New(7)
		var order []int
		for i := 0; i < 5; i++ {
			i := i
			k.Spawn("p", func(p *Proc) {
				p.Sleep(Time(i) * us)
				order = append(order, i)
				p.Sleep(Time(10-i) * us)
				order = append(order, 10+i)
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 10 {
		t.Fatalf("len = %d, want 10", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order: %v vs %v", a, b)
		}
	}
}

func TestQueueFIFO(t *testing.T) {
	k := New(1)
	q := NewQueue[int]("q")
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(Time(i) * us)
			q.Put(i * 100)
		}
	})
	k.Run()
	want := []int{100, 200, 300}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQueueGetTimeout(t *testing.T) {
	k := New(1)
	q := NewQueue[string]("q")
	k.Spawn("c", func(p *Proc) {
		if _, ok := q.GetTimeout(p, 5*us); ok {
			t.Error("expected timeout")
		}
		if p.Now() != 5*us {
			t.Errorf("timeout consumed %v, want 5µs", p.Now())
		}
		v, ok := q.GetTimeout(p, 100*us)
		if !ok || v != "x" {
			t.Errorf("got %q ok=%v, want x", v, ok)
		}
		if p.Now() != 8*us {
			t.Errorf("resumed at %v, want 8µs", p.Now())
		}
	})
	k.Spawn("pr", func(p *Proc) {
		p.Sleep(8 * us)
		q.Put("x")
	})
	k.Run()
}

func TestCondBroadcastWakesAll(t *testing.T) {
	k := New(1)
	c := NewCond("c")
	woke := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	k.Spawn("b", func(p *Proc) {
		p.Sleep(3 * us)
		c.Broadcast()
	})
	k.Run()
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
}

func TestSpinChargesBusy(t *testing.T) {
	k := New(1)
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10 * us)
		p.Spin(7 * us)
		if p.Busy() != 7*us {
			t.Errorf("busy = %v, want 7µs", p.Busy())
		}
		if p.Now() != 17*us {
			t.Errorf("now = %v, want 17µs", p.Now())
		}
	})
	k.Run()
}

// TestInterruptPreemptsSpin checks the signal-handler semantics the whole
// reproduction rests on: an interrupt delivered mid-spin runs inline and
// extends the elapsed time by exactly the handler's duration.
func TestInterruptPreemptsSpin(t *testing.T) {
	k := New(1)
	var target *Proc
	handlerRan := Time(-1)
	target = k.Spawn("app", func(p *Proc) {
		elapsed := p.SpinInterruptible(100 * us)
		if elapsed != 120*us {
			t.Errorf("elapsed = %v, want 120µs", elapsed)
		}
		if p.Now() != 120*us {
			t.Errorf("now = %v, want 120µs", p.Now())
		}
		// 100µs app spin + 20µs handler spin, all CPU.
		if p.Busy() != 120*us {
			t.Errorf("busy = %v, want 120µs", p.Busy())
		}
	})
	k.Spawn("nic", func(p *Proc) {
		p.Sleep(30 * us)
		target.Interrupt(func() {
			handlerRan = k.Now()
			target.Spin(20 * us)
		})
	})
	k.Run()
	if handlerRan != 30*us {
		t.Fatalf("handler ran at %v, want 30µs", handlerRan)
	}
}

// TestInterruptWhileNotSpinning checks that interrupts queued while the
// target is parked non-interruptibly run at its next interruptible point.
func TestInterruptWhileNotSpinning(t *testing.T) {
	k := New(1)
	q := NewQueue[int]("q")
	var target *Proc
	ran := false
	target = k.Spawn("app", func(p *Proc) {
		_ = q.Get(p) // parked non-interruptibly
		if ran {
			t.Error("handler ran during non-interruptible park")
		}
		p.SpinInterruptible(1 * us)
		if !ran {
			t.Error("handler did not run at interruptible point")
		}
	})
	k.Spawn("other", func(p *Proc) {
		p.Sleep(5 * us)
		target.Interrupt(func() { ran = true })
		p.Sleep(5 * us)
		q.Put(1)
	})
	k.Run()
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	k := New(1)
	q := NewQueue[int]("never")
	k.Spawn("stuck", func(p *Proc) { q.Get(p) })
	k.Run()
}

func TestAfterRunsAtScheduledTime(t *testing.T) {
	k := New(1)
	var at Time
	k.After(42*us, func() { at = k.Now() })
	k.Run()
	if at != 42*us {
		t.Fatalf("ran at %v, want 42µs", at)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	k := New(1)
	k.Spawn("bad", func(p *Proc) { panic("boom") })
	k.Run()
}

func TestNewRNGStreamsDeterministic(t *testing.T) {
	k1, k2 := New(9), New(9)
	r1, r2 := k1.NewRNG(), k2.NewRNG()
	for i := 0; i < 100; i++ {
		if r1.Int63() != r2.Int63() {
			t.Fatal("rng streams differ across identical kernels")
		}
	}
	r3 := k1.NewRNG()
	same := true
	r1b := New(9).NewRNG()
	for i := 0; i < 10; i++ {
		if r3.Int63() != r1b.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("distinct streams from one kernel are identical")
	}
}
