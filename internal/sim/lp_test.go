package sim

import (
	"strings"
	"testing"
	"time"
)

// fnRunner adapts a closure to the Runner interface for tests.
type fnRunner func()

func (f fnRunner) RunEvent() { f() }

// lpHarness is a minimal cross-LP transport for tests: each LP appends
// posts to its outbox during a window; the exchange hook sorts them by
// (t, lp, seq) and schedules each on the destination kernel — the same
// deterministic merge the fabric performs.
type lpHarness struct {
	ks    []*Kernel
	boxes [][]lpPost
}

type lpPost struct {
	t   Time
	dst int
	fn  func()
	lp  int
	seq uint64
}

func newLPHarness(n int, seed int64) *lpHarness {
	h := &lpHarness{ks: make([]*Kernel, n), boxes: make([][]lpPost, n)}
	for i := range h.ks {
		h.ks[i] = New(seed + int64(i))
	}
	return h
}

// post schedules fn on LP dst at absolute time t; callable only from
// goroutines of LP src during a window.
func (h *lpHarness) post(src, dst int, t Time, fn func()) {
	h.boxes[src] = append(h.boxes[src], lpPost{t: t, dst: dst, fn: fn,
		lp: src, seq: uint64(len(h.boxes[src]))})
}

func (h *lpHarness) exchange() {
	var all []lpPost
	for i := range h.boxes {
		all = append(all, h.boxes[i]...)
		h.boxes[i] = h.boxes[i][:0]
	}
	// Insertion sort by (t, lp, seq): tiny windows, deterministic order.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			a, b := &all[j-1], &all[j]
			if a.t < b.t || (a.t == b.t && (a.lp < b.lp || (a.lp == b.lp && a.seq < b.seq))) {
				break
			}
			all[j-1], all[j] = all[j], all[j-1]
		}
	}
	for _, m := range all {
		m := m
		h.ks[m.dst].ScheduleRunnerAt(m.t, fnRunner(m.fn))
	}
}

// TestLPSetPingPong: two LPs exchange a token through the windowed
// protocol; the result (rounds completed, final virtual time) must be
// exact and stable across repeated runs regardless of goroutine
// interleaving.
func TestLPSetPingPong(t *testing.T) {
	const L = 10 * time.Microsecond
	const rounds = 20
	run := func() Time {
		h := newLPHarness(2, 1)
		q0 := NewQueue[int]("q0")
		q1 := NewQueue[int]("q1")
		h.ks[0].Spawn("ping", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				h.post(0, 1, p.Now()+L, func() { q1.Put(r) })
				if got := q0.Get(p); got != r {
					t.Errorf("round %d: ping got %d", r, got)
				}
			}
		})
		h.ks[1].Spawn("pong", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				v := q1.Get(p)
				h.post(1, 0, p.Now()+L, func() { q0.Put(v) })
			}
		})
		return NewLPSet(h.ks, L, h.exchange).Run()
	}
	end := run()
	// Each round costs one L per direction.
	if want := Time(2 * rounds * L); end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
	for i := 0; i < 10; i++ {
		if again := run(); again != end {
			t.Fatalf("run %d ended at %v, first at %v", i, again, end)
		}
	}
}

// TestLPSetSingleKernelDelegates: a one-kernel set must behave exactly
// like Kernel.Run — including leaving the kernel unmarked, so deadlock
// reports carry no LP tag.
func TestLPSetSingleKernelDelegates(t *testing.T) {
	k := New(1)
	k.Spawn("app", func(p *Proc) { p.Sleep(3 * time.Microsecond) })
	if end := NewLPSet([]*Kernel{k}, 0, func() {}).Run(); end != 3*time.Microsecond {
		t.Errorf("end = %v", end)
	}

	k2 := New(1)
	k2.Spawn("stuck", func(p *Proc) { NewQueue[int]("noone").Get(p) })
	defer func() {
		msg, _ := recover().(string)
		if msg == "" || !strings.Contains(msg, "deadlock") {
			t.Fatalf("no deadlock panic: %v", msg)
		}
		if strings.Contains(msg, "lp0") {
			t.Errorf("single-kernel report carries an LP tag:\n%s", msg)
		}
	}()
	NewLPSet([]*Kernel{k2}, 0, func() {}).Run()
}

// TestLPSetDeadlockReportNamesLP: when a partitioned run deadlocks, the
// aggregated stuck report must say which LP each parked process lives
// on.
func TestLPSetDeadlockReportNamesLP(t *testing.T) {
	h := newLPHarness(2, 1)
	h.ks[0].Spawn("finisher", func(p *Proc) { p.Sleep(time.Microsecond) })
	h.ks[1].Spawn("stuck", func(p *Proc) { NewQueue[int]("noone").Get(p) })
	defer func() {
		msg, _ := recover().(string)
		if msg == "" || !strings.Contains(msg, "deadlock") {
			t.Fatalf("no deadlock panic: %v", msg)
		}
		for _, want := range []string{"lp1", "[lp1]", "stuck", "noone"} {
			if !strings.Contains(msg, want) {
				t.Errorf("report missing %q:\n%s", want, msg)
			}
		}
	}()
	NewLPSet(h.ks, 10*time.Microsecond, h.exchange).Run()
}

// TestLPSetRunnerOnly: the flow engine's shape — no processes or
// daemons anywhere, work seeded as runner events before Run, new
// cross-LP events minted only by the exchange hook. The set must keep
// opening windows while any kernel holds events and terminate at the
// last event's time once the relay goes quiet.
func TestLPSetRunnerOnly(t *testing.T) {
	const L = Time(100)
	const hops = 25
	run := func() (Time, int) {
		h := newLPHarness(2, 1)
		count := 0
		var relay func(lp int)
		relay = func(lp int) {
			count++
			if count >= hops {
				return
			}
			h.post(lp, 1-lp, h.ks[lp].Now()+L, func() { relay(1 - lp) })
		}
		h.ks[0].ScheduleRunnerAt(0, fnRunner(func() { relay(0) }))
		return NewLPSet(h.ks, L, h.exchange).Run(), count
	}
	end, count := run()
	if count != hops {
		t.Errorf("relay ran %d hops, want %d", count, hops)
	}
	if want := Time((hops - 1)) * L; end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
	for i := 0; i < 10; i++ {
		if again, _ := run(); again != end {
			t.Fatalf("run %d ended at %v, first at %v", i, again, end)
		}
	}
}

// TestLPSetPanicPropagates: a panic on any LP surfaces from LPSet.Run,
// like Kernel.Run does for the monolithic kernel.
func TestLPSetPanicPropagates(t *testing.T) {
	h := newLPHarness(2, 1)
	h.ks[0].Spawn("fine", func(p *Proc) { p.Sleep(time.Millisecond) })
	h.ks[1].Spawn("bomb", func(p *Proc) {
		p.Sleep(time.Microsecond)
		panic("boom on lp1")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom on lp1") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	NewLPSet(h.ks, 10*time.Microsecond, h.exchange).Run()
}

// TestQueueGetTimeoutVsCrossLPPut: a Put delivered from another LP
// landing on exactly the waiter's timeout tick must deliver the item
// exactly once, whichever event the kernel orders first. The two
// subtests construct both same-tick orders: the timeout event armed
// before the cross-LP crossing was scheduled (timeout fires first), and
// armed after (the Put fires first).
func TestQueueGetTimeoutVsCrossLPPut(t *testing.T) {
	const L = 10 * time.Microsecond
	t.Run("timeout-armed-first", func(t *testing.T) {
		h := newLPHarness(2, 1)
		q := NewQueue[int]("q")
		h.ks[0].Spawn("consumer", func(p *Proc) {
			// Parks at t=0; the crossing for t=30 is scheduled at a later
			// barrier, so the timeout event precedes the Put in the tick.
			// Whichever way the queue resolves that, the item must be
			// delivered exactly once, never lost.
			v, ok := q.GetTimeout(p, 30*time.Microsecond)
			if !ok {
				v = q.Get(p)
			}
			if v != 7 {
				t.Errorf("timeout-armed-first: got %d (ok=%v), want 7", v, ok)
			}
			if p.Now() != 30*time.Microsecond {
				t.Errorf("delivered at %v, want 30µs", p.Now())
			}
		})
		h.ks[1].Spawn("producer", func(p *Proc) {
			p.Sleep(20 * time.Microsecond)
			h.post(1, 0, p.Now()+L, func() { q.Put(7) }) // lands exactly at t=30
		})
		NewLPSet(h.ks, L, h.exchange).Run()
	})
	t.Run("put-scheduled-first", func(t *testing.T) {
		h := newLPHarness(2, 1)
		q := NewQueue[int]("q")
		h.ks[0].Spawn("consumer", func(p *Proc) {
			// The crossing for t=30 is already in LP 0's heap when this
			// deadline is armed at t=12, so the Put precedes the timeout.
			p.Sleep(12 * time.Microsecond)
			v, ok := q.GetTimeout(p, 18*time.Microsecond)
			if !ok {
				v = q.Get(p)
			}
			if v != 7 {
				t.Errorf("put-scheduled-first: got %d (ok=%v), want 7", v, ok)
			}
			if p.Now() != 30*time.Microsecond {
				t.Errorf("delivered at %v, want 30µs", p.Now())
			}
		})
		h.ks[1].Spawn("producer", func(p *Proc) {
			h.post(1, 0, 30*time.Microsecond, func() { q.Put(7) })
		})
		NewLPSet(h.ks, L, h.exchange).Run()
	})
}

// TestDaemonWakeAtRearmWhileWakeInFlight: re-arming from inside the
// executing step (the wake is in flight, nothing is scheduled), then
// pulling that re-armed deadline earlier from outside, then absorbing a
// later request — the retransmit-timer lifecycle under the parallel
// kernel's windowed execution.
func TestDaemonWakeAtRearmWhileWakeInFlight(t *testing.T) {
	k := New(1)
	var steps []Time
	var d *Daemon
	d = k.NewDaemon("timer", func() {
		steps = append(steps, d.Now())
		if len(steps) == 1 {
			// In-flight re-arm: the triggering wake has been consumed, so
			// this must schedule a fresh step, not be absorbed.
			d.WakeAt(d.Now() + 20*time.Microsecond)
		}
	})
	k.Spawn("driver", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		d.Wake() // step 1 at t=10; re-arms itself for t=30
		p.Sleep(5 * time.Microsecond)
		d.WakeAt(18 * time.Microsecond) // pulls the pending t=30 step to t=18
		p.Sleep(time.Microsecond)
		d.WakeAt(25 * time.Microsecond) // later than pending t=18: absorbed
		p.Sleep(20 * time.Microsecond)
	})
	k.Run()
	want := []Time{10 * time.Microsecond, 18 * time.Microsecond}
	if len(steps) != len(want) {
		t.Fatalf("steps at %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("step %d at %v, want %v", i, steps[i], want[i])
		}
	}
}

// TestDaemonWakeAtSameTickRearm: WakeAt(now) from inside the step runs
// the daemon again within the same tick exactly once — the degenerate
// in-flight re-arm.
func TestDaemonWakeAtSameTickRearm(t *testing.T) {
	k := New(1)
	runs := 0
	var d *Daemon
	d = k.NewDaemon("again", func() {
		runs++
		if runs == 1 {
			d.WakeAt(d.Now())
		}
	})
	k.Spawn("driver", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		d.Wake()
		p.Sleep(5 * time.Microsecond)
	})
	k.Run()
	if runs != 2 {
		t.Errorf("daemon stepped %d times, want 2", runs)
	}
}
