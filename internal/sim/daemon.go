package sim

// Daemon is a goroutine-free simulated service: a state machine whose
// step function runs in scheduler context each time the daemon becomes
// runnable. It replaces the Spawn-a-goroutine pattern for always-on
// background services (NIC control programs above all), where the
// goroutine's only job was to park on a work queue: a callback daemon
// costs no goroutine, no resume/parked channel pair, and no context
// switches — at N nodes that removes N goroutines and two switches per
// serviced work item.
//
// Contract: the step function must not park (it has no process). It is
// invoked when a Wake or Sleep event fires, drains whatever work it
// finds, and either returns idle or calls Sleep(d) exactly once — to
// model time spent processing — and returns immediately after. Wakes
// arriving while a Sleep is pending are absorbed: the step runs anyway
// when the sleep expires, so it must always re-check its work sources.
//
// Blocking on a resource (a flow-control token, say) is modeled by
// recording the blocked state in the daemon's own state machine,
// returning without sleeping, and having the resource's release path
// call Wake.
type Daemon struct {
	k    *Kernel
	name string
	step func()

	// scheduled is true while a step event (wake or sleep) is pending;
	// it coalesces Wakes and keeps the daemon single-threaded in
	// virtual time. at/ref describe the pending event so WakeAt can
	// pull it earlier.
	scheduled bool
	at        Time
	ref       evref

	// status names what an idle daemon is waiting on; it appears in
	// deadlock reports, replacing the park reason a goroutine-based
	// daemon would have had.
	status string
}

// NewDaemon registers a callback daemon. The daemon starts idle: nothing
// runs until Wake is called. Daemons never keep the simulation alive —
// like Spawn+SetDaemon(true) processes, they are background services.
func (k *Kernel) NewDaemon(name string, step func()) *Daemon {
	d := &Daemon{}
	k.InitDaemon(d, name, step)
	return d
}

// InitDaemon initializes d in place and registers it with the kernel,
// the slab-friendly form of NewDaemon for daemons embedded by value in
// larger per-node structures. Registered daemons survive Kernel.Reset
// (which disarms any pending step), so a reused cluster keeps its
// control programs.
func (k *Kernel) InitDaemon(d *Daemon, name string, step func()) {
	if k.shutdown {
		panic("sim: NewDaemon after Shutdown")
	}
	*d = Daemon{k: k, name: name, step: step}
	k.daemons = append(k.daemons, d)
}

// Name returns the name given at NewDaemon.
func (d *Daemon) Name() string { return d.name }

// Kernel returns the owning kernel.
func (d *Daemon) Kernel() *Kernel { return d.k }

// Now returns the current virtual time.
func (d *Daemon) Now() Time { return d.k.now }

// SetStatus records what the daemon is currently waiting on, for
// deadlock reports.
func (d *Daemon) SetStatus(s string) { d.status = s }

// Wake makes the daemon runnable at the current virtual time. It is
// idempotent: while a step event is already pending (from an earlier
// Wake or a Sleep), further Wakes are absorbed. May be called from any
// process or scheduler context.
func (d *Daemon) Wake() {
	if d.scheduled {
		return
	}
	d.arm(d.k.now)
}

// WakeAt schedules the next step at time t (clamped to now), for
// deadline-driven daemons (retransmit timers above all). Unlike Wake it
// is not absorbed by a pending later step: if one is scheduled after t
// it is pulled earlier, so the earliest requested deadline always wins.
// A pending step at or before t is left alone.
func (d *Daemon) WakeAt(t Time) {
	if t < d.k.now {
		t = d.k.now
	}
	if d.scheduled {
		if d.at <= t {
			return
		}
		d.k.cancel(d.ref)
	}
	d.arm(t)
}

// Sleep schedules the next step at now+dt, modeling time the daemon
// spends processing. It must be called from inside the step function,
// at most once per step, with the step returning immediately after.
func (d *Daemon) Sleep(dt Time) {
	if d.scheduled {
		panic("sim: Daemon.Sleep with a step already pending")
	}
	d.arm(d.k.now + dt)
}

// arm schedules the step event at t, recording it for WakeAt.
func (d *Daemon) arm(t Time) {
	d.scheduled = true
	d.at = t
	d.ref = d.k.scheduleRunner(t, d)
}

// RunEvent drives one step; the kernel invokes it when the daemon's
// wake or sleep event fires.
func (d *Daemon) RunEvent() {
	d.scheduled = false
	d.step()
}
