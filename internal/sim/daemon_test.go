package sim

import (
	"testing"
	"time"
)

// TestDaemonWakeAtEarlierWins: a WakeAt before a pending later step must
// pull the step in; the cancelled later event must not fire a second
// step.
func TestDaemonWakeAtEarlierWins(t *testing.T) {
	k := New(1)
	var fired []Time
	var d *Daemon
	d = k.NewDaemon("timer", func() { fired = append(fired, d.Now()) })
	k.Spawn("app", func(p *Proc) {
		d.WakeAt(50 * time.Microsecond)
		d.WakeAt(20 * time.Microsecond)
		p.Sleep(100 * time.Microsecond)
	})
	k.Run()
	if len(fired) != 1 || fired[0] != 20*time.Microsecond {
		t.Errorf("fired = %v, want one step at 20µs", fired)
	}
}

// TestDaemonWakeAtLaterAbsorbed: a WakeAt after a pending earlier step
// is a no-op — the earliest requested deadline stands.
func TestDaemonWakeAtLaterAbsorbed(t *testing.T) {
	k := New(1)
	var fired []Time
	var d *Daemon
	d = k.NewDaemon("timer", func() { fired = append(fired, d.Now()) })
	k.Spawn("app", func(p *Proc) {
		d.WakeAt(20 * time.Microsecond)
		d.WakeAt(50 * time.Microsecond)
		p.Sleep(100 * time.Microsecond)
	})
	k.Run()
	if len(fired) != 1 || fired[0] != 20*time.Microsecond {
		t.Errorf("fired = %v, want one step at 20µs", fired)
	}
}

// TestDaemonWakeAtPastClampsToNow: deadlines in the past run at the
// current tick rather than panicking or going backwards.
func TestDaemonWakeAtPastClampsToNow(t *testing.T) {
	k := New(1)
	var fired []Time
	var d *Daemon
	d = k.NewDaemon("timer", func() { fired = append(fired, d.Now()) })
	k.Spawn("app", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		d.WakeAt(5 * time.Microsecond)
		p.Sleep(10 * time.Microsecond)
	})
	k.Run()
	if len(fired) != 1 || fired[0] != 10*time.Microsecond {
		t.Errorf("fired = %v, want one step at 10µs", fired)
	}
}

// TestDaemonWakeAbsorbedWhilePending: plain Wake keeps its original
// coalescing contract — it never pulls a pending step earlier, so code
// relying on Wake's exact timing is unaffected by the WakeAt addition.
func TestDaemonWakeAbsorbedWhilePending(t *testing.T) {
	k := New(1)
	var fired []Time
	var d *Daemon
	d = k.NewDaemon("timer", func() { fired = append(fired, d.Now()) })
	k.Spawn("app", func(p *Proc) {
		d.WakeAt(30 * time.Microsecond)
		d.Wake() // absorbed: the pending 30µs step stands
		p.Sleep(100 * time.Microsecond)
	})
	k.Run()
	if len(fired) != 1 || fired[0] != 30*time.Microsecond {
		t.Errorf("fired = %v, want one step at 30µs", fired)
	}
}

// TestDaemonWakeAtRearmsAcrossSteps: a deadline-driven daemon re-arming
// itself from inside its step sees each deadline exactly once.
func TestDaemonWakeAtRearmsAcrossSteps(t *testing.T) {
	k := New(1)
	var fired []Time
	var d *Daemon
	d = k.NewDaemon("timer", func() {
		fired = append(fired, d.Now())
		if len(fired) < 3 {
			d.WakeAt(d.Now() + 10*time.Microsecond)
		}
	})
	k.Spawn("app", func(p *Proc) {
		d.WakeAt(10 * time.Microsecond)
		p.Sleep(100 * time.Microsecond)
	})
	k.Run()
	want := []Time{10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond}
	if len(fired) != 3 || fired[0] != want[0] || fired[1] != want[1] || fired[2] != want[2] {
		t.Errorf("fired = %v, want %v", fired, want)
	}
}
