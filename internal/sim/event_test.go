package sim

import (
	"testing"
	"time"
)

// TestCanceledEventCompaction: once canceled timers outnumber live
// events the heap compacts, instead of carrying dead entries until their
// far-future pop.
func TestCanceledEventCompaction(t *testing.T) {
	k := New(1)
	var refs []evref
	for i := 0; i < 1000; i++ {
		refs = append(refs, k.schedule(Time(i+1)*time.Millisecond, func() {}))
	}
	for _, r := range refs[:900] {
		k.cancel(r)
	}
	if len(k.events) > 200 {
		t.Fatalf("heap holds %d entries after canceling 900 of 1000", len(k.events))
	}
	if live := len(k.events) - k.ncanceled; live != 100 {
		t.Fatalf("%d live entries, want 100", live)
	}
	k.Run()
	if got := k.Events(); got != 100 {
		t.Fatalf("executed %d events, want the 100 live ones", got)
	}
}

// TestCompactionPreservesOrder: compaction must not perturb the (t, seq)
// pop order that determinism rests on.
func TestCompactionPreservesOrder(t *testing.T) {
	k := New(1)
	var fired []int
	var refs []evref
	for i := 0; i < 300; i++ {
		i := i
		refs = append(refs, k.schedule(Time(300-i)*time.Microsecond, func() { fired = append(fired, 300-i) }))
	}
	// Cancel two thirds to force at least one compaction pass.
	for i := 0; i < len(refs); i++ {
		if i%3 != 0 {
			k.cancel(refs[i])
		}
	}
	k.Run()
	if len(fired) != 100 {
		t.Fatalf("%d events fired, want 100", len(fired))
	}
	for j := 1; j < len(fired); j++ {
		if fired[j] < fired[j-1] {
			t.Fatalf("events fired out of order: %d after %d", fired[j], fired[j-1])
		}
	}
}

// TestStaleCancelIsHarmless: canceling through a ref whose event already
// fired (and whose storage was recycled for a newer event) must not
// cancel the newer event.
func TestStaleCancelIsHarmless(t *testing.T) {
	k := New(1)
	firstFired, secondFired := false, false
	stale := k.schedule(time.Microsecond, func() { firstFired = true })
	k.Spawn("canceler", func(p *Proc) {
		p.Sleep(2 * time.Microsecond) // first event has fired; its struct is pooled
		k.schedule(k.now+time.Microsecond, func() { secondFired = true })
		k.cancel(stale)               // stale: generation advanced on recycle
		p.Sleep(2 * time.Microsecond) // keep the sim alive until it fires
	})
	k.Run()
	if !firstFired || !secondFired {
		t.Fatalf("fired=%v,%v; stale cancel must be a no-op", firstFired, secondFired)
	}
}

// TestEventPoolReuse: the kernel recycles event structs instead of
// allocating one per schedule.
func TestEventPoolReuse(t *testing.T) {
	k := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			k.After(time.Microsecond, tick)
		}
	}
	k.After(time.Microsecond, tick)
	k.Run()
	// A pure event chain keeps exactly one struct in flight.
	if len(k.free) > 4 {
		t.Fatalf("free list grew to %d for a single event chain", len(k.free))
	}
	if k.Events() != 1000 {
		t.Fatalf("Events() = %d, want 1000", k.Events())
	}
}
