package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestShutdownReleasesGoroutines is the leak regression test: many
// back-to-back simulations, each leaving daemons and Stop-abandoned
// processes parked, must not accumulate goroutines once Shutdown runs.
func TestShutdownReleasesGoroutines(t *testing.T) {
	countGoroutines := func() int {
		runtime.GC()
		return runtime.NumGoroutine()
	}
	base := countGoroutines()
	for i := 0; i < 100; i++ {
		k := New(int64(i))
		q := NewQueue[int]("work")
		// A daemon parked forever on its queue, like a NIC control program.
		d := k.Spawn("lanai", func(p *Proc) {
			for {
				q.Get(p)
			}
		})
		d.SetDaemon(true)
		// A proc the kernel abandons mid-sleep when Stop fires.
		k.Spawn("stuck", func(p *Proc) { p.Sleep(time.Hour) })
		k.Spawn("main", func(p *Proc) {
			p.Sleep(time.Millisecond)
			k.Stop()
		})
		k.Run()
		k.Shutdown()
	}
	// Exiting goroutines finish an instant after the shutdown handshake;
	// poll briefly before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := countGoroutines(); n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", base, countGoroutines())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownIdempotentAndSpawnPanics: double Shutdown is harmless;
// Spawn afterwards is a programming error.
func TestShutdownAfterRun(t *testing.T) {
	k := New(1)
	k.Spawn("p", func(p *Proc) { p.Sleep(time.Microsecond) })
	k.Run()
	k.Shutdown()
	k.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn after Shutdown should panic")
		}
	}()
	k.Spawn("late", func(p *Proc) {})
}

// TestShutdownKillsNeverStartedProc: a process spawned but never resumed
// (its start event still pending when Run stops) must also be released
// without running its body.
func TestShutdownKillsNeverStartedProc(t *testing.T) {
	k := New(1)
	ran := false
	k.Stop() // Run returns immediately; the start event never fires
	k.Spawn("never", func(p *Proc) { ran = true })
	k.Run()
	k.Shutdown()
	if ran {
		t.Fatal("killed process body ran")
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("%d live procs after Shutdown", k.LiveProcs())
	}
}

// TestStuckReportIncludesDaemons: the deadlock report summarizes parked
// daemon processes so NIC-control-program hangs are diagnosable.
func TestStuckReportIncludesDaemons(t *testing.T) {
	k := New(1)
	q := NewQueue[int]("ctrl")
	for i := 0; i < 6; i++ {
		d := k.Spawn("lanai", func(p *Proc) { q.Get(p) })
		d.SetDaemon(true)
	}
	k.Spawn("rank0", func(p *Proc) { NewQueue[int]("recv").Get(p) })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg := r.(string)
		if !strings.Contains(msg, `"rank0"`) {
			t.Errorf("report missing stuck proc: %s", msg)
		}
		if !strings.Contains(msg, "+6 daemon procs parked") {
			t.Errorf("report missing daemon summary: %s", msg)
		}
		if !strings.Contains(msg, ", ...") {
			t.Errorf("report should elide daemons past the sample: %s", msg)
		}
		k.Shutdown()
	}()
	k.Run()
}
