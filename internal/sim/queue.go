package sim

// Queue is an unbounded FIFO queue in virtual time. Put never blocks;
// Get parks the calling process until an item is available. A Queue is
// safe for use by any number of simulated processes (the kernel's strict
// hand-off scheduling means no real concurrency ever occurs).
type Queue[T any] struct {
	name    string
	items   []T
	waiters []*Proc
}

// NewQueue returns an empty queue; name appears in deadlock reports.
func NewQueue[T any](name string) *Queue[T] {
	return &Queue[T]{name: name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes the oldest waiting process, if any. It may be
// called from process or scheduler context.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.wakeOne()
}

// PutFront prepends v (used to return an item taken speculatively).
func (q *Queue[T]) PutFront(v T) {
	q.items = append([]T{v}, q.items...)
	q.wakeOne()
}

func (q *Queue[T]) wakeOne() {
	if len(q.waiters) == 0 {
		return
	}
	p := q.waiters[0]
	q.waiters = q.waiters[1:]
	p.wakeAt(p.k.now)
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// Get removes and returns the head item, parking p until one is
// available.
func (q *Queue[T]) Get(p *Proc) T {
	for {
		if v, ok := q.TryGet(); ok {
			return v
		}
		q.waiters = append(q.waiters, p)
		p.park("queue " + q.name)
	}
}

// GetTimeout is like Get but gives up after d, returning ok=false. A
// timeout consumes exactly d of virtual time.
func (q *Queue[T]) GetTimeout(p *Proc, d Time) (T, bool) {
	var zero T
	deadline := p.k.now + d
	for {
		if v, ok := q.TryGet(); ok {
			return v, true
		}
		if p.k.now >= deadline {
			return zero, false
		}
		q.waiters = append(q.waiters, p)
		ev := p.k.schedule(deadline, func() {
			q.removeWaiter(p)
			p.wakeAt(p.k.now)
		})
		p.park("queue " + q.name)
		p.k.cancel(ev)
		q.removeWaiter(p)
	}
}

func (q *Queue[T]) removeWaiter(p *Proc) {
	for i, w := range q.waiters {
		if w == p {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}
