package sim

// Queue is an unbounded FIFO queue in virtual time. Put never blocks;
// Get parks the calling process until an item is available. A Queue is
// safe for use by any number of simulated processes (the kernel's strict
// hand-off scheduling means no real concurrency ever occurs).
//
// Both the item store and the waiter list are ring buffers, so the
// steady state allocates nothing: TryGet no longer drifts the backing
// array and PutFront reuses the ring instead of building a fresh slice
// per call. Waiter removal is O(1) amortized — each waiting process
// remembers its ring position, and removal tombstones the slot for the
// next wake to skip.
type Queue[T any] struct {
	name  string
	where string // park label, built once ("queue " + name)
	items []T    // ring buffer
	head  int
	n     int

	waiters  []*Proc // ring buffer; nil entries are removed waiters
	whead    int     // ring index of the logical head
	wcount   int     // slots in use, tombstones included
	wheadPos uint64  // position counter of the slot at whead
	wnextPos uint64  // position assigned to the next enqueued waiter
}

// NewQueue returns an empty queue; name appears in deadlock reports.
func NewQueue[T any](name string) *Queue[T] {
	q := &Queue[T]{}
	q.Init(name)
	return q
}

// Init initializes q in place, the slab-friendly form of NewQueue for
// queues embedded by value in larger per-node structures.
func (q *Queue[T]) Init(name string) {
	q.name = name
	q.where = "queue " + name
}

// Reset empties the queue — items and waiters both — keeping ring
// capacity for reuse. The caller must ensure no parked process still
// expects a wake from this queue (cluster reset kills leftover
// processes first).
func (q *Queue[T]) Reset() {
	var zero T
	for i := 0; i < q.n; i++ {
		q.items[(q.head+i)%len(q.items)] = zero
	}
	q.head, q.n = 0, 0
	for i := range q.waiters {
		q.waiters[i] = nil
	}
	q.whead, q.wcount = 0, 0
	q.wheadPos, q.wnextPos = 0, 0
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return q.n }

// grow doubles the item ring, unrolling it into the new backing array.
func (q *Queue[T]) grow() {
	c := 2 * len(q.items)
	if c == 0 {
		c = 8
	}
	items := make([]T, c)
	for i := 0; i < q.n; i++ {
		items[i] = q.items[(q.head+i)%len(q.items)]
	}
	q.items = items
	q.head = 0
}

// Put appends v and wakes the oldest waiting process, if any. It may be
// called from process or scheduler context.
func (q *Queue[T]) Put(v T) {
	if q.n == len(q.items) {
		q.grow()
	}
	q.items[(q.head+q.n)%len(q.items)] = v
	q.n++
	q.wakeOne()
}

// PutFront prepends v (used to return an item taken speculatively).
func (q *Queue[T]) PutFront(v T) {
	if q.n == len(q.items) {
		q.grow()
	}
	q.head = (q.head - 1 + len(q.items)) % len(q.items)
	q.items[q.head] = v
	q.n++
	q.wakeOne()
}

// wakeOne pops the oldest live waiter and schedules its resume, skipping
// tombstoned slots.
func (q *Queue[T]) wakeOne() {
	for q.wcount > 0 {
		p := q.waiters[q.whead]
		q.waiters[q.whead] = nil
		q.whead = (q.whead + 1) % len(q.waiters)
		q.wheadPos++
		q.wcount--
		if p != nil {
			p.wakeAt(p.k.now)
			return
		}
	}
}

// addWaiter parks p at the tail of the waiter ring, recording its
// position for O(1) removal. A process waits on at most one queue at a
// time, so the position lives on the Proc itself.
func (q *Queue[T]) addWaiter(p *Proc) {
	if q.wcount == len(q.waiters) {
		c := 2 * len(q.waiters)
		if c == 0 {
			c = 4
		}
		ws := make([]*Proc, c)
		for i := 0; i < q.wcount; i++ {
			ws[i] = q.waiters[(q.whead+i)%len(q.waiters)]
		}
		q.waiters = ws
		q.whead = 0
	}
	q.waiters[(q.whead+q.wcount)%len(q.waiters)] = p
	p.wpos = q.wnextPos
	q.wnextPos++
	q.wcount++
}

// removeWaiter tombstones p's slot if p is still enqueued; a no-op when
// a wake already dequeued it. O(1): the slot is computed from the
// position recorded at addWaiter.
func (q *Queue[T]) removeWaiter(p *Proc) {
	off := p.wpos - q.wheadPos
	if off >= uint64(q.wcount) {
		return // already dequeued (position fell off the ring head)
	}
	i := (q.whead + int(off)) % len(q.waiters)
	if q.waiters[i] == p {
		q.waiters[i] = nil
	}
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head = (q.head + 1) % len(q.items)
	q.n--
	return v, true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	return q.items[q.head], true
}

// Get removes and returns the head item, parking p until one is
// available.
func (q *Queue[T]) Get(p *Proc) T {
	for {
		if v, ok := q.TryGet(); ok {
			return v
		}
		q.addWaiter(p)
		p.park(q.where)
	}
}

// GetTimeout is like Get but gives up after d, returning ok=false. A
// timeout consumes exactly d of virtual time.
//
// Same-tick audit: when a Put lands on the same virtual tick as the
// timeout event, p resumes exactly once whichever fires first. Timeout
// first: it tombstones p's waiter slot (wakeOne skips tombstones, so
// the Put's wake passes to the next live waiter) and its wakeAt is
// idempotent against any already-pending resume. Put first: wakeOne
// dequeues p, the late timeout's removeWaiter is a position-checked
// no-op and its wakeAt is absorbed. Either way p re-checks TryGet
// before reporting the timeout, so an item landing on the deadline is
// delivered, never lost.
func (q *Queue[T]) GetTimeout(p *Proc, d Time) (T, bool) {
	var zero T
	deadline := p.k.now + d
	for {
		if v, ok := q.TryGet(); ok {
			return v, true
		}
		if p.k.now >= deadline {
			return zero, false
		}
		timedOut := false
		ev := p.k.schedule(deadline, func() {
			timedOut = true
			q.removeWaiter(p)
			p.wakeAt(p.k.now)
		})
		q.addWaiter(p)
		p.park(q.where)
		if !timedOut {
			// Woken by Put (which dequeued p) — just disarm the timer;
			// the timeout path already removed p above.
			p.k.cancel(ev)
			q.removeWaiter(p)
		}
	}
}
