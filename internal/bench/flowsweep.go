package bench

import (
	"fmt"
	"time"

	"abred/internal/cluster"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/sweep"
	"abred/internal/topo"
)

// FlowPoint is one node count of the flow-engine scaling sweep: the
// paper's nab/ab comparison plus the execution-cost columns (wall,
// events, peak heap) that certify the point was simulable at all, and
// the flow-completion-time percentiles from the ab run.
type FlowPoint struct {
	Nodes    int     `json:"nodes"`
	NabUS    float64 `json:"nab_us"`
	AbUS     float64 `json:"ab_us"`
	Factor   float64 `json:"factor"`
	WallMS   float64 `json:"wall_ms"`
	Events   uint64  `json:"events"`
	HeapPeak uint64  `json:"heap_peak_bytes"`
	FCTp50US float64 `json:"fct_p50_us"`
	FCTp95US float64 `json:"fct_p95_us"`
	FCTp99US float64 `json:"fct_p99_us"`
}

// FlowSweep runs the flow-engine CPU-utilization grid: for each size,
// the interlaced heterogeneous node mix on the routed fabric, skewed,
// non-bypass versus bypass (with the topology-aware tree). Each size's
// two runs share a pooled cluster and execute serially so the wall and
// heap columns describe that size alone.
func FlowSweep(sizes []int, ft topo.Spec, maxSkew sim.Time, count, iters int, seed int64) []FlowPoint {
	points := make([]FlowPoint, 0, len(sizes))
	for _, n := range sizes {
		pool := cluster.NewPool()
		specs := model.PaperCluster(n)
		mk := func(mode Mode, topoAware bool) Config {
			return Config{Specs: specs, Count: count, Mode: mode, MaxSkew: maxSkew,
				Iters: iters, Seed: seed, Topo: ft, TopoAware: topoAware,
				Engine: cluster.EngineFlow, Pool: pool}
		}
		var nab, ab CPUUtilResult
		res := sweep.Run(fmt.Sprintf("flow/n=%d", n), []sweep.Job[int]{
			{Name: fmt.Sprintf("flow/nab/n=%d", n), Seed: seed, Run: func() (int, uint64) {
				nab = CPUUtil(mk(NonAppBypass, false))
				return 0, nab.Events
			}},
			{Name: fmt.Sprintf("flow/ab/n=%d", n), Seed: seed, Run: func() (int, uint64) {
				ab = CPUUtil(mk(AppBypass, true))
				return 0, ab.Events
			}},
		}, 1)
		pool.Drain()
		p := FlowPoint{
			Nodes:    n,
			NabUS:    float64(nab.AvgCPU) / float64(time.Microsecond),
			AbUS:     float64(ab.AvgCPU) / float64(time.Microsecond),
			WallMS:   float64(res.Perf.Wall) / float64(time.Millisecond),
			Events:   res.Perf.Events,
			HeapPeak: res.Perf.HeapPeak,
			FCTp50US: float64(ab.FCT.P50) / float64(time.Microsecond),
			FCTp95US: float64(ab.FCT.P95) / float64(time.Microsecond),
			FCTp99US: float64(ab.FCT.P99) / float64(time.Microsecond),
		}
		if p.AbUS > 0 {
			p.Factor = p.NabUS / p.AbUS
		}
		points = append(points, p)
	}
	return points
}
