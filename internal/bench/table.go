package bench

import (
	"fmt"
	"io"
	"strings"

	"abred/internal/sweep"
)

// Table is one regenerated figure: named columns of float series keyed
// by an x value, with free-form notes carrying paper references.
type Table struct {
	Title string
	XName string
	Cols  []string
	X     []float64
	Rows  [][]float64 // Rows[i][j] is the value of Cols[j] at X[i]
	Notes []string

	// Perf records how the sweep that produced the table executed
	// (wall-clock, speedup, simulated-event throughput). It is
	// deliberately excluded from Write/WriteCSV so rendered tables stay
	// byte-identical across worker counts.
	Perf sweep.Perf
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	widths := make([]int, len(t.Cols)+1)
	widths[0] = len(t.XName)
	header := make([]string, len(t.Cols)+1)
	header[0] = t.XName
	for j, c := range t.Cols {
		header[j+1] = c
		if len(c) > widths[j+1] {
			widths[j+1] = len(c)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, row := range t.Rows {
		cells[i] = make([]string, len(row)+1)
		cells[i][0] = trimFloat(t.X[i])
		if len(cells[i][0]) > widths[0] {
			widths[0] = len(cells[i][0])
		}
		for j, v := range row {
			s := fmt.Sprintf("%.2f", v)
			cells[i][j+1] = s
			if len(s) > widths[j+1] {
				widths[j+1] = len(s)
			}
		}
	}
	writeRow := func(row []string) {
		for j, s := range row {
			if j > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%*s", widths[j], s)
		}
		fmt.Fprintln(w)
	}
	writeRow(header)
	writeRow([]string{strings.Repeat("-", widths[0])})
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprintf(w, "%s,%s\n", t.XName, strings.Join(t.Cols, ","))
	for i, row := range t.Rows {
		parts := make([]string, 0, len(row)+1)
		parts = append(parts, trimFloat(t.X[i]))
		for _, v := range row {
			parts = append(parts, fmt.Sprintf("%.3f", v))
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
}

// trimFloat prints integers without decimals.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}
