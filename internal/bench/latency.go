package bench

import (
	"abred/internal/cluster"
	"abred/internal/coll"
	"abred/internal/mpi"
	"abred/internal/sim"
	"abred/internal/stats"
)

// LatencyResult is one latency measurement.
type LatencyResult struct {
	AvgLatency sim.Time
	OneWay     sim.Time // measured root↔last-node one-way latency
	Summary    stats.Summary
	Events     uint64    // simulated events executed (simulation cost)
	Rel        RelTotals // fault/reliability activity (zero on a clean fabric)
}

// notifyTag separates notification traffic from benchmark payloads.
const notifyTag = 1 << 20

// Latency runs the paper's latency microbenchmark: no skew; timing
// starts just before the last node (farthest from the root in the
// binomial tree) begins the reduction; when the root completes, it sends
// a notification to the last node, which stops timing and subtracts the
// one-way latency of the notification.
func Latency(cfg Config) LatencyResult {
	cfg.defaults()
	size := len(cfg.Specs)
	cl, release := cfg.acquire()
	defer release()
	root := cfg.Root
	last := coll.LastRank(root, size)

	var oneWay sim.Time
	samples := make([]sim.Time, 0, cfg.Iters)

	cl.Run(func(n *cluster.Node, w *mpi.Comm) {
		if cfg.Mode == AppBypass && cfg.Delay != nil {
			n.Engine.SetDelayPolicy(cfg.Delay)
		}
		in := make([]byte, cfg.Count*8)
		out := make([]byte, cfg.Count*8)
		nbuf := make([]byte, 1)

		// Phase 1: measure root↔last one-way latency as half the
		// average ping-pong round trip, as real benchmarks must.
		if size > 1 {
			const pings = 20
			switch n.ID {
			case root:
				t0 := n.Proc.Now()
				for i := 0; i < pings; i++ {
					w.Send(last, notifyTag, nbuf)
					w.Recv(last, notifyTag, nbuf)
				}
				rtt := (n.Proc.Now() - t0) / pings
				oneWay = rtt / 2
			case last:
				for i := 0; i < pings; i++ {
					w.Recv(root, notifyTag, nbuf)
					w.Send(root, notifyTag, nbuf)
				}
			}
		}
		coll.Barrier(w)

		// Phase 2: timed reductions, barrier-separated.
		for it := 0; it < cfg.Iters; it++ {
			var t0 sim.Time
			if n.ID == last {
				t0 = n.Proc.Now()
			}
			reduceOnce(cfg.Mode, n, w, in, out, cfg.Count, root)
			if size > 1 {
				if n.ID == root {
					w.Send(last, notifyTag+1, nbuf)
				}
				if n.ID == last {
					w.Recv(root, notifyTag+1, nbuf)
					samples = append(samples, n.Proc.Now()-t0-oneWay)
				}
			} else if n.ID == last {
				samples = append(samples, n.Proc.Now()-t0)
			}
			coll.Barrier(w)
		}
	})

	return LatencyResult{
		AvgLatency: stats.Mean(samples),
		OneWay:     oneWay,
		Summary:    stats.Summarize(samples),
		Events:     cl.Events(),
		Rel:        relTotals(cl),
	}
}
