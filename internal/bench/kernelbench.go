package bench

import (
	"runtime"
	"time"

	"abred/internal/model"
)

// Recorded performance of the kernel microbenchmark workload before the
// kernel hot-path overhaul (container/heap + closure events + goroutine
// NIC daemons), measured on the same 32-node Fig. 6 workload this file
// runs: KernelMicrobench(AppBypass, 50, 20030701). BENCH_kernel.json
// reports current numbers next to these so the speedup is auditable.
const (
	BaselineEventsPerSec   = 1165776
	BaselineAllocsPerEvent = 2.102
)

// Recorded performance of abscale's standard scaling grid (sizes
// 32,128,512,1024 × iters 100, serial) before the cluster-reuse and
// slab-allocation work, when every grid cell rebuilt its cluster from
// scratch. BENCH_kernel.json reports the current reuse-path numbers
// next to these so the large-N fast-path win stays auditable.
const (
	BaselineSweepSkewedWallMS         = 5386.88
	BaselineSweepSkewedAllocsPerEvent = 0.09267
	BaselineSweepNoSkewWallMS         = 6741.08
	BaselineSweepNoSkewAllocsPerEvent = 0.09415
)

// BaselineSweepSizes and BaselineSweepIters identify the workload the
// scaling-sweep baseline constants were measured on; improvement ratios
// are only reported for a matching run.
var BaselineSweepSizes = []int{32, 128, 512, 1024}

// BaselineSweepIters is the iteration count of the recorded baseline.
const BaselineSweepIters = 100

// KernelMicrobenchResult is one measured run of the kernel
// microbenchmark: raw simulation throughput and allocation cost on a
// fixed workload.
type KernelMicrobenchResult struct {
	Mode           string        `json:"mode"`
	Events         uint64        `json:"events"`
	Wall           time.Duration `json:"-"`
	WallMS         float64       `json:"wall_ms"`
	EventsPerSec   float64       `json:"events_per_sec"`
	Allocs         uint64        `json:"allocs"`
	AllocsPerEvent float64       `json:"allocs_per_event"`
}

// KernelMicrobench measures the simulation kernel itself — not the
// simulated cluster — on the paper's Fig. 6 workload: a 32-node
// heterogeneous cluster running skewed 4-element reductions. One warm-up
// run populates the event, packet and request pools; the measured run is
// then timed with the process-wide Mallocs delta taken around it.
//
// The workload is fixed so numbers are comparable across commits; the
// pre-overhaul measurement is recorded in BaselineEventsPerSec and
// BaselineAllocsPerEvent.
func KernelMicrobench(mode Mode, iters int, seed int64) KernelMicrobenchResult {
	cfg := Config{Specs: model.PaperCluster32(), Count: 4, Mode: mode,
		MaxSkew: time.Millisecond, Iters: iters, Seed: seed}
	CPUUtil(cfg) // warm-up: fills pools, faults in code and data

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	r := CPUUtil(cfg)
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	allocs := m1.Mallocs - m0.Mallocs

	res := KernelMicrobenchResult{
		Mode:   mode.String(),
		Events: r.Events,
		Wall:   wall,
		WallMS: float64(wall) / float64(time.Millisecond),
		Allocs: allocs,
	}
	if wall > 0 {
		res.EventsPerSec = float64(r.Events) / wall.Seconds()
	}
	if r.Events > 0 {
		res.AllocsPerEvent = float64(allocs) / float64(r.Events)
	}
	return res
}
