package bench

import (
	"testing"
	"time"

	"abred/internal/topo"
)

var benchFatTree = topo.Spec{Kind: topo.FatTree, K: 4}

func TestTopoSweepStructure(t *testing.T) {
	tab := TopoSweep([]int{4, 8}, benchFatTree, 200*time.Microsecond, 4,
		Opts{Iters: tiny, Seed: 1})
	checkTable(t, tab, 2, 10)
	if tab.X[0] != 4 || tab.X[1] != 8 {
		t.Errorf("node axis %v", tab.X)
	}
}

// TestTopoSweepRoutedCostsVisible: the sweep must actually surface the
// routed fabric — CPU on the fat tree differs from the crossbar, and
// the waits column is live. Contention needs flows to the same host to
// overlap in time, which binomial rounds and D-mod-k uplink spreading
// make rare at small scale: 4 KiB frames (~16 µs of wire) under a
// 200 µs skew spread are the smallest workload where the root's
// down-path reliably queues within 20 iterations at this seed.
func TestTopoSweepRoutedCostsVisible(t *testing.T) {
	tab := TopoSweep([]int{8}, benchFatTree, 200*time.Microsecond, 512,
		Opts{Iters: 20, Seed: 77})
	row := tab.Rows[0]
	if row[0] == row[3] && row[1] == row[4] {
		t.Error("fat-tree CPU identical to crossbar: routing not applied")
	}
	if row[8] == 0 {
		t.Error("no uplink waits recorded on the 8-node fat tree")
	}
}

// TestTopoSweepDeterministic: same seed, same table — including the
// contention counters — regardless of worker count.
func TestTopoSweepDeterministic(t *testing.T) {
	mk := func(workers int) *Table {
		return TopoSweep([]int{4, 8}, benchFatTree, 200*time.Microsecond, 4,
			Opts{Iters: tiny, Seed: 7, Workers: workers})
	}
	a, b := mk(1), mk(4)
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("cell [%d][%d] differs across worker counts: %v vs %v",
					i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

// TestFiguresAcceptTopo: every paper figure still runs (and keeps its
// shape) when Opts carries a routed topology.
func TestFiguresAcceptTopo(t *testing.T) {
	tab := Fig6(Opts{Iters: tiny, Seed: 1, Topo: benchFatTree})
	checkTable(t, tab, 11, 9)
}
