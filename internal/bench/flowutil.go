package bench

import (
	"fmt"

	"abred/internal/cluster"
	"abred/internal/coll"
	"abred/internal/flow"
	"abred/internal/sim"
	"abred/internal/stats"
)

// flowCPUUtil is the CPU-utilization benchmark on the flow engine: the
// same per-iteration shape as the packet path (skew spin, reduction,
// conservative catch-up spin, barrier), the same pre-generated skew
// matrix from the same RNG stream, and the same CPU accounting — call
// duration plus handler time landing inside the interruptible spins —
// but with every rank a small state machine over the flow machine's
// virtual clocks instead of a simulated process.
func flowCPUUtil(cfg Config) CPUUtilResult {
	size := len(cfg.Specs)
	switch {
	case cfg.Mode == NICBased:
		panic("bench: the flow engine does not model NIC-based reduction")
	case cfg.Delay != nil:
		panic("bench: the flow engine does not model delay policies")
	case cfg.RendezvousAB:
		panic("bench: the flow engine does not model rendezvous AB")
	}
	cl, release := cfg.acquire()
	defer release()
	if cl.Engine != cluster.EngineFlow {
		panic(fmt.Sprintf("bench: flow benchmark on a %v cluster", cl.Engine))
	}
	m := cl.FlowM
	m.SampleFCT(true)

	// The skew matrix: identical draw order to the packet path, so a
	// given (seed, size, iters) pair skews both engines identically.
	rng := cl.K.NewRNG()
	flat := make([]sim.Time, cfg.Iters*size)
	skews := make([][]sim.Time, cfg.Iters)
	for it := range skews {
		skews[it] = flat[it*size : (it+1)*size]
		if cfg.MaxSkew > 0 {
			for r := range skews[it] {
				skews[it][r] = sim.Time(rng.Int63n(int64(cfg.MaxSkew) + 1))
			}
		}
	}
	catchup := cfg.MaxSkew + estimateLatency(size, cfg.Count)

	fc := coll.NewFlowColl(m, size, cfg.Root, cfg.Count)
	if cfg.TopoAware && cfg.Mode == AppBypass && cl.Topo.Levels() > 1 {
		fc.Tree = coll.NewTopoTree(size, cfg.Root, cl.Topo.Leaf)
	}

	d := &flowDriver{
		fc: fc, m: m,
		skews: skews, catchup: catchup,
		ab:    cfg.Mode == AppBypass,
		iters: cfg.Iters,
		rk:    make([]flowRankState, size),
		cpu:   make([]sim.Time, size),
		fin:   make([]bool, size),
	}
	d.sp = flow.NewSpinner(m, size, d.spinDone)
	fc.Done = d.opDone
	for r := 0; r < size; r++ {
		// Rank startup mirrors mpi.NewProcess: pinning the eager
		// bounce-buffer pool is the one virtual-time charge before the
		// benchmark loop, and it dominates the packet engine's lead-in.
		cm := m.CMs[r]
		t0 := m.HostRun(r, 0, sim.Time(cm.Pin(64*cm.C.EagerThreshold)))
		d.startIter(r, t0)
	}
	end := cl.Drain()
	done := 0
	for _, f := range d.fin {
		if f {
			done++
		}
	}
	if done != size {
		panic(fmt.Sprintf("bench: flow run drained with %d/%d ranks finished", done, size))
	}

	perNode := make([]sim.Time, size)
	var total sim.Time
	for r := range perNode {
		perNode[r] = d.cpu[r] / sim.Time(cfg.Iters)
		total += perNode[r]
	}
	var signals uint64
	for _, s := range fc.Signals {
		signals += s
	}
	_, delayed, delayTotal := netDelays(m)
	hostStalls, recvStalls, expRetr := m.Tokens()
	_ = hostStalls
	_ = recvStalls
	return CPUUtilResult{
		AvgCPU:    total / sim.Time(size),
		PerNode:   perNode,
		Summary:   stats.Summarize(perNode),
		Signals:   signals,
		Events:    cl.Events(),
		Rel:       RelTotals{Retransmits: uint64(expRetr + 0.5)},
		LinkWaits: delayed,
		LinkWait:  delayTotal,
		Elapsed:   end,
		FCT:       stats.Summarize(m.FCTs()),
	}
}

// netDelays unpacks the Net contention counters, shard-summed.
func netDelays(m *flow.Machine) (started uint64, delayed uint64, delayTotal sim.Time) {
	started, _, delayed, delayTotal = m.NetStats()
	return started, delayed, delayTotal
}

// flowRankState is one rank's position in the benchmark loop.
type flowRankState struct {
	phase     uint8 // 0 skew spin, 1 in reduce, 2 catch-up spin, 3 in barrier
	iter      int32
	callStart sim.Time
}

// flowDriver advances every rank through Iters benchmark iterations.
// Spin segments are modeled by a flow.Spinner (the flow image of
// SpinInterruptible), and the interrupt delta it reports is exactly
// what the packet path's elapsed-minus-delays accounting captures.
type flowDriver struct {
	fc      *coll.FlowColl
	m       *flow.Machine
	sp      *flow.Spinner
	skews   [][]sim.Time
	catchup sim.Time
	ab      bool
	iters   int
	rk      []flowRankState
	cpu     []sim.Time
	// fin is per-rank (not a shared counter) so concurrent LP windows
	// never write the same word; the driver counts it after the drain.
	fin []bool
}

func (d *flowDriver) startIter(r int, t sim.Time) {
	st := &d.rk[r]
	st.phase = 0
	d.sp.Start(r, t, d.skews[st.iter][r])
}

// spinDone receives settled spins: the skew spin flows into the
// reduction, the catch-up spin into the barrier. Interrupt time that
// landed inside a spin is CPU the benchmark's subtraction cannot
// remove, so it accrues to the rank's measured utilization.
func (d *flowDriver) spinDone(r int, at, intr sim.Time) {
	st := &d.rk[r]
	d.cpu[r] += intr
	switch st.phase {
	case 0:
		st.phase = 1
		st.callStart = at
		d.fc.Reduce(r, at, d.ab, uint64(st.iter))
	case 2:
		st.phase = 3
		d.fc.Barrier(r, at, uint64(st.iter))
	default:
		panic(fmt.Sprintf("bench: flow rank %d woke in phase %d", r, st.phase))
	}
}

// opDone receives blocking-call completions from the collective engine.
func (d *flowDriver) opDone(r int, t sim.Time) {
	st := &d.rk[r]
	switch st.phase {
	case 1:
		d.cpu[r] += t - st.callStart
		st.phase = 2
		d.sp.Start(r, t, d.catchup)
	case 3:
		st.iter++
		if int(st.iter) < d.iters {
			d.startIter(r, t)
		} else {
			d.fin[r] = true
		}
	default:
		panic(fmt.Sprintf("bench: flow rank %d completed an op in phase %d", r, st.phase))
	}
}
