package bench

import (
	"strings"
	"testing"
	"time"

	"abred/internal/cluster"
	"abred/internal/fault"
)

// renderSubset renders a figure subset that revisits the same cluster
// shapes many times — exactly the access pattern the reuse pool serves.
func renderSubset(o Opts) string {
	var out string
	for _, tab := range []*Table{
		Fig7(o),
		ScaleProjection([]int{8, 16}, 200*time.Microsecond, 4, o),
	} {
		var b strings.Builder
		tab.Write(&b)
		tab.WriteCSV(&b)
		out += b.String()
	}
	return out
}

// TestReuseDeterminism is the tentpole guarantee at the benchmark level:
// figures produced from pooled, Reset clusters must be byte-identical to
// fresh-build figures — across worker counts, on repeated renders of the
// same warm pool, and under fault injection.
func TestReuseDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		fc   fault.Config
	}{
		{"clean", fault.Config{}},
		{"lossy", fault.Config{Seed: 3, Rule: fault.Rule{Drop: 0.01}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := Opts{Iters: 2, Seed: 7, Workers: 1, Fault: tc.fc}
			want := renderSubset(base) // no pool: build per cell
			for _, workers := range []int{1, 4} {
				pool := cluster.NewPool()
				o := base
				o.Workers = workers
				o.Pool = pool
				if got := renderSubset(o); got != want {
					t.Fatalf("workers=%d: cold-pool output differs from fresh build:\n%s",
						workers, firstDiff(got, want))
				}
				// Second render on the warm pool: every cell reuses.
				if got := renderSubset(o); got != want {
					t.Fatalf("workers=%d: warm-pool output differs from fresh build:\n%s",
						workers, firstDiff(got, want))
				}
				pool.Drain()
			}
		})
	}
}
