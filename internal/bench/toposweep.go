package bench

import (
	"fmt"
	"time"

	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/sweep"
	"abred/internal/topo"
)

// topoJob is cpuJob extended with uplink-contention counters:
// [avg CPU µs, link waits, link wait ms].
func topoJob(name string, cfg Config) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{Name: name, Seed: cfg.Seed, Run: func() ([]float64, uint64) {
		r := CPUUtil(cfg)
		return []float64{us(r.AvgCPU), float64(r.LinkWaits),
			float64(r.LinkWait) / float64(time.Millisecond)}, r.Events
	}}
}

// TopoSweep asks the question the tentpole exists for: does the paper's
// application-bypass advantage survive once the single crossbar is
// replaced by a routed multi-stage fabric where frames pay per-hop
// latency and queue at shared uplinks? Per node count it runs the CPU
// workload five ways — both implementations on the ideal crossbar, both
// on the routed topology, and bypass again with the topology-aware
// reduction tree — and reports the contention the routed runs absorbed.
func TopoSweep(sizes []int, ft topo.Spec, skew sim.Time, count int, o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: fmt.Sprintf("Topology sweep — crossbar vs. %s", ft),
		XName: "nodes",
		Cols: []string{"xbar_nab", "xbar_ab", "xbar_factor",
			"ft_nab", "ft_ab", "ft_factor", "ft_ab_hier", "hier_speedup",
			"ft_waits", "ft_wait_ms"},
		Notes: []string{
			"CPU-utilization workload under skew, crossbar vs. a routed",
			"multi-stage fabric (per-hop latency + uplink queueing).",
			"ft_ab_hier is bypass with the topology-aware tree; the waits",
			"columns count uplink queueing across the row's ft_ab run.",
			"When hosts-per-leaf is a power of two and sizes align, the",
			"binomial tree is already leaf-local and hier_speedup is 1.",
		},
	}
	cells := []struct {
		name string
		mode Mode
		topo topo.Spec
		hier bool
	}{
		{"xbar/nab", NonAppBypass, topo.Spec{}, false},
		{"xbar/ab", AppBypass, topo.Spec{}, false},
		{"ft/nab", NonAppBypass, ft, false},
		{"ft/ab", AppBypass, ft, false},
		{"ft/ab-hier", AppBypass, ft, true},
	}
	var jobs []sweep.Job[[]float64]
	for _, size := range sizes {
		specs := model.PaperCluster(size)
		for _, c := range cells {
			jobs = append(jobs, topoJob(fmt.Sprintf("topo/x=%d/%s", size, c.name),
				Config{Specs: specs, Count: count, Mode: c.mode, MaxSkew: skew,
					Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault,
					Topo: c.topo, TopoAware: c.hier, LPs: o.LPs}))
		}
	}
	return runGrid(t, floats(sizes), jobs, func(cells [][]float64) []float64 {
		xbNab, xbAb := cells[0][0], cells[1][0]
		ftNab, ftAb, ftHier := cells[2][0], cells[3][0], cells[4][0]
		return []float64{xbNab, xbAb, xbNab / xbAb,
			ftNab, ftAb, ftNab / ftAb, ftHier, ftAb / ftHier,
			cells[3][1], cells[3][2]}
	}, o.Workers)
}
