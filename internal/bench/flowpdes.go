package bench

import (
	"fmt"
	"time"

	"abred/internal/cluster"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/stats"
	"abred/internal/sweep"
	"abred/internal/topo"
)

// FlowPDESReps is how many times each cell runs; the minimum wall is
// kept and the CI95 half-width is computed over all repetitions.
const FlowPDESReps = pdesReps

// FlowPDESPoint is one (size, LP count) cell of the parallel flow-engine
// sweep. Each cell runs the same nab+ab pair as the flow scaling sweep,
// so its wall column is directly comparable against the monolithic
// flow_sweep baselines recorded before the engine was sharded.
type FlowPDESPoint struct {
	Nodes    int     `json:"nodes"`
	LPs      int     `json:"lps"`     // requested (clamped to the topology's pods)
	WallMS   float64 `json:"wall_ms"` // min of the repetitions' nab+ab walls
	CI95MS   float64 `json:"ci95_ms"` // 95% half-width over those walls
	NabUS    float64 `json:"nab_us"`
	AbUS     float64 `json:"ab_us"`
	Events   uint64  `json:"events"` // nab+ab total, including protocol messages
	FCTp99US float64 `json:"fct_p99_us"`
}

// FlowPDESSweep measures the LP-partitioned flow engine over the
// sizes × LP-counts grid: per cell, the paper's nab/ab pair on a pooled
// cluster, best of pdesReps repetitions with the Hunold-style CI95
// half-width over the repetition walls. Repetitions double as a
// determinism check — their virtual-time results must be identical.
// Virtual time is NOT required to match across LP counts here: the
// cross-spine grant protocol relaxes rate freshness by up to a window,
// so different LP counts are distinct (each internally deterministic)
// discretizations of the same fluid model.
// FlowPDESFigure is abbench's -fig flowpdes table: the LP-partitioned
// flow engine at one mid-size fat tree over LP counts 1/2/4 — wall
// clock with its CI95 half-width next to the nab/ab virtual-time
// columns the per-LP-count determinism check pins. A routed -topo
// picks the fabric; the default crossbar (which cannot be partitioned)
// is replaced by fattree:16.
func FlowPDESFigure(o Opts) *Table {
	o = o.withDefaults()
	ft := o.Topo
	if ft.Kind == topo.Crossbar {
		ft = topo.Spec{Kind: topo.FatTree, K: 16}
	}
	const nodes = 4096
	iters := o.Iters/40 + 1 // flow cells run 3 reps each; scale down abbench's default
	t0 := time.Now()
	points := FlowPDESSweep([]int{nodes}, ft, sim.Time(time.Millisecond), 4, iters, o.Seed,
		[]int{1, 2, 4})
	t := &Table{
		Title: fmt.Sprintf("Parallel flow engine — %d nodes on %s, %d iters, min of %d reps",
			nodes, ft, iters, FlowPDESReps),
		XName: "lps",
		Cols:  []string{"wall_ms", "ci95_ms", "nab_us", "ab_us", "factor", "fct_p99_us"},
		Notes: []string{
			"The max-min substrate sharded along pod boundaries under the",
			"conservative parallel kernel; nab/ab/fct columns are virtual",
			"time and identical across repetitions at every LP count.",
		},
	}
	var events uint64
	for _, p := range points {
		t.X = append(t.X, float64(p.LPs))
		factor := 0.0
		if p.AbUS > 0 {
			factor = p.NabUS / p.AbUS
		}
		t.Rows = append(t.Rows, []float64{p.WallMS, p.CI95MS, p.NabUS, p.AbUS, factor, p.FCTp99US})
		events += p.Events
	}
	wall := time.Since(t0)
	t.Perf = sweep.Perf{Name: "flowpdes", Jobs: 2 * FlowPDESReps * len(points), Workers: 1,
		Wall: wall, JobWall: wall, Events: events}
	return t
}

func FlowPDESSweep(sizes []int, ft topo.Spec, maxSkew sim.Time, count, iters int, seed int64, lps []int) []FlowPDESPoint {
	points := make([]FlowPDESPoint, 0, len(sizes)*len(lps))
	for _, n := range sizes {
		specs := model.PaperCluster(n)
		for _, l := range lps {
			mk := func(pool *cluster.Pool, mode Mode, topoAware bool) Config {
				return Config{Specs: specs, Count: count, Mode: mode, MaxSkew: maxSkew,
					Iters: iters, Seed: seed, Topo: ft, TopoAware: topoAware,
					Engine: cluster.EngineFlow, LPs: l, Pool: pool}
			}
			var pt FlowPDESPoint
			walls := make([]time.Duration, 0, pdesReps)
			for rep := 0; rep < pdesReps; rep++ {
				pool := cluster.NewPool()
				t0 := time.Now()
				nab := CPUUtil(mk(pool, NonAppBypass, false))
				ab := CPUUtil(mk(pool, AppBypass, true))
				walls = append(walls, time.Since(t0))
				pool.Drain()
				got := FlowPDESPoint{Nodes: n, LPs: l,
					NabUS:    us(nab.AvgCPU),
					AbUS:     us(ab.AvgCPU),
					Events:   nab.Events + ab.Events,
					FCTp99US: us(ab.FCT.P99),
				}
				if rep == 0 {
					pt = got
					continue
				}
				if got != pt {
					panic(fmt.Sprintf("bench: flow n=%d lps=%d rep %d diverged: %+v vs %+v",
						n, l, rep, got, pt))
				}
			}
			s := stats.Summarize(walls)
			pt.WallMS = float64(s.Min) / float64(time.Millisecond)
			pt.CI95MS = float64(s.CI95) / float64(time.Millisecond)
			points = append(points, pt)
		}
	}
	return points
}
