package bench

// These tests assert the qualitative results of the paper's evaluation
// (§VI) — the reproduction's success criteria from DESIGN.md. They use
// reduced iteration counts; the full-resolution sweeps live in
// cmd/abbench.

import (
	"testing"
	"time"

	"abred/internal/model"
	"abred/internal/sim"
)

const (
	mus        = time.Microsecond
	shapeIters = 40
	shapeSeed  = 20030701
)

func cpu(t *testing.T, mode Mode, size, count int, skew sim.Time) CPUUtilResult {
	t.Helper()
	return CPUUtil(Config{
		Specs: model.PaperCluster(size), Count: count, Mode: mode,
		MaxSkew: skew, Iters: shapeIters, Seed: shapeSeed,
	})
}

func lat(t *testing.T, mode Mode, size, count int) LatencyResult {
	t.Helper()
	return Latency(Config{
		Specs: model.PaperCluster(size), Count: count, Mode: mode,
		Iters: shapeIters, Seed: shapeSeed,
	})
}

// TestFig6Shape: under skew, nab CPU grows roughly linearly while ab
// stays nearly flat; the factor of improvement at 1000 µs / 4 elements
// is about 5 (paper: 5.1).
func TestFig6Shape(t *testing.T) {
	nab0 := cpu(t, NonAppBypass, 32, 4, 0)
	nab500 := cpu(t, NonAppBypass, 32, 4, 500*mus)
	nab1000 := cpu(t, NonAppBypass, 32, 4, 1000*mus)
	ab0 := cpu(t, AppBypass, 32, 4, 0)
	ab1000 := cpu(t, AppBypass, 32, 4, 1000*mus)

	if !(nab0.AvgCPU < nab500.AvgCPU && nab500.AvgCPU < nab1000.AvgCPU) {
		t.Errorf("nab CPU not increasing with skew: %v %v %v", nab0.AvgCPU, nab500.AvgCPU, nab1000.AvgCPU)
	}
	// nab should grow by hundreds of percent; ab by far less in
	// absolute terms (the paper's "nearly flat").
	nabGrowth := nab1000.AvgCPU - nab0.AvgCPU
	abGrowth := ab1000.AvgCPU - ab0.AvgCPU
	if abGrowth*5 > nabGrowth {
		t.Errorf("ab grew %v vs nab %v; ab must stay comparatively flat", abGrowth, nabGrowth)
	}
	factor := float64(nab1000.AvgCPU) / float64(ab1000.AvgCPU)
	if factor < 3.5 || factor > 7.5 {
		t.Errorf("factor at 1000µs/4elem = %.2f, want ≈5 (paper: 5.1)", factor)
	}
}

// TestFig6MessageSizeOrdering: the factor of improvement is greatest
// for small messages (paper §VI-A).
func TestFig6MessageSizeOrdering(t *testing.T) {
	factors := map[int]float64{}
	for _, count := range []int{4, 128} {
		nab := cpu(t, NonAppBypass, 32, count, 1000*mus)
		ab := cpu(t, AppBypass, 32, count, 1000*mus)
		factors[count] = float64(nab.AvgCPU) / float64(ab.AvgCPU)
	}
	if factors[4] <= factors[128] {
		t.Errorf("factor(4 elem)=%.2f must exceed factor(128 elem)=%.2f", factors[4], factors[128])
	}
}

// TestFig7Shape: the factor of improvement increases with system size
// (the paper's scalability claim).
func TestFig7Shape(t *testing.T) {
	factor := func(size int) float64 {
		nab := cpu(t, NonAppBypass, size, 4, 1000*mus)
		ab := cpu(t, AppBypass, size, 4, 1000*mus)
		return float64(nab.AvgCPU) / float64(ab.AvgCPU)
	}
	f4, f16, f32 := factor(4), factor(16), factor(32)
	if !(f4 < f16 && f16 < f32) {
		t.Errorf("factor must grow with nodes: f4=%.2f f16=%.2f f32=%.2f", f4, f16, f32)
	}
	if f32 < 3.5 {
		t.Errorf("factor at 32 nodes = %.2f, want ≈5", f32)
	}
}

// TestFig8Shape: without artificial skew, natural skew grows with
// system size; ab crosses above nab earlier for larger messages and
// wins at 32 nodes / 128 elements (paper: factor 1.5).
func TestFig8Shape(t *testing.T) {
	factor := func(size, count int) float64 {
		nab := cpu(t, NonAppBypass, size, count, 0)
		ab := cpu(t, AppBypass, size, count, 0)
		return float64(nab.AvgCPU) / float64(ab.AvgCPU)
	}
	f4small, f32small := factor(4, 4), factor(32, 4)
	f4big, f32big := factor(4, 128), factor(32, 128)
	if f32small <= f4small {
		t.Errorf("4-elem factor must grow with nodes: %.2f -> %.2f", f4small, f32small)
	}
	if f32big <= f4big {
		t.Errorf("128-elem factor must grow with nodes: %.2f -> %.2f", f4big, f32big)
	}
	if f32big < 1.0 {
		t.Errorf("ab must win at 32 nodes/128 elems: factor %.2f (paper: 1.5)", f32big)
	}
	if f32big <= f32small {
		t.Errorf("larger messages must cross earlier: 128-elem %.2f vs 4-elem %.2f at 32", f32big, f32small)
	}
	// Small clusters, small messages: ab pays its overhead (paper
	// Fig. 8b starts below 1).
	if f4small >= 1.0 {
		t.Errorf("ab should lose on 4 quiet nodes: factor %.2f", f4small)
	}
}

// TestFig9Shape: latency near-identical at small sizes, and past 4
// nodes ab pays a signal penalty.
func TestFig9Shape(t *testing.T) {
	for _, size := range []int{2, 4} {
		nab := lat(t, NonAppBypass, size, 1)
		ab := lat(t, AppBypass, size, 1)
		gap := float64(ab.AvgLatency-nab.AvgLatency) / float64(mus)
		if gap > 15 {
			t.Errorf("%d nodes: ab latency penalty %0.1fµs too large for a small system", size, gap)
		}
	}
	nab32 := lat(t, NonAppBypass, 32, 1)
	ab32 := lat(t, AppBypass, 32, 1)
	gap := ab32.AvgLatency - nab32.AvgLatency
	if gap < 10*mus || gap > 60*mus {
		t.Errorf("32 nodes: ab-nab gap = %v, want a clear signal-overhead penalty (10–60µs)", gap)
	}
	if nab32.AvgLatency <= lat(t, NonAppBypass, 8, 1).AvgLatency {
		t.Error("latency must grow with system size")
	}
}

// TestFig9Homogeneous: on the homogeneous 700 MHz cluster small systems
// are nearly identical (paper Fig. 9b).
func TestFig9Homogeneous(t *testing.T) {
	nab := Latency(Config{Specs: model.Homogeneous700(4), Count: 1, Mode: NonAppBypass, Iters: shapeIters, Seed: shapeSeed})
	ab := Latency(Config{Specs: model.Homogeneous700(4), Count: 1, Mode: AppBypass, Iters: shapeIters, Seed: shapeSeed})
	diff := ab.AvgLatency - nab.AvgLatency
	if diff < 0 {
		diff = -diff
	}
	if diff > 20*mus {
		t.Errorf("homogeneous 4 nodes: |ab-nab| = %v, want near-identical", diff)
	}
}

// TestFig10Shape: the ab latency penalty stays roughly constant as the
// message grows (paper: "stabilizes and remains fairly constant").
func TestFig10Shape(t *testing.T) {
	gapAt := func(count int) sim.Time {
		nab := lat(t, NonAppBypass, 32, count)
		ab := lat(t, AppBypass, 32, count)
		return ab.AvgLatency - nab.AvgLatency
	}
	g1, g64, g128 := gapAt(1), gapAt(64), gapAt(128)
	for _, g := range []sim.Time{g1, g64, g128} {
		if g <= 0 {
			t.Fatalf("expected a positive ab penalty, got %v/%v/%v", g1, g64, g128)
		}
	}
	// Constant-ish: the largest gap within 2.5x of the smallest.
	lo, hi := g1, g1
	for _, g := range []sim.Time{g64, g128} {
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	if float64(hi) > 2.5*float64(lo) {
		t.Errorf("gap not stable across message sizes: %v %v %v", g1, g64, g128)
	}
	// And latency itself must grow with message size.
	if lat(t, NonAppBypass, 32, 128).AvgLatency <= lat(t, NonAppBypass, 32, 1).AvgLatency {
		t.Error("latency must grow with message size")
	}
}

// TestScaleProjectionExtends: past the paper's 32 nodes the factor
// keeps growing (its §VII scalability expectation).
func TestScaleProjectionExtends(t *testing.T) {
	tab := ScaleProjection([]int{32, 64}, 1000*mus, 4, Opts{Iters: 25, Seed: shapeSeed})
	f32 := tab.Rows[0][2]
	f64 := tab.Rows[1][2]
	if f64 <= f32 {
		t.Errorf("factor at 64 nodes (%.2f) should exceed 32 nodes (%.2f)", f64, f32)
	}
}

// TestDelayAblationReducesSignals: the §IV-E heuristic trades in-call
// time for fewer signals.
func TestDelayAblationReducesSignals(t *testing.T) {
	tab := AblationDelay(16, 4, 100*mus, Opts{Iters: 30, Seed: shapeSeed})
	first := tab.Rows[0][1] // signals at zero delay
	last := tab.Rows[len(tab.Rows)-1][1]
	if last >= first {
		t.Errorf("long exit delay should reduce signals: %v -> %v", first, last)
	}
}

// TestCPUUtilDeterministic: the whole benchmark is reproducible.
func TestCPUUtilDeterministic(t *testing.T) {
	a := cpu(t, AppBypass, 8, 4, 300*mus)
	b := cpu(t, AppBypass, 8, 4, 300*mus)
	if a.AvgCPU != b.AvgCPU || a.Signals != b.Signals {
		t.Errorf("benchmark not deterministic: %v/%d vs %v/%d", a.AvgCPU, a.Signals, b.AvgCPU, b.Signals)
	}
	c := CPUUtil(Config{Specs: model.PaperCluster(8), Count: 4, Mode: AppBypass,
		MaxSkew: 300 * mus, Iters: shapeIters, Seed: 999})
	if c.AvgCPU == a.AvgCPU {
		t.Error("different seeds produced identical averages (suspicious)")
	}
}

// TestLatencySingleNodeAndOneWay sanity-checks the measurement method.
func TestLatencySingleNode(t *testing.T) {
	r := Latency(Config{Specs: model.Uniform(1), Count: 1, Mode: NonAppBypass, Iters: 5, Seed: 1})
	if r.AvgLatency < 0 {
		t.Errorf("negative latency %v", r.AvgLatency)
	}
	if r.OneWay != 0 {
		t.Errorf("single node cannot have a one-way latency, got %v", r.OneWay)
	}
}

// TestNICReduceCompetitive: the NIC extension beats the default under
// skew for small messages (host fully bypassed).
func TestNICReduceUnderSkew(t *testing.T) {
	nab := cpu(t, NonAppBypass, 16, 4, 800*mus)
	nic := cpu(t, NICBased, 16, 4, 800*mus)
	if float64(nab.AvgCPU)/float64(nic.AvgCPU) < 2 {
		t.Errorf("NIC-based reduction should clearly beat default under skew: nab=%v nic=%v", nab.AvgCPU, nic.AvgCPU)
	}
}

// TestTableRendering checks both output formats.
func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title: "test", XName: "x", Cols: []string{"a", "b"},
		X:     []float64{1, 2},
		Rows:  [][]float64{{1.5, 2.5}, {3, 4}},
		Notes: []string{"note"},
	}
	var txt, csv sbuf
	tab.Write(&txt)
	tab.WriteCSV(&csv)
	if len(txt.s) == 0 || len(csv.s) == 0 {
		t.Fatal("empty rendering")
	}
	if got := string(csv.s); got[0] != '#' {
		t.Errorf("csv missing title comment: %q", got)
	}
}

type sbuf struct{ s []byte }

func (b *sbuf) Write(p []byte) (int, error) {
	b.s = append(b.s, p...)
	return len(p), nil
}
