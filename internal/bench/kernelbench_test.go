package bench

import (
	"testing"
	"time"

	"abred/internal/model"
)

// TestKernelMicrobench: the harness reports coherent numbers and the
// workload is deterministic in virtual terms (same event count per run).
func TestKernelMicrobench(t *testing.T) {
	a := KernelMicrobench(AppBypass, 5, 20030701)
	b := KernelMicrobench(AppBypass, 5, 20030701)
	if a.Events == 0 || a.EventsPerSec <= 0 {
		t.Fatalf("empty measurement: %+v", a)
	}
	if a.Events != b.Events {
		t.Errorf("event count not deterministic: %d vs %d", a.Events, b.Events)
	}
	if a.Mode != "ab" {
		t.Errorf("mode = %q, want ab", a.Mode)
	}
}

// BenchmarkKernelEventsPerSec is the committed kernel throughput
// benchmark: simulated events per wall-clock second on the Fig. 6
// 32-node workload. Compare against BaselineEventsPerSec (the
// pre-overhaul kernel) when touching kernel hot paths.
func BenchmarkKernelEventsPerSec(b *testing.B) {
	cfg := Config{Specs: model.PaperCluster32(), Count: 4, Mode: AppBypass,
		MaxSkew: time.Millisecond, Iters: 10, Seed: 20030701}
	CPUUtil(cfg) // warm pools before the timer starts
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := CPUUtil(cfg)
		events += r.Events
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
	if b.N > 0 {
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
	}
}
