package bench

import (
	"fmt"
	"time"

	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// PDESPoint is one cell of the parallel-kernel speedup sweep: the same
// simulation (size, topology, seed) run under a given logical-process
// count.
type PDESPoint struct {
	LPs      int     `json:"lps"`        // requested LP count (clamped to the topology's pods)
	WallMS   float64 `json:"wall_ms"`    // real time for the run
	Events   uint64  `json:"events"`     // simulated events executed, summed over LP kernels
	AvgCPUus float64 `json:"avg_cpu_us"` // benchmark result, pinning per-LPs determinism
	Signals  uint64  `json:"signals"`
}

// pdesReps runs each LP count this many times, keeping the minimum wall
// clock — the standard noise-robust estimator for wall benchmarks
// (anything above the minimum is interference, not the program).
const pdesReps = 3

// PDESSweep measures the conservative-PDES speedup on one large routed
// configuration: the CPU-utilization benchmark at each requested LP
// count, run back to back, one simulation at a time — each partitioned
// run uses up to LPs cores itself, so the outer sweep must not compete
// with it. Per LP count the best of pdesReps repetitions is reported,
// and the repetitions double as a determinism check: their virtual-time
// results must be identical.
func PDESSweep(size int, ft topo.Spec, skew sim.Time, count, iters int, seed int64, lps []int) []PDESPoint {
	points := make([]PDESPoint, 0, len(lps))
	for _, n := range lps {
		cfg := Config{
			Specs:   model.PaperCluster(size),
			Count:   count,
			Mode:    AppBypass,
			MaxSkew: skew,
			Iters:   iters,
			Seed:    seed,
			Topo:    ft,
			LPs:     n,
		}
		var pt PDESPoint
		for rep := 0; rep < pdesReps; rep++ {
			t0 := time.Now()
			r := CPUUtil(cfg)
			wall := float64(time.Since(t0)) / float64(time.Millisecond)
			got := PDESPoint{LPs: n, WallMS: wall, Events: r.Events,
				AvgCPUus: us(r.AvgCPU), Signals: r.Signals}
			if rep == 0 {
				pt = got
				continue
			}
			if got.Events != pt.Events || got.AvgCPUus != pt.AvgCPUus || got.Signals != pt.Signals {
				panic(fmt.Sprintf("bench: lps=%d rep %d diverged: %+v vs %+v", n, rep, got, pt))
			}
			if wall < pt.WallMS {
				pt.WallMS = wall
			}
		}
		points = append(points, pt)
	}
	return points
}
