package bench

import (
	"fmt"
	"time"

	"abred/internal/cluster"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/sweep"
	"abred/internal/topo"
	"abred/internal/workload"
)

// TenancyPoint is one (job count, oversubscription, placement) cell of
// the multi-tenant sweep: per-job JCT percentiles with confidence
// half-widths, reduction-CPU means for both reduction implementations,
// and the AB-vs-binomial advantage under that contention level.
type TenancyPoint struct {
	Jobs      int     `json:"jobs"`
	Oversub   int     `json:"oversub"`
	Place     string  `json:"place"`
	JCTp50US  float64 `json:"jct_p50_us"`
	JCTp95US  float64 `json:"jct_p95_us"`
	JCTCI95US float64 `json:"jct_ci95_us"`
	NabCPUUS  float64 `json:"nab_cpu_us"`
	AbCPUUS   float64 `json:"ab_cpu_us"`
	Factor    float64 `json:"factor"` // nab/ab reduction-CPU advantage
	Makespan  float64 `json:"makespan_us"`
	Events    uint64  `json:"events"`
}

// tenancyJob wraps one full multi-tenant run as a sweep job. Its value
// is [mean reduction-CPU µs, JCT p50 µs, JCT p95 µs, JCT CI95 µs].
func tenancyJob(name string, cfg workload.TenancyConfig) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{Name: name, Seed: cfg.Seed, Run: func() ([]float64, uint64) {
		r := workload.Tenancy(cfg)
		return []float64{
			float64(r.CPU.Mean) / float64(time.Microsecond),
			float64(r.JCT.P50) / float64(time.Microsecond),
			float64(r.JCT.P95) / float64(time.Microsecond),
			float64(r.JCT.CI95) / float64(time.Microsecond),
		}, r.Events
	}}
}

// TenancyFigure is abbench's -fig tenancy table: JCT and reduction-CPU
// versus concurrent-job count on one oversubscribed fabric, random
// scatter against greedy locality packing. A routed -topo picks the
// fabric (its oversubscription kept, defaulting to 8:1); with the
// default crossbar the figure runs 64 nodes on fattree:16 at 8:1.
func TenancyFigure(o Opts) *Table {
	o = o.withDefaults()
	ft := o.Topo
	if ft.Kind == topo.Crossbar {
		ft = topo.Spec{Kind: topo.FatTree, K: 16}
	}
	if ft.Oversub == 0 {
		ft.Oversub = 8
	}
	const nodes = 64
	jobCounts := []int{2, 4, 8}
	places := []workload.Placement{workload.RandomPlacement{}, workload.GreedyPlacement{}}
	t := &Table{
		Title: fmt.Sprintf("Tenancy — concurrent jobs on %d nodes, %s", nodes, ft),
		XName: "jobs",
		Cols: []string{"rand_nab", "rand_ab", "rand_factor", "rand_jct_p50",
			"grdy_nab", "grdy_ab", "grdy_factor", "grdy_jct_p50", "grdy_jct_ci95"},
		Notes: []string{
			"Poisson arrivals; every job reduces on its own sub-communicator",
			"while sharing the oversubscribed fabric. nab/ab columns are the",
			"mean per-node reduction CPU (µs); jct columns are per-job",
			"completion-time percentiles (µs) from the ab runs.",
		},
	}
	var jobs []sweep.Job[[]float64]
	for _, jc := range jobCounts {
		for _, place := range places {
			for _, style := range []workload.Style{workload.StyleDefault, workload.StyleBypass} {
				jobs = append(jobs, tenancyJob(
					fmt.Sprintf("tenancy/j=%d/%s/%s", jc, place.Name(), style),
					workload.TenancyConfig{
						Specs: model.PaperCluster(nodes), Topo: ft, Seed: o.Seed,
						Fault: o.Fault, Jobs: jc, Iters: o.Iters/20 + 2, Count: 256,
						MeanArrival: sim.Time(50 * time.Microsecond),
						Style:       style, Place: place, Pool: o.Pool,
					}))
			}
		}
	}
	return runGrid(t, floats(jobCounts), jobs, func(cells [][]float64) []float64 {
		randNab, randAb := cells[0], cells[1]
		grdyNab, grdyAb := cells[2], cells[3]
		return []float64{randNab[0], randAb[0], randNab[0] / randAb[0], randAb[1],
			grdyNab[0], grdyAb[0], grdyNab[0] / grdyAb[0], grdyAb[1], grdyAb[3]}
	}, o.Workers)
}

// TenancySweep runs the multi-tenant grid: job counts × oversubscription
// ratios × placement policies on one fabric spec, each cell a pair of
// complete tenancy runs (default vs app-bypass reduction) on a shared
// warm cluster. JCT columns come from the app-bypass run — the
// configuration a production scheduler would deploy — while the CPU
// columns compare the two implementations under identical arrivals and
// placements (same seed, same streams).
func TenancySweep(specs []model.NodeSpec, base topo.Spec, jobCounts, oversubs []int,
	places []workload.Placement, meanArrival sim.Time, iters, count int,
	seed int64, workers int) []TenancyPoint {
	var points []TenancyPoint
	for _, o := range oversubs {
		ft := base
		ft.Oversub = o
		pool := cluster.NewPool()
		for _, jobs := range jobCounts {
			for _, place := range places {
				mk := func(style workload.Style) workload.TenancyConfig {
					return workload.TenancyConfig{
						Specs: specs, Topo: ft, Seed: seed,
						Jobs: jobs, MeanArrival: meanArrival,
						Iters: iters, Count: count,
						Style: style, Place: place, Pool: pool,
					}
				}
				var nab, ab workload.TenancyResult
				sweep.Run(fmt.Sprintf("tenancy/j=%d/o=%d/%s", jobs, o, place.Name()),
					[]sweep.Job[int]{
						{Name: "tenancy/nab", Seed: seed, Run: func() (int, uint64) {
							nab = workload.Tenancy(mk(workload.StyleDefault))
							return 0, nab.Events
						}},
						{Name: "tenancy/ab", Seed: seed, Run: func() (int, uint64) {
							ab = workload.Tenancy(mk(workload.StyleBypass))
							return 0, ab.Events
						}},
					}, workers)
				p := TenancyPoint{
					Jobs: jobs, Oversub: o, Place: place.Name(),
					JCTp50US:  float64(ab.JCT.P50) / float64(time.Microsecond),
					JCTp95US:  float64(ab.JCT.P95) / float64(time.Microsecond),
					JCTCI95US: float64(ab.JCT.CI95) / float64(time.Microsecond),
					NabCPUUS:  float64(nab.CPU.Mean) / float64(time.Microsecond),
					AbCPUUS:   float64(ab.CPU.Mean) / float64(time.Microsecond),
					Makespan:  float64(ab.Makespan) / float64(time.Microsecond),
					Events:    nab.Events + ab.Events,
				}
				if p.AbCPUUS > 0 {
					p.Factor = p.NabCPUUS / p.AbCPUUS
				}
				points = append(points, p)
			}
		}
		pool.Drain()
	}
	return points
}
