package bench

import (
	"strings"
	"testing"
	"time"
)

// renderAll regenerates every figure and ablation table at the given
// worker count and renders them (text + CSV) into one string. Sizes and
// iteration counts are reduced; what matters here is that the full set
// of grid shapes runs through the sweep engine.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	o := Opts{Iters: 2, Seed: 7, Workers: workers}
	small := Opts{Iters: 2, Seed: 7, Workers: workers}
	var tabs []*Table
	tabs = append(tabs, Fig6(o), Fig7(o), Fig8(o))
	hetero, homog := Fig9(o)
	tabs = append(tabs, hetero, homog, Fig10(o))
	tabs = append(tabs,
		ScaleProjection([]int{8, 16}, 200*time.Microsecond, 4, small),
		AblationDelay(8, 4, 100*time.Microsecond, small),
		AblationSignalCost(8, 4, 200*time.Microsecond, small),
		AblationHeterogeneity(8, 4, small),
		AblationRendezvousAB(4, 300*time.Microsecond, small),
		AblationNICReduce(8, 200*time.Microsecond, small),
	)
	var b strings.Builder
	for _, tab := range tabs {
		tab.Write(&b)
		tab.WriteCSV(&b)
	}
	return b.String()
}

// TestParallelDeterminism is the sweep engine's core guarantee: every
// figure and ablation table must be byte-identical whether the grid ran
// serially or on an 8-worker pool, and repeated same-seed runs must
// match exactly.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure set in -short mode")
	}
	serial := renderAll(t, 1)
	parallel := renderAll(t, 8)
	if serial != parallel {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			firstDiff(serial, parallel), firstDiff(parallel, serial))
	}
	again := renderAll(t, 8)
	if parallel != again {
		t.Fatal("repeated same-seed parallel runs differ")
	}
}

// firstDiff returns a window around the first byte where a and b differ.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo, hi := i-120, i+120
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}

// TestSweepPerfReported: figure tables carry their sweep's execution
// metrics so callers (cmd/abbench's BENCH_sweep.json) can report
// speedup and event throughput.
func TestSweepPerfReported(t *testing.T) {
	tab := AblationHeterogeneity(4, 4, Opts{Iters: 2, Seed: 3, Workers: 2})
	p := tab.Perf
	if p.Jobs != 4 || p.Workers != 2 {
		t.Errorf("perf jobs/workers = %d/%d, want 4/2", p.Jobs, p.Workers)
	}
	if p.Events == 0 || p.Wall <= 0 || p.JobWall <= 0 {
		t.Errorf("perf not populated: %+v", p)
	}
	// The rendered table must not leak run-dependent perf data.
	var b strings.Builder
	tab.Write(&b)
	tab.WriteCSV(&b)
	if strings.Contains(b.String(), "speedup") || strings.Contains(b.String(), "wall") {
		t.Error("perf metadata leaked into rendered table")
	}
}
