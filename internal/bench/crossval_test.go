package bench

import (
	"fmt"
	"testing"
	"time"

	"abred/internal/cluster"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// Committed flow/packet fidelity band (DESIGN §9): over the pinned
// envelope below, the flow engine's run time agrees with the packet
// engine within 1% and its CPU-utilization metric within 2%. Tighten
// only with evidence across the whole grid; loosening is a fidelity
// regression and needs a DESIGN amendment.
const (
	elapsedBand = 0.01
	cpuBand     = 0.02
)

// crossCase is one point of the cross-validation envelope.
type crossCase struct {
	name string
	size int
	mode Mode
	skew sim.Time
	topo topo.Spec
	ta   bool
}

func crossCases(short bool) []crossCase {
	sizes := []int{32, 256, 2048}
	if !short {
		sizes = append(sizes, 16384)
	}
	ft := topo.Spec{Kind: topo.FatTree, K: 16}
	var cases []crossCase
	for _, n := range sizes {
		cases = append(cases,
			crossCase{fmt.Sprintf("nab/clean/%d", n), n, NonAppBypass, 0, topo.Spec{}, false},
			crossCase{fmt.Sprintf("nab/skew/%d", n), n, NonAppBypass, 500 * time.Microsecond, topo.Spec{}, false},
			crossCase{fmt.Sprintf("ab/clean/%d", n), n, AppBypass, 0, topo.Spec{}, false},
			crossCase{fmt.Sprintf("ab/skew/%d", n), n, AppBypass, 500 * time.Microsecond, topo.Spec{}, false},
			crossCase{fmt.Sprintf("ab/fattree/%d", n), n, AppBypass, 500 * time.Microsecond, ft, true},
		)
	}
	return cases
}

func (cc crossCase) config() Config {
	return Config{
		Specs:     model.Uniform(cc.size),
		Mode:      cc.mode,
		MaxSkew:   cc.skew,
		Iters:     3,
		Seed:      20030701,
		Topo:      cc.topo,
		TopoAware: cc.ta,
	}
}

func relDiff(a, b sim.Time) float64 {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	m := float64(a)
	if float64(b) > m {
		m = float64(b)
	}
	if m == 0 {
		return 0
	}
	return d / m
}

// TestFlowCrossValidation pins the hybrid-fidelity contract: the flow
// engine, run through the same benchmark under the same seed, lands
// within the committed band of the packet engine across sizes, skews,
// both reduction modes, and a routed fat-tree.
func TestFlowCrossValidation(t *testing.T) {
	for _, cc := range crossCases(testing.Short()) {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			cfg := cc.config()
			p := CPUUtil(cfg)
			cfg.Engine = cluster.EngineFlow
			f := CPUUtil(cfg)
			if d := relDiff(p.Elapsed, f.Elapsed); d > elapsedBand {
				t.Errorf("elapsed diverged %.2f%% (band %.0f%%): packet %v, flow %v",
					d*100, elapsedBand*100, p.Elapsed, f.Elapsed)
			}
			if d := relDiff(p.AvgCPU, f.AvgCPU); d > cpuBand {
				t.Errorf("avg CPU diverged %.2f%% (band %.0f%%): packet %v, flow %v",
					d*100, cpuBand*100, p.AvgCPU, f.AvgCPU)
			}
			if f.Events >= p.Events && cc.size >= 256 {
				t.Errorf("flow engine executed %d events, packet %d: no simulation-cost win", f.Events, p.Events)
			}
			t.Logf("packet cpu=%v elapsed=%v sig=%d ev=%d | flow cpu=%v elapsed=%v sig=%d ev=%d",
				p.AvgCPU, p.Elapsed, p.Signals, p.Events, f.AvgCPU, f.Elapsed, f.Signals, f.Events)
		})
	}
}

// TestFlowDeterminism pins that a flow run is a pure function of its
// seed regardless of how the cluster was obtained: fresh build, Reset
// reuse, and pool reuse must be byte-identical.
func TestFlowDeterminism(t *testing.T) {
	base := Config{
		Specs:   model.Uniform(512),
		Mode:    AppBypass,
		MaxSkew: 500 * time.Microsecond,
		Iters:   3,
		Seed:    7,
		Topo:    topo.Spec{Kind: topo.FatTree, K: 16},
		Engine:  cluster.EngineFlow,
	}
	fresh := CPUUtil(base)

	// Reset reuse: run twice on one pooled cluster; the pool Resets it
	// between runs.
	pool := cluster.NewPool()
	defer pool.Drain()
	cfg := base
	cfg.Pool = pool
	first := CPUUtil(cfg)
	second := CPUUtil(cfg)

	for name, got := range map[string]CPUUtilResult{"pool-fresh": first, "pool-reset": second} {
		if got.AvgCPU != fresh.AvgCPU || got.Elapsed != fresh.Elapsed || got.Signals != fresh.Signals {
			t.Errorf("%s run diverged from fresh: cpu %v vs %v, elapsed %v vs %v, signals %d vs %d",
				name, got.AvgCPU, fresh.AvgCPU, got.Elapsed, fresh.Elapsed, got.Signals, fresh.Signals)
		}
		for r := range fresh.PerNode {
			if got.PerNode[r] != fresh.PerNode[r] {
				t.Fatalf("%s run diverged from fresh at rank %d: %v vs %v", name, r, got.PerNode[r], fresh.PerNode[r])
			}
		}
	}
}
