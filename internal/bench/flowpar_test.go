package bench

import (
	"fmt"
	"testing"

	"abred/internal/cluster"
	"abred/internal/model"
	"abred/internal/topo"
)

// flowParConfig is the shared shape of the parallel-flow tests: the
// same 512-node cluster the engine fingerprints pin.
func flowParConfig(spec topo.Spec, mode Mode, lps int) Config {
	cfg := Config{
		Specs:   model.PaperCluster(512),
		Count:   4,
		Mode:    mode,
		MaxSkew: 50000,
		Iters:   10,
		Seed:    20030701,
		Topo:    spec,
		Engine:  cluster.EngineFlow,
		LPs:     lps,
	}
	if mode == AppBypass {
		cfg.TopoAware = true
	}
	return cfg
}

func flowFingerprint(r CPUUtilResult) string {
	return fmt.Sprintf("elapsed=%d avgcpu=%d signals=%d events=%d fctp50=%d fctp99=%d waits=%d wait=%d",
		r.Elapsed, r.AvgCPU, r.Signals, r.Events, r.FCT.P50, r.FCT.P99, r.LinkWaits, r.LinkWait)
}

// TestFlowGoldenFingerprints pins the monolithic flow engine's exact
// output across the LP-partitioning refactor and the heap water-fill:
// the constants were captured from the pre-refactor engine, and any
// drift in solver order, route splitting or accounting shows up here
// before it can silently move a committed benchmark.
func TestFlowGoldenFingerprints(t *testing.T) {
	golden := []struct {
		name string
		spec topo.Spec
		mode Mode
		want string
	}{
		{"crossbar/nab", topo.Spec{}, NonAppBypass,
			"elapsed=7414847 avgcpu=17624 signals=0 events=40900 fctp50=996 fctp99=1120 waits=48 wait=5990"},
		{"crossbar/ab", topo.Spec{}, AppBypass,
			"elapsed=8861738 avgcpu=12894 signals=3725 events=46698 fctp50=996 fctp99=1120 waits=40 wait=5482"},
		{"fattree/nab", topo.Spec{Kind: topo.FatTree, K: 16}, NonAppBypass,
			"elapsed=7701448 avgcpu=18027 signals=0 events=40900 fctp50=996 fctp99=4196 waits=44 wait=5332"},
		{"fattree/ab", topo.Spec{Kind: topo.FatTree, K: 16}, AppBypass,
			"elapsed=9145767 avgcpu=12949 signals=3726 events=46699 fctp50=996 fctp99=4196 waits=44 wait=5952"},
		{"leafspine/nab", topo.Spec{Kind: topo.LeafSpine, K: 32}, NonAppBypass,
			"elapsed=7542598 avgcpu=17713 signals=0 events=40900 fctp50=996 fctp99=2596 waits=48 wait=5990"},
		{"leafspine/ab", topo.Spec{Kind: topo.LeafSpine, K: 32}, AppBypass,
			"elapsed=8981343 avgcpu=12916 signals=3725 events=46698 fctp50=996 fctp99=2596 waits=42 wait=5594"},
	}
	for _, g := range golden {
		g := g
		t.Run(g.name, func(t *testing.T) {
			if got := flowFingerprint(CPUUtil(flowParConfig(g.spec, g.mode, 1))); got != g.want {
				t.Errorf("monolithic fingerprint drifted:\n got %s\nwant %s", got, g.want)
			}
		})
	}
}

// TestFlowLPsDeterministic pins the partitioned flow engine's
// reproducibility: for every topology and LP count, a fresh build, a
// second fresh build, a Reset reuse and a warm-pool run must produce
// identical output.
func TestFlowLPsDeterministic(t *testing.T) {
	topos := []struct {
		name string
		spec topo.Spec
	}{
		{"fattree", topo.Spec{Kind: topo.FatTree, K: 16}},
		{"leafspine", topo.Spec{Kind: topo.LeafSpine, K: 32}},
	}
	for _, tp := range topos {
		for _, lps := range []int{2, 4} {
			tp, lps := tp, lps
			t.Run(fmt.Sprintf("%s/lps%d", tp.name, lps), func(t *testing.T) {
				cfg := flowParConfig(tp.spec, AppBypass, lps)
				fresh := flowFingerprint(CPUUtil(cfg))
				if again := flowFingerprint(CPUUtil(cfg)); again != fresh {
					t.Errorf("fresh rebuild diverged:\n got %s\nwant %s", again, fresh)
				}
				pool := cluster.NewPool()
				defer pool.Drain()
				pcfg := cfg
				pcfg.Pool = pool
				if cold := flowFingerprint(CPUUtil(pcfg)); cold != fresh {
					t.Errorf("pooled (cold) run diverged:\n got %s\nwant %s", cold, fresh)
				}
				// Second acquire hits the warmed cluster via Reset.
				if warm := flowFingerprint(CPUUtil(pcfg)); warm != fresh {
					t.Errorf("pooled (warm Reset) run diverged:\n got %s\nwant %s", warm, fresh)
				}
			})
		}
	}
}

// TestFlowLPsCrossbarClamps pins the clamp: a crossbar has one pod, so
// -engine flow -lps 4 must run monolithic and reproduce the monolithic
// fingerprint bit for bit.
func TestFlowLPsCrossbarClamps(t *testing.T) {
	mono := flowFingerprint(CPUUtil(flowParConfig(topo.Spec{}, AppBypass, 1)))
	if got := flowFingerprint(CPUUtil(flowParConfig(topo.Spec{}, AppBypass, 4))); got != mono {
		t.Errorf("clamped lps=4 crossbar diverged from monolithic:\n got %s\nwant %s", got, mono)
	}
}
