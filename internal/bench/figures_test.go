package bench

import (
	"strings"
	"testing"
	"time"
)

// tiny keeps the full-sweep structural tests fast; statistical claims
// are covered by shapes_test.go at higher iteration counts.
const tiny = 3

func checkTable(t *testing.T, tab *Table, rows, cols int) {
	t.Helper()
	if tab.Title == "" || tab.XName == "" {
		t.Error("table missing title or x name")
	}
	if len(tab.X) != rows || len(tab.Rows) != rows {
		t.Fatalf("%s: %d rows, want %d", tab.Title, len(tab.Rows), rows)
	}
	if len(tab.Cols) != cols {
		t.Fatalf("%s: %d cols, want %d", tab.Title, len(tab.Cols), cols)
	}
	for i, row := range tab.Rows {
		if len(row) != cols {
			t.Fatalf("%s row %d: %d cells", tab.Title, i, len(row))
		}
		for j, v := range row {
			if v < 0 {
				t.Errorf("%s[%d][%d] = %v < 0", tab.Title, i, j, v)
			}
		}
	}
	var txt strings.Builder
	tab.Write(&txt)
	if !strings.Contains(txt.String(), tab.Cols[0]) {
		t.Error("text rendering missing column header")
	}
	var csv strings.Builder
	tab.WriteCSV(&csv)
	if lines := strings.Count(csv.String(), "\n"); lines != rows+2 {
		t.Errorf("csv has %d lines, want %d", lines, rows+2)
	}
}

func TestFig6Structure(t *testing.T) {
	tab := Fig6(Opts{Iters: tiny, Seed: 1})
	checkTable(t, tab, 11, 9) // 11 skews; nab×3, ab×3, factor×3
	if tab.X[0] != 0 || tab.X[10] != 1000 {
		t.Errorf("skew axis %v", tab.X)
	}
}

func TestFig7Structure(t *testing.T) {
	tab := Fig7(Opts{Iters: tiny, Seed: 1})
	checkTable(t, tab, 5, 9)
	if tab.X[0] != 2 || tab.X[4] != 32 {
		t.Errorf("node axis %v", tab.X)
	}
}

func TestFig8Structure(t *testing.T) {
	checkTable(t, Fig8(Opts{Iters: tiny, Seed: 1}), 5, 9)
}

func TestFig9Structure(t *testing.T) {
	hetero, homog := Fig9(Opts{Iters: tiny, Seed: 1})
	checkTable(t, hetero, 5, 3)
	checkTable(t, homog, 4, 3)
	// Homogeneous sweep stops at the paper's 16 nodes.
	if homog.X[len(homog.X)-1] != 16 {
		t.Errorf("homogeneous axis %v", homog.X)
	}
}

func TestFig10Structure(t *testing.T) {
	tab := Fig10(Opts{Iters: tiny, Seed: 1})
	checkTable(t, tab, 8, 3)
	if tab.X[0] != 1 || tab.X[7] != 128 {
		t.Errorf("element axis %v", tab.X)
	}
}

func TestAblationNICReduceStructure(t *testing.T) {
	tab := AblationNICReduce(8, 200*time.Microsecond, Opts{Iters: tiny, Seed: 1})
	checkTable(t, tab, 3, 4)
}

func TestScaleProjectionStructure(t *testing.T) {
	tab := ScaleProjection([]int{8, 16}, 100*time.Microsecond, 4, Opts{Iters: tiny, Seed: 1})
	checkTable(t, tab, 2, 3)
}

func TestPaperParameterSets(t *testing.T) {
	if n := len(PaperSkews()); n != 11 {
		t.Errorf("%d skews", n)
	}
	if s := PaperSizes(); len(s) != 5 || s[4] != 32 {
		t.Errorf("sizes %v", s)
	}
	if c := PaperCounts(); len(c) != 3 || c[0] != 4 || c[2] != 128 {
		t.Errorf("counts %v", c)
	}
}

func TestModeStrings(t *testing.T) {
	if NonAppBypass.String() != "nab" || AppBypass.String() != "ab" || NICBased.String() != "nic" {
		t.Error("mode names wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	c.defaults()
	if c.Iters == 0 || c.Count == 0 || c.Seed == 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestAblationSignalCostStructure(t *testing.T) {
	tab := AblationSignalCost(8, 4, 200*time.Microsecond, Opts{Iters: tiny, Seed: 1})
	checkTable(t, tab, 5, 3)
	// Cheaper signals must never make ab slower than pricier ones.
	if tab.Rows[0][1] > tab.Rows[len(tab.Rows)-1][1] {
		t.Errorf("ab CPU fell as signals got costlier: %v -> %v",
			tab.Rows[0][1], tab.Rows[len(tab.Rows)-1][1])
	}
}

func TestAblationHeterogeneityStructure(t *testing.T) {
	tab := AblationHeterogeneity(8, 4, Opts{Iters: tiny, Seed: 1})
	checkTable(t, tab, 2, 3)
}

func TestAblationSignalCostFactorMonotone(t *testing.T) {
	tab := AblationSignalCost(16, 4, 800*time.Microsecond, Opts{Iters: 25, Seed: shapeSeed})
	prev := tab.Rows[0][2]
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][2] > prev*1.15 {
			t.Errorf("factor rose sharply with costlier signals: row %d %.2f after %.2f",
				i, tab.Rows[i][2], prev)
		}
		prev = tab.Rows[i][2]
	}
}

func TestAblationRendezvousABStructure(t *testing.T) {
	tab := AblationRendezvousAB(4, 300*time.Microsecond, Opts{Iters: tiny, Seed: 1})
	checkTable(t, tab, 3, 3)
}

// TestRendezvousABWinsUnderSkew: the §V-B extension should beat the
// fallback for skewed large-message reductions (that is its point).
func TestRendezvousABWinsUnderSkew(t *testing.T) {
	tab := AblationRendezvousAB(8, 800*time.Microsecond, Opts{Iters: 12, Seed: shapeSeed})
	for i, row := range tab.Rows {
		if row[2] < 1.1 {
			t.Errorf("row %d (%v elems): rendezvous AB factor %.2f, want > 1.1", i, tab.X[i], row[2])
		}
	}
}
