// Package bench implements the paper's two microbenchmarks (§VI) on the
// simulated cluster, plus the sweep drivers that regenerate every figure
// of the evaluation section.
//
// CPU-utilization benchmark (per the paper): within each iteration a
// node starts its timer, busy-spins a random skew delay in [0, MaxSkew],
// performs the reduction, busy-spins a conservative catch-up delay, and
// stops the timer. Skew and catch-up are subtracted from the elapsed
// time; what remains is the CPU consumed by the reduction — including
// polling inside MPI_Reduce (non-AB) and signal handlers that interrupt
// the delay loops (AB), because the delay spins are interruptible, just
// like the paper's busy loops.
//
// Latency benchmark (per the paper): without skew, timing starts just
// before the node farthest from the root enters the reduction; when the
// root completes it sends a notification to that node, which stops the
// clock and subtracts the one-way latency of the notification message.
package bench

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"abred/internal/cluster"
	"abred/internal/coll"
	"abred/internal/core"
	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
	"abred/internal/stats"
	"abred/internal/topo"
)

// Mode selects the reduction implementation under test.
type Mode int

// Benchmark modes.
const (
	NonAppBypass Mode = iota // default MPICH binomial reduction
	AppBypass                // the paper's application-bypass reduction
	NICBased                 // NIC-based reduction (future-work extension)
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case NonAppBypass:
		return "nab"
	case AppBypass:
		return "ab"
	case NICBased:
		return "nic"
	}
	return "?"
}

// ParseMode parses a mode name as it appears in flags and scenario
// specs — the inverse of String.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "nab":
		return NonAppBypass, nil
	case "ab":
		return AppBypass, nil
	case "nic":
		return NICBased, nil
	}
	return NonAppBypass, fmt.Errorf("unknown mode %q (nab|ab|nic)", s)
}

// Config parameterizes one benchmark run.
type Config struct {
	Specs   []model.NodeSpec
	Count   int // elements per message (double words)
	Mode    Mode
	MaxSkew sim.Time
	Iters   int
	Seed    int64
	Delay   core.DelayPolicy // §IV-E heuristic; nil = no delay
	Root    int
	Costs   *model.Costs // nil = model.DefaultCosts (sensitivity studies)

	// Fault injects fabric faults (and reliable GM delivery); the zero
	// value keeps the fabric perfect.
	Fault fault.Config

	// Topo selects the interconnect; the zero value is the historical
	// single crossbar.
	Topo topo.Spec

	// TopoAware builds a topology-aware reduction tree (coll.TopoTree)
	// and installs it on every engine, so AppBypass clusters children
	// under their leaf switch before crossing uplinks. Ignored on the
	// crossbar (one switch — there is no hierarchy to exploit) and in
	// NonAppBypass mode.
	TopoAware bool

	// RendezvousAB opts the engines into the §V-B large-message bypass
	// extension (AppBypass mode only).
	RendezvousAB bool

	// LPs partitions the simulation into up to LPs logical processes
	// along topology pod boundaries and runs them in parallel (see
	// cluster.Config.LPs). 0 or 1 is the monolithic kernel.
	LPs int

	// Engine selects the simulation engine (cluster.Config.Engine):
	// packet is the default full-fidelity path, flow the large-scale
	// flow-level engine. The flow path refuses knobs it cannot model at
	// committed fidelity (NIC-based reduction, delay policies,
	// rendezvous AB).
	Engine cluster.Engine

	// Pool, when set, sources the simulated cluster from a reuse pool
	// instead of building it from scratch: the cluster is Reset under
	// this config's seed and fault plan (byte-identical to a fresh
	// build, enforced by the determinism tests) and returned to the
	// pool afterwards. Nil preserves the build-per-run behavior.
	Pool *cluster.Pool
}

// acquire returns the cluster to benchmark on and a release function:
// Get/Put against the pool when one is set, New/Close otherwise.
func (c *Config) acquire() (*cluster.Cluster, func()) {
	cc := c.clusterConfig()
	if c.Pool != nil {
		cl := c.Pool.Get(cc)
		return cl, func() { c.Pool.Put(cl) }
	}
	cl := cluster.New(cc)
	return cl, cl.Close
}

// clusterConfig assembles the cluster construction parameters.
func (c *Config) clusterConfig() cluster.Config {
	cc := cluster.Config{Specs: c.Specs, Seed: c.Seed, Fault: c.Fault, Topo: c.Topo, LPs: c.LPs, Engine: c.Engine}
	if c.Costs != nil {
		cc.Costs = *c.Costs
	}
	return cc
}

func (c *Config) defaults() {
	if c.Iters == 0 {
		c.Iters = 200
	}
	if c.Count == 0 {
		c.Count = 4
	}
	if c.Seed == 0 {
		c.Seed = 20030701 // CLUSTER 2003
	}
}

// RelTotals aggregates fault and reliability activity across a whole
// cluster run; all zeros on a perfect fabric.
type RelTotals struct {
	Dropped     uint64 // frames the fault injector discarded
	Duplicated  uint64 // extra copies the fault injector delivered
	Retransmits uint64 // data packets GM resent after a timeout
	AcksSent    uint64 // standalone cumulative acks on the wire
	DupsDropped uint64 // duplicate/out-of-order arrivals GM discarded
	Overflow    uint64 // sends past the retransmit-ring bound
	RetriedMsgs uint64 // retried packets that reached a progress engine
}

// relTotals sums the counters after a run.
func relTotals(cl *cluster.Cluster) RelTotals {
	var t RelTotals
	t.Dropped, t.Duplicated = cl.Fabric.FaultStats()
	for _, n := range cl.Nodes {
		s := n.NIC.Stats()
		t.Retransmits += s.Retransmits
		t.AcksSent += s.RelAcksSent
		t.DupsDropped += s.RelDupsDropped
		t.Overflow += s.RelOverflow
		if n.MPI != nil {
			t.RetriedMsgs += n.MPI.Stats.RetriedMsgs
		}
	}
	return t
}

// CPUUtilResult is one CPU-utilization measurement.
type CPUUtilResult struct {
	AvgCPU  sim.Time // mean over nodes and iterations (the paper's metric)
	PerNode []sim.Time
	Summary stats.Summary
	Signals uint64    // total signals handled across the cluster
	Events  uint64    // simulated events executed (simulation cost)
	Rel     RelTotals // fault/reliability activity (zero on a clean fabric)

	// Uplink contention on a routed topology, zero on the crossbar:
	// link occupancies that queued behind a busy inter-switch link, and
	// the total time so spent. On the flow engine these count flows
	// whose transfer stretched past the uncontended serialization time.
	LinkWaits uint64
	LinkWait  sim.Time

	// Elapsed is the virtual time the whole run took — the quantity the
	// flow/packet cross-validation pins alongside AvgCPU.
	Elapsed sim.Time

	// FCT summarizes the flow-completion-time distribution (flow engine
	// only; zero value on the packet path).
	FCT stats.Summary
}

// CPUUtil runs the CPU-utilization microbenchmark.
func CPUUtil(cfg Config) CPUUtilResult {
	cfg.defaults()
	size := len(cfg.Specs)
	if size < 1 {
		panic("bench: empty cluster")
	}
	if cfg.Engine == cluster.EngineFlow {
		return flowCPUUtil(cfg)
	}
	cl, release := cfg.acquire()
	defer release()

	// Pre-generate per-(iteration, rank) skews so results are
	// independent of execution interleaving. One flat slab, sliced per
	// iteration: 2 allocations instead of Iters+1, same draw order.
	rng := cl.K.NewRNG()
	flat := make([]sim.Time, cfg.Iters*size)
	skews := make([][]sim.Time, cfg.Iters)
	for it := range skews {
		skews[it] = flat[it*size : (it+1)*size]
		if cfg.MaxSkew > 0 {
			for r := range skews[it] {
				skews[it][r] = sim.Time(rng.Int63n(int64(cfg.MaxSkew) + 1))
			}
		}
	}

	// Conservative reduction-latency estimate for the catch-up delay:
	// depth * (per-hop cost) with generous slack, like the paper's
	// "conservative estimate of the maximum reduction latency".
	lat := estimateLatency(size, cfg.Count)
	catchup := cfg.MaxSkew + lat

	perNode := make([]sim.Time, size)
	// Per-rank signal counts, summed after the run: rank closures may
	// execute on different LP goroutines, so a shared accumulator would
	// race under a partitioned kernel.
	sigs := make([]uint64, size)

	// The hierarchy-aware tree is a pure function of (size, root, leaf
	// assignment); built once, shared read-only by every rank.
	var tree *coll.TopoTree
	if cfg.TopoAware && cfg.Mode == AppBypass && cl.Topo.Levels() > 1 {
		tree = coll.NewTopoTree(size, cfg.Root, cl.Topo.Leaf)
	}

	end := cl.Run(func(n *cluster.Node, w *mpi.Comm) {
		if cfg.Mode == AppBypass && cfg.Delay != nil {
			n.Engine.SetDelayPolicy(cfg.Delay)
		}
		if cfg.Mode == AppBypass && cfg.RendezvousAB {
			n.Engine.EnableRendezvousAB()
		}
		if tree != nil {
			n.Engine.SetTopoTree(tree)
		}
		in := make([]byte, cfg.Count*8)
		for i := 0; i < cfg.Count; i++ {
			binary.LittleEndian.PutUint64(in[i*8:], math.Float64bits(float64(n.ID+i)))
		}
		out := make([]byte, cfg.Count*8)

		var cpu sim.Time
		for it := 0; it < cfg.Iters; it++ {
			skew := skews[it][n.ID]
			t0 := n.Proc.Now()
			n.Proc.SpinInterruptible(skew)
			reduceOnce(cfg.Mode, n, w, in, out, cfg.Count, cfg.Root)
			n.Proc.SpinInterruptible(catchup)
			elapsed := n.Proc.Now() - t0
			cpu += elapsed - skew - catchup
			coll.Barrier(w)
		}
		perNode[n.ID] = cpu / sim.Time(cfg.Iters)
		sigs[n.ID] = n.Engine.Metrics.SignalsHandled
	})

	var total sim.Time
	for _, c := range perNode {
		total += c
	}
	var signals uint64
	for _, s := range sigs {
		signals += s
	}
	waits, waitTime := cl.Fabric.TopoStats()
	return CPUUtilResult{
		AvgCPU:    total / sim.Time(size),
		PerNode:   perNode,
		Summary:   stats.Summarize(perNode),
		Signals:   signals,
		Events:    cl.Events(),
		Rel:       relTotals(cl),
		LinkWaits: waits,
		LinkWait:  waitTime,
		Elapsed:   end,
	}
}

// reduceOnce dispatches to the implementation under test.
func reduceOnce(mode Mode, n *cluster.Node, w *mpi.Comm, in, out []byte, count, root int) {
	switch mode {
	case NonAppBypass:
		coll.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, root)
	case AppBypass:
		n.Engine.Reduce(w, in, out, count, mpi.Float64, mpi.OpSum, root)
	case NICBased:
		n.Engine.NICReduce(w, in, out, count, mpi.Float64, mpi.OpSum, root)
	default:
		panic(fmt.Sprintf("bench: unknown mode %d", mode))
	}
}

// estimateLatency returns a deliberately generous bound on reduction
// latency for sizing catch-up delays.
func estimateLatency(size, count int) sim.Time {
	depth := coll.Depth(size)
	if depth == 0 {
		depth = 1
	}
	perHop := 25*time.Microsecond + time.Duration(count)*100*time.Nanosecond
	return sim.Time(depth)*perHop + 150*time.Microsecond
}
