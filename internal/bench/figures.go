package bench

import (
	"time"

	"abred/internal/core"
	"abred/internal/model"
	"abred/internal/sim"
)

// This file regenerates every figure of the paper's evaluation (§VI).
// Each runner sweeps the same parameters the paper swept and returns a
// Table whose columns mirror the figure's series. Iters trades precision
// for run time; the paper used 10,000, which also works here but is not
// needed for stable virtual-time averages.

// us converts to microseconds for table cells.
func us(d sim.Time) float64 { return float64(d) / float64(time.Microsecond) }

// PaperSkews are Fig. 6's x axis: maximum skew 0–1000 µs.
func PaperSkews() []sim.Time {
	var skews []sim.Time
	for s := 0; s <= 1000; s += 100 {
		skews = append(skews, sim.Time(s)*time.Microsecond)
	}
	return skews
}

// PaperSizes are the node counts of Figs. 7–9: 2, 4, 8, 16, 32.
func PaperSizes() []int { return []int{2, 4, 8, 16, 32} }

// PaperCounts are the message sizes of Figs. 6–8 in double words.
func PaperCounts() []int { return []int{4, 32, 128} }

// cpuSeries runs the CPU-utilization benchmark for both implementations
// across message counts, returning nab columns then ab columns.
func cpuSeries(specs []model.NodeSpec, counts []int, skew sim.Time, iters int, seed int64) []float64 {
	row := make([]float64, 0, 2*len(counts))
	for _, mode := range []Mode{NonAppBypass, AppBypass} {
		for _, count := range counts {
			r := CPUUtil(Config{Specs: specs, Count: count, Mode: mode, MaxSkew: skew, Iters: iters, Seed: seed})
			row = append(row, us(r.AvgCPU))
		}
	}
	return row
}

// factorCols appends nab/ab improvement-factor columns to rows produced
// by cpuSeries.
func factorCols(row []float64, counts int) []float64 {
	for j := 0; j < counts; j++ {
		row = append(row, row[j]/row[counts+j])
	}
	return row
}

// seriesCols builds the column names for cpuSeries+factorCols output.
func seriesCols(counts []int) []string {
	var cols []string
	for _, prefix := range []string{"nab-", "ab-"} {
		for _, c := range counts {
			cols = append(cols, prefix+trimFloat(float64(c)))
		}
	}
	for _, c := range counts {
		cols = append(cols, "factor-"+trimFloat(float64(c)))
	}
	return cols
}

// Fig6 regenerates Fig. 6: average CPU utilization (a) and factor of
// improvement (b) for 32 nodes under varying maximum skew, with 4-, 32-
// and 128-element double-word messages.
func Fig6(iters int, seed int64) *Table {
	counts := PaperCounts()
	t := &Table{
		Title: "Fig. 6 — CPU utilization vs. max skew (32 nodes, heterogeneous)",
		XName: "skew_us",
		Cols:  seriesCols(counts),
		Notes: []string{
			"Paper: nab grows ~linearly with skew, ab stays nearly flat;",
			"maximum factor of improvement 5.1 at 4 elements / 1000 us.",
		},
	}
	specs := model.PaperCluster32()
	for _, skew := range PaperSkews() {
		row := cpuSeries(specs, counts, skew, iters, seed)
		row = factorCols(row, len(counts))
		t.X = append(t.X, us(skew))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7 regenerates Fig. 7: CPU utilization and factor of improvement
// versus system size at maximum skew 1000 µs.
func Fig7(iters int, seed int64) *Table {
	counts := PaperCounts()
	t := &Table{
		Title: "Fig. 7 — CPU utilization vs. nodes (max skew 1000 us)",
		XName: "nodes",
		Cols:  seriesCols(counts),
		Notes: []string{
			"Paper: factor of improvement increases with the number of",
			"nodes, reaching 5.1 at 32 nodes / 4 elements.",
		},
	}
	for _, size := range PaperSizes() {
		row := cpuSeries(model.PaperCluster(size), counts, 1000*time.Microsecond, iters, seed)
		row = factorCols(row, len(counts))
		t.X = append(t.X, float64(size))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig8 regenerates Fig. 8: CPU utilization and factor of improvement
// versus system size without artificial skew.
func Fig8(iters int, seed int64) *Table {
	counts := PaperCounts()
	t := &Table{
		Title: "Fig. 8 — CPU utilization vs. nodes (no artificial skew)",
		XName: "nodes",
		Cols:  seriesCols(counts),
		Notes: []string{
			"Paper: naturally-occurring skew grows with system size; ab",
			"crosses above nab earlier for larger messages, max factor 1.5",
			"at 32 nodes / 128 elements.",
		},
	}
	for _, size := range PaperSizes() {
		row := cpuSeries(model.PaperCluster(size), counts, 0, iters, seed)
		row = factorCols(row, len(counts))
		t.X = append(t.X, float64(size))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig9 regenerates Fig. 9: reduction latency versus system size without
// skew for single-element messages, on the heterogeneous cluster (a) and
// the homogeneous 700 MHz cluster (b).
func Fig9(iters int, seed int64) (hetero, homog *Table) {
	mk := func(title string, sizes []int, specsFor func(int) []model.NodeSpec) *Table {
		t := &Table{
			Title: title,
			XName: "nodes",
			Cols:  []string{"nab", "ab", "ab-nab"},
			Notes: []string{
				"Paper: ab and nab nearly identical up to 4 nodes, then ab",
				"pays a signal overhead that stabilizes (Fig. 10).",
			},
		}
		for _, size := range sizes {
			nab := Latency(Config{Specs: specsFor(size), Count: 1, Mode: NonAppBypass, Iters: iters, Seed: seed})
			ab := Latency(Config{Specs: specsFor(size), Count: 1, Mode: AppBypass, Iters: iters, Seed: seed})
			t.X = append(t.X, float64(size))
			t.Rows = append(t.Rows, []float64{us(nab.AvgLatency), us(ab.AvgLatency), us(ab.AvgLatency - nab.AvgLatency)})
		}
		return t
	}
	hetero = mk("Fig. 9a — reduce latency vs. nodes (heterogeneous, 1 element)", PaperSizes(), model.PaperCluster)
	homog = mk("Fig. 9b — reduce latency vs. nodes (homogeneous 700 MHz, 1 element)", []int{2, 4, 8, 16}, model.Homogeneous700)
	return hetero, homog
}

// Fig10 regenerates Fig. 10: reduction latency versus message size for
// 32 nodes without skew.
func Fig10(iters int, seed int64) *Table {
	t := &Table{
		Title: "Fig. 10 — reduce latency vs. message size (32 nodes)",
		XName: "elements",
		Cols:  []string{"nab", "ab", "ab-nab"},
		Notes: []string{
			"Paper: the ab latency penalty stabilizes and remains fairly",
			"constant as the number of elements increases.",
		},
	}
	specs := model.PaperCluster32()
	for _, count := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		nab := Latency(Config{Specs: specs, Count: count, Mode: NonAppBypass, Iters: iters, Seed: seed})
		ab := Latency(Config{Specs: specs, Count: count, Mode: AppBypass, Iters: iters, Seed: seed})
		t.X = append(t.X, float64(count))
		t.Rows = append(t.Rows, []float64{us(nab.AvgLatency), us(ab.AvgLatency), us(ab.AvgLatency - nab.AvgLatency)})
	}
	return t
}

// ScaleProjection extends Fig. 7/8 beyond the paper's 32 nodes — its
// stated future work ("evaluate the performance of application-bypass
// operations on large-scale clusters") — by replicating the interlaced
// node mix up to the requested sizes.
func ScaleProjection(sizes []int, skew sim.Time, count, iters int, seed int64) *Table {
	t := &Table{
		Title: "Scalability projection — CPU utilization vs. nodes",
		XName: "nodes",
		Cols:  []string{"nab", "ab", "factor"},
		Notes: []string{
			"Extension of Figs. 7/8 past the paper's 32-node testbed.",
		},
	}
	for _, size := range sizes {
		nab := CPUUtil(Config{Specs: model.PaperCluster(size), Count: count, Mode: NonAppBypass, MaxSkew: skew, Iters: iters, Seed: seed})
		ab := CPUUtil(Config{Specs: model.PaperCluster(size), Count: count, Mode: AppBypass, MaxSkew: skew, Iters: iters, Seed: seed})
		t.X = append(t.X, float64(size))
		t.Rows = append(t.Rows, []float64{us(nab.AvgCPU), us(ab.AvgCPU), float64(nab.AvgCPU) / float64(ab.AvgCPU)})
	}
	return t
}

// AblationDelay quantifies the §IV-E exit-delay heuristic: CPU
// utilization and signal counts with and without lingering.
func AblationDelay(size, count, iters int, skew sim.Time, seed int64) *Table {
	t := &Table{
		Title: "Ablation — §IV-E exit delay (ab mode)",
		XName: "delay_us",
		Cols:  []string{"avg_cpu", "signals"},
		Notes: []string{
			"Delay 0 is the paper's default. Longer delays catch straggler",
			"children inside MPI_Reduce, trading latency for fewer signals.",
		},
	}
	specs := model.PaperCluster(size)
	for _, d := range []sim.Time{0, 5 * time.Microsecond, 15 * time.Microsecond, 30 * time.Microsecond, 60 * time.Microsecond} {
		var pol core.DelayPolicy
		if d > 0 {
			pol = core.FixedDelay{D: d}
		}
		r := CPUUtil(Config{Specs: specs, Count: count, Mode: AppBypass, MaxSkew: skew, Iters: iters, Seed: seed, Delay: pol})
		t.X = append(t.X, us(d))
		t.Rows = append(t.Rows, []float64{us(r.AvgCPU), float64(r.Signals)})
	}
	return t
}

// AblationSignalCost sweeps the modeled cost of one NIC-raised signal.
// Every crossover in Figs. 8–10 depends on this constant (the paper
// calls interrupts "a substantial performance penalty" without
// quantifying); the sweep shows how robust the headline factor is.
func AblationSignalCost(size, count, iters int, skew sim.Time, seed int64) *Table {
	t := &Table{
		Title: "Ablation — signal-cost sensitivity",
		XName: "signal_us",
		Cols:  []string{"nab", "ab", "factor"},
		Notes: []string{
			"The default model charges 10 us per delivered signal",
			"(2003-era SIGIO); the factor degrades gracefully as signals",
			"get more expensive.",
		},
	}
	for _, sc := range []time.Duration{2, 5, 10, 20, 40} {
		sc := sc * time.Microsecond
		costs := model.DefaultCosts()
		costs.SignalOvh = sc
		costs.SignalIgnored = sc / 2
		nab := CPUUtil(Config{Specs: model.PaperCluster(size), Count: count, Mode: NonAppBypass,
			MaxSkew: skew, Iters: iters, Seed: seed, Costs: &costs})
		ab := CPUUtil(Config{Specs: model.PaperCluster(size), Count: count, Mode: AppBypass,
			MaxSkew: skew, Iters: iters, Seed: seed, Costs: &costs})
		t.X = append(t.X, us(sc))
		t.Rows = append(t.Rows, []float64{us(nab.AvgCPU), us(ab.AvgCPU), float64(nab.AvgCPU) / float64(ab.AvgCPU)})
	}
	return t
}

// AblationHeterogeneity isolates how much of the no-skew gap comes from
// the hardware mix: the paper's interlaced cluster versus an idealized
// homogeneous one of equal size.
func AblationHeterogeneity(size, count, iters int, seed int64) *Table {
	t := &Table{
		Title: "Ablation — heterogeneity's contribution to natural skew",
		XName: "row",
		Cols:  []string{"nab", "ab", "factor"},
		Notes: []string{
			"Row 0: the paper's interlaced heterogeneous mix.",
			"Row 1: homogeneous 1 GHz nodes. No artificial skew in either.",
		},
	}
	for i, specs := range [][]model.NodeSpec{model.PaperCluster(size), model.Homogeneous1G(size)} {
		nab := CPUUtil(Config{Specs: specs, Count: count, Mode: NonAppBypass, Iters: iters, Seed: seed})
		ab := CPUUtil(Config{Specs: specs, Count: count, Mode: AppBypass, Iters: iters, Seed: seed})
		t.X = append(t.X, float64(i))
		t.Rows = append(t.Rows, []float64{us(nab.AvgCPU), us(ab.AvgCPU), float64(nab.AvgCPU) / float64(ab.AvgCPU)})
	}
	return t
}

// AblationRendezvousAB evaluates the §V-B extension: reductions beyond
// the eager limit, comparing the paper's fallback (size → default
// blocking path) against rendezvous-mode bypass, under skew.
func AblationRendezvousAB(size, iters int, skew sim.Time, seed int64) *Table {
	t := &Table{
		Title: "Extension — rendezvous-mode bypass vs. §V-B fallback (large messages)",
		XName: "elements",
		Cols:  []string{"fallback", "rendezvous_ab", "factor"},
		Notes: []string{
			"The paper falls back to the blocking reduction beyond the",
			"eager limit; the extension streams large children with a",
			"signal-driven handshake instead.",
		},
	}
	specs := model.PaperCluster(size)
	for _, count := range []int{4096, 8192, 16384} { // 32, 64, 128 KiB
		fb := CPUUtil(Config{Specs: specs, Count: count, Mode: AppBypass,
			MaxSkew: skew, Iters: iters, Seed: seed})
		rv := CPUUtil(Config{Specs: specs, Count: count, Mode: AppBypass,
			MaxSkew: skew, Iters: iters, Seed: seed, RendezvousAB: true})
		t.X = append(t.X, float64(count))
		t.Rows = append(t.Rows, []float64{us(fb.AvgCPU), us(rv.AvgCPU), float64(fb.AvgCPU) / float64(rv.AvgCPU)})
	}
	return t
}

// AblationNICReduce compares host-side reductions with the NIC-based
// extension (§VII future work): the NIC frees the host entirely but pays
// slow LANai arithmetic, so it wins for small messages under skew and
// loses as elements grow.
func AblationNICReduce(size, iters int, skew sim.Time, seed int64) *Table {
	t := &Table{
		Title: "Extension — NIC-based reduction vs. host reductions",
		XName: "elements",
		Cols:  []string{"nab_cpu", "ab_cpu", "nic_cpu", "nic_factor_vs_nab"},
		Notes: []string{
			"Refs [9-11]: NIC-based reduction trades host cycles for slow",
			"NIC arithmetic (the LANai has no FPU).",
		},
	}
	specs := model.PaperCluster(size)
	for _, count := range []int{4, 32, 128} {
		nab := CPUUtil(Config{Specs: specs, Count: count, Mode: NonAppBypass, MaxSkew: skew, Iters: iters, Seed: seed})
		ab := CPUUtil(Config{Specs: specs, Count: count, Mode: AppBypass, MaxSkew: skew, Iters: iters, Seed: seed})
		nic := CPUUtil(Config{Specs: specs, Count: count, Mode: NICBased, MaxSkew: skew, Iters: iters, Seed: seed})
		t.X = append(t.X, float64(count))
		t.Rows = append(t.Rows, []float64{us(nab.AvgCPU), us(ab.AvgCPU), us(nic.AvgCPU), float64(nab.AvgCPU) / float64(nic.AvgCPU)})
	}
	return t
}
