package bench

import (
	"fmt"
	"time"

	"abred/internal/cluster"
	"abred/internal/core"
	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/sweep"
	"abred/internal/topo"
)

// This file regenerates every figure of the paper's evaluation (§VI).
// Each runner declares its parameter grid — sizes × counts × skews ×
// cluster specs — as a list of independent sweep jobs (one simulation
// per cell) and hands it to the sweep engine, which executes the cells
// on a worker pool and reassembles rows in declaration order. Tables are
// therefore byte-identical for any worker count; only Table.Perf (wall
// clock, speedup, event throughput) reflects how the sweep ran. Iters
// trades precision for run time; the paper used 10,000, which also works
// here but is not needed for stable virtual-time averages.

// Opts parameterizes figure regeneration.
type Opts struct {
	Iters   int   // benchmark iterations per data point (0 = 200)
	Seed    int64 // simulation seed; identical seeds reproduce tables exactly
	Workers int   // sweep worker pool size (0 = GOMAXPROCS)

	// Fault injects fabric faults into every simulated cluster (the
	// -loss/-faultseed flags); zero value = perfect fabric.
	Fault fault.Config

	// Pool, when set, lets every cell of every grid reuse built
	// clusters instead of reconstructing them (see Config.Pool). Grids
	// revisit the same few cluster shapes hundreds of times, so this
	// removes nearly all construction cost from a figure run without
	// changing a byte of its table.
	Pool *cluster.Pool

	// Topo selects the interconnect for every simulated cluster (the
	// -topo flag); the zero value is the historical single crossbar,
	// under which every figure reproduces byte-identically.
	Topo topo.Spec

	// LPs partitions each simulated cluster into up to LPs logical
	// processes run in parallel (the -lps flag; see cluster.Config.LPs).
	// Effective only where a routed topology gives the partition pods;
	// the large-N and topology sweeps thread it through.
	LPs int
}

func (o Opts) withDefaults() Opts {
	if o.Iters == 0 {
		o.Iters = 200
	}
	if o.Seed == 0 {
		o.Seed = 20030701 // CLUSTER 2003
	}
	return o
}

// us converts to microseconds for table cells.
func us(d sim.Time) float64 { return float64(d) / float64(time.Microsecond) }

// PaperSkews are Fig. 6's x axis: maximum skew 0–1000 µs.
func PaperSkews() []sim.Time {
	var skews []sim.Time
	for s := 0; s <= 1000; s += 100 {
		skews = append(skews, sim.Time(s)*time.Microsecond)
	}
	return skews
}

// PaperSizes are the node counts of Figs. 7–9: 2, 4, 8, 16, 32.
func PaperSizes() []int { return []int{2, 4, 8, 16, 32} }

// PaperCounts are the message sizes of Figs. 6–8 in double words.
func PaperCounts() []int { return []int{4, 32, 128} }

// cpuJob wraps one CPU-utilization simulation as a pure sweep job. Its
// value is [avg CPU µs, signals].
func cpuJob(name string, cfg Config) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{Name: name, Seed: cfg.Seed, Run: func() ([]float64, uint64) {
		r := CPUUtil(cfg)
		return []float64{us(r.AvgCPU), float64(r.Signals)}, r.Events
	}}
}

// latJob wraps one latency simulation as a pure sweep job. Its value is
// [avg latency µs].
func latJob(name string, cfg Config) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{Name: name, Seed: cfg.Seed, Run: func() ([]float64, uint64) {
		r := Latency(cfg)
		return []float64{us(r.AvgLatency)}, r.Events
	}}
}

// runGrid executes a figure's cells (row-major: len(jobs)/len(xs) cells
// per x) through the sweep engine and assembles each row with mk.
func runGrid(t *Table, xs []float64, jobs []sweep.Job[[]float64], mk func(cells [][]float64) []float64, workers int) *Table {
	per := len(jobs) / len(xs)
	res := sweep.Run(t.Title, jobs, workers)
	vals := res.Values()
	for i, x := range xs {
		t.X = append(t.X, x)
		t.Rows = append(t.Rows, mk(vals[i*per:(i+1)*per]))
	}
	t.Perf = res.Perf
	return t
}

// cpuModes is the implementation pair every comparison figure sweeps.
var cpuModes = []Mode{NonAppBypass, AppBypass}

// cpuGrid declares the standard CPU-utilization figure: for each x a nab
// series and an ab series across counts, plus nab/ab factor columns.
func cpuGrid(t *Table, fig string, xs []float64, counts []int, cfg func(xi, count int, mode Mode) Config, o Opts) *Table {
	var jobs []sweep.Job[[]float64]
	for xi, x := range xs {
		for _, mode := range cpuModes {
			for _, count := range counts {
				jobs = append(jobs, cpuJob(
					fmt.Sprintf("%s/x=%v/%s/n=%d", fig, x, mode, count),
					cfg(xi, count, mode)))
			}
		}
	}
	return runGrid(t, xs, jobs, func(cells [][]float64) []float64 {
		row := make([]float64, 0, 3*len(counts))
		for _, c := range cells {
			row = append(row, c[0])
		}
		return factorCols(row, len(counts))
	}, o.Workers)
}

// pairGrid declares a two-implementation comparison: per x, runs cfg(x,0)
// and cfg(x,1), rendering each row as [a, b, a/b].
func pairGrid(t *Table, fig string, names [2]string, xs []float64, cfg func(xi, j int) Config, o Opts) *Table {
	var jobs []sweep.Job[[]float64]
	for xi, x := range xs {
		for j := 0; j < 2; j++ {
			jobs = append(jobs, cpuJob(fmt.Sprintf("%s/x=%v/%s", fig, x, names[j]), cfg(xi, j)))
		}
	}
	return runGrid(t, xs, jobs, func(cells [][]float64) []float64 {
		a, b := cells[0][0], cells[1][0]
		return []float64{a, b, a / b}
	}, o.Workers)
}

// latGrid declares a latency comparison: per x a nab and an ab run,
// rendered as [nab, ab, ab-nab].
func latGrid(t *Table, fig string, xs []float64, cfg func(xi int, mode Mode) Config, o Opts) *Table {
	var jobs []sweep.Job[[]float64]
	for xi, x := range xs {
		for _, mode := range cpuModes {
			jobs = append(jobs, latJob(fmt.Sprintf("%s/x=%v/%s", fig, x, mode), cfg(xi, mode)))
		}
	}
	return runGrid(t, xs, jobs, func(cells [][]float64) []float64 {
		nab, ab := cells[0][0], cells[1][0]
		return []float64{nab, ab, ab - nab}
	}, o.Workers)
}

// factorCols appends nab/ab improvement-factor columns to a row laid out
// as nab cells then ab cells.
func factorCols(row []float64, counts int) []float64 {
	for j := 0; j < counts; j++ {
		row = append(row, row[j]/row[counts+j])
	}
	return row
}

// seriesCols builds the column names for cpuGrid output.
func seriesCols(counts []int) []string {
	var cols []string
	for _, prefix := range []string{"nab-", "ab-"} {
		for _, c := range counts {
			cols = append(cols, prefix+trimFloat(float64(c)))
		}
	}
	for _, c := range counts {
		cols = append(cols, "factor-"+trimFloat(float64(c)))
	}
	return cols
}

// floats converts an int axis to table x values.
func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Fig6 regenerates Fig. 6: average CPU utilization (a) and factor of
// improvement (b) for 32 nodes under varying maximum skew, with 4-, 32-
// and 128-element double-word messages.
func Fig6(o Opts) *Table {
	o = o.withDefaults()
	counts := PaperCounts()
	t := &Table{
		Title: "Fig. 6 — CPU utilization vs. max skew (32 nodes, heterogeneous)",
		XName: "skew_us",
		Cols:  seriesCols(counts),
		Notes: []string{
			"Paper: nab grows ~linearly with skew, ab stays nearly flat;",
			"maximum factor of improvement 5.1 at 4 elements / 1000 us.",
		},
	}
	specs := model.PaperCluster32()
	skews := PaperSkews()
	xs := make([]float64, len(skews))
	for i, s := range skews {
		xs[i] = us(s)
	}
	return cpuGrid(t, "fig6", xs, counts, func(xi, count int, mode Mode) Config {
		return Config{Specs: specs, Count: count, Mode: mode, MaxSkew: skews[xi], Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault, Topo: o.Topo}
	}, o)
}

// Fig7 regenerates Fig. 7: CPU utilization and factor of improvement
// versus system size at maximum skew 1000 µs.
func Fig7(o Opts) *Table {
	o = o.withDefaults()
	counts := PaperCounts()
	t := &Table{
		Title: "Fig. 7 — CPU utilization vs. nodes (max skew 1000 us)",
		XName: "nodes",
		Cols:  seriesCols(counts),
		Notes: []string{
			"Paper: factor of improvement increases with the number of",
			"nodes, reaching 5.1 at 32 nodes / 4 elements.",
		},
	}
	sizes := PaperSizes()
	return cpuGrid(t, "fig7", floats(sizes), counts, func(xi, count int, mode Mode) Config {
		return Config{Specs: model.PaperCluster(sizes[xi]), Count: count, Mode: mode,
			MaxSkew: 1000 * time.Microsecond, Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault, Topo: o.Topo}
	}, o)
}

// Fig8 regenerates Fig. 8: CPU utilization and factor of improvement
// versus system size without artificial skew.
func Fig8(o Opts) *Table {
	o = o.withDefaults()
	counts := PaperCounts()
	t := &Table{
		Title: "Fig. 8 — CPU utilization vs. nodes (no artificial skew)",
		XName: "nodes",
		Cols:  seriesCols(counts),
		Notes: []string{
			"Paper: naturally-occurring skew grows with system size; ab",
			"crosses above nab earlier for larger messages, max factor 1.5",
			"at 32 nodes / 128 elements.",
		},
	}
	sizes := PaperSizes()
	return cpuGrid(t, "fig8", floats(sizes), counts, func(xi, count int, mode Mode) Config {
		return Config{Specs: model.PaperCluster(sizes[xi]), Count: count, Mode: mode, Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault, Topo: o.Topo}
	}, o)
}

// Fig9 regenerates Fig. 9: reduction latency versus system size without
// skew for single-element messages, on the heterogeneous cluster (a) and
// the homogeneous 700 MHz cluster (b).
func Fig9(o Opts) (hetero, homog *Table) {
	o = o.withDefaults()
	mk := func(title, fig string, sizes []int, specsFor func(int) []model.NodeSpec) *Table {
		t := &Table{
			Title: title,
			XName: "nodes",
			Cols:  []string{"nab", "ab", "ab-nab"},
			Notes: []string{
				"Paper: ab and nab nearly identical up to 4 nodes, then ab",
				"pays a signal overhead that stabilizes (Fig. 10).",
			},
		}
		return latGrid(t, fig, floats(sizes), func(xi int, mode Mode) Config {
			return Config{Specs: specsFor(sizes[xi]), Count: 1, Mode: mode, Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault, Topo: o.Topo}
		}, o)
	}
	hetero = mk("Fig. 9a — reduce latency vs. nodes (heterogeneous, 1 element)", "fig9a", PaperSizes(), model.PaperCluster)
	homog = mk("Fig. 9b — reduce latency vs. nodes (homogeneous 700 MHz, 1 element)", "fig9b", []int{2, 4, 8, 16}, model.Homogeneous700)
	return hetero, homog
}

// Fig10 regenerates Fig. 10: reduction latency versus message size for
// 32 nodes without skew.
func Fig10(o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: "Fig. 10 — reduce latency vs. message size (32 nodes)",
		XName: "elements",
		Cols:  []string{"nab", "ab", "ab-nab"},
		Notes: []string{
			"Paper: the ab latency penalty stabilizes and remains fairly",
			"constant as the number of elements increases.",
		},
	}
	specs := model.PaperCluster32()
	counts := []int{1, 2, 4, 8, 16, 32, 64, 128}
	return latGrid(t, "fig10", floats(counts), func(xi int, mode Mode) Config {
		return Config{Specs: specs, Count: counts[xi], Mode: mode, Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault, Topo: o.Topo}
	}, o)
}

// ScaleProjection extends Fig. 7/8 beyond the paper's 32 nodes — its
// stated future work ("evaluate the performance of application-bypass
// operations on large-scale clusters") — by replicating the interlaced
// node mix up to the requested sizes.
func ScaleProjection(sizes []int, skew sim.Time, count int, o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: "Scalability projection — CPU utilization vs. nodes",
		XName: "nodes",
		Cols:  []string{"nab", "ab", "factor"},
		Notes: []string{
			"Extension of Figs. 7/8 past the paper's 32-node testbed.",
		},
	}
	return pairGrid(t, "scale", [2]string{"nab", "ab"}, floats(sizes), func(xi, j int) Config {
		return Config{Specs: model.PaperCluster(sizes[xi]), Count: count, Mode: cpuModes[j],
			MaxSkew: skew, Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault,
			Topo: o.Topo, LPs: o.LPs}
	}, o)
}

// AblationDelay quantifies the §IV-E exit-delay heuristic: CPU
// utilization and signal counts with and without lingering.
func AblationDelay(size, count int, skew sim.Time, o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: "Ablation — §IV-E exit delay (ab mode)",
		XName: "delay_us",
		Cols:  []string{"avg_cpu", "signals"},
		Notes: []string{
			"Delay 0 is the paper's default. Longer delays catch straggler",
			"children inside MPI_Reduce, trading latency for fewer signals.",
		},
	}
	specs := model.PaperCluster(size)
	delays := []sim.Time{0, 5 * time.Microsecond, 15 * time.Microsecond, 30 * time.Microsecond, 60 * time.Microsecond}
	var jobs []sweep.Job[[]float64]
	xs := make([]float64, len(delays))
	for i, d := range delays {
		xs[i] = us(d)
		var pol core.DelayPolicy
		if d > 0 {
			pol = core.FixedDelay{D: d}
		}
		jobs = append(jobs, cpuJob(fmt.Sprintf("delay/x=%v", d),
			Config{Specs: specs, Count: count, Mode: AppBypass, MaxSkew: skew, Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault, Topo: o.Topo, Delay: pol}))
	}
	return runGrid(t, xs, jobs, func(cells [][]float64) []float64 {
		return []float64{cells[0][0], cells[0][1]}
	}, o.Workers)
}

// AblationSignalCost sweeps the modeled cost of one NIC-raised signal.
// Every crossover in Figs. 8–10 depends on this constant (the paper
// calls interrupts "a substantial performance penalty" without
// quantifying); the sweep shows how robust the headline factor is.
func AblationSignalCost(size, count int, skew sim.Time, o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: "Ablation — signal-cost sensitivity",
		XName: "signal_us",
		Cols:  []string{"nab", "ab", "factor"},
		Notes: []string{
			"The default model charges 10 us per delivered signal",
			"(2003-era SIGIO); the factor degrades gracefully as signals",
			"get more expensive.",
		},
	}
	specs := model.PaperCluster(size)
	scosts := []time.Duration{2, 5, 10, 20, 40}
	xs := make([]float64, len(scosts))
	for i := range scosts {
		scosts[i] *= time.Microsecond
		xs[i] = us(scosts[i])
	}
	return pairGrid(t, "sigcost", [2]string{"nab", "ab"}, xs, func(xi, j int) Config {
		costs := model.DefaultCosts()
		costs.SignalOvh = scosts[xi]
		costs.SignalIgnored = scosts[xi] / 2
		return Config{Specs: specs, Count: count, Mode: cpuModes[j],
			MaxSkew: skew, Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault, Topo: o.Topo, Costs: &costs}
	}, o)
}

// AblationHeterogeneity isolates how much of the no-skew gap comes from
// the hardware mix: the paper's interlaced cluster versus an idealized
// homogeneous one of equal size.
func AblationHeterogeneity(size, count int, o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: "Ablation — heterogeneity's contribution to natural skew",
		XName: "row",
		Cols:  []string{"nab", "ab", "factor"},
		Notes: []string{
			"Row 0: the paper's interlaced heterogeneous mix.",
			"Row 1: homogeneous 1 GHz nodes. No artificial skew in either.",
		},
	}
	clusters := [][]model.NodeSpec{model.PaperCluster(size), model.Homogeneous1G(size)}
	return pairGrid(t, "hetero", [2]string{"nab", "ab"}, []float64{0, 1}, func(xi, j int) Config {
		return Config{Specs: clusters[xi], Count: count, Mode: cpuModes[j], Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault, Topo: o.Topo}
	}, o)
}

// AblationRendezvousAB evaluates the §V-B extension: reductions beyond
// the eager limit, comparing the paper's fallback (size → default
// blocking path) against rendezvous-mode bypass, under skew.
func AblationRendezvousAB(size int, skew sim.Time, o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: "Extension — rendezvous-mode bypass vs. §V-B fallback (large messages)",
		XName: "elements",
		Cols:  []string{"fallback", "rendezvous_ab", "factor"},
		Notes: []string{
			"The paper falls back to the blocking reduction beyond the",
			"eager limit; the extension streams large children with a",
			"signal-driven handshake instead.",
		},
	}
	specs := model.PaperCluster(size)
	counts := []int{4096, 8192, 16384} // 32, 64, 128 KiB
	return pairGrid(t, "rendezvous", [2]string{"fallback", "rendezvous"}, floats(counts), func(xi, j int) Config {
		return Config{Specs: specs, Count: counts[xi], Mode: AppBypass,
			MaxSkew: skew, Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault, Topo: o.Topo, RendezvousAB: j == 1}
	}, o)
}

// AblationNICReduce compares host-side reductions with the NIC-based
// extension (§VII future work): the NIC frees the host entirely but pays
// slow LANai arithmetic, so it wins for small messages under skew and
// loses as elements grow.
func AblationNICReduce(size int, skew sim.Time, o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: "Extension — NIC-based reduction vs. host reductions",
		XName: "elements",
		Cols:  []string{"nab_cpu", "ab_cpu", "nic_cpu", "nic_factor_vs_nab"},
		Notes: []string{
			"Refs [9-11]: NIC-based reduction trades host cycles for slow",
			"NIC arithmetic (the LANai has no FPU).",
		},
	}
	specs := model.PaperCluster(size)
	counts := []int{4, 32, 128}
	modes := []Mode{NonAppBypass, AppBypass, NICBased}
	var jobs []sweep.Job[[]float64]
	for _, count := range counts {
		for _, mode := range modes {
			jobs = append(jobs, cpuJob(fmt.Sprintf("nicreduce/x=%d/%s", count, mode),
				Config{Specs: specs, Count: count, Mode: mode, MaxSkew: skew, Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: o.Fault, Topo: o.Topo}))
		}
	}
	return runGrid(t, floats(counts), jobs, func(cells [][]float64) []float64 {
		nab, ab, nic := cells[0][0], cells[1][0], cells[2][0]
		return []float64{nab, ab, nic, nab / nic}
	}, o.Workers)
}

// relCPUJob is cpuJob extended with fault/reliability counters:
// [avg CPU µs, retransmits, injector drops, ring overflows].
func relCPUJob(name string, cfg Config) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{Name: name, Seed: cfg.Seed, Run: func() ([]float64, uint64) {
		r := CPUUtil(cfg)
		return []float64{us(r.AvgCPU), float64(r.Rel.Retransmits),
			float64(r.Rel.Dropped), float64(r.Rel.Overflow)}, r.Events
	}}
}

// relLatJob is latJob extended the same way.
func relLatJob(name string, cfg Config) sweep.Job[[]float64] {
	return sweep.Job[[]float64]{Name: name, Seed: cfg.Seed, Run: func() ([]float64, uint64) {
		r := Latency(cfg)
		return []float64{us(r.AvgLatency), float64(r.Rel.Retransmits),
			float64(r.Rel.Dropped), float64(r.Rel.Overflow)}, r.Events
	}}
}

// PaperLossRates is the loss sweep's x axis: 0 (reliability off — the
// paper's perfect fabric) through the 0.1–5% frame-loss range.
func PaperLossRates() []float64 { return []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05} }

// LossSweep answers a question the paper's reliable testbed could not
// ask: does application-bypass reduction keep its CPU and latency
// advantage over the binomial reduction when the fabric drops frames
// and GM must retransmit? Per loss rate it runs the Fig. 6 CPU workload
// (32 nodes, 4 elements, max skew 1000 µs) and the Fig. 9 latency
// workload (1 element, no skew) for both implementations. faultSeed
// feeds the dedicated fault stream; the same seed replays the same
// drop pattern.
func LossSweep(rates []float64, faultSeed int64, o Opts) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: "Loss sweep — ab vs. nab reduction on a lossy fabric",
		XName: "loss_pct",
		Cols:  []string{"nab_cpu", "ab_cpu", "factor", "nab_lat", "ab_lat", "retx", "drops", "overflow"},
		Notes: []string{
			"CPU columns: Fig. 6 workload (32 nodes, 4 elements, max skew",
			"1000 us). Latency columns: Fig. 9 workload (1 element, no",
			"skew). retx/drops/overflow sum GM retransmissions, injector",
			"drops and retransmit-ring overflows across the row's 4 runs.",
			"Row 0 is the perfect fabric (reliability machinery off).",
		},
	}
	specs := model.PaperCluster32()
	var jobs []sweep.Job[[]float64]
	xs := make([]float64, len(rates))
	for xi, rate := range rates {
		xs[xi] = rate * 100
		fc := fault.Config{Seed: faultSeed, Rule: fault.Rule{Drop: rate}}
		for _, mode := range cpuModes {
			jobs = append(jobs, relCPUJob(fmt.Sprintf("loss/x=%v/cpu/%s", rate, mode),
				Config{Specs: specs, Count: 4, Mode: mode, MaxSkew: 1000 * time.Microsecond,
					Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: fc, Topo: o.Topo}))
		}
		for _, mode := range cpuModes {
			jobs = append(jobs, relLatJob(fmt.Sprintf("loss/x=%v/lat/%s", rate, mode),
				Config{Specs: specs, Count: 1, Mode: mode, Iters: o.Iters, Seed: o.Seed, Pool: o.Pool, Fault: fc, Topo: o.Topo}))
		}
	}
	return runGrid(t, xs, jobs, func(cells [][]float64) []float64 {
		nabCPU, abCPU := cells[0][0], cells[1][0]
		nabLat, abLat := cells[2][0], cells[3][0]
		var retx, drops, overflow float64
		for _, c := range cells {
			retx += c[1]
			drops += c[2]
			overflow += c[3]
		}
		return []float64{nabCPU, abCPU, nabCPU / abCPU, nabLat, abLat, retx, drops, overflow}
	}, o.Workers)
}
