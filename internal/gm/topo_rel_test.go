package gm

import (
	"testing"

	"abred/internal/fabric"
	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/sim"
	"abred/internal/topo"
)

// lossyFatTree builds n reliable NICs over a fault-injected fat-tree
// fabric, the way cluster.New wires them when both a topology and a
// fault plan are configured.
func lossyFatTree(n int, spec topo.Spec, seed int64, cfg fault.Config) (*sim.Kernel, []*NIC) {
	k := sim.New(seed)
	costs := model.DefaultCosts()
	fab := fabric.New(k, n, costs)
	fab.SetTopology(topo.Build(spec, n))
	if plan := fault.New(cfg); plan != nil {
		fab.Inject = plan
		fab.OnDrop, fab.ClonePayload = FaultHooks()
	}
	cm := model.NewCostModel(model.Uniform(1)[0], costs)
	nics := make([]*NIC, n)
	for i := range nics {
		nics[i] = NewNIC(k, i, cm, fab)
		nics[i].EnableReliability()
	}
	return k, nics
}

// TestRoutedReliableFIFOUnderChaos is the chaos-FIFO property test
// extended to multi-hop routes: three senders on different leaves of
// an 8-host fat-tree (1, 3 and 5 switch crossings away) stream
// numbered packets to one receiver through drops, duplicates and
// reorder jitter. Per-source delivery must stay exactly-once in-order
// even though the flows contend at shared uplinks and the receiver's
// down-path, and retransmitted windows re-cross multiple hops.
func TestRoutedReliableFIFOUnderChaos(t *testing.T) {
	const n = 8
	const per = 40
	k, nics := lossyFatTree(n, topo.Spec{Kind: topo.FatTree, K: 4}, 11, fault.Config{
		Seed: 42,
		Rule: fault.Rule{Drop: 0.2, Dup: 0.2, Jitter: 20 * us, JitterP: 0.5},
	})
	senders := []int{1, 2, 6} // same leaf, one tier up, across the spine
	for _, src := range senders {
		src := src
		k.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < per; i++ {
				nics[src].Send(p, &Packet{
					Type: Eager, DstNode: 0, SrcRank: int32(src),
					Seq: uint64(i), Data: make([]byte, 1+i%7),
				})
			}
		})
	}
	next := map[int32]uint64{}
	delivered := 0
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < per*len(senders); i++ {
			pkt := nics[0].Recv(p)
			if pkt.Seq != next[pkt.SrcRank] {
				t.Fatalf("src %d delivered seq %d, want %d: FIFO violated on routed path",
					pkt.SrcRank, pkt.Seq, next[pkt.SrcRank])
			}
			next[pkt.SrcRank]++
			delivered++
		}
	})
	k.Run()
	if delivered != per*len(senders) {
		t.Fatalf("delivered %d of %d", delivered, per*len(senders))
	}
	rtx := uint64(0)
	for _, src := range senders {
		rtx += nics[src].Stats().Retransmits
		if err := nics[src].RelError(); err != nil {
			t.Errorf("port died under recoverable loss: %v", err)
		}
	}
	if rtx == 0 {
		t.Error("20%% loss on multi-hop routes produced no retransmissions?")
	}
}

// TestHopScaledRTO: the go-back-N base timeout keys on the routed hop
// count, not just the endpoints — peers behind more switch crossings
// get proportionally more slack before the window resends.
func TestHopScaledRTO(t *testing.T) {
	const n = 16
	k, nics := lossyFatTree(n, topo.Spec{Kind: topo.FatTree, K: 4}, 7, fault.Config{})
	_ = k
	r := nics[0].rel
	cases := []struct {
		peer int
		hops int
	}{
		{1, 1},  // same leaf
		{3, 3},  // one tier
		{7, 5},  // two tiers
		{15, 7}, // across the full three-tier spine
	}
	for _, tc := range cases {
		want := relBaseRTO + sim.Time(tc.hops-1)*relHopRTO
		if got := r.linkRTO(tc.peer); got != want {
			t.Errorf("linkRTO to %d = %v, want %v (%d hops)", tc.peer, got, want, tc.hops)
		}
		// The table is built once at wire-up: a second read must agree.
		if got := r.linkRTO(tc.peer); got != want {
			t.Errorf("cached linkRTO to %d = %v, want %v", tc.peer, got, want)
		}
	}
}

// TestCrossbarRTOUnchanged: without a topology every link keeps exactly
// the historical base timeout — part of the crossbar byte-identity
// guarantee.
func TestCrossbarRTOUnchanged(t *testing.T) {
	k, a, _ := lossyPair(9, fault.Config{})
	_ = k
	if got := a.rel.linkRTO(1); got != relBaseRTO {
		t.Errorf("crossbar linkRTO = %v, want relBaseRTO %v", got, relBaseRTO)
	}
}
