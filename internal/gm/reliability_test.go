package gm

import (
	"testing"

	"abred/internal/fabric"
	"abred/internal/fault"
	"abred/internal/model"
	"abred/internal/sim"
)

// lossyPair builds two reliable NICs over a fault-injected fabric, the
// way cluster.New wires them.
func lossyPair(seed int64, cfg fault.Config) (*sim.Kernel, *NIC, *NIC) {
	k := sim.New(seed)
	costs := model.DefaultCosts()
	fab := fabric.New(k, 2, costs)
	if plan := fault.New(cfg); plan != nil {
		fab.Inject = plan
		fab.OnDrop, fab.ClonePayload = FaultHooks()
	}
	cm := model.NewCostModel(model.Uniform(1)[0], costs)
	a, b := NewNIC(k, 0, cm, fab), NewNIC(k, 1, cm, fab)
	a.EnableReliability()
	b.EnableReliability()
	return k, a, b
}

// TestRetransmitRecoversScriptedDrop: the very first frame on (0,1) is
// lost; the retransmit timer must resend it and the receiver must still
// get the payload exactly once.
func TestRetransmitRecoversScriptedDrop(t *testing.T) {
	k, a, b := lossyPair(1, fault.Config{Scripts: []fault.Script{{Src: 0, Dst: 1, Nth: 1}}})
	k.Spawn("sender", func(p *sim.Proc) {
		a.Send(p, &Packet{Type: Eager, DstNode: 1, Tag: 9, Data: []byte{1, 2, 3}})
	})
	var got *Packet
	k.Spawn("recv", func(p *sim.Proc) { got = b.Recv(p) })
	k.Run()
	if got == nil || got.Tag != 9 || len(got.Data) != 3 || got.Data[2] != 3 {
		t.Fatalf("payload not recovered: %+v", got)
	}
	if a.Stats().Retransmits == 0 {
		t.Error("drop recovered without a retransmission?")
	}
	if err := a.RelError(); err != nil {
		t.Errorf("transient loss must not kill the port: %v", err)
	}
}

// TestDuplicateDiscard: every frame on (0,1) is duplicated; the host
// must see each packet exactly once, in order.
func TestDuplicateDiscard(t *testing.T) {
	k, a, b := lossyPair(2, fault.Config{
		Links: []fault.Link{{Src: 0, Dst: 1, Rule: fault.Rule{Dup: 1}}}})
	const n = 10
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.Send(p, &Packet{Type: Eager, DstNode: 1, Seq: uint64(i), Data: []byte{byte(i)}})
		}
	})
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pkt := b.Recv(p)
			if pkt.Seq != uint64(i) {
				t.Fatalf("packet %d arrived with seq %d", i, pkt.Seq)
			}
		}
		p.Sleep(500 * us) // let the last duplicate land and be discarded
	})
	k.Run()
	if got := b.Stats().RelDupsDropped; got < n {
		t.Errorf("RelDupsDropped = %d, want ≥ %d (one per duplicated frame)", got, n)
	}
}

// TestReliableFIFOUnderChaos: drops, duplicates and reorder jitter in
// both directions must still yield exactly-once in-order delivery —
// the GM guarantee MPICH relies on.
func TestReliableFIFOUnderChaos(t *testing.T) {
	k, a, b := lossyPair(3, fault.Config{
		Seed: 42,
		Rule: fault.Rule{Drop: 0.2, Dup: 0.2, Jitter: 20 * us, JitterP: 0.5},
	})
	const n = 50
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.Send(p, &Packet{Type: Eager, DstNode: 1, Seq: uint64(i), Data: make([]byte, 1+i%7)})
		}
	})
	delivered := 0
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pkt := b.Recv(p)
			if pkt.Seq != uint64(i) {
				t.Fatalf("packet %d arrived with seq %d: FIFO violated under loss", i, pkt.Seq)
			}
			delivered++
		}
	})
	k.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	if a.Stats().Retransmits == 0 {
		t.Error("20%% loss produced no retransmissions?")
	}
	if err := a.RelError(); err != nil {
		t.Errorf("port died under recoverable loss: %v", err)
	}
}

// TestPortErrorAfterRetryBudget: a link that eats every frame must
// surface a port error and stop the run instead of hanging it.
func TestPortErrorAfterRetryBudget(t *testing.T) {
	k, a, b := lossyPair(4, fault.Config{
		Links: []fault.Link{{Src: 0, Dst: 1, Rule: fault.Rule{Drop: 1}}}})
	k.Spawn("sender", func(p *sim.Proc) {
		a.Send(p, &Packet{Type: Eager, DstNode: 1, Data: []byte{1}})
	})
	k.Spawn("recv", func(p *sim.Proc) { b.Recv(p) }) // parks forever
	k.Run()                                          // must return, not deadlock-panic
	if err := a.RelError(); err == nil {
		t.Fatal("dead link produced no port error")
	}
	if a.Stats().RelPortErrors != 1 {
		t.Errorf("RelPortErrors = %d, want 1", a.Stats().RelPortErrors)
	}
	if got := int(a.Stats().Retransmits); got != relMaxRounds {
		t.Errorf("retransmit rounds before giving up = %d, want %d", got, relMaxRounds)
	}
}

// TestLossRunDeterminism: the same fault seed gives the same delivery
// times and the same counters, run after run.
func TestLossRunDeterminism(t *testing.T) {
	run := func() ([]sim.Time, Stats, sim.Time) {
		k, a, b := lossyPair(5, fault.Config{
			Seed: 99,
			Rule: fault.Rule{Drop: 0.15, Dup: 0.1, Jitter: 15 * us, JitterP: 0.3},
		})
		const n = 30
		k.Spawn("sender", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				a.Send(p, &Packet{Type: Eager, DstNode: 1, Data: []byte{byte(i)}})
			}
		})
		var at []sim.Time
		k.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				b.Recv(p)
				at = append(at, p.Now())
			}
		})
		end := k.Run()
		return at, a.Stats(), end
	}
	at1, st1, end1 := run()
	at2, st2, end2 := run()
	if end1 != end2 || st1 != st2 {
		t.Fatalf("runs diverged: end %v vs %v, stats %+v vs %+v", end1, end2, st1, st2)
	}
	for i := range at1 {
		if at1[i] != at2[i] {
			t.Fatalf("delivery %d at %v vs %v", i, at1[i], at2[i])
		}
	}
}

// TestReliabilityCleanPathNoRetransmit: on a perfect fabric the enabled
// protocol costs acks only — no retransmissions, no drops, no errors.
func TestReliabilityCleanPathNoRetransmit(t *testing.T) {
	k, a, b := lossyPair(6, fault.Config{})
	const n = 20
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.Send(p, &Packet{Type: Eager, DstNode: 1, Data: []byte{byte(i)}})
		}
	})
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			b.Recv(p)
		}
	})
	k.Run()
	if s := a.Stats(); s.Retransmits != 0 || s.RelPortErrors != 0 {
		t.Errorf("clean fabric caused recovery traffic: %+v", s)
	}
	if b.Stats().RelDupsDropped != 0 {
		t.Errorf("clean fabric produced duplicates: %+v", b.Stats())
	}
}
