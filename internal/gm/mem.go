package gm

import (
	"fmt"

	"abred/internal/model"
	"abred/internal/sim"
)

// Region is a DMA-registered (pinned) memory range.
type Region struct {
	ID   uint64
	Size int
	live bool
}

// MemRegistry models GM's registered-memory requirement: the NIC can
// only DMA to and from pinned pages, and pinning costs a system call
// (§III). MPICH-over-GM pays this once for eager bounce buffers and per
// message in rendezvous mode.
type MemRegistry struct {
	cm     model.CostModel
	nextID uint64
	live   map[uint64]*Region

	pinnedBytes int
	peakBytes   int
	pins        uint64
}

// NewMemRegistry creates an empty registry using node costs cm.
func NewMemRegistry(cm model.CostModel) *MemRegistry {
	return &MemRegistry{cm: cm, live: make(map[uint64]*Region)}
}

// Reset empties the registry for a cluster reuse cycle, keeping the map
// capacity. Afterwards it is indistinguishable from a fresh registry.
func (r *MemRegistry) Reset() {
	r.nextID = 0
	clear(r.live)
	r.pinnedBytes = 0
	r.peakBytes = 0
	r.pins = 0
}

// Pin registers size bytes for DMA, charging the syscall cost to p.
func (r *MemRegistry) Pin(p *sim.Proc, size int) *Region {
	p.Spin(r.cm.Pin(size))
	r.nextID++
	reg := &Region{ID: r.nextID, Size: size, live: true}
	r.live[reg.ID] = reg
	r.pins++
	r.pinnedBytes += size
	if r.pinnedBytes > r.peakBytes {
		r.peakBytes = r.pinnedBytes
	}
	return reg
}

// Unpin releases a region. Unpinning a dead region is a programming
// error and panics.
func (r *MemRegistry) Unpin(p *sim.Proc, reg *Region) {
	if !reg.live {
		panic(fmt.Sprintf("gm: double unpin of region %d", reg.ID))
	}
	// Deregistration is cheap relative to registration; charge half.
	p.Spin(r.cm.Pin(reg.Size) / 2)
	reg.live = false
	delete(r.live, reg.ID)
	r.pinnedBytes -= reg.Size
}

// PinnedBytes returns currently registered bytes.
func (r *MemRegistry) PinnedBytes() int { return r.pinnedBytes }

// PeakBytes returns the high-water mark of registered bytes.
func (r *MemRegistry) PeakBytes() int { return r.peakBytes }

// Pins returns the number of Pin calls.
func (r *MemRegistry) Pins() uint64 { return r.pins }
