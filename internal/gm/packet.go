// Package gm rebuilds the GM user-level message-passing layer the paper
// runs on: a programmable NIC (the LANai "control program") reachable
// from user space without kernel involvement, send/receive tokens,
// registered (pinned) memory, and — the paper's §V-A modification — a
// collective packet type for which the NIC can raise a host signal while
// signals are enabled.
package gm

// PacketType distinguishes GM wire packets. Eager, RTS, CTS and Data
// implement the two MPICH-over-GM send modes (§III); Collective is the
// packet type the paper adds for application-bypass messages (§V-A).
type PacketType uint8

const (
	// Eager carries a complete small message copied through pre-pinned
	// bounce buffers.
	Eager PacketType = iota
	// RendezvousRTS announces a large message pinned in place at the
	// sender.
	RendezvousRTS
	// RendezvousCTS tells the sender the receive buffer is pinned and
	// the transfer may proceed.
	RendezvousCTS
	// RendezvousData carries the body of a rendezvous message.
	RendezvousData
	// Collective marks application-bypass collective traffic: the only
	// packet type for which the NIC raises a signal (§V-A).
	Collective
	// CollectiveRTS and CollectiveData extend the collective type to
	// rendezvous-sized payloads — the rendezvous-mode application
	// bypass the paper left as future work (§V-B: "We have not yet
	// investigated a rendezvous-mode implementation"). Both raise host
	// signals like Collective, so a parent computing through a late
	// large child still reacts asynchronously at every protocol step.
	CollectiveRTS
	CollectiveCTS
	CollectiveData
	// NICCollective marks traffic of the NIC-based reduction extension
	// (§VII future work, refs [9–11]): the LANai control program itself
	// combines contributions, so these packets are consumed by NIC
	// firmware and, except for final results, never reach the host.
	NICCollective
	// RelAck is a standalone cumulative acknowledgment of the
	// reliability protocol (EnableReliability). It is unsequenced,
	// consumed entirely inside the receiving NIC, and only sent when no
	// reverse data traffic piggybacked the ack first.
	RelAck
)

// String implements fmt.Stringer for diagnostics.
func (t PacketType) String() string {
	switch t {
	case Eager:
		return "eager"
	case RendezvousRTS:
		return "rts"
	case RendezvousCTS:
		return "cts"
	case RendezvousData:
		return "data"
	case Collective:
		return "collective"
	case CollectiveRTS:
		return "collective-rts"
	case CollectiveCTS:
		return "collective-cts"
	case CollectiveData:
		return "collective-data"
	case NICCollective:
		return "nic-collective"
	case RelAck:
		return "rel-ack"
	}
	return "unknown"
}

// headerBytes is the wire overhead charged per packet (GM header plus the
// MPICH envelope).
const headerBytes = 48

// Packet is a GM message. The envelope fields (Ctx, Tag, SrcRank) belong
// to the MPI layer; the collective header (Root, Seq) is the paper's
// addition, used by the asynchronous reduction logic to identify the
// reduction instance a late message belongs to (§IV-D) and to let the
// progress engine detect "current process is the root" (Fig. 4).
type Packet struct {
	Type             PacketType
	SrcNode, DstNode int

	// MPI envelope.
	Ctx     uint16
	Tag     int32
	SrcRank int32

	// Collective header.
	Root int32
	Seq  uint64

	// Rendezvous protocol fields.
	Handle   uint64 // matches CTS/Data to the posted rendezvous
	TotalLen int    // full message length announced by an RTS

	// NIC-based reduction fields: the firmware needs the operator and
	// element type to combine contributions in NIC memory.
	AuxOp uint8
	AuxDT uint8

	// Reliability header (EnableReliability): per-link sequence number
	// (0 = unsequenced), piggybacked cumulative ack, and how many
	// retransmit rounds this copy has been through — nonzero Retries
	// lets the MPI progress engine count messages the fabric made it
	// wait for.
	RelSeq  uint64
	RelAck  uint64
	Retries uint8

	// Data is the payload as it sits in NIC / bounce-buffer memory.
	Data []byte

	// owner is the NIC pool the packet was allocated from (GetPacket);
	// PutPacket recycles into it so pools stay balanced even when
	// traffic is asymmetric (a leaf sends constantly but receives
	// almost nothing). Packets built as plain literals keep the zero
	// value and pass through PutPacket untouched, so a consumer can
	// release unconditionally.
	owner *NIC
}

// WireSize returns the bytes the packet occupies on the link.
func (pkt *Packet) WireSize() int { return headerBytes + len(pkt.Data) }

// IsCollective reports whether the packet belongs to the
// application-bypass family for which the NIC may raise signals.
func (pkt *Packet) IsCollective() bool {
	switch pkt.Type {
	case Collective, CollectiveRTS, CollectiveCTS, CollectiveData:
		return true
	}
	return false
}
