package gm

import (
	"fmt"

	"abred/internal/fabric"
	"abred/internal/model"
	"abred/internal/sim"
)

// Stats counts NIC activity.
type Stats struct {
	Sent, Received     uint64
	BytesSent          uint64
	SignalsRaised      uint64
	SignalsSuppressed  uint64 // collective arrivals while signals disabled
	FirmwareConsumed   uint64 // packets absorbed by NIC-resident firmware
	TokenStallsHost    uint64 // host sends that had to wait for a token
	TokenStallsNIC     uint64 // deliveries stalled for a receive token
	MaxHostQueueDepth  int
	CollectiveArrivals uint64
}

// nicEvent multiplexes the two work sources of the LANai control program.
type nicEvent struct {
	send *Packet // DMA descriptor posted by the host
	recv *Packet // packet arriving from the wire
}

// Firmware is NIC-resident packet processing (the paper's future-work
// direction, refs [9–11]: perform part of the reduction on the NIC).
// It runs in NIC-process context; returning true absorbs the packet so
// it is never delivered to the host.
type Firmware func(nicProc *sim.Proc, pkt *Packet) bool

// NIC models one GM network interface: a LANai processor running a
// control program (a dedicated simulated process), DMA queues to and
// from the host, and the paper's signal machinery.
type NIC struct {
	k    *sim.Kernel
	node int
	cm   model.CostModel
	fab  *fabric.Fabric

	evQ   *sim.Queue[nicEvent]
	hostQ *sim.Queue[*Packet]

	signalsOn  bool
	sigPending bool
	sigTarget  func()

	firmware Firmware

	sendTokens int
	tokenCond  *sim.Cond

	// Receive tokens: GM can only deliver into host buffers the
	// application provided in advance; a delivery with no token parked
	// in NIC memory until the host recycles one.
	recvTokens int
	recvCond   *sim.Cond

	stats Stats
}

// DefaultSendTokens matches GM's out-of-the-box send-token allotment.
const DefaultSendTokens = 61

// DefaultRecvTokens is the receive-buffer pool MPICH-over-GM provides
// at startup.
const DefaultRecvTokens = 256

// NewNIC creates the NIC for one node and starts its control program.
func NewNIC(k *sim.Kernel, node int, cm model.CostModel, fab *fabric.Fabric) *NIC {
	n := &NIC{
		k:          k,
		node:       node,
		cm:         cm,
		fab:        fab,
		evQ:        sim.NewQueue[nicEvent](fmt.Sprintf("nic%d.ev", node)),
		hostQ:      sim.NewQueue[*Packet](fmt.Sprintf("nic%d.host", node)),
		sendTokens: DefaultSendTokens,
		tokenCond:  sim.NewCond(fmt.Sprintf("nic%d.tokens", node)),
		recvTokens: DefaultRecvTokens,
		recvCond:   sim.NewCond(fmt.Sprintf("nic%d.rtokens", node)),
	}
	fab.Connect(node, func(fr fabric.Frame) {
		n.evQ.Put(nicEvent{recv: fr.Payload.(*Packet)})
	})
	ctl := k.Spawn(fmt.Sprintf("lanai%d", node), n.controlProgram)
	ctl.SetDaemon(true)
	return n
}

// Node returns the node id this NIC serves.
func (n *NIC) Node() int { return n.node }

// Stats returns a copy of the NIC counters.
func (n *NIC) Stats() Stats { return n.stats }

// controlProgram is the LANai firmware loop: it serializes send-side and
// receive-side packet processing on the single NIC processor.
func (n *NIC) controlProgram(p *sim.Proc) {
	for {
		ev := n.evQ.Get(p)
		switch {
		case ev.send != nil:
			pkt := ev.send
			// DMA the payload across PCI and process the packet.
			p.Sleep(n.cm.NICPkt(len(pkt.Data)))
			n.fab.Send(fabric.Frame{Src: n.node, Dst: pkt.DstNode, Size: pkt.WireSize(), Payload: pkt})
			n.stats.Sent++
			n.stats.BytesSent += uint64(pkt.WireSize())
			n.sendTokens++
			n.tokenCond.Broadcast()
		case ev.recv != nil:
			pkt := ev.recv
			p.Sleep(n.cm.NICPkt(len(pkt.Data)))
			n.stats.Received++
			if n.firmware != nil && n.firmware(p, pkt) {
				n.stats.FirmwareConsumed++
				continue
			}
			n.deliverToHost(p, pkt)
			if pkt.IsCollective() {
				n.stats.CollectiveArrivals++
				if n.signalsOn {
					n.raise()
				} else {
					n.stats.SignalsSuppressed++
				}
			}
		}
	}
}

// deliverToHost lands a packet in the host receive queue, first
// acquiring a receive token (backpressure: with none free the packet —
// and the control program — waits in NIC memory).
func (n *NIC) deliverToHost(p *sim.Proc, pkt *Packet) {
	for n.recvTokens == 0 {
		n.stats.TokenStallsNIC++
		n.recvCond.Wait(p)
	}
	n.recvTokens--
	n.hostQ.Put(pkt)
	if d := n.hostQ.Len(); d > n.stats.MaxHostQueueDepth {
		n.stats.MaxHostQueueDepth = d
	}
}

// ReturnRecvToken recycles one receive buffer; hosts call it for every
// packet they consume.
func (n *NIC) ReturnRecvToken() {
	n.recvTokens++
	n.recvCond.Broadcast()
}

// ProvideRecvTokens grows the receive-buffer pool.
func (n *NIC) ProvideRecvTokens(count int) {
	n.recvTokens += count
	n.recvCond.Broadcast()
}

// raise delivers a signal to the host unless one is already pending —
// Unix signals of one number coalesce, and so does this model. Delivery
// takes SignalDelay of kernel latency, during which further arrivals
// batch into the same handler invocation.
func (n *NIC) raise() {
	if n.sigPending || n.sigTarget == nil {
		return
	}
	n.sigPending = true
	n.stats.SignalsRaised++
	if d := n.cm.C.SignalDelay; d > 0 {
		n.k.After(d, n.sigTarget)
	} else {
		n.sigTarget()
	}
}

// Send hands a packet to the NIC, consuming a send token; the caller
// parks if none are free (GM flow control). Host-side costs (library
// overhead, bounce-buffer copies) are the caller's to charge — this is
// the boundary where the message leaves host software.
func (n *NIC) Send(p *sim.Proc, pkt *Packet) {
	for n.sendTokens == 0 {
		n.stats.TokenStallsHost++
		n.tokenCond.Wait(p)
	}
	n.sendTokens--
	pkt.SrcNode = n.node
	n.evQ.Put(nicEvent{send: pkt})
}

// Poll removes the next received packet without blocking.
func (n *NIC) Poll() (*Packet, bool) { return n.hostQ.TryGet() }

// HasPackets reports whether received packets are waiting for the host.
func (n *NIC) HasPackets() bool { return n.hostQ.Len() > 0 }

// Recv parks until a packet arrives. The caller models GM's polling
// receive, so it should charge the blocked time as CPU.
func (n *NIC) Recv(p *sim.Proc) *Packet { return n.hostQ.Get(p) }

// RecvTimeout is Recv bounded by d.
func (n *NIC) RecvTimeout(p *sim.Proc, d sim.Time) (*Packet, bool) {
	return n.hostQ.GetTimeout(p, d)
}

// EnableSignals lets the NIC raise a signal on collective-packet
// arrival (§V-A).
func (n *NIC) EnableSignals() { n.signalsOn = true }

// DisableSignals stops signal generation; packets still queue for
// polling.
func (n *NIC) DisableSignals() { n.signalsOn = false }

// SignalsEnabled reports the current signal mode.
func (n *NIC) SignalsEnabled() bool { return n.signalsOn }

// SetSignalHandler installs the host-side signal target. It runs in NIC
// process context; implementations typically Interrupt the host process.
func (n *NIC) SetSignalHandler(fn func()) { n.sigTarget = fn }

// ConsumePendingSignal atomically claims the pending signal, reporting
// whether one was outstanding. Two paths race for it: the host-side
// signal handler, and the progress engine when it dequeues the packet
// first (in which case the handler finds nothing and the trap cost is
// charged where the packet was actually processed).
func (n *NIC) ConsumePendingSignal() bool {
	if !n.sigPending {
		return false
	}
	n.sigPending = false
	return true
}

// SetFirmware installs NIC-resident packet processing (NIC-based
// reduction extension).
func (n *NIC) SetFirmware(fw Firmware) { n.firmware = fw }

// Deliver injects a host-built packet into the NIC as if it had arrived
// from the wire; the control program charges normal processing costs and
// offers it to the firmware. The NIC-based reduction uses this to
// deposit the host's own contribution into NIC memory.
func (n *NIC) Deliver(pkt *Packet) {
	pkt.SrcNode = n.node
	n.evQ.Put(nicEvent{recv: pkt})
}

// DeliverToHost places a firmware-built packet onto the host receive
// queue, bypassing firmware re-processing but respecting receive
// tokens. Must be called from NIC-process context.
func (n *NIC) DeliverToHost(p *sim.Proc, pkt *Packet) {
	n.deliverToHost(p, pkt)
}

// ForwardFromNIC sends a firmware-built packet onto the wire, charging
// LANai processing. Must be called from NIC-process context with the
// control program's proc.
func (n *NIC) ForwardFromNIC(p *sim.Proc, pkt *Packet) {
	p.Sleep(n.cm.NICPkt(len(pkt.Data)))
	pkt.SrcNode = n.node
	n.fab.Send(fabric.Frame{Src: n.node, Dst: pkt.DstNode, Size: pkt.WireSize(), Payload: pkt})
	n.stats.Sent++
	n.stats.BytesSent += uint64(pkt.WireSize())
}
