package gm

import (
	"fmt"

	"abred/internal/fabric"
	"abred/internal/model"
	"abred/internal/sim"
)

// Stats counts NIC activity.
type Stats struct {
	Sent, Received     uint64
	BytesSent          uint64
	SignalsRaised      uint64
	SignalsSuppressed  uint64 // collective arrivals while signals disabled
	FirmwareConsumed   uint64 // packets absorbed by NIC-resident firmware
	TokenStallsHost    uint64 // host sends that had to wait for a token
	TokenStallsNIC     uint64 // deliveries stalled for a receive token
	MaxHostQueueDepth  int
	CollectiveArrivals uint64

	// Reliability counters (EnableReliability).
	Retransmits    uint64 // data packets re-sent after a timeout
	RelAcksSent    uint64 // standalone cumulative acks emitted
	RelDupsDropped uint64 // duplicate / out-of-order arrivals discarded
	RelOverflow    uint64 // sends past the retransmit-ring bound
	RelPortErrors  uint64 // peers declared dead after the retry budget
}

// nicEvent multiplexes the two work sources of the LANai control program.
type nicEvent struct {
	send *Packet // DMA descriptor posted by the host
	recv *Packet // packet arriving from the wire
}

// Firmware is NIC-resident packet processing (the paper's future-work
// direction, refs [9–11]: perform part of the reduction on the NIC).
// It runs inline in control-program context (a callback daemon, so it
// must not park); LANai processing time is charged through fw.Charge and
// packet actions are posted with fw.DeliverToHost / fw.Forward, which
// the control program performs once the charged time has elapsed.
// Returning true absorbs the packet so it is never delivered to the
// host; a handler that declines a packet must not charge or post
// actions.
type Firmware func(fw *FwOps, pkt *Packet) bool

// FwOps collects one firmware invocation's time charge and deferred
// packet actions. The control program sleeps for the accumulated charge,
// then performs the actions in posting order — equivalent in virtual
// time to a blocking control program that interleaved Sleep calls with
// its sends, since all actions happen at the end of the charged window.
type FwOps struct {
	charge sim.Time
	acts   []fwAct
}

// fwAct is one deferred firmware action.
type fwAct struct {
	deliver bool // true: host delivery (token-gated); false: wire send
	pkt     *Packet
}

// Charge accrues d of LANai processing time for the current packet.
func (o *FwOps) Charge(d sim.Time) { o.charge += d }

// DeliverToHost posts pkt for delivery to the host receive queue after
// the charged time elapses, respecting receive tokens.
func (o *FwOps) DeliverToHost(pkt *Packet) {
	o.acts = append(o.acts, fwAct{deliver: true, pkt: pkt})
}

// Forward posts pkt for transmission onto the wire after the charged
// time elapses.
func (o *FwOps) Forward(pkt *Packet) {
	o.acts = append(o.acts, fwAct{pkt: pkt})
}

// reset clears the ops for the next invocation, keeping capacity.
func (o *FwOps) reset() {
	o.charge = 0
	o.acts = o.acts[:0]
}

// Control-program states (see NIC.step).
const (
	nicIdle      = iota // waiting for evQ work
	nicBusy             // charging LANai per-packet processing time
	nicFwActs           // performing deferred firmware actions
	nicStalled          // host delivery waiting on a receive token
	nicFwStalled        // firmware delivery waiting on a receive token
)

// NIC models one GM network interface: a LANai processor running a
// control program, DMA queues to and from the host, and the paper's
// signal machinery. The control program is a callback daemon — a state
// machine driven entirely in scheduler context — rather than a
// goroutine: at N nodes that removes N parked goroutines and two
// context switches per NIC packet from the simulation hot path.
type NIC struct {
	k    *sim.Kernel
	node int
	cm   model.CostModel
	fab  *fabric.Fabric

	// The control daemon, work queues and token condition are embedded
	// by value: one NIC is one allocation (plus its name strings), so
	// NewNICs can slab-allocate a whole cluster's worth.
	ctl   sim.Daemon
	evQ   sim.Queue[nicEvent] // drained by the control program via TryGet
	hostQ sim.Queue[*Packet]

	st    int      // control-program state
	cur   nicEvent // event being processed while busy
	fw    FwOps    // current packet's firmware charge and actions
	fwIdx int      // next firmware action to perform

	signalsOn  bool
	sigPending bool
	sigTarget  func()

	firmware Firmware

	sendTokens int
	tokenCond  sim.Cond

	// Receive tokens: GM can only deliver into host buffers the
	// application provided in advance; a delivery with no token parks
	// the control program (in NIC memory) until the host recycles one.
	recvTokens int

	// pfree recycles eager packets and their payload buffers: the
	// sender draws from its NIC's pool, the consumer releases into its
	// own NIC's pool (same kernel, so no synchronization is needed).
	// poolCap bounds it; SetPacketPoolCap right-sizes the default for
	// very large clusters.
	pfree   []*Packet
	poolCap int

	// rel is the reliability engine (see reliability.go), nil unless
	// EnableReliability was called; relErr records its first port
	// error for cluster.Run to surface. relIdle stashes the engine
	// while a reused cluster runs without faults, so toggling
	// reliability across Reset cycles does not register fresh daemons.
	rel     *relState
	relIdle *relState
	relErr  error

	stats Stats
}

// maxPacketPool is the default cap on the per-NIC recycled-packet list,
// so a burst does not pin its high-water mark in memory forever.
const maxPacketPool = 256

// SetPacketPoolCap bounds this NIC's recycled-packet list. Cluster
// construction right-sizes the default for the cluster scale: at 16384
// nodes the default 256-packet pools could pin four million idle
// packets. Pool hits and misses never touch virtual time, so the cap is
// invisible to simulation results.
func (n *NIC) SetPacketPoolCap(c int) {
	if c < 4 {
		c = 4
	}
	n.poolCap = c
	if len(n.pfree) > c {
		for i := c; i < len(n.pfree); i++ {
			n.pfree[i] = nil
		}
		n.pfree = n.pfree[:c]
	}
}

// GetPacket returns a packet with a zeroed header and a Data buffer of
// length size, reusing a recycled packet (and its buffer, when large
// enough) if one is available. The final consumer releases it with
// PutPacket on any NIC of the same kernel.
func (n *NIC) GetPacket(size int) *Packet {
	var pkt *Packet
	if l := len(n.pfree); l > 0 {
		pkt = n.pfree[l-1]
		n.pfree[l-1] = nil
		n.pfree = n.pfree[:l-1]
	} else {
		pkt = &Packet{owner: n}
	}
	if cap(pkt.Data) < size {
		pkt.Data = make([]byte, size)
	}
	pkt.Data = pkt.Data[:size]
	return pkt
}

// PutPacket releases a packet whose payload has been fully consumed
// (copied or combined out). Only pool-allocated packets are recycled —
// into the pool they came from, which may be another NIC of the same
// (single-threaded) kernel. Literals pass through to the garbage
// collector, so release sites can call this unconditionally.
func (n *NIC) PutPacket(pkt *Packet) {
	if pkt == nil || pkt.owner == nil {
		return
	}
	o := pkt.owner
	if len(o.pfree) >= o.poolCap {
		return
	}
	data := pkt.Data[:0]
	*pkt = Packet{owner: o, Data: data}
	o.pfree = append(o.pfree, pkt)
}

// DefaultSendTokens matches GM's out-of-the-box send-token allotment.
const DefaultSendTokens = 61

// DefaultRecvTokens is the receive-buffer pool MPICH-over-GM provides
// at startup.
const DefaultRecvTokens = 256

// NewNIC creates the NIC for one node and starts its control program.
func NewNIC(k *sim.Kernel, node int, cm model.CostModel, fab *fabric.Fabric) *NIC {
	n := &NIC{}
	n.init(k, node, cm, fab)
	return n
}

// NewNICs creates the NICs of a whole cluster as one slab: one backing
// allocation for all N NIC structs (queues, conditions and control
// daemons are embedded by value) instead of N separate ones, which both
// speeds construction and keeps per-node state contiguous.
func NewNICs(k *sim.Kernel, cms []model.CostModel, fab *fabric.Fabric) []*NIC {
	slab := make([]NIC, len(cms))
	nics := make([]*NIC, len(cms))
	for i := range slab {
		slab[i].init(k, i, cms[i], fab)
		nics[i] = &slab[i]
	}
	return nics
}

// NewNICsPart is NewNICs for a partitioned cluster: one slab, but each
// NIC runs on the kernel of its node's logical process (ks[pmap[i]]),
// so its control program, queues and reliability daemon all live where
// the node's events execute.
func NewNICsPart(ks []*sim.Kernel, pmap []int32, cms []model.CostModel, fab *fabric.Fabric) []*NIC {
	slab := make([]NIC, len(cms))
	nics := make([]*NIC, len(cms))
	for i := range slab {
		slab[i].init(ks[pmap[i]], i, cms[i], fab)
		nics[i] = &slab[i]
	}
	return nics
}

// ReownHook returns the fabric Reown hook for a partitioned cluster:
// a pooled packet crossing LPs is transferred to its destination's NIC
// pool, so PutPacket at the consumer never touches a pool owned by
// another LP. Literal (unpooled) packets pass through untouched.
func ReownHook(nics []*NIC) func(payload any, dst int) {
	return func(payload any, dst int) {
		if pkt, ok := payload.(*Packet); ok && pkt.owner != nil {
			pkt.owner = nics[dst]
		}
	}
}

// init wires one NIC in place and starts its control program.
func (n *NIC) init(k *sim.Kernel, node int, cm model.CostModel, fab *fabric.Fabric) {
	n.k = k
	n.node = node
	n.cm = cm
	n.fab = fab
	n.evQ.Init(fmt.Sprintf("nic%d.ev", node))
	n.hostQ.Init(fmt.Sprintf("nic%d.host", node))
	n.tokenCond.Init(fmt.Sprintf("nic%d.tokens", node))
	n.sendTokens = DefaultSendTokens
	n.recvTokens = DefaultRecvTokens
	n.poolCap = maxPacketPool
	fab.Connect(node, n.onFrame)
	k.InitDaemon(&n.ctl, fmt.Sprintf("lanai%d", node), n.step)
	n.ctl.SetStatus("ev queue")
}

// onFrame is the fabric delivery sink: the arriving packet enters the
// control program's event queue.
func (n *NIC) onFrame(fr fabric.Frame) {
	n.evQ.Put(nicEvent{recv: fr.Payload.(*Packet)})
	n.ctl.Wake()
}

// Reset returns the NIC to its just-built state for a cluster reuse
// cycle, keeping what is expensive and semantically inert: the packet
// pool (pool hits never touch virtual time), queue/condition ring
// capacity, and the registered control daemon (already disarmed by the
// kernel reset that precedes this call). reliable switches the
// reliability engine on — with all per-peer state cleared — or stashes
// it for a later lossy run.
func (n *NIC) Reset(reliable bool) {
	n.evQ.Reset()
	n.hostQ.Reset()
	n.tokenCond.Reset()
	n.st = nicIdle
	n.cur = nicEvent{}
	n.fw.reset()
	n.fwIdx = 0
	n.signalsOn = false
	n.sigPending = false
	n.sigTarget = nil
	n.firmware = nil
	n.sendTokens = DefaultSendTokens
	n.recvTokens = DefaultRecvTokens
	n.stats = Stats{}
	n.relErr = nil
	n.setReliability(reliable)
	n.ctl.SetStatus("ev queue")
}

// Node returns the node id this NIC serves.
func (n *NIC) Node() int { return n.node }

// Stats returns a copy of the NIC counters.
func (n *NIC) Stats() Stats { return n.stats }

// step is the LANai control-program state machine: it serializes
// send-side and receive-side packet processing on the single NIC
// processor, exactly like the goroutine loop it replaced — each state
// transition mirrors one park point of the old blocking code, so packet
// timings and orderings are unchanged.
func (n *NIC) step() {
	for {
		switch n.st {
		case nicIdle:
			ev, ok := n.evQ.TryGet()
			if !ok {
				n.ctl.SetStatus("ev queue")
				return
			}
			n.cur = ev
			n.st = nicBusy
			pkt := ev.send
			if pkt == nil {
				pkt = ev.recv
			}
			// DMA the payload across PCI and process the packet.
			n.ctl.Sleep(n.cm.NICPkt(len(pkt.Data)))
			return

		case nicBusy:
			if pkt := n.cur.send; pkt != nil {
				// Under reliability, a host send's token stays held
				// until the packet is acked (GM completes a send on
				// guaranteed delivery); otherwise it recycles now.
				hold := n.rel != nil && n.rel.sequence(pkt, true)
				n.inject(pkt)
				if !hold {
					n.sendTokens++
					n.tokenCond.Broadcast()
				}
				n.st = nicIdle
				continue
			}
			pkt := n.cur.recv
			n.stats.Received++
			if n.rel != nil && !n.rel.accept(pkt) {
				// Standalone ack, duplicate, or out-of-order arrival:
				// swallowed (and recycled) by the reliability engine.
				n.st = nicIdle
				continue
			}
			if n.firmware != nil {
				n.fw.reset()
				n.fwIdx = 0
				if n.firmware(&n.fw, pkt) {
					n.stats.FirmwareConsumed++
					n.st = nicFwActs
					if n.fw.charge > 0 {
						n.ctl.Sleep(n.fw.charge)
						return
					}
					continue
				}
			}
			if n.recvTokens == 0 {
				n.stats.TokenStallsNIC++
				n.st = nicStalled
				n.ctl.SetStatus("recv token")
				return
			}
			n.deliver(pkt)
			n.st = nicIdle

		case nicStalled:
			if n.recvTokens == 0 {
				return // spurious wake; still no token
			}
			n.deliver(n.cur.recv)
			n.st = nicIdle

		case nicFwActs:
			for n.fwIdx < len(n.fw.acts) {
				act := n.fw.acts[n.fwIdx]
				if act.deliver && n.recvTokens == 0 {
					n.stats.TokenStallsNIC++
					n.st = nicFwStalled
					n.ctl.SetStatus("recv token")
					return
				}
				n.fwIdx++
				if act.deliver {
					n.recvTokens--
					n.pushHost(act.pkt)
				} else {
					act.pkt.SrcNode = n.node
					if n.rel != nil {
						n.rel.sequence(act.pkt, false)
					}
					n.inject(act.pkt)
				}
			}
			n.st = nicIdle

		case nicFwStalled:
			if n.recvTokens == 0 {
				return // spurious wake; still no token
			}
			n.st = nicFwActs
		}
	}
}

// inject puts pkt on the wire and updates send-side counters.
func (n *NIC) inject(pkt *Packet) {
	n.fab.Send(fabric.Frame{Src: n.node, Dst: pkt.DstNode, Size: pkt.WireSize(), Payload: pkt})
	n.stats.Sent++
	n.stats.BytesSent += uint64(pkt.WireSize())
}

// deliver consumes a receive token, lands pkt in the host queue, and
// raises the collective-arrival signal if enabled. Callers have already
// verified a token is free.
func (n *NIC) deliver(pkt *Packet) {
	n.recvTokens--
	n.pushHost(pkt)
	if pkt.IsCollective() {
		n.stats.CollectiveArrivals++
		if n.signalsOn {
			n.raise()
		} else {
			n.stats.SignalsSuppressed++
		}
	}
}

// pushHost lands a packet in the host receive queue.
func (n *NIC) pushHost(pkt *Packet) {
	n.hostQ.Put(pkt)
	if d := n.hostQ.Len(); d > n.stats.MaxHostQueueDepth {
		n.stats.MaxHostQueueDepth = d
	}
}

// ReturnRecvToken recycles one receive buffer; hosts call it for every
// packet they consume.
func (n *NIC) ReturnRecvToken() {
	n.recvTokens++
	n.wakeIfStalled()
}

// ProvideRecvTokens grows the receive-buffer pool.
func (n *NIC) ProvideRecvTokens(count int) {
	n.recvTokens += count
	n.wakeIfStalled()
}

// wakeIfStalled resumes the control program when it is parked on a
// receive token.
func (n *NIC) wakeIfStalled() {
	if n.st == nicStalled || n.st == nicFwStalled {
		n.ctl.Wake()
	}
}

// raise delivers a signal to the host unless one is already pending —
// Unix signals of one number coalesce, and so does this model. Delivery
// takes SignalDelay of kernel latency, during which further arrivals
// batch into the same handler invocation.
func (n *NIC) raise() {
	if n.sigPending || n.sigTarget == nil {
		return
	}
	n.sigPending = true
	n.stats.SignalsRaised++
	if d := n.cm.C.SignalDelay; d > 0 {
		n.k.After(d, n.sigTarget)
	} else {
		n.sigTarget()
	}
}

// Send hands a packet to the NIC, consuming a send token; the caller
// parks if none are free (GM flow control). Host-side costs (library
// overhead, bounce-buffer copies) are the caller's to charge — this is
// the boundary where the message leaves host software.
func (n *NIC) Send(p *sim.Proc, pkt *Packet) {
	for n.sendTokens == 0 {
		n.stats.TokenStallsHost++
		n.tokenCond.Wait(p)
	}
	n.sendTokens--
	pkt.SrcNode = n.node
	n.evQ.Put(nicEvent{send: pkt})
	n.ctl.Wake()
}

// Poll removes the next received packet without blocking.
func (n *NIC) Poll() (*Packet, bool) { return n.hostQ.TryGet() }

// HasPackets reports whether received packets are waiting for the host.
func (n *NIC) HasPackets() bool { return n.hostQ.Len() > 0 }

// Recv parks until a packet arrives. The caller models GM's polling
// receive, so it should charge the blocked time as CPU.
func (n *NIC) Recv(p *sim.Proc) *Packet { return n.hostQ.Get(p) }

// RecvTimeout is Recv bounded by d.
func (n *NIC) RecvTimeout(p *sim.Proc, d sim.Time) (*Packet, bool) {
	return n.hostQ.GetTimeout(p, d)
}

// EnableSignals lets the NIC raise a signal on collective-packet
// arrival (§V-A).
func (n *NIC) EnableSignals() { n.signalsOn = true }

// DisableSignals stops signal generation; packets still queue for
// polling.
func (n *NIC) DisableSignals() { n.signalsOn = false }

// SignalsEnabled reports the current signal mode.
func (n *NIC) SignalsEnabled() bool { return n.signalsOn }

// SetSignalHandler installs the host-side signal target. It runs in
// control-program (scheduler) context; implementations typically
// Interrupt the host process.
func (n *NIC) SetSignalHandler(fn func()) { n.sigTarget = fn }

// ConsumePendingSignal atomically claims the pending signal, reporting
// whether one was outstanding. Two paths race for it: the host-side
// signal handler, and the progress engine when it dequeues the packet
// first (in which case the handler finds nothing and the trap cost is
// charged where the packet was actually processed).
func (n *NIC) ConsumePendingSignal() bool {
	if !n.sigPending {
		return false
	}
	n.sigPending = false
	return true
}

// SetFirmware installs NIC-resident packet processing (NIC-based
// reduction extension).
func (n *NIC) SetFirmware(fw Firmware) { n.firmware = fw }

// Deliver injects a host-built packet into the NIC as if it had arrived
// from the wire; the control program charges normal processing costs and
// offers it to the firmware. The NIC-based reduction uses this to
// deposit the host's own contribution into NIC memory.
func (n *NIC) Deliver(pkt *Packet) {
	pkt.SrcNode = n.node
	n.evQ.Put(nicEvent{recv: pkt})
	n.ctl.Wake()
}
