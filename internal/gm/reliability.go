package gm

import (
	"fmt"
	"time"

	"abred/internal/fabric"
	"abred/internal/sim"
)

// Reliability protocol — EnableReliability — in one page:
//
// GM's firmware guarantees in-order, exactly-once delivery per
// (source, destination) pair; on a perfect fabric the simulator gets
// that for free from the fabric's per-link FIFO. Under fault injection
// (internal/fault) frames are dropped, duplicated and delayed, so the
// NIC must earn the guarantee the way real GM does: at the NIC level,
// invisible to MPICH.
//
//   - Every sequenced packet (all data types) carries RelSeq, a per-link
//     sequence number starting at 1, and RelAck, a piggybacked cumulative
//     ack for the reverse direction.
//   - The receiver accepts only RelSeq == recvdTo+1 (go-back-N), which
//     preserves the FIFO ordering MPICH-over-GM relies on; duplicates
//     and out-of-order arrivals are discarded, recycled, and re-acked.
//   - The sender keeps a deep copy of each unacked packet in a bounded
//     per-link retransmit ring (the original is consumed — and pooled —
//     by the receiver). A per-NIC callback daemon, woken by WakeAt
//     deadlines, resends the whole window on timeout with exponential
//     backoff; relMaxRounds unanswered rounds mark the port dead: the
//     ring is released, the error is recorded for cluster.Run to
//     surface, and the simulation stops instead of hanging the
//     deadlock watchdog.
//   - Acks are delayed relAckDelay so reverse data traffic piggybacks
//     them for free; a standalone RelAck packet (unsequenced) goes out
//     only when no reverse traffic materialized.
//   - A host send's token is held until the packet is acked — GM's real
//     semantics: the send callback fires on guaranteed delivery — so
//     the token allotment doubles as the reliability window and keeps
//     the ring under relRingCap.
//
// Loopback frames and local NIC.Deliver deposits never cross the lossy
// switch and bypass the protocol entirely. All timer decisions run in
// scheduler context on the daemon; no goroutines, no real time.
const (
	// relAckDelay batches cumulative acks: reverse data traffic inside
	// the window piggybacks the ack for free.
	relAckDelay = 30 * time.Microsecond
	// relBaseRTO is the first retransmit timeout — far above the
	// one-way small-packet latency plus relAckDelay, so a healthy link
	// never spuriously retransmits.
	relBaseRTO = 150 * time.Microsecond
	// relHopRTO widens a link's base timeout per switch crossing beyond
	// the first: on a routed multi-stage fabric the round trip grows
	// with hop latency and queuing at shared uplinks, so the RTO must
	// key on the routed path, not just the endpoints. Single-crossbar
	// links (one crossing) keep exactly relBaseRTO.
	relHopRTO = 25 * time.Microsecond
	// relMaxRTO caps the exponential backoff.
	relMaxRTO = 2400 * time.Microsecond
	// relMaxRounds of unanswered retransmission mark the port dead.
	relMaxRounds = 8
	// relRingCap bounds the per-link retransmit ring. Host sends stay
	// under it via token flow control; RelOverflow counts (and the ring
	// absorbs) firmware-generated bursts that exceed it.
	relRingCap = 128
)

// relEntry is one unacked sequenced packet, deep-copied at send time:
// the original travels the wire and is consumed (and recycled) by the
// receiver, so retransmission must rebuild from an owned copy.
type relEntry struct {
	hdr   Packet // header copy; Data and owner stay nil
	data  []byte // owned copy of the payload
	token bool   // holds a send token until acked (host sends only)
}

// relLink is the reliability state for one peer, both directions.
type relLink struct {
	// Sender side.
	nextSeq uint64      // last sequence number assigned
	ring    []*relEntry // unacked packets, in sequence order
	rtxAt   sim.Time    // retransmit deadline (0 = ring empty)
	rto     sim.Time    // current timeout, backoff applied
	rounds  int         // consecutive timeout rounds without progress

	// Receiver side.
	recvdTo  uint64   // highest in-order sequence received
	sentAck  uint64   // cumulative ack last conveyed to the peer
	ackAt    sim.Time // standalone-ack deadline (0 = none owed)
	forceAck bool     // re-ack even without progress (duplicate seen)

	active bool // link is in the daemon's active list
}

// deadline returns the link's earliest pending deadline, 0 if none.
func (l *relLink) deadline() sim.Time {
	switch {
	case l.ackAt == 0:
		return l.rtxAt
	case l.rtxAt == 0:
		return l.ackAt
	case l.rtxAt < l.ackAt:
		return l.rtxAt
	}
	return l.ackAt
}

// relState is one NIC's reliability engine: per-peer link state plus
// the timer daemon that drives delayed acks and retransmissions.
type relState struct {
	n      *NIC
	d      *sim.Daemon
	links  []relLink
	active []int // peers with a pending deadline
	efree  []*relEntry

	// rto0 is the hop-scaled base retransmit timeout, indexed by routed
	// switch-crossing count. Built once at wire-up (the topology is a
	// construction-time property), so linkRTO is a pure read — safe from
	// any logical process without lazy per-link recomputation, and O(max
	// hops) rather than O(peers) to build.
	rto0 []sim.Time
}

// EnableReliability switches the NIC to reliable delivery (see the
// protocol comment above). Call it before any traffic flows; it is
// idempotent. Fault-injected fabrics require it on every NIC — without
// it a dropped frame hangs the collective and a duplicated frame
// corrupts the packet pools.
func (n *NIC) EnableReliability() {
	if n.rel != nil {
		return
	}
	if n.relIdle != nil {
		// A reused cluster re-enabling reliability: revive the stashed
		// engine (its timer daemon is still registered) instead of
		// registering a second one.
		n.rel, n.relIdle = n.relIdle, nil
		n.rel.reset()
		return
	}
	r := &relState{n: n, links: make([]relLink, n.fab.Nodes())}
	r.rto0 = make([]sim.Time, n.fab.MaxHops()+1)
	for h := range r.rto0 {
		r.rto0[h] = relBaseRTO
		if h > 1 {
			r.rto0[h] += sim.Time(h-1) * relHopRTO
		}
	}
	r.d = n.k.NewDaemon(fmt.Sprintf("gmrel%d", n.node), r.step)
	r.d.SetStatus("rel timers")
	n.rel = r
}

// setReliability is the Reset-time toggle: on clears per-peer state (or
// revives/creates the engine), off stashes the engine so its daemon
// registration survives for later lossy runs.
func (n *NIC) setReliability(on bool) {
	if !on {
		if n.rel != nil {
			n.rel.reset()
			n.relIdle, n.rel = n.rel, nil
		}
		return
	}
	if n.rel != nil {
		n.rel.reset()
		return
	}
	n.EnableReliability()
}

// reset clears every per-peer link, recycling ring entries, and keeps
// the entry pool and timer-daemon registration. The kernel reset that
// precedes it already disarmed the daemon's pending step.
func (r *relState) reset() {
	for i := range r.links {
		l := &r.links[i]
		for j, e := range l.ring {
			r.putEntry(e)
			l.ring[j] = nil
		}
		*l = relLink{ring: l.ring[:0]}
	}
	r.active = r.active[:0]
	r.d.SetStatus("rel timers")
}

// ReliabilityEnabled reports whether EnableReliability was called.
func (n *NIC) ReliabilityEnabled() bool { return n.rel != nil }

// RelError returns the first port error recorded by the reliability
// engine (a peer that never acked through the full retry budget), nil
// if delivery is healthy.
func (n *NIC) RelError() error { return n.relErr }

// activate puts the link on the daemon's scan list and pulls the timer
// to its deadline.
func (r *relState) activate(peer int, l *relLink, at sim.Time) {
	if !l.active {
		l.active = true
		r.active = append(r.active, peer)
	}
	r.d.WakeAt(at)
}

// sequence stamps pkt with the next per-link sequence number and the
// freshest cumulative ack for its destination, and records an owned
// copy in the retransmit ring. It reports whether the packet's send
// token (held only by host sends) must be retained until the ack
// arrives. Loopback packets bypass the protocol.
func (r *relState) sequence(pkt *Packet, fromHost bool) bool {
	if pkt.DstNode == r.n.node {
		return false
	}
	l := &r.links[pkt.DstNode]
	l.nextSeq++
	pkt.RelSeq = l.nextSeq
	pkt.RelAck = l.recvdTo
	l.sentAck = l.recvdTo
	l.ackAt = 0
	l.forceAck = false

	e := r.getEntry()
	e.hdr = *pkt
	e.hdr.Data = nil
	e.hdr.owner = nil
	e.data = append(e.data[:0], pkt.Data...)
	e.token = fromHost
	if len(l.ring) >= relRingCap {
		r.n.stats.RelOverflow++
	}
	l.ring = append(l.ring, e)
	if l.rtxAt == 0 {
		l.rto = r.linkRTO(pkt.DstNode)
		l.rtxAt = r.n.k.Now() + l.rto
		r.activate(pkt.DstNode, l, l.rtxAt)
	}
	return fromHost
}

// linkRTO returns the link's base retransmit timeout, scaled by the
// routed hop count to the peer — a pure read of the table built at
// wire-up. On the single crossbar every link answers in one crossing
// and the result is exactly relBaseRTO.
func (r *relState) linkRTO(peer int) sim.Time {
	return r.rto0[r.n.fab.Hops(r.n.node, peer)]
}

// accept runs in the control program's receive path. It reports whether
// pkt should continue to the firmware/host; packets it swallows
// (standalone acks, duplicates, out-of-order arrivals) are recycled
// here and never charge host-side costs.
func (r *relState) accept(pkt *Packet) bool {
	if pkt.SrcNode == r.n.node {
		return true // loopback or local Deliver: never sequenced
	}
	l := &r.links[pkt.SrcNode]
	r.onAck(pkt.SrcNode, l, pkt.RelAck)
	if pkt.Type == RelAck {
		r.n.PutPacket(pkt)
		return false
	}
	if pkt.RelSeq == 0 {
		return true // unsequenced peer (reliability off there)
	}
	if pkt.RelSeq != l.recvdTo+1 {
		// Duplicate or out-of-order. Discard, and re-ack even without
		// progress: the peer may be retransmitting into a lost-ack
		// hole, and only a fresh cumulative ack stops it.
		r.n.stats.RelDupsDropped++
		l.forceAck = true
		if l.ackAt == 0 {
			l.ackAt = r.n.k.Now() + relAckDelay
			r.activate(pkt.SrcNode, l, l.ackAt)
		}
		r.n.PutPacket(pkt)
		return false
	}
	l.recvdTo++
	if l.ackAt == 0 {
		l.ackAt = r.n.k.Now() + relAckDelay
		r.activate(pkt.SrcNode, l, l.ackAt)
	}
	return true
}

// onAck releases ring entries covered by a cumulative ack and resets
// the backoff state when the ack made progress.
func (r *relState) onAck(peer int, l *relLink, ackTo uint64) {
	if len(l.ring) == 0 || ackTo < l.ring[0].hdr.RelSeq {
		return
	}
	k := 0
	for k < len(l.ring) && l.ring[k].hdr.RelSeq <= ackTo {
		e := l.ring[k]
		if e.token {
			r.n.sendTokens++
		}
		r.putEntry(e)
		k++
	}
	r.n.tokenCond.Broadcast()
	m := copy(l.ring, l.ring[k:])
	for i := m; i < len(l.ring); i++ {
		l.ring[i] = nil
	}
	l.ring = l.ring[:m]
	l.rounds = 0
	l.rto = r.linkRTO(peer)
	if len(l.ring) == 0 {
		l.rtxAt = 0
	} else {
		l.rtxAt = r.n.k.Now() + l.rto
		r.activate(peer, l, l.rtxAt)
	}
}

// step is the timer daemon: fire due acks and retransmissions, drop
// idle links from the scan list, re-arm for the earliest remaining
// deadline.
func (r *relState) step() {
	now := r.n.k.Now()
	var next sim.Time
	for i := 0; i < len(r.active); {
		peer := r.active[i]
		l := &r.links[peer]
		if l.ackAt != 0 && l.ackAt <= now {
			r.sendAck(peer, l)
		}
		if l.rtxAt != 0 && l.rtxAt <= now {
			if !r.retransmit(peer, l) {
				return // port error; simulation is stopping
			}
		}
		d := l.deadline()
		if d == 0 {
			l.active = false
			last := len(r.active) - 1
			r.active[i] = r.active[last]
			r.active = r.active[:last]
			continue
		}
		if next == 0 || d < next {
			next = d
		}
		i++
	}
	if next != 0 {
		r.d.WakeAt(next)
	}
}

// sendAck emits a standalone cumulative ack if reverse traffic did not
// piggyback one inside the delay window.
func (r *relState) sendAck(peer int, l *relLink) {
	l.ackAt = 0
	if l.sentAck == l.recvdTo && !l.forceAck {
		return
	}
	l.sentAck = l.recvdTo
	l.forceAck = false
	pkt := r.n.GetPacket(0)
	pkt.Type = RelAck
	pkt.SrcNode = r.n.node
	pkt.DstNode = peer
	pkt.RelAck = l.recvdTo
	r.n.stats.RelAcksSent++
	r.n.inject(pkt)
}

// retransmit resends every unacked packet on the link — go-back-N: the
// receiver discards anything out of order, so the whole window must
// travel again — and doubles the timeout. It reports false when the
// link exhausted its retry budget and the port error stopped the run.
func (r *relState) retransmit(peer int, l *relLink) bool {
	if len(l.ring) == 0 {
		l.rtxAt = 0
		return true
	}
	l.rounds++
	if l.rounds > relMaxRounds {
		r.portError(peer, l)
		return false
	}
	for _, e := range l.ring {
		pkt := r.n.GetPacket(len(e.data))
		data, owner := pkt.Data, pkt.owner
		*pkt = e.hdr
		pkt.Data, pkt.owner = data, owner
		copy(pkt.Data, e.data)
		pkt.Retries = uint8(l.rounds)
		pkt.RelAck = l.recvdTo
		r.n.stats.Retransmits++
		r.n.inject(pkt)
	}
	// The resent window piggybacked the freshest ack.
	l.sentAck = l.recvdTo
	l.ackAt = 0
	l.forceAck = false
	l.rto *= 2
	if l.rto > relMaxRTO {
		l.rto = relMaxRTO
	}
	l.rtxAt = r.n.k.Now() + l.rto
	return true
}

// portError gives up on a peer: record the first error for
// cluster.Run to surface, release the stranded ring (and its send
// tokens, so parked senders can observe the stop), and halt the
// simulation instead of spinning the backoff forever.
func (r *relState) portError(peer int, l *relLink) {
	r.n.stats.RelPortErrors++
	if r.n.relErr == nil {
		r.n.relErr = fmt.Errorf(
			"gm: node %d port to node %d dead: no ack after %d retransmit rounds (%d packets stranded)",
			r.n.node, peer, relMaxRounds, len(l.ring))
	}
	for i, e := range l.ring {
		if e.token {
			r.n.sendTokens++
		}
		r.putEntry(e)
		l.ring[i] = nil
	}
	l.ring = l.ring[:0]
	l.rtxAt = 0
	r.n.tokenCond.Broadcast()
	r.n.k.Stop()
}

// getEntry / putEntry recycle ring entries and their payload buffers.
func (r *relState) getEntry() *relEntry {
	if n := len(r.efree); n > 0 {
		e := r.efree[n-1]
		r.efree[n-1] = nil
		r.efree = r.efree[:n-1]
		return e
	}
	return &relEntry{}
}

func (r *relState) putEntry(e *relEntry) {
	e.hdr = Packet{}
	e.token = false
	r.efree = append(r.efree, e)
}

// FaultHooks returns the fabric hooks a fault-injected cluster must
// install: OnDrop recycles pooled packets the injector discards (they
// never reach a sink, so nothing else will), and ClonePayload
// deep-copies packets for duplicated frames — a shared pointer would
// corrupt the pools the moment the first copy is consumed and recycled.
func FaultHooks() (onDrop func(fabric.Frame), clone func(any) any) {
	onDrop = func(fr fabric.Frame) {
		if pkt, ok := fr.Payload.(*Packet); ok && pkt.owner != nil {
			pkt.owner.PutPacket(pkt)
		}
	}
	clone = func(payload any) any {
		pkt, ok := payload.(*Packet)
		if !ok {
			return payload
		}
		var c *Packet
		if pkt.owner != nil {
			c = pkt.owner.GetPacket(len(pkt.Data))
		} else {
			c = &Packet{Data: make([]byte, len(pkt.Data))}
		}
		data, owner := c.Data, c.owner
		*c = *pkt
		c.Data, c.owner = data, owner
		copy(c.Data, pkt.Data)
		return c
	}
	return onDrop, clone
}
