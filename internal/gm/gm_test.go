package gm

import (
	"testing"
	"time"

	"abred/internal/fabric"
	"abred/internal/model"
	"abred/internal/sim"
)

const us = time.Microsecond

func pair(seed int64) (*sim.Kernel, *NIC, *NIC) {
	k := sim.New(seed)
	costs := model.DefaultCosts()
	fab := fabric.New(k, 2, costs)
	cm := model.NewCostModel(model.Uniform(1)[0], costs)
	return k, NewNIC(k, 0, cm, fab), NewNIC(k, 1, cm, fab)
}

func TestSendDeliver(t *testing.T) {
	k, a, b := pair(1)
	k.Spawn("sender", func(p *sim.Proc) {
		a.Send(p, &Packet{Type: Eager, DstNode: 1, Tag: 9, SrcRank: 0, Data: []byte{1, 2, 3}})
	})
	var got *Packet
	k.Spawn("recv", func(p *sim.Proc) {
		got = b.Recv(p)
	})
	k.Run()
	if got == nil || got.Tag != 9 || len(got.Data) != 3 || got.SrcNode != 0 {
		t.Fatalf("got %+v", got)
	}
	if b.Stats().Received != 1 || a.Stats().Sent != 1 {
		t.Errorf("stats wrong: a=%+v b=%+v", a.Stats(), b.Stats())
	}
}

func TestFIFODelivery(t *testing.T) {
	k, a, b := pair(2)
	const n = 50
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			a.Send(p, &Packet{Type: Eager, DstNode: 1, Seq: uint64(i), Data: make([]byte, 1+i%7)})
		}
	})
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pkt := b.Recv(p)
			if pkt.Seq != uint64(i) {
				t.Fatalf("packet %d arrived with seq %d: GM FIFO violated", i, pkt.Seq)
			}
		}
	})
	k.Run()
}

func TestSendTokensBlockAndRecycle(t *testing.T) {
	k, a, b := pair(3)
	const n = DefaultSendTokens * 2
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			// Never blocks forever: tokens recycle as the NIC injects.
			a.Send(p, &Packet{Type: Eager, DstNode: 1, Data: []byte{byte(i)}})
		}
	})
	got := 0
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			b.Recv(p)
			got++
		}
	})
	k.Run()
	if got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
	if a.Stats().TokenStallsHost == 0 {
		t.Error("expected token stalls when flooding twice the token pool")
	}
}

func TestSignalsOnlyForCollectiveAndOnlyWhenEnabled(t *testing.T) {
	k, a, b := pair(4)
	raised := 0
	b.SetSignalHandler(func() { raised++ })
	k.Spawn("sender", func(p *sim.Proc) {
		a.Send(p, &Packet{Type: Eager, DstNode: 1, Data: []byte{1}})      // never signals
		a.Send(p, &Packet{Type: Collective, DstNode: 1, Data: []byte{2}}) // suppressed: disabled
		p.Sleep(100 * us)
		b.EnableSignals()
		a.Send(p, &Packet{Type: Collective, DstNode: 1, Data: []byte{3}}) // signals
	})
	k.Spawn("drain", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			b.Recv(p)
		}
		p.Sleep(200 * us)
	})
	k.Run()
	if raised != 1 {
		t.Errorf("signals raised = %d, want 1", raised)
	}
	if b.Stats().SignalsSuppressed != 1 {
		t.Errorf("suppressed = %d, want 1", b.Stats().SignalsSuppressed)
	}
	if b.Stats().CollectiveArrivals != 2 {
		t.Errorf("collective arrivals = %d, want 2", b.Stats().CollectiveArrivals)
	}
}

func TestSignalCoalescing(t *testing.T) {
	k, a, b := pair(5)
	raised := 0
	b.SetSignalHandler(func() { raised++ })
	b.EnableSignals()
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			a.Send(p, &Packet{Type: Collective, DstNode: 1, Data: []byte{byte(i)}})
		}
	})
	k.Spawn("idle", func(p *sim.Proc) { p.Sleep(2000 * us) })
	k.Run()
	// The pending signal is never consumed, so later arrivals coalesce.
	if raised != 1 {
		t.Errorf("raised = %d, want 1 (coalesced)", raised)
	}
	if !b.ConsumePendingSignal() {
		t.Error("pending signal lost")
	}
	if b.ConsumePendingSignal() {
		t.Error("pending signal consumed twice")
	}
}

func TestFirmwareConsumesPackets(t *testing.T) {
	k, a, b := pair(6)
	seen := 0
	b.SetFirmware(func(fw *FwOps, pkt *Packet) bool {
		if pkt.Type == NICCollective {
			seen++
			return true
		}
		return false
	})
	k.Spawn("sender", func(p *sim.Proc) {
		a.Send(p, &Packet{Type: NICCollective, DstNode: 1, Data: []byte{1}})
		a.Send(p, &Packet{Type: Eager, DstNode: 1, Data: []byte{2}})
	})
	var host *Packet
	k.Spawn("recv", func(p *sim.Proc) { host = b.Recv(p) })
	k.Run()
	if seen != 1 {
		t.Errorf("firmware saw %d packets, want 1", seen)
	}
	if host == nil || host.Type != Eager {
		t.Errorf("host received %+v, want the eager packet", host)
	}
	if b.Stats().FirmwareConsumed != 1 {
		t.Errorf("firmware consumed stat = %d", b.Stats().FirmwareConsumed)
	}
}

func TestDeliverInjectsLocally(t *testing.T) {
	k, a, _ := pair(7)
	var got *Packet
	k.Spawn("host", func(p *sim.Proc) {
		a.Deliver(&Packet{Type: Eager, DstNode: 0, Data: []byte{7}})
		got = a.Recv(p)
	})
	k.Run()
	if got == nil || got.Data[0] != 7 || got.SrcNode != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestRecvTimeout(t *testing.T) {
	k, a, b := pair(8)
	k.Spawn("recv", func(p *sim.Proc) {
		if _, ok := b.RecvTimeout(p, 10*us); ok {
			t.Error("unexpected packet")
		}
		pkt, ok := b.RecvTimeout(p, 10000*us)
		if !ok || pkt.Data[0] != 5 {
			t.Errorf("missed packet: %v %v", pkt, ok)
		}
	})
	k.Spawn("sender", func(p *sim.Proc) {
		p.Sleep(50 * us)
		a.Send(p, &Packet{Type: Eager, DstNode: 1, Data: []byte{5}})
	})
	k.Run()
}

func TestWireSize(t *testing.T) {
	pkt := &Packet{Data: make([]byte, 100)}
	if pkt.WireSize() != 148 {
		t.Errorf("WireSize = %d, want 148", pkt.WireSize())
	}
	if (&Packet{}).WireSize() != headerBytes {
		t.Error("empty packet wire size wrong")
	}
}

func TestPacketTypeStrings(t *testing.T) {
	names := map[PacketType]string{
		Eager: "eager", RendezvousRTS: "rts", RendezvousCTS: "cts",
		RendezvousData: "data", Collective: "collective", NICCollective: "nic-collective",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestMemRegistry(t *testing.T) {
	k := sim.New(9)
	cm := model.NewCostModel(model.Uniform(1)[0], model.DefaultCosts())
	r := NewMemRegistry(cm)
	k.Spawn("host", func(p *sim.Proc) {
		t0 := p.Now()
		reg1 := r.Pin(p, 4096)
		if p.Now() == t0 {
			t.Error("pinning must cost time")
		}
		reg2 := r.Pin(p, 8192)
		if r.PinnedBytes() != 12288 || r.PeakBytes() != 12288 || r.Pins() != 2 {
			t.Errorf("registry accounting wrong: %d %d %d", r.PinnedBytes(), r.PeakBytes(), r.Pins())
		}
		r.Unpin(p, reg1)
		if r.PinnedBytes() != 8192 || r.PeakBytes() != 12288 {
			t.Errorf("after unpin: %d peak %d", r.PinnedBytes(), r.PeakBytes())
		}
		defer func() {
			if recover() == nil {
				t.Error("double unpin must panic")
			}
			r.Unpin(p, reg2)
		}()
		r.Unpin(p, reg1)
	})
	k.Run()
}

func TestRecvTokenBackpressure(t *testing.T) {
	k, a, b := pair(10)
	const extra = 20
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < DefaultRecvTokens+extra; i++ {
			a.Send(p, &Packet{Type: Eager, DstNode: 1, Seq: uint64(i), Data: []byte{1}})
		}
	})
	k.Spawn("recv", func(p *sim.Proc) {
		// Let the flood land: only DefaultRecvTokens can be delivered.
		p.Sleep(50 * 1000 * us)
		if b.hostQ.Len() > DefaultRecvTokens {
			t.Errorf("delivered %d packets with only %d receive tokens", b.hostQ.Len(), DefaultRecvTokens)
		}
		// Draining with token recycling releases the rest, in order.
		for i := 0; i < DefaultRecvTokens+extra; i++ {
			pkt := b.Recv(p)
			b.ReturnRecvToken()
			if pkt.Seq != uint64(i) {
				t.Fatalf("packet %d out of order (seq %d)", i, pkt.Seq)
			}
		}
	})
	k.Run()
	if b.Stats().TokenStallsNIC == 0 {
		t.Error("expected NIC-side receive-token stalls")
	}
}

func TestProvideRecvTokens(t *testing.T) {
	k, a, b := pair(11)
	b.ProvideRecvTokens(64)
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < DefaultRecvTokens+60; i++ {
			a.Send(p, &Packet{Type: Eager, DstNode: 1, Data: []byte{1}})
		}
	})
	k.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(60 * 1000 * us)
		if got := b.hostQ.Len(); got != DefaultRecvTokens+60 {
			t.Errorf("delivered %d, want all %d with the enlarged pool", got, DefaultRecvTokens+60)
		}
	})
	k.Run()
}
