package serve

import (
	"container/list"
	"os"
	"path/filepath"
	"regexp"
	"sync"
)

// Cache is the content-addressed result store: an in-memory LRU over
// response bodies keyed by spec hash, optionally backed by an on-disk
// directory so a restarted server still answers previously computed
// scenarios without re-simulating. Bodies are immutable once stored
// (they are pure functions of their key), so there is no invalidation —
// only capacity eviction.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	dir      string // "" = memory only

	hits     uint64 // served from memory
	diskHits uint64 // faulted in from the disk store
	misses   uint64 // not found anywhere
	puts     uint64
	evicts   uint64
}

// CacheStats is the cache's /metrics block.
type CacheStats struct {
	Hits     uint64 `json:"hits"`      // lookups served from memory
	DiskHits uint64 `json:"disk_hits"` // lookups faulted in from disk
	Misses   uint64 `json:"misses"`    // lookups that found nothing
	Entries  int    `json:"entries"`   // bodies resident in memory now
	Puts     uint64 `json:"puts"`
	Evicts   uint64 `json:"evicts"`
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache returns a cache holding up to capacity bodies in memory
// (capacity <= 0 means 4096). A non-empty dir enables the disk store;
// the directory is created if missing.
func NewCache(capacity int, dir string) (*Cache, error) {
	if capacity <= 0 {
		capacity = 4096
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Cache{capacity: capacity, ll: list.New(),
		byKey: make(map[string]*list.Element), dir: dir}, nil
}

// keyPat guards disk paths: keys are hex digests, and nothing else may
// reach the filesystem.
var keyPat = regexp.MustCompile(`^[0-9a-f]{16,64}$`)

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached body for key. Memory first; on a miss the
// disk store is consulted and a hit is promoted into memory.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if e, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(e)
		body := e.Value.(*cacheEntry).body
		c.hits++
		c.mu.Unlock()
		return body, true
	}
	c.mu.Unlock()
	if c.dir != "" && keyPat.MatchString(key) {
		if body, err := os.ReadFile(c.path(key)); err == nil {
			c.mu.Lock()
			c.diskHits++
			c.insert(key, body)
			c.mu.Unlock()
			return body, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// insert adds a body under c.mu, evicting from the LRU tail past
// capacity.
func (c *Cache) insert(key string, body []byte) {
	if e, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).body = body
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry).key)
		c.evicts++
	}
}

// Put stores a computed body. The disk write is atomic (tmp + rename)
// and best-effort: a full disk degrades the store to memory-only
// rather than failing the request.
func (c *Cache) Put(key string, body []byte) {
	c.mu.Lock()
	c.puts++
	c.insert(key, body)
	c.mu.Unlock()
	if c.dir != "" && keyPat.MatchString(key) {
		tmp := c.path(key) + ".tmp"
		if err := os.WriteFile(tmp, body, 0o644); err == nil {
			_ = os.Rename(tmp, c.path(key))
		}
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, DiskHits: c.diskHits, Misses: c.misses,
		Entries: c.ll.Len(), Puts: c.puts, Evicts: c.evicts}
}
