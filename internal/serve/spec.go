// Package serve wraps the warmed cluster pool and the benchmark
// drivers in a long-running HTTP scenario service — the sweep engine
// offered as a queryable facility instead of a batch tool.
//
// Clients POST a scenario spec (cluster size and class mix, topology,
// skew, loss, reduction mode, engine, LP count, tenancy shape) to /run
// and receive a JSON result whose every metric carries mean, std and a
// 95% confidence half-width over adaptively repeated runs: repetitions
// continue until the primary metric's relative CI95 half-width drops
// below a target (default 5%), per the "MPI Benchmarking Revisited"
// methodology, and the response is stamped with the repetition count
// and a converged bool.
//
// Results are content-addressed: the spec is normalized (defaults
// applied, topology spellings collapsed through topo.Norm, durations
// canonicalized) and hashed, so every equivalent spelling of one
// scenario maps to one cache key, identical requests are served from an
// LRU (optionally backed by an on-disk store) without re-simulating,
// and identical concurrent requests collapse into a single simulation
// via single-flight deduplication. Because repetition seeds derive
// deterministically from the spec, a response body is a pure function
// of its normalized spec — cached and freshly computed bodies are
// byte-identical.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"abred/internal/bench"
	"abred/internal/cluster"
	"abred/internal/model"
	"abred/internal/topo"
	"abred/internal/workload"
)

// Duration is a time.Duration that marshals as its canonical Go string
// ("1ms") and unmarshals from either a duration string or a raw
// nanosecond count, so spec spellings like "1000µs" and "1ms" collapse
// to one canonical form before hashing.
type Duration time.Duration

// MarshalJSON renders the canonical duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "150us"-style strings and raw nanosecond
// numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(ns)
	return nil
}

// Spec is one scenario request — the POST body of /run. It covers the
// bench surface the abscale/abbench flags expose: cluster size and
// class mix, reduction mode, interconnect, simulation engine, LP
// partitioning, skew, loss, and the multi-tenant workload shape.
// Omitted fields take the documented defaults; Normalize fills them in,
// so the spec echoed in a response is always fully explicit.
type Spec struct {
	// Nodes is the cluster size (required, ≥ 2).
	Nodes int `json:"nodes"`
	// Cluster picks the node class mix: "paper" (the heterogeneous
	// testbed mix, default), "uniform", "homog700" or "homog1g".
	Cluster string `json:"cluster,omitempty"`
	// Mode is the reduction implementation: "ab" (application-bypass,
	// default), "nab" (binomial MPI_Reduce) or "nic" (NIC-based).
	Mode string `json:"mode,omitempty"`
	// Topo is the interconnect spec ("crossbar" default, "fattree:16",
	// "leafspine:8", ":oN" oversubscription suffix).
	Topo string `json:"topo,omitempty"`
	// Engine is the simulation engine: "packet" (default) or "flow".
	Engine string `json:"engine,omitempty"`
	// LPs partitions the simulation into pod-aligned logical processes
	// (0/1 = monolithic).
	LPs int `json:"lps,omitempty"`
	// Count is the elements per reduction (default 4).
	Count int `json:"count,omitempty"`
	// Iters is the benchmark iterations per repetition (default 20).
	Iters int `json:"iters,omitempty"`
	// Skew is the per-iteration maximum process skew (default 1ms).
	Skew Duration `json:"skew,omitempty"`
	// Loss is the per-frame drop probability (enables reliable GM).
	Loss float64 `json:"loss,omitempty"`
	// FaultSeed seeds the dedicated fault stream.
	FaultSeed int64 `json:"faultseed,omitempty"`
	// Seed is the base simulation seed; repetition r derives its seed
	// from it (repetition 0 uses it exactly).
	Seed int64 `json:"seed,omitempty"`
	// TopoAware builds hierarchy-aware reduction trees (AB on a routed
	// fabric only).
	TopoAware bool `json:"topoaware,omitempty"`

	// Jobs > 0 switches to the multi-tenant scenario: Jobs concurrent
	// jobs with Poisson arrivals share the fabric, placed by Place,
	// and the primary metric becomes the per-job completion-time p50.
	Jobs int `json:"jobs,omitempty"`
	// Place is the placement policy: "random" (default), "greedy" or
	// "genetic".
	Place string `json:"place,omitempty"`
	// Arrival is the mean Poisson inter-arrival gap (default 50µs).
	Arrival Duration `json:"arrival,omitempty"`

	// RelCI is the convergence target: repetitions continue until the
	// primary metric's CI95 half-width is below RelCI·mean (default
	// set by the server, normally 0.05).
	RelCI float64 `json:"relci,omitempty"`
	// MinReps/MaxReps bound the repetition count (defaults set by the
	// server, normally 3 and 20).
	MinReps int `json:"minreps,omitempty"`
	MaxReps int `json:"maxreps,omitempty"`
}

// Limits are the server-side bounds and defaults Normalize applies.
type Limits struct {
	MaxNodes   int           // largest accepted cluster (0 = 1<<20)
	MaxReps    int           // repetition-budget ceiling and default (0 = 20)
	MinReps    int           // default minimum repetitions (0 = 3)
	RelCI      float64       // default convergence target (0 = 0.05)
	MaxIters   int           // per-repetition iteration ceiling (0 = 1000)
	DefIters   int           // default Iters (0 = 20)
	TimeBudget time.Duration // wall budget per scenario (0 = none; breaks byte-determinism of unconverged responses)
}

func (l Limits) withDefaults() Limits {
	if l.MaxNodes <= 0 {
		l.MaxNodes = 1 << 20
	}
	if l.MaxReps <= 0 {
		l.MaxReps = 20
	}
	if l.MinReps <= 0 {
		l.MinReps = 3
	}
	if l.RelCI <= 0 {
		l.RelCI = 0.05
	}
	if l.MaxIters <= 0 {
		l.MaxIters = 1000
	}
	if l.DefIters <= 0 {
		l.DefIters = 20
	}
	return l
}

// clusterSpecs maps the Cluster field to a node-spec constructor.
func clusterSpecs(name string, n int) ([]model.NodeSpec, error) {
	switch name {
	case "paper":
		return model.PaperCluster(n), nil
	case "uniform":
		return model.Uniform(n), nil
	case "homog700":
		return model.Homogeneous700(n), nil
	case "homog1g":
		return model.Homogeneous1G(n), nil
	}
	return nil, fmt.Errorf("unknown cluster class %q (paper|uniform|homog700|homog1g)", name)
}

// Normalize validates the spec against the server limits and returns
// its canonical form: every default filled in, the topology respelled
// through Norm, mode/engine names validated. Two specs describing the
// same scenario normalize to identical values — the property the
// content-addressed cache keys on. The error text is what a 400
// response carries.
func (s Spec) Normalize(lim Limits) (Spec, error) {
	lim = lim.withDefaults()
	if s.Nodes < 2 {
		return s, fmt.Errorf("nodes must be at least 2 (got %d)", s.Nodes)
	}
	if s.Nodes > lim.MaxNodes {
		return s, fmt.Errorf("nodes %d exceeds the server limit %d", s.Nodes, lim.MaxNodes)
	}
	if s.Cluster == "" {
		s.Cluster = "paper"
	}
	specs, err := clusterSpecs(s.Cluster, 2) // class check only; sized later
	if err != nil {
		return s, err
	}
	if s.Mode == "" {
		s.Mode = "ab"
	}
	mode, err := bench.ParseMode(s.Mode)
	if err != nil {
		return s, err
	}
	if s.Topo == "" {
		s.Topo = "crossbar"
	}
	ts, err := topo.ParseSpec(s.Topo)
	if err != nil {
		return s, err
	}
	s.Topo = ts.Norm().String()
	if s.Engine == "" {
		s.Engine = "packet"
	}
	engine, err := cluster.ParseEngine(s.Engine)
	if err != nil {
		return s, err
	}
	if engine == cluster.EngineFlow && mode == bench.NICBased {
		return s, fmt.Errorf("the flow engine does not model NIC-based reduction")
	}
	if s.LPs < 0 {
		return s, fmt.Errorf("lps must be non-negative (got %d)", s.LPs)
	}
	if s.LPs == 1 {
		s.LPs = 0 // 0 and 1 both mean monolithic; collapse the spellings
	}
	if s.Count == 0 {
		s.Count = 4
	}
	if s.Count < 1 {
		return s, fmt.Errorf("count must be positive (got %d)", s.Count)
	}
	if s.Iters == 0 {
		s.Iters = lim.DefIters
	}
	if s.Iters < 1 || s.Iters > lim.MaxIters {
		return s, fmt.Errorf("iters must be in [1, %d] (got %d)", lim.MaxIters, s.Iters)
	}
	if s.Skew == 0 {
		s.Skew = Duration(time.Millisecond)
	}
	if s.Skew < 0 {
		return s, fmt.Errorf("skew must be non-negative (got %v)", time.Duration(s.Skew))
	}
	if s.Loss < 0 || s.Loss >= 1 {
		return s, fmt.Errorf("loss must be in [0, 1) (got %g)", s.Loss)
	}
	if s.Seed == 0 {
		s.Seed = 20030701
	}
	if s.TopoAware && (ts.Kind == topo.Crossbar || mode != bench.AppBypass) {
		return s, fmt.Errorf("topoaware needs a routed topo and mode ab")
	}

	if s.Jobs < 0 {
		return s, fmt.Errorf("jobs must be non-negative (got %d)", s.Jobs)
	}
	if s.Jobs > 0 {
		if ts.Kind == topo.Crossbar {
			return s, fmt.Errorf("the tenancy scenario needs a routed topo (jobs %d on a crossbar)", s.Jobs)
		}
		if engine != cluster.EnginePacket {
			return s, fmt.Errorf("the tenancy scenario runs on the packet engine only")
		}
		if mode == bench.NICBased {
			return s, fmt.Errorf("the tenancy scenario compares ab and nab only")
		}
		if s.Place == "" {
			s.Place = "random"
		}
		if _, err := workload.ParsePlacement(s.Place); err != nil {
			return s, err
		}
		if s.Arrival == 0 {
			s.Arrival = Duration(50 * time.Microsecond)
		}
		if s.Arrival < 0 {
			return s, fmt.Errorf("arrival must be non-negative (got %v)", time.Duration(s.Arrival))
		}
	} else {
		// Tenancy-only knobs must not differentiate cache keys of
		// non-tenancy scenarios.
		s.Place = ""
		s.Arrival = 0
	}

	if s.RelCI < 0 {
		return s, fmt.Errorf("relci must be non-negative (got %g)", s.RelCI)
	}
	if s.RelCI == 0 {
		s.RelCI = lim.RelCI
	}
	if s.MinReps < 0 || s.MaxReps < 0 {
		return s, fmt.Errorf("minreps/maxreps must be non-negative")
	}
	if s.MinReps == 0 {
		s.MinReps = lim.MinReps
	}
	if s.MaxReps == 0 {
		s.MaxReps = lim.MaxReps
	}
	if s.MaxReps > lim.MaxReps {
		return s, fmt.Errorf("maxreps %d exceeds the server limit %d", s.MaxReps, lim.MaxReps)
	}
	if s.MinReps > s.MaxReps {
		return s, fmt.Errorf("minreps %d exceeds maxreps %d", s.MinReps, s.MaxReps)
	}

	// Final construction-time sanity through the cluster's own
	// validator, with the real node count so topology constraints see
	// the true shape.
	_ = specs
	cc := cluster.Config{Specs: model.Uniform(s.Nodes), Topo: ts, LPs: s.LPs, Engine: engine}
	if err := cc.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Key returns the scenario's content address: the hex SHA-256 of the
// normalized spec's canonical JSON encoding. Call only on a Normalize
// result — raw specs with unapplied defaults would hash differently
// from their canonical twins.
func (s Spec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic("serve: spec not marshalable: " + err.Error())
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}
