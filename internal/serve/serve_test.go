package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer builds a Server with tight limits so scenarios stay in
// the millisecond range.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// post sends one spec body to a handler and returns the recorder.
func post(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// smallSpec is the fast CPU scenario the cache tests reuse.
const smallSpec = `{"nodes":8,"cluster":"uniform","iters":4,"minreps":2,"maxreps":3}`

func TestGoldenResponse(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	h := s.Handler()

	w1 := post(t, h, smallSpec)
	if w1.Code != http.StatusOK {
		t.Fatalf("first POST: status %d, body %s", w1.Code, w1.Body.String())
	}
	if got := w1.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first POST X-Cache = %q, want miss", got)
	}
	w2 := post(t, h, smallSpec)
	if w2.Code != http.StatusOK {
		t.Fatalf("second POST: status %d", w2.Code)
	}
	if got := w2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second POST X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatalf("cached body differs from computed body:\n%s\nvs\n%s",
			w1.Body.String(), w2.Body.String())
	}

	var res Result
	if err := json.Unmarshal(w1.Body.Bytes(), &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Scenario != "cpu" || res.Primary != "avg_cpu_us" {
		t.Fatalf("scenario/primary = %q/%q", res.Scenario, res.Primary)
	}
	if res.Reps < 2 || res.Reps > 3 {
		t.Fatalf("reps = %d, want in [2, 3]", res.Reps)
	}
	if res.Stopped == "" || len(res.Samples) != res.Reps {
		t.Fatalf("stopped %q, %d samples for %d reps", res.Stopped, len(res.Samples), res.Reps)
	}
	if res.Key != w1.Header().Get("X-Scenario-Key") {
		t.Fatalf("body key %q != header key %q", res.Key, w1.Header().Get("X-Scenario-Key"))
	}
	// The echoed spec is fully explicit: defaults filled in.
	if res.Spec.Mode != "ab" || res.Spec.Topo != "crossbar" || res.Spec.Engine != "packet" {
		t.Fatalf("spec defaults not applied: %+v", res.Spec)
	}
	prim, ok := res.Metrics["avg_cpu_us"]
	if !ok {
		t.Fatalf("metrics missing primary: %v", res.Metrics)
	}
	if prim.N != res.Reps || prim.Mean <= 0 || prim.CI95 < 0 {
		t.Fatalf("primary summary malformed: %+v", prim)
	}
	for _, name := range []string{"elapsed_us", "signals", "node_cpu_p99_us"} {
		if _, ok := res.Metrics[name]; !ok {
			t.Errorf("metrics missing %q", name)
		}
	}

	// Metrics endpoint reflects the traffic: two requests, one run, one
	// cache hit, one miss.
	mw := httptest.NewRecorder()
	h.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var m Metrics
	if err := json.Unmarshal(mw.Body.Bytes(), &m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if m.Requests != 2 || m.Runs != 1 || m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("metrics = requests %d runs %d hits %d misses %d, want 2/1/1/1",
			m.Requests, m.Runs, m.Cache.Hits, m.Cache.Misses)
	}
	if m.Pool.Misses == 0 {
		t.Fatalf("pool saw no builds: %+v", m.Pool)
	}
}

func TestSpellingVariantsCollapse(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	h := s.Handler()

	// Same scenario, different spellings: oversubscription 1 is the
	// full-bisection default, 1000us is 1ms, lps 1 is monolithic.
	a := `{"nodes":16,"cluster":"uniform","topo":"fattree:4:o1","skew":"1000us","lps":1,"iters":4,"minreps":2,"maxreps":2}`
	b := `{"nodes":16,"cluster":"uniform","topo":"fattree:4","skew":"1ms","iters":4,"minreps":2,"maxreps":2}`

	w1 := post(t, h, a)
	if w1.Code != http.StatusOK {
		t.Fatalf("variant a: status %d, body %s", w1.Code, w1.Body.String())
	}
	w2 := post(t, h, b)
	if w2.Code != http.StatusOK {
		t.Fatalf("variant b: status %d, body %s", w2.Code, w2.Body.String())
	}
	k1, k2 := w1.Header().Get("X-Scenario-Key"), w2.Header().Get("X-Scenario-Key")
	if k1 != k2 {
		t.Fatalf("spelling variants hashed differently: %s vs %s", k1, k2)
	}
	if got := w2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("variant b X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatalf("variant bodies differ")
	}
	var res Result
	if err := json.Unmarshal(w1.Body.Bytes(), &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if res.Spec.Topo != "fattree:4" || res.Spec.LPs != 0 || time.Duration(res.Spec.Skew) != time.Millisecond {
		t.Fatalf("normalization leaked variant spellings: %+v", res.Spec)
	}
	if _, ok := res.Metrics["link_waits"]; !ok {
		t.Errorf("routed topology result missing link_waits: %v", res.Metrics)
	}
}

func TestSingleFlight(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})
	s.testDelay = 200 * time.Millisecond
	h := s.Handler()

	const clients = 4
	bodies := make([][]byte, clients)
	caches := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, h, smallSpec)
			if w.Code != http.StatusOK {
				t.Errorf("client %d: status %d", i, w.Code)
				return
			}
			bodies[i] = w.Body.Bytes()
			caches[i] = w.Header().Get("X-Cache")
		}(i)
	}
	wg.Wait()

	var misses, dedups int
	for i, c := range caches {
		switch c {
		case "miss":
			misses++
		case "dedup", "hit":
			// "hit" is possible if a client arrived after the owner
			// finished; it still did not trigger a second simulation.
			dedups++
		default:
			t.Fatalf("client %d: unexpected X-Cache %q", i, c)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs", i)
		}
	}
	if misses != 1 {
		t.Fatalf("%d owners computed, want exactly 1 (caches %v)", misses, caches)
	}
	if got := s.runs.Load(); got != 1 {
		t.Fatalf("runs = %d, want 1: identical concurrent specs must collapse", got)
	}
	if got := s.dedups.Load(); got > clients-1 {
		t.Fatalf("dedups = %d, want at most %d", got, clients-1)
	}
}

func TestMalformedSpec(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	h := s.Handler()

	cases := []struct {
		name, body, wantErr string
	}{
		{"bad json", `{"nodes":`, "bad spec"},
		{"unknown field", `{"nodes":8,"nodez":9}`, "unknown field"},
		{"too small", `{"nodes":1}`, "nodes must be at least 2"},
		{"bad mode", `{"nodes":8,"mode":"rdma"}`, "unknown mode"},
		{"bad topo", `{"nodes":8,"topo":"torus:3"}`, "topo"},
		{"bad skew", `{"nodes":8,"skew":"yesterday"}`, "bad spec"},
		{"flow nic", `{"nodes":8,"engine":"flow","mode":"nic"}`, "flow engine does not model"},
		{"tenancy on crossbar", `{"nodes":8,"jobs":2}`, "routed topo"},
		{"reps over limit", `{"nodes":8,"maxreps":999}`, "exceeds the server limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, h, tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", w.Code, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", w.Body.String(), tc.wantErr)
			}
		})
	}

	// Wrong method is 405, and bad specs never reach the simulator.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/run", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run: status %d, want 405", w.Code)
	}
	if got := s.runs.Load(); got != 0 {
		t.Fatalf("bad specs triggered %d runs", got)
	}
	if got := s.badSpecs.Load(); got != uint64(len(cases)) {
		t.Fatalf("badSpecs = %d, want %d", got, len(cases))
	}
}

func TestTenancyScenario(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	body := `{"nodes":16,"cluster":"uniform","topo":"fattree:4","jobs":2,"iters":3,"minreps":2,"maxreps":2}`
	w := post(t, s.Handler(), body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var res Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if res.Scenario != "tenancy" || res.Primary != "jct_p50_us" {
		t.Fatalf("scenario/primary = %q/%q", res.Scenario, res.Primary)
	}
	if res.Spec.Place != "random" || time.Duration(res.Spec.Arrival) != 50*time.Microsecond {
		t.Fatalf("tenancy defaults not applied: %+v", res.Spec)
	}
	for _, name := range []string{"jct_p50_us", "jct_p95_us", "makespan_us"} {
		if sum, ok := res.Metrics[name]; !ok || sum.Mean <= 0 {
			t.Fatalf("metric %q missing or non-positive: %+v", name, res.Metrics)
		}
	}
}

func TestFlowScenario(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	body := `{"nodes":64,"cluster":"uniform","topo":"fattree:8","engine":"flow","iters":3,"minreps":2,"maxreps":2}`
	w := post(t, s.Handler(), body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var res Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sum, ok := res.Metrics["fct_p99_us"]; !ok || sum.Mean <= 0 {
		t.Fatalf("flow result missing fct_p99_us: %v", res.Metrics)
	}
}

func TestDiskCache(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	w1 := post(t, s1.Handler(), smallSpec)
	if w1.Code != http.StatusOK {
		t.Fatalf("status %d", w1.Code)
	}

	// A fresh server over the same directory answers from disk without
	// re-simulating, byte-identically.
	s2 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	w2 := post(t, s2.Handler(), smallSpec)
	if w2.Code != http.StatusOK {
		t.Fatalf("status %d", w2.Code)
	}
	if got := w2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q, want hit (from disk)", got)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatalf("disk-cached body differs")
	}
	if s2.runs.Load() != 0 {
		t.Fatalf("second server re-simulated")
	}
	if st := s2.cache.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1 (%+v)", st.DiskHits, st)
	}
}

func TestGracefulShutdown(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	s.testDelay = 300 * time.Millisecond
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Start a slow request, then shut the HTTP server down while it is
	// in flight: Shutdown must drain it to a complete 200 response.
	type outcome struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/run", "application/json", strings.NewReader(smallSpec))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- outcome{status: resp.StatusCode, body: b}
	}()

	// Give the request time to enter the handler, then close the
	// listener-side server gracefully. httptest's Close blocks until
	// outstanding requests finish — exactly the drain we assert on.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	hs.Close()
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Logf("close returned after %v (request likely already done)", waited)
	}
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("in-flight request failed across shutdown: %v", o.err)
		}
		if o.status != http.StatusOK {
			t.Fatalf("in-flight request: status %d, body %s", o.status, o.body)
		}
		var res Result
		if err := json.Unmarshal(o.body, &res); err != nil {
			t.Fatalf("drained response is not a full result: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Options{})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || strings.TrimSpace(w.Body.String()) != "ok" {
		t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
	}
}

// TestKeyStability pins the normalization-then-hash pipeline: a few
// distinct scenarios must produce distinct keys, and normalizing twice
// must be a fixed point.
func TestKeyStability(t *testing.T) {
	lim := Limits{}
	specs := []Spec{
		{Nodes: 8},
		{Nodes: 16},
		{Nodes: 8, Mode: "nab"},
		{Nodes: 8, Loss: 0.001},
		{Nodes: 16, Topo: "fattree:4", Jobs: 2},
	}
	seen := make(map[string]int)
	for i, sp := range specs {
		n1, err := sp.Normalize(lim)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		n2, err := n1.Normalize(lim)
		if err != nil {
			t.Fatalf("spec %d renormalize: %v", i, err)
		}
		if n1 != n2 {
			t.Fatalf("spec %d: normalize is not a fixed point:\n%+v\n%+v", i, n1, n2)
		}
		k := n1.Key()
		if j, dup := seen[k]; dup {
			t.Fatalf("specs %d and %d collide on %s", i, j, k)
		}
		seen[k] = i
	}
}

// TestWorkerBound asserts the semaphore really bounds concurrent
// simulations: with one worker and several distinct specs in flight,
// the observed in-flight maximum inside compute never exceeds one
// queued-past-the-semaphore count is visible via inflight.
func TestWorkerBound(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	s.testDelay = 50 * time.Millisecond
	h := s.Handler()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"nodes":8,"cluster":"uniform","iters":2,"seed":%d,"minreps":2,"maxreps":2}`, 100+i)
			if w := post(t, h, body); w.Code != http.StatusOK {
				t.Errorf("spec %d: status %d", i, w.Code)
			}
		}(i)
	}
	wg.Wait()
	if got := s.runs.Load(); got != 3 {
		t.Fatalf("runs = %d, want 3 distinct scenarios", got)
	}
	if got := s.inflight.Load(); got != 0 {
		t.Fatalf("in-flight = %d after drain, want 0", got)
	}
}
