package serve

import (
	"fmt"
	"sort"
	"time"

	"abred/internal/bench"
	"abred/internal/cluster"
	"abred/internal/fault"
	"abred/internal/sim"
	"abred/internal/stats"
	"abred/internal/topo"
	"abred/internal/workload"
)

// Result is the JSON body of a successful /run response. It carries no
// wall-clock quantities: every field is a deterministic function of the
// normalized spec, so a cached body and a recomputed one are
// byte-identical (the golden-response guarantee). Execution-side
// numbers — latency, cache and pool activity — live on /metrics.
type Result struct {
	Spec Spec   `json:"spec"` // the normalized spec this result answers
	Key  string `json:"key"`  // its content address

	Scenario string `json:"scenario"` // "cpu" or "tenancy"
	Primary  string `json:"primary"`  // the metric the convergence loop drove

	Reps        int     `json:"reps"`         // repetitions executed
	Converged   bool    `json:"converged"`    // target relative CI95 reached
	Stopped     string  `json:"stopped"`      // converged|maxreps|budget
	TargetRelCI float64 `json:"target_relci"` // requested relative half-width
	RelCI       float64 `json:"relci"`        // achieved relative half-width (primary)

	// Metrics maps metric name to its summary over the repetitions.
	// encoding/json sorts map keys, so the rendering is deterministic.
	Metrics map[string]stats.FloatSummary `json:"metrics"`

	// Samples are the primary metric's per-repetition values in
	// repetition order — the raw evidence behind the interval.
	Samples []float64 `json:"samples"`

	// Events is the total simulated-event count across repetitions.
	Events uint64 `json:"events"`
}

// repSeed derives repetition r's simulation seed; repetition 0 keeps
// the base seed exactly, so a 1-rep scenario reproduces the abscale
// flag surface bit for bit.
func repSeed(seed int64, rep int) int64 {
	if rep == 0 {
		return seed
	}
	return seed ^ int64(rep)*0x2E3779B97F4A7C15
}

// us converts a virtual duration to microseconds.
func us(t sim.Time) float64 { return float64(t) / float64(time.Microsecond) }

// runner executes one normalized scenario to convergence. It is pure
// simulation: no wall-clock values enter the Result.
type runner struct {
	spec Spec
	pool *cluster.Pool

	// budget, when non-zero, bounds the wall clock spent repeating; an
	// unconverged budget-stopped response is then machine-dependent, so
	// servers that want strict byte-determinism leave it zero.
	budget time.Duration

	events  uint64
	samples map[string][]float64
}

// record appends one repetition's value for a named metric.
func (r *runner) record(name string, v float64) {
	r.samples[name] = append(r.samples[name], v)
}

// run executes the scenario: repeat the per-rep simulation under
// rep-derived seeds until the primary metric's confidence interval
// converges, then summarize every recorded metric over the reps.
func (r *runner) run() (*Result, error) {
	r.samples = make(map[string][]float64)
	var primary string
	var sample func(rep int) float64
	switch {
	case r.spec.Jobs > 0:
		primary = "jct_p50_us"
		sample = r.tenancyRep
	default:
		primary = "avg_cpu_us"
		sample = r.cpuRep
	}

	var err error
	conv := stats.Converge(stats.ConvergeOpts{
		RelCI:   r.spec.RelCI,
		MinReps: r.spec.MinReps,
		MaxReps: r.spec.MaxReps,
		Budget:  r.budget,
	}, func(rep int) (v float64) {
		defer func() {
			// A panic deep inside the simulator (an unmodelable knob
			// combination that survived Normalize) becomes a clean
			// scenario error, not a dead server goroutine.
			if p := recover(); p != nil {
				if err == nil {
					err = fmt.Errorf("scenario failed: %v", p)
				}
			}
		}()
		return sample(rep)
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Spec:        r.spec,
		Key:         r.spec.Key(),
		Scenario:    map[bool]string{true: "tenancy", false: "cpu"}[r.spec.Jobs > 0],
		Primary:     primary,
		Reps:        len(conv.Xs),
		Converged:   conv.Converged,
		Stopped:     conv.Stopped,
		TargetRelCI: r.spec.RelCI,
		RelCI:       conv.Summary.RelCI95(),
		Metrics:     make(map[string]stats.FloatSummary, len(r.samples)),
		Samples:     conv.Xs,
		Events:      r.events,
	}
	names := make([]string, 0, len(r.samples))
	for name := range r.samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res.Metrics[name] = stats.SummarizeFloats(r.samples[name])
	}
	return res, nil
}

// benchConfig assembles the per-repetition bench.Config for the CPU
// scenario. Parse errors cannot occur here: Normalize already vetted
// every field.
func (r *runner) benchConfig(rep int) bench.Config {
	s := r.spec
	specs, err := clusterSpecs(s.Cluster, s.Nodes)
	if err != nil {
		panic("serve: " + err.Error())
	}
	mode, _ := bench.ParseMode(s.Mode)
	ts, _ := topo.ParseSpec(s.Topo)
	engine, _ := cluster.ParseEngine(s.Engine)
	cfg := bench.Config{
		Specs:     specs,
		Count:     s.Count,
		Mode:      mode,
		MaxSkew:   sim.Time(s.Skew),
		Iters:     s.Iters,
		Seed:      repSeed(s.Seed, rep),
		Topo:      ts,
		TopoAware: s.TopoAware,
		LPs:       s.LPs,
		Engine:    engine,
		Pool:      r.pool,
	}
	if s.Loss > 0 {
		cfg.Fault = fault.Config{Seed: repSeed(s.FaultSeed, rep), Rule: fault.Rule{Drop: s.Loss}}
	}
	return cfg
}

// cpuRep runs one repetition of the CPU-utilization scenario and
// records every metric; it returns the primary (mean per-node reduction
// CPU, µs).
func (r *runner) cpuRep(rep int) float64 {
	res := bench.CPUUtil(r.benchConfig(rep))
	r.events += res.Events
	r.record("avg_cpu_us", us(res.AvgCPU))
	r.record("node_cpu_p99_us", us(res.Summary.P99))
	r.record("elapsed_us", us(res.Elapsed))
	r.record("signals", float64(res.Signals))
	if ts, _ := topo.ParseSpec(r.spec.Topo); ts.Kind != topo.Crossbar {
		r.record("link_waits", float64(res.LinkWaits))
		r.record("link_wait_us", us(res.LinkWait))
	}
	if r.spec.Engine == "flow" {
		r.record("fct_p99_us", us(res.FCT.P99))
	}
	if r.spec.Loss > 0 {
		r.record("retransmits", float64(res.Rel.Retransmits))
	}
	return us(res.AvgCPU)
}

// tenancyRep runs one repetition of the multi-tenant scenario: Jobs
// concurrent jobs with Poisson arrivals under the requested placement,
// reported as per-job completion-time percentiles.
func (r *runner) tenancyRep(rep int) float64 {
	s := r.spec
	specs, err := clusterSpecs(s.Cluster, s.Nodes)
	if err != nil {
		panic("serve: " + err.Error())
	}
	ts, _ := topo.ParseSpec(s.Topo)
	place, _ := workload.ParsePlacement(s.Place)
	style := workload.StyleBypass
	if s.Mode == "nab" {
		style = workload.StyleDefault
	}
	cfg := workload.TenancyConfig{
		Specs:       specs,
		Topo:        ts,
		Seed:        repSeed(s.Seed, rep),
		Jobs:        s.Jobs,
		MeanArrival: sim.Time(s.Arrival),
		Iters:       s.Iters,
		Count:       s.Count,
		MaxSkew:     sim.Time(s.Skew),
		Style:       style,
		Place:       place,
		Pool:        r.pool,
	}
	if s.Loss > 0 {
		cfg.Fault = fault.Config{Seed: repSeed(s.FaultSeed, rep), Rule: fault.Rule{Drop: s.Loss}}
	}
	res := workload.Tenancy(cfg)
	r.events += res.Events
	r.record("jct_p50_us", us(res.JCT.P50))
	r.record("jct_p95_us", us(res.JCT.P95))
	r.record("cpu_us", us(res.CPU.Mean))
	r.record("makespan_us", us(res.Makespan))
	return us(res.JCT.P50)
}
