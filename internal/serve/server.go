package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"abred/internal/cluster"
	"abred/internal/stats"
)

// Options configures a Server.
type Options struct {
	// Workers bounds the simulations in flight at once; requests past
	// the bound queue on the semaphore. 0 means GOMAXPROCS.
	Workers int
	// CacheSize is the in-memory LRU capacity in responses (0 = 4096).
	CacheSize int
	// CacheDir, when non-empty, enables the on-disk result store.
	CacheDir string
	// Limits bound and default incoming specs (see Limits).
	Limits Limits
}

// Server is the scenario service: one shared warmed cluster pool, a
// content-addressed response cache, single-flight deduplication of
// identical concurrent specs, and a bounded simulation worker pool.
// Create with New, expose with Handler, release with Close.
type Server struct {
	opts  Options
	pool  *cluster.Pool
	cache *Cache
	sem   chan struct{}
	mux   *http.ServeMux

	mu      sync.Mutex
	flights map[string]*flight

	requests atomic.Uint64 // POST /run requests accepted (parsed OK)
	badSpecs atomic.Uint64 // POST /run requests rejected with 400
	runs     atomic.Uint64 // scenarios actually simulated
	dedups   atomic.Uint64 // requests that rode another request's run
	inflight atomic.Int64  // simulations running or queued right now

	latMu   sync.Mutex
	latRing []float64 // wall ms of completed runs, ring-buffered
	latNext int
	latN    int

	// testDelay stretches every run; test-only (single-flight and
	// shutdown tests need a predictably slow scenario).
	testDelay time.Duration
}

// flight is one in-progress computation other requests can wait on.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// New builds a Server. It returns an error only when the disk cache
// directory cannot be created.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	cache, err := NewCache(opts.CacheSize, opts.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		pool:    cluster.NewPool(),
		cache:   cache,
		sem:     make(chan struct{}, opts.Workers),
		flights: make(map[string]*flight),
		latRing: make([]float64, 256),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the shared cluster pool (the load tester warms it
// through the same instance the handlers use).
func (s *Server) Pool() *cluster.Pool { return s.pool }

// Close drains the shared cluster pool. Call after the HTTP server has
// shut down; in-flight runs must have finished.
func (s *Server) Close() { s.pool.Drain() }

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Metrics is the /metrics document: execution-side observability the
// deterministic /run bodies deliberately exclude.
type Metrics struct {
	Requests     uint64             `json:"requests"`
	BadSpecs     uint64             `json:"bad_specs"`
	Runs         uint64             `json:"runs"`
	Dedups       uint64             `json:"singleflight_dedups"`
	InFlight     int64              `json:"in_flight"`
	Workers      int                `json:"workers"`
	Cache        CacheStats         `json:"cache"`
	Pool         cluster.PoolStats  `json:"pool"`
	RunLatencyMS stats.FloatSummary `json:"run_latency_ms"` // over the last 256 completed runs
}

// handleMetrics reports counters as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.latMu.Lock()
	lats := make([]float64, 0, s.latN)
	for i := 0; i < s.latN; i++ {
		lats = append(lats, s.latRing[i])
	}
	s.latMu.Unlock()
	m := Metrics{
		Requests:     s.requests.Load(),
		BadSpecs:     s.badSpecs.Load(),
		Runs:         s.runs.Load(),
		Dedups:       s.dedups.Load(),
		InFlight:     s.inflight.Load(),
		Workers:      s.opts.Workers,
		Cache:        s.cache.Stats(),
		Pool:         s.pool.Stats(),
		RunLatencyMS: stats.SummarizeFloats(lats),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(m)
}

// recordLatency folds one completed run's wall time into the ring.
func (s *Server) recordLatency(wall time.Duration) {
	ms := float64(wall) / float64(time.Millisecond)
	s.latMu.Lock()
	s.latRing[s.latNext] = ms
	s.latNext = (s.latNext + 1) % len(s.latRing)
	if s.latN < len(s.latRing) {
		s.latN++
	}
	s.latMu.Unlock()
}

// handleRun is POST /run: decode, normalize, serve from cache or
// compute (deduplicated, bounded by the worker pool).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a scenario spec to /run", http.StatusMethodNotAllowed)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var raw Spec
	if err := dec.Decode(&raw); err != nil {
		s.badSpecs.Add(1)
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := raw.Normalize(s.opts.Limits)
	if err != nil {
		s.badSpecs.Add(1)
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.requests.Add(1)
	key := spec.Key()

	body, src, err := s.lookupOrRun(r, spec, key)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", src)
	w.Header().Set("X-Scenario-Key", key)
	_, _ = w.Write(body)
}

// lookupOrRun resolves one scenario key to a response body and its
// source: "hit" (cache), "dedup" (rode a concurrent identical
// request's run) or "miss" (computed here). The cache check and flight
// registration are atomic under s.mu, so any number of identical
// concurrent requests produce exactly one simulation.
func (s *Server) lookupOrRun(r *http.Request, spec Spec, key string) ([]byte, string, error) {
	s.mu.Lock()
	if body, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		return body, "hit", nil
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.dedups.Add(1)
		select {
		case <-f.done:
			return f.body, "dedup", f.err
		case <-r.Context().Done():
			return nil, "", r.Context().Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	f.body, f.err = s.compute(spec, key)
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
	return f.body, "miss", f.err
}

// compute simulates one scenario on the shared pool, bounded by the
// worker semaphore, and stores the body in the cache.
func (s *Server) compute(spec Spec, key string) ([]byte, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	start := time.Now()
	if s.testDelay > 0 {
		time.Sleep(s.testDelay)
	}
	rn := &runner{spec: spec, pool: s.pool, budget: s.opts.Limits.TimeBudget}
	res, err := rn.run()
	if err != nil {
		return nil, err
	}
	s.runs.Add(1)
	s.recordLatency(time.Since(start))

	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	s.cache.Put(key, body)
	return body, nil
}
