// Package skew generates the process-skew patterns the benchmarks and
// workload models inject. The paper's microbenchmarks draw each node's
// delay uniformly from [0, max] (§VI); real applications skew for many
// reasons — §I lists heterogeneous nodes, unbalanced work, interrupts
// and resource contention — so the package also provides heavier-tailed
// and structured generators for sensitivity studies.
package skew

import (
	"fmt"
	"math"
	"math/rand"

	"abred/internal/sim"
)

// Dist draws per-(iteration, rank) delays. Implementations must be
// deterministic functions of the *rand.Rand stream passed in.
type Dist interface {
	// Draw returns the delay for one rank in one iteration.
	Draw(rng *rand.Rand) sim.Time
	// Name identifies the distribution in tables.
	Name() string
}

// Uniform draws from [0, Max] — the paper's benchmark skew.
type Uniform struct{ Max sim.Time }

// Draw implements Dist.
func (u Uniform) Draw(rng *rand.Rand) sim.Time {
	if u.Max <= 0 {
		return 0
	}
	return sim.Time(rng.Int63n(int64(u.Max) + 1))
}

// Name implements Dist.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(0,%v)", u.Max) }

// Exponential draws from an exponential distribution with the given
// mean, capped at 8× the mean — unbalanced work whose tail is longer
// than uniform's.
type Exponential struct{ Mean sim.Time }

// Draw implements Dist.
func (e Exponential) Draw(rng *rand.Rand) sim.Time {
	if e.Mean <= 0 {
		return 0
	}
	d := sim.Time(rng.ExpFloat64() * float64(e.Mean))
	if cap := 8 * e.Mean; d > cap {
		d = cap
	}
	return d
}

// Name implements Dist.
func (e Exponential) Name() string { return fmt.Sprintf("exp(mean=%v)", e.Mean) }

// Pareto draws from a bounded Pareto distribution (shape Alpha, scale
// Min, cap Max): mostly small delays with rare large stragglers —
// the "random effects such as interrupts" of §I.
type Pareto struct {
	Min, Max sim.Time
	Alpha    float64
}

// Draw implements Dist.
func (p Pareto) Draw(rng *rand.Rand) sim.Time {
	if p.Min <= 0 || p.Alpha <= 0 {
		return 0
	}
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	d := sim.Time(float64(p.Min) / math.Pow(1-u, 1/p.Alpha))
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	return d
}

// Name implements Dist.
func (p Pareto) Name() string { return fmt.Sprintf("pareto(a=%.1f,%v..%v)", p.Alpha, p.Min, p.Max) }

// Straggler makes one rank in P ranks late by Delay while the rest run
// on time — the paper's §IV-D scenario ("process six is consistently
// late") as a distribution: with probability 1/P a draw is Delay,
// otherwise zero.
type Straggler struct {
	P     int
	Delay sim.Time
}

// Draw implements Dist.
func (s Straggler) Draw(rng *rand.Rand) sim.Time {
	if s.P <= 1 || rng.Intn(s.P) == 0 {
		return s.Delay
	}
	return 0
}

// Name implements Dist.
func (s Straggler) Name() string { return fmt.Sprintf("straggler(1/%d,%v)", s.P, s.Delay) }

// None never delays.
type None struct{}

// Draw implements Dist.
func (None) Draw(*rand.Rand) sim.Time { return 0 }

// Name implements Dist.
func (None) Name() string { return "none" }

// Matrix pre-draws a full (iterations × ranks) delay matrix so results
// do not depend on the order ranks consume randomness in.
func Matrix(d Dist, rng *rand.Rand, iters, ranks int) [][]sim.Time {
	m := make([][]sim.Time, iters)
	for it := range m {
		m[it] = make([]sim.Time, ranks)
		for r := range m[it] {
			m[it][r] = d.Draw(rng)
		}
	}
	return m
}

// Mean estimates the distribution's mean from n draws.
func Mean(d Dist, rng *rand.Rand, n int) sim.Time {
	if n <= 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Draw(rng))
	}
	return sim.Time(sum / float64(n))
}
