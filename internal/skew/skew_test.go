package skew

import (
	"math/rand"
	"testing"
	"time"
)

const us = time.Microsecond

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Uniform{Max: 100 * us}
	for i := 0; i < 1000; i++ {
		v := d.Draw(rng)
		if v < 0 || v > 100*us {
			t.Fatalf("draw %v outside [0, 100µs]", v)
		}
	}
	if (Uniform{}).Draw(rng) != 0 {
		t.Error("zero-max uniform must draw 0")
	}
}

func TestUniformMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Mean(Uniform{Max: 1000 * us}, rng, 20000)
	if m < 450*us || m > 550*us {
		t.Errorf("uniform mean %v, want ≈500µs", m)
	}
}

func TestExponentialMeanAndCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Exponential{Mean: 100 * us}
	var max time.Duration
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		v := d.Draw(rng)
		if v > max {
			max = v
		}
		sum += float64(v)
	}
	mean := time.Duration(sum / float64(n))
	if mean < 85*us || mean > 115*us {
		t.Errorf("exp mean %v, want ≈100µs", mean)
	}
	if max > 800*us {
		t.Errorf("exp draw %v exceeds the 8x cap", max)
	}
	if (Exponential{}).Draw(rng) != 0 {
		t.Error("zero-mean exponential must draw 0")
	}
}

func TestParetoBoundsAndTail(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := Pareto{Min: 10 * us, Max: 1000 * us, Alpha: 1.5}
	big := 0
	for i := 0; i < 10000; i++ {
		v := d.Draw(rng)
		if v < 10*us || v > 1000*us {
			t.Fatalf("pareto draw %v outside bounds", v)
		}
		if v > 100*us {
			big++
		}
	}
	// Alpha=1.5: P(X > 10·Min) = 10^-1.5 ≈ 3.2%.
	if big < 100 || big > 900 {
		t.Errorf("tail mass %d/10000 implausible for alpha=1.5", big)
	}
	if (Pareto{}).Draw(rng) != 0 {
		t.Error("invalid pareto must draw 0")
	}
}

func TestStragglerFrequency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Straggler{P: 10, Delay: 500 * us}
	hits := 0
	for i := 0; i < 10000; i++ {
		v := d.Draw(rng)
		if v != 0 && v != 500*us {
			t.Fatalf("straggler draw %v", v)
		}
		if v != 0 {
			hits++
		}
	}
	if hits < 800 || hits > 1200 {
		t.Errorf("straggler hit rate %d/10000, want ≈1000", hits)
	}
	if (Straggler{P: 1, Delay: 7 * us}).Draw(rng) != 7*us {
		t.Error("P≤1 straggler must always delay")
	}
}

func TestNone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if (None{}).Draw(rng) != 0 {
		t.Error("None must draw 0")
	}
}

func TestMatrixShapeAndDeterminism(t *testing.T) {
	m1 := Matrix(Uniform{Max: 50 * us}, rand.New(rand.NewSource(7)), 5, 8)
	m2 := Matrix(Uniform{Max: 50 * us}, rand.New(rand.NewSource(7)), 5, 8)
	if len(m1) != 5 || len(m1[0]) != 8 {
		t.Fatalf("matrix shape %dx%d", len(m1), len(m1[0]))
	}
	for i := range m1 {
		for j := range m1[i] {
			if m1[i][j] != m2[i][j] {
				t.Fatal("matrix not deterministic for equal seeds")
			}
		}
	}
}

func TestNames(t *testing.T) {
	for _, d := range []Dist{
		Uniform{Max: us}, Exponential{Mean: us},
		Pareto{Min: us, Max: 2 * us, Alpha: 1}, Straggler{P: 4, Delay: us}, None{},
	} {
		if d.Name() == "" {
			t.Errorf("%T has empty name", d)
		}
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(None{}, rand.New(rand.NewSource(8)), 0) != 0 {
		t.Error("Mean with n=0 must be 0")
	}
}
