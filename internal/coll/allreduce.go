package coll

import (
	"fmt"

	"abred/internal/mpi"
)

// Allreduce combines every rank's contribution and leaves the result in
// recvbuf on all ranks. MPICH 1.2 composed it from Reduce to rank 0
// followed by Bcast, and so do we.
func Allreduce(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op) {
	n := count * dt.Size()
	if len(recvbuf) < n {
		panic(fmt.Sprintf("coll: allreduce recvbuf %d bytes < %d", len(recvbuf), n))
	}
	Reduce(c, sendbuf, recvbuf, count, dt, op, 0)
	Bcast(c, recvbuf[:n], count, dt, 0)
}

// Scan computes the inclusive prefix reduction: rank i's recvbuf holds
// the combination of contributions from ranks 0..i. Linear chain, as in
// early MPICH.
func Scan(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op) {
	pr := c.Proc()
	n := count * dt.Size()
	if len(sendbuf) < n || len(recvbuf) < n {
		panic(fmt.Sprintf("coll: scan buffers too small (%d, %d < %d)", len(sendbuf), len(recvbuf), n))
	}
	ctx := c.Ctx(mpi.CtxScan)
	tag := seqTag(c.NextSeq(mpi.CtxScan))
	rank, size := c.Rank(), c.Size()

	copy(recvbuf[:n], sendbuf[:n])
	if rank > 0 {
		tmp := make([]byte, n)
		pr.Recv(ctx, c.World(rank-1), tag, tmp)
		pr.P.Spin(pr.CM.ReduceOp(count, dt.Size()))
		mpi.Apply(op, dt, recvbuf[:n], tmp, count)
	}
	if rank < size-1 {
		pr.Send(mpi.SendArgs{Dst: c.World(rank + 1), Ctx: ctx, Tag: tag, Data: recvbuf[:n]})
	}
}
