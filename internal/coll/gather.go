package coll

import (
	"fmt"

	"abred/internal/mpi"
)

// Gather collects count elements from every rank into recvbuf at root
// (rank i's block lands at offset i*count*size-of-dt). Like MPICH 1.2 it
// is linear: the root posts receives from every other rank and waits.
func Gather(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, root int) {
	pr := c.Proc()
	n := count * dt.Size()
	if len(sendbuf) < n {
		panic(fmt.Sprintf("coll: gather sendbuf %d bytes < %d", len(sendbuf), n))
	}
	ctx := c.Ctx(mpi.CtxGather)
	tag := seqTag(c.NextSeq(mpi.CtxGather))
	rank, size := c.Rank(), c.Size()

	if rank != root {
		pr.Send(mpi.SendArgs{Dst: c.World(root), Ctx: ctx, Tag: tag, Data: sendbuf[:n]})
		return
	}
	if len(recvbuf) < n*size {
		panic(fmt.Sprintf("coll: gather recvbuf %d bytes < %d", len(recvbuf), n*size))
	}
	reqs := make([]*mpi.Request, 0, size-1)
	for r := 0; r < size; r++ {
		if r == rank {
			copy(recvbuf[r*n:(r+1)*n], sendbuf[:n])
			continue
		}
		reqs = append(reqs, pr.Irecv(ctx, c.World(r), tag, recvbuf[r*n:(r+1)*n]))
	}
	mpi.WaitAll(reqs...)
}

// Scatter distributes count elements per rank from sendbuf at root
// (rank i receives the block at offset i*count*size-of-dt) into each
// rank's recvbuf. Linear, like MPICH 1.2.
func Scatter(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, root int) {
	pr := c.Proc()
	n := count * dt.Size()
	if len(recvbuf) < n {
		panic(fmt.Sprintf("coll: scatter recvbuf %d bytes < %d", len(recvbuf), n))
	}
	ctx := c.Ctx(mpi.CtxScatter)
	tag := seqTag(c.NextSeq(mpi.CtxScatter))
	rank, size := c.Rank(), c.Size()

	if rank != root {
		pr.Recv(ctx, c.World(root), tag, recvbuf[:n])
		return
	}
	if len(sendbuf) < n*size {
		panic(fmt.Sprintf("coll: scatter sendbuf %d bytes < %d", len(sendbuf), n*size))
	}
	var reqs []*mpi.Request
	for r := 0; r < size; r++ {
		if r == rank {
			copy(recvbuf[:n], sendbuf[r*n:(r+1)*n])
			continue
		}
		reqs = append(reqs, pr.Isend(mpi.SendArgs{Dst: c.World(r), Ctx: ctx, Tag: tag, Data: sendbuf[r*n : (r+1)*n]}))
	}
	mpi.WaitAll(reqs...)
}

// Allgather gathers every rank's block to rank 0 and broadcasts the
// concatenation, the composition early MPICH used.
func Allgather(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype) {
	n := count * dt.Size()
	size := c.Size()
	if len(recvbuf) < n*size {
		panic(fmt.Sprintf("coll: allgather recvbuf %d bytes < %d", len(recvbuf), n*size))
	}
	Gather(c, sendbuf, recvbuf, count, dt, 0)
	Bcast(c, recvbuf[:n*size], count*size, dt, 0)
}
