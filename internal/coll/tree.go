// Package coll provides the default MPICH collective algorithms — the
// non-application-bypass baseline the paper compares against (§II). The
// reduction follows MPICH 1.2.x exactly: a binomial tree rooted at the
// operation's root, each process blocking on its children in ascending
// mask order before sending the combined result to its parent.
package coll

import "fmt"

// Parent returns rank's parent in the binomial tree rooted at root, or
// -1 if rank is the root. The tree matches Fig. 1 of the paper: with
// eight processes rooted at 0, process 0 has children {1, 2, 4}, process
// 2 has {3}, process 4 has {5, 6} and process 6 has {7}.
func Parent(rank, root, size int) int {
	checkTreeArgs(rank, root, size)
	rel := (rank - root + size) % size
	if rel == 0 {
		return -1
	}
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			return ((rel &^ mask) + root) % size
		}
	}
	return -1
}

// Children returns rank's children in the binomial tree rooted at root,
// in ascending mask order — the order the default MPICH reduction
// receives them in.
func Children(rank, root, size int) []int {
	checkTreeArgs(rank, root, size)
	rel := (rank - root + size) % size
	var kids []int
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			break
		}
		child := rel | mask
		if child < size {
			kids = append(kids, (child+root)%size)
		}
	}
	return kids
}

// IsLeaf reports whether rank has no children in the tree rooted at
// root.
func IsLeaf(rank, root, size int) bool { return len(Children(rank, root, size)) == 0 }

// Depth returns the tree depth: ceil(log2(size)).
func Depth(size int) int {
	d := 0
	for n := 1; n < size; n <<= 1 {
		d++
	}
	return d
}

// LastRank returns the rank farthest from root in the binomial tree:
// the highest relative rank, which sits at maximum depth. The latency
// benchmark (§VI) starts timing at this node.
func LastRank(root, size int) int {
	return (size - 1 + root) % size
}

func checkTreeArgs(rank, root, size int) {
	if size <= 0 || rank < 0 || rank >= size || root < 0 || root >= size {
		panic(fmt.Sprintf("coll: bad tree args rank=%d root=%d size=%d", rank, root, size))
	}
}
