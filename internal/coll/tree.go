// Package coll provides the default MPICH collective algorithms — the
// non-application-bypass baseline the paper compares against (§II). The
// reduction follows MPICH 1.2.x exactly: a binomial tree rooted at the
// operation's root, each process blocking on its children in ascending
// mask order before sending the combined result to its parent.
package coll

import "fmt"

// Parent returns rank's parent in the binomial tree rooted at root, or
// -1 if rank is the root. The tree matches Fig. 1 of the paper: with
// eight processes rooted at 0, process 0 has children {1, 2, 4}, process
// 2 has {3}, process 4 has {5, 6} and process 6 has {7}.
func Parent(rank, root, size int) int {
	checkTreeArgs(rank, root, size)
	rel := (rank - root + size) % size
	if rel == 0 {
		return -1
	}
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			return ((rel &^ mask) + root) % size
		}
	}
	return -1
}

// Children returns rank's children in the binomial tree rooted at root,
// in ascending mask order — the order the default MPICH reduction
// receives them in.
func Children(rank, root, size int) []int {
	var kids []int
	EachChild(rank, root, size, func(c int) { kids = append(kids, c) })
	return kids
}

// EachChild visits rank's children in ascending mask order — the same
// order Children returns them in — without materializing the slice. The
// hot collective paths use it to keep per-operation allocations off the
// tree walk.
func EachChild(rank, root, size int, f func(child int)) {
	checkTreeArgs(rank, root, size)
	rel := (rank - root + size) % size
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			break
		}
		child := rel | mask
		if child < size {
			f((child + root) % size)
		}
	}
}

// ChildCount returns the number of children rank has in the tree rooted
// at root.
func ChildCount(rank, root, size int) int {
	checkTreeArgs(rank, root, size)
	rel := (rank - root + size) % size
	n := 0
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			break
		}
		if rel|mask < size {
			n++
		}
	}
	return n
}

// IsLeaf reports whether rank has no children in the tree rooted at
// root.
func IsLeaf(rank, root, size int) bool { return ChildCount(rank, root, size) == 0 }

// Depth returns the tree depth: ceil(log2(size)).
func Depth(size int) int {
	d := 0
	for n := 1; n < size; n <<= 1 {
		d++
	}
	return d
}

// LastRank returns the rank farthest from root in the binomial tree:
// the highest relative rank, which sits at maximum depth. The latency
// benchmark (§VI) starts timing at this node.
func LastRank(root, size int) int {
	return (size - 1 + root) % size
}

func checkTreeArgs(rank, root, size int) {
	if size <= 0 || rank < 0 || rank >= size || root < 0 || root >= size {
		panic(fmt.Sprintf("coll: bad tree args rank=%d root=%d size=%d", rank, root, size))
	}
}
