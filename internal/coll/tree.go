// Package coll provides the default MPICH collective algorithms — the
// non-application-bypass baseline the paper compares against (§II). The
// reduction follows MPICH 1.2.x exactly: a binomial tree rooted at the
// operation's root, each process blocking on its children in ascending
// mask order before sending the combined result to its parent.
package coll

import "fmt"

// Parent returns rank's parent in the binomial tree rooted at root, or
// -1 if rank is the root. The tree matches Fig. 1 of the paper: with
// eight processes rooted at 0, process 0 has children {1, 2, 4}, process
// 2 has {3}, process 4 has {5, 6} and process 6 has {7}.
func Parent(rank, root, size int) int {
	checkTreeArgs(rank, root, size)
	rel := (rank - root + size) % size
	if rel == 0 {
		return -1
	}
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			return ((rel &^ mask) + root) % size
		}
	}
	return -1
}

// Children returns rank's children in the binomial tree rooted at root,
// in ascending mask order — the order the default MPICH reduction
// receives them in.
func Children(rank, root, size int) []int {
	var kids []int
	EachChild(rank, root, size, func(c int) { kids = append(kids, c) })
	return kids
}

// EachChild visits rank's children in ascending mask order — the same
// order Children returns them in — without materializing the slice. The
// hot collective paths use it to keep per-operation allocations off the
// tree walk.
func EachChild(rank, root, size int, f func(child int)) {
	checkTreeArgs(rank, root, size)
	rel := (rank - root + size) % size
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			break
		}
		child := rel | mask
		if child < size {
			f((child + root) % size)
		}
	}
}

// AppendChildren appends rank's children to dst in ascending mask order
// and returns the extended slice — the allocation-free form of Children
// for callers that keep a reusable backing array (the application-bypass
// descriptor pool).
func AppendChildren(dst []int, rank, root, size int) []int {
	checkTreeArgs(rank, root, size)
	rel := (rank - root + size) % size
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			break
		}
		if child := rel | mask; child < size {
			dst = append(dst, (child+root)%size)
		}
	}
	return dst
}

// ChildIter walks rank's children in ascending mask order without a
// callback or slice. EachChild's closure costs one heap allocation per
// call at every capture site; the collective hot paths iterate with this
// value type instead.
type ChildIter struct {
	rel, root, size int
	mask            int
}

// Kids returns an iterator over rank's children in the tree rooted at
// root. Use: for c := it.Next(); c >= 0; c = it.Next() { ... }
func Kids(rank, root, size int) ChildIter {
	checkTreeArgs(rank, root, size)
	return ChildIter{rel: (rank - root + size) % size, root: root, size: size, mask: 1}
}

// Next returns the next child rank, or -1 when the walk is done.
func (it *ChildIter) Next() int {
	for it.mask < it.size {
		if it.rel&it.mask != 0 {
			it.mask = it.size
			return -1
		}
		child := it.rel | it.mask
		it.mask <<= 1
		if child < it.size {
			return (child + it.root) % it.size
		}
	}
	return -1
}

// ChildCount returns the number of children rank has in the tree rooted
// at root.
func ChildCount(rank, root, size int) int {
	checkTreeArgs(rank, root, size)
	rel := (rank - root + size) % size
	n := 0
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			break
		}
		if rel|mask < size {
			n++
		}
	}
	return n
}

// IsLeaf reports whether rank has no children in the tree rooted at
// root.
func IsLeaf(rank, root, size int) bool { return ChildCount(rank, root, size) == 0 }

// Depth returns the tree depth: ceil(log2(size)).
func Depth(size int) int {
	d := 0
	for n := 1; n < size; n <<= 1 {
		d++
	}
	return d
}

// LastRank returns the rank farthest from root in the binomial tree:
// the highest relative rank, which sits at maximum depth. The latency
// benchmark (§VI) starts timing at this node.
func LastRank(root, size int) int {
	return (size - 1 + root) % size
}

func checkTreeArgs(rank, root, size int) {
	if size <= 0 || rank < 0 || rank >= size || root < 0 || root >= size {
		panic(fmt.Sprintf("coll: bad tree args rank=%d root=%d size=%d", rank, root, size))
	}
}
