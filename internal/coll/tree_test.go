package coll

import (
	"testing"
	"testing/quick"
)

// TestFig1Tree checks the exact tree of the paper's Fig. 1: eight
// processes rooted at 0.
func TestFig1Tree(t *testing.T) {
	wantChildren := map[int][]int{
		0: {1, 2, 4},
		1: {},
		2: {3},
		3: {},
		4: {5, 6},
		5: {},
		6: {7},
		7: {},
	}
	wantParent := map[int]int{0: -1, 1: 0, 2: 0, 3: 2, 4: 0, 5: 4, 6: 4, 7: 6}
	for rank := 0; rank < 8; rank++ {
		kids := Children(rank, 0, 8)
		if len(kids) != len(wantChildren[rank]) {
			t.Fatalf("rank %d children = %v, want %v", rank, kids, wantChildren[rank])
		}
		for i, k := range kids {
			if k != wantChildren[rank][i] {
				t.Fatalf("rank %d children = %v, want %v", rank, kids, wantChildren[rank])
			}
		}
		if p := Parent(rank, 0, 8); p != wantParent[rank] {
			t.Fatalf("rank %d parent = %d, want %d", rank, p, wantParent[rank])
		}
	}
}

// TestTreeConsistency is the structural property the collectives depend
// on: for every (size, root), parent/child relations are mutual, every
// non-root has exactly one parent, and the tree spans all ranks.
func TestTreeConsistency(t *testing.T) {
	f := func(sizeRaw, rootRaw uint8) bool {
		size := int(sizeRaw%63) + 1
		root := int(rootRaw) % size
		seen := make([]int, size) // parent-edge count per rank
		for rank := 0; rank < size; rank++ {
			p := Parent(rank, root, size)
			if rank == root {
				if p != -1 {
					return false
				}
			} else {
				if p < 0 || p >= size {
					return false
				}
				seen[rank]++
				// Mutuality: rank must appear in p's child list.
				found := false
				for _, c := range Children(p, root, size) {
					if c == rank {
						found = true
					}
				}
				if !found {
					return false
				}
			}
			// Children must name rank as parent.
			for _, c := range Children(rank, root, size) {
				if Parent(c, root, size) != rank {
					return false
				}
			}
		}
		for rank, n := range seen {
			if rank != root && n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTreeDepthBound: the binomial tree has depth ceil(log2 size).
func TestTreeDepthBound(t *testing.T) {
	depthOf := func(rank, root, size int) int {
		d := 0
		for rank != root {
			rank = Parent(rank, root, size)
			d++
			if d > size {
				t.Fatalf("cycle detected at size=%d root=%d", size, root)
			}
		}
		return d
	}
	for _, size := range []int{1, 2, 3, 5, 8, 16, 17, 31, 32, 33, 64} {
		for _, root := range []int{0, size / 2, size - 1} {
			bound := Depth(size)
			for rank := 0; rank < size; rank++ {
				if d := depthOf(rank, root, size); d > bound {
					t.Fatalf("size=%d root=%d rank=%d depth %d > bound %d", size, root, rank, d, bound)
				}
			}
		}
	}
}

func TestDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 32: 5, 33: 6, 1024: 10}
	for size, want := range cases {
		if got := Depth(size); got != want {
			t.Errorf("Depth(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestLastRank(t *testing.T) {
	if LastRank(0, 8) != 7 {
		t.Errorf("LastRank(0,8) = %d", LastRank(0, 8))
	}
	if LastRank(3, 8) != 2 {
		t.Errorf("LastRank(3,8) = %d", LastRank(3, 8))
	}
	// The last rank must be a leaf at maximal depth.
	for _, size := range []int{2, 8, 16, 32} {
		for _, root := range []int{0, 1, size - 1} {
			last := LastRank(root, size)
			if len(Children(last, root, size)) != 0 {
				t.Errorf("size=%d root=%d: last rank %d is not a leaf", size, root, last)
			}
		}
	}
}

func TestChildrenAscendingMaskOrder(t *testing.T) {
	// MPICH receives children in ascending mask order; our Children
	// must list them that way (paper Fig. 1: node 0 -> 1, 2, 4).
	kids := Children(0, 0, 32)
	want := []int{1, 2, 4, 8, 16}
	if len(kids) != len(want) {
		t.Fatalf("children of root in 32 = %v", kids)
	}
	for i := range want {
		if kids[i] != want[i] {
			t.Fatalf("children order = %v, want %v", kids, want)
		}
	}
}

func TestBadTreeArgsPanic(t *testing.T) {
	for _, call := range []func(){
		func() { Parent(0, 0, 0) },
		func() { Parent(5, 0, 4) },
		func() { Children(0, 9, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad tree args")
				}
			}()
			call()
		}()
	}
}
