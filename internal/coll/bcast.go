package coll

import (
	"fmt"

	"abred/internal/mpi"
)

// Bcast broadcasts buf from root with the standard MPICH binomial
// algorithm: receive from parent, then forward down the subtree from the
// largest mask to the smallest.
func Bcast(c *mpi.Comm, buf []byte, count int, dt mpi.Datatype, root int) {
	seq := c.NextSeq(mpi.CtxBcast)
	BcastWithSeq(c, seq, buf, count, dt, root, false)
}

// BcastWithSeq is Bcast with an explicit instance number; the
// application-bypass broadcast reuses it for fallbacks.
func BcastWithSeq(c *mpi.Comm, seq uint64, buf []byte, count int, dt mpi.Datatype, root int, collective bool) {
	pr := c.Proc()
	n := count * dt.Size()
	if len(buf) < n {
		panic(fmt.Sprintf("coll: bcast buffer %d bytes < %d", len(buf), n))
	}
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("coll: root %d out of range (size %d)", root, c.Size()))
	}
	ctx := c.Ctx(mpi.CtxBcast)
	tag := seqTag(seq)
	rank, size := c.Rank(), c.Size()
	rel := (rank - root + size) % size

	// Receive phase: find my parent by the lowest set bit of rel.
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % size
			pr.Recv(ctx, c.World(parent), tag, buf[:n])
			break
		}
		mask <<= 1
	}

	// Send phase: forward to children from the half-range down. At the
	// root the receive loop left mask at the first power of two ≥ size;
	// at other ranks it is the lowest set bit of rel. Either way the
	// children are rel+mask/2, rel+mask/4, ...
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < size {
			child := (rel + mask + root) % size
			pr.Send(mpi.SendArgs{
				Dst: c.World(child), Ctx: ctx, Tag: tag, Data: buf[:n],
				Collective: collective, Root: int32(c.World(root)), Seq: seq,
			})
		}
	}
}
