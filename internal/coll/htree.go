// Topology-aware reduction trees. The flat binomial tree spreads a
// rank's children across the whole machine, so on a multi-stage fabric
// most tree edges cross shared uplinks. A TopoTree clusters ranks under
// their leaf switch: each leaf group reduces internally over a binomial
// tree (those edges never leave the switch), and only the group leaders
// run a second binomial tree among themselves, so exactly one result
// per leaf crosses the spine. Construction is a pure function of
// (size, root, leaf assignment), so every rank derives the same tree —
// the same property the flat binomial helpers rely on.
package coll

import (
	"fmt"

	"abred/internal/mpi"
)

// TopoTree is a two-level reduction tree for one (root, size, leaf
// assignment) triple. Parents and children are precomputed flat arrays;
// queries are O(1) and allocation-free.
type TopoTree struct {
	root, size int
	parent     []int32
	off        []int32 // kids[off[r]:off[r+1]] are rank r's children
	kids       []int32
}

// NewTopoTree builds the hierarchy-aware tree. leafOf maps a rank to
// its leaf-switch index (topo.Topology.Leaf, typically); ranks sharing
// a value form one group. Each group's leader is its lowest rank —
// except the root's group, which the root itself leads so the result
// ends at root without an extra hop. Within a group the members reduce
// over a binomial tree (leader at index 0, the rest in ascending rank
// order); the leaders reduce over a binomial tree of their own, rooted
// at the root's leader, with group order fixed by each group's first
// appearance in rank order.
func NewTopoTree(size, root int, leafOf func(int) int) *TopoTree {
	if size < 1 {
		panic(fmt.Sprintf("coll: tree size %d", size))
	}
	checkTreeArgs(root, root, size)

	groupOf := make(map[int]int) // leaf value -> group index
	var members [][]int32        // per group, ascending rank
	for r := 0; r < size; r++ {
		leaf := leafOf(r)
		gi, ok := groupOf[leaf]
		if !ok {
			gi = len(members)
			groupOf[leaf] = gi
			members = append(members, nil)
		}
		members[gi] = append(members[gi], int32(r))
	}
	rootGi := groupOf[leafOf(root)]
	// Put each group's leader at member index 0.
	for gi, ms := range members {
		lead := int32(0) // lowest rank: ascending order puts it first
		if gi == rootGi {
			for i, r := range ms {
				if r == int32(root) {
					lead = int32(i)
					break
				}
			}
		}
		ms[0], ms[lead] = ms[lead], ms[0]
	}

	t := &TopoTree{
		root:   root,
		size:   size,
		parent: make([]int32, size),
		off:    make([]int32, size+1),
		kids:   make([]int32, 0, size-1),
	}
	deg := make([]int32, size)
	addEdge := func(child, parent int32) {
		t.parent[child] = parent
		deg[parent]++
	}
	t.parent[root] = -1
	var scratch []int
	for gi, ms := range members {
		g := len(ms)
		for i := 1; i < g; i++ {
			addEdge(ms[i], ms[Parent(i, 0, g)])
		}
		if gi != rootGi {
			li := Parent(gi, rootGi, len(members))
			addEdge(ms[0], members[li][0])
		}
	}
	// Children, grouped per parent: intra-leaf children first (binomial
	// child order within the member index space), then the leader's
	// cross-leaf children. Two passes: offsets from degrees, then fill.
	for r := 0; r < size; r++ {
		t.off[r+1] = t.off[r] + deg[r]
	}
	t.kids = t.kids[:t.off[size]]
	fill := make([]int32, size)
	copy(fill, t.off[:size])
	for _, ms := range members {
		g := len(ms)
		for i := 0; i < g; i++ {
			scratch = AppendChildren(scratch[:0], i, 0, g)
			p := ms[i]
			for _, ci := range scratch {
				t.kids[fill[p]] = ms[ci]
				fill[p]++
			}
		}
	}
	for gi := range members {
		scratch = AppendChildren(scratch[:0], gi, rootGi, len(members))
		p := members[gi][0]
		for _, ci := range scratch {
			t.kids[fill[p]] = members[ci][0]
			fill[p]++
		}
	}
	return t
}

// Root returns the rank the reduction result lands on.
func (t *TopoTree) Root() int { return t.root }

// Size returns the communicator size the tree was built for.
func (t *TopoTree) Size() int { return t.size }

// Parent returns rank's parent in the tree, -1 at the root.
func (t *TopoTree) Parent(rank int) int { return int(t.parent[rank]) }

// ChildCount returns the number of children of rank.
func (t *TopoTree) ChildCount(rank int) int {
	return int(t.off[rank+1] - t.off[rank])
}

// AppendChildren appends rank's children to dst and returns it:
// intra-leaf children first, then (for a group leader) the leaders of
// subordinate groups.
func (t *TopoTree) AppendChildren(dst []int, rank int) []int {
	for _, c := range t.kids[t.off[rank]:t.off[rank+1]] {
		dst = append(dst, int(c))
	}
	return dst
}

// ReduceTree is ReduceOnKind over a TopoTree instead of the flat
// binomial shape: identical wire protocol and cost charges, only the
// parent/child relation differs. Every rank must pass the same tree.
func ReduceTree(c *mpi.Comm, t *TopoTree, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op) {
	seq := c.NextSeq(mpi.CtxReduce)
	ReduceTreeOnKind(c, t, mpi.CtxReduce, seq, sendbuf, recvbuf, count, dt, op, false)
}

// ReduceTreeOnKind mirrors ReduceOnKind on a topology-aware tree; the
// root is the tree's. The application-bypass layer uses it for its root
// and fallback paths when a tree is installed, keeping both
// implementations wire-compatible within one instance.
func ReduceTreeOnKind(c *mpi.Comm, t *TopoTree, kind mpi.CtxKind, seq uint64, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op, collective bool) {
	pr := c.Proc()
	root := t.Root()
	if c.Size() != t.Size() {
		panic(fmt.Sprintf("coll: tree for size %d on a size-%d communicator", t.Size(), c.Size()))
	}
	n := checkReduceArgs(c, sendbuf, recvbuf, count, dt, op, root)
	ctx := c.Ctx(kind)
	tag := seqTag(seq)
	rank := c.Rank()
	parent := t.Parent(rank)

	if t.ChildCount(rank) == 0 {
		if parent < 0 { // single-process communicator
			copy(recvbuf[:n], sendbuf[:n])
			return
		}
		pr.Send(mpi.SendArgs{
			Dst: c.World(parent), Ctx: ctx, Tag: tag, Data: sendbuf[:n],
			Collective: collective, Root: int32(c.World(root)), Seq: seq,
		})
		return
	}

	acc := pr.GetBuf(n)
	pr.P.Spin(pr.CM.HostCopy(n))
	copy(acc, sendbuf[:n])

	tmp := pr.GetBuf(n)
	for _, child := range t.kids[t.off[rank]:t.off[rank+1]] {
		pr.Recv(ctx, c.World(int(child)), tag, tmp)
		pr.P.Spin(pr.CM.ReduceOp(count, dt.Size()))
		mpi.Apply(op, dt, acc, tmp, count)
	}
	pr.PutBuf(tmp)

	if parent < 0 {
		copy(recvbuf[:n], acc)
		pr.PutBuf(acc)
		return
	}
	pr.Send(mpi.SendArgs{
		Dst: c.World(parent), Ctx: ctx, Tag: tag, Data: acc,
		Collective: collective, Root: int32(c.World(root)), Seq: seq,
	})
	if n <= pr.CM.C.EagerThreshold {
		pr.PutBuf(acc)
	}
}
