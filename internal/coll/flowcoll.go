// Flow-mode lowering of the collectives. FlowColl re-expresses the
// packet engine's reduction and barrier — the blocking MPICH binomial
// chain, the application-bypass descriptor machinery, and the NIC
// signal discipline — as arithmetic over per-rank virtual clocks, with
// every message a single flow.Machine transfer instead of a packet
// exchange between simulated processes. The cost charges mirror the
// packet path constant for constant (HostRecvOvh + QueueSearch on every
// receive, PollIter per handled message, the two-copy unexpected-queue
// penalty, DescriptorOvh + drained-early-message QueueSearch on AB
// entry, SignalOvh/SignalIgnoredOvh under the same coalescing rules gm
// applies); what changes is the transfer model underneath, so flow and
// packet runs agree within the cross-validation band committed in
// bench.
package coll

import (
	"fmt"

	"abred/internal/flow"
	"abred/internal/sim"
)

// Message kinds carried in flow tags. fkSignal is not a message: it is
// the WakeAt tag for a coalesced NIC signal handler.
const (
	fkReduce  uint8 = iota // reduction contribution to the parent
	fkBarUp                // barrier combine token
	fkBarDown              // barrier release token
	fkP2P                  // point-to-point payload (workload halo)
	fkSignal
)

// op interpreter states.
const (
	opNone uint8 = iota
	opReduce
	opBarrier
	opRecv
)

// seqMask bounds the instance number folded into a flow tag; matching
// uses the masked value on both sides, so collectives stay correct for
// any iteration count with a window of 2^18 concurrent instances.
const seqMask = 1<<18 - 1

func mseq(seq uint64) uint64 { return seq & seqMask }

// ptag packs a message descriptor into a flow tag:
// [kind:3][coll:1][dst:21][src:21][seq:18].
func ptag(kind uint8, coll bool, dst, src int, seq uint64) uint64 {
	t := uint64(kind) | uint64(dst)<<4 | uint64(src)<<25 | mseq(seq)<<46
	if coll {
		t |= 8
	}
	return t
}

// fpkt is one delivered message awaiting (or undergoing) host
// processing — the flow-mode image of a gm packet in the NIC host
// queue.
type fpkt struct {
	kind uint8
	coll bool // gm Collective type: eligible for the AB hook and signals
	src  int32
	size int32
	seq  uint64
	tr   sim.Time // NIC deposit time
}

// fdesc is an application-bypass reduction descriptor: the instance and
// the children whose contributions are still pending.
type fdesc struct {
	seq     uint64
	parent  int32
	pending []int32
}

// fop is a rank's in-progress blocking operation: the interpreter state
// the packet engine keeps on a goroutine stack.
type fop struct {
	kind    uint8
	phase   uint8
	waiting bool // a posted receive is outstanding
	coll    bool // this instance's sends are collective-typed
	seq     uint64
	it      ChildIter
	kids    []int // materialized child list (topology-aware root)
	ki      int
	parent  int32
	// The posted receive's match key.
	pkind uint8
	psrc  int32
	pseq  uint64
	psize int32
}

// frank is one rank's progress-engine state.
type frank struct {
	nicq    []fpkt // delivered, not yet host-processed (FIFO from nh)
	nh      int
	unexp   []fpkt // MPICH unexpected-message queue
	abq     []fpkt // AB unexpected queue (early contributions)
	descs   []fdesc
	op      fop
	sigOn   bool // NIC signals armed (descriptors outstanding)
	sigPend bool // a signal was raised and its handler has not run
}

// FlowColl runs the collectives of one communicator on the flow engine.
// All entry points take the host time the rank makes the call; Done
// fires (in scheduler context) when the rank's blocking call returns.
// Contract: every payload must fit the eager protocol — rendezvous
// transfers have a different synchronization structure and are not
// modeled at flow fidelity.
type FlowColl struct {
	M     *flow.Machine
	Size  int
	Root  int
	Count int // reduction elements (8-byte doubles)
	Bytes int // Count * 8

	// P2PBytes sizes fkP2P transfers (the workload's halo payload).
	P2PBytes int

	// Tree, when set, replaces the binomial shape for application-
	// bypass instances, exactly as Engine.SetTopoTree does.
	Tree *TopoTree

	Done func(rank int, t sim.Time)

	// Signals counts handlers that ran with work, per rank (the flow
	// image of Engine.Metrics.SignalsHandled). early and completed
	// mirror EarlyMessages and CompletedInstances, accumulated per
	// logical process so concurrent windows never share a counter;
	// read them through Early()/Completed().
	Signals   []uint64
	early     []uint64
	completed []uint64

	ranks []frank
	// pendFree is the descriptor pending-list pool, one free list per
	// logical process (descriptors are taken and returned on the
	// owning rank's LP).
	pendFree [][][]int32
	// rootKids is the materialized topology-aware child list. Only the
	// root rank's reduceStart writes it (the AB internal ranks use the
	// descriptor path), so a single scratch slice is safe under LP
	// partitioning.
	rootKids []int
}

// NewFlowColl builds the flow-mode collective engine for a size-rank
// communicator reducing count doubles to root.
func NewFlowColl(m *flow.Machine, size, root, count int) *FlowColl {
	if size < 1 || root < 0 || root >= size {
		panic(fmt.Sprintf("coll: flow communicator size=%d root=%d", size, root))
	}
	fc := &FlowColl{
		M: m, Size: size, Root: root, Count: count, Bytes: count * 8,
		Signals:   make([]uint64, size),
		early:     make([]uint64, m.LPs()),
		completed: make([]uint64, m.LPs()),
		ranks:     make([]frank, size),
		pendFree:  make([][][]int32, m.LPs()),
	}
	if thr := m.CMs[0].C.EagerThreshold; fc.Bytes > thr {
		panic(fmt.Sprintf("coll: flow engine models eager reductions only (%d bytes > threshold %d)", fc.Bytes, thr))
	}
	return fc
}

// Reset returns every rank to the just-built state, keeping backing
// arrays.
func (fc *FlowColl) Reset() {
	for i := range fc.ranks {
		fr := &fc.ranks[i]
		fr.nicq, fr.nh = fr.nicq[:0], 0
		fr.unexp = fr.unexp[:0]
		fr.abq = fr.abq[:0]
		for j := range fr.descs {
			fc.putPend(i, fr.descs[j].pending)
		}
		fr.descs = fr.descs[:0]
		fr.op = fop{}
		fr.sigOn, fr.sigPend = false, false
		fc.Signals[i] = 0
	}
	for i := range fc.early {
		fc.early[i] = 0
		fc.completed[i] = 0
	}
}

// Early returns the early-contribution count (EarlyMessages), summed
// over logical processes.
func (fc *FlowColl) Early() uint64 {
	var s uint64
	for _, v := range fc.early {
		s += v
	}
	return s
}

// Completed returns the completed-descriptor count
// (CompletedInstances), summed over logical processes.
func (fc *FlowColl) Completed() uint64 {
	var s uint64
	for _, v := range fc.completed {
		s += v
	}
	return s
}

func (fc *FlowColl) getPend(rank int) []int32 {
	free := &fc.pendFree[fc.M.LP(rank)]
	if l := len(*free); l > 0 {
		p := (*free)[l-1]
		*free = (*free)[:l-1]
		return p
	}
	return nil
}

func (fc *FlowColl) putPend(rank int, p []int32) {
	free := &fc.pendFree[fc.M.LP(rank)]
	if cap(p) > 0 && len(*free) < 64 {
		*free = append(*free, p[:0])
	}
}

// Reduce runs one reduction call for rank starting at host time at; ab
// selects the application-bypass implementation. seq is the instance
// number (every rank must pass the same one per instance).
func (fc *FlowColl) Reduce(rank int, at sim.Time, ab bool, seq uint64) {
	if !ab {
		fc.reduceStart(rank, at, seq, false)
		return
	}
	if rank == fc.Root {
		// Root always takes the default synchronous path (§V-B); its
		// children still send collective-typed messages.
		fc.reduceStart(rank, at, seq, true)
		return
	}
	var parent, nk int
	if fc.Tree != nil {
		parent, nk = fc.Tree.Parent(rank), fc.Tree.ChildCount(rank)
	} else {
		parent, nk = Parent(rank, fc.Root, fc.Size), ChildCount(rank, fc.Root, fc.Size)
	}
	m, cm := fc.M, fc.M.CMs[rank]
	if nk == 0 {
		// Leaf: one eager collective send, then the call returns.
		t := m.HostRun(rank, at, cm.HostSendOvh()+cm.HostCopy(fc.Bytes))
		m.Send(t, rank, parent, fc.Bytes, fc, ptag(fkReduce, true, parent, rank, seq))
		fc.opDone(rank, t)
		return
	}
	fc.abInternal(rank, at, seq, parent)
}

// Barrier enters the MPICH tree barrier (combine up to rank 0, release
// down) for rank at host time at.
func (fc *FlowColl) Barrier(rank int, at sim.Time, seq uint64) {
	if fc.Size == 1 {
		fc.opDone(rank, at)
		return
	}
	fr := &fc.ranks[rank]
	fr.op = fop{kind: opBarrier, seq: mseq(seq), parent: int32(Parent(rank, 0, fc.Size)), it: Kids(rank, 0, fc.Size)}
	fc.M.HostRun(rank, at, 0)
	fc.barrierLoop(rank, fr)
}

// SendP2P posts one eager point-to-point send and returns the time the
// call hands back to the application.
func (fc *FlowColl) SendP2P(rank int, at sim.Time, dst int, tag uint64) sim.Time {
	m, cm := fc.M, fc.M.CMs[rank]
	t := m.HostRun(rank, at, cm.HostSendOvh()+cm.HostCopy(fc.P2PBytes))
	m.Send(t, rank, dst, fc.P2PBytes, fc, ptag(fkP2P, false, dst, rank, tag))
	return t
}

// RecvP2P blocks rank on a point-to-point receive; Done fires when it
// matches.
func (fc *FlowColl) RecvP2P(rank int, at sim.Time, src int, tag uint64) {
	fr := &fc.ranks[rank]
	fr.op = fop{kind: opRecv}
	fc.M.HostRun(rank, at, 0)
	if fc.recvStart(rank, fr, fkP2P, int32(src), mseq(tag), int32(fc.P2PBytes)) {
		fc.opDone(rank, fc.M.Busy[rank])
	}
}

// reduceStart runs the blocking MPICH reduction chain (ReduceOnKind):
// all of NAB mode, plus the AB root. coll marks the instance's sends
// collective-typed.
func (fc *FlowColl) reduceStart(rank int, at sim.Time, seq uint64, coll bool) {
	m, cm := fc.M, fc.M.CMs[rank]
	fr := &fc.ranks[rank]
	fr.op = fop{kind: opReduce, seq: mseq(seq), coll: coll}
	op := &fr.op
	var parent, nk int
	if coll && fc.Tree != nil {
		parent, nk = fc.Tree.Parent(rank), fc.Tree.ChildCount(rank)
		fc.rootKids = fc.Tree.AppendChildren(fc.rootKids[:0], rank)
		op.kids = fc.rootKids
	} else {
		parent, nk = Parent(rank, fc.Root, fc.Size), ChildCount(rank, fc.Root, fc.Size)
		op.it = Kids(rank, fc.Root, fc.Size)
	}
	op.parent = int32(parent)
	if nk == 0 {
		if parent < 0 { // single-process communicator
			fc.opDone(rank, at)
			return
		}
		t := m.HostRun(rank, at, cm.HostSendOvh()+cm.HostCopy(fc.Bytes))
		m.Send(t, rank, parent, fc.Bytes, fc, ptag(fkReduce, coll, parent, rank, seq))
		fc.opDone(rank, t)
		return
	}
	// Accumulator init: the charged copy out of sendbuf.
	m.HostRun(rank, at, cm.HostCopy(fc.Bytes))
	fc.reduceLoop(rank, fr)
}

// reduceLoop receives from each child in turn, charging ReduceOp per
// contribution, then forwards the combined result to the parent.
func (fc *FlowColl) reduceLoop(rank int, fr *frank) {
	m, cm := fc.M, fc.M.CMs[rank]
	op := &fr.op
	for {
		c := nextChild(op)
		if c < 0 {
			if op.parent >= 0 {
				t := m.HostRun(rank, m.Busy[rank], cm.HostSendOvh()+cm.HostCopy(fc.Bytes))
				m.Send(t, rank, int(op.parent), fc.Bytes, fc, ptag(fkReduce, op.coll, int(op.parent), rank, op.seq))
			}
			fc.opDone(rank, m.Busy[rank])
			return
		}
		if !fc.recvStart(rank, fr, fkReduce, int32(c), op.seq, int32(fc.Bytes)) {
			return // blocked; a future delivery resumes via opAdvance
		}
		m.HostRun(rank, m.Busy[rank], cm.ReduceOp(fc.Count, 8))
	}
}

// barrierLoop advances the barrier state machine: phase 0 receives the
// subtree's combine tokens, phase 1 reports up and waits for the
// release, phase 2 forwards the release down.
func (fc *FlowColl) barrierLoop(rank int, fr *frank) {
	m, cm := fc.M, fc.M.CMs[rank]
	op := &fr.op
	if op.phase == 0 {
		for {
			c := nextChild(op)
			if c < 0 {
				op.phase = 1
				break
			}
			if !fc.recvStart(rank, fr, fkBarUp, int32(c), op.seq, 1) {
				return
			}
		}
	}
	if op.phase == 1 {
		op.phase = 2
		if op.parent >= 0 {
			t := m.HostRun(rank, m.Busy[rank], cm.HostSendOvh()+cm.HostCopy(1))
			m.Send(t, rank, int(op.parent), 1, fc, ptag(fkBarUp, false, int(op.parent), rank, op.seq))
			if !fc.recvStart(rank, fr, fkBarDown, op.parent, op.seq, 1) {
				return
			}
		}
	}
	for it := Kids(rank, 0, fc.Size); ; {
		c := it.Next()
		if c < 0 {
			break
		}
		t := m.HostRun(rank, m.Busy[rank], cm.HostSendOvh()+cm.HostCopy(1))
		m.Send(t, rank, c, 1, fc, ptag(fkBarDown, false, c, rank, op.seq))
	}
	fc.opDone(rank, m.Busy[rank])
}

// nextChild advances the op's child cursor: the materialized list when
// one is set, the binomial iterator otherwise.
func nextChild(op *fop) int {
	if op.kids != nil {
		if op.ki < len(op.kids) {
			c := op.kids[op.ki]
			op.ki++
			return c
		}
		return -1
	}
	return op.it.Next()
}

// abInternal is the internal-rank application-bypass call (Fig. 3 left
// column): disable signals, charge the accumulator copy and descriptor
// push, drain early contributions from the AB unexpected queue, run one
// progress pass over whatever the NIC already delivered, re-arm signals
// iff the instance is still outstanding, and return.
func (fc *FlowColl) abInternal(rank int, at sim.Time, seq uint64, parent int) {
	m, cm := fc.M, fc.M.CMs[rank]
	fr := &fc.ranks[rank]
	fr.sigOn = false
	t := m.HostRun(rank, at, cm.HostCopy(fc.Bytes))
	t = m.HostRun(rank, t, cm.DescriptorOvh())

	pend := fc.getPend(rank)
	if fc.Tree != nil {
		for _, c := range fc.Tree.kids[fc.Tree.off[rank]:fc.Tree.off[rank+1]] {
			pend = append(pend, c)
		}
	} else {
		for it := Kids(rank, fc.Root, fc.Size); ; {
			c := it.Next()
			if c < 0 {
				break
			}
			pend = append(pend, int32(c))
		}
	}
	fr.descs = append(fr.descs, fdesc{seq: mseq(seq), parent: int32(parent), pending: pend})
	di := len(fr.descs) - 1

	// drainUBQ: combine queued early messages straight from the queue.
	for i := 0; i < len(fr.abq) && len(fr.descs[di].pending) > 0; {
		pk := fr.abq[i]
		d := &fr.descs[di]
		if pk.seq != d.seq || !pendingHas(d, pk.src) {
			i++
			continue
		}
		t = m.HostRun(rank, t, cm.QueueSearch(i+1))
		fr.abq = append(fr.abq[:i], fr.abq[i+1:]...)
		fc.early[fc.M.LP(rank)]++
		t = m.HostRun(rank, t, cm.ReduceOp(fc.Count, 8))
		removePending(d, pk.src)
	}
	if len(fr.descs[di].pending) == 0 {
		fc.completeDesc(rank, fr, di, false)
	} else {
		// syncPhase's progress pass: handle every delivered message.
		for fr.nh < len(fr.nicq) {
			pkt := fr.nicq[fr.nh]
			fr.nh++
			fc.processPkt(rank, fr, pkt, false)
		}
		fr.resetq()
	}
	fr.sigOn = len(fr.descs) > 0
	fc.opDone(rank, m.Busy[rank])
}

// recvStart begins a blocking receive at rank's current host time:
// charge the receive overhead and unexpected-queue search, match a
// buffered message (second copy) or post and drain the NIC queue until
// matched. Returns true when the receive completed synchronously; false
// when the rank is parked polling and a future delivery will resume it.
func (fc *FlowColl) recvStart(rank int, fr *frank, kind uint8, src int32, seq uint64, size int32) bool {
	m, cm := fc.M, fc.M.CMs[rank]
	t := m.HostRun(rank, m.Busy[rank], cm.HostRecvOvh()+cm.QueueSearch(len(fr.unexp)))
	for i, pk := range fr.unexp {
		if pk.kind == kind && pk.src == src && pk.seq == seq {
			fr.unexp = append(fr.unexp[:i], fr.unexp[i+1:]...)
			m.HostRun(rank, t, cm.HostCopy(int(size)))
			return true
		}
	}
	op := &fr.op
	op.pkind, op.psrc, op.pseq, op.psize = kind, src, seq, size
	op.waiting = true
	for op.waiting && fr.nh < len(fr.nicq) {
		pkt := fr.nicq[fr.nh]
		fr.nh++
		fc.processPkt(rank, fr, pkt, false)
	}
	fr.resetq()
	return !op.waiting
}

// processPkt is handlePacket: return the receive token, charge the
// dequeue cost, consume a pending signal the progress engine beat the
// handler to, run the AB hook for collective messages, then default
// matching. Returns true when the message completed the posted receive
// (the caller resumes the op). intr routes charges to the interrupt
// ledger (signal-handler context).
func (fc *FlowColl) processPkt(rank int, fr *frank, pkt fpkt, intr bool) bool {
	m, cm := fc.M, fc.M.CMs[rank]
	ts := m.Busy[rank]
	if pkt.tr > ts {
		ts = pkt.tr
	}
	m.ReleaseRecv(rank, ts)
	cost := cm.PollIter()
	if pkt.coll && fr.sigPend {
		// The signal raised for this message loses the race with the
		// polling host; the handler will find nothing.
		cost += cm.SignalIgnoredOvh()
		fr.sigPend = false
	}
	if pkt.coll {
		// AB hook: search the descriptor queue for the instance.
		cost += cm.QueueSearch(len(fr.descs))
		if di := fc.findDesc(fr, pkt.seq, pkt.src); di >= 0 {
			cost += cm.ReduceOp(fc.Count, 8)
			fc.hostCharge(rank, ts, cost, intr)
			d := &fr.descs[di]
			removePending(d, pkt.src)
			if len(d.pending) == 0 {
				fc.completeDesc(rank, fr, di, intr)
			}
			return false
		}
		if rank != fc.Root {
			// No descriptor yet: copy into the AB unexpected queue.
			cost += cm.HostCopy(int(pkt.size))
			fc.hostCharge(rank, ts, cost, intr)
			fr.abq = append(fr.abq, pkt)
			return false
		}
		// Fig. 4 root check: fall through to default matching.
	}
	posted := 0
	if fr.op.waiting {
		posted = 1
	}
	cost += cm.QueueSearch(posted)
	cost += cm.HostCopy(int(pkt.size))
	fc.hostCharge(rank, ts, cost, intr)
	if fr.op.waiting && pkt.kind == fr.op.pkind && pkt.src == fr.op.psrc && pkt.seq == fr.op.pseq {
		fr.op.waiting = false
		return true
	}
	fr.unexp = append(fr.unexp, pkt)
	return false
}

// completeDesc finishes descriptor di: the eager upward send of the
// combined result, metrics, and the Fig. 3 signal re-arm.
func (fc *FlowColl) completeDesc(rank int, fr *frank, di int, intr bool) {
	m, cm := fc.M, fc.M.CMs[rank]
	d := fr.descs[di]
	t := fc.hostCharge(rank, m.Busy[rank], cm.HostSendOvh()+cm.HostCopy(fc.Bytes), intr)
	m.Send(t, rank, int(d.parent), fc.Bytes, fc, ptag(fkReduce, true, int(d.parent), rank, d.seq))
	fc.completed[fc.M.LP(rank)]++
	fc.putPend(rank, d.pending)
	fr.descs = append(fr.descs[:di], fr.descs[di+1:]...)
	fr.sigOn = len(fr.descs) > 0
}

// hostCharge advances rank's host clock, routing to the interrupt
// ledger in handler context.
func (fc *FlowColl) hostCharge(rank int, at, cost sim.Time, intr bool) sim.Time {
	if intr {
		return fc.M.HostIntr(rank, at, cost)
	}
	return fc.M.HostRun(rank, at, cost)
}

func (fc *FlowColl) findDesc(fr *frank, seq uint64, src int32) int {
	for i := range fr.descs {
		if fr.descs[i].seq == seq && pendingHas(&fr.descs[i], src) {
			return i
		}
	}
	return -1
}

func pendingHas(d *fdesc, src int32) bool {
	for _, c := range d.pending {
		if c == src {
			return true
		}
	}
	return false
}

func removePending(d *fdesc, src int32) {
	for i, c := range d.pending {
		if c == src {
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("coll: child %d not pending on flow descriptor seq=%d", src, d.seq))
}

// opDone ends rank's blocking call at host time t.
func (fc *FlowColl) opDone(rank int, t sim.Time) {
	fr := &fc.ranks[rank]
	fr.op.kind, fr.op.waiting, fr.op.kids = opNone, false, nil
	if fc.Done != nil {
		fc.Done(rank, t)
	}
}

// opAdvance resumes rank's op after a posted receive matched.
func (fc *FlowColl) opAdvance(rank int, fr *frank) {
	m, cm := fc.M, fc.M.CMs[rank]
	switch fr.op.kind {
	case opReduce:
		m.HostRun(rank, m.Busy[rank], cm.ReduceOp(fc.Count, 8))
		fc.reduceLoop(rank, fr)
	case opBarrier:
		fc.barrierLoop(rank, fr)
	case opRecv:
		fc.opDone(rank, m.Busy[rank])
	default:
		panic("coll: flow delivery resumed an idle rank")
	}
}

// FlowEvent receives Machine callbacks: message deliveries and signal-
// handler wakeups.
func (fc *FlowColl) FlowEvent(tag uint64, at sim.Time) {
	kind := uint8(tag & 7)
	dst := int(tag >> 4 & 0x1FFFFF)
	if kind == fkSignal {
		fc.onSignal(dst, at)
		return
	}
	pkt := fpkt{
		kind: kind,
		coll: tag&8 != 0,
		src:  int32(tag >> 25 & 0x1FFFFF),
		seq:  tag >> 46,
		tr:   at,
	}
	switch kind {
	case fkReduce:
		pkt.size = int32(fc.Bytes)
	case fkBarUp, fkBarDown:
		pkt.size = 1
	case fkP2P:
		pkt.size = int32(fc.P2PBytes)
	}
	fc.deliver(dst, pkt)
}

// deliver routes one NIC deposit: raise a (coalesced) signal for
// collective messages when armed, process immediately when the rank is
// parked polling in a blocking call, queue otherwise.
func (fc *FlowColl) deliver(dst int, pkt fpkt) {
	fr := &fc.ranks[dst]
	if pkt.coll && fr.sigOn && !fr.sigPend {
		fr.sigPend = true
		fc.M.WakeAt(dst, pkt.tr+fc.M.CMs[dst].C.SignalDelay, fc, ptag(fkSignal, false, dst, 0, 0))
	}
	if fr.op.waiting {
		if fc.processPkt(dst, fr, pkt, false) {
			fc.opAdvance(dst, fr)
		}
		return
	}
	fr.nicq = append(fr.nicq, pkt)
}

// onSignal is the NIC signal handler at its delayed start time: stale
// if in-call progress consumed the pending raise; SignalIgnoredOvh if
// the queue drained in the meantime; otherwise SignalOvh plus a full
// progress pass, all on the interrupt ledger.
func (fc *FlowColl) onSignal(rank int, th sim.Time) {
	fr := &fc.ranks[rank]
	if !fr.sigPend {
		return
	}
	fr.sigPend = false
	m, cm := fc.M, fc.M.CMs[rank]
	if fr.nh >= len(fr.nicq) {
		m.HostIntr(rank, th, cm.SignalIgnoredOvh())
		return
	}
	m.HostIntr(rank, th, cm.SignalOvh())
	fc.Signals[rank]++
	for fr.nh < len(fr.nicq) {
		pkt := fr.nicq[fr.nh]
		fr.nh++
		fc.processPkt(rank, fr, pkt, true)
	}
	fr.resetq()
}

func (fr *frank) resetq() {
	if fr.nh >= len(fr.nicq) {
		fr.nicq, fr.nh = fr.nicq[:0], 0
	}
}
