package coll

import (
	"fmt"

	"abred/internal/mpi"
)

// Reduce performs the default MPICH blocking reduction: every process
// calls it; recvbuf receives the combined result at root only. Internal
// processes block on each child in turn — the synchronization the paper
// identifies as the scalability problem (§I).
func Reduce(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op, root int) {
	seq := c.NextSeq(mpi.CtxReduce)
	ReduceWithSeq(c, seq, sendbuf, recvbuf, count, dt, op, root, false)
}

// ReduceWithSeq is Reduce for an explicit instance number on the
// standard reduce context; the application-bypass layer uses it for its
// root and fallback paths so both implementations stay wire-compatible
// within one instance. collective selects the GM packet type for the
// result sent to the parent.
func ReduceWithSeq(c *mpi.Comm, seq uint64, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op, root int, collective bool) {
	ReduceOnKind(c, mpi.CtxReduce, seq, sendbuf, recvbuf, count, dt, op, root, collective)
}

// ReduceOnKind is ReduceWithSeq on an explicit context kind, so the
// split-phase fallback can stay on its own context.
func ReduceOnKind(c *mpi.Comm, kind mpi.CtxKind, seq uint64, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op, root int, collective bool) {
	pr := c.Proc()
	n := checkReduceArgs(c, sendbuf, recvbuf, count, dt, op, root)
	ctx := c.Ctx(kind)
	tag := seqTag(seq)
	rank, size := c.Rank(), c.Size()
	parent := Parent(rank, root, size)

	if ChildCount(rank, root, size) == 0 {
		if parent < 0 { // single-process communicator
			copy(recvbuf[:n], sendbuf[:n])
			return
		}
		// Tree math stays in comm-local rank space; peers and the Root
		// header are world-translated at the wire (identity on world).
		pr.Send(mpi.SendArgs{
			Dst: c.World(parent), Ctx: ctx, Tag: tag, Data: sendbuf[:n],
			Collective: collective, Root: int32(c.World(root)), Seq: seq,
		})
		return
	}

	// Accumulate into a temporary so sendbuf stays untouched (MPI
	// semantics); the initial copy is charged like MPICH's. Both scratch
	// buffers come from the process pool and are fully overwritten.
	acc := pr.GetBuf(n)
	pr.P.Spin(pr.CM.HostCopy(n))
	copy(acc, sendbuf[:n])

	tmp := pr.GetBuf(n)
	for it := Kids(rank, root, size); ; {
		child := it.Next()
		if child < 0 {
			break
		}
		pr.Recv(ctx, c.World(child), tag, tmp)
		pr.P.Spin(pr.CM.ReduceOp(count, dt.Size()))
		mpi.Apply(op, dt, acc, tmp, count)
	}
	pr.PutBuf(tmp)

	if parent < 0 {
		copy(recvbuf[:n], acc)
		pr.PutBuf(acc)
		return
	}
	pr.Send(mpi.SendArgs{
		Dst: c.World(parent), Ctx: ctx, Tag: tag, Data: acc,
		Collective: collective, Root: int32(c.World(root)), Seq: seq,
	})
	if n <= pr.CM.C.EagerThreshold {
		// An eager send copied acc out synchronously; a rendezvous data
		// packet still aliases it in flight, so it must not be pooled.
		pr.PutBuf(acc)
	}
}

// seqTag folds a collective instance number into a tag.
func seqTag(seq uint64) int32 { return int32(seq & 0x7FFFFFFF) }

func checkReduceArgs(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op, root int) int {
	if count <= 0 {
		panic(fmt.Sprintf("coll: non-positive count %d", count))
	}
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("coll: root %d out of range (size %d)", root, c.Size()))
	}
	if !op.ValidFor(dt) {
		panic(fmt.Sprintf("coll: op %v undefined for %v", op, dt))
	}
	n := count * dt.Size()
	if len(sendbuf) < n {
		panic(fmt.Sprintf("coll: sendbuf %d bytes < %d", len(sendbuf), n))
	}
	if c.Rank() == root && len(recvbuf) < n {
		panic(fmt.Sprintf("coll: recvbuf %d bytes < %d at root", len(recvbuf), n))
	}
	return n
}
