package coll

import (
	"testing"

	"abred/internal/mpi"
)

func TestAlltoall(t *testing.T) {
	for _, size := range []int{2, 3, 7, 8} {
		size := size
		count := 2
		got := make([][]float64, size)
		runWorld(size, int64(size), func(w *mpi.Comm) {
			rank := w.Rank()
			// Block for peer j: {rank*100+j, j*100+rank}.
			send := make([]float64, count*size)
			for j := 0; j < size; j++ {
				send[2*j] = float64(rank*100 + j)
				send[2*j+1] = float64(j*100 + rank)
			}
			recv := make([]byte, count*size*8)
			Alltoall(w, f64s(send...), recv, count, mpi.Float64)
			got[rank] = mpi.BytesToFloat64s(recv)
		})
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				// Block j in rank i's recvbuf came from rank j's block i.
				if got[i][2*j] != float64(j*100+i) || got[i][2*j+1] != float64(i*100+j) {
					t.Fatalf("size %d: rank %d block %d = %v", size, i, j, got[i][2*j:2*j+2])
				}
			}
		}
	}
}

func TestReduceScatter(t *testing.T) {
	size := 4
	count := 3
	got := make([][]float64, size)
	runWorld(size, 21, func(w *mpi.Comm) {
		// Every rank contributes v[i] = i (over the full size*count
		// vector), so the combined vector is size*i and rank r's block
		// is {size*(r*count) ... }.
		full := make([]float64, size*count)
		for i := range full {
			full[i] = float64(i)
		}
		recv := make([]byte, count*8)
		ReduceScatter(w, f64s(full...), recv, count, mpi.Float64, mpi.OpSum)
		got[w.Rank()] = mpi.BytesToFloat64s(recv)
	})
	for r := 0; r < size; r++ {
		for i := 0; i < count; i++ {
			want := float64(size * (r*count + i))
			if got[r][i] != want {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, got[r][i], want)
			}
		}
	}
}

func TestAlltoallSingleRank(t *testing.T) {
	runWorld(1, 1, func(w *mpi.Comm) {
		recv := make([]byte, 8)
		Alltoall(w, f64s(9), recv, 1, mpi.Float64)
		if mpi.BytesToFloat64s(recv)[0] != 9 {
			t.Error("self alltoall failed")
		}
	})
}
