package coll

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"abred/internal/fabric"
	"abred/internal/gm"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
)

// runWorld spawns n ranks over a fresh fabric and runs fn with each
// rank's world communicator.
func runWorld(n int, seed int64, fn func(w *mpi.Comm)) {
	k := sim.New(seed)
	costs := model.DefaultCosts()
	fab := fabric.New(k, n, costs)
	specs := model.Uniform(n)
	nics := make([]*gm.NIC, n)
	for i := 0; i < n; i++ {
		nics[i] = gm.NewNIC(k, i, model.NewCostModel(specs[i], costs), fab)
	}
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("rank", func(p *sim.Proc) {
			pr := mpi.NewProcess(p, i, n, nics[i], model.NewCostModel(specs[i], costs))
			fn(mpi.World(pr))
		})
	}
	k.Run()
}

func f64s(vals ...float64) []byte { return mpi.Float64sToBytes(vals) }

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
		for _, root := range []int{0, size / 2, size - 1} {
			size, root := size, root
			payload := []float64{3.5, -1, 42, float64(root)}
			got := make([][]float64, size)
			runWorld(size, 5, func(w *mpi.Comm) {
				buf := make([]byte, 32)
				if w.Rank() == root {
					copy(buf, f64s(payload...))
				}
				Bcast(w, buf, 4, mpi.Float64, root)
				got[w.Rank()] = mpi.BytesToFloat64s(buf)
			})
			for r := 0; r < size; r++ {
				for i := range payload {
					if got[r][i] != payload[i] {
						t.Fatalf("size=%d root=%d rank=%d got %v", size, root, r, got[r])
					}
				}
			}
		}
	}
}

func TestReduceOpsAndTypes(t *testing.T) {
	size := 9
	type tc struct {
		op   mpi.Op
		dt   mpi.Datatype
		in   func(rank int) []byte
		want []byte
	}
	cases := []tc{
		{
			op: mpi.OpMax, dt: mpi.Float64,
			in:   func(r int) []byte { return f64s(float64(r), float64(-r)) },
			want: f64s(8, 0),
		},
		{
			op: mpi.OpMin, dt: mpi.Int64,
			in:   func(r int) []byte { return mpi.Int64sToBytes([]int64{int64(r - 4)}) },
			want: mpi.Int64sToBytes([]int64{-4}),
		},
		{
			op: mpi.OpBXor, dt: mpi.Uint64,
			in:   func(r int) []byte { return mpi.Uint64sToBytes([]uint64{1 << uint(r)}) },
			want: mpi.Uint64sToBytes([]uint64{0x1FF}),
		},
		{
			op: mpi.OpProd, dt: mpi.Float64,
			in:   func(r int) []byte { return f64s(2) },
			want: f64s(512),
		},
	}
	for ci, c := range cases {
		got := make([]byte, len(c.want))
		runWorld(size, int64(ci+1), func(w *mpi.Comm) {
			out := make([]byte, len(c.want))
			Reduce(w, c.in(w.Rank()), out, len(c.want)/c.dt.Size(), c.dt, c.op, 0)
			if w.Rank() == 0 {
				copy(got, out)
			}
		})
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("case %d (%v/%v): got % x want % x", ci, c.op, c.dt, got, c.want)
				break
			}
		}
	}
}

// TestReduceEqualsSequentialFold is the property test tying the tree
// reduction to a plain fold for random inputs, sizes and roots.
func TestReduceEqualsSequentialFold(t *testing.T) {
	f := func(sizeRaw, rootRaw uint8, seed int64, vals [6]int16) bool {
		size := int(sizeRaw%19) + 1
		root := int(rootRaw) % size
		count := 3
		var want [3]float64
		inputs := make([][]float64, size)
		for r := 0; r < size; r++ {
			inputs[r] = make([]float64, count)
			for i := 0; i < count; i++ {
				inputs[r][i] = float64(int(vals[(r+i)%len(vals)]) + r*i)
				want[i] += inputs[r][i]
			}
		}
		var got []float64
		runWorld(size, seed, func(w *mpi.Comm) {
			out := make([]byte, count*8)
			Reduce(w, f64s(inputs[w.Rank()]...), out, count, mpi.Float64, mpi.OpSum, root)
			if w.Rank() == root {
				got = mpi.BytesToFloat64s(out)
			}
		})
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAllreduce(t *testing.T) {
	size := 11
	got := make([][]float64, size)
	runWorld(size, 3, func(w *mpi.Comm) {
		in := f64s(float64(w.Rank()), 1)
		out := make([]byte, 16)
		Allreduce(w, in, out, 2, mpi.Float64, mpi.OpSum)
		got[w.Rank()] = mpi.BytesToFloat64s(out)
	})
	for r := 0; r < size; r++ {
		if got[r][0] != 55 || got[r][1] != 11 {
			t.Fatalf("rank %d allreduce = %v", r, got[r])
		}
	}
}

func TestGatherScatter(t *testing.T) {
	size := 6
	root := 2
	gathered := make([]float64, 0)
	scattered := make([][]float64, size)
	runWorld(size, 9, func(w *mpi.Comm) {
		// Gather rank-stamped pairs.
		in := f64s(float64(w.Rank()), float64(w.Rank()*10))
		var out []byte
		if w.Rank() == root {
			out = make([]byte, 16*size)
		}
		Gather(w, in, out, 2, mpi.Float64, root)
		if w.Rank() == root {
			gathered = mpi.BytesToFloat64s(out)
		}

		// Scatter blocks [100r, 100r+1] from root.
		var sbuf []byte
		if w.Rank() == root {
			all := make([]float64, 2*size)
			for r := 0; r < size; r++ {
				all[2*r] = float64(100 * r)
				all[2*r+1] = float64(100*r + 1)
			}
			sbuf = f64s(all...)
		}
		rbuf := make([]byte, 16)
		Scatter(w, sbuf, rbuf, 2, mpi.Float64, root)
		scattered[w.Rank()] = mpi.BytesToFloat64s(rbuf)
	})
	for r := 0; r < size; r++ {
		if gathered[2*r] != float64(r) || gathered[2*r+1] != float64(r*10) {
			t.Fatalf("gather block %d = %v", r, gathered[2*r:2*r+2])
		}
		if scattered[r][0] != float64(100*r) || scattered[r][1] != float64(100*r+1) {
			t.Fatalf("scatter rank %d = %v", r, scattered[r])
		}
	}
}

func TestAllgather(t *testing.T) {
	size := 5
	got := make([][]float64, size)
	runWorld(size, 4, func(w *mpi.Comm) {
		in := f64s(float64(w.Rank() + 1))
		out := make([]byte, 8*size)
		Allgather(w, in, out, 1, mpi.Float64)
		got[w.Rank()] = mpi.BytesToFloat64s(out)
	})
	for r := 0; r < size; r++ {
		for i := 0; i < size; i++ {
			if got[r][i] != float64(i+1) {
				t.Fatalf("rank %d allgather = %v", r, got[r])
			}
		}
	}
}

func TestScan(t *testing.T) {
	size := 7
	got := make([][]float64, size)
	runWorld(size, 8, func(w *mpi.Comm) {
		in := f64s(float64(w.Rank() + 1))
		out := make([]byte, 8)
		Scan(w, in, out, 1, mpi.Float64, mpi.OpSum)
		got[w.Rank()] = mpi.BytesToFloat64s(out)
	})
	for r := 0; r < size; r++ {
		want := float64((r + 1) * (r + 2) / 2)
		if got[r][0] != want {
			t.Fatalf("rank %d scan = %v, want %v", r, got[r][0], want)
		}
	}
}

// TestBarrierHoldsEveryone: no rank may leave the barrier before the
// last rank has entered it.
func TestBarrierHoldsEveryone(t *testing.T) {
	for _, size := range []int{2, 5, 8, 16} {
		size := size
		enter := make([]sim.Time, size)
		exit := make([]sim.Time, size)
		runWorld(size, 6, func(w *mpi.Comm) {
			r := w.Rank()
			// Stagger arrivals hard.
			w.Proc().P.Sleep(sim.Time(r*r) * 10 * time.Microsecond)
			enter[r] = w.Proc().P.Now()
			Barrier(w)
			exit[r] = w.Proc().P.Now()
		})
		lastEnter := enter[0]
		for _, e := range enter {
			if e > lastEnter {
				lastEnter = e
			}
		}
		for r := 0; r < size; r++ {
			if exit[r] < lastEnter {
				t.Fatalf("size %d: rank %d left the barrier at %v before last entry %v", size, r, exit[r], lastEnter)
			}
		}
	}
}

// TestBarrierDissemination checks the alternative barrier the same way.
func TestBarrierDissemination(t *testing.T) {
	size := 9
	enter := make([]sim.Time, size)
	exit := make([]sim.Time, size)
	runWorld(size, 6, func(w *mpi.Comm) {
		r := w.Rank()
		w.Proc().P.Sleep(sim.Time(size-r) * 25 * time.Microsecond)
		enter[r] = w.Proc().P.Now()
		BarrierDissemination(w)
		exit[r] = w.Proc().P.Now()
	})
	lastEnter := enter[0]
	for _, e := range enter {
		if e > lastEnter {
			lastEnter = e
		}
	}
	for r := 0; r < size; r++ {
		if exit[r] < lastEnter {
			t.Fatalf("rank %d left at %v before last entry %v", r, exit[r], lastEnter)
		}
	}
}

// TestBackToBackCollectivesInterleave mixes different collectives in
// sequence to check context isolation end to end.
func TestBackToBackCollectivesInterleave(t *testing.T) {
	size := 8
	var rootSum float64
	bcastOK := true
	runWorld(size, 12, func(w *mpi.Comm) {
		for iter := 0; iter < 5; iter++ {
			out := make([]byte, 8)
			Reduce(w, f64s(float64(w.Rank())), out, 1, mpi.Float64, mpi.OpSum, 0)
			if w.Rank() == 0 {
				rootSum = mpi.BytesToFloat64s(out)[0]
			}
			buf := make([]byte, 8)
			if w.Rank() == 3 {
				copy(buf, f64s(float64(iter)))
			}
			Bcast(w, buf, 1, mpi.Float64, 3)
			if mpi.BytesToFloat64s(buf)[0] != float64(iter) {
				bcastOK = false
			}
			Barrier(w)
		}
	})
	if rootSum != 28 {
		t.Errorf("root sum = %v, want 28", rootSum)
	}
	if !bcastOK {
		t.Error("bcast payload wrong in interleaved sequence")
	}
}

func TestReduceSingleRank(t *testing.T) {
	runWorld(1, 1, func(w *mpi.Comm) {
		out := make([]byte, 8)
		Reduce(w, f64s(5), out, 1, mpi.Float64, mpi.OpSum, 0)
		if mpi.BytesToFloat64s(out)[0] != 5 {
			t.Errorf("single-rank reduce = %v", mpi.BytesToFloat64s(out))
		}
	})
}

func TestReduceArgValidation(t *testing.T) {
	for name, call := range map[string]func(w *mpi.Comm){
		"bad count": func(w *mpi.Comm) {
			Reduce(w, f64s(1), make([]byte, 8), 0, mpi.Float64, mpi.OpSum, 0)
		},
		"bad root": func(w *mpi.Comm) {
			Reduce(w, f64s(1), make([]byte, 8), 1, mpi.Float64, mpi.OpSum, 9)
		},
		"bad op": func(w *mpi.Comm) {
			Reduce(w, f64s(1), make([]byte, 8), 1, mpi.Float64, mpi.OpBAnd, 0)
		},
		"short sendbuf": func(w *mpi.Comm) {
			Reduce(w, make([]byte, 4), make([]byte, 8), 1, mpi.Float64, mpi.OpSum, 0)
		},
	} {
		name, call := name, call
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			runWorld(1, 1, call)
		}()
	}
}
