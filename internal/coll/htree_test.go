package coll

import (
	"testing"

	"abred/internal/mpi"
)

// leafMod groups ranks g at a time, like topo.Topology.Leaf on a tree
// with g hosts per leaf switch.
func leafMod(g int) func(int) int { return func(r int) int { return r / g } }

// TestTopoTreeInvariants checks the structural contract over a grid of
// sizes, roots and group widths: every rank reaches the root, parent
// and children are inverse relations, cross-leaf edges connect group
// leaders only, and exactly one result per non-root group crosses a
// leaf boundary.
func TestTopoTreeInvariants(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7, 8, 16, 33, 64} {
		for _, root := range []int{0, size / 2, size - 1} {
			for _, g := range []int{1, 2, 3, 4, 8} {
				leaf := leafMod(g)
				tr := NewTopoTree(size, root, leaf)
				if tr.Parent(root) != -1 {
					t.Fatalf("size=%d root=%d g=%d: root has parent %d", size, root, g, tr.Parent(root))
				}
				crossOut := map[int]int{} // group -> edges leaving it upward
				kids := map[int][]int{}
				for r := 0; r < size; r++ {
					kids[r] = tr.AppendChildren(nil, r)
					if len(kids[r]) != tr.ChildCount(r) {
						t.Fatalf("size=%d root=%d g=%d rank=%d: ChildCount %d but %d children",
							size, root, g, r, tr.ChildCount(r), len(kids[r]))
					}
					if r == root {
						continue
					}
					p := tr.Parent(r)
					if p < 0 || p >= size {
						t.Fatalf("size=%d root=%d g=%d rank=%d: parent %d", size, root, g, r, p)
					}
					// Walk to the root; a cycle would loop past size steps.
					for hops, q := 0, r; q != root; hops++ {
						if hops > size {
							t.Fatalf("size=%d root=%d g=%d: rank %d never reaches root", size, root, g, r)
						}
						q = tr.Parent(q)
					}
					if leaf(r) != leaf(p) {
						crossOut[leaf(r)]++
						// Cross-leaf senders must be group leaders: the
						// lowest rank of the group (or the root, which
						// leads its own group but never sends up).
						for q := 0; q < size; q++ {
							if leaf(q) == leaf(r) && q < r {
								t.Fatalf("size=%d root=%d g=%d: non-leader %d (group min %d) crosses leaves",
									size, root, g, r, q)
							}
						}
					}
				}
				for r := 0; r < size; r++ {
					for _, c := range kids[r] {
						if tr.Parent(c) != r {
							t.Fatalf("size=%d root=%d g=%d: child %d of %d has parent %d",
								size, root, g, c, r, tr.Parent(c))
						}
					}
				}
				for grp, n := range crossOut {
					if n != 1 {
						t.Fatalf("size=%d root=%d g=%d: group %d sends %d results across leaves, want 1",
							size, root, g, grp, n)
					}
				}
			}
		}
	}
}

// TestTopoTreeRootLeadsOwnGroup: the root leads its group even when it
// is not the group's lowest rank, so the group's partial result lands
// on the root directly instead of detouring through a leader.
func TestTopoTreeRootLeadsOwnGroup(t *testing.T) {
	tr := NewTopoTree(8, 3, leafMod(2)) // groups {0,1} {2,3} {4,5} {6,7}; root 3
	if p := tr.Parent(2); p != 3 {
		t.Errorf("rank 2's parent = %d, want root 3", p)
	}
	for _, r := range []int{0, 4, 6} { // other groups' leaders
		for q := r; q != 3; q = tr.Parent(q) {
			if q != r && q/2 != r/2 && q != 3 && tr.Parent(q) == -1 {
				t.Fatalf("leader %d never reaches root", r)
			}
		}
	}
}

// TestTopoTreeDeterminism: rebuilding yields the identical tree — the
// property that lets every rank derive the shape independently.
func TestTopoTreeDeterminism(t *testing.T) {
	a := NewTopoTree(33, 5, leafMod(4))
	b := NewTopoTree(33, 5, leafMod(4))
	for r := 0; r < 33; r++ {
		if a.Parent(r) != b.Parent(r) {
			t.Fatalf("rank %d: parents differ across rebuilds", r)
		}
		ka, kb := a.AppendChildren(nil, r), b.AppendChildren(nil, r)
		if len(ka) != len(kb) {
			t.Fatalf("rank %d: child counts differ", r)
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("rank %d: child order differs", r)
			}
		}
	}
}

// TestTopoTreeFlatDegenerate: one rank per group degenerates to a tree
// of leaders only — the flat binomial shape over all ranks.
func TestTopoTreeFlatDegenerate(t *testing.T) {
	const size, root = 16, 2
	tr := NewTopoTree(size, root, leafMod(1))
	for r := 0; r < size; r++ {
		if got, want := tr.Parent(r), Parent(r, root, size); got != want {
			t.Errorf("rank %d: parent %d, flat binomial says %d", r, got, want)
		}
	}
}

// TestReduceTreeEqualsSequentialFold: the hierarchy-aware blocking
// reduce computes the same result as the flat one, across roots and
// ragged sizes.
func TestReduceTreeEqualsSequentialFold(t *testing.T) {
	for _, size := range []int{1, 2, 5, 8, 13, 16} {
		for _, root := range []int{0, size - 1} {
			tr := NewTopoTree(size, root, leafMod(4))
			var got []float64
			runWorld(size, 9, func(w *mpi.Comm) {
				in := f64s(float64(w.Rank()+1), -2, float64(w.Rank()*w.Rank()), 0.5)
				out := make([]byte, 32)
				ReduceTree(w, tr, in, out, 4, mpi.Float64, mpi.OpSum)
				if w.Rank() == root {
					got = mpi.BytesToFloat64s(out)
				}
			})
			want := make([]float64, 4)
			for r := 0; r < size; r++ {
				in := []float64{float64(r + 1), -2, float64(r * r), 0.5}
				for i := range want {
					want[i] += in[i]
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("size=%d root=%d: got %v, want %v", size, root, got, want)
				}
			}
		}
	}
}
