package coll

import (
	"testing"

	"abred/internal/mpi"
)

// runSub runs two disjoint sub-communicators concurrently over one
// world: even world ranks form job 0, odd ranks job 1, each with its
// own context id. fn receives the sub-communicator plus the job index.
func runSub(n int, seed int64, fn func(c *mpi.Comm, job int)) {
	var even, odd []int
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			even = append(even, i)
		} else {
			odd = append(odd, i)
		}
	}
	runWorld(n, seed, func(w *mpi.Comm) {
		pr := w.Proc()
		if pr.Rank()%2 == 0 {
			fn(mpi.Sub(pr, even, 1), 0)
		} else {
			fn(mpi.Sub(pr, odd, 2), 1)
		}
	})
}

// TestSubCommReduce runs concurrent reductions on two disjoint
// sub-communicators: each job's sum covers exactly its own members,
// and results land on each job's local root (a different world rank).
func TestSubCommReduce(t *testing.T) {
	for _, n := range []int{2, 5, 8, 17} {
		sums := make([]float64, 2)
		want := make([]float64, 2)
		for i := 0; i < n; i++ {
			want[i%2] += float64(i)
		}
		runSub(n, 21, func(c *mpi.Comm, job int) {
			world := c.World(c.Rank())
			out := make([]byte, 8)
			root := c.Size() - 1
			Reduce(c, f64s(float64(world)), out, 1, mpi.Float64, mpi.OpSum, root)
			if c.Rank() == root {
				sums[job] = mpi.BytesToFloat64s(out)[0]
			}
		})
		for job := 0; job < 2; job++ {
			if sums[job] != want[job] {
				t.Fatalf("n=%d job %d sum = %v, want %v", n, job, sums[job], want[job])
			}
		}
	}
}

// TestSubCommMixedCollectives interleaves bcast, allreduce, barrier,
// scan and gather on concurrent sub-communicators — the full context
// isolation the tenancy layer relies on.
func TestSubCommMixedCollectives(t *testing.T) {
	n := 12
	sz := n / 2
	scans := make([][]float64, n)
	gathers := make([][]float64, 2)
	bad := make([]bool, n)
	runSub(n, 33, func(c *mpi.Comm, job int) {
		for iter := 0; iter < 3; iter++ {
			buf := make([]byte, 8)
			if c.Rank() == 0 {
				copy(buf, f64s(float64(100*job+iter)))
			}
			Bcast(c, buf, 1, mpi.Float64, 0)
			if mpi.BytesToFloat64s(buf)[0] != float64(100*job+iter) {
				bad[c.World(c.Rank())] = true
			}

			out := make([]byte, 8)
			Allreduce(c, f64s(1), out, 1, mpi.Float64, mpi.OpSum)
			if mpi.BytesToFloat64s(out)[0] != float64(c.Size()) {
				bad[c.World(c.Rank())] = true
			}
			Barrier(c)
		}
		out := make([]byte, 8)
		Scan(c, f64s(float64(c.Rank()+1)), out, 1, mpi.Float64, mpi.OpSum)
		scans[c.World(c.Rank())] = mpi.BytesToFloat64s(out)

		var g []byte
		if c.Rank() == 0 {
			g = make([]byte, 8*c.Size())
		}
		Gather(c, f64s(float64(c.World(c.Rank()))), g, 1, mpi.Float64, 0)
		if c.Rank() == 0 {
			gathers[job] = mpi.BytesToFloat64s(g)
		}
	})
	for w := 0; w < n; w++ {
		if bad[w] {
			t.Fatalf("world rank %d saw a wrong bcast/allreduce payload", w)
		}
		local := w / 2
		if want := float64((local + 1) * (local + 2) / 2); scans[w][0] != want {
			t.Fatalf("world rank %d scan = %v, want %v", w, scans[w][0], want)
		}
	}
	for job := 0; job < 2; job++ {
		for i := 0; i < sz; i++ {
			if want := float64(2*i + job); gathers[job][i] != want {
				t.Fatalf("job %d gather[%d] = %v, want %v", job, i, gathers[job][i], want)
			}
		}
	}
}

// TestSubCommAlltoall exchanges rank-stamped blocks within each job.
func TestSubCommAlltoall(t *testing.T) {
	n := 8
	got := make([][]float64, n)
	runSub(n, 44, func(c *mpi.Comm, job int) {
		sz := c.Size()
		in := make([]float64, sz)
		for j := 0; j < sz; j++ {
			in[j] = float64(100*c.Rank() + j)
		}
		out := make([]byte, 8*sz)
		Alltoall(c, f64s(in...), out, 1, mpi.Float64)
		got[c.World(c.Rank())] = mpi.BytesToFloat64s(out)
	})
	for w := 0; w < n; w++ {
		local := w / 2
		for j := 0; j < n/2; j++ {
			if want := float64(100*j + local); got[w][j] != want {
				t.Fatalf("world %d block %d = %v, want %v", w, j, got[w][j], want)
			}
		}
	}
}
