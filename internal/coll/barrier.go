package coll

import "abred/internal/mpi"

// Barrier synchronizes all ranks the way MPICH 1.2 does: combine up a
// binomial tree rooted at rank 0, then broadcast the release down the
// same tree. The release wave reaches ranks at different times — rank 0
// first, the deepest leaves ceil(log2 n) hops later — which is precisely
// the "naturally-occurring skew" the paper observes growing with system
// size even in its no-artificial-skew experiments (§VI-B). The
// microbenchmarks separate iterations with this barrier, as the paper's
// do.
func Barrier(c *mpi.Comm) {
	pr := c.Proc()
	size := c.Size()
	if size == 1 {
		return
	}
	rank := c.Rank()
	ctx := c.Ctx(mpi.CtxBarrier)
	seq := c.NextSeq(mpi.CtxBarrier)
	upTag := seqTag(seq * 2)
	downTag := seqTag(seq*2 + 1)
	parent := Parent(rank, 0, size)
	// A pooled token instead of a stack array: the array escapes through
	// Recv's posted queue, costing one allocation per barrier. Zeroed so
	// the wire bytes stay identical to the stack version's.
	token := pr.GetBuf(1)
	token[0] = 0

	// Combine phase: wait for the whole subtree, then report up.
	for it := Kids(rank, 0, size); ; {
		child := it.Next()
		if child < 0 {
			break
		}
		pr.Recv(ctx, c.World(child), upTag, token)
	}
	if parent >= 0 {
		pr.Send(mpi.SendArgs{Dst: c.World(parent), Ctx: ctx, Tag: upTag, Data: token})
		pr.Recv(ctx, c.World(parent), downTag, token)
	}
	// Release phase: forward the release down the subtree.
	for it := Kids(rank, 0, size); ; {
		child := it.Next()
		if child < 0 {
			break
		}
		pr.Send(mpi.SendArgs{Dst: c.World(child), Ctx: ctx, Tag: downTag, Data: token})
	}
	pr.PutBuf(token) // 1-byte sends are eager: copied out synchronously
}

// BarrierDissemination is the dissemination barrier: ceil(log2 n)
// rounds; in round k each rank sends to rank+2^k and receives from
// rank-2^k. It releases all ranks within about one message latency of
// each other, making it useful when a benchmark needs a tighter
// synchronization point than the MPICH tree barrier provides.
func BarrierDissemination(c *mpi.Comm) {
	pr := c.Proc()
	size := c.Size()
	if size == 1 {
		return
	}
	rank := c.Rank()
	ctx := c.Ctx(mpi.CtxBarrier)
	seq := c.NextSeq(mpi.CtxBarrier)
	var token [1]byte
	var buf [1]byte
	for k, dist := 0, 1; dist < size; k, dist = k+1, dist*2 {
		tag := seqTag(seq*64 + uint64(k))
		to := (rank + dist) % size
		from := (rank - dist + size) % size
		sreq := pr.Isend(mpi.SendArgs{Dst: c.World(to), Ctx: ctx, Tag: tag, Data: token[:]})
		pr.Recv(ctx, c.World(from), tag, buf[:])
		sreq.Wait()
	}
}
