package coll

import (
	"fmt"

	"abred/internal/mpi"
)

// Alltoall exchanges count elements between every pair of ranks: rank
// i's block j of sendbuf lands in rank j's block i of recvbuf. Linear
// (post all receives, send to all peers), as in early MPICH.
func Alltoall(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype) {
	pr := c.Proc()
	n := count * dt.Size()
	rank, size := c.Rank(), c.Size()
	if len(sendbuf) < n*size || len(recvbuf) < n*size {
		panic(fmt.Sprintf("coll: alltoall buffers too small (%d, %d < %d)", len(sendbuf), len(recvbuf), n*size))
	}
	ctx := c.Ctx(mpi.CtxAlltoall)
	tag := seqTag(c.NextSeq(mpi.CtxAlltoall))

	var reqs []*mpi.Request
	for peer := 0; peer < size; peer++ {
		if peer == rank {
			copy(recvbuf[rank*n:(rank+1)*n], sendbuf[rank*n:(rank+1)*n])
			continue
		}
		reqs = append(reqs, pr.Irecv(ctx, c.World(peer), tag, recvbuf[peer*n:(peer+1)*n]))
	}
	for peer := 0; peer < size; peer++ {
		if peer == rank {
			continue
		}
		reqs = append(reqs, pr.Isend(mpi.SendArgs{Dst: c.World(peer), Ctx: ctx, Tag: tag, Data: sendbuf[peer*n : (peer+1)*n]}))
	}
	mpi.WaitAll(reqs...)
}

// ReduceScatter combines size×count elements across all ranks and
// scatters the result: rank i receives block i of the combined vector.
// Composed from Reduce to rank 0 plus Scatter, as early MPICH did.
func ReduceScatter(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op) {
	pr := c.Proc()
	n := count * dt.Size()
	size := c.Size()
	if len(sendbuf) < n*size {
		panic(fmt.Sprintf("coll: reduce-scatter sendbuf %d bytes < %d", len(sendbuf), n*size))
	}
	if len(recvbuf) < n {
		panic(fmt.Sprintf("coll: reduce-scatter recvbuf %d bytes < %d", len(recvbuf), n))
	}
	var full []byte
	if c.Rank() == 0 {
		full = make([]byte, n*size)
	}
	Reduce(c, sendbuf[:n*size], full, count*size, dt, op, 0)
	Scatter(c, full, recvbuf[:n], count, dt, 0)
	_ = pr
}
