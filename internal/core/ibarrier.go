package core

import (
	"fmt"

	"abred/internal/mpi"
)

// Split-phase synchronizing collectives — the enhancement §II sketches:
// "It could even benefit synchronizing operations like barrier and
// all-reduce if they are implemented in a split-phase manner." Both are
// composed from the split-phase reduction and broadcast, chained through
// completion continuations so every phase advances asynchronously: a
// rank posts the operation, keeps computing, and the whole
// reduce-then-release wave propagates through signal handlers.
//
// Ordering rule (as for MPI-3 nonblocking collectives): between posting
// one of these operations and its completion, no other collective that
// consumes the same context's sequence numbers may be issued on the
// communicator.

// IAllreduce posts a split-phase allreduce: reduce to rank 0, then
// broadcast the result, both application-bypass. recvbuf receives the
// combined result on every rank once Wait returns.
func (e *Engine) IAllreduce(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op) *Request {
	pr := e.pr
	if c.Proc() != pr {
		panic("core: communicator belongs to a different process")
	}
	n := count * dt.Size()
	if len(recvbuf) < n {
		panic(fmt.Sprintf("core: allreduce recvbuf %d bytes < %d", len(recvbuf), n))
	}
	outer := &Request{e: e}

	if c.Rank() == 0 {
		red := e.IReduce(c, sendbuf, recvbuf, count, dt, op, 0)
		red.setOnDone(func() {
			// The reduced result is in recvbuf; release it down the
			// tree. The root's IBcast completes as soon as its sends
			// are posted.
			bc := e.IBcast(c, recvbuf[:n], count, dt, 0)
			bc.setOnDone(outer.complete)
		})
		return outer
	}

	// Non-root: contribute upward and independently await the release.
	red := e.IReduce(c, sendbuf, recvbuf, count, dt, op, 0)
	bc := e.IBcast(c, recvbuf[:n], count, dt, 0)
	remaining := 2
	arm := func() {
		remaining--
		if remaining == 0 {
			outer.complete()
		}
	}
	red.setOnDone(arm)
	bc.setOnDone(arm)
	return outer
}

// IBarrier posts a split-phase barrier: it returns immediately; Wait
// (or Done) reports once every rank has entered. Implemented as a
// split-phase allreduce of one token byte.
func (e *Engine) IBarrier(c *mpi.Comm) *Request {
	scratch := make([]byte, 1) // per-instance: barriers may overlap
	return e.IAllreduce(c, []byte{1}, scratch, 1, mpi.Byte, mpi.OpBOr)
}
