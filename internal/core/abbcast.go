package core

import (
	"fmt"

	"abred/internal/coll"
	"abred/internal/gm"
	"abred/internal/mpi"
)

// Application-bypass broadcast, after the authors' companion work
// (ref [8], "Application-Bypass Broadcast in MPICH over GM"). The win is
// the mirror image of reduction: a *late* internal node normally stalls
// its whole subtree, because the payload waits in its NIC until it calls
// MPI_Bcast and forwards. With bypass, arrival triggers forwarding to
// the node's children immediately — the subtree proceeds even though the
// local process has not reached the Bcast call yet.

// bcastKey identifies one broadcast instance.
type bcastKey struct {
	ctx uint16
	seq uint64
}

// bcastInstance is a locally posted broadcast awaiting its payload.
type bcastInstance struct {
	buf  []byte
	n    int
	done bool
	req  *Request
}

// bcastState tracks forwarding duty and early payloads.
type bcastState struct {
	// active turns on with the first Bcast call and keeps NIC signals
	// enabled so forwarding fires asynchronously from then on. (The
	// very first broadcast on a cold process cannot be forwarded early;
	// every later one can.)
	active  bool
	pending map[bcastKey]*bcastInstance
	arrived map[bcastKey][]byte
}

// hookBcast handles a collective broadcast packet inside the progress
// engine: forward down the tree first, then deliver locally.
func (e *Engine) hookBcast(pkt *gm.Packet) bool {
	pr := e.pr
	rank, size := pr.Rank(), pr.Size()
	if int(pkt.Root) == rank {
		return false // a root never receives its own broadcast
	}

	// Forward to this node's subtree children immediately.
	coll.EachChild(rank, int(pkt.Root), size, func(child int) {
		pr.Isend(mpi.SendArgs{
			Dst: child, Ctx: pkt.Ctx, Tag: pkt.Tag, Data: pkt.Data,
			Collective: true, Root: pkt.Root, Seq: pkt.Seq,
		})
		e.Metrics.BcastForwards++
	})

	key := bcastKey{ctx: pkt.Ctx, seq: pkt.Seq}
	if inst, ok := e.bcast.pending[key]; ok {
		// Local call already posted: copy straight to the user buffer.
		delete(e.bcast.pending, key)
		pr.P.Spin(pr.CM.HostCopy(len(pkt.Data)))
		pr.Stats.HostCopies++
		pr.Stats.HostCopiedBytes += uint64(len(pkt.Data))
		copy(inst.buf, pkt.Data)
		inst.done = true
		if inst.req != nil {
			inst.req.complete()
		}
		return true
	}

	// Early payload: buffer until the local Bcast call (one copy now,
	// one into the user buffer later — same as a default unexpected
	// message, but the subtree is already unblocked).
	pr.P.Spin(pr.CM.HostCopy(len(pkt.Data)))
	pr.Stats.HostCopies++
	pr.Stats.HostCopiedBytes += uint64(len(pkt.Data))
	e.Metrics.ABCopies++
	e.bcast.arrived[key] = append([]byte(nil), pkt.Data...)
	return true
}

// Bcast is the blocking application-bypass broadcast.
func (e *Engine) Bcast(c *mpi.Comm, buf []byte, count int, dt mpi.Datatype, root int) {
	if req := e.ibcast(c, buf, count, dt, root); req != nil {
		req.Wait()
	}
}

// IBcast is the split-phase form: it returns immediately; Wait blocks
// until the local payload has landed. Root requests complete at once.
func (e *Engine) IBcast(c *mpi.Comm, buf []byte, count int, dt mpi.Datatype, root int) *Request {
	req := e.ibcast(c, buf, count, dt, root)
	if req == nil {
		req = &Request{e: e, done: true}
	}
	return req
}

// ibcast starts a broadcast; a nil return means it already completed.
func (e *Engine) ibcast(c *mpi.Comm, buf []byte, count int, dt mpi.Datatype, root int) *Request {
	pr := e.pr
	if c.Proc() != pr {
		panic("core: communicator belongs to a different process")
	}
	n := count * dt.Size()
	if len(buf) < n {
		panic(fmt.Sprintf("core: bcast buffer %d bytes < %d", len(buf), n))
	}
	seq := c.NextSeq(mpi.CtxBcast)

	if n > pr.CM.C.EagerThreshold {
		// Beyond the eager limit: default broadcast (same rule as §V-B).
		e.Metrics.SizeFallbacks++
		coll.BcastWithSeq(c, seq, buf, count, dt, root, false)
		return nil
	}
	if !c.IsWorld() {
		// hookBcast forwards along the *world* tree, which is wrong for a
		// subset of ranks. Sub-communicators take the default binomial
		// broadcast; Collective stays false so the hook never sees it.
		coll.BcastWithSeq(c, seq, buf, count, dt, root, false)
		return nil
	}

	e.bcast.active = true
	e.updateSignals()

	ctx := c.Ctx(mpi.CtxBcast)
	rank, size := c.Rank(), c.Size()
	if rank == root {
		coll.EachChild(rank, root, size, func(child int) {
			pr.Isend(mpi.SendArgs{
				Dst: child, Ctx: ctx, Tag: seqTag(seq), Data: buf[:n],
				Collective: true, Root: int32(root), Seq: seq,
			})
		})
		return nil
	}

	key := bcastKey{ctx: ctx, seq: seq}
	if data, ok := e.bcast.arrived[key]; ok {
		// The payload beat us here and the subtree is already served:
		// just take our copy.
		delete(e.bcast.arrived, key)
		pr.P.Spin(pr.CM.HostCopy(len(data)))
		pr.Stats.HostCopies++
		pr.Stats.HostCopiedBytes += uint64(len(data))
		copy(buf, data)
		return nil
	}

	req := &Request{e: e}
	e.bcast.pending[key] = &bcastInstance{buf: buf[:n], n: n, req: req}
	return req
}

// bcastPendingLen reports posted-but-unarrived broadcasts (tests).
func (e *Engine) bcastPendingLen() int { return len(e.bcast.pending) }

// bcastArrivedLen reports early broadcast payloads (tests).
func (e *Engine) bcastArrivedLen() int { return len(e.bcast.arrived) }
