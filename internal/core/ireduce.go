package core

import (
	"abred/internal/coll"
	"abred/internal/mpi"
)

// Request is the completion handle of a split-phase collective.
type Request struct {
	e    *Engine
	done bool
	// onDone, if set, runs exactly once when the operation completes —
	// possibly in asynchronous (signal-handler) context. The split-phase
	// synchronizing collectives use it to chain phases (§II: barrier and
	// allreduce "could even benefit ... if they are implemented in a
	// split-phase manner").
	onDone func()
}

// complete marks the request done and fires the chained continuation.
func (r *Request) complete() {
	if r.done {
		return
	}
	r.done = true
	if r.onDone != nil {
		fn := r.onDone
		r.onDone = nil
		fn()
	}
}

// setOnDone installs a continuation, running it immediately if the
// request already completed.
func (r *Request) setOnDone(fn func()) {
	if r.done {
		fn()
		return
	}
	r.onDone = fn
}

// Done reports whether the operation has completed locally.
func (r *Request) Done() bool { return r.done }

// Wait drives progress until the operation completes locally. The time
// spent blocked burns CPU, like any MPICH polling wait; the point of the
// split-phase form is to place Wait after useful computation.
func (r *Request) Wait() {
	r.e.pr.ProgressUntil(func() bool { return r.done })
}

// WaitAll completes several requests.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// IReduce is the split-phase application-bypass reduction the paper
// sketches in §II: because the caller gets a Request instead of blocking
// semantics, the *root* can also run in bypass mode — its descriptor
// carries no parent and completion deposits the result into recvbuf.
// Every rank must eventually Wait (or poll Done) on the returned
// request; at the root that marks result availability, elsewhere it
// marks when this process's obligations (including forwarding to the
// parent) are discharged.
func (e *Engine) IReduce(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op, root int) *Request {
	pr := e.pr
	if c.Proc() != pr {
		panic("core: communicator belongs to a different process")
	}
	n := count * dt.Size()
	seq := c.NextSeq(mpi.CtxIReduce)

	if n > pr.CM.C.EagerThreshold {
		e.Metrics.SizeFallbacks++
		coll.ReduceOnKind(c, mpi.CtxIReduce, seq, sendbuf, recvbuf, count, dt, op, root, false)
		return &Request{e: e, done: true}
	}

	rank, size := c.Rank(), c.Size()

	if coll.ChildCount(rank, root, size) == 0 {
		if rank == root { // single-rank communicator
			copy(recvbuf[:n], sendbuf[:n])
			return &Request{e: e, done: true}
		}
		e.Metrics.LeafReductions++
		parent := coll.Parent(rank, root, size)
		pr.Send(mpi.SendArgs{
			Dst: c.World(parent), Ctx: c.Ctx(mpi.CtxIReduce), Tag: seqTag(seq), Data: sendbuf[:n],
			Collective: true, Root: int32(c.World(root)), Seq: seq,
		})
		return &Request{e: e, done: true}
	}

	if rank == root {
		e.Metrics.RootReductions++
	} else {
		e.Metrics.ABReductions++
	}
	req := &Request{e: e}
	d := e.beginInternal(c, mpi.CtxIReduce, seq, sendbuf, count, dt, op, root, req, recvbuf)
	// Split-phase: one progress pass, no lingering — asynchrony is the
	// whole point here.
	e.inSync++
	pr.ProgressPoll()
	e.inSync--
	e.updateSignals()
	_ = d
	return req
}

// Allreduce combines application-bypass reduction to rank 0 with the
// default binomial broadcast of the result. Allreduce is inherently
// synchronizing — every rank needs the result — so per §II only a
// split-phase usage can profit from bypass; the AB reduction still
// removes the internal ranks' polling waste on the way up, while the
// default broadcast avoids keeping NIC signals permanently enabled.
func (e *Engine) Allreduce(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op) {
	n := count * dt.Size()
	e.Reduce(c, sendbuf, recvbuf, count, dt, op, 0)
	coll.Bcast(c, recvbuf[:n], count, dt, 0)
}
