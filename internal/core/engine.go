// Package core implements the paper's contribution: application-bypass
// collective operations. An Engine attaches to an MPI process and adds
//
//   - the descriptor queue holding intermediate reduction state (§V-A),
//   - a dedicated application-bypass unexpected queue (§V-A),
//   - the synchronous reduction component running inside Reduce (Fig. 3),
//   - the asynchronous component driven by NIC signals (Fig. 5), hooked
//     into the MPI progress engine ahead of default matching (Fig. 4),
//   - the §IV-E exit-delay heuristic, and
//   - the paper's stated extensions: split-phase reduction (§II),
//     application-bypass broadcast (ref [8]) and NIC-based reduction
//     (§VII, refs [9–11]).
package core

import (
	"fmt"

	"abred/internal/coll"
	"abred/internal/gm"
	"abred/internal/mpi"
	"abred/internal/sim"
)

// Metrics counts application-bypass activity on one process.
type Metrics struct {
	ABReductions       uint64 // internal-node reductions run in AB mode
	RootReductions     uint64 // instances where this process was root
	LeafReductions     uint64 // instances where this process was a leaf
	SizeFallbacks      uint64 // instances beyond the eager limit (§V-B)
	SyncChildren       uint64 // children processed inside Reduce
	AsyncChildren      uint64 // children processed by the async handler
	EarlyMessages      uint64 // consumed from the AB unexpected queue
	ABUnexpected       uint64 // placed into the AB unexpected queue
	SignalsHandled     uint64
	SignalsIgnored     uint64
	ABCopies           uint64 // host copies on the AB path (the 1-copy case)
	ZeroCopyChildren   uint64 // children combined straight from the packet
	DescQueuePeak      int
	BcastForwards      uint64 // subtrees unblocked before the local call
	DelayHits          uint64 // children caught by the §IV-E exit delay
	DelayExpirations   uint64 // exit delays that elapsed without a message
	RendezvousChildren uint64 // large children streamed via rendezvous AB
	CompletedInstances uint64
	NICReductions      uint64 // instances run on the NIC plane (extension)
	NICCombines        uint64 // combines performed by NIC firmware
}

// Engine is the application-bypass machinery of one process.
type Engine struct {
	pr *mpi.Process

	descQ []*descriptor
	ubq   []*abMsg

	// descFree recycles completed descriptors with their acc and pending
	// backing arrays, so a steady-state internal-node reduction allocates
	// nothing. Descriptors whose result went up by rendezvous are not
	// recycled: the in-flight data packet aliases their acc.
	descFree []*descriptor

	// inSync is nonzero while the synchronous component of Reduce is
	// driving progress; it attributes hook work to the right phase.
	inSync int

	// rendezvousAB enables application-bypass for rendezvous-sized
	// messages (§V-B future work); off by default, as in the paper.
	rendezvousAB bool

	// tree, when set, replaces the flat binomial shape of Reduce with a
	// topology-aware one (coll.TopoTree); it applies only to instances
	// whose root and size match the tree's, and every rank of the
	// communicator must install the same tree.
	tree *coll.TopoTree

	delay DelayPolicy

	bcast bcastState

	// traceFn, when set, receives activity spans ('R' = inside Reduce,
	// 'A' = async handler) for timeline visualization.
	traceFn func(kind byte, start, end sim.Time)

	// sigFn is the bound onSignal method, captured once: creating the
	// method value inside the signal handler would allocate a closure
	// per raised signal.
	sigFn func()

	Metrics Metrics
}

// SetTrace installs a span callback for timeline visualization; nil
// removes it.
func (e *Engine) SetTrace(fn func(kind byte, start, end sim.Time)) { e.traceFn = fn }

// trace emits one span if tracing is on.
func (e *Engine) trace(kind byte, start, end sim.Time) {
	if e.traceFn != nil {
		e.traceFn(kind, start, end)
	}
}

// NewEngine attaches application-bypass support to pr: it installs the
// Fig. 4 pre-processing hook on the progress engine and wires the NIC's
// signal line to an interrupt handler on the host process.
func NewEngine(pr *mpi.Process) *Engine {
	e := &Engine{pr: pr, delay: NoDelay{}}
	e.bcast.pending = make(map[bcastKey]*bcastInstance)
	e.bcast.arrived = make(map[bcastKey][]byte)
	pr.SetABHook(e.hook)
	e.sigFn = e.onSignal
	pr.NIC().SetSignalHandler(func() {
		// Runs in NIC context: queue the handler on the host process.
		pr.P.Interrupt(e.sigFn)
	})
	e.installNICFirmware()
	return e
}

// Reset returns the engine to its NewEngine state for a cluster reuse
// run: queues, metrics and broadcast state clear (keeping capacity), the
// default delay policy restored, and the hook/signal/firmware wiring
// re-installed on the freshly reset process and NIC. The descriptor
// pool survives the reset — pool hits never touch virtual time. Neither
// NewEngine nor Reset charges virtual time, so a reused engine is
// byte-identical to a fresh one.
func (e *Engine) Reset() {
	for i := range e.descQ {
		e.descQ[i] = nil
	}
	e.descQ = e.descQ[:0]
	for i := range e.ubq {
		e.ubq[i] = nil
	}
	e.ubq = e.ubq[:0]
	e.inSync = 0
	e.rendezvousAB = false
	e.tree = nil
	e.delay = NoDelay{}
	e.bcast.active = false
	clear(e.bcast.pending)
	clear(e.bcast.arrived)
	e.traceFn = nil
	e.Metrics = Metrics{}
	pr := e.pr
	pr.SetABHook(e.hook)
	pr.NIC().SetSignalHandler(func() {
		pr.P.Interrupt(e.sigFn)
	})
	e.installNICFirmware()
}

// Process returns the MPI process the engine drives.
func (e *Engine) Process() *mpi.Process { return e.pr }

// SetDelayPolicy installs the §IV-E exit-delay heuristic.
func (e *Engine) SetDelayPolicy(p DelayPolicy) {
	if p == nil {
		p = NoDelay{}
	}
	e.delay = p
}

// SetTopoTree installs a topology-aware reduction tree (nil restores
// the flat binomial shape). Reductions whose root and size match the
// tree's use its parent/child relation on the blocking contexts —
// every rank of the communicator must install the same tree, exactly
// as every rank must agree on root and size.
func (e *Engine) SetTopoTree(t *coll.TopoTree) { e.tree = t }

// treeFor returns the installed topology-aware tree if it applies to a
// (root, size) reduction instance, nil otherwise.
func (e *Engine) treeFor(root, size int) *coll.TopoTree {
	if t := e.tree; t != nil && t.Root() == root && t.Size() == size {
		return t
	}
	return nil
}

// abMsg is an entry in the engine's own unexpected queue: a collective
// payload that matched no descriptor. Unlike the MPICH unexpected queue
// it is consumed in place, so these messages cost one copy instead of
// two (§V-A).
type abMsg struct {
	ctx     uint16
	srcRank int32
	seq     uint64
	root    int32
	data    []byte
	rts     *gm.Packet // rendezvous-mode AB: a queued large-child RTS
	at      sim.Time
}

// onSignal is the host-side signal handler. It runs on the application
// process at its next interruptible point — exactly like a Unix signal
// interrupting a compute loop — and triggers communication progress
// (Fig. 4, "AB message triggers progress").
func (e *Engine) onSignal() {
	nic := e.pr.NIC()
	if !nic.ConsumePendingSignal() {
		// The progress engine beat us to the packet and already paid
		// the trap cost; this queued delivery is stale.
		return
	}
	if !nic.HasPackets() {
		// Progress already consumed the packet (§V-C: ignored).
		e.pr.P.Spin(e.pr.CM.SignalIgnoredOvh())
		e.pr.Stats.SignalsIgnored++
		e.Metrics.SignalsIgnored++
		return
	}
	t0 := e.pr.P.Now()
	e.pr.P.Spin(e.pr.CM.SignalOvh())
	e.pr.Stats.SignalsRun++
	e.Metrics.SignalsHandled++
	e.pr.ProgressPoll()
	e.trace('A', t0, e.pr.P.Now())
}

// EnableRendezvousAB turns on the §V-B rendezvous-mode extension:
// reductions beyond the eager limit run in bypass mode too, with late
// children streamed by RTS/CTS/Data handshakes that stay on the
// signal-raising packet types. The paper left this unexplored ("due to
// the additional complexities involved in buffer management"); the
// default therefore remains the paper's fallback behaviour.
func (e *Engine) EnableRendezvousAB() { e.rendezvousAB = true }

// hook is the application-bypass pre-processing step the paper splices
// into the MPICH progress engine (Fig. 4 gray boxes, Fig. 5 logic). It
// sees every collective-typed packet before default matching. Returning
// true consumes the packet.
func (e *Engine) hook(pkt *gm.Packet) bool {
	if pkt.Type == gm.CollectiveRTS {
		return e.hookLargeReduce(pkt)
	}
	if mpi.KindOfCtx(pkt.Ctx) == mpi.CtxBcast {
		return e.hookBcast(pkt)
	}

	// Descriptor match: an outstanding reduction waiting on this
	// sender in this context (FIFO per sender — GM delivers in order).
	e.pr.P.Spin(e.pr.CM.QueueSearch(len(e.descQ)))
	for _, d := range e.descQ {
		if d.ctx != pkt.Ctx || !d.waitingOn(int(pkt.SrcRank)) {
			continue
		}
		if d.seq != pkt.Seq {
			panic(fmt.Sprintf("core: FIFO violation: packet seq %d from %d, descriptor seq %d",
				pkt.Seq, pkt.SrcRank, d.seq))
		}
		// Expected or late message: combined straight from the packet
		// buffer — zero host copies (§V-C).
		e.Metrics.ZeroCopyChildren++
		if e.inSync > 0 {
			e.Metrics.SyncChildren++
		} else {
			e.Metrics.AsyncChildren++
		}
		e.processChild(d, int(pkt.SrcRank), pkt.Data)
		return true
	}

	if int(pkt.Root) == e.pr.Rank() && mpi.KindOfCtx(pkt.Ctx) != mpi.CtxIReduce {
		// Blocking reduction: the root's behaviour is necessarily
		// synchronous; leave the packet to the default point-to-point
		// path (Fig. 4). Split-phase roots instead use descriptors, so
		// their early packets fall through to the AB unexpected queue
		// below and are drained when the root posts its IReduce.
		return false
	}

	// Truly unexpected: one copy into the AB unexpected queue (§V-A).
	e.pr.P.Spin(e.pr.CM.HostCopy(len(pkt.Data)))
	e.pr.Stats.HostCopies++
	e.pr.Stats.HostCopiedBytes += uint64(len(pkt.Data))
	e.Metrics.ABCopies++
	e.Metrics.ABUnexpected++
	e.ubq = append(e.ubq, &abMsg{
		ctx:     pkt.Ctx,
		srcRank: pkt.SrcRank,
		seq:     pkt.Seq,
		root:    pkt.Root,
		data:    append([]byte(nil), pkt.Data...),
		at:      e.pr.P.Now(),
	})
	return true
}

// hookLargeReduce handles a rendezvous-sized collective announcement:
// the Fig. 5 logic with the child's payload streamed rather than
// carried in the packet.
func (e *Engine) hookLargeReduce(pkt *gm.Packet) bool {
	e.pr.P.Spin(e.pr.CM.QueueSearch(len(e.descQ)))
	for _, d := range e.descQ {
		if d.ctx != pkt.Ctx || !d.waitingOn(int(pkt.SrcRank)) {
			continue
		}
		if d.seq != pkt.Seq {
			panic(fmt.Sprintf("core: FIFO violation: RTS seq %d from %d, descriptor seq %d",
				pkt.Seq, pkt.SrcRank, d.seq))
		}
		e.acceptLargeChild(d, pkt)
		return true
	}
	if int(pkt.Root) == e.pr.Rank() && mpi.KindOfCtx(pkt.Ctx) != mpi.CtxIReduce {
		return false // blocking root: default rendezvous path
	}
	// Early large child: queue the announcement (no payload to copy).
	e.Metrics.ABUnexpected++
	e.ubq = append(e.ubq, &abMsg{
		ctx:     pkt.Ctx,
		srcRank: pkt.SrcRank,
		seq:     pkt.Seq,
		root:    pkt.Root,
		rts:     pkt,
		at:      e.pr.P.Now(),
	})
	return true
}

// acceptLargeChild pins a landing buffer for a rendezvous child and
// chains its completion into the descriptor: when the payload arrives
// it is combined straight from the pinned buffer — zero extra copies,
// in whatever context progress happens to be running.
func (e *Engine) acceptLargeChild(d *descriptor, rts *gm.Packet) {
	child := int(rts.SrcRank)
	tmp := make([]byte, rts.TotalLen)
	e.Metrics.RendezvousChildren++
	e.pr.RegisterRendezvous(rts, tmp, func() {
		if e.inSync > 0 {
			e.Metrics.SyncChildren++
		} else {
			e.Metrics.AsyncChildren++
		}
		e.Metrics.ZeroCopyChildren++
		e.processChild(d, child, tmp)
	})
}

// updateSignals applies the paper's enable/disable discipline: signals
// are on exactly while asynchronous work may arrive (outstanding
// descriptors, broadcast forwarding duty, or a collective rendezvous
// handshake in flight).
func (e *Engine) updateSignals() {
	if len(e.descQ) > 0 || e.bcast.active || e.pr.PendingCollectiveSends() > 0 {
		e.pr.NIC().EnableSignals()
	} else {
		e.pr.NIC().DisableSignals()
	}
}

// UBQLen reports the AB unexpected queue depth (tests and tracing).
func (e *Engine) UBQLen() int { return len(e.ubq) }

// OutstandingDescriptors reports the descriptor queue depth.
func (e *Engine) OutstandingDescriptors() int { return len(e.descQ) }
