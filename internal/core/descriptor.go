package core

import (
	"fmt"

	"abred/internal/mpi"
	"abred/internal/sim"
)

// descriptor holds the intermediate state of one in-flight reduction
// (§V-A): the running result, the identity of the parent the final
// result goes to, and the list of children with receives still pending.
// The child list doubles as the key for matching late messages to the
// right reduction instance (§IV-D).
type descriptor struct {
	ctx  uint16
	seq  uint64
	tag  int32
	root int

	parent  int // -1 for a split-phase root descriptor
	pending []int

	acc   []byte
	count int
	dt    mpi.Datatype
	op    mpi.Op

	recvbuf   []byte   // result destination; split-phase root only
	req       *Request // completion handle; split-phase only
	completed bool
	created   sim.Time
}

// maxDescPool caps the recycled-descriptor list; the descriptor queue
// stays shallow (DescQueuePeak is single digits in every workload), so
// the pool does too.
const maxDescPool = 32

// getDesc returns a descriptor from the pool, keeping the recycled acc
// and pending backing arrays; beginInternal overwrites every field.
func (e *Engine) getDesc() *descriptor {
	if l := len(e.descFree); l > 0 {
		d := e.descFree[l-1]
		e.descFree[l-1] = nil
		e.descFree = e.descFree[:l-1]
		return d
	}
	return &descriptor{}
}

// putDesc recycles a completed descriptor. The struct is deliberately
// not zeroed: syncPhase and drainUBQ still read d.completed after the
// instance finished, and it stays true until the next getDesc hands the
// memory to a new instance — which can only happen in a later
// beginInternal, strictly after those readers are done with it.
func (e *Engine) putDesc(d *descriptor) {
	d.req = nil
	d.recvbuf = nil
	if len(e.descFree) < maxDescPool {
		e.descFree = append(e.descFree, d)
	}
}

// waitingOn reports whether child has not been processed yet.
func (d *descriptor) waitingOn(child int) bool {
	for _, c := range d.pending {
		if c == child {
			return true
		}
	}
	return false
}

// removePending marks child processed.
func (d *descriptor) removePending(child int) {
	for i, c := range d.pending {
		if c == child {
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("core: child %d not pending on descriptor seq=%d", child, d.seq))
}

// processChild folds one child's contribution into the descriptor and,
// when it was the last, completes the instance: send the result to the
// parent (or finish the split-phase root) and dequeue the descriptor
// (Figs. 3 and 5 shared tail).
func (e *Engine) processChild(d *descriptor, child int, data []byte) {
	pr := e.pr
	pr.P.Spin(pr.CM.ReduceOp(d.count, d.dt.Size()))
	mpi.Apply(d.op, d.dt, d.acc, data, d.count)
	d.removePending(child)
	if len(d.pending) > 0 {
		return
	}

	d.completed = true
	recycle := true
	if d.parent >= 0 {
		sreq := pr.Isend(mpi.SendArgs{
			Dst: d.parent, Ctx: d.ctx, Tag: d.tag, Data: d.acc,
			Collective: true, Root: int32(d.root), Seq: d.seq,
		})
		if !sreq.Done() {
			// Rendezvous upward send: keep signals armed until the
			// clear-to-send handshake finishes. The data packet aliases
			// d.acc until delivery, so this descriptor is not recycled.
			recycle = false
			sreq.SetOnComplete(func() { e.updateSignals() })
		}
	} else {
		copy(d.recvbuf, d.acc)
	}
	if d.req != nil {
		d.req.complete()
	}
	e.removeDesc(d)
	e.Metrics.CompletedInstances++
	e.updateSignals()
	if recycle {
		e.putDesc(d)
	}
}

// removeDesc drops d from the descriptor queue.
func (e *Engine) removeDesc(d *descriptor) {
	for i, x := range e.descQ {
		if x == d {
			e.descQ = append(e.descQ[:i], e.descQ[i+1:]...)
			return
		}
	}
	panic("core: descriptor not in queue")
}

// pushDesc enqueues a descriptor, charging the bookkeeping cost.
func (e *Engine) pushDesc(d *descriptor) {
	e.pr.P.Spin(e.pr.CM.DescriptorOvh())
	e.descQ = append(e.descQ, d)
	if len(e.descQ) > e.Metrics.DescQueuePeak {
		e.Metrics.DescQueuePeak = len(e.descQ)
	}
}

// drainUBQ consumes every queued early message destined for d. Early
// messages were copied once on arrival and are combined straight from
// the queue entry (§V-B: "processed directly from the queue").
func (e *Engine) drainUBQ(d *descriptor) {
	for i := 0; i < len(e.ubq) && !d.completed; {
		m := e.ubq[i]
		if m.ctx != d.ctx || !d.waitingOn(int(m.srcRank)) {
			i++
			continue
		}
		if m.seq != d.seq {
			panic(fmt.Sprintf("core: FIFO violation in AB unexpected queue: msg seq %d, descriptor seq %d",
				m.seq, d.seq))
		}
		e.pr.P.Spin(e.pr.CM.QueueSearch(i + 1))
		e.ubq = append(e.ubq[:i], e.ubq[i+1:]...)
		e.Metrics.EarlyMessages++
		if m.rts != nil {
			// A queued large-child announcement: start its stream; the
			// combine happens when the payload lands.
			e.acceptLargeChild(d, m.rts)
			continue
		}
		e.Metrics.SyncChildren++
		e.processChild(d, int(m.srcRank), m.data)
	}
}
