package core

import (
	"testing"
	"time"

	"abred/internal/coll"
	"abred/internal/mpi"
	"abred/internal/sim"
)

// TestIAllreduceCorrect: every rank gets the full combination.
func TestIAllreduceCorrect(t *testing.T) {
	for _, size := range []int{2, 3, 8, 16} {
		size := size
		got := make([]float64, size)
		runWorld(size, int64(size), func(r *ctxRank) {
			if r.w.Rank()%2 == 1 {
				r.p.SpinInterruptible(sim.Time(r.w.Rank()) * 60 * time.Microsecond)
			}
			out := make([]byte, 16)
			req := r.e.IAllreduce(r.w, f64s(float64(r.w.Rank()), 1), out, 2, mpi.Float64, mpi.OpSum)
			r.p.SpinInterruptible(2 * time.Millisecond)
			req.Wait()
			got[r.w.Rank()] = mpi.BytesToFloat64s(out)[0]
			if mpi.BytesToFloat64s(out)[1] != float64(size) {
				t.Errorf("size %d rank %d second element = %v", size, r.w.Rank(), mpi.BytesToFloat64s(out)[1])
			}
			coll.Barrier(r.w)
		})
		for rk, v := range got {
			if v != sumTo(size) {
				t.Errorf("size %d rank %d allreduce = %v, want %v", size, rk, v, sumTo(size))
			}
		}
	}
}

// TestIAllreduceOverlapsComputation: with enough computation posted
// after it, IAllreduce completes without any rank blocking in Wait.
func TestIAllreduceOverlapsComputation(t *testing.T) {
	size := 8
	runWorld(size, 31, func(r *ctxRank) {
		out := make([]byte, 8)
		req := r.e.IAllreduce(r.w, f64s(1), out, 1, mpi.Float64, mpi.OpSum)
		r.p.SpinInterruptible(3 * time.Millisecond)
		t0 := r.p.Now()
		req.Wait()
		if waited := r.p.Now() - t0; waited > 5*time.Microsecond {
			t.Errorf("rank %d still waited %v after 3ms of overlap", r.w.Rank(), waited)
		}
		if got := mpi.BytesToFloat64s(out)[0]; got != float64(size) {
			t.Errorf("rank %d result %v", r.w.Rank(), got)
		}
		coll.Barrier(r.w)
	})
}

// TestIBarrierSynchronizes: no rank's IBarrier may complete before the
// last rank posted it.
func TestIBarrierSynchronizes(t *testing.T) {
	size := 8
	posted := make([]sim.Time, size)
	completed := make([]sim.Time, size)
	runWorld(size, 32, func(r *ctxRank) {
		// Heavy stagger in when ranks reach the barrier.
		r.p.SpinInterruptible(sim.Time(r.w.Rank()*r.w.Rank()) * 20 * time.Microsecond)
		posted[r.w.Rank()] = r.p.Now()
		req := r.e.IBarrier(r.w)
		for !req.Done() {
			r.p.SpinInterruptible(10 * time.Microsecond)
		}
		completed[r.w.Rank()] = r.p.Now()
		r.p.SpinInterruptible(time.Millisecond)
		coll.Barrier(r.w)
	})
	lastPost := posted[0]
	for _, p := range posted {
		if p > lastPost {
			lastPost = p
		}
	}
	for rk, c := range completed {
		if c < lastPost {
			t.Errorf("rank %d finished the split-phase barrier at %v, before the last post at %v", rk, c, lastPost)
		}
	}
}

// TestIBarrierOverlap: a rank that keeps computing is never forced to
// block for the barrier.
func TestIBarrierOverlap(t *testing.T) {
	size := 4
	runWorld(size, 33, func(r *ctxRank) {
		if r.w.Rank() == 3 {
			r.p.SpinInterruptible(500 * time.Microsecond) // late entrant
		}
		req := r.e.IBarrier(r.w)
		r.p.SpinInterruptible(2 * time.Millisecond) // overlapped work
		t0 := r.p.Now()
		req.Wait()
		if waited := r.p.Now() - t0; waited > 5*time.Microsecond {
			t.Errorf("rank %d blocked %v in Wait despite overlap", r.w.Rank(), waited)
		}
		coll.Barrier(r.w)
	})
}

// TestBackToBackIAllreduce checks sequence alignment across repeated
// split-phase synchronizing collectives.
func TestBackToBackIAllreduce(t *testing.T) {
	size := 8
	const rounds = 6
	results := make([][]float64, size)
	runWorld(size, 34, func(r *ctxRank) {
		for it := 0; it < rounds; it++ {
			out := make([]byte, 8)
			req := r.e.IAllreduce(r.w, f64s(float64(r.w.Rank()+it)), out, 1, mpi.Float64, mpi.OpSum)
			r.p.SpinInterruptible(1500 * time.Microsecond)
			req.Wait()
			results[r.w.Rank()] = append(results[r.w.Rank()], mpi.BytesToFloat64s(out)[0])
		}
		coll.Barrier(r.w)
	})
	for rk := 0; rk < size; rk++ {
		for it := 0; it < rounds; it++ {
			want := sumTo(size) + float64(it*size)
			if results[rk][it] != want {
				t.Errorf("rank %d round %d = %v, want %v", rk, it, results[rk][it], want)
			}
		}
	}
}
