package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"abred/internal/coll"
	"abred/internal/fabric"
	"abred/internal/gm"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
)

const us = time.Microsecond

// ctxRank bundles what a test rank needs.
type ctxRank struct {
	p *sim.Proc
	w *mpi.Comm
	e *Engine
}

// runWorld spawns n ranks with AB engines and runs fn on each.
func runWorld(n int, seed int64, fn func(r *ctxRank)) []*Engine {
	k := sim.New(seed)
	costs := model.DefaultCosts()
	fab := fabric.New(k, n, costs)
	specs := model.Uniform(n)
	nics := make([]*gm.NIC, n)
	for i := 0; i < n; i++ {
		nics[i] = gm.NewNIC(k, i, model.NewCostModel(specs[i], costs), fab)
	}
	engines := make([]*Engine, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("rank", func(p *sim.Proc) {
			pr := mpi.NewProcess(p, i, n, nics[i], model.NewCostModel(specs[i], costs))
			engines[i] = NewEngine(pr)
			fn(&ctxRank{p: p, w: mpi.World(pr), e: engines[i]})
		})
	}
	k.Run()
	return engines
}

func f64s(vals ...float64) []byte { return mpi.Float64sToBytes(vals) }

func sumTo(size int) float64 { return float64(size*(size-1)) / 2 }

// TestReduceABMatchesReference: for random sizes, roots and skews the
// AB result must equal a sequential fold.
func TestReduceABMatchesReference(t *testing.T) {
	f := func(sizeRaw, rootRaw uint8, seed int64, skews [8]uint16) bool {
		size := int(sizeRaw%31) + 1
		root := int(rootRaw) % size
		count := 2
		var got []float64
		runWorld(size, seed, func(r *ctxRank) {
			skew := sim.Time(skews[r.w.Rank()%len(skews)]%2000) * us
			r.p.SpinInterruptible(skew)
			out := make([]byte, count*8)
			in := f64s(float64(r.w.Rank()), float64(r.w.Rank()*3))
			r.e.Reduce(r.w, in, out, count, mpi.Float64, mpi.OpSum, root)
			r.p.SpinInterruptible(3000 * us)
			coll.Barrier(r.w)
			if r.w.Rank() == root {
				got = mpi.BytesToFloat64s(out)
			}
		})
		return got[0] == sumTo(size) && got[1] == 3*sumTo(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEarlyMessages forces children to arrive before the parent calls
// Reduce (§IV-C): the payloads must be buffered in the engine's own
// unexpected queue and consumed from it.
func TestEarlyMessages(t *testing.T) {
	size := 4 // node 2 is internal with child 3
	engines := runWorld(size, 1, func(r *ctxRank) {
		out := make([]byte, 8)
		switch r.w.Rank() {
		case 1:
			// Unrelated traffic that makes node 2 run progress while
			// node 3's collective packet is already waiting.
			r.p.SpinInterruptible(300 * us)
			r.w.Send(2, 42, []byte{1})
		case 2:
			r.p.SpinInterruptible(200 * us)
			r.w.Recv(1, 42, make([]byte, 1)) // progress buffers child 3's packet
			if r.e.UBQLen() == 0 {
				t.Error("child 3's early packet did not land in the AB unexpected queue")
			}
			r.p.SpinInterruptible(200 * us)
		}
		r.e.Reduce(r.w, f64s(float64(r.w.Rank())), out, 1, mpi.Float64, mpi.OpSum, 0)
		r.p.SpinInterruptible(1000 * us)
		coll.Barrier(r.w)
		if r.w.Rank() == 0 && mpi.BytesToFloat64s(out)[0] != 6 {
			t.Errorf("root got %v, want 6", mpi.BytesToFloat64s(out))
		}
	})
	m := engines[2].Metrics
	if m.EarlyMessages == 0 {
		t.Errorf("node 2 consumed no early messages: %+v", m)
	}
	if m.ABUnexpected == 0 {
		t.Errorf("node 2 queued no AB-unexpected messages: %+v", m)
	}
	if m.ABCopies != m.ABUnexpected {
		t.Errorf("early messages must cost exactly one copy each: copies=%d queued=%d", m.ABCopies, m.ABUnexpected)
	}
}

// TestLateMessagesProcessedAsync: a late child's contribution must be
// handled by the asynchronous component without the parent re-entering
// MPI (§IV-D).
func TestLateMessagesProcessedAsync(t *testing.T) {
	size := 4
	engines := runWorld(size, 2, func(r *ctxRank) {
		if r.w.Rank() == 3 {
			r.p.SpinInterruptible(400 * us)
		}
		out := make([]byte, 8)
		r.e.Reduce(r.w, f64s(1), out, 1, mpi.Float64, mpi.OpSum, 0)
		// Compute only — the async handler must do the rest.
		r.p.SpinInterruptible(2000 * us)
		coll.Barrier(r.w)
	})
	m := engines[2].Metrics
	if m.AsyncChildren == 0 || m.SignalsHandled == 0 {
		t.Errorf("node 2 should have processed its late child asynchronously: %+v", m)
	}
	if m.ZeroCopyChildren != m.SyncChildren+m.AsyncChildren {
		t.Errorf("expected/late children must be zero-copy: %+v", m)
	}
}

// TestCopySavings verifies the paper's §V-B/§V-C claims: expected and
// late AB messages cost zero host copies (100% saving vs the default's
// one), unexpected AB messages cost one (50% saving vs two).
func TestCopySavings(t *testing.T) {
	size := 8
	run := func(ab bool) uint64 {
		var copies uint64
		runWorld(size, 3, func(r *ctxRank) {
			if r.w.Rank()%3 == 1 {
				r.p.SpinInterruptible(sim.Time(r.w.Rank()) * 100 * us)
			}
			out := make([]byte, 32)
			in := f64s(1, 2, 3, 4)
			for i := 0; i < 10; i++ {
				if ab {
					r.e.Reduce(r.w, in, out, 4, mpi.Float64, mpi.OpSum, 0)
				} else {
					coll.Reduce(r.w, in, out, 4, mpi.Float64, mpi.OpSum, 0)
				}
			}
			r.p.SpinInterruptible(3000 * us)
			coll.Barrier(r.w)
			if r.w.Rank() == 2 { // internal node with a subtree
				copies = r.w.Proc().Stats.HostCopies
			}
		})
		return copies
	}
	nab := run(false)
	ab := run(true)
	if ab >= nab {
		t.Errorf("AB path must perform fewer host copies: ab=%d nab=%d", ab, nab)
	}
}

// TestBackToBackDescriptorMatching reproduces §IV-D's scenario: process
// six consistently late, several reductions outstanding, and each late
// message must land in the right instance.
func TestBackToBackDescriptorMatching(t *testing.T) {
	size := 8
	const rounds = 10
	roots := make([][]float64, rounds)
	engines := runWorld(size, 4, func(r *ctxRank) {
		out := make([]byte, 8)
		for iter := 0; iter < rounds; iter++ {
			if r.w.Rank() == 6 {
				r.p.SpinInterruptible(300 * us)
			}
			r.e.Reduce(r.w, f64s(float64(r.w.Rank()*(iter+1))), out, 1, mpi.Float64, mpi.OpSum, 0)
			if r.w.Rank() == 0 {
				roots[iter] = mpi.BytesToFloat64s(out)
			}
		}
		r.p.SpinInterruptible(5000 * us)
		coll.Barrier(r.w)
	})
	for iter := 0; iter < rounds; iter++ {
		want := sumTo(size) * float64(iter+1)
		if roots[iter][0] != want {
			t.Errorf("round %d: root got %v, want %v", iter, roots[iter][0], want)
		}
	}
	if peak := engines[4].Metrics.DescQueuePeak; peak < 2 {
		t.Errorf("node 4 (parent of 6) should have held overlapping descriptors, peak=%d", peak)
	}
}

// TestSignalDiscipline: signals enabled iff descriptors outstanding.
func TestSignalDiscipline(t *testing.T) {
	size := 4
	runWorld(size, 5, func(r *ctxRank) {
		nic := r.w.Proc().NIC()
		if nic.SignalsEnabled() {
			t.Errorf("rank %d: signals enabled before any reduction", r.w.Rank())
		}
		if r.w.Rank() == 3 {
			r.p.SpinInterruptible(400 * us)
		}
		out := make([]byte, 8)
		r.e.Reduce(r.w, f64s(1), out, 1, mpi.Float64, mpi.OpSum, 0)
		if r.w.Rank() == 2 && r.e.OutstandingDescriptors() > 0 && !nic.SignalsEnabled() {
			t.Error("rank 2 exited Reduce with pending children but signals disabled")
		}
		r.p.SpinInterruptible(2000 * us)
		coll.Barrier(r.w)
		if nic.SignalsEnabled() {
			t.Errorf("rank %d: signals still enabled after quiescence", r.w.Rank())
		}
	})
}

// TestExitDelayCatchesStragglers: with the §IV-E heuristic, a slightly
// late child completes inside MPI_Reduce and no signal fires.
func TestExitDelayCatchesStragglers(t *testing.T) {
	size := 4
	run := func(delay DelayPolicy) Metrics {
		engines := runWorld(size, 6, func(r *ctxRank) {
			r.e.SetDelayPolicy(delay)
			if r.w.Rank() == 3 {
				r.p.SpinInterruptible(20 * us) // barely late
			}
			out := make([]byte, 8)
			r.e.Reduce(r.w, f64s(1), out, 1, mpi.Float64, mpi.OpSum, 0)
			r.p.SpinInterruptible(1000 * us)
			coll.Barrier(r.w)
		})
		return engines[2].Metrics
	}
	noDelay := run(NoDelay{})
	withDelay := run(FixedDelay{D: 80 * us})
	if withDelay.SignalsHandled >= noDelay.SignalsHandled && noDelay.SignalsHandled > 0 {
		t.Errorf("delay should reduce signals: with=%d without=%d",
			withDelay.SignalsHandled, noDelay.SignalsHandled)
	}
	if withDelay.SyncChildren == 0 {
		t.Errorf("delay should catch the straggler synchronously: %+v", withDelay)
	}
}

// TestProcCountDelayPolicy checks the paper's process-count heuristic.
func TestProcCountDelayPolicy(t *testing.T) {
	p := ProcCountDelay{Base: 2 * us, PerProc: 1 * us, Max: 10 * us}
	if d := p.Delay(4, 1); d != 6*us {
		t.Errorf("Delay(4) = %v, want 6µs", d)
	}
	if d := p.Delay(100, 1); d != 10*us {
		t.Errorf("Delay(100) = %v, want cap 10µs", d)
	}
	if (NoDelay{}).Delay(32, 128) != 0 {
		t.Error("NoDelay must be zero")
	}
	if (FixedDelay{D: 7 * us}).Delay(1, 1) != 7*us {
		t.Error("FixedDelay wrong")
	}
}

// TestIReduceRootBypass: with the split-phase form the root returns
// immediately and collects the result via Wait (§II).
func TestIReduceRootBypass(t *testing.T) {
	size := 8
	runWorld(size, 7, func(r *ctxRank) {
		if r.w.Rank() != 0 {
			r.p.SpinInterruptible(sim.Time(r.w.Rank()) * 50 * us)
		}
		out := make([]byte, 8)
		t0 := r.p.Now()
		req := r.e.IReduce(r.w, f64s(float64(r.w.Rank())), out, 1, mpi.Float64, mpi.OpSum, 0)
		inCall := r.p.Now() - t0
		if r.w.Rank() == 0 {
			if inCall > 100*us {
				t.Errorf("split-phase root blocked %v in IReduce", inCall)
			}
			// Overlap computation with the whole reduction.
			r.p.SpinInterruptible(1000 * us)
			req.Wait()
			if got := mpi.BytesToFloat64s(out)[0]; got != sumTo(size) {
				t.Errorf("IReduce result = %v, want %v", got, sumTo(size))
			}
		} else {
			r.p.SpinInterruptible(1500 * us)
			req.Wait()
		}
		coll.Barrier(r.w)
	})
}

// TestIReduceManyOutstanding posts a window of split-phase reductions
// before waiting on any — the monitoring pattern of the dotsolver
// example — and checks every instance.
func TestIReduceManyOutstanding(t *testing.T) {
	size := 8
	const window = 12
	var results [window]float64
	runWorld(size, 8, func(r *ctxRank) {
		reqs := make([]*Request, window)
		outs := make([][]byte, window)
		for i := 0; i < window; i++ {
			if r.w.Rank()%2 == 1 {
				r.p.SpinInterruptible(sim.Time(i) * 13 * us)
			}
			outs[i] = make([]byte, 8)
			reqs[i] = r.e.IReduce(r.w, f64s(float64(r.w.Rank()+i)), outs[i], 1, mpi.Float64, mpi.OpSum, 0)
		}
		for i, req := range reqs {
			req.Wait()
			if r.w.Rank() == 0 {
				results[i] = mpi.BytesToFloat64s(outs[i])[0]
			}
		}
		r.p.SpinInterruptible(2000 * us)
		coll.Barrier(r.w)
	})
	for i := 0; i < window; i++ {
		want := sumTo(size) + float64(i*size)
		if results[i] != want {
			t.Errorf("instance %d = %v, want %v", i, results[i], want)
		}
	}
}

// TestBcastABCorrect checks values for every root under skew.
func TestBcastABCorrect(t *testing.T) {
	size := 8
	for root := 0; root < size; root++ {
		root := root
		got := make([][]float64, size)
		runWorld(size, int64(root+10), func(r *ctxRank) {
			if r.w.Rank() == (root+2)%size {
				r.p.SpinInterruptible(300 * us)
			}
			buf := make([]byte, 16)
			if r.w.Rank() == root {
				copy(buf, f64s(3.25, float64(root)))
			}
			r.e.Bcast(r.w, buf, 2, mpi.Float64, root)
			got[r.w.Rank()] = mpi.BytesToFloat64s(buf)
			r.p.SpinInterruptible(1000 * us)
			coll.Barrier(r.w)
		})
		for rk := 0; rk < size; rk++ {
			if got[rk][0] != 3.25 || got[rk][1] != float64(root) {
				t.Fatalf("root %d rank %d got %v", root, rk, got[rk])
			}
		}
	}
}

// TestBcastABForwardsBeforeLocalCall: the whole point of AB broadcast —
// a late internal node's subtree receives the payload while the late
// node is still computing (needs a warm-up broadcast to enable
// signals).
func TestBcastABForwardsBeforeLocalCall(t *testing.T) {
	size := 8 // tree at root 0: node 4 has children 5, 6
	var leafGotAt, lateCalledAt sim.Time
	engines := runWorld(size, 11, func(r *ctxRank) {
		buf := make([]byte, 8)
		// Warm-up broadcast so every engine has signals armed.
		r.e.Bcast(r.w, buf, 1, mpi.Float64, 0)
		coll.Barrier(r.w)

		if r.w.Rank() == 4 {
			r.p.SpinInterruptible(500 * us) // late internal node
		}
		if r.w.Rank() == 0 {
			copy(buf, f64s(9))
		}
		before := r.p.Now()
		r.e.Bcast(r.w, buf, 1, mpi.Float64, 0)
		switch r.w.Rank() {
		case 4:
			lateCalledAt = before
		case 5:
			if mpi.BytesToFloat64s(buf)[0] != 9 {
				t.Error("leaf got wrong payload")
			}
			leafGotAt = r.p.Now()
		}
		r.p.SpinInterruptible(1500 * us)
		coll.Barrier(r.w)
	})
	if leafGotAt >= lateCalledAt {
		t.Errorf("leaf 5 received at %v, after its late parent called Bcast at %v — no bypass happened",
			leafGotAt, lateCalledAt)
	}
	if engines[4].Metrics.BcastForwards == 0 {
		t.Error("late internal node recorded no asynchronous forwards")
	}
}

// TestNICReduceCorrect checks the NIC-based extension across sizes,
// roots and operators.
func TestNICReduceCorrect(t *testing.T) {
	for _, size := range []int{2, 5, 8, 16} {
		for _, root := range []int{0, size - 1} {
			size, root := size, root
			var got float64
			runWorld(size, int64(size*7+root), func(r *ctxRank) {
				if r.w.Rank()%3 == 0 {
					r.p.SpinInterruptible(sim.Time(r.w.Rank()) * 40 * us)
				}
				out := make([]byte, 8)
				r.e.NICReduce(r.w, f64s(float64(r.w.Rank())), out, 1, mpi.Float64, mpi.OpSum, root)
				if r.w.Rank() == root {
					got = mpi.BytesToFloat64s(out)[0]
				}
				r.p.SpinInterruptible(2000 * us)
				coll.Barrier(r.w)
			})
			if got != sumTo(size) {
				t.Errorf("size=%d root=%d: NIC reduce = %v, want %v", size, root, got, sumTo(size))
			}
		}
	}
}

// TestNICReduceBypassesHost: non-root ranks return from NICReduce
// without ever blocking, even with the whole subtree missing.
func TestNICReduceBypassesHost(t *testing.T) {
	size := 8
	engines := runWorld(size, 13, func(r *ctxRank) {
		if r.w.Rank() == 7 {
			r.p.SpinInterruptible(600 * us)
		}
		out := make([]byte, 8)
		t0 := r.p.Now()
		r.e.NICReduce(r.w, f64s(1), out, 1, mpi.Float64, mpi.OpSum, 0)
		inCall := r.p.Now() - t0
		if r.w.Rank() != 0 && inCall > 50*us {
			t.Errorf("rank %d blocked %v in NICReduce", r.w.Rank(), inCall)
		}
		r.p.SpinInterruptible(2000 * us)
		coll.Barrier(r.w)
	})
	if engines[2].Metrics.NICReductions != 1 {
		t.Errorf("NICReductions = %d, want 1", engines[2].Metrics.NICReductions)
	}
}

// TestSizeFallback: messages beyond the eager limit take the default
// path on every rank (§V-B).
func TestSizeFallback(t *testing.T) {
	size := 4
	count := 4096 // 32 KiB
	engines := runWorld(size, 14, func(r *ctxRank) {
		in := make([]byte, count*8)
		out := make([]byte, count*8)
		copy(in, f64s(float64(r.w.Rank()+1)))
		r.e.Reduce(r.w, in, out, count, mpi.Float64, mpi.OpSum, 0)
		if r.w.Rank() == 0 {
			if got := mpi.BytesToFloat64s(out)[0]; got != 10 {
				t.Errorf("fallback reduce wrong: %v", got)
			}
		}
	})
	for i, e := range engines {
		if e.Metrics.SizeFallbacks != 1 {
			t.Errorf("rank %d fallbacks = %d, want 1", i, e.Metrics.SizeFallbacks)
		}
		if e.Metrics.ABReductions != 0 {
			t.Errorf("rank %d ran AB mode on a rendezvous-size message", i)
		}
	}
}

// TestMixedBlockingAndSplitPhase interleaves Reduce and IReduce to
// check that the separate contexts keep instances apart.
func TestMixedBlockingAndSplitPhase(t *testing.T) {
	size := 8
	var blockSum, splitSum float64
	runWorld(size, 15, func(r *ctxRank) {
		if r.w.Rank() == 6 {
			r.p.SpinInterruptible(200 * us)
		}
		out1 := make([]byte, 8)
		out2 := make([]byte, 8)
		req := r.e.IReduce(r.w, f64s(float64(r.w.Rank())), out2, 1, mpi.Float64, mpi.OpSum, 0)
		r.e.Reduce(r.w, f64s(float64(r.w.Rank()*2)), out1, 1, mpi.Float64, mpi.OpSum, 0)
		req.Wait()
		if r.w.Rank() == 0 {
			blockSum = mpi.BytesToFloat64s(out1)[0]
			splitSum = mpi.BytesToFloat64s(out2)[0]
		}
		r.p.SpinInterruptible(2000 * us)
		coll.Barrier(r.w)
	})
	if splitSum != sumTo(size) {
		t.Errorf("split-phase sum = %v, want %v", splitSum, sumTo(size))
	}
	if blockSum != 2*sumTo(size) {
		t.Errorf("blocking sum = %v, want %v", blockSum, 2*sumTo(size))
	}
}

// TestAllreduceAB checks the composed operation on every rank.
func TestAllreduceAB(t *testing.T) {
	size := 9
	got := make([]float64, size)
	runWorld(size, 16, func(r *ctxRank) {
		out := make([]byte, 8)
		r.e.Allreduce(r.w, f64s(float64(r.w.Rank())), out, 1, mpi.Float64, mpi.OpSum)
		got[r.w.Rank()] = mpi.BytesToFloat64s(out)[0]
		r.p.SpinInterruptible(1000 * us)
		coll.Barrier(r.w)
	})
	for rk, v := range got {
		if v != sumTo(size) {
			t.Errorf("rank %d allreduce = %v, want %v", rk, v, sumTo(size))
		}
	}
}

// TestStressRandomSkewManyRounds hammers the engine with random skews
// over many rounds; the FIFO assertions inside the engine double as the
// oracle for instance matching.
func TestStressRandomSkewManyRounds(t *testing.T) {
	size := 16
	const rounds = 40
	var rootVals [rounds]float64
	runWorld(size, 17, func(r *ctxRank) {
		rng := r.p.Kernel().NewRNG()
		out := make([]byte, 16)
		for iter := 0; iter < rounds; iter++ {
			r.p.SpinInterruptible(sim.Time(rng.Int63n(500)) * us)
			r.e.Reduce(r.w, f64s(float64(iter), float64(r.w.Rank())), out, 2, mpi.Float64, mpi.OpSum, iter%size)
			if r.w.Rank() == iter%size {
				rootVals[iter] = mpi.BytesToFloat64s(out)[0]
			}
			r.p.SpinInterruptible(sim.Time(rng.Int63n(300)) * us)
		}
		r.p.SpinInterruptible(5000 * us)
		coll.Barrier(r.w)
	})
	for iter := 0; iter < rounds; iter++ {
		if rootVals[iter] != float64(iter*size) {
			t.Errorf("round %d root value %v, want %v", iter, rootVals[iter], float64(iter*size))
		}
	}
}

// TestQuiescenceInvariants: after a drained run nothing may remain in
// any engine queue on any rank.
func TestQuiescenceInvariants(t *testing.T) {
	size := 16
	engines := runWorld(size, 18, func(r *ctxRank) {
		rng := r.p.Kernel().NewRNG()
		out := make([]byte, 8)
		for iter := 0; iter < 10; iter++ {
			r.p.SpinInterruptible(sim.Time(rng.Int63n(800)) * us)
			r.e.Reduce(r.w, f64s(1), out, 1, mpi.Float64, mpi.OpSum, 0)
		}
		r.p.SpinInterruptible(5000 * us)
		coll.Barrier(r.w)
	})
	for i, e := range engines {
		if e.OutstandingDescriptors() != 0 || e.UBQLen() != 0 {
			t.Errorf("rank %d not quiescent: desc=%d ubq=%d", i, e.OutstandingDescriptors(), e.UBQLen())
		}
		if e.bcastPendingLen() != 0 || e.bcastArrivedLen() != 0 {
			t.Errorf("rank %d has bcast residue", i)
		}
	}
}

// TestDeterminism: two identical runs produce byte-identical metrics
// and timings.
func TestDeterminism(t *testing.T) {
	run := func() (Metrics, sim.Time) {
		var end sim.Time
		engines := runWorld(16, 99, func(r *ctxRank) {
			rng := r.p.Kernel().NewRNG()
			out := make([]byte, 32)
			for iter := 0; iter < 8; iter++ {
				r.p.SpinInterruptible(sim.Time(rng.Int63n(1000)) * us)
				r.e.Reduce(r.w, f64s(1, 2, 3, 4), out, 4, mpi.Float64, mpi.OpSum, 0)
				r.p.SpinInterruptible(2000 * us)
				coll.Barrier(r.w)
			}
			if r.w.Rank() == 0 {
				end = r.p.Now()
			}
		})
		return engines[4].Metrics, end
	}
	m1, e1 := run()
	m2, e2 := run()
	if m1 != m2 {
		t.Errorf("metrics differ across identical runs:\n%+v\n%+v", m1, m2)
	}
	if e1 != e2 {
		t.Errorf("end times differ: %v vs %v", e1, e2)
	}
}

// TestReduceABNonCommutativeAccumulationOrder documents that results
// are exact for integer data regardless of arrival order.
func TestReduceABIntegerExactness(t *testing.T) {
	size := 16
	var got int64
	runWorld(size, 20, func(r *ctxRank) {
		rng := r.p.Kernel().NewRNG()
		r.p.SpinInterruptible(sim.Time(rng.Int63n(700)) * us)
		in := mpi.Int64sToBytes([]int64{1 << uint(r.w.Rank()%40)})
		out := make([]byte, 8)
		r.e.Reduce(r.w, in, out, 1, mpi.Int64, mpi.OpSum, 0)
		r.p.SpinInterruptible(2000 * us)
		coll.Barrier(r.w)
		if r.w.Rank() == 0 {
			got = mpi.BytesToInt64s(out)[0]
		}
	})
	var want int64
	for rk := 0; rk < size; rk++ {
		want += 1 << uint(rk%40)
	}
	if got != want {
		t.Errorf("integer AB sum = %d, want %d", got, want)
	}
}

// TestTraceSpansEmitted checks the visualization hook fires for both
// phases.
func TestTraceSpansEmitted(t *testing.T) {
	size := 4
	var syncSpans, asyncSpans int
	runWorld(size, 21, func(r *ctxRank) {
		if r.w.Rank() == 2 {
			r.e.SetTrace(func(kind byte, start, end sim.Time) {
				switch kind {
				case 'R':
					syncSpans++
				case 'A':
					asyncSpans++
				}
				if end < start {
					t.Error("span ends before it starts")
				}
			})
		}
		if r.w.Rank() == 3 {
			r.p.SpinInterruptible(300 * us)
		}
		out := make([]byte, 8)
		r.e.Reduce(r.w, f64s(1), out, 1, mpi.Float64, mpi.OpSum, 0)
		r.p.SpinInterruptible(1000 * us)
		coll.Barrier(r.w)
	})
	if syncSpans != 1 {
		t.Errorf("sync spans = %d, want 1", syncSpans)
	}
	if asyncSpans == 0 {
		t.Error("no async spans recorded for the late child")
	}
}

func TestEngineString(t *testing.T) {
	runWorld(2, 22, func(r *ctxRank) {
		if r.e.String() == "" {
			t.Error("empty engine string")
		}
	})
}

var _ = math.Abs // keep math imported for future tolerance checks
