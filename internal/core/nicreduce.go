package core

import (
	"fmt"

	"abred/internal/coll"
	"abred/internal/gm"
	"abred/internal/mpi"
)

// NIC-based reduction — the paper's §VII future-work direction (refs
// [9–11]): "part or all of the operation may be performed on the NIC
// processor, as opposed to being performed on the host. This frees the
// host processor for use in other computation, naturally bypassing the
// application."
//
// Every node deposits its contribution into its own NIC; the LANai
// control program combines contributions from the node's subtree in NIC
// memory and forwards the partial result up the binomial tree entirely
// on the NIC plane. Non-root hosts return as soon as the deposit is
// posted; only the root blocks, waiting for the final result to be
// DMA'd up. The trade-off the referenced work debates is visible in the
// cost model: the LANai has no FPU, so NIC-side arithmetic is slow.

// nicInstance is the control program's per-instance state.
type nicInstance struct {
	acc  []byte
	got  int
	need int
}

// nicKey identifies a reduction instance on the NIC.
type nicKey struct {
	ctx uint16
	seq uint64
}

// nicTable lives on the NIC (one per engine; the engine owns the node's
// firmware).
type nicTable map[nicKey]*nicInstance

// installNICFirmware loads the reduction control program onto the
// node's NIC. Called at engine creation so contributions from eager
// children are combined even before the local host reaches its call.
func (e *Engine) installNICFirmware() {
	table := make(nicTable)
	nic := e.pr.NIC()
	nic.SetFirmware(func(fw *gm.FwOps, pkt *gm.Packet) bool {
		if pkt.Type != gm.NICCollective {
			return false
		}
		e.nicProcess(fw, table, pkt)
		return true
	})
}

// nicProcess handles one contribution in control-program context. LANai
// time is accrued through fw.Charge; the control program performs the
// posted actions once that time has elapsed, so the virtual-time cost is
// the same as the old blocking Sleep-then-act sequence.
func (e *Engine) nicProcess(fw *gm.FwOps, table nicTable, pkt *gm.Packet) {
	pr := e.pr
	rank, size := pr.Rank(), pr.Size()
	root := int(pkt.Root)
	key := nicKey{ctx: pkt.Ctx, seq: pkt.Seq}
	dt := mpi.Datatype(pkt.AuxDT)
	op := mpi.Op(pkt.AuxOp)
	count := len(pkt.Data) / dt.Size()

	inst := table[key]
	if inst == nil {
		inst = &nicInstance{need: coll.ChildCount(rank, root, size) + 1}
		table[key] = inst
	}
	if inst.acc == nil {
		inst.acc = append([]byte(nil), pkt.Data...)
	} else {
		fw.Charge(pr.CM.NICReduceOp(count, dt.Size()))
		mpi.Apply(op, dt, inst.acc, pkt.Data, count)
	}
	inst.got++
	if inst.got < inst.need {
		return
	}
	delete(table, key)
	e.Metrics.NICCombines += uint64(inst.need - 1)

	if rank == root {
		// DMA the final result up to the host, where it matches the
		// root's posted receive.
		result := &gm.Packet{
			Type:    gm.NICCollective,
			DstNode: rank,
			Ctx:     pkt.Ctx,
			Tag:     pkt.Tag,
			SrcRank: int32(rank),
			Root:    pkt.Root,
			Seq:     pkt.Seq,
			Data:    inst.acc,
		}
		fw.Charge(pr.CM.NICPkt(len(inst.acc))) // PCI DMA to host memory
		fw.DeliverToHost(result)
		return
	}

	parent := coll.Parent(rank, root, size)
	up := &gm.Packet{
		Type:    gm.NICCollective,
		DstNode: parent,
		Ctx:     pkt.Ctx,
		Tag:     pkt.Tag,
		SrcRank: int32(rank),
		Root:    pkt.Root,
		Seq:     pkt.Seq,
		AuxOp:   pkt.AuxOp,
		AuxDT:   pkt.AuxDT,
		Data:    inst.acc,
	}
	fw.Charge(pr.CM.NICPkt(len(up.Data)))
	fw.Forward(up)
}

// NICReduce performs the reduction on the NIC plane. Non-root ranks
// return as soon as their contribution is handed to their NIC — an even
// stronger form of application bypass. The root blocks for the final
// result in recvbuf.
func (e *Engine) NICReduce(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op, root int) {
	pr := e.pr
	if c.Proc() != pr {
		panic("core: communicator belongs to a different process")
	}
	if !c.IsWorld() {
		// The control program derives its subtree from pr.Rank()/pr.Size()
		// — world state the NIC can see. A sub-communicator would need its
		// membership downloaded to the firmware; not modeled.
		panic("core: NIC-based reduction requires the world communicator")
	}
	n := count * dt.Size()
	if len(sendbuf) < n {
		panic(fmt.Sprintf("core: sendbuf %d bytes < %d", len(sendbuf), n))
	}
	seq := c.NextSeq(mpi.CtxReduce)
	ctx := c.Ctx(mpi.CtxReduce)
	tag := seqTag(seq)
	rank := c.Rank()
	if rank == root && len(recvbuf) < n {
		panic(fmt.Sprintf("core: recvbuf %d bytes < %d at root", len(recvbuf), n))
	}
	if n > pr.CM.C.EagerThreshold {
		// NIC memory is small; large reductions stay on the host.
		e.Metrics.SizeFallbacks++
		coll.ReduceWithSeq(c, seq, sendbuf, recvbuf, count, dt, op, root, false)
		return
	}
	e.Metrics.NICReductions++

	// Deposit the local contribution into the NIC (host copy across
	// PCI is charged by the control program; library overhead here).
	pr.P.Spin(pr.CM.HostSendOvh())
	deposit := &gm.Packet{
		Type:    gm.NICCollective,
		DstNode: rank,
		Ctx:     ctx,
		Tag:     tag,
		SrcRank: int32(rank),
		Root:    int32(root),
		Seq:     seq,
		AuxOp:   uint8(op),
		AuxDT:   uint8(dt),
		Data:    append([]byte(nil), sendbuf[:n]...),
	}
	pr.NIC().Deliver(deposit)

	if rank != root {
		return // fully bypassed
	}
	pr.Recv(ctx, root, tag, recvbuf[:n])
}
